// Design-choice ablations called out in DESIGN.md §5:
//
//  A. Correlation key — (port, TXID) tuples vs IP-only matching: how
//     many responses become unattributable as forwarder fan-in grows.
//  B. Scan-name strategy — static name vs destination-encoded names:
//     resolver cache pollution (the §6 cache-entry argument against
//     query-based campaigns: ">40k cache entries at a single resolver").
//  C. Transport — UDP vs connection-oriented (DoT) through the same
//     transparent device: why the phenomenon is UDP-only (§6).

#include "bench_common.hpp"
#include "nodes/dot.hpp"
#include "nodes/forwarder.hpp"
#include "scan/txscanner.hpp"

using namespace odns;

namespace {

void ablation_correlation(const bench::BenchArgs& args) {
  std::cout << "--- A. Correlation key: tuple vs IP-only -----------------\n";
  topo::TopologyConfig cfg;
  cfg.scale = args.scale;
  cfg.seed = args.seed;
  auto world = topo::TopologyBuilder::build(cfg);
  scan::ScanConfig sc;
  sc.qname = world->scan_name();
  scan::TransactionalScanner scanner(world->sim(), world->scanner_host(), sc);
  const auto targets = world->scan_targets();
  scanner.start(targets);
  scanner.run_to_completion();
  const auto txns = scanner.correlate();

  const std::unordered_set<util::Ipv4> probed(targets.begin(), targets.end());
  std::uint64_t answered = 0;
  std::uint64_t ip_attributable = 0;
  for (const auto& rec : scanner.capture()) {
    ++answered;
    if (probed.contains(rec.src)) ++ip_attributable;
  }
  std::uint64_t tuple_attributed = 0;
  for (const auto& txn : txns) {
    if (txn.answered) ++tuple_attributed;
  }
  util::Table t({"Matching strategy", "Responses attributed", "Share"});
  t.add_row({"(port, TXID) tuple", std::to_string(tuple_attributed),
             util::Table::fmt_percent(
                 static_cast<double>(tuple_attributed) /
                     static_cast<double>(answered),
                 1)});
  t.add_row({"response source IP", std::to_string(ip_attributable),
             util::Table::fmt_percent(
                 static_cast<double>(ip_attributable) /
                     static_cast<double>(answered),
                 1)});
  t.print(std::cout);
  std::cout << "IP-only matching loses every transparent-forwarder "
               "transaction (responses arrive from resolver addresses).\n\n";
}

void ablation_cache_pollution(const bench::BenchArgs& args) {
  std::cout << "--- B. Scan name: static vs destination-encoded ----------\n";
  auto run = [&](bool encoded) {
    topo::TopologyConfig cfg;
    cfg.scale = args.scale;
    cfg.seed = args.seed;
    auto world = topo::TopologyBuilder::build(cfg);
    scan::ScanConfig sc;
    sc.qname = world->scan_name();
    if (encoded) {
      sc.qname_for_target = [](util::Ipv4 target) {
        std::string label = target.to_string();
        for (auto& ch : label) {
          if (ch == '.') ch = '-';
        }
        return *dnswire::Name::parse(label + ".q.odns-study.net");
      };
    }
    scan::TransactionalScanner scanner(world->sim(), world->scanner_host(),
                                       sc);
    scanner.start(world->scan_targets());
    scanner.run_to_completion();
    return world->aggregate_resolver_cache_stats();
  };
  const auto static_name = run(false);
  const auto encoded = run(true);
  util::Table t({"Metric", "Static name (this work)", "Encoded names"});
  t.add_row({"Cache entries inserted", std::to_string(static_name.inserts),
             std::to_string(encoded.inserts)});
  t.add_row({"Cache hits", std::to_string(static_name.hits),
             std::to_string(encoded.hits)});
  t.add_row({"Cache evictions", std::to_string(static_name.evictions),
             std::to_string(encoded.evictions)});
  t.print(std::cout);
  std::cout << "Destination-encoded names insert one entry per scanned "
               "target into shared resolver caches — the paper's "
               "cache-pollution argument (§6).\n\n";
}

void ablation_transport(const bench::BenchArgs& args) {
  std::cout << "--- C. Transport: UDP vs DoT through the same device -----\n";
  topo::TopologyConfig cfg;
  cfg.scale = 0.001;
  cfg.seed = args.seed;
  cfg.max_countries = 2;
  auto world = topo::TopologyBuilder::build(cfg);
  auto& net = world->sim().net();

  // A DoT endpoint at a public-resolver PoP.
  const auto pop = world->pops().front();
  const util::Ipv4 dot_addr{pop.egress.value() + 1};
  net.add_host_address(pop.host, dot_addr);
  nodes::DotService dot_service(world->sim(), pop.host,
                                world->control_addr());

  // One device, both redirects.
  const auto& gt = world->ground_truth().front();
  const util::Prefix block{util::Ipv4{203, 0, 113, 0}, 24};
  net.announce(gt.asn, block);
  const util::Ipv4 device_addr{203, 0, 113, 1};
  const auto device = net.add_host(gt.asn, {device_addr});
  world->sim().add_port_redirect(device, nodes::kDnsPort,
                                 util::Ipv4{8, 8, 8, 8});
  world->sim().add_port_redirect(device, nodes::kDotPort, dot_addr);

  // UDP probe from the scanner.
  scan::ScanConfig sc;
  sc.qname = world->scan_name();
  scan::TransactionalScanner scanner(world->sim(), world->scanner_host(), sc);
  scanner.start({device_addr});
  scanner.run_to_completion();
  const auto txns = scanner.correlate();

  // DoT query from a client host.
  const auto client = net.add_host(gt.asn, {util::Ipv4{203, 0, 113, 2}});
  nodes::DotClient dot_client(world->sim(), client);
  dot_client.query(device_addr, world->scan_name());
  world->sim().run();

  util::Table t({"Transport", "Through transparent device", "Outcome"});
  t.add_row({"UDP/53",
             txns[0].answered ? "answered from " +
                                    txns[0].response_src.to_string()
                              : "no answer",
             txns[0].answered ? "works (relayed, source spoofed)" : "broken"});
  t.add_row({"DoT/853",
             dot_client.answers() > 0 ? "answered" : "handshake failed",
             dot_client.answers() > 0 ? "works" : "broken (SYN-ACK from "
                                                  "unexpected peer)"});
  t.print(std::cout);
  std::cout << "Connection-oriented DNS cannot be transparently forwarded "
               "(§6): the handshake reply bypasses the device.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, /*default_scale=*/0.005);
  bench::print_header("Ablations — design choices behind the method", args);
  ablation_correlation(args);
  ablation_cache_pollution(args);
  ablation_transport(args);
  return 0;
}
