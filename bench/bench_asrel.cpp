// §5 "AS Relationship Inference": paths acquired with DNSRoute++ show
// AS_in == AS_out for 62% of usable paths, yielding provider-customer
// relationships — 41 of which were unknown to CAIDA's inference.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odns;
  const auto args = bench::BenchArgs::parse(argc, argv, /*default_scale=*/0.01);
  bench::print_header("§5 — AS relationship inference from DNSRoute++ paths",
                      args);

  auto result = bench::run_standard_census(args);
  auto routes = core::run_dnsroute(result, /*max_ttl=*/28);
  const auto& rel = routes.relationships;

  util::Table t({"Metric", "Value"});
  t.add_row({"Complete paths considered",
             std::to_string(rel.paths_considered)});
  t.add_row({"Paths with AS_in/AS_out mapping",
             std::to_string(rel.paths_with_as_mapping)});
  t.add_row({"AS_in == AS_out",
             std::to_string(rel.as_in_equals_as_out) + " (" +
                 util::Table::fmt_percent(
                     rel.paths_with_as_mapping == 0
                         ? 0.0
                         : static_cast<double>(rel.as_in_equals_as_out) /
                               static_cast<double>(rel.paths_with_as_mapping),
                     1) +
                 ")"});
  t.add_row({"Distinct provider-customer edges inferred",
             std::to_string(rel.inferred_provider_customer)});
  t.add_row({"... of which unknown to the CAIDA-like registry",
             std::to_string(rel.unknown_to_caida)});
  t.print(std::cout);

  bench::print_paper_note(
      "§5: 27k usable paths, AS_in == AS_out for 62%, 41 provider-customer "
      "relationships unknown to CAIDA.");
  return 0;
}
