#pragma once
// Shared plumbing for the per-table/figure bench binaries: flag
// parsing, census construction, and the paper-vs-measured framing that
// EXPERIMENTS.md records.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/census.hpp"
#include "core/report.hpp"

namespace odns::bench {

struct BenchArgs {
  double scale = 0.02;
  std::uint64_t seed = 2021;

  static BenchArgs parse(int argc, char** argv, double default_scale = 0.02) {
    BenchArgs args;
    args.scale = default_scale;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--scale=", 0) == 0) {
        args.scale = std::atof(arg.c_str() + 8);
      } else if (arg.rfind("--seed=", 0) == 0) {
        args.seed = static_cast<std::uint64_t>(
            std::strtoull(arg.c_str() + 7, nullptr, 10));
      } else if (arg == "--help") {
        std::cout << "usage: " << argv[0] << " [--scale=F] [--seed=N]\n";
        std::exit(0);
      }
    }
    return args;
  }
};

inline core::CensusResult run_standard_census(const BenchArgs& args) {
  core::CensusConfig cfg;
  cfg.topology.scale = args.scale;
  cfg.topology.seed = args.seed;
  return core::run_census(cfg);
}

inline void print_header(const std::string& title, const BenchArgs& args) {
  std::cout << "==========================================================\n"
            << title << "\n"
            << "scale=" << args.scale << " seed=" << args.seed
            << "  (counts are ~scale x the April-2021 population;\n"
            << "   shares, rankings and orderings are the reproduction"
            << " target)\n"
            << "==========================================================\n\n";
}

inline void print_paper_note(const std::string& note) {
  std::cout << "\nPaper reference: " << note << "\n";
}

}  // namespace odns::bench
