// §6 + Appendix E: what the transparent forwarders are.
//  * Device fingerprinting (Shodan/Censys banners): ~23% of covered
//    hosts are MikroTik; half of those fully cover their /24.
//  * AS classification of the top-100 TF ASes: 79 eyeball ISPs, 14
//    unclassified, 65 with 32-bit ASNs; top-100 cover 50% of all TFs.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odns;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("§6 / Appendix E — device and AS attribution", args);

  auto result = bench::run_standard_census(args);

  const auto devices = classify::device_attribution(
      result.census, result.classified, result.registry);
  std::cout << "Device fingerprinting:\n";
  core::report::devices_table(devices).print(std::cout);
  if (devices.mikrotik > 0) {
    std::cout << "MikroTik devices fully covering their /24: "
              << util::Table::fmt_percent(
                     static_cast<double>(devices.mikrotik_in_full_24) /
                         static_cast<double>(devices.mikrotik),
                     1)
              << " (paper: ~50%)\n";
  }

  std::cout << "\nAS classification (top 100 by TF count):\n";
  const auto ases =
      classify::classify_ases(result.census, result.registry, 100);
  core::report::as_classification_table(ases).print(std::cout);

  bench::print_paper_note(
      "§6: 23% MikroTik of 80k fingerprinted; top-100 ASes = 50% of TFs, "
      "79 eyeball, 14 unclassified, 65 with 32-bit ASNs.");
  return 0;
}
