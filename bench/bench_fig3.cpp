// Figure 3: CDF of transparent forwarders over countries ranked by
// forwarder count. Paper: the top-10 countries hold ~90% of all
// transparent forwarders; ~25% of ODNS countries host none.

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace odns;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 3 — per-country transparent-forwarder CDF",
                      args);

  auto result = bench::run_standard_census(args);
  const auto& census = result.census;
  core::report::fig3_country_cdf(census, 15).print(std::cout);

  // Headline numbers.
  const auto ranked = census.countries_by_tf();
  std::uint64_t total = 0;
  std::uint64_t top10 = 0;
  std::size_t with_tf = 0;
  std::vector<std::uint64_t> counts;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    total += ranked[i]->tf;
    if (i < 10) top10 += ranked[i]->tf;
    if (ranked[i]->tf > 0) ++with_tf;
    counts.push_back(ranked[i]->tf);
  }
  std::cout << "\nTop-10 countries hold "
            << util::Table::fmt_percent(
                   static_cast<double>(top10) / static_cast<double>(total), 1)
            << " of all transparent forwarders (paper: ~90%).\n"
            << "Countries with zero transparent forwarders: "
            << ranked.size() - with_tf << " of " << ranked.size() << " ("
            << util::Table::fmt_percent(
                   static_cast<double>(ranked.size() - with_tf) /
                       static_cast<double>(ranked.size()),
                   1)
            << "; paper: ~25%).\n\n";

  std::cout << "CDF (x: country rank, y: cumulative TF share):\n"
            << util::render_cdf_ascii(util::rank_cdf(counts), 60, 12);
  return 0;
}
