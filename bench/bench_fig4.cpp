// Figure 4: the top-50 countries by transparent forwarders — ODNS
// component shares, AS counts and emerging-market flags.
// Paper anchors: BRA/IND > 80% transparent; CHN ~2%; emerging markets
// dominate the top of the ranking.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odns;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 4 — top-50 countries by transparent forwarders",
                      args);

  auto result = bench::run_standard_census(args);
  core::report::fig4_top_countries(result.census, 50).print(std::cout);

  int emerging = 0;
  int shown = 0;
  for (const auto* report : result.census.countries_by_tf()) {
    if (shown >= 50 || report->tf == 0) break;
    ++shown;
    if (core::report::is_emerging(report->code)) ++emerging;
  }
  std::cout << "\nEmerging markets among the top-" << shown << ": "
            << emerging << " (paper: 16 starred of the top-50; 8 of the 9 "
            << "countries above 10k TFs).\n";
  return 0;
}
