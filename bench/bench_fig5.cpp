// Figure 5: popularity of public resolver projects among transparent
// forwarders, per country. Paper: Google & Cloudflare dominate; India
// relays almost exclusively to Google; Poland/Turkey/China/France use
// national ("other") resolvers.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odns;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Figure 5 — resolver projects used by transparent forwarders", args);

  auto result = bench::run_standard_census(args);
  core::report::fig5_project_shares(result.census, 50).print(std::cout);

  // Global project split over all TFs.
  std::array<std::uint64_t, classify::kProjectCount> global{};
  std::uint64_t total = 0;
  for (const auto& [code, report] : result.census.by_country) {
    for (std::size_t p = 0; p < classify::kProjectCount; ++p) {
      global[p] += report.tf_by_project[p];
      total += report.tf_by_project[p];
    }
  }
  std::cout << "\nGlobal shares: ";
  const char* names[] = {"Google", "Cloudflare", "Quad9", "OpenDNS", "Other"};
  for (std::size_t p = 0; p < classify::kProjectCount; ++p) {
    std::cout << names[p] << " "
              << util::Table::fmt_percent(
                     static_cast<double>(global[p]) /
                         static_cast<double>(total),
                     1)
              << (p + 1 < classify::kProjectCount ? ", " : "\n");
  }
  bench::print_paper_note(
      "Fig. 5: IND ~all Google; TUR/POL/CHN/FRA dominated by 'other' "
      "(national) resolvers; Google+Cloudflare most common overall.");
  return 0;
}
