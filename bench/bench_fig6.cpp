// Figure 6: DNSRoute++ — distribution of path lengths between
// transparent forwarders and their recursive resolvers, per project.
// Paper: Cloudflare mean 6.3 hops < Google 7.9 < OpenDNS 9.3.

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace odns;
  const auto args = bench::BenchArgs::parse(argc, argv, /*default_scale=*/0.01);
  bench::print_header(
      "Figure 6 — forwarder-to-resolver path lengths (DNSRoute++)", args);

  auto result = bench::run_standard_census(args);
  auto routes = core::run_dnsroute(result, /*max_ttl=*/28);

  std::size_t complete = 0;
  for (const auto& p : routes.paths) {
    if (p.complete()) ++complete;
  }
  std::cout << "Traced " << routes.paths.size()
            << " transparent forwarders; " << complete
            << " paths survived sanitization; " << routes.samples.size()
            << " attributed to a public resolver project.\n\n";

  core::report::fig6_path_lengths(routes.samples).print(std::cout);

  // Per-project CDFs over hop counts.
  std::map<topo::ResolverProject, std::vector<double>> hops;
  for (const auto& s : routes.samples) {
    hops[s.project].push_back(static_cast<double>(s.hops));
  }
  for (const auto project :
       {topo::ResolverProject::cloudflare, topo::ResolverProject::google,
        topo::ResolverProject::opendns}) {
    auto it = hops.find(project);
    if (it == hops.end()) continue;
    std::cout << "\n" << topo::to_string(project)
              << " CDF (x: hops, y: cumulative):\n"
              << util::render_cdf_ascii(util::empirical_cdf(it->second), 48, 8);
  }
  bench::print_paper_note(
      "Fig. 6: Cloudflare 6.3 mean hops (8,271 fwds / 129 ASNs), Google 7.9 "
      "(57,725 / 925), OpenDNS 9.3 (3,963 / 141). Ordering CF < Google < "
      "OpenDNS is the reproduction target.");
  return 0;
}
