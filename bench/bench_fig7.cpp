// Figure 7 (appendix): two transparent forwarders relay to the same
// recursive resolver; both answers arrive from one source address.
// Only the unique (client port, TXID) tuple attributes each response
// to the right probe — IP-based matching is shown failing.

#include "bench_common.hpp"
#include "nodes/forwarder.hpp"
#include "scan/txscanner.hpp"
#include "topo/deployment.hpp"

using namespace odns;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, /*default_scale=*/0.002);
  bench::print_header(
      "Figure 7 — transaction disambiguation behind a shared resolver", args);

  topo::TopologyConfig cfg;
  cfg.scale = args.scale;
  cfg.seed = args.seed;
  cfg.max_countries = 2;
  auto world = topo::TopologyBuilder::build(cfg);
  auto& net = world->sim().net();

  // Two transparent forwarders in one access network, both relaying to
  // Google's anycast address (the paper's 203.0.113.1/.2 pair).
  const auto* eyeball =
      net.find_as(world->ground_truth().front().asn);
  const netsim::Asn asn = eyeball->cfg.asn;
  const util::Prefix block{util::Ipv4{203, 0, 113, 0}, 24};
  net.announce(asn, block);
  const util::Ipv4 fwd1{203, 0, 113, 1};
  const util::Ipv4 fwd2{203, 0, 113, 2};
  const auto h1 = net.add_host(asn, {fwd1});
  const auto h2 = net.add_host(asn, {fwd2});
  nodes::TransparentForwarder tf1(world->sim(), h1, util::Ipv4{8, 8, 8, 8});
  nodes::TransparentForwarder tf2(world->sim(), h2, util::Ipv4{8, 8, 8, 8});
  tf1.install();
  tf2.install();

  scan::ScanConfig sc;
  sc.qname = world->scan_name();
  scan::TransactionalScanner scanner(world->sim(), world->scanner_host(), sc);
  scanner.start({fwd1, fwd2});
  scanner.run_to_completion();

  std::cout << "Probe log:\n";
  util::Table probes({"#", "Target", "Src port", "TXID"});
  for (std::size_t i = 0; i < scanner.probes().size(); ++i) {
    const auto& p = scanner.probes()[i];
    probes.add_row({std::to_string(i + 1), p.target.to_string(),
                    std::to_string(p.src_port), std::to_string(p.txid)});
  }
  probes.print(std::cout);

  std::cout << "\nCapture log (the scanner's dumpcap view):\n";
  util::Table capture({"#", "Response src", "Dst port", "TXID", "A records"});
  for (std::size_t i = 0; i < scanner.capture().size(); ++i) {
    const auto& r = scanner.capture()[i];
    std::string addrs;
    for (const auto a : r.answer_addrs) {
      if (!addrs.empty()) addrs += " ";
      addrs += a.to_string();
    }
    capture.add_row({std::to_string(i + 1), r.src.to_string(),
                     std::to_string(r.dst_port), std::to_string(r.txid),
                     addrs});
  }
  capture.print(std::cout);

  std::cout << "\nCorrelated transactions (tuple join):\n";
  util::Table txns({"Target", "Response src", "Classified as"});
  classify::ClassifyConfig cc;
  cc.control_addr = world->control_addr();
  for (const auto& txn : scanner.correlate()) {
    txns.add_row({txn.target.to_string(), txn.response_src.to_string(),
                  classify::to_string(classify::classify_one(txn, cc))});
  }
  txns.print(std::cout);

  // The counterfactual: IP-only matching cannot attribute either
  // response (both sources identical, neither equals a probed target).
  std::size_t ip_matchable = 0;
  for (const auto& r : scanner.capture()) {
    for (const auto& p : scanner.probes()) {
      if (p.target == r.src) {
        ++ip_matchable;
        break;
      }
    }
  }
  std::cout << "\nIP-only matching would attribute " << ip_matchable
            << " of " << scanner.capture().size()
            << " responses (tuple matching attributed all, unambiguously).\n";
  bench::print_paper_note(
      "Appendix Fig. 7: both responses arrive from the resolver's address; "
      "client port + DNS TXID recover the originating probe.");
  return 0;
}
