// Figure 8: transparent forwarders per covering /24 prefix.
// Paper: 41k distinct /24s; 26% of TFs in sparsely populated prefixes
// (<= 25) — individual CPE — and 36% in completely populated ones
// (>= 254) — one middlebox answering for the whole block (806 prefixes).

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace odns;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 8 — /24 population density of forwarders",
                      args);

  auto result = bench::run_standard_census(args);
  const auto& census = result.census;
  core::report::fig8_prefix_density(census).print(std::cout);

  std::size_t full_prefixes = 0;
  for (const auto& [base, count] : census.tf_per_24) {
    if (count >= 254) ++full_prefixes;
  }
  std::cout << "\nSparse (<=25 per /24): "
            << util::Table::fmt_percent(
                   census.tf_fraction_with_density_at_most(25), 1)
            << " of TFs (paper: 26%)\n"
            << "Fully populated (>=254): "
            << util::Table::fmt_percent(
                   census.tf_fraction_with_density_at_least(254), 1)
            << " of TFs in " << full_prefixes
            << " prefixes (paper: 36% in 806 prefixes)\n";

  std::vector<double> densities;
  for (const auto c : census.tf_per_24_counts()) {
    densities.push_back(static_cast<double>(c));
  }
  std::cout << "\nCDF over prefixes (x: TFs per /24, y: cumulative):\n"
            << util::render_cdf_ascii(util::empirical_cdf(densities), 60, 10);
  return 0;
}
