// Microbenchmarks for the hot paths: DNS wire codec, transaction
// correlation, event-queue throughput, resolver cache, and
// longest-prefix matching. These bound the scanner's achievable probe
// rates (the paper's setup sustains 20k pps at the auth server).

#include <benchmark/benchmark.h>

#include "dnswire/arena.hpp"
#include "dnswire/arena_codec.hpp"
#include "dnswire/codec.hpp"
#include "netsim/event_queue.hpp"
#include "nodes/cache.hpp"
#include "registry/registry.hpp"
#include "scan/txscanner.hpp"
#include "util/rng.hpp"

namespace {

using namespace odns;
using util::Ipv4;

dnswire::Message mirror_response() {
  auto query = dnswire::make_query(
      0x4242, *dnswire::Name::parse("scan.odns-study.net"), dnswire::RrType::a);
  auto resp = dnswire::make_response(query);
  resp.header.aa = true;
  const auto name = *dnswire::Name::parse("scan.odns-study.net");
  resp.answers.push_back(
      dnswire::ResourceRecord::a(name, Ipv4{74, 125, 0, 10}, 300));
  resp.answers.push_back(
      dnswire::ResourceRecord::a(name, Ipv4{198, 51, 100, 200}, 300));
  return resp;
}

void BM_EncodeQuery(benchmark::State& state) {
  const auto query = dnswire::make_query(
      7, *dnswire::Name::parse("scan.odns-study.net"), dnswire::RrType::a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dnswire::encode(query));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EncodeQuery);

void BM_EncodeMirrorResponse(benchmark::State& state) {
  const auto resp = mirror_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dnswire::encode(resp));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EncodeMirrorResponse);

void BM_DecodeMirrorResponse(benchmark::State& state) {
  const auto wire = dnswire::encode(mirror_response());
  for (auto _ : state) {
    auto decoded = dnswire::decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_DecodeMirrorResponse);

// Arena codec counterparts (docs/architecture.md, "Zero-allocation
// wire path"): same messages, decoded/encoded through a warmed
// WireArena that is reset per message — the serving-loop shape, where
// the steady state does zero heap allocations (the property
// tests/alloc_audit_test.cpp enforces).

void BM_ArenaEncodeMirrorResponse(benchmark::State& state) {
  dnswire::WireArena view_arena;
  const auto view = dnswire::view_of(view_arena, mirror_response());
  dnswire::WireArena tx;
  for (auto _ : state) {
    tx.reset();
    benchmark::DoNotOptimize(dnswire::encode_into(tx, view));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ArenaEncodeMirrorResponse);

void BM_ArenaDecodeMirrorResponse(benchmark::State& state) {
  const auto wire = dnswire::encode(mirror_response());
  dnswire::WireArena rx;
  for (auto _ : state) {
    rx.reset();
    auto decoded = dnswire::decode_into(rx, wire);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_ArenaDecodeMirrorResponse);

/// The full arena serving unit — decode the query, echo it as a
/// two-record mirror response, encode — against the heap equivalent
/// below (BM_HeapServeMirror): the per-message cost a census auth
/// server pays at 20k pps.
void BM_ArenaServeMirror(benchmark::State& state) {
  const auto query_wire = dnswire::encode(dnswire::make_query(
      0x4242, *dnswire::Name::parse("scan.odns-study.net"),
      dnswire::RrType::a));
  dnswire::WireArena rx;
  dnswire::WireArena tx;
  for (auto _ : state) {
    rx.reset();
    tx.reset();
    auto parsed = dnswire::decode_into(rx, query_wire);
    const auto& q = parsed.value();
    auto answers = tx.alloc_array<dnswire::RecordView>(2);
    answers[0].name = q.questions.front().name;
    answers[0].type = dnswire::RrType::a;
    answers[0].ttl = 300;
    answers[0].rdata.tag = dnswire::RdataView::Tag::a;
    answers[0].rdata.a_addr = Ipv4{74, 125, 0, 10};
    answers[1] = answers[0];
    answers[1].rdata.a_addr = Ipv4{198, 51, 100, 200};
    dnswire::MessageView resp;
    resp.header.id = q.header.id;
    resp.header.qr = true;
    resp.header.aa = true;
    resp.header.rd = q.header.rd;
    resp.questions = q.questions;
    resp.answers = answers;
    benchmark::DoNotOptimize(dnswire::encode_into(tx, resp));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ArenaServeMirror);

void BM_HeapServeMirror(benchmark::State& state) {
  const auto query_wire = dnswire::encode(dnswire::make_query(
      0x4242, *dnswire::Name::parse("scan.odns-study.net"),
      dnswire::RrType::a));
  const auto name = *dnswire::Name::parse("scan.odns-study.net");
  for (auto _ : state) {
    auto parsed = dnswire::decode(query_wire);
    auto resp = dnswire::make_response(parsed.value());
    resp.header.aa = true;
    resp.answers.push_back(
        dnswire::ResourceRecord::a(name, Ipv4{74, 125, 0, 10}, 300));
    resp.answers.push_back(
        dnswire::ResourceRecord::a(name, Ipv4{198, 51, 100, 200}, 300));
    benchmark::DoNotOptimize(dnswire::encode(resp));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HeapServeMirror);

void BM_DecodeCompressedNames(benchmark::State& state) {
  auto resp = mirror_response();
  const auto name = *dnswire::Name::parse("scan.odns-study.net");
  for (int i = 0; i < state.range(0); ++i) {
    resp.answers.push_back(
        dnswire::ResourceRecord::a(name, Ipv4{10, 0, 0, 1}, 60));
  }
  const auto wire = dnswire::encode(resp);
  for (auto _ : state) {
    auto decoded = dnswire::decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeCompressedNames)->Arg(4)->Arg(16)->Arg(64);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    netsim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < state.range(0); ++i) {
      q.schedule_at(util::SimTime::from_nanos(i % 1000), [&sink] { ++sink; });
    }
    q.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

void BM_CacheLookup(benchmark::State& state) {
  nodes::DnsCache cache;
  const auto now = util::SimTime::origin();
  std::vector<dnswire::Name> names;
  for (int i = 0; i < 1024; ++i) {
    auto name = *dnswire::Name::parse("h" + std::to_string(i) + ".example");
    cache.put(name, dnswire::RrType::a,
              {dnswire::ResourceRecord::a(name, Ipv4{10, 0, 0, 1}, 3600)},
              now);
    names.push_back(std::move(name));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.get(names[i++ & 1023], dnswire::RrType::a, now));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheLookup);

void BM_CorrelatorJoin(benchmark::State& state) {
  // Offline correlation cost per captured response (the paper's
  // "lightweight post-analysis" claim).
  const auto n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    std::unordered_map<std::uint32_t, std::uint32_t> tuples;
    tuples.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      tuples.emplace(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i));
    }
    state.ResumeTiming();
    std::uint64_t matched = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      matched += tuples.count(static_cast<std::uint32_t>(i));
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CorrelatorJoin)->Arg(10000)->Arg(100000);

void BM_LongestPrefixMatch(benchmark::State& state) {
  registry::RouteviewsTable table;
  util::Rng rng{3};
  for (int i = 0; i < 50000; ++i) {
    const auto addr =
        Ipv4{static_cast<std::uint32_t>(rng.uniform(0x14000000, 0x49FFFFFF))};
    table.add(util::Prefix{addr, 24}, static_cast<netsim::Asn>(i));
  }
  std::vector<Ipv4> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back(
        Ipv4{static_cast<std::uint32_t>(rng.uniform(0x14000000, 0x49FFFFFF))});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.origin_of(probes[i++ & 1023]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LongestPrefixMatch);

void BM_RateLimiter(benchmark::State& state) {
  nodes::PrefixRateLimiter limiter;
  util::Rng rng{5};
  std::int64_t t = 0;
  for (auto _ : state) {
    const auto src =
        Ipv4{static_cast<std::uint32_t>(rng.uniform(0x14000000, 0x14FFFFFF))};
    benchmark::DoNotOptimize(
        limiter.allow(src, util::SimTime::from_nanos(t += 1000)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RateLimiter);

}  // namespace

BENCHMARK_MAIN();
