// Routing fast-path benchmark: measures raw netsim packet throughput
// with the Network route cache disabled (the pre-cache baseline) and
// enabled, on the two workloads Internet-scale scans generate:
//
//  * repeated-destination scan — one vantage host re-probing a fixed
//    set of unicast targets, the shape of every §3/§4 scan campaign;
//  * mixed anycast — half the targets are anycast groups, exercising
//    the nearest-PoP resolution path (public resolvers à la 8.8.8.8).
//
// Besides timing, every workload is re-run with a packet-trace tap in
// both modes and the traces, counters, and router-hop sequences are
// required to be byte-identical — the cache must never change a routing
// decision, only the cost of making it. Results are recorded at the
// repo root as BENCH_netsim.json (see docs/benchmarks.md).
//
// usage: bench_netsim [--packets=N] [--ases=N] [--hops=N] [--dests=N]
//                     [--seed=N] [--json=FILE] [--min-speedup=F]
//
// Exits 1 on a determinism violation, 2 when the repeated-destination
// speedup falls below --min-speedup (CI's loud perf-regression gate).

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "netsim/sim.hpp"
#include "util/ipv4.hpp"

namespace {

using namespace odns;
using netsim::Asn;
using netsim::HostId;
using netsim::Simulator;
using util::Ipv4;
using util::Prefix;

struct Opts {
  std::uint64_t packets = 200000;
  std::uint32_t ases = 64;
  int hops = 3;
  std::uint32_t dests = 32;
  std::uint64_t seed = 2021;
  std::string json_path;
  double min_speedup = 0.0;

  static Opts parse(int argc, char** argv) {
    Opts o;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto val = [&](const char* prefix) -> const char* {
        return arg.c_str() + std::strlen(prefix);
      };
      if (arg.rfind("--packets=", 0) == 0) {
        o.packets = std::strtoull(val("--packets="), nullptr, 10);
      } else if (arg.rfind("--ases=", 0) == 0) {
        o.ases = static_cast<std::uint32_t>(
            std::strtoul(val("--ases="), nullptr, 10));
      } else if (arg.rfind("--hops=", 0) == 0) {
        o.hops = std::atoi(val("--hops="));
      } else if (arg.rfind("--dests=", 0) == 0) {
        o.dests = static_cast<std::uint32_t>(
            std::strtoul(val("--dests="), nullptr, 10));
      } else if (arg.rfind("--seed=", 0) == 0) {
        o.seed = std::strtoull(val("--seed="), nullptr, 10);
      } else if (arg.rfind("--json=", 0) == 0) {
        o.json_path = val("--json=");
      } else if (arg.rfind("--min-speedup=", 0) == 0) {
        o.min_speedup = std::atof(val("--min-speedup="));
      } else {
        std::cout << "usage: bench_netsim [--packets=N] [--ases=N] "
                     "[--hops=N] [--dests=N] [--seed=N] [--json=FILE] "
                     "[--min-speedup=F]\n";
        std::exit(arg == "--help" ? 0 : 64);
      }
    }
    if (o.ases < 4 || o.dests == 0 || o.hops < 1) {
      std::cerr << "bench_netsim: need --ases>=4, --dests>=1, --hops>=1\n";
      std::exit(64);
    }
    return o;
  }
};

class NullSink : public netsim::App {
 public:
  void on_datagram(const netsim::Datagram&) override {}
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFFu;
    h *= 1099511628211ull;
  }
  return h;
}
constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;

/// The world under test plus the target list for one workload.
struct World {
  std::unique_ptr<Simulator> sim;
  HostId scanner = netsim::kInvalidHost;
  std::vector<Ipv4> targets;
  NullSink sink;
};

/// Ring-of-ASes topology with a few chords; destinations spread evenly
/// around the ring, optionally alternating with 3-member anycast
/// groups. Identical for every (seed, opts) pair by construction.
World build_world(const Opts& opts, bool anycast) {
  World w;
  netsim::SimConfig cfg;
  cfg.seed = opts.seed;
  w.sim = std::make_unique<Simulator>(cfg);
  auto& net = w.sim->net();
  for (std::uint32_t i = 1; i <= opts.ases; ++i) {
    netsim::AsConfig as;
    as.asn = i;
    as.internal_hops = opts.hops;
    net.add_as(as);
    net.announce(i, Prefix{Ipv4{10, static_cast<std::uint8_t>(i % 250), 0, 0},
                           16});
  }
  for (std::uint32_t i = 1; i <= opts.ases; ++i) {
    net.link(i, i % opts.ases + 1);  // ring
    if (i % 7 == 0 && i + opts.ases / 3 <= opts.ases) {
      net.link(i, i + opts.ases / 3);  // chord
    }
  }
  auto host_addr = [&](std::uint32_t asn, std::uint8_t lo) {
    return Ipv4{10, static_cast<std::uint8_t>(asn % 250),
                static_cast<std::uint8_t>(asn / 250), lo};
  };
  w.scanner = net.add_host(1, {host_addr(1, 1)});
  for (std::uint32_t j = 0; j < opts.dests; ++j) {
    // Spread destinations over ASes 2..ases (skipping the vantage AS).
    const std::uint32_t asn = 2 + (j * (opts.ases - 1)) / opts.dests;
    if (anycast && j % 2 == 1) {
      const Ipv4 group{9, 9, static_cast<std::uint8_t>(j % 250), 1};
      for (std::uint32_t m = 0; m < 3; ++m) {
        const std::uint32_t masn = 2 + (asn - 2 + m * opts.ases / 3) %
                                           (opts.ases - 1);
        const auto member = net.add_host(
            masn, {host_addr(masn, static_cast<std::uint8_t>(100 + j % 100))});
        net.join_anycast(group, member);
        w.sim->bind_udp(member, 53, &w.sink);
      }
      w.targets.push_back(group);
    } else {
      const auto host = net.add_host(
          asn, {host_addr(asn, static_cast<std::uint8_t>(2 + j % 200))});
      w.sim->bind_udp(host, 53, &w.sink);
      w.targets.push_back(host_addr(asn, static_cast<std::uint8_t>(2 + j % 200)));
    }
  }
  return w;
}

struct RunResult {
  netsim::SimCounters counters;
  netsim::RouteCacheStats cache_stats;
  std::uint64_t trace_hash = kFnvBasis;
  std::uint64_t route_hash = kFnvBasis;
  double seconds = 0.0;
};

/// Sends `packets` probes round-robin over the targets and drains the
/// event queue. The timed section covers injection + routing + delivery
/// — the full per-packet fast path.
RunResult run_workload(const Opts& opts, bool anycast, bool cached,
                       bool traced, std::uint64_t packets) {
  World w = build_world(opts, anycast);
  auto& sim = *w.sim;
  sim.net().set_route_cache_enabled(cached);
  RunResult r;
  if (traced) {
    sim.add_tap([&r](netsim::TapEvent ev, const netsim::Packet& p) {
      r.trace_hash = fnv1a(r.trace_hash, static_cast<std::uint64_t>(ev));
      r.trace_hash = fnv1a(r.trace_hash, p.src.value());
      r.trace_hash = fnv1a(r.trace_hash, p.dst.value());
      r.trace_hash = fnv1a(r.trace_hash,
                           static_cast<std::uint64_t>(p.ttl) << 32 |
                               std::uint64_t{p.src_port} << 16 | p.dst_port);
    });
  }
  // Paced injection: drain the queue every burst so the event heap
  // stays scan-sized instead of ballooning to the whole campaign.
  constexpr std::uint64_t kBurst = 4096;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t p = 0; p < packets; ++p) {
    netsim::SendOptions send;
    send.dst = w.targets[p % w.targets.size()];
    send.src_port = static_cast<std::uint16_t>(40000 + (p & 0xFFF));
    send.dst_port = 53;
    send.ttl = 255;
    sim.send_udp(w.scanner, std::move(send));
    if ((p + 1) % kBurst == 0) sim.run();
  }
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.counters = sim.counters();
  r.cache_stats = sim.net().route_cache_stats();
  // Router-hop sequences for every (vantage, target) pair, hashed:
  // cached and uncached runs must agree hop for hop.
  for (const auto dst : w.targets) {
    const auto route = sim.net().route_from_as(1, dst);
    if (!route) continue;
    r.route_hash = fnv1a(r.route_hash, route->dst_host);
    for (const auto hop : route->router_hops) {
      r.route_hash = fnv1a(r.route_hash, hop.value());
    }
  }
  return r;
}

bool counters_equal(const netsim::SimCounters& a,
                    const netsim::SimCounters& b) {
  return a.sent == b.sent && a.delivered == b.delivered &&
         a.dropped_sav == b.dropped_sav && a.dropped_loss == b.dropped_loss &&
         a.dropped_no_route == b.dropped_no_route &&
         a.ttl_expired == b.ttl_expired &&
         a.icmp_generated == b.icmp_generated && a.redirected == b.redirected;
}

struct WorkloadReport {
  std::string name;
  double uncached_pps = 0.0;
  double cached_pps = 0.0;
  double speedup = 0.0;
  bool identical = false;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

WorkloadReport bench_workload(const Opts& opts, const std::string& name,
                              bool anycast) {
  WorkloadReport rep;
  rep.name = name;
  // Timed passes (no tap in the hot loop); best-of-3 guards against
  // scheduler noise on shared machines.
  constexpr int kRepeats = 3;
  RunResult uncached, cached;
  for (int rep_i = 0; rep_i < kRepeats; ++rep_i) {
    auto u = run_workload(opts, anycast, /*cached=*/false, /*traced=*/false,
                          opts.packets);
    auto c = run_workload(opts, anycast, /*cached=*/true, /*traced=*/false,
                          opts.packets);
    if (rep_i == 0 || u.seconds < uncached.seconds) uncached = std::move(u);
    if (rep_i == 0 || c.seconds < cached.seconds) cached = std::move(c);
  }
  rep.uncached_pps = static_cast<double>(opts.packets) / uncached.seconds;
  rep.cached_pps = static_cast<double>(opts.packets) / cached.seconds;
  rep.speedup = rep.cached_pps / rep.uncached_pps;
  // Verification passes: full trace tap, both modes, must be identical.
  const std::uint64_t vpackets = std::min<std::uint64_t>(opts.packets, 50000);
  const auto vu = run_workload(opts, anycast, false, true, vpackets);
  const auto vc = run_workload(opts, anycast, true, true, vpackets);
  rep.identical = counters_equal(vu.counters, vc.counters) &&
                  vu.trace_hash == vc.trace_hash &&
                  vu.route_hash == vc.route_hash &&
                  counters_equal(uncached.counters, cached.counters) &&
                  uncached.route_hash == cached.route_hash;
  rep.cache_hits = cached.cache_stats.hits;
  rep.cache_misses = cached.cache_stats.misses;
  return rep;
}

void print_report(const WorkloadReport& r) {
  std::cout << r.name << "\n"
            << "  uncached: " << static_cast<std::uint64_t>(r.uncached_pps)
            << " pkts/s\n"
            << "  cached:   " << static_cast<std::uint64_t>(r.cached_pps)
            << " pkts/s\n"
            << "  speedup:  " << r.speedup << "x\n"
            << "  cache:    " << r.cache_hits << " hits / " << r.cache_misses
            << " misses\n"
            << "  determinism (counters + trace + router hops): "
            << (r.identical ? "identical" : "MISMATCH") << "\n\n";
}

void write_json(const Opts& opts, const std::vector<WorkloadReport>& reps) {
  std::ofstream out(opts.json_path);
  out << "{\n"
      << "  \"bench\": \"bench_netsim\",\n"
      << "  \"unit\": \"packets_per_second\",\n"
      << "  \"config\": {\"packets\": " << opts.packets
      << ", \"ases\": " << opts.ases << ", \"internal_hops\": " << opts.hops
      << ", \"dests\": " << opts.dests << ", \"seed\": " << opts.seed
      << "},\n"
      << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const auto& r = reps[i];
    out << "    {\"name\": \"" << r.name << "\", \"uncached_pps\": "
        << static_cast<std::uint64_t>(r.uncached_pps)
        << ", \"cached_pps\": " << static_cast<std::uint64_t>(r.cached_pps)
        << ", \"speedup\": " << r.speedup
        << ", \"cache_hits\": " << r.cache_hits
        << ", \"cache_misses\": " << r.cache_misses
        << ", \"deterministic\": " << (r.identical ? "true" : "false")
        << "}" << (i + 1 < reps.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Opts opts = Opts::parse(argc, argv);
  std::cout << "bench_netsim: route-cache fast path (ases=" << opts.ases
            << " hops=" << opts.hops << " dests=" << opts.dests
            << " packets=" << opts.packets << " seed=" << opts.seed << ")\n\n";

  std::vector<WorkloadReport> reps;
  reps.push_back(bench_workload(opts, "repeated_destination_scan",
                                /*anycast=*/false));
  reps.push_back(bench_workload(opts, "mixed_anycast", /*anycast=*/true));
  for (const auto& r : reps) print_report(r);

  if (!opts.json_path.empty()) write_json(opts, reps);

  for (const auto& r : reps) {
    if (!r.identical) {
      std::cerr << "FAIL: " << r.name
                << ": cached and uncached runs diverged\n";
      return 1;
    }
  }
  if (opts.min_speedup > 0.0 && reps[0].speedup < opts.min_speedup) {
    std::cerr << "FAIL: repeated_destination_scan speedup " << reps[0].speedup
              << "x below required " << opts.min_speedup << "x\n";
    return 2;
  }
  return 0;
}
