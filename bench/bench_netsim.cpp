// Netsim hot-path benchmark: measures raw packet throughput along the
// repo's two recorded fast paths.
//
// Route-cache workloads (Network route cache disabled vs. enabled):
//
//  * repeated-destination scan — one vantage host re-probing a fixed
//    set of unicast targets, the shape of every §3/§4 scan campaign;
//  * mixed anycast — half the targets are anycast groups, exercising
//    the nearest-PoP resolution path (public resolvers à la 8.8.8.8).
//
// Scheduler-stress workloads (legacy closure event engine vs. the
// typed event pool, docs/event-engine.md; route cache enabled in both):
//
//  * sched burst — whole campaigns injected back-to-back at one
//    timestamp, so delivery legs land in huge same-time batches;
//  * sched timer mix — half the probes fire from long-horizon timers
//    spread over seconds of simulated time, keeping the heap deep
//    while bursts pile onto the near edge.
//
// Besides timing, every workload is re-run with a packet-trace tap in
// both modes and the traces, counters, and router-hop sequences are
// required to be byte-identical — a fast path must never change a
// decision, only the cost of making it. Results are recorded at the
// repo root as BENCH_netsim.json (see docs/benchmarks.md).
//
// Sharded workloads (1-shard typed engine vs. N-shard ShardPool run,
// docs/architecture.md "Sharded execution"):
//
//  * sharded census scan — paced probes to per-AS DNS responders that
//    decode the query and encode a two-record answer (the census
//    traffic shape): serving work spreads across shards;
//  * sharded cross-shard relay — every target is a transparent
//    forwarder relaying to a responder on a *different* shard, so each
//    probe crosses the mailbox fabric twice;
//  * amplification reflection — a reflective-amplification campaign
//    over the relay world (one attacker spoofing four victims through
//    every transparent forwarder, scan::AmplificationCampaign): the
//    determinism check additionally covers the merged reflection log,
//    the attack-scenario layer's output.
//
// The sharded speedup is reported from the parallel **critical path**
// (max per-shard CPU seconds, ShardStats::busy_seconds) — the honest
// multi-core number on any machine, including single-core CI
// containers where wall-clock cannot parallelize; the wall-clock
// throughput of the sharded run is recorded alongside. Determinism is
// checked with the canonical (shard-count-invariant) trace digest.
//
// Million-host census (docs/architecture.md "Internet-scale worlds &
// streaming correlation"):
//
//  * million_host_census — the full core::run_census pipeline over the
//    bulk-population topology at --census-scale (default: ≥10⁶ hosts,
//    ≥10⁴ ASes) with streaming correlation, once on 1 shard and once
//    on 8; reports hosts-simulated-per-second, the peak RSS of the
//    run (VmHWM), and the streaming window high-water mark, and
//    requires the classify::census_fingerprint of both executions to
//    be identical.
//
//  * fault_plane_census — the same streaming census on a tenth of the
//    world under an adverse network (5% loss + jitter, reordering,
//    duplication, payload corruption) with scanner retransmission
//    (2 retries), 1 shard vs. 8: the faulted census fingerprint and
//    the full fault counters must be shard-count-invariant. Also
//    records an ungated coverage sweep (loss 1%/5% × retries off/on)
//    documenting graceful degradation and recovery.
//
// usage: bench_netsim [--packets=N] [--ases=N] [--hops=N] [--dests=N]
//                     [--seed=N] [--shards=N] [--json=FILE]
//                     [--min-speedup=F] [--census-scale=F]
//
// Exits 1 on a determinism violation, 2 when any workload's speedup
// falls below --min-speedup (CI's loud perf-regression gate), 3 when
// the full-scale census world misses its ≥10⁶-host / ≥10⁴-AS floors,
// 4 when a recorded peak RSS exceeds --max-rss-regression kB (CI's
// loud memory-regression gate).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "classify/analysis.hpp"
#include "core/census.hpp"
#include "dnswire/arena.hpp"
#include "dnswire/arena_codec.hpp"
#include "dnswire/codec.hpp"
#include "dnswire/message.hpp"
#include "honeypot/lab.hpp"
#include "netsim/sim.hpp"
#include "nodes/forwarder.hpp"
#include "scan/amplification.hpp"
#include "scan/txscanner.hpp"
#include "scan/vantage.hpp"
#include "util/hash.hpp"
#include "util/ipv4.hpp"

namespace {

using namespace odns;
using netsim::Asn;
using netsim::HostId;
using netsim::Simulator;
using util::Ipv4;
using util::Prefix;

struct Opts {
  std::uint64_t packets = 200000;
  std::uint32_t ases = 64;
  int hops = 3;
  std::uint32_t dests = 32;
  std::uint64_t seed = 2021;
  std::uint32_t shards = 4;
  std::string json_path;
  double min_speedup = 0.0;
  /// Loud memory-regression gate: when > 0, any workload that records
  /// a peak RSS above this many kB fails the run (exit 4). CI smoke
  /// passes the ceiling matching its --census-scale so the recorded
  /// peak_rss_kb cannot silently creep back up.
  std::uint64_t max_rss_regression_kb = 0;
  /// Topology scale of the million_host_census row. The default builds
  /// the full ≥10⁶-host / ≥10⁴-AS world (the recorded BENCH row); CI
  /// smoke caps it (e.g. 0.047 ≈ 10⁵ hosts) to stay inside the job
  /// budget — the world-size floors are only enforced at full scale.
  double census_scale = 0.5;

  static Opts parse(int argc, char** argv) {
    Opts o;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto val = [&](const char* prefix) -> const char* {
        return arg.c_str() + std::strlen(prefix);
      };
      if (arg.rfind("--packets=", 0) == 0) {
        o.packets = std::strtoull(val("--packets="), nullptr, 10);
      } else if (arg.rfind("--ases=", 0) == 0) {
        o.ases = static_cast<std::uint32_t>(
            std::strtoul(val("--ases="), nullptr, 10));
      } else if (arg.rfind("--hops=", 0) == 0) {
        o.hops = std::atoi(val("--hops="));
      } else if (arg.rfind("--dests=", 0) == 0) {
        o.dests = static_cast<std::uint32_t>(
            std::strtoul(val("--dests="), nullptr, 10));
      } else if (arg.rfind("--seed=", 0) == 0) {
        o.seed = std::strtoull(val("--seed="), nullptr, 10);
      } else if (arg.rfind("--shards=", 0) == 0) {
        o.shards = static_cast<std::uint32_t>(
            std::strtoul(val("--shards="), nullptr, 10));
      } else if (arg.rfind("--json=", 0) == 0) {
        o.json_path = val("--json=");
      } else if (arg.rfind("--min-speedup=", 0) == 0) {
        o.min_speedup = std::atof(val("--min-speedup="));
      } else if (arg.rfind("--max-rss-regression=", 0) == 0) {
        o.max_rss_regression_kb =
            std::strtoull(val("--max-rss-regression="), nullptr, 10);
      } else if (arg.rfind("--census-scale=", 0) == 0) {
        o.census_scale = std::atof(val("--census-scale="));
      } else {
        std::cout << "usage: bench_netsim [--packets=N] [--ases=N] "
                     "[--hops=N] [--dests=N] [--seed=N] [--shards=N] "
                     "[--json=FILE] [--min-speedup=F] "
                     "[--max-rss-regression=KB] [--census-scale=F]\n";
        std::exit(arg == "--help" ? 0 : 64);
      }
    }
    if (o.ases < 4 || o.dests == 0 || o.hops < 1 || o.shards < 2) {
      std::cerr << "bench_netsim: need --ases>=4, --dests>=1, --hops>=1, "
                   "--shards>=2\n";
      std::exit(64);
    }
    return o;
  }
};

class NullSink : public netsim::App {
 public:
  void on_datagram(const netsim::Datagram&) override {}
};

using util::fnv1a64;
constexpr std::uint64_t kFnvBasis = util::kFnv1aBasis;

/// The world under test plus the target list for one workload.
struct World {
  std::unique_ptr<Simulator> sim;
  HostId scanner = netsim::kInvalidHost;
  std::vector<Ipv4> targets;
  NullSink sink;
};

/// Ring-of-ASes topology with a few chords; destinations spread evenly
/// around the ring, optionally alternating with 3-member anycast
/// groups. Identical for every (seed, opts) pair by construction.
World build_world(const Opts& opts, bool anycast) {
  World w;
  netsim::SimConfig cfg;
  cfg.seed = opts.seed;
  w.sim = std::make_unique<Simulator>(cfg);
  auto& net = w.sim->net();
  for (std::uint32_t i = 1; i <= opts.ases; ++i) {
    netsim::AsConfig as;
    as.asn = i;
    as.internal_hops = opts.hops;
    net.add_as(as);
    net.announce(i, Prefix{Ipv4{10, static_cast<std::uint8_t>(i % 250), 0, 0},
                           16});
  }
  for (std::uint32_t i = 1; i <= opts.ases; ++i) {
    net.link(i, i % opts.ases + 1);  // ring
    if (i % 7 == 0 && i + opts.ases / 3 <= opts.ases) {
      net.link(i, i + opts.ases / 3);  // chord
    }
  }
  auto host_addr = [&](std::uint32_t asn, std::uint8_t lo) {
    return Ipv4{10, static_cast<std::uint8_t>(asn % 250),
                static_cast<std::uint8_t>(asn / 250), lo};
  };
  w.scanner = net.add_host(1, {host_addr(1, 1)});
  for (std::uint32_t j = 0; j < opts.dests; ++j) {
    // Spread destinations over ASes 2..ases (skipping the vantage AS).
    const std::uint32_t asn = 2 + (j * (opts.ases - 1)) / opts.dests;
    if (anycast && j % 2 == 1) {
      const Ipv4 group{9, 9, static_cast<std::uint8_t>(j % 250), 1};
      for (std::uint32_t m = 0; m < 3; ++m) {
        const std::uint32_t masn = 2 + (asn - 2 + m * opts.ases / 3) %
                                           (opts.ases - 1);
        const auto member = net.add_host(
            masn, {host_addr(masn, static_cast<std::uint8_t>(100 + j % 100))});
        net.join_anycast(group, member);
        w.sim->bind_udp(member, 53, &w.sink);
      }
      w.targets.push_back(group);
    } else {
      const auto host = net.add_host(
          asn, {host_addr(asn, static_cast<std::uint8_t>(2 + j % 200))});
      w.sim->bind_udp(host, 53, &w.sink);
      w.targets.push_back(host_addr(asn, static_cast<std::uint8_t>(2 + j % 200)));
    }
  }
  return w;
}

struct RunResult {
  netsim::SimCounters counters;
  netsim::RouteCacheStats cache_stats;
  std::uint64_t trace_hash = kFnvBasis;
  std::uint64_t route_hash = kFnvBasis;
  double seconds = 0.0;
};

void attach_trace_tap(Simulator& sim, RunResult& r) {
  sim.add_tap([&r](netsim::TapEvent ev, const netsim::Packet& p) {
    r.trace_hash = fnv1a64(r.trace_hash, static_cast<std::uint64_t>(ev));
    r.trace_hash = fnv1a64(r.trace_hash, p.src.value());
    r.trace_hash = fnv1a64(r.trace_hash, p.dst.value());
    r.trace_hash = fnv1a64(r.trace_hash,
                         static_cast<std::uint64_t>(p.ttl) << 32 |
                             std::uint64_t{p.src_port} << 16 | p.dst_port);
  });
}

void hash_routes(Simulator& sim, const std::vector<Ipv4>& targets,
                 RunResult& r) {
  // Router-hop sequences for every (vantage, target) pair, hashed:
  // both sides of an A/B must agree hop for hop.
  for (const auto dst : targets) {
    const auto route = sim.net().route_from_as(1, dst);
    if (!route) continue;
    r.route_hash = fnv1a64(r.route_hash, route->dst_host);
    for (const auto hop : route->router_hops) {
      r.route_hash = fnv1a64(r.route_hash, hop.value());
    }
  }
}

/// Sends `packets` probes round-robin over the targets and drains the
/// event queue. The timed section covers injection + routing + delivery
/// — the full per-packet fast path.
RunResult run_workload(const Opts& opts, bool anycast, bool cached,
                       bool traced, std::uint64_t packets) {
  World w = build_world(opts, anycast);
  auto& sim = *w.sim;
  sim.net().set_route_cache_enabled(cached);
  RunResult r;
  if (traced) attach_trace_tap(sim, r);
  // Paced injection: drain the queue every burst so the event heap
  // stays scan-sized instead of ballooning to the whole campaign.
  constexpr std::uint64_t kBurst = 4096;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t p = 0; p < packets; ++p) {
    netsim::SendOptions send;
    send.dst = w.targets[p % w.targets.size()];
    send.src_port = static_cast<std::uint16_t>(40000 + (p & 0xFFF));
    send.dst_port = 53;
    send.ttl = 255;
    sim.send_udp(w.scanner, std::move(send));
    if ((p + 1) % kBurst == 0) sim.run();
  }
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.counters = sim.counters();
  r.cache_stats = sim.net().route_cache_stats();
  hash_routes(sim, w.targets, r);
  return r;
}

/// Address-plane lookup surface (the per-delivery addr→host step): a
/// dense 2^17-host population spread over the ring, resolved in a
/// strided (cache-hostile, packet-stream-like) order. The A/B flips
/// Network's lookup structure — flat sorted table vs. the legacy
/// unordered_map — on the same interned address pool; owners must be
/// identical element for element (hashed into the determinism check).
RunResult run_addr_plane_workload(const Opts& opts, bool flat, bool /*traced*/,
                                  std::uint64_t lookups) {
  constexpr std::uint32_t kLookupHosts = 1u << 17;
  World w = build_world(opts, /*anycast=*/false);
  auto& net = w.sim->net();
  std::vector<Ipv4> addrs;
  addrs.reserve(kLookupHosts);
  for (std::uint32_t i = 0; i < kLookupHosts; ++i) {
    // 172.16/12 private space: disjoint from build_world's 10/8 hosts
    // and the 100.64/10 router pool.
    const Ipv4 addr{(172u << 24) | (16u << 20) | i};
    (void)net.add_host(2 + i % (opts.ases - 1), {addr});
    addrs.push_back(addr);
  }
  net.set_flat_addr_plane_enabled(flat);
  net.freeze_addr_plane();

  RunResult r;
  std::uint64_t h = kFnvBasis;
  std::size_t idx = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t p = 0; p < lookups; ++p) {
    idx += 48271;  // co-prime stride: successive probes never adjacent
    if (idx >= kLookupHosts) idx -= kLookupHosts;
    const HostId owner = net.resolve_destination(
        addrs[idx], static_cast<Asn>(2 + p % (opts.ases - 1)));
    h = fnv1a64(h, owner);
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.trace_hash = h;
  r.route_hash = h;
  return r;
}

/// Fires one probe per timer event — the long-horizon half of the
/// scheduler-stress mix (in legacy mode the engine wraps these in
/// closures, reproducing the pre-pool timer cost).
class ProbeTimer : public netsim::TimerTarget {
 public:
  ProbeTimer(Simulator& sim, const World& w) : sim_(&sim), w_(&w) {}
  void on_timer(std::uint64_t target_idx, std::uint64_t src_port) override {
    netsim::SendOptions send;
    send.dst = w_->targets[target_idx];
    send.src_port = static_cast<std::uint16_t>(src_port);
    send.dst_port = 53;
    send.ttl = 255;
    sim_->send_udp(w_->scanner, std::move(send));
  }

 private:
  Simulator* sim_;
  const World* w_;
};

/// Scheduler-stress workloads. Both shapes keep the event heap loaded
/// with the whole campaign so per-event scheduling cost dominates;
/// `typed` selects the pooled engine vs. the legacy closure engine.
///
/// Burst (timer_mix=false): every probe is injected back-to-back at
/// one instant and a single drain executes the campaign — delivery
/// legs land in huge same-timestamp batches.
///
/// Timer mix (timer_mix=true): probes are paced in 1 ms slots, and
/// every probe arms a timeout timer at slot + 3 s that fires a retry
/// probe — the exact shape the transactional scanner and resolver put
/// on the scheduler (long-horizon timers inheriting the pacing's
/// clustering). Deliveries stay pending across slots, so the heap
/// holds bursts, deliveries, and a 3-second timer horizon at once.
RunResult run_sched_workload(const Opts& opts, bool timer_mix, bool typed,
                             bool traced, std::uint64_t packets) {
  World w = build_world(opts, /*anycast=*/false);
  auto& sim = *w.sim;
  sim.set_typed_events_enabled(typed);
  RunResult r;
  if (traced) attach_trace_tap(sim, r);
  ProbeTimer timer(sim, w);
  const auto t0 = std::chrono::steady_clock::now();
  auto send_probe = [&](std::uint64_t p) {
    netsim::SendOptions send;
    send.dst = w.targets[p % w.targets.size()];
    send.src_port = static_cast<std::uint16_t>(40000 + (p & 0xFFF));
    send.dst_port = 53;
    send.ttl = 255;
    sim.send_udp(w.scanner, std::move(send));
  };
  if (timer_mix) {
    constexpr std::uint64_t kSlotBurst = 4096;
    const std::uint64_t direct = packets / 2;  // the rest are retries
    for (std::uint64_t sent = 0; sent < direct;) {
      const std::uint64_t n = std::min(kSlotBurst, direct - sent);
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t p = sent + i;
        send_probe(p);
        sim.schedule_timer(util::Duration::seconds(3), &timer,
                           p % w.targets.size(), 40000 + (p & 0xFFF));
      }
      sent += n;
      // Advance one pacing slot without draining the in-flight
      // deliveries (they are 1.5–50 ms out) or the timer horizon.
      sim.run_until(sim.now() + util::Duration::millis(1));
    }
  } else {
    for (std::uint64_t p = 0; p < packets; ++p) send_probe(p);
  }
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.counters = sim.counters();
  hash_routes(sim, w.targets, r);
  return r;
}

// --- sharded census-style workloads ---------------------------------

/// Authoritative-style responder: decodes the query, answers with two
/// A records (dynamic mirror + control), encodes, sends — the per-
/// target serving cost of a census scan, which is the work sharding
/// spreads across cores.
class DnsResponder : public netsim::App {
 public:
  DnsResponder(Simulator& sim, HostId host) : sim_(&sim), host_(host) {}

  void on_datagram(const netsim::Datagram& dgram) override {
    auto parsed = dnswire::decode(*dgram.payload);
    if (!parsed) return;
    const dnswire::Message& msg = parsed.value();
    if (msg.header.qr || msg.questions.empty()) return;
    dnswire::Message resp = dnswire::make_response(msg);
    resp.header.ra = true;
    const auto& qname = msg.questions.front().name;
    resp.answers.push_back(dnswire::ResourceRecord{
        qname, dnswire::RrType::a, dnswire::RrClass::in, 60,
        dnswire::ARecord{dgram.src}});
    resp.answers.push_back(dnswire::ResourceRecord{
        qname, dnswire::RrType::a, dnswire::RrClass::in, 60,
        dnswire::ARecord{Ipv4{203, 0, 113, 9}}});
    netsim::SendOptions out;
    out.dst = dgram.src;
    out.src_port = dgram.dst_port;
    out.dst_port = dgram.src_port;
    out.payload = dnswire::encode(resp);
    sim_->send_udp(host_, std::move(out));
  }

 private:
  Simulator* sim_;
  HostId host_;
};

/// Arena-codec counterpart of DnsResponder with a batch entry point:
/// one cohort of queries is served through decode_into → view-built
/// mirror answer → encode_into, arenas reset per message — the
/// zero-allocation serving loop (docs/architecture.md,
/// "Zero-allocation wire path"). Responses are byte-identical to
/// DnsResponder's, so the scalar-vs-batched A/B can require identical
/// traces and counters.
class ArenaDnsResponder : public netsim::App {
 public:
  ArenaDnsResponder(Simulator& sim, HostId host) : sim_(&sim), host_(host) {}

  void on_datagram(const netsim::Datagram& dgram) override { serve(dgram); }

  void on_batch(std::span<const netsim::Datagram> batch) override {
    for (const auto& dgram : batch) serve(dgram);
  }

 private:
  void serve(const netsim::Datagram& dgram) {
    rx_.reset();
    tx_.reset();
    auto parsed = dnswire::decode_into(
        rx_, std::span<const std::uint8_t>(*dgram.payload));
    if (!parsed.ok()) return;
    const dnswire::MessageView& msg = parsed.value();
    if (msg.header.qr || msg.questions.empty()) return;
    auto answers = tx_.alloc_array<dnswire::RecordView>(2);
    answers[0].name = msg.questions.front().name;
    answers[0].type = dnswire::RrType::a;
    answers[0].ttl = 60;
    answers[0].rdata.tag = dnswire::RdataView::Tag::a;
    answers[0].rdata.a_addr = dgram.src;
    answers[1] = answers[0];
    answers[1].rdata.a_addr = Ipv4{203, 0, 113, 9};
    dnswire::MessageView resp;
    resp.header.id = msg.header.id;
    resp.header.qr = true;
    resp.header.rd = msg.header.rd;
    resp.header.ra = true;
    resp.questions = msg.questions;
    resp.answers = answers;
    const auto wire = dnswire::encode_into(tx_, resp);
    netsim::SendOptions out;
    out.dst = dgram.src;
    out.src_port = dgram.dst_port;
    out.dst_port = dgram.src_port;
    out.payload.assign(wire.begin(), wire.end());
    sim_->send_udp(host_, std::move(out));
  }

  Simulator* sim_;
  HostId host_;
  dnswire::WireArena rx_;
  dnswire::WireArena tx_;
};

/// Sends one pacing slot's worth of pre-encoded probes per timer fire
/// (scanners pace in slots, not per-packet timers — and the slot timer
/// keeps the scanner shard's event count proportional to slots, not
/// probes).
class ProbePacer : public netsim::TimerTarget {
 public:
  ProbePacer(Simulator& sim, HostId scanner, const std::vector<Ipv4>& targets,
             std::vector<std::uint8_t> query)
      : sim_(&sim), scanner_(scanner), targets_(&targets),
        query_(std::move(query)) {}

  void on_timer(std::uint64_t first, std::uint64_t count) override {
    for (std::uint64_t p = first; p < first + count; ++p) {
      netsim::SendOptions send;
      send.dst = (*targets_)[p % targets_->size()];
      send.src_port = static_cast<std::uint16_t>(40000 + (p & 0xFFF));
      send.dst_port = 53;
      send.ttl = 255;
      send.payload = query_;  // clone of the template
      sim_->send_udp(scanner_, std::move(send));
    }
  }

 private:
  Simulator* sim_;
  HostId scanner_;
  const std::vector<Ipv4>* targets_;
  std::vector<std::uint8_t> query_;
};

/// World for the sharded workloads: every non-vantage AS hosts an
/// upstream resolver (DnsResponder) and a recursive forwarder relaying
/// to it — the ODNS's dominant species, so each probe costs two DNS
/// transactions of serving work on its target's shard (SAV off
/// everywhere so relays work). With `relay`, targets are additionally
/// transparent-forwarder hosts whose port-53 redirect points at the
/// *next* AS's recursive forwarder — which the round-robin AS
/// partition places on a different shard for every shard count > 1,
/// so each probe crosses the mailbox fabric on the relay leg too.
struct ShardedWorld {
  std::unique_ptr<Simulator> sim;
  HostId scanner = netsim::kInvalidHost;
  std::vector<Ipv4> targets;
  std::vector<std::unique_ptr<DnsResponder>> responders;
  std::vector<std::unique_ptr<nodes::RecursiveForwarder>> forwarders;
  NullSink sink;  // scanner side: capture is counting, not decoding
};

ShardedWorld build_sharded_world(const Opts& opts, bool relay,
                                 std::uint32_t shards, bool threads) {
  ShardedWorld w;
  netsim::SimConfig cfg;
  cfg.seed = opts.seed;
  cfg.shards = shards;
  cfg.shard_threads = threads;
  w.sim = std::make_unique<Simulator>(cfg);
  auto& net = w.sim->net();
  for (std::uint32_t i = 1; i <= opts.ases; ++i) {
    netsim::AsConfig as;
    as.asn = i;
    as.internal_hops = opts.hops;
    as.source_address_validation = false;  // transparent relays need it off
    net.add_as(as);
    net.announce(i, Prefix{Ipv4{10, static_cast<std::uint8_t>(i % 250), 0, 0},
                           16});
  }
  for (std::uint32_t i = 1; i <= opts.ases; ++i) {
    net.link(i, i % opts.ases + 1);  // ring
    if (i % 7 == 0 && i + opts.ases / 3 <= opts.ases) {
      net.link(i, i + opts.ases / 3);  // chord
    }
  }
  auto host_addr = [&](std::uint32_t asn, std::uint8_t lo) {
    return Ipv4{10, static_cast<std::uint8_t>(asn % 250),
                static_cast<std::uint8_t>(asn / 250), lo};
  };
  w.scanner = net.add_host(1, {host_addr(1, 1)});
  w.sim->bind_udp_wildcard(w.scanner, &w.sink);
  std::vector<Ipv4> forwarder_addrs(opts.ases + 1);
  for (std::uint32_t asn = 2; asn <= opts.ases; ++asn) {
    // Upstream resolver of this AS...
    const Ipv4 upstream_addr = host_addr(asn, 53);
    const auto upstream = net.add_host(asn, {upstream_addr});
    w.responders.push_back(std::make_unique<DnsResponder>(*w.sim, upstream));
    w.sim->bind_udp(upstream, 53, w.responders.back().get());
    // ...and the recursive forwarder relaying to it. Caching off: every
    // probe must cost a full relay round trip, like an uncached census
    // first contact.
    const Ipv4 fwd_addr = host_addr(asn, 80);
    const auto fwd = net.add_host(asn, {fwd_addr});
    nodes::ForwarderConfig fc;
    fc.upstream = upstream_addr;
    fc.cache_responses = false;
    w.forwarders.push_back(
        std::make_unique<nodes::RecursiveForwarder>(*w.sim, fwd, fc));
    w.forwarders.back()->start();
    forwarder_addrs[asn] = fwd_addr;
  }
  for (std::uint32_t asn = 2; asn <= opts.ases; ++asn) {
    if (relay) {
      // Transparent forwarder in this AS relaying to the next AS's
      // recursive forwarder: probe and relay cross the shard fabric.
      const std::uint32_t next = asn == opts.ases ? 2 : asn + 1;
      const Ipv4 tf_addr = host_addr(asn, 77);
      const auto tf = net.add_host(asn, {tf_addr});
      w.sim->add_port_redirect(tf, 53, forwarder_addrs[next]);
      w.targets.push_back(tf_addr);
    } else {
      w.targets.push_back(forwarder_addrs[asn]);
    }
  }
  return w;
}

/// One sharded-workload pass. Timing covers pacing + serving + drain;
/// `critical_seconds` is max per-shard CPU busy time (= the 1-shard
/// wall time when shards == 1, since everything runs on one shard).
struct ShardedRun {
  RunResult base;
  double critical_seconds = 0.0;
  std::uint64_t mailbox_in = 0;
  std::uint64_t mailbox_overflows = 0;
};

ShardedRun run_sharded_workload(const Opts& opts, bool relay,
                                std::uint32_t shards, bool traced,
                                std::uint64_t packets, bool threads = true) {
  ShardedWorld w = build_sharded_world(opts, relay, shards, threads);
  auto& sim = *w.sim;
  if (traced) sim.set_packet_trace_enabled(true);
  const auto query = dnswire::encode(dnswire::make_query(
      0x777, *dnswire::Name::parse("scan.odns-study.net"),
      dnswire::RrType::a));
  ProbePacer pacer(sim, w.scanner, w.targets, query);
  // 16-probe slots at 16 µs (1 µs/probe average): hundreds of probes
  // per lookahead window, so windows stay fat and barrier overhead
  // amortizes (census pacing shape).
  constexpr std::uint64_t kSlot = 16;
  for (std::uint64_t p = 0; p < packets; p += kSlot) {
    sim.schedule_timer_on(w.scanner, util::Duration::micros(
                                         static_cast<std::int64_t>(p)),
                          &pacer, p, std::min(kSlot, packets - p));
  }
  ShardedRun r;
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  r.base.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.base.counters = sim.counters();
  if (traced) r.base.trace_hash = sim.canonical_trace_digest();
  hash_routes(sim, w.targets, r.base);
  if (shards > 1) {
    for (std::uint32_t s = 0; s < sim.shard_count(); ++s) {
      const auto& stats = sim.shard_stats(s);
      r.critical_seconds = std::max(r.critical_seconds, stats.busy_seconds);
      r.mailbox_in += stats.mailbox_in;
      r.mailbox_overflows += stats.mailbox_overflows;
    }
  } else {
    r.critical_seconds = r.base.seconds;
  }
  return r;
}

bool counters_equal(const netsim::SimCounters& a,
                    const netsim::SimCounters& b) {
  return a.sent == b.sent && a.delivered == b.delivered &&
         a.dropped_sav == b.dropped_sav && a.dropped_loss == b.dropped_loss &&
         a.dropped_no_route == b.dropped_no_route &&
         a.ttl_expired == b.ttl_expired &&
         a.icmp_generated == b.icmp_generated && a.redirected == b.redirected;
}

/// One A/B row. The labels name the two modes being compared so the
/// JSON keys stay self-describing: "uncached"/"cached" for the route-
/// cache rows, "closure"/"typed" for the scheduler rows.
struct WorkloadReport {
  std::string name;
  std::string baseline_label;
  std::string fast_label;
  double baseline_pps = 0.0;
  double fast_pps = 0.0;
  double speedup = 0.0;
  bool identical = false;
  bool has_cache_stats = false;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  // Sharded rows only: wall-clock throughput of the sharded run (the
  // critical-path number is fast_pps) and mailbox-fabric statistics.
  bool has_shard_stats = false;
  std::uint32_t shards = 0;
  double sharded_wall_pps = 0.0;
  std::uint64_t mailbox_in = 0;
  std::uint64_t mailbox_overflows = 0;
  // multi_vantage_census row only: vantage count, the scanner shard's
  // busy time as a share of the busiest shard's in both modes, and
  // whether the scanner shard is still the critical path with the
  // vantage set active (the acceptance point: it must not be).
  bool has_vantage_stats = false;
  std::uint32_t vantages = 0;
  double scanner_busy_share_single = 0.0;
  double scanner_busy_share_multi = 0.0;
  bool scanner_is_max_busy_multi = false;
  // million_host_census row only: the world size, the memory
  // high-water marks (process VmHWM and the streaming correlator's
  // pending window), and the census-table hash both executions must
  // share. The pps fields of this row count *hosts simulated* per
  // second, not packets.
  bool has_census_stats = false;
  std::uint64_t census_hosts = 0;
  std::uint64_t census_ases = 0;
  std::uint64_t peak_rss_kb = 0;
  std::uint64_t peak_pending_probes = 0;
  std::uint64_t census_hash = 0;
  // fault_plane_census row only: graceful-degradation accounting of
  // the faulted A/B run, plus an ungated coverage sweep (loss rate ×
  // retransmission) recorded for context, not gated on.
  bool has_fault_stats = false;
  double coverage = 0.0;
  std::uint64_t probes_retried = 0;
  std::uint64_t responses_duplicate = 0;
  std::uint64_t responses_corrupt = 0;
  std::uint64_t ases_degraded = 0;
  double coverage_loss1_r0 = 0.0;
  double coverage_loss1_r2 = 0.0;
  double coverage_loss5_r0 = 0.0;
  double coverage_loss5_r2 = 0.0;
};

/// Shared A/B scaffolding: times both modes (no tap in the hot loop,
/// best-of-3 to guard against scheduler noise on shared machines),
/// then re-runs both with a full trace tap and requires the traced
/// pair AND the timed pair to be byte-identical. `run(fast, traced,
/// packets)` executes one workload pass in the given mode.
template <typename RunFn>
WorkloadReport ab_workload(const Opts& opts, const std::string& name,
                           const std::string& baseline_label,
                           const std::string& fast_label, RunFn run) {
  constexpr int kRepeats = 3;
  WorkloadReport rep;
  rep.name = name;
  rep.baseline_label = baseline_label;
  rep.fast_label = fast_label;
  RunResult baseline, fast;
  for (int rep_i = 0; rep_i < kRepeats; ++rep_i) {
    auto b = run(/*fast=*/false, /*traced=*/false, opts.packets);
    auto f = run(/*fast=*/true, /*traced=*/false, opts.packets);
    if (rep_i == 0 || b.seconds < baseline.seconds) baseline = std::move(b);
    if (rep_i == 0 || f.seconds < fast.seconds) fast = std::move(f);
  }
  rep.baseline_pps = static_cast<double>(opts.packets) / baseline.seconds;
  rep.fast_pps = static_cast<double>(opts.packets) / fast.seconds;
  rep.speedup = rep.fast_pps / rep.baseline_pps;
  const std::uint64_t vpackets = std::min<std::uint64_t>(opts.packets, 50000);
  const auto vb = run(false, true, vpackets);
  const auto vf = run(true, true, vpackets);
  rep.identical = counters_equal(vb.counters, vf.counters) &&
                  vb.trace_hash == vf.trace_hash &&
                  vb.route_hash == vf.route_hash &&
                  counters_equal(baseline.counters, fast.counters) &&
                  baseline.route_hash == fast.route_hash;
  rep.cache_hits = fast.cache_stats.hits;
  rep.cache_misses = fast.cache_stats.misses;
  return rep;
}

WorkloadReport bench_workload(const Opts& opts, const std::string& name,
                              bool anycast) {
  WorkloadReport rep = ab_workload(
      opts, name, "uncached", "cached",
      [&](bool fast, bool traced, std::uint64_t packets) {
        return run_workload(opts, anycast, /*cached=*/fast, traced, packets);
      });
  rep.has_cache_stats = true;
  return rep;
}

WorkloadReport bench_addr_plane_workload(const Opts& opts) {
  return ab_workload(
      opts, "addr_plane_lookup", "hash_map", "flat_table",
      [&](bool fast, bool traced, std::uint64_t packets) {
        return run_addr_plane_workload(opts, /*flat=*/fast, traced, packets);
      });
}

WorkloadReport bench_sched_workload(const Opts& opts, const std::string& name,
                                    bool timer_mix) {
  return ab_workload(
      opts, name, "closure", "typed",
      [&](bool fast, bool traced, std::uint64_t packets) {
        return run_sched_workload(opts, timer_mix, /*typed=*/fast, traced,
                                  packets);
      });
}

/// Sharded A/B: the 1-shard typed engine vs. the N-shard run on the
/// *same* workload. The sharded side's throughput is the parallel
/// critical path (packets / max per-shard busy seconds); wall-clock is
/// recorded alongside. Determinism compares summed counters, the
/// canonical trace digest, and router-hop hashes across shard counts.
WorkloadReport bench_sharded_workload(const Opts& opts,
                                      const std::string& name, bool relay) {
  constexpr int kRepeats = 3;
  WorkloadReport rep;
  rep.name = name;
  rep.baseline_label = "one_shard";
  rep.fast_label = "sharded_critical_path";
  rep.has_shard_stats = true;
  rep.shards = opts.shards;
  ShardedRun baseline, fast, fast_threaded;
  for (int rep_i = 0; rep_i < kRepeats; ++rep_i) {
    auto b = run_sharded_workload(opts, relay, 1, false, opts.packets);
    // Critical path from the sequential scheduler: per-shard CPU time
    // unpolluted by time-slicing (byte-identical to the threaded run).
    auto f = run_sharded_workload(opts, relay, opts.shards, false,
                                  opts.packets, /*threads=*/false);
    // Wall clock from the real worker-thread run.
    auto ft = run_sharded_workload(opts, relay, opts.shards, false,
                                   opts.packets, /*threads=*/true);
    if (rep_i == 0 || b.critical_seconds < baseline.critical_seconds) {
      baseline = std::move(b);
    }
    if (rep_i == 0 || f.critical_seconds < fast.critical_seconds) {
      fast = std::move(f);
    }
    if (rep_i == 0 || ft.base.seconds < fast_threaded.base.seconds) {
      fast_threaded = std::move(ft);
    }
  }
  rep.baseline_pps =
      static_cast<double>(opts.packets) / baseline.critical_seconds;
  rep.fast_pps = static_cast<double>(opts.packets) / fast.critical_seconds;
  rep.speedup = rep.fast_pps / rep.baseline_pps;
  rep.sharded_wall_pps =
      static_cast<double>(opts.packets) / fast_threaded.base.seconds;
  rep.mailbox_in = fast.mailbox_in;
  rep.mailbox_overflows = fast.mailbox_overflows;
  const std::uint64_t vpackets = std::min<std::uint64_t>(opts.packets, 30000);
  const auto vb = run_sharded_workload(opts, relay, 1, true, vpackets);
  const auto vf =
      run_sharded_workload(opts, relay, opts.shards, true, vpackets);
  rep.identical =
      counters_equal(vb.base.counters, vf.base.counters) &&
      vb.base.trace_hash == vf.base.trace_hash &&
      vb.base.route_hash == vf.base.route_hash &&
      counters_equal(baseline.base.counters, fast.base.counters) &&
      counters_equal(fast.base.counters, fast_threaded.base.counters) &&
      baseline.base.route_hash == fast.base.route_hash;
  return rep;
}

// --- multi-vantage census workload ----------------------------------

/// Shard count of the multi_vantage_census row. Fixed at 8: the
/// acceptance point is that the single-vantage scanner shard is the
/// structural critical path on a serving-light workload at 8 shards,
/// and the vantage set lifts it.
constexpr std::uint32_t kVantageShards = 8;

/// Serving-light world for the multi-vantage row: every non-vantage AS
/// hosts one DnsResponder answering directly (no forwarder relay), so
/// per-target serving work is minimal and the scan-side work — probe
/// encode + pacing + capture decode — dominates. In single-vantage
/// mode all of that lands on the scanner's shard.
struct VantageWorld {
  std::unique_ptr<Simulator> sim;
  HostId scanner = netsim::kInvalidHost;
  Ipv4 scanner_addr;
  std::vector<Ipv4> targets;  // one entry per probe (targets repeat)
  std::vector<std::unique_ptr<DnsResponder>> responders;
};

VantageWorld build_vantage_world(const Opts& opts, std::uint32_t shards,
                                 bool threads, std::uint64_t packets) {
  VantageWorld w;
  netsim::SimConfig cfg;
  cfg.seed = opts.seed;
  cfg.shards = shards;
  cfg.shard_threads = threads;
  w.sim = std::make_unique<Simulator>(cfg);
  auto& net = w.sim->net();
  for (std::uint32_t i = 1; i <= opts.ases; ++i) {
    netsim::AsConfig as;
    as.asn = i;
    as.internal_hops = opts.hops;
    as.source_address_validation = false;  // vantages spoof the capture addr
    net.add_as(as);
    net.announce(i, Prefix{Ipv4{10, static_cast<std::uint8_t>(i % 250), 0, 0},
                           16});
  }
  for (std::uint32_t i = 1; i <= opts.ases; ++i) {
    net.link(i, i % opts.ases + 1);  // ring
    if (i % 7 == 0 && i + opts.ases / 3 <= opts.ases) {
      net.link(i, i + opts.ases / 3);  // chord
    }
  }
  auto host_addr = [&](std::uint32_t asn, std::uint8_t lo) {
    return Ipv4{10, static_cast<std::uint8_t>(asn % 250),
                static_cast<std::uint8_t>(asn / 250), lo};
  };
  w.scanner_addr = host_addr(1, 1);
  w.scanner = net.add_host(1, {w.scanner_addr});
  std::vector<Ipv4> responder_addrs;
  for (std::uint32_t asn = 2; asn <= opts.ases; ++asn) {
    const Ipv4 addr = host_addr(asn, 53);
    const auto host = net.add_host(asn, {addr});
    w.responders.push_back(std::make_unique<DnsResponder>(*w.sim, host));
    w.sim->bind_udp(host, 53, w.responders.back().get());
    responder_addrs.push_back(addr);
  }
  w.targets.reserve(packets);
  for (std::uint64_t p = 0; p < packets; ++p) {
    w.targets.push_back(responder_addrs[p % responder_addrs.size()]);
  }
  return w;
}

scan::ScanConfig vantage_scan_config() {
  scan::ScanConfig sc;
  sc.qname = *dnswire::Name::parse("scan.odns-study.net");
  // Census pacing shape, compressed: 1 µs gaps keep hundreds of probes
  // per lookahead window; a short timeout bounds the drain.
  sc.probes_per_second = 1000000;
  sc.timeout = util::Duration::millis(200);
  sc.drain_settle = util::Duration::millis(10);
  return sc;
}

struct VantageRun {
  RunResult base;
  double critical_seconds = 0.0;
  double scanner_busy_share = 0.0;  // scanner shard / busiest shard
  bool scanner_is_max_busy = false;
};

void collect_vantage_stats(Simulator& sim, HostId scanner_host,
                           VantageRun& r) {
  double max_busy = 0.0;
  for (std::uint32_t s = 0; s < sim.shard_count(); ++s) {
    max_busy = std::max(max_busy, sim.shard_stats(s).busy_seconds);
  }
  const double scanner_busy =
      sim.shard_stats(sim.shard_of(scanner_host)).busy_seconds;
  r.critical_seconds = max_busy;
  r.scanner_busy_share = max_busy > 0.0 ? scanner_busy / max_busy : 0.0;
  r.scanner_is_max_busy = scanner_busy >= max_busy;
}

/// One pass: the full scan (start → run_to_completion) through either
/// the classic TransactionalScanner (multi_vantage=false) or a
/// VantageSet with one capture host per shard.
VantageRun run_vantage_workload(const Opts& opts, bool multi_vantage,
                                std::uint32_t shards, bool traced,
                                std::uint64_t packets, bool threads = false) {
  VantageWorld w = build_vantage_world(opts, shards, threads, packets);
  auto& sim = *w.sim;
  if (traced) sim.set_packet_trace_enabled(true);
  VantageRun r;
  const auto t0 = std::chrono::steady_clock::now();
  if (multi_vantage) {
    scan::VantageSet set(
        sim, vantage_scan_config(), w.scanner_addr,
        honeypot::attach_capture_vantages(sim.net(), /*mirror_as=*/1,
                                          kVantageShards));
    set.start(w.targets);
    set.run_to_completion();
  } else {
    scan::TransactionalScanner scanner(sim, w.scanner, vantage_scan_config());
    scanner.start(w.targets);
    scanner.run_to_completion();
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.base.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.base.counters = sim.counters();
  if (traced) r.base.trace_hash = sim.canonical_trace_digest();
  hash_routes(sim, w.targets, r.base);
  if (shards > 1) {
    collect_vantage_stats(sim, w.scanner, r);
  } else {
    r.critical_seconds = r.base.seconds;
    r.scanner_busy_share = 1.0;
    r.scanner_is_max_busy = true;
  }
  return r;
}

/// The multi_vantage_census row: single-vantage vs. multi-vantage on
/// the same serving-light world at 8 shards. Both sides are measured
/// as the parallel critical path from the sequential scheduler (max
/// per-shard CPU busy seconds, unpolluted by time-slicing); wall clock
/// of the threaded multi-vantage run is recorded alongside.
/// Determinism compares the 8-shard multi-vantage run against the
/// 1-shard *single-vantage* engine — the cross-architecture equality
/// the multi-vantage census promises.
WorkloadReport bench_multi_vantage_workload(const Opts& opts) {
  constexpr int kRepeats = 3;
  WorkloadReport rep;
  rep.name = "multi_vantage_census";
  rep.baseline_label = "single_vantage";
  rep.fast_label = "multi_vantage";
  rep.has_shard_stats = true;
  rep.has_vantage_stats = true;
  rep.shards = kVantageShards;
  rep.vantages = kVantageShards;
  VantageRun baseline, fast, fast_threaded;
  for (int rep_i = 0; rep_i < kRepeats; ++rep_i) {
    auto b = run_vantage_workload(opts, false, kVantageShards, false,
                                  opts.packets);
    auto f = run_vantage_workload(opts, true, kVantageShards, false,
                                  opts.packets);
    auto ft = run_vantage_workload(opts, true, kVantageShards, false,
                                   opts.packets, /*threads=*/true);
    if (rep_i == 0 || b.critical_seconds < baseline.critical_seconds) {
      baseline = std::move(b);
    }
    if (rep_i == 0 || f.critical_seconds < fast.critical_seconds) {
      fast = std::move(f);
    }
    if (rep_i == 0 || ft.base.seconds < fast_threaded.base.seconds) {
      fast_threaded = std::move(ft);
    }
  }
  rep.baseline_pps =
      static_cast<double>(opts.packets) / baseline.critical_seconds;
  rep.fast_pps = static_cast<double>(opts.packets) / fast.critical_seconds;
  rep.speedup = rep.fast_pps / rep.baseline_pps;
  rep.sharded_wall_pps =
      static_cast<double>(opts.packets) / fast_threaded.base.seconds;
  rep.scanner_busy_share_single = baseline.scanner_busy_share;
  rep.scanner_busy_share_multi = fast.scanner_busy_share;
  rep.scanner_is_max_busy_multi = fast.scanner_is_max_busy;
  const std::uint64_t vpackets = std::min<std::uint64_t>(opts.packets, 30000);
  const auto vb = run_vantage_workload(opts, false, 1, true, vpackets);
  const auto vf =
      run_vantage_workload(opts, true, kVantageShards, true, vpackets);
  rep.identical = counters_equal(vb.base.counters, vf.base.counters) &&
                  vb.base.trace_hash == vf.base.trace_hash &&
                  vb.base.route_hash == vf.base.route_hash &&
                  counters_equal(baseline.base.counters, fast.base.counters) &&
                  counters_equal(fast.base.counters,
                                 fast_threaded.base.counters) &&
                  baseline.base.route_hash == fast.base.route_hash;
  return rep;
}

// --- amplification campaign workload --------------------------------

/// Victim count of the amplification row: enough spoof targets to
/// spread reflection delivery over several shards.
constexpr int kAmpVictims = 4;

/// One reflective-amplification pass over the cross-shard relay world:
/// a single attacker injects spoofed-victim queries at the transparent
/// forwarders, every response crosses the fabric to a victim's meter.
/// The campaign's merged reflection log is folded into the identity
/// hash, so the A/B also proves the *attack-scenario* output is
/// shard-count-invariant at bench scale.
ShardedRun run_amplification_workload(const Opts& opts, std::uint32_t shards,
                                      bool traced, std::uint64_t packets,
                                      bool threads = false) {
  ShardedWorld w = build_sharded_world(opts, /*relay=*/true, shards, threads);
  auto& sim = *w.sim;
  if (traced) sim.set_packet_trace_enabled(true);

  scan::AmplificationConfig ac;
  ac.qname = *dnswire::Name::parse("amp.scan.odns-study.net");
  ac.probes_per_second = 1000000;  // census pacing shape, compressed
  ac.settle = util::Duration::seconds(1);
  scan::AmplificationCampaign campaign(sim, ac);
  campaign.add_attacker(w.scanner);
  for (int v = 0; v < kAmpVictims; ++v) {
    const std::uint32_t asn =
        2 + (static_cast<std::uint32_t>(v) * (opts.ases - 1)) / kAmpVictims;
    const Ipv4 addr{10, static_cast<std::uint8_t>(asn % 250),
                    static_cast<std::uint8_t>(asn / 250),
                    static_cast<std::uint8_t>(220 + v)};
    const auto host = sim.net().add_host(asn, {addr});
    campaign.add_victim(host, addr);
  }
  // One spoofed query per (victim, reflector) pair: cycle the TF row
  // until the campaign injects ~`packets` queries.
  const std::uint64_t per_victim =
      std::max<std::uint64_t>(packets / kAmpVictims, 1);
  std::vector<Ipv4> reflectors;
  reflectors.reserve(per_victim);
  for (std::uint64_t i = 0; i < per_victim; ++i) {
    reflectors.push_back(w.targets[i % w.targets.size()]);
  }

  ShardedRun r;
  const auto t0 = std::chrono::steady_clock::now();
  campaign.start(reflectors);
  campaign.run_to_completion();
  const auto t1 = std::chrono::steady_clock::now();
  r.base.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.base.counters = sim.counters();
  if (traced) r.base.trace_hash = sim.canonical_trace_digest();
  hash_routes(sim, w.targets, r.base);
  for (const auto& refl : campaign.merged_reflections()) {
    r.base.route_hash = fnv1a64(r.base.route_hash, refl.victim.value());
    r.base.route_hash = fnv1a64(r.base.route_hash, refl.src.value());
    r.base.route_hash = fnv1a64(
        r.base.route_hash, std::uint64_t{refl.src_port} << 48 |
                               std::uint64_t{refl.dst_port} << 32 |
                               (refl.truncated ? 1u : 0u));
    r.base.route_hash = fnv1a64(r.base.route_hash, refl.bytes);
    r.base.route_hash = fnv1a64(
        r.base.route_hash, static_cast<std::uint64_t>(refl.at.nanos()));
  }
  if (shards > 1) {
    for (std::uint32_t s = 0; s < sim.shard_count(); ++s) {
      const auto& stats = sim.shard_stats(s);
      r.critical_seconds = std::max(r.critical_seconds, stats.busy_seconds);
      r.mailbox_in += stats.mailbox_in;
      r.mailbox_overflows += stats.mailbox_overflows;
    }
  } else {
    r.critical_seconds = r.base.seconds;
  }
  return r;
}

/// The amplification_reflection row: 1-shard typed engine vs. the
/// N-shard run of the same campaign, critical-path measured like the
/// other sharded rows. Identity covers counters, the canonical trace,
/// router hops, AND the merged reflection log.
WorkloadReport bench_amplification_workload(const Opts& opts) {
  constexpr int kRepeats = 3;
  WorkloadReport rep;
  rep.name = "amplification_reflection";
  rep.baseline_label = "one_shard";
  rep.fast_label = "sharded_critical_path";
  rep.has_shard_stats = true;
  rep.shards = opts.shards;
  ShardedRun baseline, fast, fast_threaded;
  for (int rep_i = 0; rep_i < kRepeats; ++rep_i) {
    auto b = run_amplification_workload(opts, 1, false, opts.packets);
    auto f = run_amplification_workload(opts, opts.shards, false,
                                        opts.packets, /*threads=*/false);
    auto ft = run_amplification_workload(opts, opts.shards, false,
                                         opts.packets, /*threads=*/true);
    if (rep_i == 0 || b.critical_seconds < baseline.critical_seconds) {
      baseline = std::move(b);
    }
    if (rep_i == 0 || f.critical_seconds < fast.critical_seconds) {
      fast = std::move(f);
    }
    if (rep_i == 0 || ft.base.seconds < fast_threaded.base.seconds) {
      fast_threaded = std::move(ft);
    }
  }
  rep.baseline_pps =
      static_cast<double>(opts.packets) / baseline.critical_seconds;
  rep.fast_pps = static_cast<double>(opts.packets) / fast.critical_seconds;
  rep.speedup = rep.fast_pps / rep.baseline_pps;
  rep.sharded_wall_pps =
      static_cast<double>(opts.packets) / fast_threaded.base.seconds;
  rep.mailbox_in = fast.mailbox_in;
  rep.mailbox_overflows = fast.mailbox_overflows;
  const std::uint64_t vpackets = std::min<std::uint64_t>(opts.packets, 30000);
  const auto vb = run_amplification_workload(opts, 1, true, vpackets);
  const auto vf =
      run_amplification_workload(opts, opts.shards, true, vpackets);
  rep.identical =
      counters_equal(vb.base.counters, vf.base.counters) &&
      vb.base.trace_hash == vf.base.trace_hash &&
      vb.base.route_hash == vf.base.route_hash &&
      counters_equal(baseline.base.counters, fast.base.counters) &&
      counters_equal(fast.base.counters, fast_threaded.base.counters) &&
      baseline.base.route_hash == fast.base.route_hash &&
      fast.base.route_hash == fast_threaded.base.route_hash;
  return rep;
}

// --- batch delivery cohort workload ---------------------------------

/// World for the batch_delivery_cohort row: ring topology, one DNS
/// responder per non-vantage AS answering the two-record mirror shape.
/// `fast` selects batched delivery + the arena serving path; the
/// baseline is scalar delivery + the heap codec. Responses are
/// byte-identical either way, so the A/B requires identical counters
/// and canonical traces.
struct BatchWorld {
  std::unique_ptr<Simulator> sim;
  HostId scanner = netsim::kInvalidHost;
  std::vector<Ipv4> targets;
  std::vector<std::unique_ptr<netsim::App>> responders;
  NullSink sink;
};

BatchWorld build_batch_world(const Opts& opts, bool fast) {
  BatchWorld w;
  netsim::SimConfig cfg;
  cfg.seed = opts.seed;
  cfg.batch_delivery = fast;
  w.sim = std::make_unique<Simulator>(cfg);
  auto& net = w.sim->net();
  for (std::uint32_t i = 1; i <= opts.ases; ++i) {
    netsim::AsConfig as;
    as.asn = i;
    as.internal_hops = opts.hops;
    net.add_as(as);
    net.announce(i, Prefix{Ipv4{10, static_cast<std::uint8_t>(i % 250), 0, 0},
                           16});
  }
  for (std::uint32_t i = 1; i <= opts.ases; ++i) {
    net.link(i, i % opts.ases + 1);  // ring
    if (i % 7 == 0 && i + opts.ases / 3 <= opts.ases) {
      net.link(i, i + opts.ases / 3);  // chord
    }
  }
  auto host_addr = [&](std::uint32_t asn, std::uint8_t lo) {
    return Ipv4{10, static_cast<std::uint8_t>(asn % 250),
                static_cast<std::uint8_t>(asn / 250), lo};
  };
  w.scanner = net.add_host(1, {host_addr(1, 1)});
  w.sim->bind_udp_wildcard(w.scanner, &w.sink);
  for (std::uint32_t asn = 2; asn <= opts.ases; ++asn) {
    const Ipv4 addr = host_addr(asn, 53);
    const auto host = net.add_host(asn, {addr});
    if (fast) {
      w.responders.push_back(
          std::make_unique<ArenaDnsResponder>(*w.sim, host));
    } else {
      w.responders.push_back(std::make_unique<DnsResponder>(*w.sim, host));
    }
    w.sim->bind_udp(host, 53, w.responders.back().get());
    w.targets.push_back(addr);
  }
  return w;
}

/// Destination-major injection: per drain, each responder receives a
/// back-to-back run of same-destination probes — the amplification /
/// retransmission-wave shape that lands whole delivery cohorts in one
/// timestamp bucket, which is exactly what the batch plane packs into
/// on_batch calls. The timed section covers injection + routing +
/// delivery + DNS serving + the response leg.
RunResult run_batch_workload(const Opts& opts, bool fast, bool traced,
                             std::uint64_t packets) {
  BatchWorld w = build_batch_world(opts, fast);
  auto& sim = *w.sim;
  if (traced) sim.set_packet_trace_enabled(true);
  const auto query = dnswire::encode(dnswire::make_query(
      0x777, *dnswire::Name::parse("scan.odns-study.net"),
      dnswire::RrType::a));
  RunResult r;
  constexpr std::uint64_t kRun = 64;  // per-destination run per drain
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t p = 0;
  while (p < packets) {
    for (const auto dst : w.targets) {
      for (std::uint64_t i = 0; i < kRun && p < packets; ++i, ++p) {
        netsim::SendOptions send;
        send.dst = dst;
        send.src_port = static_cast<std::uint16_t>(40000 + (p & 0xFFF));
        send.dst_port = 53;
        send.ttl = 255;
        send.payload = query;
        sim.send_udp(w.scanner, std::move(send));
      }
      if (p >= packets) break;
    }
    sim.run();
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.counters = sim.counters();
  if (traced) r.trace_hash = sim.canonical_trace_digest();
  hash_routes(sim, w.targets, r);
  return r;
}

WorkloadReport bench_batch_workload(const Opts& opts) {
  return ab_workload(
      opts, "batch_delivery_cohort", "scalar_heap", "batched_arena",
      [&](bool fast, bool traced, std::uint64_t packets) {
        return run_batch_workload(opts, fast, traced, packets);
      });
}

// --- arena codec serving row ----------------------------------------

/// Keeps timing-mode codec outputs observable without paying the
/// verification hash inside the timed loop.
volatile std::uint64_t g_codec_sink = 0;

/// Pure-codec A/B outside the simulator: serve `packets` mirror
/// transactions (decode the query, build the two-record answer, encode)
/// through the heap codec vs. the warmed-arena codec. The traced
/// verification pass hashes every output byte — the arena path must
/// produce the exact wire images the heap path does, message for
/// message; timing passes skip the hash.
RunResult run_codec_workload(bool arena, bool traced,
                             std::uint64_t packets) {
  auto query_wire = dnswire::encode(dnswire::make_query(
      0x4242, *dnswire::Name::parse("scan.odns-study.net"),
      dnswire::RrType::a));
  const auto name = *dnswire::Name::parse("scan.odns-study.net");
  RunResult r;
  const auto t0 = std::chrono::steady_clock::now();
  if (arena) {
    dnswire::WireArena rx;
    dnswire::WireArena tx;
    for (std::uint64_t p = 0; p < packets; ++p) {
      query_wire[0] = static_cast<std::uint8_t>(p >> 8);
      query_wire[1] = static_cast<std::uint8_t>(p);
      rx.reset();
      tx.reset();
      auto parsed = dnswire::decode_into(rx, query_wire);
      const dnswire::MessageView& q = parsed.value();
      auto answers = tx.alloc_array<dnswire::RecordView>(2);
      answers[0].name = q.questions.front().name;
      answers[0].type = dnswire::RrType::a;
      answers[0].ttl = 300;
      answers[0].rdata.tag = dnswire::RdataView::Tag::a;
      answers[0].rdata.a_addr = Ipv4{74, 125, 0, 10};
      answers[1] = answers[0];
      answers[1].rdata.a_addr = Ipv4{198, 51, 100, 200};
      dnswire::MessageView resp;
      resp.header.id = q.header.id;
      resp.header.qr = true;
      resp.header.aa = true;
      resp.header.rd = q.header.rd;
      resp.questions = q.questions;
      resp.answers = answers;
      const auto out = dnswire::encode_into(tx, resp);
      if (traced) {
        r.route_hash = fnv1a64(r.route_hash, out.size());
        for (const auto b : out) r.route_hash = fnv1a64(r.route_hash, b);
      } else {
        g_codec_sink = g_codec_sink + out.size();
      }
    }
  } else {
    for (std::uint64_t p = 0; p < packets; ++p) {
      query_wire[0] = static_cast<std::uint8_t>(p >> 8);
      query_wire[1] = static_cast<std::uint8_t>(p);
      auto parsed = dnswire::decode(query_wire);
      auto resp = dnswire::make_response(parsed.value());
      resp.header.aa = true;
      resp.answers.push_back(
          dnswire::ResourceRecord::a(name, Ipv4{74, 125, 0, 10}, 300));
      resp.answers.push_back(
          dnswire::ResourceRecord::a(name, Ipv4{198, 51, 100, 200}, 300));
      const auto out = dnswire::encode(resp);
      if (traced) {
        r.route_hash = fnv1a64(r.route_hash, out.size());
        for (const auto b : out) r.route_hash = fnv1a64(r.route_hash, b);
      } else {
        g_codec_sink = g_codec_sink + out.size();
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

WorkloadReport bench_codec_workload(const Opts& opts) {
  return ab_workload(opts, "arena_codec_serve", "heap", "arena",
                     [&](bool fast, bool traced, std::uint64_t packets) {
                       return run_codec_workload(fast, traced, packets);
                     });
}

// --- million-host census row ----------------------------------------

/// Resets the kernel's peak-RSS watermark (Linux: "5" into
/// /proc/self/clear_refs) so the VmHWM read after a census run
/// reflects that run, not whichever earlier workload was hungriest.
/// Best-effort: where the write is refused, VmHWM stays a process-wide
/// upper bound.
void reset_peak_rss() { std::ofstream("/proc/self/clear_refs") << "5\n"; }

/// Peak resident set (VmHWM) in kB from /proc/self/status; 0 when the
/// file is unavailable (non-Linux).
std::uint64_t read_peak_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

/// Shard count of the census A/B's sharded side (the acceptance point:
/// 1-shard and 8-shard census tables must hash identically).
constexpr std::uint32_t kCensusShards = 8;

struct CensusRun {
  double seconds = 0.0;
  double critical_seconds = 0.0;
  std::uint64_t hosts = 0;
  std::uint64_t ases = 0;
  std::uint64_t census_hash = 0;
  std::uint64_t peak_rss_kb = 0;
  std::uint64_t peak_pending = 0;
  std::uint64_t mailbox_in = 0;
  std::uint64_t mailbox_overflows = 0;
  netsim::SimCounters counters;
  core::DegradationReport degradation;
};

/// One full census over the Internet-scale world: bulk population
/// (nodes::ForwarderBank rows instead of per-host heap nodes), the
/// eyeball AS layer widened to O(10⁴) ASes, per-shard capture
/// vantages, streaming correlation, and no per-probe log retention —
/// the million-host configuration of docs/architecture.md. Runs the
/// sequential scheduler in both modes so the sharded critical path
/// (max per-shard busy seconds) is unpolluted by time-slicing.
CensusRun run_million_census(const Opts& opts, std::uint32_t shards) {
  core::CensusConfig cfg;
  cfg.topology.scale = opts.census_scale;
  cfg.topology.seed = opts.seed;
  cfg.topology.sim.seed = opts.seed;
  cfg.topology.bulk_population = true;
  cfg.topology.eyeball_as_multiplier = 4.0;
  cfg.topology.sim.shard_threads = false;
  cfg.sim_shards = shards;
  cfg.shard_interleaved_targets = true;
  cfg.vantages = shards;
  cfg.streaming_correlation = true;
  cfg.retain_transactions = false;
  cfg.scan_timeout = util::Duration::seconds(2);
  cfg.probes_per_second = 100000;
  cfg.correlate_flush = util::Duration::millis(250);

  reset_peak_rss();
  const auto t0 = std::chrono::steady_clock::now();
  auto result = core::run_census(cfg);
  const auto t1 = std::chrono::steady_clock::now();

  CensusRun r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.hosts = result.world->ground_truth().size();
  r.ases = result.world->asn_country_.size();
  r.census_hash = classify::census_fingerprint(result.census);
  r.peak_rss_kb = read_peak_rss_kb();
  r.peak_pending = result.stream_stats.peak_pending_probes;
  r.counters = result.world->sim().counters();
  r.degradation = result.degradation;
  if (shards > 1) {
    for (std::uint32_t s = 0; s < result.world->sim().shard_count(); ++s) {
      const auto& stats = result.world->sim().shard_stats(s);
      r.critical_seconds = std::max(r.critical_seconds, stats.busy_seconds);
      r.mailbox_in += stats.mailbox_in;
      r.mailbox_overflows += stats.mailbox_overflows;
    }
  } else {
    r.critical_seconds = r.seconds;
  }
  return r;
}

/// The million_host_census row: the same Internet-scale census once on
/// 1 shard and once on kCensusShards, single pass each (the world is
/// ≥10⁶ hosts; best-of-N repeats would triple a minutes-long row for
/// noise rejection the size of the run already provides). Identity is
/// the product-level check — the classify::census_fingerprint of the
/// full Census tables plus the summed packet counters. At full
/// --census-scale the world must clear ≥10⁶ hosts and ≥10⁴ ASes.
WorkloadReport bench_million_host_workload(const Opts& opts) {
  WorkloadReport rep;
  rep.name = "million_host_census";
  rep.baseline_label = "one_shard";
  rep.fast_label = "sharded_critical_path";
  rep.has_shard_stats = true;
  rep.has_census_stats = true;
  rep.shards = kCensusShards;
  const CensusRun baseline = run_million_census(opts, 1);
  const CensusRun fast = run_million_census(opts, kCensusShards);
  rep.baseline_pps = static_cast<double>(baseline.hosts) / baseline.seconds;
  rep.fast_pps = static_cast<double>(fast.hosts) / fast.critical_seconds;
  rep.speedup = rep.fast_pps / rep.baseline_pps;
  rep.sharded_wall_pps = static_cast<double>(fast.hosts) / fast.seconds;
  rep.mailbox_in = fast.mailbox_in;
  rep.mailbox_overflows = fast.mailbox_overflows;
  rep.census_hosts = fast.hosts;
  rep.census_ases = fast.ases;
  rep.peak_rss_kb = std::max(baseline.peak_rss_kb, fast.peak_rss_kb);
  rep.peak_pending_probes = std::max(baseline.peak_pending, fast.peak_pending);
  rep.census_hash = fast.census_hash;
  rep.identical = baseline.census_hash == fast.census_hash &&
                  baseline.hosts == fast.hosts &&
                  counters_equal(baseline.counters, fast.counters);
  if (opts.census_scale >= 0.5 &&
      (rep.census_hosts < 1000000 || rep.census_ases < 10000)) {
    std::cerr << "FAIL: million_host_census world too small at full scale: "
              << rep.census_hosts << " hosts, " << rep.census_ases
              << " ASes (need >= 1000000 / >= 10000)\n";
    std::exit(3);
  }
  return rep;
}

/// One streaming census on an adverse network: packet loss plus the
/// full fault plane (jitter, reordering, duplication, payload
/// corruption) with scanner retransmission absorbing the damage. A
/// tenth of the million-host world — the fault plane's per-packet
/// decisions price every hop, so the row measures that overhead, not
/// the world build.
CensusRun run_faulted_census(const Opts& opts, std::uint32_t shards,
                             double loss_rate, std::uint32_t retries) {
  core::CensusConfig cfg;
  cfg.topology.scale = opts.census_scale * 0.1;
  cfg.topology.seed = opts.seed;
  cfg.topology.sim.seed = opts.seed;
  cfg.topology.bulk_population = true;
  cfg.topology.eyeball_as_multiplier = 4.0;
  cfg.topology.sim.shard_threads = false;
  cfg.topology.sim.loss_rate = loss_rate;
  cfg.topology.sim.faults.jitter_rate = 0.3;
  cfg.topology.sim.faults.jitter_max = util::Duration::millis(5);
  cfg.topology.sim.faults.reorder_rate = 0.15;
  cfg.topology.sim.faults.dup_rate = 0.1;
  cfg.topology.sim.faults.corrupt_rate = 0.05;
  cfg.sim_shards = shards;
  cfg.shard_interleaved_targets = true;
  cfg.vantages = shards;
  cfg.streaming_correlation = true;
  cfg.retain_transactions = false;
  cfg.scan_timeout = util::Duration::seconds(2);
  cfg.scan_max_retries = retries;
  cfg.scan_retry_backoff = util::Duration::millis(500);
  cfg.probes_per_second = 100000;
  cfg.correlate_flush = util::Duration::millis(250);

  reset_peak_rss();
  const auto t0 = std::chrono::steady_clock::now();
  auto result = core::run_census(cfg);
  const auto t1 = std::chrono::steady_clock::now();

  CensusRun r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.hosts = result.world->ground_truth().size();
  r.ases = result.world->asn_country_.size();
  r.census_hash = classify::census_fingerprint(result.census);
  r.peak_rss_kb = read_peak_rss_kb();
  r.peak_pending = result.stream_stats.peak_pending_probes;
  r.counters = result.world->sim().counters();
  r.degradation = result.degradation;
  if (shards > 1) {
    for (std::uint32_t s = 0; s < result.world->sim().shard_count(); ++s) {
      const auto& stats = result.world->sim().shard_stats(s);
      r.critical_seconds = std::max(r.critical_seconds, stats.busy_seconds);
      r.mailbox_in += stats.mailbox_in;
      r.mailbox_overflows += stats.mailbox_overflows;
    }
  } else {
    r.critical_seconds = r.seconds;
  }
  return r;
}

/// The fault_plane_census row: the adverse-network census once on 1
/// shard and once on kCensusShards. Identity is the faulted census
/// fingerprint plus the full packet counters — fault fates included —
/// which is the chaos-differential guarantee of
/// tests/fault_plane_test.cpp at bench scale. The coverage sweep
/// (loss × retransmission, 1 shard) is recorded ungated: it documents
/// how far retries recover census coverage on a lossy network.
WorkloadReport bench_fault_plane_workload(const Opts& opts) {
  WorkloadReport rep;
  rep.name = "fault_plane_census";
  rep.baseline_label = "one_shard";
  rep.fast_label = "sharded_critical_path";
  rep.has_shard_stats = true;
  rep.has_census_stats = true;
  rep.has_fault_stats = true;
  rep.shards = kCensusShards;
  const CensusRun baseline =
      run_faulted_census(opts, 1, /*loss_rate=*/0.05, /*retries=*/2);
  const CensusRun fast =
      run_faulted_census(opts, kCensusShards, /*loss_rate=*/0.05,
                         /*retries=*/2);
  rep.baseline_pps = static_cast<double>(baseline.hosts) / baseline.seconds;
  rep.fast_pps = static_cast<double>(fast.hosts) / fast.critical_seconds;
  rep.speedup = rep.fast_pps / rep.baseline_pps;
  rep.sharded_wall_pps = static_cast<double>(fast.hosts) / fast.seconds;
  rep.mailbox_in = fast.mailbox_in;
  rep.mailbox_overflows = fast.mailbox_overflows;
  rep.census_hosts = fast.hosts;
  rep.census_ases = fast.ases;
  rep.peak_rss_kb = std::max(baseline.peak_rss_kb, fast.peak_rss_kb);
  rep.peak_pending_probes = std::max(baseline.peak_pending, fast.peak_pending);
  rep.census_hash = fast.census_hash;
  rep.coverage = fast.degradation.coverage();
  rep.probes_retried = fast.degradation.scan.probes_retried;
  rep.responses_duplicate = fast.degradation.scan.responses_duplicate;
  rep.responses_corrupt = fast.degradation.scan.responses_corrupt;
  rep.ases_degraded = fast.degradation.ases_degraded;
  // SimCounters::operator== covers the fault counters (jittered,
  // reordered, duplicated, corrupted, outage drops) the legacy
  // counters_equal predates.
  rep.identical = baseline.census_hash == fast.census_hash &&
                  baseline.hosts == fast.hosts &&
                  baseline.counters == fast.counters &&
                  baseline.degradation.scan.probes_retried ==
                      fast.degradation.scan.probes_retried;
  rep.coverage_loss1_r0 =
      run_faulted_census(opts, 1, 0.01, 0).degradation.coverage();
  rep.coverage_loss1_r2 =
      run_faulted_census(opts, 1, 0.01, 2).degradation.coverage();
  rep.coverage_loss5_r0 =
      run_faulted_census(opts, 1, 0.05, 0).degradation.coverage();
  rep.coverage_loss5_r2 = fast.degradation.coverage();
  return rep;
}

void print_report(const WorkloadReport& r) {
  const char* unit = r.has_census_stats ? " hosts/s" : " pkts/s";
  std::cout << r.name << "\n"
            << "  " << r.baseline_label << ": "
            << static_cast<std::uint64_t>(r.baseline_pps) << unit << "\n"
            << "  " << r.fast_label << ":   "
            << static_cast<std::uint64_t>(r.fast_pps) << unit << "\n"
            << "  speedup:  " << r.speedup << "x\n";
  if (r.has_cache_stats) {
    std::cout << "  cache:    " << r.cache_hits << " hits / "
              << r.cache_misses << " misses\n";
  }
  if (r.has_shard_stats && !r.has_vantage_stats) {
    std::cout << "  shards:   " << r.shards << " (wall "
              << static_cast<std::uint64_t>(r.sharded_wall_pps) << unit
              << ", mailbox " << r.mailbox_in << " msgs, "
              << r.mailbox_overflows << " spills)\n";
  }
  if (r.has_census_stats) {
    std::cout << "  world:    " << r.census_hosts << " hosts / "
              << r.census_ases << " ASes\n"
              << "  memory:   peak RSS " << r.peak_rss_kb / 1024
              << " MB, streaming window " << r.peak_pending_probes
              << " pending probes\n";
  }
  if (r.has_fault_stats) {
    std::cout << "  faults:   coverage " << r.coverage * 100.0 << "% ("
              << r.probes_retried << " retries, " << r.responses_duplicate
              << " dup / " << r.responses_corrupt << " corrupt responses, "
              << r.ases_degraded << " ASes degraded)\n"
              << "  sweep:    loss 1% " << r.coverage_loss1_r0 * 100.0
              << "% -> " << r.coverage_loss1_r2 * 100.0
              << "% with retries; loss 5% " << r.coverage_loss5_r0 * 100.0
              << "% -> " << r.coverage_loss5_r2 * 100.0 << "%\n";
  }
  if (r.has_vantage_stats) {
    std::cout << "  shards:   " << r.shards << " / vantages " << r.vantages
              << " (wall " << static_cast<std::uint64_t>(r.sharded_wall_pps)
              << " pkts/s)\n"
              << "  scanner shard busy share: " << r.scanner_busy_share_single
              << " -> " << r.scanner_busy_share_multi << " (max-busy: "
              << (r.scanner_is_max_busy_multi ? "STILL SCANNER" : "no")
              << ")\n";
  }
  std::cout << "  determinism (counters + trace + router hops): "
            << (r.identical ? "identical" : "MISMATCH") << "\n\n";
}

void write_json(const Opts& opts, const std::vector<WorkloadReport>& reps) {
  std::ofstream out(opts.json_path);
  out << "{\n"
      << "  \"bench\": \"bench_netsim\",\n"
      << "  \"unit\": \"packets_per_second\",\n"
      << "  \"config\": {\"packets\": " << opts.packets
      << ", \"ases\": " << opts.ases << ", \"internal_hops\": " << opts.hops
      << ", \"dests\": " << opts.dests << ", \"seed\": " << opts.seed
      << ", \"shards\": " << opts.shards
      << ", \"census_scale\": " << opts.census_scale
      << ", \"cores\": " << std::thread::hardware_concurrency() << "},\n"
      << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const auto& r = reps[i];
    out << "    {\"name\": \"" << r.name << "\", \"" << r.baseline_label
        << "_pps\": " << static_cast<std::uint64_t>(r.baseline_pps)
        << ", \"" << r.fast_label
        << "_pps\": " << static_cast<std::uint64_t>(r.fast_pps)
        << ", \"speedup\": " << r.speedup;
    if (r.has_cache_stats) {
      out << ", \"cache_hits\": " << r.cache_hits
          << ", \"cache_misses\": " << r.cache_misses;
    }
    if (r.has_shard_stats && !r.has_vantage_stats) {
      out << ", \"shards\": " << r.shards << ", \"sharded_wall_pps\": "
          << static_cast<std::uint64_t>(r.sharded_wall_pps)
          << ", \"mailbox_msgs\": " << r.mailbox_in
          << ", \"mailbox_spills\": " << r.mailbox_overflows;
    }
    if (r.has_census_stats) {
      out << ", \"unit\": \"hosts_per_second\", \"hosts\": " << r.census_hosts
          << ", \"ases\": " << r.census_ases
          << ", \"peak_rss_kb\": " << r.peak_rss_kb
          << ", \"peak_pending_probes\": " << r.peak_pending_probes
          << ", \"census_hash\": \"" << std::hex << r.census_hash << std::dec
          << "\"";
    }
    if (r.has_fault_stats) {
      out << ", \"coverage\": " << r.coverage
          << ", \"probes_retried\": " << r.probes_retried
          << ", \"responses_duplicate\": " << r.responses_duplicate
          << ", \"responses_corrupt\": " << r.responses_corrupt
          << ", \"ases_degraded\": " << r.ases_degraded
          << ", \"coverage_loss1_retries0\": " << r.coverage_loss1_r0
          << ", \"coverage_loss1_retries2\": " << r.coverage_loss1_r2
          << ", \"coverage_loss5_retries0\": " << r.coverage_loss5_r0
          << ", \"coverage_loss5_retries2\": " << r.coverage_loss5_r2;
    }
    if (r.has_vantage_stats) {
      out << ", \"shards\": " << r.shards << ", \"vantages\": " << r.vantages
          << ", \"multi_vantage_wall_pps\": "
          << static_cast<std::uint64_t>(r.sharded_wall_pps)
          << ", \"scanner_busy_share_single\": " << r.scanner_busy_share_single
          << ", \"scanner_busy_share_multi\": " << r.scanner_busy_share_multi
          << ", \"scanner_is_max_busy_multi\": "
          << (r.scanner_is_max_busy_multi ? "true" : "false");
    }
    out << ", \"deterministic\": " << (r.identical ? "true" : "false")
        << "}" << (i + 1 < reps.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Opts opts = Opts::parse(argc, argv);
  std::cout << "bench_netsim: route-cache + event-engine fast paths (ases="
            << opts.ases << " hops=" << opts.hops << " dests=" << opts.dests
            << " packets=" << opts.packets << " seed=" << opts.seed << ")\n\n";

  std::vector<WorkloadReport> reps;
  reps.push_back(bench_workload(opts, "repeated_destination_scan",
                                /*anycast=*/false));
  reps.push_back(bench_workload(opts, "mixed_anycast", /*anycast=*/true));
  reps.push_back(bench_addr_plane_workload(opts));
  reps.push_back(bench_sched_workload(opts, "sched_burst_same_timestamp",
                                      /*timer_mix=*/false));
  reps.push_back(bench_sched_workload(opts, "sched_long_horizon_timer_mix",
                                      /*timer_mix=*/true));
  reps.push_back(bench_sharded_workload(opts, "sharded_census_scan",
                                        /*relay=*/false));
  reps.push_back(bench_sharded_workload(opts, "sharded_cross_shard_relay",
                                        /*relay=*/true));
  reps.push_back(bench_multi_vantage_workload(opts));
  reps.push_back(bench_amplification_workload(opts));
  reps.push_back(bench_codec_workload(opts));
  reps.push_back(bench_batch_workload(opts));
  reps.push_back(bench_million_host_workload(opts));
  reps.push_back(bench_fault_plane_workload(opts));
  for (const auto& r : reps) print_report(r);

  if (!opts.json_path.empty()) write_json(opts, reps);

  for (const auto& r : reps) {
    if (!r.identical) {
      std::cerr << "FAIL: " << r.name << ": " << r.fast_label << " and "
                << r.baseline_label << " runs diverged\n";
      return 1;
    }
  }
  for (const auto& r : reps) {
    if (opts.min_speedup > 0.0 && r.speedup < opts.min_speedup) {
      std::cerr << "FAIL: " << r.name << " speedup " << r.speedup
                << "x below required " << opts.min_speedup << "x\n";
      return 2;
    }
  }
  for (const auto& r : reps) {
    if (opts.max_rss_regression_kb > 0 && r.peak_rss_kb > 0 &&
        r.peak_rss_kb > opts.max_rss_regression_kb) {
      std::cerr << "FAIL: " << r.name << " peak RSS " << r.peak_rss_kb
                << " kB above the --max-rss-regression ceiling "
                << opts.max_rss_regression_kb << " kB\n";
      return 4;
    }
  }
  return 0;
}
