// Table 1: composition of the open DNS infrastructure.
// Paper: 32K recursive resolvers (2%), 1.5M recursive forwarders (72%),
// 0.6M transparent forwarders (26%), 2.125M ODNSes total.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odns;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Table 1 — ODNS components by type", args);

  auto result = bench::run_standard_census(args);
  const auto& census = result.census;

  core::report::table1_composition(census).print(std::cout);

  std::cout << "\nValidation overhead (answered but rejected by the strict"
               " two-record check): " << census.invalid << "\n"
            << "Unresponsive probes: " << census.unresponsive << "\n";

  const double total = static_cast<double>(census.odns_total());
  std::cout << "\nShare comparison (paper -> measured):\n"
            << "  Recursive resolvers     2%  -> "
            << util::Table::fmt_percent(static_cast<double>(census.rr) / total, 1)
            << "\n"
            << "  Recursive forwarders   72%  -> "
            << util::Table::fmt_percent(static_cast<double>(census.rf) / total, 1)
            << "\n"
            << "  Transparent forwarders 26%  -> "
            << util::Table::fmt_percent(static_cast<double>(census.tf) / total, 1)
            << "\n";
  bench::print_paper_note(
      "Table 1 rows '32K (2%) / 1.5M (72%) / 0.6M (26%) / 2.125M'.");
  return 0;
}
