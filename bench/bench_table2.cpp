// Table 2: cost comparison of the two forwarder-detection methods.
//
//   Custom queries  (destination-encoded names)  — no cache reuse,
//       high authoritative load, detection possible at the server.
//   Custom responses (this work's static name + client-specific A)
//       — caches absorb the load, detection at the client.
//
// Both methods scan the *same* population (fresh worlds, same seed).

#include "bench_common.hpp"
#include "scan/txscanner.hpp"

using namespace odns;

namespace {

struct MethodCosts {
  std::uint64_t auth_queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t forwarders_detected_at_server = 0;
  std::uint64_t answered = 0;

  [[nodiscard]] double cache_utilization() const {
    const auto lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
};

dnswire::Name encode_target(util::Ipv4 target) {
  std::string label = target.to_string();
  for (auto& ch : label) {
    if (ch == '.') ch = '-';
  }
  return *dnswire::Name::parse(label + ".q.odns-study.net");
}

std::optional<util::Ipv4> decode_target(const dnswire::Name& qname) {
  if (qname.label_count() < 1) return std::nullopt;
  std::string label = qname.labels().front();
  for (auto& ch : label) {
    if (ch == '-') ch = '.';
  }
  return util::Ipv4::parse(label);
}

MethodCosts run_method(const bench::BenchArgs& args, bool query_based) {
  topo::TopologyConfig cfg;
  cfg.scale = args.scale;
  cfg.seed = args.seed;
  auto world = topo::TopologyBuilder::build(cfg);
  world->auth().enable_query_log();

  scan::ScanConfig sc;
  sc.qname = world->scan_name();
  if (query_based) {
    sc.qname_for_target = encode_target;
  }
  scan::TransactionalScanner scanner(world->sim(), world->scanner_host(), sc);
  scanner.start(world->scan_targets());
  scanner.run_to_completion();

  MethodCosts costs;
  costs.auth_queries = world->auth().queries_answered();
  const auto cache = world->aggregate_resolver_cache_stats();
  costs.cache_hits = cache.hits;
  costs.cache_misses = cache.misses;
  for (const auto& txn : scanner.correlate()) {
    if (txn.answered) ++costs.answered;
  }
  if (query_based) {
    // Server-side detection: the query name encodes the scanned
    // destination; a mismatch with the querying source means the
    // destination forwarded the query.
    for (const auto& entry : world->auth().query_log()) {
      if (const auto encoded = decode_target(entry.qname)) {
        if (*encoded != entry.client) {
          ++costs.forwarders_detected_at_server;
        }
      }
    }
  }
  return costs;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, /*default_scale=*/0.01);
  bench::print_header("Table 2 — detection-method cost comparison", args);

  const auto responses = run_method(args, /*query_based=*/false);
  const auto queries = run_method(args, /*query_based=*/true);

  util::Table t({"Metric", "Custom queries", "Custom responses (this work)"});
  t.add_row({"Answered probes", std::to_string(queries.answered),
             std::to_string(responses.answered)});
  t.add_row({"Authoritative-server queries",
             std::to_string(queries.auth_queries),
             std::to_string(responses.auth_queries)});
  t.add_row({"Resolver cache hit rate",
             util::Table::fmt_percent(queries.cache_utilization(), 1),
             util::Table::fmt_percent(responses.cache_utilization(), 1)});
  t.add_row({"Forwarders detectable at server",
             std::to_string(queries.forwarders_detected_at_server), "0"});
  t.add_row({"Forwarder classification", "at client", "at client"});
  t.print(std::cout);

  std::cout << "\nAuthoritative-load ratio (queries/responses method): "
            << util::Table::fmt_double(
                   static_cast<double>(queries.auth_queries) /
                       static_cast<double>(
                           std::max<std::uint64_t>(responses.auth_queries, 1)),
                   1)
            << "x\n";
  bench::print_paper_note(
      "Table 2: custom queries -> cache utilization None, auth load High; "
      "custom responses -> utilization High, auth load Low; detection "
      "at server vs. client.");
  return 0;
}
