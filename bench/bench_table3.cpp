// Table 3: detection of the three honeypot sensors by popular scanning
// campaigns. Paper: Shadowserver finds IP1 and IP3 (not IP2/IP4);
// Censys and Shodan find only IP1. A transactional scan finds all.

#include "bench_common.hpp"
#include "honeypot/lab.hpp"
#include "scan/campaigns.hpp"
#include "scan/txscanner.hpp"

using namespace odns;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, /*default_scale=*/0.002);
  bench::print_header("Table 3 — sensor detection by scanning campaigns",
                      args);

  topo::TopologyConfig cfg;
  cfg.scale = args.scale;
  cfg.seed = args.seed;
  auto world = topo::TopologyBuilder::build(cfg);
  auto lab = honeypot::deploy_sensor_lab(
      *world, util::Prefix{util::Ipv4{203, 0, 113, 0}, 24},
      util::Ipv4{8, 8, 8, 8});

  std::cout << "Sensors deployed (resolving via Google, rate limit 1 per "
               "5 min per /24):\n"
            << "  Sensor 1 (recursive resolver):        IP1 = "
            << lab.sensor1_addr.to_string() << "\n"
            << "  Sensor 2 (interior transp. forwarder): IP2 = "
            << lab.sensor2_recv_addr.to_string()
            << ", replies from IP3 = " << lab.sensor2_send_addr.to_string()
            << "\n"
            << "  Sensor 3 (exterior transp. forwarder): IP4 = "
            << lab.sensor3_addr.to_string() << "\n\n";

  const std::vector<util::Ipv4> targets{
      lab.sensor1_addr, lab.sensor2_recv_addr, lab.sensor2_send_addr,
      lab.sensor3_addr};

  auto mark = [](bool found) { return found ? std::string("Y") : "-"; };

  util::Table t({"Scanner", "IP1", "IP2", "IP3", "IP4"});
  std::uint8_t vantage = 0;
  for (const auto kind :
       {scan::CampaignKind::shadowserver, scan::CampaignKind::censys,
        scan::CampaignKind::shodan}) {
    auto campaign = core::run_campaign(
        *world, kind,
        util::Prefix{util::Ipv4{198, 18, vantage, 0}, 24}, targets);
    ++vantage;
    t.add_row({scan::to_string(kind),
               mark(campaign->has_discovered(lab.sensor1_addr)),
               mark(campaign->has_discovered(lab.sensor2_recv_addr)),
               mark(campaign->has_discovered(lab.sensor2_send_addr)),
               mark(campaign->has_discovered(lab.sensor3_addr))});
  }

  // The contrast row: this work's transactional scanner.
  const auto vantage_host = honeypot::attach_vantage(
      *world, util::Prefix{util::Ipv4{198, 18, 9, 0}, 24},
      util::Ipv4{198, 18, 9, 7});
  scan::ScanConfig sc;
  sc.qname = world->scan_name();
  scan::TransactionalScanner scanner(world->sim(), vantage_host, sc);
  scanner.start({lab.sensor1_addr, lab.sensor2_recv_addr, lab.sensor3_addr});
  scanner.run_to_completion();
  const auto txns = scanner.correlate();
  t.add_row({"Transactional (this work)", mark(txns[0].answered),
             mark(txns[1].answered), "n/a", mark(txns[2].answered)});
  t.print(std::cout);

  std::cout << "\nSensor 3 relayed " << lab.sensor3->relayed()
            << " queries and observed " << lab.sensor3->counters().responses_in
            << " responses (transparent: answers bypass it).\n";
  bench::print_paper_note(
      "Table 3: Shadowserver -> IP1+IP3; Censys/Shodan -> IP1 only; no "
      "campaign discovers a transparent forwarder.");
  return 0;
}
