// Table 4: top-10 countries by absolute "other" (non-big-4) resolver
// share, the ASN from which those responses arrive, and the fraction
// whose A_resolver record reveals indirect consolidation.
// Paper anchors: Turkey 52,663 other-TFs at 0.3% indirect (one national
// resolver); India/Brazil 48% indirect; USA 18%.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odns;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Table 4 — countries with the highest 'other' resolver share", args);

  auto result = bench::run_standard_census(args);
  core::report::table4_other_share(result.census, 10).print(std::cout);

  // The Turkey effect: a single national resolver masking a country's
  // transparent forwarders from stateless scans.
  const auto it = result.census.by_country.find("TUR");
  if (it != result.census.by_country.end()) {
    std::size_t resolvers = 0;
    std::uint64_t served = 0;
    for (const auto& [addr, count] : result.census.tf_responses_by_source) {
      if (auto country = result.registry.country_of(addr);
          country && *country == "TUR") {
        ++resolvers;
        served += count;
      }
    }
    std::cout << "\nTurkey: " << served
              << " transparent-forwarder responses arrived from "
              << resolvers << " national resolver address(es).\n";
  }
  bench::print_paper_note(
      "Table 4: TUR 52,663 @ 0.3% | POL 24,879 @ 1.4% | USA 14,546 @ 18% | "
      "IND 5,037 @ 48% | BRA 4,920 @ 48% | ITA 1,824 @ 35%.");
  return 0;
}
