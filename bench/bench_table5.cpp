// Table 5: top-20 countries ranked by ODNS components — this work
// (transactional scan, strict validation) vs. a response-based
// Shadowserver-style campaign on the same population. The paper sees
// rank shifts of up to 12 positions (Turkey +12, Brazil +4, ...).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odns;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Table 5 — country ranking: this work vs Shadowserver",
                      args);

  auto result = bench::run_standard_census(args);
  auto campaign = core::run_campaign(
      *result.world, scan::CampaignKind::shadowserver,
      util::Prefix{util::Ipv4{198, 18, 20, 0}, 24},
      result.world->scan_targets());
  const auto campaign_counts =
      core::campaign_country_counts(*campaign, result.registry);

  core::report::table5_rank_comparison(result.census, campaign_counts, 20)
      .print(std::cout);

  std::uint64_t campaign_total = 0;
  for (const auto& [code, count] : campaign_counts) campaign_total += count;
  std::cout << "\nTotals: this work " << result.census.odns_total()
            << " ODNS components; campaign " << campaign_total
            << " (misses all " << result.census.tf
            << " transparent forwarders, sees manipulated recursive "
               "speakers instead).\n";

  // §4.2 ablation: single-record (Shadowserver-style) validation.
  const auto relaxed = core::reanalyze(result, /*strict_validation=*/false);
  std::cout << "\nValidation ablation:\n"
            << "  strict two-record: rr+rf = " << result.census.rr +
                   result.census.rf << ", invalid = "
            << result.census.invalid << "\n"
            << "  single-record:     rr+rf = " << relaxed.rr + relaxed.rf
            << ", invalid = " << relaxed.invalid << "\n";
  bench::print_paper_note(
      "Table 5: e.g. Turkey rank 18->6 (+12), Brazil 6->2 (+4), Argentina "
      "20->9 (+11) once transparent forwarders are counted.");
  return 0;
}
