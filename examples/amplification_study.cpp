// §6 misuse potential: transparent forwarders as invisible diffusers
// for reflective amplification. An "attacker" in a SAV-free network
// sends small queries with the victim's spoofed source address to a
// set of transparent forwarders; the resolvers' (larger) answers land
// on the victim, arriving from many distinct resolver PoPs even though
// the attacker targeted a flat list of CPE devices.
//
// This is a defensive measurement, driven end to end by the
// attack-scenario platform (core/attack.hpp, "Attack scenarios" in
// docs/architecture.md): it quantifies the exposure that motivates the
// paper's call to include transparent forwarders in notification
// feeds, then answers the two deployable what-ifs — how much attack
// volume response rate limiting at the top resolver ASes removes, and
// how partial SAV deployment at the attacker's origin networks starves
// the campaign at the source.
//
//   $ ./examples/amplification_study

#include <iostream>

#include "core/attack.hpp"
#include "core/census.hpp"
#include "util/table.hpp"

using namespace odns;

namespace {

core::CensusConfig census_config() {
  core::CensusConfig cfg;
  cfg.topology.scale = 0.004;
  cfg.topology.seed = 321;
  return cfg;
}

void print_sweep(const std::string& title,
                 const std::vector<core::DefenseSweepRow>& rows) {
  std::cout << title << '\n';
  util::Table table({"deployment", "responses", "truncated",
                     "bytes on victims", "BAF", "volume removed"});
  for (const auto& row : rows) {
    table.add_row({row.label, util::Table::fmt_count(row.responses),
                   util::Table::fmt_count(row.truncated),
                   util::Table::fmt_count(row.bytes_reflected),
                   util::Table::fmt_double(row.factor, 2) + "x",
                   util::Table::fmt_percent(row.removed_vs_baseline)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  core::AttackScenarioConfig attack;
  attack.max_reflectors = 400;

  // The undefended campaign, with full injection/reflection logs.
  auto census = core::run_census(census_config());
  const auto undefended = core::run_attack_scenario(census, attack);
  const auto& report = undefended.report;

  std::cout << "Attackers spoof " << report.victims.size()
            << " victims toward " << report.total_queries / 2
            << " transparent forwarders...\n\n";

  util::Table victims({"victim", "queries spoofed", "bytes spent",
                       "responses", "bytes received", "BAF"});
  for (const auto& v : report.victims) {
    victims.add_row({v.victim.to_string(), util::Table::fmt_count(v.queries),
                     util::Table::fmt_count(v.bytes_sent),
                     util::Table::fmt_count(v.responses),
                     util::Table::fmt_count(v.bytes_reflected),
                     util::Table::fmt_double(v.factor(), 2) + "x"});
  }
  victims.print(std::cout);

  std::cout << "\nWhy this is hard to attribute: the reflected traffic "
               "is credited (via Routeviews) to "
            << report.by_resolver_as.size()
            << " resolver ASes, not to the CPE devices the attacker "
               "drove. Top reflecting ASes:\n";
  const auto top = core::top_resolver_ases(report, 5);
  util::Table ases({"resolver AS", "responses", "bytes reflected"});
  for (const auto asn : top) {
    for (const auto& row : report.by_resolver_as) {
      if (row.asn == asn) {
        ases.add_row({"AS" + std::to_string(row.asn),
                      util::Table::fmt_count(row.responses),
                      util::Table::fmt_count(row.bytes_reflected)});
      }
    }
  }
  ases.print(std::cout);
  std::cout << '\n';

  // What-if 1: knot-style RRL (per-/24 token bucket + slip) deployed
  // at the top-N reflecting resolver ASes, ranked by the undefended
  // baseline. Each row rebuilds the world, so rows are independent.
  core::AttackScenarioConfig rrl = attack;
  rrl.rrl = {/*rate=*/5, /*burst=*/5, /*slip=*/2};
  print_sweep("What-if: response rate limiting at the top-N resolver ASes",
              core::sweep_rrl_deployment(census_config(), rrl, {1, 4, 16}));

  // What-if 2: partial SAV (BCP 38) deployment at the attackers'
  // origin ASes — spoofed injections die at the source, while the
  // bytes the attacker spent stay in the denominator.
  print_sweep("What-if: SAV deployment at k of the attacker origin ASes",
              core::sweep_sav_deployment(census_config(), attack));

  std::cout << "RRL trims the reflected volume at the resolvers that "
               "amplify it; SAV at the origin removes the spoofed "
               "injections entirely. Both leave the attacker's spend "
               "on the books — the defenses move the numerator.\n";
  return 0;
}
