// §6 misuse potential: transparent forwarders as invisible diffusers
// for reflective amplification. An "attacker" in a SAV-free network
// sends small queries with the victim's spoofed source address to a
// set of transparent forwarders; the resolvers' (larger) answers land
// on the victim, arriving from many distinct resolver PoPs even though
// the attacker targeted a flat list of CPE devices.
//
// This is a defensive measurement: it quantifies the exposure that
// motivates the paper's call to include transparent forwarders in
// notification feeds, and shows how per-/24 response rate limiting
// (the sensor defense) caps the same traffic.
//
//   $ ./examples/amplification_study

#include <iostream>
#include <unordered_set>

#include "core/census.hpp"
#include "dnswire/codec.hpp"
#include "honeypot/lab.hpp"
#include "util/table.hpp"

using namespace odns;

namespace {

/// Counts the victim's unsolicited inbound DNS traffic.
class VictimMeter : public netsim::App {
 public:
  void on_datagram(const netsim::Datagram& dgram) override {
    ++responses;
    bytes += dgram.payload->size();
    sources.insert(dgram.src);
  }
  std::uint64_t responses = 0;
  std::uint64_t bytes = 0;
  std::unordered_set<util::Ipv4> sources;
};

}  // namespace

int main() {
  core::CensusConfig cfg;
  cfg.topology.scale = 0.004;
  cfg.topology.seed = 321;
  auto result = core::run_census(cfg);
  auto& world = *result.world;

  // Victim and attacker networks.
  const auto victim_host = honeypot::attach_vantage(
      world, util::Prefix{util::Ipv4{198, 18, 40, 0}, 24},
      util::Ipv4{198, 18, 40, 40});
  const util::Ipv4 victim_addr{198, 18, 40, 40};
  VictimMeter meter;
  world.sim().bind_udp_wildcard(victim_host, &meter);

  const auto attacker_host = honeypot::attach_vantage(
      world, util::Prefix{util::Ipv4{198, 18, 41, 0}, 24},
      util::Ipv4{198, 18, 41, 41}, /*sav=*/false);

  // Reflector list: transparent forwarders found by the census.
  std::vector<util::Ipv4> reflectors;
  for (const auto& item : result.classified) {
    if (item.klass == classify::Klass::transparent_forwarder) {
      reflectors.push_back(item.txn.target);
    }
    if (reflectors.size() == 400) break;
  }
  std::cout << "Attacker spoofs " << victim_addr.to_string() << " toward "
            << reflectors.size() << " transparent forwarders...\n";

  const auto query = dnswire::make_query(
      0x6666, world.scan_name(), dnswire::RrType::a);
  const auto query_wire = dnswire::encode(query);
  std::uint64_t attack_bytes = 0;
  std::uint16_t port = 30000;
  for (const auto reflector : reflectors) {
    netsim::SendOptions opts;
    opts.dst = reflector;
    opts.src_port = port++;
    opts.dst_port = 53;
    opts.payload = query_wire;
    opts.spoof_src = victim_addr;  // the reflection
    attack_bytes += query_wire.size();
    world.sim().send_udp(attacker_host, std::move(opts));
  }
  world.sim().run();

  std::cout << "\nVictim received " << meter.responses
            << " unsolicited responses (" << meter.bytes << " bytes) from "
            << meter.sources.size() << " distinct source addresses.\n";
  std::cout << "Bandwidth amplification factor: "
            << util::Table::fmt_double(
                   static_cast<double>(meter.bytes) /
                       static_cast<double>(attack_bytes == 0 ? 1
                                                             : attack_bytes),
                   2)
            << "x (attacker sent " << attack_bytes << " bytes)\n";

  std::cout << "\nWhy this is hard to attribute: the victim's traffic "
               "arrives from resolver service addresses ("
            << [&] {
                 std::size_t anycast = 0;
                 for (const auto src : meter.sources) {
                   if (classify::project_of_service_addr(src)) ++anycast;
                 }
                 return anycast;
               }()
            << " of them big-4 anycast), not from the "
            << reflectors.size() << " CPE devices the attacker drove.\n";

  std::cout << "\nA per-/24 response rate limit (the honeypot sensors' "
               "defense) would cap this reflection at one response per "
               "window per victim prefix.\n";
  return 0;
}
