// Per-country ODNS exposure report — the view a national CERT would
// want (the paper notes CERTs rely on Shadowserver data and therefore
// systematically under-estimate countries dominated by transparent
// forwarders).
//
//   $ ./examples/country_report [ISO3 ...]       (default: BRA IND TUR)

#include <iostream>
#include <vector>

#include "core/census.hpp"
#include "core/report.hpp"

using namespace odns;

int main(int argc, char** argv) {
  std::vector<std::string> wanted;
  for (int i = 1; i < argc; ++i) wanted.emplace_back(argv[i]);
  if (wanted.empty()) wanted = {"BRA", "IND", "TUR"};

  core::CensusConfig cfg;
  cfg.topology.scale = 0.01;
  cfg.topology.seed = 2021;
  std::cout << "Running Internet-wide census (scale " << cfg.topology.scale
            << ")...\n\n";
  auto result = core::run_census(cfg);

  // Shadowserver-equivalent view for the undercount comparison.
  auto campaign = core::run_campaign(
      *result.world, scan::CampaignKind::shadowserver,
      util::Prefix{util::Ipv4{198, 18, 50, 0}, 24},
      result.world->scan_targets());
  const auto campaign_counts =
      core::campaign_country_counts(*campaign, result.registry);

  for (const auto& code : wanted) {
    auto it = result.census.by_country.find(code);
    if (it == result.census.by_country.end()) {
      std::cout << "=== " << code << ": no ODNS components found ===\n\n";
      continue;
    }
    const auto& c = it->second;
    std::cout << "=== " << code
              << (core::report::is_emerging(code) ? " (emerging market)" : "")
              << " ===\n";
    util::Table t({"Metric", "Value"});
    t.add_row({"ODNS components (transactional scan)",
               std::to_string(c.odns_total())});
    const auto ss = campaign_counts.find(code);
    t.add_row({"ODNS components (response-based view)",
               std::to_string(ss == campaign_counts.end() ? 0 : ss->second)});
    t.add_row({"Recursive resolvers", std::to_string(c.rr)});
    t.add_row({"Recursive forwarders", std::to_string(c.rf)});
    t.add_row({"Transparent forwarders",
               std::to_string(c.tf) + " (" +
                   util::Table::fmt_percent(c.tf_share(), 1) + ")"});
    t.add_row({"ASes hosting transparent forwarders",
               std::to_string(c.ases_with_tf)});
    const char* names[] = {"Google", "Cloudflare", "Quad9", "OpenDNS",
                           "Other"};
    for (std::size_t p = 0; p < classify::kProjectCount; ++p) {
      if (c.tf_by_project[p] == 0) continue;
      t.add_row({std::string("  TF relaying to ") + names[p],
                 std::to_string(c.tf_by_project[p])});
    }
    if (c.other_mapped > 0) {
      t.add_row({"Indirect consolidation (of mapped 'other')",
                 util::Table::fmt_percent(
                     static_cast<double>(c.other_indirect) /
                         static_cast<double>(c.other_mapped),
                     1)});
    }
    if (auto asn = c.top_other_asn()) {
      t.add_row({"Top 'other' response ASN", "AS" + std::to_string(*asn)});
    }
    t.print(std::cout);
    const auto undercount =
        ss == campaign_counts.end() ? c.odns_total()
                                    : (c.odns_total() > ss->second
                                           ? c.odns_total() - ss->second
                                           : 0);
    std::cout << "Exposure invisible to response-based feeds: " << undercount
              << " components\n\n";
  }
  return 0;
}
