// DNSRoute++ exploration: pick a handful of transparent forwarders and
// print their hop-by-hop paths — the hops *behind* the forwarder (up
// to its recursive resolver) are exactly what classic traceroute never
// shows.
//
//   $ ./examples/dnsroute_explore [scale]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/census.hpp"

using namespace odns;

int main(int argc, char** argv) {
  core::CensusConfig cfg;
  cfg.topology.scale = argc > 1 ? std::atof(argv[1]) : 0.003;
  cfg.topology.seed = 99;

  std::cout << "Running census to find transparent forwarders...\n";
  auto result = core::run_census(cfg);
  std::cout << "Found " << result.census.tf << " transparent forwarders; "
            << "tracing the first few with DNSRoute++.\n\n";

  std::vector<util::Ipv4> targets;
  for (const auto& item : result.classified) {
    if (item.klass == classify::Klass::transparent_forwarder) {
      targets.push_back(item.txn.target);
      if (targets.size() == 5) break;
    }
  }

  dnsroute::DnsrouteConfig rc;
  rc.qname = result.world->scan_name();
  rc.max_ttl = 28;
  dnsroute::DnsroutePlusPlus tracer(result.world->sim(),
                                    result.world->scanner_host(), rc);
  const auto paths = tracer.run(targets);

  for (const auto& path : paths) {
    std::cout << "dnsroute++ to " << path.target.to_string() << "\n";
    const int limit = path.answer_ttl > 0 ? path.answer_ttl
                                          : static_cast<int>(path.hops.size());
    for (int ttl = 1; ttl < limit; ++ttl) {
      const auto& hop = path.hops[static_cast<std::size_t>(ttl - 1)];
      std::cout << "  " << std::setw(2) << ttl << "  ";
      if (!hop.responded) {
        std::cout << "*";
      } else {
        std::cout << hop.addr.to_string();
        if (auto asn = result.registry.routeviews.origin_of(hop.addr)) {
          std::cout << "  [AS" << *asn << "]";
        }
        if (ttl == path.target_distance) {
          std::cout << "  <-- the transparent forwarder itself";
        }
      }
      std::cout << "\n";
    }
    if (path.got_answer) {
      std::cout << "  " << std::setw(2) << path.answer_ttl << "  "
                << path.resolver.to_string()
                << "  <-- DNS answer (the forwarder's resolver)\n";
      std::cout << "  forwarder -> resolver: "
                << path.forwarder_to_resolver_hops() << " IP hops; path "
                << (path.complete() ? "complete" : "incomplete") << "\n";
    } else {
      std::cout << "  (no DNS answer within TTL budget)\n";
    }
    std::cout << "\n";
  }
  return 0;
}
