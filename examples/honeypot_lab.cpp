// The §3 controlled experiment as a runnable lab: deploy the three
// ODNS honeypot sensors, let the Shadowserver/Censys/Shodan models scan
// them, and show what each campaign believes exists — then contrast
// with a transactional scan that sees all three sensors.
//
//   $ ./examples/honeypot_lab

#include <iostream>

#include "core/census.hpp"
#include "honeypot/lab.hpp"
#include "scan/campaigns.hpp"
#include "scan/txscanner.hpp"

using namespace odns;

int main() {
  topo::TopologyConfig cfg;
  cfg.scale = 0.002;
  cfg.seed = 7;
  cfg.max_countries = 4;
  auto world = topo::TopologyBuilder::build(cfg);

  std::cout << "Deploying sensor lab (SAV-free network, direct peering "
               "with Google's nearest PoP)...\n";
  auto lab = honeypot::deploy_sensor_lab(
      *world, util::Prefix{util::Ipv4{203, 0, 113, 0}, 24},
      util::Ipv4{8, 8, 8, 8});
  std::cout << "  sensor 1 (recursive resolver)       " << '\t'
            << lab.sensor1_addr.to_string() << "\n"
            << "  sensor 2 (interior transp. fwd)     " << '\t'
            << lab.sensor2_recv_addr.to_string() << " -> replies from "
            << lab.sensor2_send_addr.to_string() << "\n"
            << "  sensor 3 (exterior transp. fwd)     " << '\t'
            << lab.sensor3_addr.to_string() << "\n\n";

  const std::vector<util::Ipv4> targets{lab.sensor1_addr,
                                        lab.sensor2_recv_addr,
                                        lab.sensor2_send_addr,
                                        lab.sensor3_addr};
  std::uint8_t vantage = 1;
  for (const auto kind :
       {scan::CampaignKind::shadowserver, scan::CampaignKind::censys,
        scan::CampaignKind::shodan}) {
    auto campaign = core::run_campaign(
        *world, kind, util::Prefix{util::Ipv4{198, 18, vantage++, 0}, 24},
        targets);
    std::cout << scan::to_string(kind) << " discovered:";
    if (campaign->discovered().empty()) std::cout << " (nothing)";
    for (const auto addr : campaign->discovered()) {
      std::cout << " " << addr.to_string();
    }
    std::cout << "  [saw " << campaign->responses_seen() << " responses, "
              << campaign->responses_dropped_sanitize() << " sanitized]\n";
  }

  std::cout << "\nTransactional scan of the same sensors:\n";
  const auto host = honeypot::attach_vantage(
      *world, util::Prefix{util::Ipv4{198, 18, 9, 0}, 24},
      util::Ipv4{198, 18, 9, 7});
  scan::ScanConfig sc;
  sc.qname = world->scan_name();
  scan::TransactionalScanner scanner(world->sim(), host, sc);
  scanner.start({lab.sensor1_addr, lab.sensor2_recv_addr, lab.sensor3_addr});
  scanner.run_to_completion();
  for (const auto& txn : scanner.correlate()) {
    std::cout << "  probe " << txn.target.to_string() << " -> "
              << (txn.answered
                      ? "answered from " + txn.response_src.to_string()
                      : "no answer")
              << "\n";
  }
  std::cout << "\nSensor 3 relayed " << lab.sensor3->relayed()
            << " queries upstream and observed "
            << lab.sensor3->counters().responses_in
            << " responses — the answers bypassed it entirely.\n"
            << "Rate limiter: " << lab.sensor1->limiter().granted()
            << " grants, " << lab.sensor1->limiter().denied()
            << " denials on sensor 1.\n";
  return 0;
}
