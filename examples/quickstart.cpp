// Quickstart: build a small synthetic Internet, run the transactional
// scan, classify every open DNS speaker, and print the composition —
// the 60-second tour of the library's core loop.
//
//   $ ./examples/quickstart [scale]
//
// The scale argument (default 0.002) is the fraction of the paper's
// April-2021 ODNS population to instantiate.

#include <cstdlib>
#include <iostream>

#include "core/census.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace odns;

  core::CensusConfig cfg;
  cfg.topology.scale = argc > 1 ? std::atof(argv[1]) : 0.002;
  cfg.topology.seed = 2021;

  std::cout << "Building topology (scale " << cfg.topology.scale
            << ") and scanning...\n";
  auto result = core::run_census(cfg);

  std::cout << "\nProbed " << result.transactions.size()
            << " targets from " << result.world->scanner_addr().to_string()
            << "; " << result.scanner->stats().responses_received
            << " responses captured.\n\n";

  std::cout << "ODNS composition (paper Table 1):\n";
  core::report::table1_composition(result.census).print(std::cout);

  std::cout << "\nTop countries by transparent forwarders (paper Fig. 4):\n";
  core::report::fig4_top_countries(result.census, 10).print(std::cout);

  std::cout << "\nResolver projects used by transparent forwarders "
               "(paper Fig. 5):\n";
  core::report::fig5_project_shares(result.census, 10).print(std::cout);

  // A taste of what stateless scanning misses.
  const auto strict = result.census.odns_total();
  std::cout << "\nA response-source campaign on the same population would "
               "miss all " << result.census.tf << " transparent forwarders ("
            << static_cast<double>(100 * result.census.tf) /
                   static_cast<double>(strict == 0 ? 1 : strict)
            << "% of the ODNS).\n";
  return 0;
}
