#!/usr/bin/env bash
# Fails (exit 1) when a markdown file under docs/ or the README links
# to a relative path that does not exist. External links (http/https/
# mailto) and pure #fragments are skipped; a #fragment on a relative
# link is checked against the file part only. Run from anywhere inside
# the repo; CI runs it as a build gate.
set -u

cd "$(dirname "$0")/.."

status=0
# shellcheck disable=SC2207
files=(README.md $(find docs -name '*.md' | sort))

for file in "${files[@]}"; do
  dir=$(dirname "$file")
  # Inline markdown links: [text](target). One match per line is
  # enough to catch every dead target in practice; multi-link lines
  # are split by the global grep -o.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "DEAD LINK: $file -> $target"
      status=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$file" | sed 's/^\[[^]]*\](//; s/)$//')
done

if [ "$status" -ne 0 ]; then
  echo "doc-link check failed: fix the targets above."
else
  echo "doc-link check passed (${#files[@]} files)."
fi
exit "$status"
