#!/usr/bin/env bash
# Fails (exit 1) when a markdown file under docs/ or the README links
# to a relative path that does not exist, or to a #fragment that does
# not match any heading anchor in the target markdown file. External
# links (http/https/mailto) are skipped; a pure #fragment link is
# checked against the containing file's own headings. Anchors are
# compared GitHub-style: lowercase the heading, drop everything that
# is not alphanumeric/space/hyphen/underscore, turn spaces into
# hyphens. Run from anywhere inside the repo; CI runs it as a build
# gate.
set -u

cd "$(dirname "$0")/.."

slugify() {
  printf '%s\n' "$1" | tr '[:upper:]' '[:lower:]' \
    | sed 's/[^a-z0-9 _-]//g; s/ /-/g'
}

# Prints one GitHub-style anchor slug per heading of $1.
anchors_of() {
  local heading
  while IFS= read -r heading; do
    slugify "$(printf '%s' "$heading" | sed -E 's/^#+[[:space:]]+//')"
  done < <(grep -E '^#{1,6}[[:space:]]' "$1")
}

status=0
# shellcheck disable=SC2207
files=(README.md $(find docs -name '*.md' | sort))

for file in "${files[@]}"; do
  dir=$(dirname "$file")
  # Inline markdown links: [text](target). One match per line is
  # enough to catch every dead target in practice; multi-link lines
  # are split by the global grep -o.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path="${target%%#*}"
    fragment=""
    case "$target" in
      *'#'*) fragment="${target#*#}" ;;
    esac

    # Resolve the file part (empty path = same-file fragment link).
    resolved="$file"
    if [ -n "$path" ]; then
      if [ -e "$dir/$path" ]; then
        resolved="$dir/$path"
      elif [ -e "$path" ]; then
        resolved="$path"
      else
        echo "DEAD LINK: $file -> $target"
        status=1
        continue
      fi
    fi

    # Fragment check, for markdown targets only.
    if [ -n "$fragment" ]; then
      case "$resolved" in
        *.md)
          if ! anchors_of "$resolved" | grep -Fxq "$fragment"; then
            echo "DEAD ANCHOR: $file -> $target (no heading '#$fragment' in $resolved)"
            status=1
          fi
          ;;
      esac
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$file" | sed 's/^\[[^]]*\](//; s/)$//')
done

if [ "$status" -ne 0 ]; then
  echo "doc-link check failed: fix the targets above."
else
  echo "doc-link check passed (${#files[@]} files)."
fi
exit "$status"
