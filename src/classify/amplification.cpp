#include "classify/amplification.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace odns::classify {

namespace {

/// Fixed-point (4 decimal places) rendering so the fingerprint never
/// depends on floating-point formatting.
std::string factor_fixed(std::uint64_t reflected, std::uint64_t sent) {
  if (sent == 0) return "0.0000";
  const std::uint64_t scaled = reflected * 10000 / sent;
  std::ostringstream out;
  out << scaled / 10000 << '.';
  const std::uint64_t frac = scaled % 10000;
  out << static_cast<char>('0' + frac / 1000)
      << static_cast<char>('0' + frac / 100 % 10)
      << static_cast<char>('0' + frac / 10 % 10)
      << static_cast<char>('0' + frac % 10);
  return out.str();
}

}  // namespace

AmplificationReport amplification_report(
    const std::vector<scan::Injection>& injections,
    const std::vector<scan::Reflection>& reflections,
    const registry::RegistrySnapshot& registry) {
  AmplificationReport report;

  std::map<util::Ipv4, VictimAmplification> victims;
  for (const auto& inj : injections) {
    auto& row = victims[inj.victim];
    row.victim = inj.victim;
    ++row.queries;
    row.bytes_sent += inj.bytes;
    ++report.total_queries;
    report.total_bytes_sent += inj.bytes;
  }

  std::map<netsim::Asn, ResolverAsAmplification> by_as;
  for (const auto& refl : reflections) {
    auto& row = victims[refl.victim];
    row.victim = refl.victim;
    ++row.responses;
    if (refl.truncated) ++row.truncated;
    row.bytes_reflected += refl.bytes;

    const auto asn = registry.routeviews.origin_of(refl.src).value_or(0);
    auto& as_row = by_as[asn];
    as_row.asn = asn;
    ++as_row.responses;
    as_row.bytes_reflected += refl.bytes;

    ++report.total_responses;
    if (refl.truncated) ++report.total_truncated;
    report.total_bytes_reflected += refl.bytes;
  }

  report.victims.reserve(victims.size());
  for (auto& [addr, row] : victims) report.victims.push_back(row);
  report.by_resolver_as.reserve(by_as.size());
  for (auto& [asn, row] : by_as) report.by_resolver_as.push_back(row);
  return report;
}

std::string AmplificationReport::fingerprint() const {
  std::ostringstream out;
  for (const auto& v : victims) {
    out << "victim " << v.victim.to_string() << " q=" << v.queries
        << " sent=" << v.bytes_sent << " resp=" << v.responses
        << " tc=" << v.truncated << " refl=" << v.bytes_reflected
        << " baf=" << factor_fixed(v.bytes_reflected, v.bytes_sent) << '\n';
  }
  for (const auto& a : by_resolver_as) {
    out << "as " << a.asn << " resp=" << a.responses
        << " refl=" << a.bytes_reflected << '\n';
  }
  out << "total q=" << total_queries << " sent=" << total_bytes_sent
      << " resp=" << total_responses << " tc=" << total_truncated
      << " refl=" << total_bytes_reflected
      << " baf=" << factor_fixed(total_bytes_reflected, total_bytes_sent)
      << '\n';
  return out.str();
}

}  // namespace odns::classify
