#pragma once
// Amplification accounting over a reflective campaign's injection and
// reflection logs: bytes-reflected / bytes-sent per victim and the
// reflected volume attributed per resolver AS (via the registry's
// Routeviews view, like every other join in this module — never ground
// truth). The tables are pure aggregations of shard-count-invariant
// inputs, so their canonical fingerprint is the comparison surface the
// determinism property tests assert on.

#include <cstdint>
#include <string>
#include <vector>

#include "registry/registry.hpp"
#include "scan/amplification.hpp"

namespace odns::classify {

struct VictimAmplification {
  util::Ipv4 victim;
  std::uint64_t queries = 0;        // injections spoofing this victim
  std::uint64_t bytes_sent = 0;     // attacker bytes spent on them
  std::uint64_t responses = 0;      // datagrams reflected onto the victim
  std::uint64_t truncated = 0;      // of those, RRL slip stubs (TC=1)
  std::uint64_t bytes_reflected = 0;

  /// Bandwidth amplification factor (BAF): bytes landing on the victim
  /// per spoofed byte spent.
  [[nodiscard]] double factor() const {
    return bytes_sent == 0
               ? 0.0
               : static_cast<double>(bytes_reflected) /
                     static_cast<double>(bytes_sent);
  }
};

struct ResolverAsAmplification {
  netsim::Asn asn = 0;  // 0 = reflection source unmapped by Routeviews
  std::uint64_t responses = 0;
  std::uint64_t bytes_reflected = 0;
};

struct AmplificationReport {
  std::vector<VictimAmplification> victims;          // ascending by address
  std::vector<ResolverAsAmplification> by_resolver_as;  // ascending by ASN
  std::uint64_t total_queries = 0;
  std::uint64_t total_bytes_sent = 0;
  std::uint64_t total_responses = 0;
  std::uint64_t total_truncated = 0;
  std::uint64_t total_bytes_reflected = 0;

  [[nodiscard]] double overall_factor() const {
    return total_bytes_sent == 0
               ? 0.0
               : static_cast<double>(total_bytes_reflected) /
                     static_cast<double>(total_bytes_sent);
  }

  /// Canonical byte-exact rendering of the tables (integer fields
  /// only, factors in fixed-point), used verbatim by the shard-count
  /// invariance tests: two runs made the same amplification tables iff
  /// the strings are equal.
  [[nodiscard]] std::string fingerprint() const;
};

/// Aggregates a campaign's logs into the report. Injection bytes count
/// as spent even when SAV drops them at the origin AS — deploying SAV
/// is supposed to drive the victim's factor toward zero, not shrink
/// the denominator.
[[nodiscard]] AmplificationReport amplification_report(
    const std::vector<scan::Injection>& injections,
    const std::vector<scan::Reflection>& reflections,
    const registry::RegistrySnapshot& registry);

}  // namespace odns::classify
