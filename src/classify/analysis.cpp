#include "classify/analysis.hpp"

#include <algorithm>
#include <type_traits>

#include "topo/model.hpp"

namespace odns::classify {

std::optional<topo::ResolverProject> project_of_service_addr(util::Ipv4 addr) {
  for (const auto& bp : topo::project_blueprints()) {
    for (auto service : bp.service_addrs) {
      if (service == addr) return bp.project;
    }
  }
  return std::nullopt;
}

std::optional<netsim::Asn> CountryReport::top_other_asn() const {
  std::optional<netsim::Asn> best;
  std::uint64_t best_count = 0;
  for (const auto& [asn, count] : other_response_asns) {
    if (count > best_count || (count == best_count && best && asn < *best)) {
      best = asn;
      best_count = count;
    }
  }
  return best;
}

std::vector<const CountryReport*> Census::countries_by_tf() const {
  std::vector<const CountryReport*> out;
  out.reserve(by_country.size());
  for (const auto& [code, report] : by_country) out.push_back(&report);
  std::sort(out.begin(), out.end(),
            [](const CountryReport* a, const CountryReport* b) {
              if (a->tf != b->tf) return a->tf > b->tf;
              return a->code < b->code;
            });
  return out;
}

std::vector<const CountryReport*> Census::countries_by_odns() const {
  std::vector<const CountryReport*> out;
  out.reserve(by_country.size());
  for (const auto& [code, report] : by_country) out.push_back(&report);
  std::sort(out.begin(), out.end(),
            [](const CountryReport* a, const CountryReport* b) {
              if (a->odns_total() != b->odns_total()) {
                return a->odns_total() > b->odns_total();
              }
              return a->code < b->code;
            });
  return out;
}

std::vector<std::pair<netsim::Asn, std::uint64_t>> Census::top_tf_ases(
    std::size_t n) const {
  std::vector<std::pair<netsim::Asn, std::uint64_t>> out(tf_by_asn.begin(),
                                                         tf_by_asn.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<std::uint32_t> Census::tf_per_24_counts() const {
  std::vector<std::uint32_t> out;
  out.reserve(tf_per_24.size());
  for (const auto& [base, count] : tf_per_24) out.push_back(count);
  std::sort(out.begin(), out.end());
  return out;
}

double Census::tf_fraction_with_density_at_most(std::uint32_t limit) const {
  if (tf == 0) return 0.0;
  std::uint64_t covered = 0;
  for (const auto& [base, count] : tf_per_24) {
    if (count <= limit) covered += count;
  }
  return static_cast<double>(covered) / static_cast<double>(tf);
}

double Census::tf_fraction_with_density_at_least(std::uint32_t limit) const {
  if (tf == 0) return 0.0;
  std::uint64_t covered = 0;
  for (const auto& [base, count] : tf_per_24) {
    if (count >= limit) covered += count;
  }
  return static_cast<double>(covered) / static_cast<double>(tf);
}

void CensusAccumulator::add(const Classified& item) {
  const auto& registry = *registry_;
  Census& census = census_;
  const auto& txn = item.txn;
  ++consumed_;
  switch (item.klass) {
    case Klass::unresponsive: ++census.unresponsive; break;
    case Klass::invalid: ++census.invalid; break;
    case Klass::recursive_resolver: ++census.rr; break;
    case Klass::recursive_forwarder: ++census.rf; break;
    case Klass::transparent_forwarder: ++census.tf; break;
  }

  const auto target_asn = registry.routeviews.origin_of(txn.target);
  const auto country =
      target_asn ? registry.whois.country_of(*target_asn) : std::nullopt;

  // Coverage counts every probed target with a mapped origin AS —
  // including unresponsive and invalid ones, which is the point: the
  // probed/answered gap per AS is the degradation signal.
  if (target_asn) {
    auto& cov = census.coverage_by_asn[*target_asn];
    ++cov.probed;
    if (txn.answered) ++cov.answered;
  }

  if (item.klass == Klass::unresponsive || item.klass == Klass::invalid) {
    // Only viable ODNS components enter the per-country composition;
    // invalid responders are tracked globally.
    return;
  }
  if (!country) {
    ++census.unmapped_country;
    return;
  }
  auto& report = census.by_country[*country];
  report.code = *country;

  switch (item.klass) {
    case Klass::recursive_resolver: ++report.rr; break;
    case Klass::recursive_forwarder: ++report.rf; break;
    case Klass::transparent_forwarder: {
      ++report.tf;
      if (target_asn) {
        ++census.tf_by_asn[*target_asn];
        country_tf_ases_[*country][*target_asn] = true;
      }
      ++census.tf_per_24[util::Prefix::covering24(txn.target).base().value()];
      ++census.tf_responses_by_source[txn.response_src];

      const auto project = project_of_service_addr(txn.response_src)
                               .value_or(topo::ResolverProject::other);
      ++report.tf_by_project[project_index(project)];
      if (project == topo::ResolverProject::other) {
        if (const auto resp_asn =
                registry.routeviews.origin_of(txn.response_src)) {
          ++report.other_response_asns[*resp_asn];
        }
        // Indirect consolidation: the forwarder answered via a local
        // resolver, but that resolver itself forwarded to a big-4
        // project — visible in the A_resolver record's origin AS.
        if (const auto mirror = item.resolver_mirror()) {
          if (const auto mirror_asn =
                  registry.routeviews.origin_of(*mirror)) {
            ++report.other_mapped;
            if (registry.project_of_asn(*mirror_asn).has_value()) {
              ++report.other_indirect;
            }
          }
        }
      }
      break;
    }
    default: break;
  }
}

Census CensusAccumulator::finish() {
  for (auto& [code, report] : census_.by_country) {
    report.ases_with_tf = country_tf_ases_[code].size();
  }
  country_tf_ases_.clear();
  return std::move(census_);
}

Census analyze(const std::vector<Classified>& classified,
               const registry::RegistrySnapshot& registry) {
  CensusAccumulator acc(registry);
  for (const auto& item : classified) acc.add(item);
  return acc.finish();
}

namespace {

struct Fnv1a {
  std::uint64_t state = 14695981039346656037ULL;
  void mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      state ^= (value >> (i * 8)) & 0xff;
      state *= 1099511628211ULL;
    }
  }
  void mix_str(const std::string& s) {
    mix(s.size());
    for (unsigned char c : s) {
      state ^= c;
      state *= 1099511628211ULL;
    }
  }
};

template <typename Map>
void mix_sorted(Fnv1a& h, const Map& map) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rows;
  rows.reserve(map.size());
  for (const auto& [key, value] : map) {
    std::uint64_t k;
    if constexpr (std::is_same_v<std::decay_t<decltype(key)>, util::Ipv4>) {
      k = key.value();
    } else {
      k = static_cast<std::uint64_t>(key);
    }
    rows.emplace_back(k, static_cast<std::uint64_t>(value));
  }
  std::sort(rows.begin(), rows.end());
  h.mix(rows.size());
  for (const auto& [k, v] : rows) {
    h.mix(k);
    h.mix(v);
  }
}

}  // namespace

std::uint64_t census_fingerprint(const Census& census) {
  Fnv1a h;
  h.mix(census.rr);
  h.mix(census.rf);
  h.mix(census.tf);
  h.mix(census.invalid);
  h.mix(census.unresponsive);
  h.mix(census.unmapped_country);
  // by_country is an ordered map — deterministic iteration for free.
  h.mix(census.by_country.size());
  for (const auto& [code, report] : census.by_country) {
    h.mix_str(code);
    h.mix(report.rr);
    h.mix(report.rf);
    h.mix(report.tf);
    h.mix(report.invalid);
    h.mix(report.unresponsive);
    for (auto count : report.tf_by_project) h.mix(count);
    h.mix(report.other_indirect);
    h.mix(report.other_mapped);
    mix_sorted(h, report.other_response_asns);
    h.mix(report.ases_with_tf);
  }
  mix_sorted(h, census.tf_by_asn);
  mix_sorted(h, census.tf_per_24);
  mix_sorted(h, census.tf_responses_by_source);
  h.mix(census.coverage_by_asn.size());
  for (const auto& [asn, cov] : census.coverage_by_asn) {
    h.mix(asn);
    h.mix(cov.probed);
    h.mix(cov.answered);
  }
  return h.state;
}

namespace {

bool is_mikrotik(const registry::DeviceObservation& obs) {
  if (obs.product.find("MikroTik") != std::string::npos) return true;
  bool winbox = false;
  bool btest = false;
  for (auto port : obs.open_ports) {
    winbox |= port == 8291;
    btest |= port == 2000;
  }
  return winbox && btest;
}

}  // namespace

DeviceReport device_attribution(const Census& census,
                                const std::vector<Classified>& classified,
                                const registry::RegistrySnapshot& registry) {
  DeviceReport report;
  report.tf_total = census.tf;
  for (const auto& item : classified) {
    if (item.klass != Klass::transparent_forwarder) continue;
    const auto* obs = registry.shodan.find(item.txn.target);
    if (obs == nullptr) continue;
    ++report.fingerprinted;
    const std::string product =
        obs->product.empty() ? "unidentified" : obs->product;
    ++report.by_product[product];
    if (is_mikrotik(*obs)) {
      ++report.mikrotik;
      const auto base =
          util::Prefix::covering24(item.txn.target).base().value();
      if (auto it = census.tf_per_24.find(base);
          it != census.tf_per_24.end() && it->second >= 254) {
        ++report.mikrotik_in_full_24;
      }
    }
  }
  return report;
}

std::vector<VantageReport> vantage_breakdown(
    const std::vector<Classified>& classified) {
  std::vector<VantageReport> rows;
  for (const auto& item : classified) {
    const std::uint32_t v = item.txn.vantage;
    if (v >= rows.size()) rows.resize(v + 1);
    VantageReport& row = rows[v];
    switch (item.klass) {
      case Klass::recursive_resolver: ++row.rr; break;
      case Klass::recursive_forwarder: ++row.rf; break;
      case Klass::transparent_forwarder: ++row.tf; break;
      case Klass::invalid: ++row.invalid; break;
      case Klass::unresponsive: ++row.unresponsive; break;
    }
  }
  for (std::size_t v = 0; v < rows.size(); ++v) {
    rows[v].vantage = static_cast<std::uint32_t>(v);
  }
  return rows;
}

AsClassificationReport classify_ases(const Census& census,
                                     const registry::RegistrySnapshot& registry,
                                     std::size_t top_n) {
  AsClassificationReport report;
  const auto top = census.top_tf_ases(top_n);
  report.top_n = top.size();
  std::uint64_t covered = 0;
  for (const auto& [asn, count] : top) {
    covered += count;
    if (asn > 65535) ++report.wide_asns;
    if (auto type = registry.peeringdb.type_of(asn)) {
      ++report.classified_peeringdb;
      ++report.by_type[*type];
      if (*type == topo::AsType::eyeball_isp) ++report.eyeball_total;
    } else if (auto manual = registry.manual.type_of(asn)) {
      ++report.classified_manual;
      ++report.by_type[*manual];
      if (*manual == topo::AsType::eyeball_isp) ++report.eyeball_total;
    } else {
      ++report.unclassified;
    }
  }
  report.tf_coverage =
      census.tf == 0 ? 0.0
                     : static_cast<double>(covered) /
                           static_cast<double>(census.tf);
  return report;
}

}  // namespace odns::classify
