#pragma once
// Aggregation of classified transactions into the paper's analyses:
// per-country composition (Fig. 3/4, Table 5), resolver-project
// attribution and indirect consolidation (Fig. 5, Table 4), /24
// population density (Fig. 8), device attribution and AS
// classification (§6, Appendix E). All joins go through the registry
// snapshot — never ground truth — mirroring the real pipeline.

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "classify/classify.hpp"
#include "registry/registry.hpp"

namespace odns::classify {

/// Well-known service addresses of the big public resolver projects
/// (operator-published constants).
[[nodiscard]] std::optional<topo::ResolverProject> project_of_service_addr(
    util::Ipv4 addr);

constexpr std::size_t project_index(topo::ResolverProject p) {
  return static_cast<std::size_t>(p);
}
inline constexpr std::size_t kProjectCount = 5;  // google..other

struct CountryReport {
  std::string code;
  std::uint64_t rr = 0;
  std::uint64_t rf = 0;
  std::uint64_t tf = 0;
  std::uint64_t invalid = 0;
  std::uint64_t unresponsive = 0;
  /// Transparent forwarders by the project of the response source.
  std::array<std::uint64_t, kProjectCount> tf_by_project{};
  /// Of the "other"-project TFs: responses whose A_resolver maps into
  /// a big-4 AS (indirect consolidation) vs. mapped at all.
  std::uint64_t other_indirect = 0;
  std::uint64_t other_mapped = 0;
  /// Response-source ASNs of "other" TFs (Table 4's top-ASN column).
  std::unordered_map<netsim::Asn, std::uint64_t> other_response_asns;
  /// Distinct ASes with at least one transparent forwarder.
  std::uint64_t ases_with_tf = 0;

  [[nodiscard]] std::uint64_t odns_total() const { return rr + rf + tf; }
  [[nodiscard]] double tf_share() const {
    const auto t = odns_total();
    return t == 0 ? 0.0 : static_cast<double>(tf) / static_cast<double>(t);
  }
  [[nodiscard]] std::optional<netsim::Asn> top_other_asn() const;
};

/// Per-AS census coverage: how many targets in the AS were probed and
/// how many answered (any viable or invalid response). The graceful-
/// degradation surface — under adverse-network faults the gap between
/// the two is where the census silently loses hosts, and retries are
/// measured by how much of it they close.
struct AsCoverage {
  std::uint64_t probed = 0;
  std::uint64_t answered = 0;
};

struct Census {
  std::uint64_t rr = 0;
  std::uint64_t rf = 0;
  std::uint64_t tf = 0;
  std::uint64_t invalid = 0;
  std::uint64_t unresponsive = 0;
  std::uint64_t unmapped_country = 0;
  std::map<std::string, CountryReport> by_country;
  /// Probed/answered per origin AS of the target (degradation report).
  std::map<netsim::Asn, AsCoverage> coverage_by_asn;
  std::unordered_map<netsim::Asn, std::uint64_t> tf_by_asn;
  /// Transparent forwarders per covering /24 (keyed by prefix base).
  std::unordered_map<std::uint32_t, std::uint32_t> tf_per_24;
  /// Distinct resolvers observed answering for TFs, with fan-out.
  std::unordered_map<util::Ipv4, std::uint64_t> tf_responses_by_source;

  [[nodiscard]] std::uint64_t odns_total() const { return rr + rf + tf; }

  /// Country reports ordered by transparent-forwarder count, descending.
  [[nodiscard]] std::vector<const CountryReport*> countries_by_tf() const;
  /// Country reports ordered by total ODNS components, descending.
  [[nodiscard]] std::vector<const CountryReport*> countries_by_odns() const;
  [[nodiscard]] std::vector<std::pair<netsim::Asn, std::uint64_t>> top_tf_ases(
      std::size_t n) const;
  /// TF counts per /24, as a plain vector (Fig. 8 input).
  [[nodiscard]] std::vector<std::uint32_t> tf_per_24_counts() const;
  /// Fraction of TFs in /24s populated with at most `limit` TFs.
  [[nodiscard]] double tf_fraction_with_density_at_most(
      std::uint32_t limit) const;
  [[nodiscard]] double tf_fraction_with_density_at_least(
      std::uint32_t limit) const;
};

/// Incremental Census construction for streaming correlation: each
/// finalized transaction is classified and folded into the tables as
/// it arrives (no buffered Classified vector required), and finish()
/// seals the cross-item aggregates (distinct TF ASes per country).
/// Feeding the same items in any order yields the same Census as
/// analyze() — every table update is commutative — so the streaming
/// census is byte-identical to the buffered one.
class CensusAccumulator {
 public:
  explicit CensusAccumulator(const registry::RegistrySnapshot& registry)
      : registry_(&registry) {}

  /// Folds one classified transaction into the census tables.
  void add(const Classified& item);
  /// Seals cross-item aggregates and returns the finished census.
  /// The accumulator is spent afterwards.
  [[nodiscard]] Census finish();
  [[nodiscard]] std::uint64_t consumed() const { return consumed_; }

 private:
  const registry::RegistrySnapshot* registry_;
  Census census_;
  std::unordered_map<std::string, std::unordered_map<netsim::Asn, bool>>
      country_tf_ases_;
  std::uint64_t consumed_ = 0;
};

/// Runs all registry joins and aggregations over classified scans.
[[nodiscard]] Census analyze(const std::vector<Classified>& classified,
                             const registry::RegistrySnapshot& registry);

/// Order-independent structural digest of every census table (scalars,
/// per-country composition including the project/consolidation
/// columns, TF-by-AS, /24 density, response fan-out) — the scale
/// harness's byte-identity oracle across shard counts, thread modes,
/// and streaming-vs-buffered execution.
[[nodiscard]] std::uint64_t census_fingerprint(const Census& census);

/// Per-vantage composition of a multi-vantage scan: what each capture
/// host observed, by class — the multi-campaign comparison surface
/// (each vantage is an independent concurrent measurement of the same
/// infrastructure; the paper's point is that their union, not any
/// single one, is the census). Vantage attribution is an execution
/// detail (it depends on the shard count), so this is a diagnostic
/// view, never an input to the Census tables. A single-vantage scan
/// yields one row.
struct VantageReport {
  std::uint32_t vantage = 0;
  std::uint64_t rr = 0;
  std::uint64_t rf = 0;
  std::uint64_t tf = 0;
  std::uint64_t invalid = 0;
  std::uint64_t unresponsive = 0;

  [[nodiscard]] std::uint64_t total() const {
    return rr + rf + tf + invalid + unresponsive;
  }
};

[[nodiscard]] std::vector<VantageReport> vantage_breakdown(
    const std::vector<Classified>& classified);

// --- §6 / Appendix E analyses ----------------------------------------

struct DeviceReport {
  std::uint64_t tf_total = 0;
  std::uint64_t fingerprinted = 0;  // hosts with Shodan-style banners
  std::map<std::string, std::uint64_t> by_product;
  std::uint64_t mikrotik = 0;
  std::uint64_t mikrotik_in_full_24 = 0;

  [[nodiscard]] double mikrotik_share_of_fingerprinted() const {
    return fingerprinted == 0 ? 0.0
                              : static_cast<double>(mikrotik) /
                                    static_cast<double>(fingerprinted);
  }
};

/// Port/banner correlation over the transparent-forwarder population
/// (detects MikroTik via the RouterOS port signature).
[[nodiscard]] DeviceReport device_attribution(
    const Census& census, const std::vector<Classified>& classified,
    const registry::RegistrySnapshot& registry);

struct AsClassificationReport {
  std::size_t top_n = 0;
  std::map<topo::AsType, int> by_type;   // via PeeringDB
  int classified_peeringdb = 0;
  int classified_manual = 0;
  int unclassified = 0;
  int eyeball_total = 0;  // PeeringDB + manual, Cable/DSL/ISP
  int wide_asns = 0;      // 32-bit ASNs (RFC 4893)
  double tf_coverage = 0.0;  // share of all TFs inside the top-N ASes
};

/// PeeringDB-first, manual-research-second typing of the top-N ASes by
/// transparent-forwarder count (Appendix E).
[[nodiscard]] AsClassificationReport classify_ases(
    const Census& census, const registry::RegistrySnapshot& registry,
    std::size_t top_n = 100);

}  // namespace odns::classify
