#include "classify/classify.hpp"

namespace odns::classify {

std::string to_string(Klass k) {
  switch (k) {
    case Klass::transparent_forwarder: return "Transparent Forwarder";
    case Klass::recursive_forwarder: return "Recursive Forwarder";
    case Klass::recursive_resolver: return "Recursive Resolver";
    case Klass::invalid: return "Invalid";
    case Klass::unresponsive: return "Unresponsive";
  }
  return "?";
}

Klass classify_one(const scan::Transaction& txn, const ClassifyConfig& cfg) {
  if (!txn.answered) return Klass::unresponsive;
  if (txn.rcode != dnswire::Rcode::noerror) return Klass::unresponsive;
  if (txn.answer_addrs.empty()) return Klass::unresponsive;

  if (cfg.strict_two_records) {
    // Robustness requirement: both records present and the static
    // control record untouched; anything else is a manipulated or
    // non-conforming response and is excluded from the ODNS.
    if (txn.answer_addrs.size() < 2) return Klass::invalid;
    if (*txn.control_a() != cfg.control_addr) return Klass::invalid;
  }

  const auto resolver = txn.dynamic_a();
  if (txn.target != txn.response_src) return Klass::transparent_forwarder;
  if (resolver.has_value() && txn.response_src == *resolver) {
    return Klass::recursive_resolver;
  }
  return Klass::recursive_forwarder;
}

std::vector<Classified> classify_all(const std::vector<scan::Transaction>& txns,
                                     const ClassifyConfig& cfg) {
  std::vector<Classified> out;
  out.reserve(txns.size());
  for (const auto& txn : txns) {
    out.push_back(Classified{txn, classify_one(txn, cfg)});
  }
  return out;
}

}  // namespace odns::classify
