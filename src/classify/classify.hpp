#pragma once
// The §4.1 classification rules, applied to correlated transactions:
//
//   Transparent Forwarder : IP_target ≠ IP_response
//   Recursive Forwarder   : IP_target = IP_response ∧ IP_response ≠ A_resolver
//   Recursive Resolver    : IP_target = IP_response ∧ IP_response = A_resolver
//
// plus the validation step this work adds: responses must carry both A
// records with the control record unaltered. Shadowserver-style
// single-record validation is available as an ablation (§4.2 explains
// the count differences it produces).
//
// Transactions come from scan/txscanner.hpp; aggregation into the
// paper's tables lives in analysis.hpp. See docs/architecture.md.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scan/txscanner.hpp"

namespace odns::classify {

enum class Klass : std::uint8_t {
  transparent_forwarder,
  recursive_forwarder,
  recursive_resolver,
  invalid,       // answered, but failed validation (manipulated answer)
  unresponsive,  // no answer inside the timeout
};

std::string to_string(Klass k);

struct ClassifyConfig {
  util::Ipv4 control_addr;
  /// Strict (this work): require the dynamic + unaltered control record.
  /// Relaxed (Shadowserver): any positive answer with >= 1 A record.
  bool strict_two_records = true;
};

struct Classified {
  scan::Transaction txn;
  Klass klass = Klass::unresponsive;

  /// The dynamic A record: egress address of the resolver that
  /// contacted the authoritative server. Meaningful for valid answers.
  [[nodiscard]] std::optional<util::Ipv4> resolver_mirror() const {
    return txn.dynamic_a();
  }
};

[[nodiscard]] Klass classify_one(const scan::Transaction& txn,
                                 const ClassifyConfig& cfg);

[[nodiscard]] std::vector<Classified> classify_all(
    const std::vector<scan::Transaction>& txns, const ClassifyConfig& cfg);

}  // namespace odns::classify
