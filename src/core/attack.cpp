#include "core/attack.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace odns::core {

namespace {

netsim::SimCounters operator-(const netsim::SimCounters& a,
                              const netsim::SimCounters& b) {
  netsim::SimCounters d;
  d.sent = a.sent - b.sent;
  d.delivered = a.delivered - b.delivered;
  d.dropped_sav = a.dropped_sav - b.dropped_sav;
  d.dropped_loss = a.dropped_loss - b.dropped_loss;
  d.dropped_no_route = a.dropped_no_route - b.dropped_no_route;
  d.ttl_expired = a.ttl_expired - b.ttl_expired;
  d.icmp_generated = a.icmp_generated - b.icmp_generated;
  d.redirected = a.redirected - b.redirected;
  return d;
}

/// Deterministic filler for the planted TXT rrset, chunked to the
/// 255-octet character-string limit.
std::vector<std::string> amp_txt_strings(std::size_t bytes) {
  static constexpr char kPattern[] = "odns-amplification-study-payload/";
  std::vector<std::string> strings;
  std::string chunk;
  for (std::size_t i = 0; i < bytes; ++i) {
    chunk.push_back(kPattern[i % (sizeof(kPattern) - 1)]);
    if (chunk.size() == 255) {
      strings.push_back(std::move(chunk));
      chunk.clear();
    }
  }
  if (!chunk.empty()) strings.push_back(std::move(chunk));
  return strings;
}

DefenseSweepRow row_from(std::string label, const AttackScenarioResult& r) {
  DefenseSweepRow row;
  row.label = std::move(label);
  row.bytes_sent = r.report.total_bytes_sent;
  row.bytes_reflected = r.report.total_bytes_reflected;
  row.responses = r.report.total_responses;
  row.truncated = r.report.total_truncated;
  row.factor = r.report.overall_factor();
  return row;
}

void fill_removed(std::vector<DefenseSweepRow>& rows) {
  if (rows.empty() || rows.front().bytes_reflected == 0) return;
  const double base = static_cast<double>(rows.front().bytes_reflected);
  for (auto& row : rows) {
    row.removed_vs_baseline =
        1.0 - static_cast<double>(row.bytes_reflected) / base;
  }
}

}  // namespace

AttackScenarioResult run_attack_scenario(CensusResult& census,
                                         const AttackScenarioConfig& cfg) {
  topo::Deployment& world = *census.world;
  auto& sim = world.sim();
  auto& net = sim.net();

  // The large-response name: a fat TXT rrset under the scan zone, so
  // resolvers iterate the existing hierarchy (root -> TLD -> scan
  // auth) and cache it like any other name.
  const auto amp_name = world.scan_name().prepend("amp");
  if (!amp_name) throw std::runtime_error("attack: cannot derive amp name");
  nodes::Zone* zone = world.auth().zone_for_mutable(*amp_name);
  if (zone == nullptr) {
    throw std::runtime_error("attack: no zone serves the amp name");
  }
  if (zone->find(*amp_name, dnswire::RrType::txt) == nullptr) {
    zone->add_record(dnswire::ResourceRecord::txt(
        *amp_name, amp_txt_strings(cfg.amp_txt_bytes), zone->default_ttl));
  }

  // Victim and attacker vantage networks. Blocks are carved from
  // 198.18.0.0/16 well away from the prefixes tests/examples use for
  // campaign vantages; the capture fleet lives in 198.19.0.0/16.
  scan::AmplificationConfig ac;
  ac.qname = *amp_name;
  ac.qtype = cfg.qtype;
  ac.probes_per_second = cfg.probes_per_second;
  ac.settle = cfg.settle;
  scan::AmplificationCampaign campaign(sim, ac);

  for (std::uint32_t i = 0; i < cfg.victims; ++i) {
    const util::Ipv4 base{198, 18, static_cast<std::uint8_t>(200 + i), 0};
    const util::Ipv4 addr{base.value() + kCampaignVantageHostOffset};
    const auto host = honeypot::attach_vantage(world, util::Prefix{base, 24},
                                               addr, /*sav=*/true);
    campaign.add_victim(host, addr);
  }
  AttackScenarioResult result;
  for (std::uint32_t i = 0; i < cfg.attackers; ++i) {
    const util::Ipv4 base{198, 18, static_cast<std::uint8_t>(240 + i), 0};
    const util::Ipv4 addr{base.value() + kCampaignVantageHostOffset};
    const auto host = honeypot::attach_vantage(world, util::Prefix{base, 24},
                                               addr, /*sav=*/false);
    campaign.add_attacker(host);
    result.attacker_ases.push_back(net.host(host).asn);
  }

  // Defense toggles. Both mutate per-packet-checked state only, so
  // applying them between runs is safe.
  std::vector<netsim::Asn> sav_targets = cfg.sav_ases;
  for (std::uint32_t i = 0;
       i < cfg.sav_first_attackers && i < result.attacker_ases.size(); ++i) {
    sav_targets.push_back(result.attacker_ases[i]);
  }
  for (const auto asn : sav_targets) {
    if (auto* as_info = net.find_as_mutable(asn)) {
      as_info->cfg.source_address_validation = true;
    }
  }
  if (cfg.rrl.rate > 0) {
    const std::unordered_set<netsim::Asn> rrl_set(cfg.rrl_ases.begin(),
                                                  cfg.rrl_ases.end());
    for (auto& resolver : world.resolvers_) {
      const auto asn = net.host(resolver->host()).asn;
      if (rrl_set.empty() || rrl_set.contains(asn)) {
        resolver->set_rrl(cfg.rrl);
      }
    }
  }

  // Reflectors: the transparent forwarders this census discovered.
  std::vector<util::Ipv4> reflectors;
  for (const auto& item : census.classified) {
    if (item.klass == classify::Klass::transparent_forwarder) {
      reflectors.push_back(item.txn.target);
      if (cfg.max_reflectors != 0 && reflectors.size() >= cfg.max_reflectors) {
        break;
      }
    }
  }

  const netsim::SimCounters before = sim.counters();
  campaign.start(reflectors);
  campaign.run_to_completion();
  result.counters = sim.counters() - before;

  result.injections = campaign.injections();
  result.reflections = campaign.merged_reflections();
  result.report = classify::amplification_report(
      result.injections, result.reflections, census.registry);
  for (const auto& resolver : world.resolvers_) {
    if (const auto* rrl = resolver->rrl()) result.rrl += rrl->stats();
  }
  return result;
}

std::vector<netsim::Asn> top_resolver_ases(
    const classify::AmplificationReport& report, std::size_t n) {
  std::vector<classify::ResolverAsAmplification> rows;
  for (const auto& row : report.by_resolver_as) {
    if (row.asn != 0) rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) {
              if (a.bytes_reflected != b.bytes_reflected) {
                return a.bytes_reflected > b.bytes_reflected;
              }
              return a.asn < b.asn;
            });
  if (rows.size() > n) rows.resize(n);
  std::vector<netsim::Asn> ases;
  ases.reserve(rows.size());
  for (const auto& row : rows) ases.push_back(row.asn);
  return ases;
}

std::vector<DefenseSweepRow> sweep_rrl_deployment(
    const CensusConfig& census_cfg, const AttackScenarioConfig& attack,
    const std::vector<std::size_t>& top_n) {
  std::vector<DefenseSweepRow> rows;

  AttackScenarioConfig baseline_cfg = attack;
  baseline_cfg.rrl.rate = 0;
  baseline_cfg.rrl_ases.clear();
  CensusResult baseline_census = run_census(census_cfg);
  const auto baseline = run_attack_scenario(baseline_census, baseline_cfg);
  rows.push_back(row_from("baseline", baseline));

  for (const std::size_t n : top_n) {
    AttackScenarioConfig cfg = attack;
    cfg.rrl_ases = top_resolver_ases(baseline.report, n);
    CensusResult census = run_census(census_cfg);
    const auto result = run_attack_scenario(census, cfg);
    rows.push_back(row_from("rrl@top-" + std::to_string(n), result));
  }
  fill_removed(rows);
  return rows;
}

std::vector<DefenseSweepRow> sweep_sav_deployment(
    const CensusConfig& census_cfg, const AttackScenarioConfig& attack) {
  std::vector<DefenseSweepRow> rows;
  for (std::uint32_t k = 0; k <= attack.attackers; ++k) {
    AttackScenarioConfig cfg = attack;
    cfg.sav_first_attackers = k;
    CensusResult census = run_census(census_cfg);
    const auto result = run_attack_scenario(census, cfg);
    rows.push_back(
        row_from("sav@" + std::to_string(k) + "-attacker-ases", result));
  }
  fill_removed(rows);
  return rows;
}

}  // namespace odns::core
