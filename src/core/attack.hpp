#pragma once
// What-if attack/defense platform on top of the census (ROADMAP item
// 2): run a reflective-amplification campaign through the transparent
// forwarders a census discovered, then sweep the two deployable
// defenses — resolver-side response rate limiting (RRL) at chosen
// resolver ASes and partial SAV deployment at attacker ASes — and
// quantify the attack volume each deployment removes. See "Attack
// scenarios" in docs/architecture.md.

#include <string>
#include <vector>

#include "classify/amplification.hpp"
#include "core/census.hpp"
#include "nodes/ratelimit.hpp"
#include "scan/amplification.hpp"

namespace odns::core {

struct AttackScenarioConfig {
  /// Injection sources, each attached as its own SAV-free vantage AS.
  std::uint32_t attackers = 2;
  /// Spoofed victims, each attached as its own (SAV-enabled) stub AS.
  std::uint32_t victims = 2;
  /// Reflector budget: the first N census-discovered transparent
  /// forwarders (0 = all of them).
  std::size_t max_reflectors = 0;
  std::uint64_t probes_per_second = 20000;
  dnswire::RrType qtype = dnswire::RrType::txt;
  /// TXT rdata bytes planted at amp.<scan name> — the response size
  /// that drives the amplification factor.
  std::size_t amp_txt_bytes = 1024;
  util::Duration settle = util::Duration::seconds(20);

  /// RRL parameters applied to resolvers when rrl.rate > 0: to those
  /// whose AS is listed in rrl_ases, or to every resolver when
  /// rrl_ases is empty.
  nodes::RrlConfig rrl;
  std::vector<netsim::Asn> rrl_ases;

  /// Partial SAV deployment: enable egress SAV on these existing ASes
  /// plus on the first `sav_first_attackers` attacker vantage ASes
  /// (spoofed injections from a SAV-enabled AS die at the source).
  std::vector<netsim::Asn> sav_ases;
  std::uint32_t sav_first_attackers = 0;
};

struct AttackScenarioResult {
  classify::AmplificationReport report;
  std::vector<scan::Injection> injections;
  std::vector<scan::Reflection> reflections;
  /// Attacker vantage ASes in attachment order (the subset
  /// sav_first_attackers counts over).
  std::vector<netsim::Asn> attacker_ases;
  /// RRL verdicts summed over every deployed resolver.
  nodes::RrlStats rrl;
  /// Packet-plane counter delta over the attack phase (dropped_sav
  /// counts the injections SAV killed at attacker ASes).
  netsim::SimCounters counters;
};

/// Runs the campaign against the censused world: plants the large TXT
/// rrset in the scan zone, attaches attacker/victim vantage networks,
/// applies the configured RRL/SAV toggles, injects one spoofed query
/// per (victim, transparent forwarder) pair, and aggregates the
/// amplification tables. Mutates the census's world (vantages, zone
/// data, defense toggles) — rebuild the census for an independent
/// scenario.
[[nodiscard]] AttackScenarioResult run_attack_scenario(
    CensusResult& census, const AttackScenarioConfig& cfg);

/// Resolver ASes by reflected volume, descending (ties toward the
/// lower ASN; the unmapped bucket excluded) — the "where to deploy
/// RRL first" ranking.
[[nodiscard]] std::vector<netsim::Asn> top_resolver_ases(
    const classify::AmplificationReport& report, std::size_t n);

struct DefenseSweepRow {
  std::string label;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_reflected = 0;
  std::uint64_t responses = 0;
  std::uint64_t truncated = 0;
  double factor = 0.0;
  /// Fraction of the baseline row's reflected bytes this deployment
  /// removed (0 for the baseline itself).
  double removed_vs_baseline = 0.0;
};

/// "How much attack volume does deploying RRL at the top-N resolver
/// ASes remove?" — row 0 is the undefended baseline (which also ranks
/// the ASes); one row per requested N. Every row rebuilds the world
/// from `census_cfg` (fresh caches, fresh counters), so rows are
/// independent, deterministic, and shard-count-invariant.
[[nodiscard]] std::vector<DefenseSweepRow> sweep_rrl_deployment(
    const CensusConfig& census_cfg, const AttackScenarioConfig& attack,
    const std::vector<std::size_t>& top_n);

/// Partial SAV deployment sweep: row k enables egress SAV at the first
/// k attacker ASes (k = 0..attackers), starving their spoofed
/// injections at the source.
[[nodiscard]] std::vector<DefenseSweepRow> sweep_sav_deployment(
    const CensusConfig& census_cfg, const AttackScenarioConfig& attack);

}  // namespace odns::core
