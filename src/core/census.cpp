#include "core/census.hpp"

namespace odns::core {

namespace {

/// Seals the degradation report once the census tables are final:
/// population totals from the class counters, per-AS gaps from the
/// coverage map, scanner stats and packet-plane counters from the run.
DegradationReport degradation_of(const CensusResult& result,
                                 const scan::ScannerStats& scan_stats) {
  DegradationReport report;
  const classify::Census& census = result.census;
  report.targets_probed = census.rr + census.rf + census.tf + census.invalid +
                          census.unresponsive;
  report.targets_answered = report.targets_probed - census.unresponsive;
  report.ases_probed = census.coverage_by_asn.size();
  for (const auto& [asn, cov] : census.coverage_by_asn) {
    if (cov.answered < cov.probed) ++report.ases_degraded;
    if (cov.answered == 0) ++report.ases_dark;
  }
  report.scan = scan_stats;
  const auto& sim = result.world->sim();
  report.trace_dropped = sim.trace_dropped();
  report.net = sim.counters();
  return report;
}

}  // namespace

CensusResult run_census(const CensusConfig& cfg) {
  CensusResult result;
  topo::TopologyConfig topology = cfg.topology;
  if (cfg.sim_shards > 0) topology.sim.shards = cfg.sim_shards;
  result.world = topo::TopologyBuilder::build(topology);
  result.registry =
      registry::RegistrySnapshot::derive(*result.world, cfg.registry);
  auto& sim = result.world->sim();

  const std::vector<util::Ipv4> targets = result.world->scan_targets();
  if (cfg.weighted_partition && sim.shard_count() > 1) {
    // Balance the AS partition by expected event load: the dominant
    // per-shard cost of a census is serving + capturing its probe
    // targets. With serving-cost weights a forwarder target counts
    // double — it relays the probe upstream, so its virtual shard
    // executes the relay leg on top of the delivery leg — which is
    // what actually evens out forwarder-heavy shards.
    std::vector<std::uint64_t> weights(netsim::Simulator::kVirtualShards, 0);
    if (cfg.serving_cost_weights) {
      for (const auto& gt : result.world->ground_truth()) {
        const std::uint64_t cost =
            gt.kind == topo::OdnsKind::recursive_resolver ? 1 : 2;
        weights[sim.virtual_shard_of(gt.addr)] += cost;
      }
    } else {
      for (const auto target : targets) {
        ++weights[sim.virtual_shard_of(target)];
      }
    }
    sim.set_partition_load_hints(std::move(weights));
  }

  scan::ScanConfig sc;
  sc.qname = result.world->scan_name();
  sc.timeout = cfg.scan_timeout;
  sc.probes_per_second = cfg.probes_per_second;
  sc.shard_interleave = cfg.shard_interleaved_targets;
  sc.max_retries = cfg.scan_max_retries;
  sc.backoff_base = cfg.scan_retry_backoff;

  classify::ClassifyConfig cc;
  cc.control_addr = result.world->control_addr();
  cc.strict_two_records = cfg.strict_validation;

  if (cfg.vantages > 0) {
    auto members =
        honeypot::attach_capture_vantages(*result.world, cfg.vantages);
    result.vantage_set = std::make_unique<scan::VantageSet>(
        sim, sc, result.world->scanner_addr(), std::move(members));
    result.vantage_set->start(targets);
    if (cfg.streaming_correlation) {
      // Streaming path: each transaction is classified and folded into
      // the census tables the moment its timeout window closes; the
      // per-probe logs are only kept on request.
      classify::CensusAccumulator acc(result.registry);
      if (cfg.retain_transactions) {
        result.transactions.reserve(targets.size());
        result.classified.reserve(targets.size());
      }
      result.stream_stats = result.vantage_set->run_and_correlate_streaming(
          cfg.correlate_flush,
          [&](std::size_t, scan::Transaction&& txn) {
            classify::Classified item;
            item.klass = classify::classify_one(txn, cc);
            item.txn = std::move(txn);
            acc.add(item);
            if (cfg.retain_transactions) {
              result.transactions.push_back(item.txn);
              result.classified.push_back(std::move(item));
            }
          });
      result.census = acc.finish();
      result.degradation = degradation_of(result, result.vantage_set->stats());
      return result;
    }
    result.vantage_set->run_to_completion();
    result.transactions = result.vantage_set->correlate();
  } else {
    result.scanner = std::make_unique<scan::TransactionalScanner>(
        sim, result.world->scanner_host(), sc);
    result.scanner->start(targets);
    result.scanner->run_to_completion();
    result.transactions = result.scanner->correlate();
  }

  result.classified = classify::classify_all(result.transactions, cc);
  result.census = classify::analyze(result.classified, result.registry);
  result.degradation = degradation_of(
      result, result.vantage_set ? result.vantage_set->stats()
                                 : result.scanner->stats());
  if (!cfg.retain_transactions) {
    result.transactions.clear();
    result.transactions.shrink_to_fit();
    result.classified.clear();
    result.classified.shrink_to_fit();
  }
  return result;
}

classify::Census reanalyze(const CensusResult& result,
                           bool strict_validation) {
  classify::ClassifyConfig cc;
  cc.control_addr = result.world->control_addr();
  cc.strict_two_records = strict_validation;
  const auto classified = classify::classify_all(result.transactions, cc);
  return classify::analyze(classified, result.registry);
}

std::unique_ptr<scan::StatelessCampaign> run_campaign(
    topo::Deployment& world, scan::CampaignKind kind, util::Prefix vantage,
    const std::vector<util::Ipv4>& targets) {
  const util::Ipv4 host_addr{vantage.base().value() +
                             kCampaignVantageHostOffset};
  const auto host = honeypot::attach_vantage(world, vantage, host_addr);
  scan::CampaignConfig cc;
  cc.kind = kind;
  cc.qname = world.scan_name();
  auto campaign =
      std::make_unique<scan::StatelessCampaign>(world.sim(), host, cc);
  campaign->run(targets);
  return campaign;
}

std::map<std::string, std::uint64_t> campaign_country_counts(
    const scan::StatelessCampaign& campaign,
    const registry::RegistrySnapshot& registry) {
  std::map<std::string, std::uint64_t> counts;
  for (const auto& addr : campaign.discovered()) {
    if (auto country = registry.country_of(addr)) {
      ++counts[*country];
    }
  }
  return counts;
}

DnsrouteResult run_dnsroute(CensusResult& result, int max_ttl) {
  std::vector<util::Ipv4> targets;
  for (const auto& item : result.classified) {
    if (item.klass == classify::Klass::transparent_forwarder) {
      targets.push_back(item.txn.target);
    }
  }
  dnsroute::DnsrouteConfig rc;
  rc.qname = result.world->scan_name();
  rc.max_ttl = max_ttl;
  DnsrouteResult out;
  {
    // DNSRoute++ traces from the classic scanner host, so its probes'
    // responses (and ICMP) must reach that host again — turn off the
    // multi-vantage capture override for the remainder of the run.
    result.world->sim().clear_vantage_capture();
    dnsroute::DnsroutePlusPlus tracer(result.world->sim(),
                                      result.world->scanner_host(), rc);
    out.paths = tracer.run(targets);
    // The tracer borrowed the scanner host's wildcard socket and ICMP
    // sink; hand them back before it goes out of scope.
    result.world->sim().set_icmp_handler(result.world->scanner_host(), {});
    result.world->sim().bind_udp_wildcard(result.world->scanner_host(),
                                          result.scanner.get());
  }
  out.samples = dnsroute::path_length_samples(out.paths, result.registry);
  out.relationships =
      dnsroute::infer_relationships(out.paths, result.registry);
  return out;
}

}  // namespace odns::core
