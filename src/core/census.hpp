#pragma once
// The paper's measurement system as a product: one call builds the
// world, runs the transactional scan, correlates, classifies, joins
// with the registries, and returns every analysis surface the paper's
// tables and figures draw from. Step-wise entry points are exposed for
// benches that need intermediate control (method ablations, campaign
// comparisons, DNSRoute++).
//
// Pipeline: topo::TopologyBuilder → scan::TransactionalScanner →
// classify → registry joins → classify::Census; see "The census
// pipeline" in docs/architecture.md.

#include <memory>

#include "classify/analysis.hpp"
#include "dnsroute/dnsroute.hpp"
#include "honeypot/lab.hpp"
#include "scan/campaigns.hpp"
#include "scan/txscanner.hpp"
#include "scan/vantage.hpp"
#include "topo/deployment.hpp"

namespace odns::core {

struct CensusConfig {
  topo::TopologyConfig topology;
  registry::SnapshotConfig registry;
  util::Duration scan_timeout = util::Duration::seconds(20);
  std::uint64_t probes_per_second = 20000;
  /// Strict two-record validation (this work) vs. single-record
  /// (Shadowserver-style) — the §4.2 ablation.
  bool strict_validation = true;
  /// Event-engine shards for the simulated world (> 0 overrides
  /// topology.sim.shards; 0 keeps it). N > 1 runs the census on N
  /// worker threads with byte-identical results — see "Sharded
  /// execution" in docs/architecture.md.
  std::uint32_t sim_shards = 0;
  /// Interleave the probe targets round-robin over the partition so
  /// every shard stays busy in every pacing window (see
  /// scan::ScanConfig::shard_interleave; probe order then differs from
  /// the classic census, but is identical for every shard count).
  bool shard_interleaved_targets = false;
  /// Multi-vantage census: number of per-shard scanner vantage capture
  /// hosts (attached via honeypot::attach_capture_vantages and driven
  /// by scan::VantageSet). 0 = the classic single-vantage scanner.
  /// Counters, traces, transactions, and the resulting Census tables
  /// are byte-identical to the single-vantage run for any value; what
  /// changes is execution: with vantages >= shards the scanner shard
  /// stops being the response funnel. See "Multi-vantage census" in
  /// docs/architecture.md.
  std::uint32_t vantages = 0;
  /// Weighted virtual-shard partition: derive per-virtual-shard load
  /// hints from the probe-target counts and balance the AS partition
  /// by expected event load instead of round-robin (see
  /// netsim::Simulator::set_partition_load_hints). Execution-only; on
  /// by default for sharded runs.
  bool weighted_partition = true;
  /// Weight each probe target by its serving cost instead of counting
  /// every target once: a forwarder relays the probe upstream (and a
  /// transparent forwarder additionally triggers the off-path public
  /// response), so forwarder-heavy virtual shards execute roughly twice
  /// the events per target of resolver-only ones. Execution-only —
  /// results are byte-identical either way; the lever only moves the
  /// LPT placement (see the partition section of the scale test).
  bool serving_cost_weights = true;
  /// Streaming (windowed) correlation: requires vantages > 0. Instead
  /// of buffering the whole capture and correlating once, the census
  /// runs the simulator in correlate_flush windows, finalizes each
  /// probe as its timeout window closes, classifies it immediately,
  /// and folds it into the Census tables incrementally
  /// (classify::CensusAccumulator). Census, stats, counters, and
  /// traces are byte-identical to the buffered run; steady-state
  /// memory is bounded by the in-flight window, not the run length.
  bool streaming_correlation = false;
  util::Duration correlate_flush = util::Duration::seconds(1);
  /// Keep the per-probe transactions/classified vectors in the result.
  /// Million-host runs turn this off: the Census tables are the
  /// product, and the O(targets) logs are the last per-probe state.
  bool retain_transactions = true;
  /// Per-probe retransmissions under adverse networks (see
  /// scan::ScanConfig::max_retries): each unanswered probe is resent
  /// up to this many times with exponential backoff. 0 = classic
  /// single-shot census. Retries are unconditional (zmap -P style), so
  /// the schedule — and with it the census — is shard-count-invariant.
  std::uint32_t scan_max_retries = 0;
  /// Backoff base: retry k lands backoff * (2^k - 1) after the
  /// original send.
  util::Duration scan_retry_backoff = util::Duration::seconds(1);
};

/// Host offset inside a campaign's vantage prefix (the address the
/// campaign host binds: prefix base + offset). Previously a magic `+7`
/// in run_campaign.
inline constexpr std::uint32_t kCampaignVantageHostOffset = 7;

/// Graceful-degradation accounting of one census run: how much of the
/// target population actually answered, which ASes degraded or went
/// dark, and the fault/retry counters explaining why. Populated on
/// every run (all zero-gap on a fault-free world) — the comparison
/// surface for retry sweeps and the chaos harness.
struct DegradationReport {
  /// Probe targets (census rows) and how many produced any response.
  std::uint64_t targets_probed = 0;
  std::uint64_t targets_answered = 0;
  /// ASes with probed targets; of those, ASes that lost at least one
  /// answer, and ASes that lost every answer.
  std::uint64_t ases_probed = 0;
  std::uint64_t ases_degraded = 0;
  std::uint64_t ases_dark = 0;
  /// Aggregated scanner statistics (sent/retried/duplicate/late/...).
  scan::ScannerStats scan;
  /// Tap records dropped by the bounded trace ring.
  std::uint64_t trace_dropped = 0;
  /// Packet-plane counters (loss, outage, jitter, corruption, ...).
  netsim::SimCounters net;

  /// Fraction of probed targets that answered (1.0 when none probed).
  [[nodiscard]] double coverage() const {
    return targets_probed == 0
               ? 1.0
               : static_cast<double>(targets_answered) /
                     static_cast<double>(targets_probed);
  }
};

struct CensusResult {
  std::unique_ptr<topo::Deployment> world;
  registry::RegistrySnapshot registry;
  /// Single-vantage scanner (null when the census ran multi-vantage).
  std::unique_ptr<scan::TransactionalScanner> scanner;
  /// Multi-vantage capture set (null for the classic census).
  std::unique_ptr<scan::VantageSet> vantage_set;
  /// Per-probe logs (empty when retain_transactions is off).
  std::vector<scan::Transaction> transactions;
  std::vector<classify::Classified> classified;
  classify::Census census;
  /// Memory high-water marks of the streaming run (zero otherwise).
  scan::VantageSet::StreamStats stream_stats;
  /// Coverage and fault accounting for this run.
  DegradationReport degradation;
};

/// Full pipeline: topology → scan → correlate → classify → analyze.
[[nodiscard]] CensusResult run_census(const CensusConfig& cfg);

/// Re-classifies and re-analyzes an existing scan under different
/// validation rules (cheap; reuses the transaction log — works
/// identically on single-vantage and multi-vantage results, since the
/// merged transaction log is vantage-invariant).
[[nodiscard]] classify::Census reanalyze(const CensusResult& result,
                                         bool strict_validation);

/// Runs a stateless campaign model against the same world from its own
/// vantage network; returns the campaign (with its discovered set).
[[nodiscard]] std::unique_ptr<scan::StatelessCampaign> run_campaign(
    topo::Deployment& world, scan::CampaignKind kind, util::Prefix vantage,
    const std::vector<util::Ipv4>& targets);

/// Per-country ODNS counts as the campaign would publish them.
[[nodiscard]] std::map<std::string, std::uint64_t> campaign_country_counts(
    const scan::StatelessCampaign& campaign,
    const registry::RegistrySnapshot& registry);

struct DnsrouteResult {
  std::vector<dnsroute::TracePath> paths;
  std::vector<dnsroute::PathLengthSample> samples;
  dnsroute::AsRelationshipReport relationships;
};

/// DNSRoute++ campaign over all transparent forwarders found by the
/// census (or an explicit target list).
[[nodiscard]] DnsrouteResult run_dnsroute(CensusResult& result,
                                          int max_ttl = 30);

}  // namespace odns::core
