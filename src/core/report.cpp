#include "core/report.hpp"

#include <algorithm>

#include "topo/model.hpp"
#include "util/stats.hpp"

namespace odns::core::report {

using classify::Census;
using classify::CountryReport;
using util::Table;

bool is_emerging(const std::string& country_code) {
  for (const auto& p : topo::country_profiles()) {
    if (p.code == country_code) return p.emerging;
  }
  return false;
}

Table table1_composition(const Census& census) {
  Table t({"Component", "Count", "Share of ODNS"});
  const double total = static_cast<double>(census.odns_total());
  auto share = [total](std::uint64_t n) {
    return total == 0.0 ? "0%" : Table::fmt_percent(
                                     static_cast<double>(n) / total, 1);
  };
  t.add_row({"Recursive Resolvers", Table::fmt_count(census.rr),
             share(census.rr)});
  t.add_row({"Recursive Forwarders", Table::fmt_count(census.rf),
             share(census.rf)});
  t.add_row({"Transparent Forwarders", Table::fmt_count(census.tf),
             share(census.tf)});
  t.add_row({"All ODNSes", Table::fmt_count(census.odns_total()), "100%"});
  return t;
}

Table table4_other_share(const Census& census, std::size_t top_n) {
  // Rank countries by the absolute number of TFs answered by "other"
  // (non-big-4) resolvers.
  std::vector<const CountryReport*> rows;
  for (const auto& [code, report] : census.by_country) rows.push_back(&report);
  auto other_of = [](const CountryReport* r) {
    return r->tf_by_project[classify::project_index(
        topo::ResolverProject::other)];
  };
  std::sort(rows.begin(), rows.end(),
            [&](const CountryReport* a, const CountryReport* b) {
              if (other_of(a) != other_of(b)) return other_of(a) > other_of(b);
              return a->code < b->code;
            });
  if (rows.size() > top_n) rows.resize(top_n);

  Table t({"Country", "Top ASN", "# Transparent Forwarders (other)",
           "Indirect Consolidation"});
  for (const auto* r : rows) {
    const auto top_asn = r->top_other_asn();
    const double indirect =
        r->other_mapped == 0
            ? 0.0
            : static_cast<double>(r->other_indirect) /
                  static_cast<double>(r->other_mapped);
    t.add_row({r->code, top_asn ? std::to_string(*top_asn) : "-",
               Table::fmt_count(other_of(r)),
               Table::fmt_percent(indirect, 1)});
  }
  return t;
}

Table table5_rank_comparison(
    const Census& ours,
    const std::map<std::string, std::uint64_t>& campaign_counts,
    std::size_t top_n) {
  const auto ranked = ours.countries_by_odns();

  // Campaign-side ranks.
  std::vector<std::pair<std::string, std::uint64_t>> campaign(
      campaign_counts.begin(), campaign_counts.end());
  std::sort(campaign.begin(), campaign.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::map<std::string, std::size_t> campaign_rank;
  for (std::size_t i = 0; i < campaign.size(); ++i) {
    campaign_rank[campaign[i].first] = i + 1;
  }

  Table t({"Country", "Rank (ours)", "#ODNS (ours)", "Rank (campaign)",
           "#ODNS (campaign)", "Rank delta", "#ODNS delta"});
  for (std::size_t i = 0; i < ranked.size() && i < top_n; ++i) {
    const auto* r = ranked[i];
    const auto it = campaign_counts.find(r->code);
    const std::uint64_t theirs = it == campaign_counts.end() ? 0 : it->second;
    const auto rank_it = campaign_rank.find(r->code);
    const std::string their_rank =
        rank_it == campaign_rank.end() ? "n/a"
                                       : std::to_string(rank_it->second);
    const std::int64_t delta =
        static_cast<std::int64_t>(r->odns_total()) -
        static_cast<std::int64_t>(theirs);
    std::string rank_delta = "-";
    if (rank_it != campaign_rank.end()) {
      const auto d = static_cast<std::int64_t>(rank_it->second) -
                     static_cast<std::int64_t>(i + 1);
      rank_delta = (d > 0 ? "+" : "") + std::to_string(d);
    }
    t.add_row({r->code, std::to_string(i + 1),
               Table::fmt_count(r->odns_total()), their_rank,
               Table::fmt_count(theirs), rank_delta, std::to_string(delta)});
  }
  return t;
}

Table fig3_country_cdf(const Census& census, std::size_t max_rows) {
  const auto ranked = census.countries_by_tf();
  std::uint64_t total_tf = 0;
  std::size_t with_tf = 0;
  for (const auto* r : ranked) {
    total_tf += r->tf;
    if (r->tf > 0) ++with_tf;
  }
  Table t({"Rank", "Country", "# Transp. Fwd.", "Cumulative share"});
  std::uint64_t run = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    run += ranked[i]->tf;
    const bool show = i < max_rows || i + 1 == ranked.size() ||
                      (i + 1) % 25 == 0;
    if (!show) continue;
    t.add_row({std::to_string(i + 1), ranked[i]->code,
               Table::fmt_count(ranked[i]->tf),
               total_tf == 0 ? "0%"
                             : Table::fmt_percent(
                                   static_cast<double>(run) /
                                       static_cast<double>(total_tf),
                                   1)});
  }
  t.add_row({"-", "countries with TF", std::to_string(with_tf), ""});
  t.add_row({"-", "countries without TF",
             std::to_string(ranked.size() - with_tf), ""});
  return t;
}

Table fig4_top_countries(const Census& census, std::size_t top_n) {
  const auto ranked = census.countries_by_tf();
  Table t({"Country", "Emerging", "#ASes w/ TF", "% Rec. Resolver",
           "% Rec. Forwarder", "% Transp. Forwarder", "# Transp. Fwd."});
  for (std::size_t i = 0; i < ranked.size() && i < top_n; ++i) {
    const auto* r = ranked[i];
    if (r->tf == 0) break;
    const double total = static_cast<double>(r->odns_total());
    t.add_row({r->code, is_emerging(r->code) ? "*" : "",
               std::to_string(r->ases_with_tf),
               Table::fmt_percent(static_cast<double>(r->rr) / total, 1),
               Table::fmt_percent(static_cast<double>(r->rf) / total, 1),
               Table::fmt_percent(static_cast<double>(r->tf) / total, 1),
               Table::fmt_count(r->tf)});
  }
  return t;
}

Table fig5_project_shares(const Census& census, std::size_t top_n) {
  const auto ranked = census.countries_by_tf();
  Table t({"Country", "Google", "Cloudflare", "Quad9", "OpenDNS", "Other"});
  for (std::size_t i = 0; i < ranked.size() && i < top_n; ++i) {
    const auto* r = ranked[i];
    if (r->tf == 0) break;
    const double tf = static_cast<double>(r->tf);
    std::vector<std::string> row{r->code};
    for (std::size_t p = 0; p < classify::kProjectCount; ++p) {
      row.push_back(Table::fmt_percent(
          static_cast<double>(r->tf_by_project[p]) / tf, 1));
    }
    t.add_row(std::move(row));
  }
  return t;
}

Table fig6_path_lengths(
    const std::vector<dnsroute::PathLengthSample>& samples) {
  struct ProjectAgg {
    std::vector<double> hops;
    std::unordered_map<netsim::Asn, bool> asns;
  };
  std::map<topo::ResolverProject, ProjectAgg> agg;
  for (const auto& s : samples) {
    auto& a = agg[s.project];
    a.hops.push_back(static_cast<double>(s.hops));
    if (s.forwarder_asn != 0) a.asns[s.forwarder_asn] = true;
  }
  Table t({"Project", "Paths", "Fwd ASNs", "Mean hops", "Median", "p90",
           "Max"});
  for (auto& [project, a] : agg) {
    t.add_row({topo::to_string(project), std::to_string(a.hops.size()),
               std::to_string(a.asns.size()),
               Table::fmt_double(util::mean(a.hops), 1),
               Table::fmt_double(util::percentile(a.hops, 0.5), 1),
               Table::fmt_double(util::percentile(a.hops, 0.9), 1),
               Table::fmt_double(util::percentile(a.hops, 1.0), 0)});
  }
  return t;
}

Table fig8_prefix_density(const Census& census) {
  Table t({"Density bucket (TFs per /24)", "Prefixes", "TFs",
           "Cumulative TF share"});
  const auto counts = census.tf_per_24_counts();
  const double total = static_cast<double>(census.tf);
  struct Bucket {
    std::uint32_t lo;
    std::uint32_t hi;
  };
  const Bucket buckets[] = {{1, 5},    {6, 25},    {26, 100},
                            {101, 200}, {201, 253}, {254, 256}};
  std::uint64_t cum = 0;
  for (const auto& b : buckets) {
    std::uint64_t prefixes = 0;
    std::uint64_t tfs = 0;
    for (auto c : counts) {
      if (c >= b.lo && c <= b.hi) {
        ++prefixes;
        tfs += c;
      }
    }
    cum += tfs;
    t.add_row({std::to_string(b.lo) + "-" + std::to_string(b.hi),
               Table::fmt_count(prefixes), Table::fmt_count(tfs),
               total == 0.0 ? "0%" : Table::fmt_percent(
                                         static_cast<double>(cum) / total, 1)});
  }
  t.add_row({"total /24s", Table::fmt_count(counts.size()),
             Table::fmt_count(census.tf), "100%"});
  return t;
}

Table devices_table(const classify::DeviceReport& report) {
  Table t({"Metric", "Value"});
  t.add_row({"Transparent forwarders", Table::fmt_count(report.tf_total)});
  t.add_row({"With banner data", Table::fmt_count(report.fingerprinted)});
  for (const auto& [product, count] : report.by_product) {
    t.add_row({"  " + product, Table::fmt_count(count)});
  }
  t.add_row({"MikroTik (port signature)", Table::fmt_count(report.mikrotik)});
  t.add_row({"MikroTik share of fingerprinted",
             Table::fmt_percent(report.mikrotik_share_of_fingerprinted(), 1)});
  t.add_row({"MikroTik in fully-populated /24s",
             Table::fmt_count(report.mikrotik_in_full_24)});
  return t;
}

Table as_classification_table(const classify::AsClassificationReport& report) {
  Table t({"Metric", "Value"});
  t.add_row({"Top ASes considered", std::to_string(report.top_n)});
  t.add_row({"Share of all TFs covered",
             Table::fmt_percent(report.tf_coverage, 1)});
  for (const auto& [type, count] : report.by_type) {
    t.add_row({"  " + topo::to_string(type), std::to_string(count)});
  }
  t.add_row({"Classified via PeeringDB",
             std::to_string(report.classified_peeringdb)});
  t.add_row({"Classified manually", std::to_string(report.classified_manual)});
  t.add_row({"Unclassified", std::to_string(report.unclassified)});
  t.add_row({"Eyeball (Cable/DSL/ISP) total",
             std::to_string(report.eyeball_total)});
  t.add_row({"32-bit ASNs", std::to_string(report.wide_asns)});
  return t;
}

Table degradation_table(const DegradationReport& report) {
  Table t({"Metric", "Value"});
  t.add_row({"Targets probed", Table::fmt_count(report.targets_probed)});
  t.add_row({"Targets answered", Table::fmt_count(report.targets_answered)});
  t.add_row({"Coverage", Table::fmt_percent(report.coverage(), 2)});
  t.add_row({"ASes probed", Table::fmt_count(report.ases_probed)});
  t.add_row({"ASes degraded", Table::fmt_count(report.ases_degraded)});
  t.add_row({"ASes dark", Table::fmt_count(report.ases_dark)});
  t.add_row({"Probes sent", Table::fmt_count(report.scan.probes_sent)});
  t.add_row({"Probes retried", Table::fmt_count(report.scan.probes_retried)});
  t.add_row({"Responses received",
             Table::fmt_count(report.scan.responses_received)});
  t.add_row({"Responses duplicate",
             Table::fmt_count(report.scan.responses_duplicate)});
  t.add_row({"Responses late", Table::fmt_count(report.scan.responses_late)});
  t.add_row({"Responses corrupt",
             Table::fmt_count(report.scan.responses_corrupt)});
  t.add_row({"ICMP errors", Table::fmt_count(report.scan.icmp_errors)});
  t.add_row({"Trace records dropped", Table::fmt_count(report.trace_dropped)});
  t.add_row({"Packets lost (loss model)",
             Table::fmt_count(report.net.dropped_loss)});
  t.add_row({"Packets lost (outages)",
             Table::fmt_count(report.net.dropped_outage)});
  t.add_row({"Packets jittered", Table::fmt_count(report.net.jittered)});
  t.add_row({"Packets reordered", Table::fmt_count(report.net.reordered)});
  t.add_row({"Packets duplicated", Table::fmt_count(report.net.duplicated)});
  t.add_row({"Packets corrupted", Table::fmt_count(report.net.corrupted)});
  t.add_row({"ICMP unreachable suppressed",
             Table::fmt_count(report.net.icmp_unreachable_suppressed)});
  return t;
}

}  // namespace odns::core::report
