#pragma once
// Builders that render census/campaign/dnsroute results as the rows
// and series the paper's tables and figures report. Benches print
// these; tests assert on their underlying numbers.

#include <map>
#include <string>
#include <vector>

#include "classify/analysis.hpp"
#include "core/census.hpp"
#include "dnsroute/dnsroute.hpp"
#include "util/table.hpp"

namespace odns::core::report {

/// Emerging-market flag as starred in Fig. 4 (embedded profile data).
[[nodiscard]] bool is_emerging(const std::string& country_code);

/// Table 1: composition of the ODNS by component type.
[[nodiscard]] util::Table table1_composition(const classify::Census& census);

/// Table 4: top-N countries by absolute "other" share with their top
/// response ASN and indirect-consolidation percentage.
[[nodiscard]] util::Table table4_other_share(const classify::Census& census,
                                             std::size_t top_n = 10);

/// Table 5: country ranking, this work vs. a response-based campaign.
[[nodiscard]] util::Table table5_rank_comparison(
    const classify::Census& ours,
    const std::map<std::string, std::uint64_t>& campaign_counts,
    std::size_t top_n = 20);

/// Fig. 3: cumulative share of transparent forwarders by country rank.
[[nodiscard]] util::Table fig3_country_cdf(const classify::Census& census,
                                           std::size_t max_rows = 30);

/// Fig. 4: top-N countries — component shares and TF counts.
[[nodiscard]] util::Table fig4_top_countries(const classify::Census& census,
                                             std::size_t top_n = 50);

/// Fig. 5: resolver-project popularity per top-N country.
[[nodiscard]] util::Table fig5_project_shares(const classify::Census& census,
                                              std::size_t top_n = 50);

/// Fig. 6: forwarder→resolver path-length distribution per project.
[[nodiscard]] util::Table fig6_path_lengths(
    const std::vector<dnsroute::PathLengthSample>& samples);

/// Fig. 8: transparent forwarders per covering /24 — density CDF.
[[nodiscard]] util::Table fig8_prefix_density(const classify::Census& census);

/// §6 devices: vendor attribution of fingerprint-visible TFs.
[[nodiscard]] util::Table devices_table(const classify::DeviceReport& report);

/// Appendix E: AS classification of the top-N TF-hosting ASes.
[[nodiscard]] util::Table as_classification_table(
    const classify::AsClassificationReport& report);

/// Graceful-degradation accounting: census coverage, per-AS gaps, and
/// the scanner/packet-plane fault counters explaining them (trace
/// drops, retries, duplicate/late/corrupt responses, loss, outages,
/// jitter/reorder/dup/corrupt injections, suppressed ICMP).
[[nodiscard]] util::Table degradation_table(const DegradationReport& report);

}  // namespace odns::core::report
