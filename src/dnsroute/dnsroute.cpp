#include "dnsroute/dnsroute.hpp"

#include <algorithm>
#include <unordered_set>

namespace odns::dnsroute {

bool TracePath::complete() const {
  if (target_distance < 0 || !got_answer || answer_ttl <= target_distance) {
    return false;
  }
  for (int t = 1; t < answer_ttl; ++t) {
    if (!hops[static_cast<std::size_t>(t - 1)].responded) return false;
  }
  return true;
}

std::vector<util::Ipv4> TracePath::hop_addrs() const {
  std::vector<util::Ipv4> out;
  const int limit = answer_ttl > 0 ? answer_ttl - 1
                                   : static_cast<int>(hops.size());
  for (int t = 1; t <= limit; ++t) {
    const auto& hop = hops[static_cast<std::size_t>(t - 1)];
    if (hop.responded) out.push_back(hop.addr);
  }
  return out;
}

DnsroutePlusPlus::DnsroutePlusPlus(netsim::Simulator& sim,
                                   netsim::HostId host, DnsrouteConfig cfg)
    : sim_(&sim), host_(host), cfg_(std::move(cfg)) {
  sim_->bind_udp_wildcard(host_, this);
  sim_->set_icmp_handler(host_,
                         [this](const netsim::Packet& pkt) { on_icmp(pkt); });
}

void DnsroutePlusPlus::send_probe(std::size_t target_idx, int ttl) {
  const std::uint16_t port = next_port_;
  if (next_port_ >= 65535) {
    next_port_ = 1024;
    ++next_txid_;
    if (next_txid_ == 0) next_txid_ = 1;
  } else {
    ++next_port_;
  }
  const std::uint16_t txid = next_txid_;
  probe_of_[key(port, txid)] = {static_cast<std::uint32_t>(target_idx), ttl};
  probe_by_port_[port] = {static_cast<std::uint32_t>(target_idx), ttl};

  netsim::SendOptions opts;
  opts.dst = paths_[target_idx].target;
  opts.src_port = port;
  opts.dst_port = 53;
  opts.ttl = ttl;
  opts.payload = dnswire::encode(
      dnswire::make_query(txid, cfg_.qname, dnswire::RrType::a));
  last_send_at_ = sim_->now();
  sim_->send_udp(host_, std::move(opts));
}

void DnsroutePlusPlus::on_timer(std::uint64_t target_idx, std::uint64_t ttl) {
  send_probe(static_cast<std::size_t>(target_idx), static_cast<int>(ttl));
}

std::vector<TracePath> DnsroutePlusPlus::run(
    const std::vector<util::Ipv4>& targets) {
  paths_.clear();
  paths_.resize(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    paths_[i].target = targets[i];
    paths_[i].hops.assign(static_cast<std::size_t>(cfg_.max_ttl), Hop{});
  }
  const auto gap = util::Duration::nanos(static_cast<std::int64_t>(
      1e9 / static_cast<double>(cfg_.probes_per_second)));
  util::Duration at = util::Duration::nanos(0);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    for (int ttl = 1; ttl <= cfg_.max_ttl; ++ttl) {
      // Shard-affine pacing: scheduled from outside the event loop, so
      // the timer must land on the shard owning the vantage host.
      sim_->schedule_timer_on(host_, at, this, i,
                              static_cast<std::uint64_t>(ttl));
      at = at + gap;
    }
  }
  sim_->run();
  sim_->run_until(last_send_at_ + cfg_.settle);
  sim_->run();
  return std::move(paths_);
}

void DnsroutePlusPlus::on_icmp(const netsim::Packet& pkt) {
  if (pkt.icmp_type != netsim::IcmpType::ttl_exceeded) return;
  auto it = probe_by_port_.find(pkt.icmp_quote.orig_src_port);
  if (it == probe_by_port_.end()) return;
  const auto [target_idx, ttl] = it->second;
  auto& path = paths_[target_idx];
  auto& hop = path.hops[static_cast<std::size_t>(ttl - 1)];
  if (!hop.responded) {
    hop.responded = true;
    hop.addr = pkt.src;
  }
  if (pkt.src == path.target &&
      (path.target_distance < 0 || ttl < path.target_distance)) {
    path.target_distance = ttl;
  }
}

void DnsroutePlusPlus::on_datagram(const netsim::Datagram& dgram) {
  auto parsed = dnswire::decode(*dgram.payload);
  if (!parsed) return;
  const auto& msg = parsed.value();
  if (!msg.header.qr) return;
  auto it = probe_of_.find(key(dgram.dst_port, msg.header.id));
  if (it == probe_of_.end()) return;
  const auto [target_idx, ttl] = it->second;
  auto& path = paths_[target_idx];
  if (msg.header.rcode != dnswire::Rcode::noerror || msg.answers.empty()) {
    return;
  }
  if (!path.got_answer || ttl < path.answer_ttl) {
    path.got_answer = true;
    path.answer_ttl = ttl;
    path.resolver = dgram.src;
  }
}

std::vector<PathLengthSample> path_length_samples(
    const std::vector<TracePath>& paths,
    const registry::RegistrySnapshot& registry) {
  std::vector<PathLengthSample> out;
  for (const auto& path : paths) {
    if (!path.complete()) continue;
    const auto project_addr = path.resolver;
    std::optional<topo::ResolverProject> project;
    // Attribute by the answering service address's origin AS.
    if (auto asn = registry.routeviews.origin_of(project_addr)) {
      project = registry.project_of_asn(*asn);
    }
    if (!project) continue;  // national/ISP resolvers: out of Fig. 6 scope
    PathLengthSample sample;
    sample.project = *project;
    sample.hops = path.forwarder_to_resolver_hops();
    if (auto fwd_asn = registry.routeviews.origin_of(path.target)) {
      sample.forwarder_asn = *fwd_asn;
    }
    out.push_back(sample);
  }
  return out;
}

AsRelationshipReport infer_relationships(
    const std::vector<TracePath>& paths,
    const registry::RegistrySnapshot& registry) {
  AsRelationshipReport report;
  std::unordered_set<std::uint64_t> inferred;
  for (const auto& path : paths) {
    if (!path.complete()) continue;
    ++report.paths_considered;
    const auto fwd_asn = registry.routeviews.origin_of(path.target);
    if (!fwd_asn) continue;

    // AS immediately before the forwarder (last hop < target_distance)
    // and immediately after (first hop > target_distance) on the path.
    std::optional<netsim::Asn> as_in;
    std::optional<netsim::Asn> as_out;
    for (int t = path.target_distance - 1; t >= 1; --t) {
      const auto& hop = path.hops[static_cast<std::size_t>(t - 1)];
      if (!hop.responded) break;
      const auto asn = registry.routeviews.origin_of(hop.addr);
      if (asn && *asn != *fwd_asn) {
        as_in = asn;
        break;
      }
    }
    for (int t = path.target_distance + 1; t < path.answer_ttl; ++t) {
      const auto& hop = path.hops[static_cast<std::size_t>(t - 1)];
      if (!hop.responded) break;
      const auto asn = registry.routeviews.origin_of(hop.addr);
      if (asn && *asn != *fwd_asn) {
        as_out = asn;
        break;
      }
    }
    if (!as_in || !as_out) continue;
    ++report.paths_with_as_mapping;
    if (*as_in != *as_out) continue;
    ++report.as_in_equals_as_out;
    const std::uint64_t edge = (std::uint64_t{*as_in} << 32) | *fwd_asn;
    if (inferred.insert(edge).second) {
      ++report.inferred_provider_customer;
      if (!registry.caida.knows(*as_in, *fwd_asn)) {
        ++report.unknown_to_caida;
      }
    }
  }
  return report;
}

}  // namespace odns::dnsroute
