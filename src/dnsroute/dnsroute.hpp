#pragma once
// DNSRoute++ (§5): a traceroute that sends DNS queries and — unlike
// classic traceroute — keeps incrementing the TTL after the target is
// reached. A transparent forwarder's IP stack answers TTL-exceeded when
// the TTL dies on the device, but relays the query onward otherwise, so
// probes with larger TTLs expire *behind* the forwarder and reveal the
// path segment between forwarder and recursive resolver.
//
// Relies on the hop-accurate TTL/ICMP semantics of netsim (sim.hpp);
// docs/architecture.md diagrams the relay behavior being exploited.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dnswire/codec.hpp"
#include "netsim/sim.hpp"
#include "registry/registry.hpp"

namespace odns::dnsroute {

struct DnsrouteConfig {
  dnswire::Name qname;
  int max_ttl = 30;
  std::uint64_t probes_per_second = 50000;
  util::Duration settle = util::Duration::seconds(10);
};

struct Hop {
  bool responded = false;
  util::Ipv4 addr;  // ICMP Time-Exceeded source for this TTL
};

struct TracePath {
  util::Ipv4 target;
  std::vector<Hop> hops;  // index 0 = TTL 1
  /// TTL at which the target itself answered TTL-exceeded (-1: never).
  int target_distance = -1;
  bool got_answer = false;
  util::Ipv4 resolver;  // DNS answer source (the forwarder's resolver)
  int answer_ttl = -1;  // smallest TTL that produced a DNS answer

  /// IP hops from the transparent forwarder to its resolver, counting
  /// the resolver itself (Fig. 6 metric).
  [[nodiscard]] int forwarder_to_resolver_hops() const {
    if (target_distance < 0 || answer_ttl < 0) return -1;
    return answer_ttl - target_distance;
  }

  /// Sanitization (§5): the path is usable when the target was seen,
  /// an answer arrived, and no hop before the answer is missing
  /// (loss/churn produce gaps, which would corrupt hop counts).
  [[nodiscard]] bool complete() const;

  /// Ordered ICMP hop addresses up to (excluding) the answer TTL.
  [[nodiscard]] std::vector<util::Ipv4> hop_addrs() const;
};

class DnsroutePlusPlus : public netsim::App, public netsim::TimerTarget {
 public:
  DnsroutePlusPlus(netsim::Simulator& sim, netsim::HostId host,
                   DnsrouteConfig cfg);

  /// Probes every target at TTL 1..max_ttl and runs the simulator
  /// until all probes are answered or settled.
  std::vector<TracePath> run(const std::vector<util::Ipv4>& targets);

  void on_datagram(const netsim::Datagram& dgram) override;
  /// Probe-pacing timer: (target index, TTL) of the probe to emit.
  void on_timer(std::uint64_t target_idx, std::uint64_t ttl) override;

 private:
  void on_icmp(const netsim::Packet& pkt);
  void send_probe(std::size_t target_idx, int ttl);
  static std::uint32_t key(std::uint16_t port, std::uint16_t txid) {
    return (std::uint32_t{port} << 16) | txid;
  }

  netsim::Simulator* sim_;
  netsim::HostId host_;
  DnsrouteConfig cfg_;
  std::vector<TracePath> paths_;
  /// (port, txid) → (target index, ttl): matches DNS answers.
  std::unordered_map<std::uint32_t, std::pair<std::uint32_t, int>> probe_of_;
  /// port → (target index, ttl): matches ICMP errors, which quote only
  /// the offending UDP header (ports), not the DNS payload.
  std::unordered_map<std::uint16_t, std::pair<std::uint32_t, int>>
      probe_by_port_;
  std::uint16_t next_port_ = 1024;
  std::uint16_t next_txid_ = 1;
  util::SimTime last_send_at_;
};

// --- Path analyses -----------------------------------------------------

struct PathLengthSample {
  topo::ResolverProject project;
  netsim::Asn forwarder_asn = 0;
  int hops = 0;
};

/// Fig. 6 input: per-project forwarder→resolver hop counts for all
/// complete paths whose resolver belongs to a big project.
[[nodiscard]] std::vector<PathLengthSample> path_length_samples(
    const std::vector<TracePath>& paths,
    const registry::RegistrySnapshot& registry);

struct AsRelationshipReport {
  std::uint64_t paths_considered = 0;
  std::uint64_t paths_with_as_mapping = 0;
  std::uint64_t as_in_equals_as_out = 0;   // §5: 62% of usable paths
  std::uint64_t inferred_provider_customer = 0;
  std::uint64_t unknown_to_caida = 0;      // §5: 41 new relationships
};

/// Infers provider→customer edges: when the AS before and after the
/// forwarder coincide, that AS must be the forwarder AS's provider
/// (the scanner is outside its customer cone).
[[nodiscard]] AsRelationshipReport infer_relationships(
    const std::vector<TracePath>& paths,
    const registry::RegistrySnapshot& registry);

}  // namespace odns::dnsroute
