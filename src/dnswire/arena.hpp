#pragma once
// Bump allocator backing the zero-allocation wire codec
// (arena_codec.hpp). A WireArena owns a chain of chunks; reset()
// rewinds the cursor but keeps every chunk, so a warmed arena serves
// an unbounded message stream without touching the heap again. See
// docs/architecture.md, "Zero-allocation wire path" for the lifetime
// rules.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace odns::dnswire {

class WireArena {
 public:
  WireArena() = default;
  WireArena(const WireArena&) = delete;
  WireArena& operator=(const WireArena&) = delete;

  /// Rewinds the cursor to the start of the first chunk. Every pointer
  /// previously handed out becomes dangling; chunk memory is retained.
  void reset() {
    chunk_ = 0;
    offset_ = 0;
  }

  /// Raw aligned allocation. Never fails for sane sizes (grows a new
  /// chunk when the current one is exhausted).
  void* alloc_bytes(std::size_t size, std::size_t align) {
    if (chunk_ < chunks_.size()) {
      const std::size_t aligned = align_up(offset_, align);
      if (aligned + size <= chunks_[chunk_].size) {
        offset_ = aligned + size;
        return chunks_[chunk_].data.get() + aligned;
      }
    }
    return alloc_slow(size, align);
  }

  /// Typed array allocation; elements are default-constructed. Only
  /// trivially destructible types may live in the arena (reset() never
  /// runs destructors).
  template <typename T>
  std::span<T> alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    if (n == 0) return {};
    T* mem = static_cast<T*>(alloc_bytes(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) new (mem + i) T();
    return {mem, n};
  }

  template <typename T>
  T* alloc() {
    static_assert(std::is_trivially_destructible_v<T>);
    return new (alloc_bytes(sizeof(T), alignof(T))) T();
  }

  /// Chunks currently owned — stable across reset(); growth after
  /// warm-up is what the allocation audit (tests/alloc_audit_test.cpp)
  /// rules out.
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  // Chunks grow geometrically from kMinChunkSize up to kMaxChunkSize.
  // Most arenas belong to simulated edge nodes that only ever see
  // ~100-byte DNS messages; a fixed 64 KiB first chunk retained per
  // node dominated peak RSS at million-host scale (hundreds of
  // thousands of probed resolvers x 2-3 arenas each). Busy nodes reach
  // the 64 KiB steady-state chunk within a few messages, so warmed
  // throughput is unchanged.
  static constexpr std::size_t kMinChunkSize = 512;
  static constexpr std::size_t kMaxChunkSize = 64 * 1024;

  static std::size_t align_up(std::size_t v, std::size_t align) {
    return (v + align - 1) & ~(align - 1);
  }

  void* alloc_slow(std::size_t size, std::size_t align) {
    // Advance through retained chunks before growing a new one.
    while (chunk_ + 1 < chunks_.size()) {
      ++chunk_;
      offset_ = 0;
      const std::size_t aligned = align_up(offset_, align);
      if (aligned + size <= chunks_[chunk_].size) {
        offset_ = aligned + size;
        return chunks_[chunk_].data.get() + aligned;
      }
    }
    std::size_t grow = chunks_.empty() ? kMinChunkSize
                                       : chunks_.back().size * 2;
    if (grow > kMaxChunkSize) grow = kMaxChunkSize;
    const std::size_t want = size + align > grow ? size + align : grow;
    Chunk c;
    c.data = std::make_unique<std::byte[]>(want);
    c.size = want;
    chunks_.push_back(std::move(c));
    chunk_ = chunks_.size() - 1;
    const std::size_t aligned = align_up(0, align);
    offset_ = aligned + size;
    return chunks_[chunk_].data.get() + aligned;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;
  std::size_t offset_ = 0;
};

}  // namespace odns::dnswire
