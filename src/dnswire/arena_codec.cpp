#include "dnswire/arena_codec.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>

#include "util/strings.hpp"

namespace odns::dnswire {

namespace {

constexpr std::size_t kMaxNameWire = 255;
constexpr std::uint8_t kPointerTag = 0xC0;
// Smallest wire footprints: a question is a 1-byte root name + 4 fixed
// octets; a resource record is that name + 10 fixed octets. Section
// arrays are capacity-bounded by remaining/minimum + 1, which parsing
// can never exceed (each success consumes at least the minimum).
constexpr std::size_t kMinQuestionWire = 5;
constexpr std::size_t kMinRrWire = 11;

constexpr char fold(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

// ---------------------------------------------------------------------
// Decoding
//
// A line-for-line transcription of codec.cpp's Decoder: same checks in
// the same order, so both decoders return the same DecodeError for
// every input (tests/dnswire_fuzz_test.cpp asserts verdict parity over
// the full corpus).
// ---------------------------------------------------------------------

class ArenaDecoder {
 public:
  ArenaDecoder(WireArena& arena, std::span<const std::uint8_t> wire)
      : arena_(&arena), wire_(wire) {}

  [[nodiscard]] bool need(std::size_t n) const {
    return pos_ + n <= wire_.size();
  }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return wire_.size() - pos_; }

  bool u8(std::uint8_t& v) {
    if (!need(1)) return false;
    v = wire_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    if (!need(2)) return false;
    v = static_cast<std::uint16_t>(std::uint16_t{wire_[pos_]} << 8 |
                                   wire_[pos_ + 1]);
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (!need(4)) return false;
    v = std::uint32_t{wire_[pos_]} << 24 | std::uint32_t{wire_[pos_ + 1]} << 16 |
        std::uint32_t{wire_[pos_ + 2]} << 8 | std::uint32_t{wire_[pos_ + 3]};
    pos_ += 4;
    return true;
  }
  bool skip(std::size_t n) {
    if (!need(n)) return false;
    pos_ += n;
    return true;
  }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    // Caller has need(n)-checked; zero copy, the view aliases the wire.
    const std::span<const std::uint8_t> out = wire_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Decodes a possibly-compressed name into a label view. Labels are
  /// collected on the stack (a valid name has at most 127) and copied
  /// into the arena only on success.
  util::Result<NameView, DecodeError> name() {
    std::array<std::string_view, 128> scratch;
    std::size_t count = 0;
    std::size_t cursor = pos_;
    std::size_t total = 0;
    bool jumped = false;
    std::size_t after_first_pointer = 0;
    std::size_t guard = 0;
    while (true) {
      if (++guard > 256) return DecodeError::pointer_loop;
      if (cursor >= wire_.size()) return DecodeError::truncated;
      const std::uint8_t len = wire_[cursor];
      if ((len & kPointerTag) == kPointerTag) {
        if (cursor + 1 >= wire_.size()) return DecodeError::truncated;
        const std::size_t target =
            (static_cast<std::size_t>(len & 0x3F) << 8) | wire_[cursor + 1];
        if (target >= cursor) return DecodeError::bad_compression_pointer;
        if (!jumped) {
          after_first_pointer = cursor + 2;
          jumped = true;
        }
        cursor = target;
        continue;
      }
      if ((len & kPointerTag) != 0) return DecodeError::bad_compression_pointer;
      if (len == 0) {
        pos_ = jumped ? after_first_pointer : cursor + 1;
        NameView view;
        const auto labels = arena_->alloc_array<std::string_view>(count);
        std::copy_n(scratch.data(), count, labels.data());
        view.labels = labels;
        return view;
      }
      if (len > 63) return DecodeError::label_overflow;
      if (cursor + 1 + len > wire_.size()) return DecodeError::truncated;
      total += len + 1;
      if (total + 1 > kMaxNameWire) return DecodeError::name_overflow;
      scratch[count++] = std::string_view(
          reinterpret_cast<const char*>(wire_.data() + cursor + 1), len);
      cursor += 1 + len;
    }
  }

  WireArena& arena() { return *arena_; }
  [[nodiscard]] std::span<const std::uint8_t> wire() const { return wire_; }

 private:
  WireArena* arena_;
  std::span<const std::uint8_t> wire_;
  std::size_t pos_ = 0;
};

std::optional<DecodeError> decode_rr_into(ArenaDecoder& dec, RecordView& rr) {
  auto n = dec.name();
  if (!n) return n.error();
  rr.name = n.value();
  std::uint16_t type = 0;
  std::uint16_t klass = 0;
  std::uint32_t ttl = 0;
  std::uint16_t rdlen = 0;
  if (!dec.u16(type) || !dec.u16(klass) || !dec.u32(ttl) || !dec.u16(rdlen)) {
    return DecodeError::truncated;
  }
  rr.type = static_cast<RrType>(type);
  rr.klass = static_cast<RrClass>(klass);
  rr.ttl = ttl;
  if (!dec.need(rdlen)) return DecodeError::truncated;
  const std::size_t rdata_end = dec.pos() + rdlen;

  switch (rr.type) {
    case RrType::a: {
      if (rdlen != 4) return DecodeError::bad_rdata;
      std::uint32_t addr = 0;
      dec.u32(addr);
      rr.rdata.tag = RdataView::Tag::a;
      rr.rdata.a_addr = util::Ipv4{addr};
      break;
    }
    case RrType::ns:
    case RrType::cname:
    case RrType::ptr: {
      auto host = dec.name();
      if (!host) return host.error();
      if (dec.pos() != rdata_end) return DecodeError::bad_rdata;
      rr.rdata.tag = RdataView::Tag::name;
      rr.rdata.name = host.value();
      break;
    }
    case RrType::txt: {
      // Count complete character-strings first so the arena array is
      // exact; the parsing pass below reproduces the heap decoder's
      // error order on a malformed tail.
      const auto wire = dec.wire();
      std::size_t strings = 0;
      for (std::size_t p = dec.pos(); p < rdata_end;) {
        const std::uint8_t len = wire[p];
        if (p + 1 + len > rdata_end) break;  // the parse pass rejects it
        ++strings;
        p += 1 + len;
      }
      const auto out = dec.arena().alloc_array<std::string_view>(strings);
      std::size_t i = 0;
      while (dec.pos() < rdata_end) {
        std::uint8_t len = 0;
        if (!dec.u8(len)) return DecodeError::truncated;
        if (dec.pos() + len > rdata_end) return DecodeError::bad_rdata;
        const auto raw = dec.bytes(len);
        out[i++] = std::string_view(reinterpret_cast<const char*>(raw.data()),
                                    raw.size());
      }
      rr.rdata.tag = RdataView::Tag::txt;
      rr.rdata.txt = out;
      break;
    }
    case RrType::soa: {
      SoaView* soa = dec.arena().alloc<SoaView>();
      auto mname = dec.name();
      if (!mname) return mname.error();
      soa->mname = mname.value();
      auto rname = dec.name();
      if (!rname) return rname.error();
      soa->rname = rname.value();
      if (!dec.u32(soa->serial) || !dec.u32(soa->refresh) ||
          !dec.u32(soa->retry) || !dec.u32(soa->expire) ||
          !dec.u32(soa->minimum)) {
        return DecodeError::truncated;
      }
      if (dec.pos() != rdata_end) return DecodeError::bad_rdata;
      rr.rdata.tag = RdataView::Tag::soa;
      rr.rdata.soa = soa;
      break;
    }
    case RrType::opt: {
      rr.rdata.tag = RdataView::Tag::opt;
      rr.rdata.udp_payload_size = klass;
      rr.klass = RrClass::in;
      if (!dec.skip(rdlen)) return DecodeError::truncated;
      break;
    }
    default: {
      if (!dec.need(rdlen)) return DecodeError::truncated;
      rr.rdata.tag = RdataView::Tag::raw;
      rr.rdata.raw = dec.bytes(rdlen);
      break;
    }
  }
  if (dec.pos() != rdata_end) return DecodeError::bad_rdata;
  return std::nullopt;
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// One recorded compression suffix: labels[start..] of some
/// already-emitted name, at wire offset `offset`. The heap encoder
/// keys its table by the case-folded dotted string of the suffix;
/// entries are kept in insertion order and matched first-wins, which
/// reproduces unordered_map::emplace (first insert wins) exactly.
struct SuffixEntry {
  const std::string_view* labels = nullptr;
  std::uint32_t start = 0;
  std::uint32_t count = 0;
  std::uint16_t offset = 0;
};

/// Streams the case-folded dotted key ("www.example.com." one char at
/// a time) of a label suffix. Comparing key streams — not labels —
/// matches the heap encoder's string keys even when a label contains a
/// literal '.' (["a.b"] and ["a","b"] share the key "a.b.").
class KeyStream {
 public:
  KeyStream(const std::string_view* labels, std::size_t start,
            std::size_t count)
      : labels_(labels), li_(start), count_(count) {}

  int next() {
    while (li_ < count_) {
      const std::string_view l = labels_[li_];
      if (ci_ < l.size()) return static_cast<unsigned char>(fold(l[ci_++]));
      ++li_;
      ci_ = 0;
      return '.';
    }
    return -1;
  }

 private:
  const std::string_view* labels_;
  std::size_t li_;
  std::size_t count_;
  std::size_t ci_ = 0;
};

bool suffix_key_equal(const SuffixEntry& e, const std::string_view* labels,
                      std::size_t start, std::size_t count) {
  KeyStream a(e.labels, e.start, e.count);
  KeyStream b(labels, start, count);
  while (true) {
    const int ca = a.next();
    const int cb = b.next();
    if (ca != cb) return false;
    if (ca < 0) return true;
  }
}

class ArenaEncoder {
 public:
  ArenaEncoder(std::uint8_t* out, SuffixEntry* suffixes)
      : out_(out), suffixes_(suffixes) {}

  [[nodiscard]] std::size_t size() const { return size_; }

  void u8(std::uint8_t v) { out_[size_++] = v; }
  void u16(std::uint16_t v) {
    out_[size_++] = static_cast<std::uint8_t>(v >> 8);
    out_[size_++] = static_cast<std::uint8_t>(v);
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void bytes(const void* data, std::size_t n) {
    std::memcpy(out_ + size_, data, n);
    size_ += n;
  }
  void patch_u16(std::size_t pos, std::uint16_t v) {
    out_[pos] = static_cast<std::uint8_t>(v >> 8);
    out_[pos + 1] = static_cast<std::uint8_t>(v);
  }

  void name(const NameView& n) {
    const std::string_view* labels = n.labels.data();
    const std::size_t count = n.labels.size();
    for (std::size_t i = 0; i < count; ++i) {
      const SuffixEntry* found = nullptr;
      for (std::size_t e = 0; e < suffix_count_; ++e) {
        if (suffix_key_equal(suffixes_[e], labels, i, count)) {
          found = &suffixes_[e];
          break;
        }
      }
      if (found != nullptr) {
        u16(static_cast<std::uint16_t>(0xC000u | found->offset));
        return;
      }
      if (size_ <= 0x3FFF) {
        suffixes_[suffix_count_++] =
            SuffixEntry{labels, static_cast<std::uint32_t>(i),
                        static_cast<std::uint32_t>(count),
                        static_cast<std::uint16_t>(size_)};
      }
      u8(static_cast<std::uint8_t>(labels[i].size()));
      bytes(labels[i].data(), labels[i].size());
    }
    u8(0);
  }

 private:
  std::uint8_t* out_;
  std::size_t size_ = 0;
  SuffixEntry* suffixes_;
  std::size_t suffix_count_ = 0;
};

void encode_rr_into(ArenaEncoder& enc, const RecordView& rr) {
  enc.name(rr.name);
  enc.u16(static_cast<std::uint16_t>(rr.type));
  if (rr.type == RrType::opt) {
    // OPT abuses the class field for the advertised UDP payload size.
    enc.u16(rr.rdata.udp_payload_size);
    enc.u32(0);  // extended rcode/flags
    enc.u16(0);  // empty rdata
    return;
  }
  enc.u16(static_cast<std::uint16_t>(rr.klass));
  enc.u32(rr.ttl);
  const std::size_t len_pos = enc.size();
  enc.u16(0);  // placeholder rdlength
  const std::size_t rdata_start = enc.size();
  switch (rr.rdata.tag) {
    case RdataView::Tag::a:
      enc.u32(rr.rdata.a_addr.value());
      break;
    case RdataView::Tag::name:
      enc.name(rr.rdata.name);
      break;
    case RdataView::Tag::txt:
      for (const auto& s : rr.rdata.txt) {
        const auto n = std::min<std::size_t>(s.size(), 255);
        enc.u8(static_cast<std::uint8_t>(n));
        enc.bytes(s.data(), n);
      }
      break;
    case RdataView::Tag::soa:
      enc.name(rr.rdata.soa->mname);
      enc.name(rr.rdata.soa->rname);
      enc.u32(rr.rdata.soa->serial);
      enc.u32(rr.rdata.soa->refresh);
      enc.u32(rr.rdata.soa->retry);
      enc.u32(rr.rdata.soa->expire);
      enc.u32(rr.rdata.soa->minimum);
      break;
    case RdataView::Tag::opt:
      // A non-OPT record carrying OPT rdata emits nothing, like the
      // heap encoder's unreachable visit branch.
      break;
    case RdataView::Tag::raw:
      enc.bytes(rr.rdata.raw.data(), rr.rdata.raw.size());
      break;
  }
  enc.patch_u16(len_pos, static_cast<std::uint16_t>(enc.size() - rdata_start));
}

/// Uncompressed upper bound of one record's wire size, and the number
/// of compression-table slots its names can consume.
std::size_t rr_bound(const RecordView& rr, std::size_t& label_slots) {
  label_slots += rr.name.labels.size();
  std::size_t bound = rr.name.wire_length() + 10;
  switch (rr.rdata.tag) {
    case RdataView::Tag::a:
      bound += 4;
      break;
    case RdataView::Tag::name:
      label_slots += rr.rdata.name.labels.size();
      bound += rr.rdata.name.wire_length();
      break;
    case RdataView::Tag::txt:
      for (const auto& s : rr.rdata.txt) {
        bound += 1 + std::min<std::size_t>(s.size(), 255);
      }
      break;
    case RdataView::Tag::soa:
      label_slots += rr.rdata.soa->mname.labels.size();
      label_slots += rr.rdata.soa->rname.labels.size();
      bound += rr.rdata.soa->mname.wire_length() +
               rr.rdata.soa->rname.wire_length() + 20;
      break;
    case RdataView::Tag::opt:
      break;
    case RdataView::Tag::raw:
      bound += rr.rdata.raw.size();
      break;
  }
  return bound;
}

NameView name_view_of(WireArena& arena, const Name& name) {
  const auto& labels = name.labels();
  const auto out = arena.alloc_array<std::string_view>(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) out[i] = labels[i];
  return NameView{out};
}

RecordView record_view_of(WireArena& arena, const ResourceRecord& rr) {
  RecordView view;
  view.name = name_view_of(arena, rr.name);
  view.type = rr.type;
  view.klass = rr.klass;
  view.ttl = rr.ttl;
  std::visit(
      [&](const auto& rd) {
        using T = std::decay_t<decltype(rd)>;
        if constexpr (std::is_same_v<T, ARecord>) {
          view.rdata.tag = RdataView::Tag::a;
          view.rdata.a_addr = rd.addr;
        } else if constexpr (std::is_same_v<T, NsRecord>) {
          view.rdata.tag = RdataView::Tag::name;
          view.rdata.name = name_view_of(arena, rd.host);
        } else if constexpr (std::is_same_v<T, CnameRecord> ||
                             std::is_same_v<T, PtrRecord>) {
          view.rdata.tag = RdataView::Tag::name;
          view.rdata.name = name_view_of(arena, rd.target);
        } else if constexpr (std::is_same_v<T, TxtRecord>) {
          view.rdata.tag = RdataView::Tag::txt;
          const auto out =
              arena.alloc_array<std::string_view>(rd.strings.size());
          for (std::size_t i = 0; i < rd.strings.size(); ++i) {
            out[i] = rd.strings[i];
          }
          view.rdata.txt = out;
        } else if constexpr (std::is_same_v<T, SoaRecord>) {
          SoaView* soa = arena.alloc<SoaView>();
          soa->mname = name_view_of(arena, rd.mname);
          soa->rname = name_view_of(arena, rd.rname);
          soa->serial = rd.serial;
          soa->refresh = rd.refresh;
          soa->retry = rd.retry;
          soa->expire = rd.expire;
          soa->minimum = rd.minimum;
          view.rdata.tag = RdataView::Tag::soa;
          view.rdata.soa = soa;
        } else if constexpr (std::is_same_v<T, OptRecord>) {
          view.rdata.tag = RdataView::Tag::opt;
          view.rdata.udp_payload_size = rd.udp_payload_size;
        } else if constexpr (std::is_same_v<T, RawRecord>) {
          view.rdata.tag = RdataView::Tag::raw;
          view.rdata.raw = rd.data;
        }
      },
      rr.rdata);
  return view;
}

ResourceRecord materialize_rr(const RecordView& rr) {
  ResourceRecord out;
  out.name = rr.name.to_name();
  out.type = rr.type;
  out.klass = rr.klass;
  out.ttl = rr.ttl;
  switch (rr.rdata.tag) {
    case RdataView::Tag::a:
      out.rdata = ARecord{rr.rdata.a_addr};
      break;
    case RdataView::Tag::name:
      if (rr.type == RrType::ns) {
        out.rdata = NsRecord{rr.rdata.name.to_name()};
      } else if (rr.type == RrType::cname) {
        out.rdata = CnameRecord{rr.rdata.name.to_name()};
      } else {
        out.rdata = PtrRecord{rr.rdata.name.to_name()};
      }
      break;
    case RdataView::Tag::txt: {
      TxtRecord txt;
      txt.strings.reserve(rr.rdata.txt.size());
      for (const auto& s : rr.rdata.txt) txt.strings.emplace_back(s);
      out.rdata = std::move(txt);
      break;
    }
    case RdataView::Tag::soa: {
      SoaRecord soa;
      soa.mname = rr.rdata.soa->mname.to_name();
      soa.rname = rr.rdata.soa->rname.to_name();
      soa.serial = rr.rdata.soa->serial;
      soa.refresh = rr.rdata.soa->refresh;
      soa.retry = rr.rdata.soa->retry;
      soa.expire = rr.rdata.soa->expire;
      soa.minimum = rr.rdata.soa->minimum;
      out.rdata = std::move(soa);
      break;
    }
    case RdataView::Tag::opt:
      out.rdata = OptRecord{rr.rdata.udp_payload_size};
      break;
    case RdataView::Tag::raw: {
      RawRecord raw;
      raw.data.assign(rr.rdata.raw.begin(), rr.rdata.raw.end());
      out.rdata = std::move(raw);
      break;
    }
  }
  return out;
}

}  // namespace

bool NameView::equals(const NameView& other) const {
  if (labels.size() != other.labels.size()) return false;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (!util::iequals_ascii(labels[i], other.labels[i])) return false;
  }
  return true;
}

bool NameView::equals(const Name& other) const {
  const auto& theirs = other.labels();
  if (labels.size() != theirs.size()) return false;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (!util::iequals_ascii(labels[i], theirs[i])) return false;
  }
  return true;
}

std::size_t NameView::wire_length() const {
  std::size_t wire = 1;
  for (const auto& l : labels) wire += 1 + l.size();
  return wire;
}

Name NameView::to_name() const {
  std::vector<std::string> out;
  out.reserve(labels.size());
  for (const auto& l : labels) out.emplace_back(l);
  auto name = Name::from_labels(std::move(out));
  // Decoded views satisfy the wire limits by construction.
  return name ? *std::move(name) : Name{};
}

util::Result<MessageView, DecodeError> decode_into(
    WireArena& arena, std::span<const std::uint8_t> wire) {
  ArenaDecoder dec(arena, wire);
  MessageView msg;
  std::uint16_t flags = 0;
  std::uint16_t qd = 0;
  std::uint16_t an = 0;
  std::uint16_t ns = 0;
  std::uint16_t ar = 0;
  if (!dec.u16(msg.header.id) || !dec.u16(flags) || !dec.u16(qd) ||
      !dec.u16(an) || !dec.u16(ns) || !dec.u16(ar)) {
    return DecodeError::truncated;
  }
  msg.header.qr = (flags & 0x8000) != 0;
  msg.header.opcode = static_cast<Opcode>((flags >> 11) & 0xF);
  msg.header.aa = (flags & 0x0400) != 0;
  msg.header.tc = (flags & 0x0200) != 0;
  msg.header.rd = (flags & 0x0100) != 0;
  msg.header.ra = (flags & 0x0080) != 0;
  msg.header.rcode = static_cast<Rcode>(flags & 0xF);

  {
    const std::size_t cap = std::min<std::size_t>(
        qd, dec.remaining() / kMinQuestionWire + 1);
    const auto questions = arena.alloc_array<QuestionView>(cap);
    for (int i = 0; i < qd; ++i) {
      QuestionView q;
      auto n = dec.name();
      if (!n) return n.error();
      q.name = n.value();
      std::uint16_t type = 0;
      std::uint16_t klass = 0;
      if (!dec.u16(type) || !dec.u16(klass)) return DecodeError::bad_question;
      q.type = static_cast<RrType>(type);
      q.klass = static_cast<RrClass>(klass);
      assert(static_cast<std::size_t>(i) < cap);
      questions[static_cast<std::size_t>(i)] = q;
    }
    msg.questions = questions.first(qd);
  }

  auto read_section = [&](std::uint16_t count,
                          std::span<const RecordView>& out)
      -> std::optional<DecodeError> {
    const std::size_t cap =
        std::min<std::size_t>(count, dec.remaining() / kMinRrWire + 1);
    const auto records = arena.alloc_array<RecordView>(cap);
    for (int i = 0; i < count; ++i) {
      RecordView rr;
      if (auto e = decode_rr_into(dec, rr)) return e;
      assert(static_cast<std::size_t>(i) < cap);
      records[static_cast<std::size_t>(i)] = rr;
    }
    out = records.first(count);
    return std::nullopt;
  };
  if (auto e = read_section(an, msg.answers)) return *e;
  if (auto e = read_section(ns, msg.authorities)) return *e;
  if (auto e = read_section(ar, msg.additionals)) return *e;
  return msg;
}

std::span<const std::uint8_t> encode_into(WireArena& arena,
                                          const MessageView& msg) {
  // Pre-pass: uncompressed output upper bound + compression-table
  // slots. Compression only ever shrinks the output, so a single
  // arena reservation covers the encode.
  std::size_t bound = 12;
  std::size_t label_slots = 0;
  for (const auto& q : msg.questions) {
    label_slots += q.name.labels.size();
    bound += q.name.wire_length() + 4;
  }
  for (const auto& rr : msg.answers) bound += rr_bound(rr, label_slots);
  for (const auto& rr : msg.authorities) bound += rr_bound(rr, label_slots);
  for (const auto& rr : msg.additionals) bound += rr_bound(rr, label_slots);

  const auto out = arena.alloc_array<std::uint8_t>(bound);
  const auto suffixes = arena.alloc_array<SuffixEntry>(label_slots);
  ArenaEncoder enc(out.data(), suffixes.data());

  enc.u16(msg.header.id);
  std::uint16_t flags = 0;
  if (msg.header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(msg.header.opcode) & 0xF) << 11);
  if (msg.header.aa) flags |= 0x0400;
  if (msg.header.tc) flags |= 0x0200;
  if (msg.header.rd) flags |= 0x0100;
  if (msg.header.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(msg.header.rcode) & 0xF;
  enc.u16(flags);
  enc.u16(static_cast<std::uint16_t>(msg.questions.size()));
  enc.u16(static_cast<std::uint16_t>(msg.answers.size()));
  enc.u16(static_cast<std::uint16_t>(msg.authorities.size()));
  enc.u16(static_cast<std::uint16_t>(msg.additionals.size()));
  for (const auto& q : msg.questions) {
    enc.name(q.name);
    enc.u16(static_cast<std::uint16_t>(q.type));
    enc.u16(static_cast<std::uint16_t>(q.klass));
  }
  for (const auto& rr : msg.answers) encode_rr_into(enc, rr);
  for (const auto& rr : msg.authorities) encode_rr_into(enc, rr);
  for (const auto& rr : msg.additionals) encode_rr_into(enc, rr);
  assert(enc.size() <= bound);
  return out.first(enc.size());
}

Message materialize(const MessageView& msg) {
  Message out;
  out.header = msg.header;
  out.questions.reserve(msg.questions.size());
  for (const auto& q : msg.questions) {
    Question question;
    question.name = q.name.to_name();
    question.type = q.type;
    question.klass = q.klass;
    out.questions.push_back(std::move(question));
  }
  out.answers.reserve(msg.answers.size());
  for (const auto& rr : msg.answers) out.answers.push_back(materialize_rr(rr));
  out.authorities.reserve(msg.authorities.size());
  for (const auto& rr : msg.authorities) {
    out.authorities.push_back(materialize_rr(rr));
  }
  out.additionals.reserve(msg.additionals.size());
  for (const auto& rr : msg.additionals) {
    out.additionals.push_back(materialize_rr(rr));
  }
  return out;
}

MessageView view_of(WireArena& arena, const Message& msg) {
  MessageView view;
  view.header = msg.header;
  const auto questions = arena.alloc_array<QuestionView>(msg.questions.size());
  for (std::size_t i = 0; i < msg.questions.size(); ++i) {
    questions[i].name = name_view_of(arena, msg.questions[i].name);
    questions[i].type = msg.questions[i].type;
    questions[i].klass = msg.questions[i].klass;
  }
  view.questions = questions;
  auto section = [&](const std::vector<ResourceRecord>& rrs) {
    const auto out = arena.alloc_array<RecordView>(rrs.size());
    for (std::size_t i = 0; i < rrs.size(); ++i) {
      out[i] = record_view_of(arena, rrs[i]);
    }
    return std::span<const RecordView>(out);
  };
  view.answers = section(msg.answers);
  view.authorities = section(msg.authorities);
  view.additionals = section(msg.additionals);
  return view;
}

}  // namespace odns::dnswire
