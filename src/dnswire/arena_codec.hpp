#pragma once
// Arena wire codec: the zero-allocation sibling of codec.hpp.
//
// decode_into() parses a datagram into a MessageView — labels are
// string_views into the wire buffer, record sections are arena-backed
// spans, no per-RR vectors — and encode_into() serializes a
// MessageView with the exact compression the heap encoder applies, so
// the two codecs are byte-identical (tests/dnswire_differential_test
// proves it over randomized corpora, tests/dnswire_fuzz_test proves
// verdict parity on garbage). The heap codec stays as the differential
// baseline; this one is what the serving hot path runs
// (nodes::DnsNode).
//
// Lifetime rules: every pointer inside a MessageView aims either at
// the wire buffer passed to decode_into() or at the WireArena, so a
// view is valid only while BOTH outlive it and the arena has not been
// reset(). Nodes reset their receive arena at datagram entry — views
// must never be stored across messages.

#include <cstdint>
#include <span>
#include <string_view>

#include "dnswire/codec.hpp"
#include "dnswire/message.hpp"
#include "util/ipv4.hpp"
#include "util/result.hpp"

#include "dnswire/arena.hpp"

namespace odns::dnswire {

/// A domain name as a span of labels. Decoded labels point into the
/// wire buffer (zero copy); view_of() labels point into Name storage.
struct NameView {
  std::span<const std::string_view> labels;

  [[nodiscard]] bool equals(const NameView& other) const;
  [[nodiscard]] bool equals(const Name& other) const;
  /// Uncompressed wire length (length bytes + labels + terminator).
  [[nodiscard]] std::size_t wire_length() const;
  /// Materializes an owning Name (allocates; cold paths only).
  [[nodiscard]] Name to_name() const;
};

struct SoaView {
  NameView mname;
  NameView rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;
};

/// Tagged union mirroring the heap model's Rdata variant, flattened so
/// records stay trivially destructible (arena requirement).
struct RdataView {
  enum class Tag : std::uint8_t { a, name, txt, soa, opt, raw };

  Tag tag = Tag::a;
  util::Ipv4 a_addr;                         // tag == a
  NameView name;                             // tag == name (NS/CNAME/PTR)
  std::span<const std::string_view> txt;     // tag == txt
  const SoaView* soa = nullptr;              // tag == soa
  std::uint16_t udp_payload_size = 0;        // tag == opt
  std::span<const std::uint8_t> raw;         // tag == raw
};

struct QuestionView {
  NameView name;
  RrType type = RrType::a;
  RrClass klass = RrClass::in;
};

struct RecordView {
  NameView name;
  RrType type = RrType::a;
  RrClass klass = RrClass::in;
  std::uint32_t ttl = 0;
  RdataView rdata;
};

struct MessageView {
  Header header;
  std::span<const QuestionView> questions;
  std::span<const RecordView> answers;
  std::span<const RecordView> authorities;
  std::span<const RecordView> additionals;
};

/// Parses `wire` into a view backed by `arena` + the wire buffer.
/// Accepts exactly the inputs decode() accepts and returns the same
/// DecodeError on everything it rejects.
util::Result<MessageView, DecodeError> decode_into(
    WireArena& arena, std::span<const std::uint8_t> wire);

/// Serializes `msg` into `arena`, byte-identical to encode() on the
/// materialized message. The returned span lives until arena reset.
std::span<const std::uint8_t> encode_into(WireArena& arena,
                                          const MessageView& msg);

/// Owning copy of a view (allocates; the differential harness and the
/// heap-model fallback path use it).
Message materialize(const MessageView& msg);

/// A view over an existing heap Message: labels/spans reference the
/// Message's own storage plus `arena` for the section arrays. Valid
/// while both the Message and the arena epoch live.
MessageView view_of(WireArena& arena, const Message& msg);

}  // namespace odns::dnswire
