#include "dnswire/codec.hpp"

#include <cstring>
#include <unordered_map>

#include "util/strings.hpp"

namespace odns::dnswire {

namespace {

constexpr std::size_t kMaxNameWire = 255;
constexpr std::uint8_t kPointerTag = 0xC0;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

class Encoder {
 public:
  std::vector<std::uint8_t> take() { return std::move(out_); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void bytes(std::span<const std::uint8_t> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
  void patch_u16(std::size_t pos, std::uint16_t v) {
    out_[pos] = static_cast<std::uint8_t>(v >> 8);
    out_[pos + 1] = static_cast<std::uint8_t>(v);
  }
  [[nodiscard]] std::size_t size() const { return out_.size(); }

  /// Emits `name`, reusing earlier occurrences via compression
  /// pointers. Suffix table keys are canonical (case-folded) strings.
  void name(const Name& n) {
    const auto& labels = n.labels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      std::string suffix_key;
      for (std::size_t j = i; j < labels.size(); ++j) {
        suffix_key += util::ascii_lower(labels[j]);
        suffix_key += '.';
      }
      auto it = suffixes_.find(suffix_key);
      if (it != suffixes_.end()) {
        u16(static_cast<std::uint16_t>(0xC000u | it->second));
        return;
      }
      if (out_.size() <= 0x3FFF) {
        suffixes_.emplace(std::move(suffix_key),
                          static_cast<std::uint16_t>(out_.size()));
      }
      u8(static_cast<std::uint8_t>(labels[i].size()));
      bytes({reinterpret_cast<const std::uint8_t*>(labels[i].data()),
             labels[i].size()});
    }
    u8(0);
  }

 private:
  std::vector<std::uint8_t> out_;
  std::unordered_map<std::string, std::uint16_t> suffixes_;
};

void encode_rr(Encoder& enc, const ResourceRecord& rr) {
  enc.name(rr.name);
  enc.u16(static_cast<std::uint16_t>(rr.type));
  if (rr.type == RrType::opt) {
    // OPT abuses the class field for the advertised UDP payload size.
    const auto& opt = std::get<OptRecord>(rr.rdata);
    enc.u16(opt.udp_payload_size);
    enc.u32(0);   // extended rcode/flags
    enc.u16(0);   // empty rdata
    return;
  }
  enc.u16(static_cast<std::uint16_t>(rr.klass));
  enc.u32(rr.ttl);
  const std::size_t len_pos = enc.size();
  enc.u16(0);  // placeholder rdlength
  const std::size_t rdata_start = enc.size();
  std::visit(
      [&enc](const auto& rd) {
        using T = std::decay_t<decltype(rd)>;
        if constexpr (std::is_same_v<T, ARecord>) {
          enc.u32(rd.addr.value());
        } else if constexpr (std::is_same_v<T, NsRecord>) {
          enc.name(rd.host);
        } else if constexpr (std::is_same_v<T, CnameRecord> ||
                             std::is_same_v<T, PtrRecord>) {
          enc.name(rd.target);
        } else if constexpr (std::is_same_v<T, TxtRecord>) {
          for (const auto& s : rd.strings) {
            const auto n = std::min<std::size_t>(s.size(), 255);
            enc.u8(static_cast<std::uint8_t>(n));
            enc.bytes({reinterpret_cast<const std::uint8_t*>(s.data()), n});
          }
        } else if constexpr (std::is_same_v<T, SoaRecord>) {
          enc.name(rd.mname);
          enc.name(rd.rname);
          enc.u32(rd.serial);
          enc.u32(rd.refresh);
          enc.u32(rd.retry);
          enc.u32(rd.expire);
          enc.u32(rd.minimum);
        } else if constexpr (std::is_same_v<T, OptRecord>) {
          // handled above; unreachable
        } else if constexpr (std::is_same_v<T, RawRecord>) {
          enc.bytes(rd.data);
        }
      },
      rr.rdata);
  enc.patch_u16(len_pos, static_cast<std::uint16_t>(enc.size() - rdata_start));
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> wire) : wire_(wire) {}

  [[nodiscard]] bool need(std::size_t n) const { return pos_ + n <= wire_.size(); }
  [[nodiscard]] std::size_t pos() const { return pos_; }

  bool u8(std::uint8_t& v) {
    if (!need(1)) return false;
    v = wire_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    if (!need(2)) return false;
    v = static_cast<std::uint16_t>(std::uint16_t{wire_[pos_]} << 8 |
                                   wire_[pos_ + 1]);
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (!need(4)) return false;
    v = std::uint32_t{wire_[pos_]} << 24 | std::uint32_t{wire_[pos_ + 1]} << 16 |
        std::uint32_t{wire_[pos_ + 2]} << 8 | std::uint32_t{wire_[pos_ + 3]};
    pos_ += 4;
    return true;
  }
  bool skip(std::size_t n) {
    if (!need(n)) return false;
    pos_ += n;
    return true;
  }
  bool bytes(std::size_t n, std::vector<std::uint8_t>& out) {
    if (!need(n)) return false;
    out.assign(wire_.begin() + static_cast<std::ptrdiff_t>(pos_),
               wire_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }

  /// Decodes a possibly-compressed name starting at the cursor.
  /// Compression pointers must target earlier offsets; loops and
  /// forward pointers are rejected.
  util::Result<Name, DecodeError> name() {
    std::vector<std::string> labels;
    std::size_t cursor = pos_;
    std::size_t total = 0;
    bool jumped = false;
    std::size_t after_first_pointer = 0;
    std::size_t guard = 0;
    while (true) {
      if (++guard > 256) return DecodeError::pointer_loop;
      if (cursor >= wire_.size()) return DecodeError::truncated;
      const std::uint8_t len = wire_[cursor];
      if ((len & kPointerTag) == kPointerTag) {
        if (cursor + 1 >= wire_.size()) return DecodeError::truncated;
        const std::size_t target =
            (static_cast<std::size_t>(len & 0x3F) << 8) | wire_[cursor + 1];
        if (target >= cursor) return DecodeError::bad_compression_pointer;
        if (!jumped) {
          after_first_pointer = cursor + 2;
          jumped = true;
        }
        cursor = target;
        continue;
      }
      if ((len & kPointerTag) != 0) return DecodeError::bad_compression_pointer;
      if (len == 0) {
        if (jumped) {
          pos_ = after_first_pointer;
        } else {
          pos_ = cursor + 1;
        }
        auto parsed = Name::from_labels(std::move(labels));
        if (!parsed) return DecodeError::name_overflow;
        return *parsed;
      }
      if (len > 63) return DecodeError::label_overflow;
      if (cursor + 1 + len > wire_.size()) return DecodeError::truncated;
      total += len + 1;
      if (total + 1 > kMaxNameWire) return DecodeError::name_overflow;
      labels.emplace_back(
          reinterpret_cast<const char*>(wire_.data() + cursor + 1), len);
      cursor += 1 + len;
    }
  }

 private:
  std::span<const std::uint8_t> wire_;
  std::size_t pos_ = 0;
};

util::Result<ResourceRecord, DecodeError> decode_rr(Decoder& dec) {
  ResourceRecord rr;
  auto n = dec.name();
  if (!n) return n.error();
  rr.name = std::move(n).value();
  std::uint16_t type = 0;
  std::uint16_t klass = 0;
  std::uint32_t ttl = 0;
  std::uint16_t rdlen = 0;
  if (!dec.u16(type) || !dec.u16(klass) || !dec.u32(ttl) || !dec.u16(rdlen)) {
    return DecodeError::truncated;
  }
  rr.type = static_cast<RrType>(type);
  rr.klass = static_cast<RrClass>(klass);
  rr.ttl = ttl;
  if (!dec.need(rdlen)) return DecodeError::truncated;
  const std::size_t rdata_end = dec.pos() + rdlen;

  switch (rr.type) {
    case RrType::a: {
      if (rdlen != 4) return DecodeError::bad_rdata;
      std::uint32_t addr = 0;
      dec.u32(addr);
      rr.rdata = ARecord{util::Ipv4{addr}};
      break;
    }
    case RrType::ns:
    case RrType::cname:
    case RrType::ptr: {
      auto host = dec.name();
      if (!host) return host.error();
      if (dec.pos() != rdata_end) return DecodeError::bad_rdata;
      if (rr.type == RrType::ns) {
        rr.rdata = NsRecord{std::move(host).value()};
      } else if (rr.type == RrType::cname) {
        rr.rdata = CnameRecord{std::move(host).value()};
      } else {
        rr.rdata = PtrRecord{std::move(host).value()};
      }
      break;
    }
    case RrType::txt: {
      TxtRecord txt;
      while (dec.pos() < rdata_end) {
        std::uint8_t len = 0;
        if (!dec.u8(len)) return DecodeError::truncated;
        if (dec.pos() + len > rdata_end) return DecodeError::bad_rdata;
        std::vector<std::uint8_t> raw;
        dec.bytes(len, raw);
        txt.strings.emplace_back(raw.begin(), raw.end());
      }
      rr.rdata = std::move(txt);
      break;
    }
    case RrType::soa: {
      SoaRecord soa;
      auto mname = dec.name();
      if (!mname) return mname.error();
      soa.mname = std::move(mname).value();
      auto rname = dec.name();
      if (!rname) return rname.error();
      soa.rname = std::move(rname).value();
      if (!dec.u32(soa.serial) || !dec.u32(soa.refresh) ||
          !dec.u32(soa.retry) || !dec.u32(soa.expire) ||
          !dec.u32(soa.minimum)) {
        return DecodeError::truncated;
      }
      if (dec.pos() != rdata_end) return DecodeError::bad_rdata;
      rr.rdata = std::move(soa);
      break;
    }
    case RrType::opt: {
      OptRecord opt;
      opt.udp_payload_size = klass;
      rr.klass = RrClass::in;
      if (!dec.skip(rdlen)) return DecodeError::truncated;
      rr.rdata = opt;
      break;
    }
    default: {
      RawRecord raw;
      if (!dec.bytes(rdlen, raw.data)) return DecodeError::truncated;
      rr.rdata = std::move(raw);
      break;
    }
  }
  if (dec.pos() != rdata_end) return DecodeError::bad_rdata;
  return rr;
}

}  // namespace

std::string to_string(DecodeError e) {
  switch (e) {
    case DecodeError::truncated: return "truncated";
    case DecodeError::label_overflow: return "label overflow";
    case DecodeError::name_overflow: return "name overflow";
    case DecodeError::bad_compression_pointer: return "bad compression pointer";
    case DecodeError::pointer_loop: return "pointer loop";
    case DecodeError::bad_rdata: return "bad rdata";
    case DecodeError::bad_question: return "bad question";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode(const Message& msg) {
  Encoder enc;
  enc.u16(msg.header.id);
  std::uint16_t flags = 0;
  if (msg.header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(msg.header.opcode) & 0xF) << 11);
  if (msg.header.aa) flags |= 0x0400;
  if (msg.header.tc) flags |= 0x0200;
  if (msg.header.rd) flags |= 0x0100;
  if (msg.header.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(msg.header.rcode) & 0xF;
  enc.u16(flags);
  enc.u16(static_cast<std::uint16_t>(msg.questions.size()));
  enc.u16(static_cast<std::uint16_t>(msg.answers.size()));
  enc.u16(static_cast<std::uint16_t>(msg.authorities.size()));
  enc.u16(static_cast<std::uint16_t>(msg.additionals.size()));
  for (const auto& q : msg.questions) {
    enc.name(q.name);
    enc.u16(static_cast<std::uint16_t>(q.type));
    enc.u16(static_cast<std::uint16_t>(q.klass));
  }
  for (const auto& rr : msg.answers) encode_rr(enc, rr);
  for (const auto& rr : msg.authorities) encode_rr(enc, rr);
  for (const auto& rr : msg.additionals) encode_rr(enc, rr);
  return enc.take();
}

util::Result<Message, DecodeError> decode(std::span<const std::uint8_t> wire) {
  Decoder dec(wire);
  Message msg;
  std::uint16_t flags = 0;
  std::uint16_t qd = 0;
  std::uint16_t an = 0;
  std::uint16_t ns = 0;
  std::uint16_t ar = 0;
  if (!dec.u16(msg.header.id) || !dec.u16(flags) || !dec.u16(qd) ||
      !dec.u16(an) || !dec.u16(ns) || !dec.u16(ar)) {
    return DecodeError::truncated;
  }
  msg.header.qr = (flags & 0x8000) != 0;
  msg.header.opcode = static_cast<Opcode>((flags >> 11) & 0xF);
  msg.header.aa = (flags & 0x0400) != 0;
  msg.header.tc = (flags & 0x0200) != 0;
  msg.header.rd = (flags & 0x0100) != 0;
  msg.header.ra = (flags & 0x0080) != 0;
  msg.header.rcode = static_cast<Rcode>(flags & 0xF);

  for (int i = 0; i < qd; ++i) {
    Question q;
    auto n = dec.name();
    if (!n) return n.error();
    q.name = std::move(n).value();
    std::uint16_t type = 0;
    std::uint16_t klass = 0;
    if (!dec.u16(type) || !dec.u16(klass)) return DecodeError::bad_question;
    q.type = static_cast<RrType>(type);
    q.klass = static_cast<RrClass>(klass);
    msg.questions.push_back(std::move(q));
  }
  auto read_section = [&](int count, std::vector<ResourceRecord>& out)
      -> std::optional<DecodeError> {
    for (int i = 0; i < count; ++i) {
      auto rr = decode_rr(dec);
      if (!rr) return rr.error();
      out.push_back(std::move(rr).value());
    }
    return std::nullopt;
  };
  if (auto e = read_section(an, msg.answers)) return *e;
  if (auto e = read_section(ns, msg.authorities)) return *e;
  if (auto e = read_section(ar, msg.additionals)) return *e;
  return msg;
}

}  // namespace odns::dnswire
