#pragma once
// DNS wire codec (RFC 1035 §4). Encoding applies name compression to
// every owner name and to names inside NS/CNAME/PTR/SOA rdata.
// Decoding is fully bounds-checked: malformed input yields an error,
// never UB — DNS parsers face attacker-controlled bytes.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dnswire/message.hpp"
#include "util/result.hpp"

namespace odns::dnswire {

enum class DecodeError {
  truncated,
  label_overflow,
  name_overflow,
  bad_compression_pointer,
  pointer_loop,
  bad_rdata,
  bad_question,
};

std::string to_string(DecodeError e);

/// Serializes a message. Never fails for messages built through the
/// public API (names are validated at construction).
std::vector<std::uint8_t> encode(const Message& msg);

/// Parses a message from raw bytes.
util::Result<Message, DecodeError> decode(std::span<const std::uint8_t> wire);

}  // namespace odns::dnswire
