#include "dnswire/message.hpp"

namespace odns::dnswire {

std::string to_string(RrType t) {
  switch (t) {
    case RrType::a: return "A";
    case RrType::ns: return "NS";
    case RrType::cname: return "CNAME";
    case RrType::soa: return "SOA";
    case RrType::ptr: return "PTR";
    case RrType::mx: return "MX";
    case RrType::txt: return "TXT";
    case RrType::aaaa: return "AAAA";
    case RrType::opt: return "OPT";
    case RrType::any: return "ANY";
  }
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(t));
}

std::string to_string(Rcode r) {
  switch (r) {
    case Rcode::noerror: return "NOERROR";
    case Rcode::formerr: return "FORMERR";
    case Rcode::servfail: return "SERVFAIL";
    case Rcode::nxdomain: return "NXDOMAIN";
    case Rcode::notimp: return "NOTIMP";
    case Rcode::refused: return "REFUSED";
  }
  return "RCODE" + std::to_string(static_cast<int>(r));
}

ResourceRecord ResourceRecord::a(const Name& name, util::Ipv4 addr,
                                 std::uint32_t ttl) {
  return ResourceRecord{name, RrType::a, RrClass::in, ttl, ARecord{addr}};
}

ResourceRecord ResourceRecord::ns(const Name& name, const Name& host,
                                  std::uint32_t ttl) {
  return ResourceRecord{name, RrType::ns, RrClass::in, ttl, NsRecord{host}};
}

ResourceRecord ResourceRecord::cname(const Name& name, const Name& target,
                                     std::uint32_t ttl) {
  return ResourceRecord{name, RrType::cname, RrClass::in, ttl,
                        CnameRecord{target}};
}

ResourceRecord ResourceRecord::txt(const Name& name,
                                   std::vector<std::string> strings,
                                   std::uint32_t ttl) {
  return ResourceRecord{name, RrType::txt, RrClass::in, ttl,
                        TxtRecord{std::move(strings)}};
}

ResourceRecord ResourceRecord::soa(const Name& zone, const Name& mname,
                                   std::uint32_t serial,
                                   std::uint32_t minimum) {
  SoaRecord soa;
  soa.mname = mname;
  // prepend() handles the root zone (where "hostmaster." + "." would
  // contain an empty label) and falls back to the zone itself on a
  // name-length overflow.
  soa.rname = zone.prepend("hostmaster").value_or(zone);
  soa.serial = serial;
  soa.refresh = 7200;
  soa.retry = 900;
  soa.expire = 1209600;
  soa.minimum = minimum;
  return ResourceRecord{zone, RrType::soa, RrClass::in, minimum,
                        std::move(soa)};
}

std::vector<util::Ipv4> Message::answer_addresses() const {
  std::vector<util::Ipv4> out;
  for (const auto& rr : answers) {
    if (const auto* a = std::get_if<ARecord>(&rr.rdata)) {
      out.push_back(a->addr);
    }
  }
  return out;
}

std::string Message::summary() const {
  std::string out = header.qr ? "response" : "query";
  out += " id=" + std::to_string(header.id);
  out += " rcode=" + to_string(header.rcode);
  if (!questions.empty()) {
    out += " q=" + questions.front().name.to_string() + "/" +
           to_string(questions.front().type);
  }
  out += " an=" + std::to_string(answers.size());
  for (const auto& rr : answers) {
    if (const auto* a = std::get_if<ARecord>(&rr.rdata)) {
      out += " A:" + a->addr.to_string();
    }
  }
  return out;
}

Message make_query(std::uint16_t id, const Name& name, RrType type,
                   bool recursion_desired) {
  Message m;
  m.header.id = id;
  m.header.qr = false;
  m.header.rd = recursion_desired;
  m.questions.push_back(Question{name, type, RrClass::in});
  return m;
}

Message make_response(const Message& query, Rcode rcode) {
  Message m;
  m.header.id = query.header.id;
  m.header.qr = true;
  m.header.rd = query.header.rd;
  m.header.rcode = rcode;
  m.questions = query.questions;
  return m;
}

}  // namespace odns::dnswire
