#pragma once
// In-memory DNS message model: header, question, typed resource
// records. The wire codec lives in codec.hpp.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dnswire/name.hpp"
#include "dnswire/types.hpp"
#include "util/ipv4.hpp"

namespace odns::dnswire {

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  Opcode opcode = Opcode::query;
  bool aa = false;  // authoritative answer
  bool tc = false;  // truncated
  bool rd = false;  // recursion desired
  bool ra = false;  // recursion available
  Rcode rcode = Rcode::noerror;
};

struct Question {
  Name name;
  RrType type = RrType::a;
  RrClass klass = RrClass::in;

  bool operator==(const Question&) const = default;
};

struct ARecord {
  util::Ipv4 addr;
  bool operator==(const ARecord&) const = default;
};
struct NsRecord {
  Name host;
  bool operator==(const NsRecord&) const = default;
};
struct CnameRecord {
  Name target;
  bool operator==(const CnameRecord&) const = default;
};
struct PtrRecord {
  Name target;
  bool operator==(const PtrRecord&) const = default;
};
struct TxtRecord {
  std::vector<std::string> strings;
  bool operator==(const TxtRecord&) const = default;
};
struct SoaRecord {
  Name mname;
  Name rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;  // negative-caching TTL (RFC 2308)
  bool operator==(const SoaRecord&) const = default;
};
struct OptRecord {
  std::uint16_t udp_payload_size = 1232;
  bool operator==(const OptRecord&) const = default;
};
/// Record types the codec does not model structurally.
struct RawRecord {
  std::vector<std::uint8_t> data;
  bool operator==(const RawRecord&) const = default;
};

using Rdata = std::variant<ARecord, NsRecord, CnameRecord, PtrRecord,
                           TxtRecord, SoaRecord, OptRecord, RawRecord>;

struct ResourceRecord {
  Name name;
  RrType type = RrType::a;
  RrClass klass = RrClass::in;
  std::uint32_t ttl = 0;
  Rdata rdata = ARecord{};

  bool operator==(const ResourceRecord&) const = default;

  static ResourceRecord a(const Name& name, util::Ipv4 addr,
                          std::uint32_t ttl);
  static ResourceRecord ns(const Name& name, const Name& host,
                           std::uint32_t ttl);
  static ResourceRecord cname(const Name& name, const Name& target,
                              std::uint32_t ttl);
  static ResourceRecord txt(const Name& name, std::vector<std::string> strings,
                            std::uint32_t ttl);
  static ResourceRecord soa(const Name& zone, const Name& mname,
                            std::uint32_t serial, std::uint32_t minimum);
};

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  /// All A-record addresses in the answer section, in order. The
  /// response-based classification method reads these.
  [[nodiscard]] std::vector<util::Ipv4> answer_addresses() const;

  [[nodiscard]] std::string summary() const;
};

/// Builds a standard recursive query.
Message make_query(std::uint16_t id, const Name& name, RrType type,
                   bool recursion_desired = true);

/// Builds a response skeleton echoing the query's id and question.
Message make_response(const Message& query, Rcode rcode = Rcode::noerror);

}  // namespace odns::dnswire
