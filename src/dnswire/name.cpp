#include "dnswire/name.hpp"

#include "util/strings.hpp"

namespace odns::dnswire {

namespace {
constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxName = 255;
}  // namespace

std::optional<Name> Name::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text == ".") return Name{};
  if (text.back() == '.') text.remove_suffix(1);
  std::vector<std::string> labels;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto dot = text.find('.', start);
    const auto end = dot == std::string_view::npos ? text.size() : dot;
    if (end == start) return std::nullopt;  // empty label
    labels.emplace_back(text.substr(start, end - start));
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return from_labels(std::move(labels));
}

std::optional<Name> Name::from_labels(std::vector<std::string> labels) {
  std::size_t wire = 1;  // terminating zero octet
  for (const auto& l : labels) {
    if (l.empty() || l.size() > kMaxLabel) return std::nullopt;
    wire += 1 + l.size();
  }
  if (wire > kMaxName) return std::nullopt;
  Name n;
  n.labels_ = std::move(labels);
  return n;
}

std::size_t Name::wire_length() const {
  std::size_t wire = 1;
  for (const auto& l : labels_) wire += 1 + l.size();
  return wire;
}

std::string Name::to_string() const {
  if (labels_.empty()) return ".";
  return util::join(labels_, ".");
}

bool Name::is_subdomain_of(const Name& zone) const {
  if (zone.labels_.size() > labels_.size()) return false;
  const auto offset = labels_.size() - zone.labels_.size();
  for (std::size_t i = 0; i < zone.labels_.size(); ++i) {
    if (!util::iequals_ascii(labels_[offset + i], zone.labels_[i])) {
      return false;
    }
  }
  return true;
}

std::optional<Name> Name::prepend(std::string_view label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return from_labels(std::move(labels));
}

Name Name::parent() const {
  Name p;
  if (labels_.size() > 1) {
    p.labels_.assign(labels_.begin() + 1, labels_.end());
  }
  return p;
}

bool Name::operator==(const Name& other) const {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (!util::iequals_ascii(labels_[i], other.labels_[i])) return false;
  }
  return true;
}

std::string Name::canonical() const {
  return util::ascii_lower(to_string());
}

}  // namespace odns::dnswire
