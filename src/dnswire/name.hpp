#pragma once
// Domain names as label sequences. Comparison and hashing are ASCII
// case-insensitive (RFC 1035 §2.3.3); presentation parsing enforces the
// 63-octet label and 255-octet name limits.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace odns::dnswire {

class Name {
 public:
  Name() = default;  // the root name

  /// Parses presentation format ("www.example.com", trailing dot
  /// optional; "." is the root). Returns nullopt when a label is empty,
  /// overlong, or the total wire length would exceed 255 octets.
  static std::optional<Name> parse(std::string_view text);

  /// Builds from raw labels (must already satisfy length limits).
  static std::optional<Name> from_labels(std::vector<std::string> labels);

  [[nodiscard]] bool is_root() const { return labels_.empty(); }
  [[nodiscard]] std::size_t label_count() const { return labels_.size(); }
  [[nodiscard]] const std::vector<std::string>& labels() const {
    return labels_;
  }

  /// Wire-format length in octets (sum of label lengths + length bytes
  /// + terminating zero), without compression.
  [[nodiscard]] std::size_t wire_length() const;

  /// "www.example.com" (no trailing dot); "." for the root.
  [[nodiscard]] std::string to_string() const;

  /// True if this name is `zone` or ends in `zone`
  /// (e.g. "a.example.com" is under "example.com").
  [[nodiscard]] bool is_subdomain_of(const Name& zone) const;

  /// New name with `label` prepended: prepend("a") on "b.c" -> "a.b.c".
  [[nodiscard]] std::optional<Name> prepend(std::string_view label) const;

  /// Parent name (one label stripped); root's parent is root.
  [[nodiscard]] Name parent() const;

  bool operator==(const Name& other) const;
  bool operator!=(const Name& other) const { return !(*this == other); }

  /// Canonical (case-folded) form for map keys.
  [[nodiscard]] std::string canonical() const;

 private:
  std::vector<std::string> labels_;
};

}  // namespace odns::dnswire

template <>
struct std::hash<odns::dnswire::Name> {
  std::size_t operator()(const odns::dnswire::Name& n) const noexcept {
    return std::hash<std::string>{}(n.canonical());
  }
};
