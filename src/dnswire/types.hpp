#pragma once
// DNS protocol constants (RFC 1035 §3.2, RFC 6891 for OPT): record
// types/classes, opcodes, and response codes, with to_string helpers
// for the report/bench output. The scanner's probes are type-A queries;
// OPT appears in the codec's EDNS0 handling.

#include <cstdint>
#include <string>

namespace odns::dnswire {

enum class RrType : std::uint16_t {
  a = 1,
  ns = 2,
  cname = 5,
  soa = 6,
  ptr = 12,
  mx = 15,
  txt = 16,
  aaaa = 28,
  opt = 41,
  any = 255,
};

enum class RrClass : std::uint16_t {
  in = 1,
  ch = 3,
  any = 255,
};

enum class Opcode : std::uint8_t {
  query = 0,
  iquery = 1,
  status = 2,
};

enum class Rcode : std::uint8_t {
  noerror = 0,
  formerr = 1,
  servfail = 2,
  nxdomain = 3,
  notimp = 4,
  refused = 5,
};

std::string to_string(RrType t);
std::string to_string(Rcode r);

}  // namespace odns::dnswire
