#include "honeypot/lab.hpp"

#include <stdexcept>

namespace odns::honeypot {

namespace {

netsim::Asn fresh_asn(const netsim::Network& net, netsim::Asn start) {
  netsim::Asn asn = start;
  while (net.find_as(asn) != nullptr) ++asn;
  return asn;
}

}  // namespace

SensorLab deploy_sensor_lab(topo::Deployment& world, util::Prefix block,
                            util::Ipv4 upstream, util::Duration rate_window) {
  auto& sim = world.sim();
  auto& net = sim.net();
  if (block.length() != 24) {
    throw std::invalid_argument("sensor lab needs a /24");
  }

  SensorLab lab;
  netsim::AsConfig ac;
  ac.asn = fresh_asn(net, 64900);
  ac.country = "DEU";
  ac.internal_hops = 1;
  // §3.1 deployment requirements: no egress SAV (sensor 3 spoofs) and
  // direct peering with the resolver's network at an IXP.
  ac.source_address_validation = false;
  net.add_as(ac);
  lab.asn = ac.asn;
  net.announce(ac.asn, block);

  // Peer with the AS of the upstream's nearest PoP: resolve from a hub
  // first so there is connectivity to compute nearest against.
  net.link(ac.asn, net.all_asns().front());
  const netsim::HostId pop = net.resolve_destination(upstream, ac.asn);
  if (pop != netsim::kInvalidHost) {
    net.link(ac.asn, net.host(pop).asn);
  }

  const auto base = block.base().value();
  lab.sensor1_addr = util::Ipv4{base + 10};
  lab.sensor2_recv_addr = util::Ipv4{base + 20};
  lab.sensor2_send_addr = util::Ipv4{base + 21};
  lab.sensor3_addr = util::Ipv4{base + 30};

  SensorConfig cfg;
  cfg.upstream = upstream;
  cfg.rate_window = rate_window;

  const auto h1 = net.add_host(ac.asn, {lab.sensor1_addr});
  lab.sensor1 = std::make_unique<ResolverSensor>(sim, h1, cfg);
  lab.sensor1->start();

  const auto h2 =
      net.add_host(ac.asn, {lab.sensor2_recv_addr, lab.sensor2_send_addr});
  lab.sensor2 = std::make_unique<InteriorForwarderSensor>(
      sim, h2, cfg, lab.sensor2_recv_addr, lab.sensor2_send_addr);
  lab.sensor2->start();

  const auto h3 = net.add_host(ac.asn, {lab.sensor3_addr});
  lab.sensor3 = std::make_unique<ExteriorForwarderSensor>(sim, h3, cfg);
  lab.sensor3->start();

  return lab;
}

netsim::HostId attach_vantage(topo::Deployment& world, util::Prefix block,
                              util::Ipv4 host_addr, bool sav) {
  auto& net = world.sim().net();
  netsim::AsConfig ac;
  ac.asn = fresh_asn(net, 65100);
  ac.country = "USA";
  ac.internal_hops = 1;
  ac.source_address_validation = sav;
  net.add_as(ac);
  net.announce(ac.asn, block);
  net.link(ac.asn, net.all_asns().front());
  return net.add_host(ac.asn, {host_addr});
}

}  // namespace odns::honeypot
