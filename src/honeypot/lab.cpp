#include "honeypot/lab.hpp"

#include <stdexcept>

namespace odns::honeypot {

namespace {

netsim::Asn fresh_asn(const netsim::Network& net, netsim::Asn start) {
  netsim::Asn asn = start;
  while (net.find_as(asn) != nullptr) ++asn;
  return asn;
}

}  // namespace

SensorLab deploy_sensor_lab(topo::Deployment& world, util::Prefix block,
                            util::Ipv4 upstream, util::Duration rate_window) {
  auto& sim = world.sim();
  auto& net = sim.net();
  if (block.length() != 24) {
    throw std::invalid_argument("sensor lab needs a /24");
  }

  SensorLab lab;
  netsim::AsConfig ac;
  ac.asn = fresh_asn(net, 64900);
  ac.country = "DEU";
  ac.internal_hops = 1;
  // §3.1 deployment requirements: no egress SAV (sensor 3 spoofs) and
  // direct peering with the resolver's network at an IXP.
  ac.source_address_validation = false;
  net.add_as(ac);
  lab.asn = ac.asn;
  net.announce(ac.asn, block);

  // Peer with the AS of the upstream's nearest PoP: resolve from a hub
  // first so there is connectivity to compute nearest against.
  net.link(ac.asn, net.all_asns().front());
  const netsim::HostId pop = net.resolve_destination(upstream, ac.asn);
  if (pop != netsim::kInvalidHost) {
    net.link(ac.asn, net.host(pop).asn);
  }

  const auto base = block.base().value();
  lab.sensor1_addr = util::Ipv4{base + 10};
  lab.sensor2_recv_addr = util::Ipv4{base + 20};
  lab.sensor2_send_addr = util::Ipv4{base + 21};
  lab.sensor3_addr = util::Ipv4{base + 30};

  SensorConfig cfg;
  cfg.upstream = upstream;
  cfg.rate_window = rate_window;

  const auto h1 = net.add_host(ac.asn, {lab.sensor1_addr});
  lab.sensor1 = std::make_unique<ResolverSensor>(sim, h1, cfg);
  lab.sensor1->start();

  const auto h2 =
      net.add_host(ac.asn, {lab.sensor2_recv_addr, lab.sensor2_send_addr});
  lab.sensor2 = std::make_unique<InteriorForwarderSensor>(
      sim, h2, cfg, lab.sensor2_recv_addr, lab.sensor2_send_addr);
  lab.sensor2->start();

  const auto h3 = net.add_host(ac.asn, {lab.sensor3_addr});
  lab.sensor3 = std::make_unique<ExteriorForwarderSensor>(sim, h3, cfg);
  lab.sensor3->start();

  return lab;
}

netsim::HostId attach_vantage(netsim::Network& net, util::Prefix block,
                              util::Ipv4 host_addr, bool sav,
                              std::optional<netsim::Asn> mirror_links_of) {
  netsim::AsConfig ac;
  ac.asn = fresh_asn(net, 65100);
  ac.country = "USA";
  ac.internal_hops = 1;
  ac.source_address_validation = sav;
  std::vector<netsim::Asn> links{net.all_asns().front()};
  if (mirror_links_of) {
    const auto* mirrored = net.find_as(*mirror_links_of);
    if (mirrored == nullptr) {
      throw std::invalid_argument("attach_vantage: unknown mirrored ASN");
    }
    // Hop-identical routing: same internal chain length and the same
    // neighbor set in the same order, so BFS from the vantage explores
    // the graph exactly as BFS from the mirrored AS does (the vantage
    // itself is a stub and can never shorten anyone's path).
    ac.internal_hops = mirrored->cfg.internal_hops;
    links = mirrored->neighbors;
  }
  net.add_as(ac);
  net.announce(ac.asn, block);
  for (const netsim::Asn neighbor : links) net.link(ac.asn, neighbor);
  return net.add_host(ac.asn, {host_addr});
}

netsim::HostId attach_vantage(topo::Deployment& world, util::Prefix block,
                              util::Ipv4 host_addr, bool sav,
                              std::optional<netsim::Asn> mirror_links_of) {
  return attach_vantage(world.sim().net(), block, host_addr, sav,
                        mirror_links_of);
}

std::vector<netsim::HostId> attach_capture_vantages(netsim::Network& net,
                                                    netsim::Asn mirror_as,
                                                    std::uint32_t count) {
  std::vector<netsim::HostId> members;
  members.reserve(count);
  for (std::uint32_t j = 0; j < count; ++j) {
    // One /24 per member from 198.19.0.0/16 — the half of the RFC 2544
    // benchmarking range the campaign vantages (198.18.x.0/24 in
    // tests, examples, and benches) never touch.
    const util::Ipv4 base{static_cast<std::uint32_t>(
        (198u << 24) | (19u << 16) | (j << 8))};
    members.push_back(attach_vantage(net, util::Prefix{base, 24},
                                     util::Ipv4{base.value() + 1},
                                     /*sav=*/false, mirror_as));
  }
  return members;
}

std::vector<netsim::HostId> attach_capture_vantages(topo::Deployment& world,
                                                    std::uint32_t count) {
  auto& net = world.sim().net();
  return attach_capture_vantages(net, net.host(world.scanner_host()).asn,
                                 count);
}

}  // namespace odns::honeypot
