#pragma once
// Deployment helpers for the §3 controlled experiment: attach the
// sensor network (SAV-free, peering directly with the public resolver,
// as the paper's setup requires) and external vantage points for the
// scanning-campaign models and the multi-vantage census.

#include <memory>
#include <optional>
#include <vector>

#include "honeypot/sensors.hpp"
#include "topo/deployment.hpp"

namespace odns::honeypot {

struct SensorLab {
  netsim::Asn asn = 0;
  util::Ipv4 sensor1_addr;       // IP1
  util::Ipv4 sensor2_recv_addr;  // IP2
  util::Ipv4 sensor2_send_addr;  // IP3 (same /24 as IP2)
  util::Ipv4 sensor3_addr;       // IP4
  std::unique_ptr<ResolverSensor> sensor1;
  std::unique_ptr<InteriorForwarderSensor> sensor2;
  std::unique_ptr<ExteriorForwarderSensor> sensor3;
};

/// Creates the sensor AS (SAV disabled, direct IXP peering with the
/// upstream resolver project's nearest PoP AS) and deploys all three
/// sensors. `block` must be an unused /24.
SensorLab deploy_sensor_lab(topo::Deployment& world, util::Prefix block,
                            util::Ipv4 upstream,
                            util::Duration rate_window =
                                util::Duration::minutes(5));

/// Attaches a standalone external network with one host — used for
/// campaign vantage points (each campaign scans from its own prefix,
/// so sensor rate limiting treats them independently).
///
/// With `mirror_links_of` set, the new AS copies that AS's neighbor
/// list (in order) and internal-hop count instead of linking to the
/// first hub — which makes every route from the vantage hop-identical
/// (same length, same onward AS path) to the same route from the
/// mirrored AS. The multi-vantage census relies on this to keep probe
/// timing byte-identical to the single-vantage scanner's.
netsim::HostId attach_vantage(netsim::Network& net, util::Prefix block,
                              util::Ipv4 host_addr, bool sav = true,
                              std::optional<netsim::Asn> mirror_links_of =
                                  std::nullopt);
netsim::HostId attach_vantage(topo::Deployment& world, util::Prefix block,
                              util::Ipv4 host_addr, bool sav = true,
                              std::optional<netsim::Asn> mirror_links_of =
                                  std::nullopt);

/// Capture fleet for the multi-vantage census: `count` SAV-free
/// vantage ASes mirroring `mirror_as`'s (the scanner AS's)
/// attachment, one capture host each. Addresses are carved from
/// 198.19.0.0/16 — the upper half of the RFC 2544 benchmarking range,
/// disjoint from the 198.18.0.0/16 blocks the campaign vantages in
/// tests/examples allocate from. Returns the member hosts in pin
/// order — hand them to scan::VantageSet, which registers them as the
/// capture set for the scanner address.
std::vector<netsim::HostId> attach_capture_vantages(netsim::Network& net,
                                                    netsim::Asn mirror_as,
                                                    std::uint32_t count);
std::vector<netsim::HostId> attach_capture_vantages(topo::Deployment& world,
                                                    std::uint32_t count);

}  // namespace odns::honeypot
