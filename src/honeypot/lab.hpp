#pragma once
// Deployment helpers for the §3 controlled experiment: attach the
// sensor network (SAV-free, peering directly with the public resolver,
// as the paper's setup requires) and external vantage points for the
// scanning-campaign models.

#include <memory>
#include <vector>

#include "honeypot/sensors.hpp"
#include "topo/deployment.hpp"

namespace odns::honeypot {

struct SensorLab {
  netsim::Asn asn = 0;
  util::Ipv4 sensor1_addr;       // IP1
  util::Ipv4 sensor2_recv_addr;  // IP2
  util::Ipv4 sensor2_send_addr;  // IP3 (same /24 as IP2)
  util::Ipv4 sensor3_addr;       // IP4
  std::unique_ptr<ResolverSensor> sensor1;
  std::unique_ptr<InteriorForwarderSensor> sensor2;
  std::unique_ptr<ExteriorForwarderSensor> sensor3;
};

/// Creates the sensor AS (SAV disabled, direct IXP peering with the
/// upstream resolver project's nearest PoP AS) and deploys all three
/// sensors. `block` must be an unused /24.
SensorLab deploy_sensor_lab(topo::Deployment& world, util::Prefix block,
                            util::Ipv4 upstream,
                            util::Duration rate_window =
                                util::Duration::minutes(5));

/// Attaches a standalone external network with one host — used for
/// campaign vantage points (each campaign scans from its own prefix,
/// so sensor rate limiting treats them independently).
netsim::HostId attach_vantage(topo::Deployment& world, util::Prefix block,
                              util::Ipv4 host_addr, bool sav = true);

}  // namespace odns::honeypot
