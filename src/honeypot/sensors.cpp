#include "honeypot/sensors.hpp"

namespace odns::honeypot {

using dnswire::Message;

// --- Sensor 1 ---------------------------------------------------------

void ResolverSensor::start() {
  sim().bind_udp(host(), nodes::kDnsPort, this);
  sim().bind_udp_wildcard(host(), this);
}

void ResolverSensor::on_message(const netsim::Datagram& dgram, Message msg) {
  if (dgram.dst_port == nodes::kDnsPort && !msg.header.qr) {
    if (msg.questions.size() != 1 || !admit(dgram)) return;
    const std::uint16_t port = next_port_;
    next_port_ = next_port_ >= 50000 ? 40000
                                     : static_cast<std::uint16_t>(next_port_ + 1);
    const std::uint16_t txid = next_txid_++;
    pending_[(std::uint32_t{port} << 16) | txid] =
        Pending{dgram.src, dgram.src_port, msg.header.id, dgram.dst};
    send_message(cfg_.upstream, port, nodes::kDnsPort,
                 dnswire::make_query(txid, msg.questions.front().name,
                                     msg.questions.front().type));
    return;
  }
  if (dgram.dst_port != nodes::kDnsPort && msg.header.qr) {
    auto it = pending_.find((std::uint32_t{dgram.dst_port} << 16) |
                            msg.header.id);
    if (it == pending_.end()) return;
    const Pending p = it->second;
    pending_.erase(it);
    Message resp = msg;
    resp.header.id = p.client_txid;
    resp.header.ra = true;
    // The defining sensor-1 behaviour: answer from the same address
    // that received the query.
    send_message(p.client, nodes::kDnsPort, p.client_port, resp,
                 p.arrival_dst);
  }
}

// --- Sensor 2 ---------------------------------------------------------

void InteriorForwarderSensor::start() {
  sim().bind_udp(host(), nodes::kDnsPort, this);
  sim().bind_udp_wildcard(host(), this);
}

void InteriorForwarderSensor::on_message(const netsim::Datagram& dgram,
                                         Message msg) {
  if (dgram.dst_port == nodes::kDnsPort && !msg.header.qr) {
    // Only the receive address plays transparent-forwarder; queries to
    // the send address are ignored (it is not an advertised service).
    if (dgram.dst != recv_addr_) return;
    if (msg.questions.size() != 1 || !admit(dgram)) return;
    const std::uint16_t port = next_port_;
    next_port_ = next_port_ >= 50000 ? 41000
                                     : static_cast<std::uint16_t>(next_port_ + 1);
    const std::uint16_t txid = next_txid_++;
    pending_[(std::uint32_t{port} << 16) | txid] =
        Pending{dgram.src, dgram.src_port, msg.header.id};
    send_message(cfg_.upstream, port, nodes::kDnsPort,
                 dnswire::make_query(txid, msg.questions.front().name,
                                     msg.questions.front().type),
                 send_addr_);
    return;
  }
  if (dgram.dst_port != nodes::kDnsPort && msg.header.qr) {
    auto it = pending_.find((std::uint32_t{dgram.dst_port} << 16) |
                            msg.header.id);
    if (it == pending_.end()) return;
    const Pending p = it->second;
    pending_.erase(it);
    Message resp = msg;
    resp.header.id = p.client_txid;
    resp.header.ra = true;
    // Answer from the *other* address of the same /24: stateless
    // response-based campaigns record send_addr, transactional scans
    // attribute the answer to recv_addr.
    send_message(p.client, nodes::kDnsPort, p.client_port, resp, send_addr_);
  }
}

// --- Sensor 3 ---------------------------------------------------------

void ExteriorForwarderSensor::start() {
  sim().bind_udp(host(), nodes::kDnsPort, this);
}

void ExteriorForwarderSensor::on_message(const netsim::Datagram& dgram,
                                         Message msg) {
  if (msg.header.qr || msg.questions.empty()) return;
  if (!admit(dgram)) return;
  ++relayed_;
  // Relay verbatim — same TXID, same client port, and crucially the
  // client's own source address. The public resolver answers the
  // client directly; this sensor never observes the response.
  send_message(cfg_.upstream, dgram.src_port, nodes::kDnsPort, msg,
               dgram.src);
}

}  // namespace odns::honeypot
