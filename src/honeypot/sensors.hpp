#pragma once
// The three ODNS honeypot sensors of the controlled experiment (§3.1).
// All resolve through a public resolver and rate-limit to one answer
// per source /24 per window (anti-amplification):
//
//   Sensor 1 "recursive resolver": answers from the address the query
//            arrived on — every viable campaign must find it.
//   Sensor 2 "interior transparent forwarder": receives on IP_a but
//            answers from IP_b in the same /24 — mimics the key
//            observable (response source ≠ probed address) without
//            needing a spoofing-capable network.
//   Sensor 3 "exterior transparent forwarder": relays the query to the
//            public resolver with the client's source address spoofed;
//            the sensor never sees the answer.

#include <memory>
#include <optional>

#include "nodes/dns_node.hpp"
#include "nodes/ratelimit.hpp"

namespace odns::honeypot {

struct SensorConfig {
  util::Ipv4 upstream;  // public resolver used for resolution
  util::Duration rate_window = util::Duration::minutes(5);
};

class SensorBase : public nodes::DnsNode {
 public:
  SensorBase(netsim::Simulator& sim, netsim::HostId host, SensorConfig cfg)
      : DnsNode(sim, host), cfg_(cfg), limiter_(cfg.rate_window) {}

  [[nodiscard]] const nodes::PrefixRateLimiter& limiter() const {
    return limiter_;
  }
  [[nodiscard]] std::uint64_t queries_seen() const { return queries_seen_; }

 protected:
  bool admit(const netsim::Datagram& dgram) {
    ++queries_seen_;
    if (!limiter_.allow(dgram.src, sim().now())) {
      ++counters_.rate_limited;
      return false;
    }
    return true;
  }

  SensorConfig cfg_;
  nodes::PrefixRateLimiter limiter_;
  std::uint64_t queries_seen_ = 0;
};

/// Sensor 1: behaves like a public recursive resolver (single address).
class ResolverSensor : public SensorBase {
 public:
  using SensorBase::SensorBase;
  void start();

 protected:
  void on_message(const netsim::Datagram& dgram, dnswire::Message msg) override;

 private:
  struct Pending {
    util::Ipv4 client;
    std::uint16_t client_port = 0;
    std::uint16_t client_txid = 0;
    util::Ipv4 arrival_dst;
  };
  std::unordered_map<std::uint32_t, Pending> pending_;
  std::uint16_t next_port_ = 40000;
  std::uint16_t next_txid_ = 1;
};

/// Sensor 2: receives on one address, answers from a second address in
/// the same /24.
class InteriorForwarderSensor : public SensorBase {
 public:
  InteriorForwarderSensor(netsim::Simulator& sim, netsim::HostId host,
                          SensorConfig cfg, util::Ipv4 recv_addr,
                          util::Ipv4 send_addr)
      : SensorBase(sim, host, cfg), recv_addr_(recv_addr),
        send_addr_(send_addr) {}
  void start();

  [[nodiscard]] util::Ipv4 recv_addr() const { return recv_addr_; }
  [[nodiscard]] util::Ipv4 send_addr() const { return send_addr_; }

 protected:
  void on_message(const netsim::Datagram& dgram, dnswire::Message msg) override;

 private:
  struct Pending {
    util::Ipv4 client;
    std::uint16_t client_port = 0;
    std::uint16_t client_txid = 0;
  };
  util::Ipv4 recv_addr_;
  util::Ipv4 send_addr_;
  std::unordered_map<std::uint32_t, Pending> pending_;
  std::uint16_t next_port_ = 41000;
  std::uint16_t next_txid_ = 1;
};

/// Sensor 3: true transparent forwarder — relays with the client's
/// source address; requires a SAV-free network and sees no answers.
class ExteriorForwarderSensor : public SensorBase {
 public:
  using SensorBase::SensorBase;
  void start();

  [[nodiscard]] std::uint64_t relayed() const { return relayed_; }

 protected:
  void on_message(const netsim::Datagram& dgram, dnswire::Message msg) override;

 private:
  std::uint64_t relayed_ = 0;
};

}  // namespace odns::honeypot
