#include "netsim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace odns::netsim {

void EventQueue::schedule_at(util::SimTime at, Action action) {
  // Events cannot be scheduled in the past; clamp to "now" so that
  // zero-delay sends still execute in FIFO order.
  if (at < now_) at = now_;
  heap_.push(Entry{at, next_seq_++, std::move(action)});
}

void EventQueue::step() {
  assert(!heap_.empty());
  // priority_queue::top() is const; move out via const_cast on the
  // action only — the entry is popped immediately after.
  auto& top = const_cast<Entry&>(heap_.top());
  now_ = top.at;
  Action action = std::move(top.action);
  heap_.pop();
  ++executed_;
  action();
}

std::uint64_t EventQueue::run(util::SimTime deadline) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.top().at <= deadline) {
    step();
    ++n;
  }
  constexpr auto kSentinel = std::int64_t{1} << 62;
  if (now_ < deadline && deadline.nanos() < kSentinel) {
    // The clock advances to an explicit deadline (remaining events are
    // all scheduled later), so timeout logic keyed on now() behaves
    // deterministically.
    now_ = deadline;
  }
  return n;
}

}  // namespace odns::netsim
