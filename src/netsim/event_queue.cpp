#include "netsim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace odns::netsim {

// --- calendar buckets ------------------------------------------------

std::uint32_t EventQueue::bucket_for(std::int64_t at_nanos) {
  CacheEntry& ce = tcache_[cache_slot(at_nanos)];
  if (ce.at == at_nanos) return ce.bucket;
  std::uint32_t bidx;
  if (free_bucket_head_ != kNilIndex) {
    bidx = free_bucket_head_;
    free_bucket_head_ = buckets_[bidx].next_free;
  } else {
    bidx = static_cast<std::uint32_t>(buckets_.size());
    buckets_.emplace_back();
  }
  Bucket& b = buckets_[bidx];
  b.at_nanos = at_nanos;
  b.head = 0;
  // Keyed by (at, seq of the bucket's first event): a cohort split by
  // cache eviction drains its buckets in creation = sequence order.
  time_heap_.push_back(TimeRef{at_nanos, next_seq_, bidx});
  std::push_heap(time_heap_.begin(), time_heap_.end(), TimeLater{});
  ce.at = at_nanos;
  ce.bucket = bidx;
  return bidx;
}

void EventQueue::retire_top_bucket() {
  const TimeRef top = time_heap_.front();
  std::pop_heap(time_heap_.begin(), time_heap_.end(), TimeLater{});
  time_heap_.pop_back();
  Bucket& b = buckets_[top.bucket];
  // Precise cache invalidation: the only cache slot that can reference
  // this bucket is the one keyed by its timestamp. Without this, a
  // later schedule at the same timestamp could append to a recycled
  // bucket.
  CacheEntry& ce = tcache_[cache_slot(b.at_nanos)];
  if (ce.at == b.at_nanos && ce.bucket == top.bucket) ce.at = kEmptyKey;
  b.items.clear();  // capacity retained for the next timestamp
  b.head = 0;
  b.next_free = free_bucket_head_;
  free_bucket_head_ = top.bucket;
}

// --- event pools -----------------------------------------------------

EventQueue::PacketEvent& EventQueue::acquire_packet(util::SimTime at,
                                                    Kind kind) {
  at = clamp(at);
  std::uint32_t slot;
  if (packet_free_head_ != kNilIndex) {
    slot = packet_free_head_;
    packet_free_head_ = packet_pool_[slot].next_free;
    --free_count_;
  } else {
    slot = static_cast<std::uint32_t>(packet_pool_.size());
    packet_pool_.emplace_back();
  }
  buckets_[bucket_for(at.nanos())].items.push_back(pack_item(kind, slot));
  ++next_seq_;
  ++pending_;
  return packet_pool_[slot];
}

EventQueue::MiscEvent& EventQueue::acquire_misc(util::SimTime at, Kind kind) {
  at = clamp(at);
  std::uint32_t slot;
  if (misc_free_head_ != kNilIndex) {
    slot = misc_free_head_;
    misc_free_head_ = misc_pool_[slot].next_free;
    --free_count_;
  } else {
    slot = static_cast<std::uint32_t>(misc_pool_.size());
    misc_pool_.emplace_back();
  }
  buckets_[bucket_for(at.nanos())].items.push_back(pack_item(kind, slot));
  ++next_seq_;
  ++pending_;
  return misc_pool_[slot];
}

void EventQueue::release_packet(std::uint32_t slot) {
  packet_pool_[slot].next_free = packet_free_head_;
  packet_free_head_ = slot;
  ++free_count_;
}

void EventQueue::release_misc(std::uint32_t slot) {
  MiscEvent& ev = misc_pool_[slot];
  ev.timer = nullptr;
  ev.next_free = misc_free_head_;
  misc_free_head_ = slot;
  ++free_count_;
}

// --- scheduling ------------------------------------------------------

void EventQueue::schedule_deliver(util::SimTime at, Packet&& pkt,
                                  HostId host) {
  if (legacy_mode_) {
    // Pre-pool cost model: the whole Packet is captured in a
    // heap-allocating std::function — the A/B baseline bench_netsim
    // measures the typed path against.
    schedule_at(at, [this, pkt = std::move(pkt), host]() mutable {
      sink_->deliver_event(std::move(pkt), host);
    });
    return;
  }
  PacketEvent& ev = acquire_packet(at, Kind::deliver);
  ev.pkt = std::move(pkt);
  ev.dst_host = host;
}

void EventQueue::schedule_icmp(util::SimTime at, IcmpType type,
                               Packet&& offender, util::Ipv4 router,
                               Asn origin_as) {
  if (legacy_mode_) {
    schedule_at(at, [this, type, offender = std::move(offender), router,
                     origin_as]() mutable {
      sink_->icmp_event(type, std::move(offender), router, origin_as);
    });
    return;
  }
  PacketEvent& ev = acquire_packet(at, Kind::icmp);
  ev.icmp_type = type;
  ev.pkt = std::move(offender);
  ev.router = router;
  ev.origin_as = origin_as;
}

void EventQueue::schedule_timer(util::SimTime at, TimerTarget* target,
                                std::uint64_t a, std::uint64_t b) {
  assert(target != nullptr);
  if (legacy_mode_) {
    schedule_at(at, [target, a, b]() { target->on_timer(a, b); });
    return;
  }
  MiscEvent& ev = acquire_misc(at, Kind::timer);
  ev.timer = target;
  ev.arg_a = a;
  ev.arg_b = b;
}

void EventQueue::schedule_at(util::SimTime at, Action action) {
  if (legacy_mode_) {
    legacy_heap_.push(LegacyEntry{clamp(at), next_seq_++, std::move(action)});
    return;
  }
  MiscEvent& ev = acquire_misc(at, Kind::closure);
  ev.closure = std::move(action);
}

// --- execution -------------------------------------------------------

void EventQueue::dispatch(std::uint32_t item) {
  // Move the payload out and free the slot BEFORE invoking the handler:
  // handlers schedule new events, which may grow the pool and would
  // invalidate any reference still held into it.
  const auto kind = static_cast<Kind>(item >> 30);
  const std::uint32_t slot = item & 0x3FFFFFFFu;
  switch (kind) {
    case Kind::deliver: {
      PacketEvent& ev = packet_pool_[slot];
      Packet pkt = std::move(ev.pkt);
      const HostId host = ev.dst_host;
      release_packet(slot);
      sink_->deliver_event(std::move(pkt), host);
      return;
    }
    case Kind::icmp: {
      PacketEvent& ev = packet_pool_[slot];
      Packet offender = std::move(ev.pkt);
      const IcmpType type = ev.icmp_type;
      const util::Ipv4 router = ev.router;
      const Asn origin_as = ev.origin_as;
      release_packet(slot);
      sink_->icmp_event(type, std::move(offender), router, origin_as);
      return;
    }
    case Kind::timer: {
      MiscEvent& ev = misc_pool_[slot];
      TimerTarget* target = ev.timer;
      const auto a = ev.arg_a;
      const auto b = ev.arg_b;
      release_misc(slot);
      target->on_timer(a, b);
      return;
    }
    case Kind::closure: {
      MiscEvent& ev = misc_pool_[slot];
      Action action = std::move(ev.closure);
      ev.closure = nullptr;  // drop captures before the slot is reused
      release_misc(slot);
      action();
      return;
    }
  }
}

void EventQueue::step() {
  assert(!empty());
  if (legacy_mode_) {
    // priority_queue::top() is const; move out via const_cast on the
    // action only — the entry is popped immediately after.
    auto& top = const_cast<LegacyEntry&>(legacy_heap_.top());
    now_ = top.at;
    Action action = std::move(top.action);
    legacy_heap_.pop();
    ++executed_;
    action();
    return;
  }
  const TimeRef top = time_heap_.front();
  Bucket& b = buckets_[top.bucket];
  const std::uint32_t slot = b.items[b.head++];
  now_ = util::SimTime::from_nanos(top.at);
  // Retire the bucket before dispatch: the handler may schedule at
  // this same timestamp, which then starts a fresh bucket (correctly
  // ordered after everything the old one held).
  if (b.head == b.items.size()) retire_top_bucket();
  --pending_;
  ++executed_;
  dispatch(slot);
}

std::size_t EventQueue::step_batch() {
  assert(!empty());
  const util::SimTime at = peek_at();
  std::size_t n = 0;
  // Handlers that schedule at the batch timestamp (zero-delay sends
  // clamp to it) extend the batch; bucket append order keeps them
  // after everything already pending, so the total order is unchanged.
  if (legacy_mode_ || !batch_enabled_) {
    while (!empty() && peek_at() == at) {
      step();
      ++n;
    }
    return n;
  }
  // Batch extraction: maximal runs of consecutive delivery events are
  // pulled out of the head bucket *before* dispatch and handed to the
  // sink as one span — same events, same sequence order, one virtual
  // call. Anything the run's handlers schedule at this timestamp lands
  // in a bucket ordered after the extracted run, exactly where the
  // scalar loop would have executed it.
  while (!empty() && peek_at() == at) {
    const TimeRef top = time_heap_.front();
    Bucket& b = buckets_[top.bucket];
    if (static_cast<Kind>(b.items[b.head] >> 30) != Kind::deliver) {
      step();
      ++n;
      continue;
    }
    now_ = util::SimTime::from_nanos(top.at);
    batch_scratch_.clear();
    while (b.head < b.items.size()) {
      const std::uint32_t item = b.items[b.head];
      if (static_cast<Kind>(item >> 30) != Kind::deliver) break;
      const std::uint32_t slot = item & 0x3FFFFFFFu;
      PacketEvent& ev = packet_pool_[slot];
      batch_scratch_.push_back(DeliverItem{std::move(ev.pkt), ev.dst_host});
      release_packet(slot);
      ++b.head;
    }
    const std::size_t run = batch_scratch_.size();
    pending_ -= run;
    executed_ += run;
    n += run;
    // Retire before dispatch, like step(): a handler scheduling at this
    // timestamp must start a fresh bucket ordered after this one.
    if (b.head == b.items.size()) retire_top_bucket();
    sink_->deliver_batch_event(batch_scratch_);
  }
  return n;
}

std::uint64_t EventQueue::run_before(util::SimTime end) {
  std::uint64_t n = 0;
  while (!empty() && peek_at() < end) {
    n += step_batch();
  }
  return n;
}

std::uint64_t EventQueue::run(util::SimTime deadline) {
  std::uint64_t n = 0;
  while (!empty() && peek_at() <= deadline) {
    n += step_batch();
  }
  if (now_ < deadline && deadline < util::SimTime::far_future()) {
    // The clock advances to an explicit deadline (remaining events are
    // all scheduled later), so timeout logic keyed on now() behaves
    // deterministically.
    now_ = deadline;
  }
  return n;
}

}  // namespace odns::netsim
