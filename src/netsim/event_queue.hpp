#pragma once
// Discrete-event core: an allocation-free typed event engine. Events
// live in kind-segregated slabs with freelist recycling (packet events
// never touch closure storage) and are ordered by a
// bucketed calendar-style queue: a binary min-heap over *bucket* refs
// (one per pending timestamp cohort), each owning a FIFO vector of
// event slots. A small direct-mapped timestamp cache coalesces events
// scheduled for the same instant into a shared bucket, so
// same-timestamp bursts cost O(1) per event instead of O(log n);
// timestamps that never repeat cost one 24-byte heap entry — no worse
// than a plain indexed min-heap. The engine preserves the exact
// (time, sequence) total order of the classic heap, and the per-event
// hot path performs no heap allocation (event slots and bucket
// vectors are slab-recycled).
//
// The full scheduler contract (total order, tie-breaking, determinism
// guarantees, pool lifetime rules) and the migration guide from the
// legacy closure API to typed events live in docs/event-engine.md.

#include <array>
#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <span>
#include <vector>

#include "netsim/packet.hpp"
#include "util/time.hpp"

namespace odns::netsim {

/// One delivery extracted from a same-timestamp cohort: the packet
/// plus its destination host, handed to the sink as part of a batch.
struct DeliverItem {
  Packet pkt;
  HostId host = kInvalidHost;
};

/// Receiver of typed timer events. Implementations interpret the two
/// argument words themselves (connection keys, generations, target
/// indices, ...) — the engine only stores and returns them, so a timer
/// costs two words instead of a heap-allocated closure.
class TimerTarget {
 public:
  virtual ~TimerTarget() = default;
  virtual void on_timer(std::uint64_t a, std::uint64_t b) = 0;
};

/// Packet-plane half of the engine: the Simulator implements this so
/// pooled packet events (delivery, deferred ICMP) dispatch through one
/// virtual call instead of a per-event closure.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver_event(Packet&& pkt, HostId host) = 0;
  virtual void icmp_event(IcmpType type, Packet&& offender,
                          util::Ipv4 router, Asn origin_as) = 0;
  /// Batch entry point: a maximal run of consecutive delivery events
  /// from one same-timestamp cohort, in sequence order. The default
  /// replays the scalar path, so custom sinks keep their semantics;
  /// the Simulator overrides it to amortize route-memo and node
  /// dispatch across the run (docs/event-engine.md, "Batch delivery").
  virtual void deliver_batch_event(std::span<DeliverItem> batch) {
    for (auto& item : batch) deliver_event(std::move(item.pkt), item.host);
  }
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Wires the packet-plane dispatch target. Must be called before any
  /// schedule_deliver/schedule_icmp event fires (the Simulator does
  /// this in its constructor); closure and timer events need no sink.
  void bind_sink(PacketSink* sink) { sink_ = sink; }

  // --- typed, allocation-free scheduling -----------------------------

  /// Schedules delivery of `pkt` to `host` at absolute time `at`.
  void schedule_deliver(util::SimTime at, Packet&& pkt, HostId host);
  /// Schedules deferred ICMP generation (TTL expiry along a route):
  /// `router` answers `type` about `offender`, originating in
  /// `origin_as`.
  void schedule_icmp(util::SimTime at, IcmpType type, Packet&& offender,
                     util::Ipv4 router, Asn origin_as);
  /// Schedules `target->on_timer(a, b)` at absolute time `at`.
  void schedule_timer(util::SimTime at, TimerTarget* target, std::uint64_t a,
                      std::uint64_t b);

  /// Legacy closure shim: schedules `action` at absolute time `at`.
  /// Kept for tests, examples, and cold paths; allocates whenever the
  /// callable outgrows std::function's small-buffer optimisation.
  void schedule_at(util::SimTime at, Action action);

  /// Switches to the pre-pool closure engine (a priority_queue of
  /// (time, seq, std::function) entries): every typed schedule_* call
  /// is wrapped in a heap-allocating closure, reproducing the legacy
  /// per-event cost model. This is bench_netsim's A/B baseline and the
  /// determinism suite's reference ordering; both modes execute the
  /// exact same (time, seq) total order. Only valid on an empty queue:
  /// switching with events pending would strand them in the inactive
  /// structure, so the request is refused outright (cold path — the
  /// unconditional check is free).
  void set_legacy_mode(bool on) {
    if (!time_heap_.empty() || !legacy_heap_.empty()) {
      assert(false && "set_legacy_mode with events pending");
      return;
    }
    legacy_mode_ = on;
  }
  [[nodiscard]] bool legacy_mode() const { return legacy_mode_; }

  /// Toggles batch extraction of delivery runs in step_batch(). Both
  /// modes execute the identical (time, seq) total order — batching
  /// only changes how many events one sink call covers — so the switch
  /// is safe at any point and is the equivalence tests' A/B lever
  /// (tests/batch_plane_test.cpp).
  void set_batch_delivery(bool on) { batch_enabled_ = on; }
  [[nodiscard]] bool batch_delivery() const { return batch_enabled_; }

  [[nodiscard]] bool empty() const {
    return legacy_mode_ ? legacy_heap_.empty() : time_heap_.empty();
  }
  [[nodiscard]] std::size_t size() const {
    return legacy_mode_ ? legacy_heap_.size() : pending_;
  }
  [[nodiscard]] util::SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Pool introspection (tests): total slots ever allocated (across
  /// the packet and misc slabs) and how many of them are currently
  /// free. live events = pool_slots() - free_slots(); a drained queue
  /// recycles all slots, so steady-state workloads keep pool_slots()
  /// at their high-water mark.
  [[nodiscard]] std::size_t pool_slots() const {
    return packet_pool_.size() + misc_pool_.size();
  }
  [[nodiscard]] std::size_t free_slots() const { return free_count_; }

  /// Runs the earliest event; advances the clock. Pre: !empty().
  void step();

  /// Batch delivery: drains every event at the earliest pending
  /// timestamp in one pass — including events that handlers schedule
  /// at that same (clamped) timestamp, which join the batch in
  /// sequence order. Returns the number executed. Pre: !empty().
  std::size_t step_batch();

  /// Runs events batch-wise until the queue drains or `deadline` is
  /// passed. Returns the number of events executed.
  std::uint64_t run(util::SimTime deadline = util::SimTime::far_future());

  /// Window drain for the sharded simulator: runs events strictly
  /// before `end` (exclusive) and stops without touching the clock
  /// otherwise. Unlike run(), never advances now() past the last
  /// executed event — the window loop owns clock advancement policy.
  std::uint64_t run_before(util::SimTime end);

  /// Earliest pending timestamp. Pre: !empty().
  [[nodiscard]] util::SimTime next_at() const { return peek_at(); }

 private:
  enum class Kind : std::uint32_t { deliver = 0, icmp = 1, timer = 2,
                                    closure = 3 };

  /// Packet-carrying pooled event (delivery or deferred ICMP). Kept in
  /// its own slab so the hot scan path never touches closure storage:
  /// the slot is ~2.5× smaller than a combined layout, which matters
  /// when a whole campaign is pending at once.
  struct PacketEvent {
    Packet pkt;
    HostId dst_host = kInvalidHost;
    util::Ipv4 router;
    Asn origin_as = 0;
    IcmpType icmp_type = IcmpType::ttl_exceeded;
    std::uint32_t next_free = kNilIndex;
  };

  /// Timer or legacy-closure pooled event.
  struct MiscEvent {
    Action closure;
    TimerTarget* timer = nullptr;
    std::uint64_t arg_a = 0;
    std::uint64_t arg_b = 0;
    std::uint32_t next_free = kNilIndex;
  };

  /// A cohort of events pending at one timestamp, in insertion
  /// (= sequence) order. Items carry the event kind in their top bits
  /// and the slab slot below (see pack_item). `head` advances as the
  /// batch drains; retired buckets keep their vector capacity on a
  /// freelist.
  struct Bucket {
    std::int64_t at_nanos = 0;
    std::size_t head = 0;
    std::uint32_t next_free = kNilIndex;
    std::vector<std::uint32_t> items;  // packed (kind, slot)
  };

  /// What the calendar heap orders: (timestamp, first event's seq).
  /// Several buckets may share a timestamp (cache eviction splits a
  /// cohort); appends only ever reach the *cached* bucket, so every
  /// event in an earlier bucket precedes every event in a later one
  /// and the (at, seq) tie-break restores the exact global order.
  struct TimeRef {
    std::int64_t at = 0;
    std::uint64_t seq = 0;
    std::uint32_t bucket = 0;
  };
  struct TimeLater {
    bool operator()(const TimeRef& a, const TimeRef& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  struct LegacyEntry {
    util::SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct LegacyLater {
    bool operator()(const LegacyEntry& a, const LegacyEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint32_t kNilIndex = 0xFFFFFFFFu;
  /// Cache empty-slot marker; unreachable as a timestamp because
  /// schedule clamps to now() >= 0.
  static constexpr std::int64_t kEmptyKey = INT64_MIN;
  static constexpr std::size_t kCacheSize = 256;  // direct-mapped, 4 KiB

  /// Open bucket per recently seen timestamp. An entry is written at
  /// bucket creation and precisely invalidated at retire, so it can
  /// never resurrect a recycled bucket.
  struct CacheEntry {
    std::int64_t at = kEmptyKey;
    std::uint32_t bucket = 0;
  };

  /// Clamps to "now": events cannot be scheduled in the past, and
  /// zero-delay sends keep FIFO order via bucket append order.
  [[nodiscard]] util::SimTime clamp(util::SimTime at) const {
    return at < now_ ? now_ : at;
  }
  [[nodiscard]] util::SimTime peek_at() const {
    return legacy_mode_ ? legacy_heap_.top().at
                        : util::SimTime::from_nanos(time_heap_.front().at);
  }
  [[nodiscard]] static std::size_t cache_slot(std::int64_t at) {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(at) * 0x9E3779B97F4A7C15ull) >> 56);
  }
  [[nodiscard]] static std::uint32_t pack_item(Kind kind,
                                               std::uint32_t slot) {
    return (static_cast<std::uint32_t>(kind) << 30) | slot;
  }
  std::uint32_t bucket_for(std::int64_t at_nanos);
  PacketEvent& acquire_packet(util::SimTime at, Kind kind);
  MiscEvent& acquire_misc(util::SimTime at, Kind kind);
  void release_packet(std::uint32_t slot);
  void release_misc(std::uint32_t slot);
  void dispatch(std::uint32_t item);
  void retire_top_bucket();

  std::vector<PacketEvent> packet_pool_;
  std::uint32_t packet_free_head_ = kNilIndex;
  std::vector<MiscEvent> misc_pool_;
  std::uint32_t misc_free_head_ = kNilIndex;
  std::size_t free_count_ = 0;

  std::vector<Bucket> buckets_;
  std::uint32_t free_bucket_head_ = kNilIndex;
  std::vector<TimeRef> time_heap_;  // via std::push_heap/pop_heap
  std::array<CacheEntry, kCacheSize> tcache_{};
  std::size_t pending_ = 0;

  std::priority_queue<LegacyEntry, std::vector<LegacyEntry>, LegacyLater>
      legacy_heap_;
  std::vector<DeliverItem> batch_scratch_;  // reused across cohorts
  PacketSink* sink_ = nullptr;
  bool legacy_mode_ = false;
  bool batch_enabled_ = true;
  util::SimTime now_ = util::SimTime::origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace odns::netsim
