#pragma once
// Discrete-event core: a time-ordered queue of closures. Ties are broken
// by insertion sequence so runs are exactly reproducible.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace odns::netsim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at`.
  void schedule_at(util::SimTime at, Action action);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] util::SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Runs the earliest event; advances the clock. Pre: !empty().
  void step();

  /// Runs events until the queue drains or `deadline` is passed.
  /// Returns the number of events executed.
  std::uint64_t run(util::SimTime deadline = util::SimTime::from_nanos(
                        std::int64_t{1} << 62));

 private:
  struct Entry {
    util::SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  util::SimTime now_ = util::SimTime::origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace odns::netsim
