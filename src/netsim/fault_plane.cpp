#include "netsim/fault_plane.hpp"

#include <algorithm>

#include "netsim/stateless.hpp"

namespace odns::netsim {

namespace {

/// The shared identity words: same folding as the loss decision, so a
/// packet's fault fates are pure functions of its content and send
/// instant. The domain separator keeps the fates decorrelated from
/// each other and from loss.
std::uint64_t fault_hash(std::uint64_t seed, std::uint64_t domain,
                         const Packet& pkt, util::SimTime at) {
  return stateless_decision(
      seed, domain, std::uint64_t{pkt.src.value()} << 32 | pkt.dst.value(),
      std::uint64_t{pkt.src_port} << 48 | std::uint64_t{pkt.dst_port} << 32 |
          static_cast<std::uint32_t>(pkt.ttl),
      static_cast<std::uint64_t>(at.nanos()) ^
          (std::uint64_t{static_cast<std::uint8_t>(pkt.proto)} << 56));
}

/// Probability compare against the top 53 bits, the same convention as
/// loss_drop (exact at rate 0 and 1, bias-free in between).
bool fires(std::uint64_t h, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  const auto threshold =
      static_cast<std::uint64_t>(rate * 9007199254740992.0);  // 2^53
  return (h >> 11) < threshold;
}

}  // namespace

void FaultPlane::configure(const FaultConfig& cfg, std::uint64_t seed,
                           util::Duration hop_latency) {
  cfg_ = cfg;
  seed_ = seed;
  hop_nanos_ = hop_latency.count_nanos();
  active_ = cfg_.any();
  if (cfg_.reorder_cohorts_max == 0) cfg_.reorder_cohorts_max = 1;
}

bool FaultPlane::in_outage(Asn asn, util::SimTime at) const {
  for (const auto& w : cfg_.outages) {
    if (w.asn == asn && at >= w.from && at < w.until) return true;
  }
  return false;
}

FaultSkew FaultPlane::delivery_skew(const Packet& pkt,
                                    util::SimTime sent_at) const {
  FaultSkew skew;
  if (cfg_.jitter_rate > 0.0 && cfg_.jitter_max > util::Duration::nanos(0)) {
    const std::uint64_t h = fault_hash(seed_, kJitterDomain, pkt, sent_at);
    if (fires(h, cfg_.jitter_rate)) {
      skew.jittered = true;
      // Magnitude from a second mix of the occurrence hash: uniform in
      // [1, jitter_max] nanoseconds, never zero (a zero draw would make
      // "jittered" unobservable).
      const auto span =
          static_cast<std::uint64_t>(cfg_.jitter_max.count_nanos());
      skew.extra = skew.extra + util::Duration::nanos(static_cast<std::int64_t>(
                                    1 + mix64(h) % span));
    }
  }
  if (cfg_.reorder_rate > 0.0 && hop_nanos_ > 0) {
    const std::uint64_t h = fault_hash(seed_, kReorderDomain, pkt, sent_at);
    if (fires(h, cfg_.reorder_rate)) {
      skew.reordered = true;
      // Whole hop latencies push the packet past its same-instant
      // cohort — and past any in-between cohorts — so later traffic
      // provably overtakes it.
      const auto cohorts = 1 + mix64(h) % cfg_.reorder_cohorts_max;
      skew.extra = skew.extra + util::Duration::nanos(static_cast<std::int64_t>(
                                    cohorts) * hop_nanos_);
    }
  }
  return skew;
}

bool FaultPlane::duplicate(const Packet& pkt, util::SimTime sent_at) const {
  if (cfg_.dup_rate <= 0.0) return false;
  return fires(fault_hash(seed_, kDupDomain, pkt, sent_at), cfg_.dup_rate);
}

bool FaultPlane::corrupt_payload(Packet& pkt, util::SimTime sent_at) const {
  if (cfg_.corrupt_rate <= 0.0 || pkt.proto != Protocol::udp ||
      pkt.payload.empty()) {
    return false;
  }
  const std::uint64_t h = fault_hash(seed_, kCorruptDomain, pkt, sent_at);
  if (!fires(h, cfg_.corrupt_rate)) return false;
  const std::uint64_t m = mix64(h);
  const std::size_t pos = m % pkt.payload.size();
  // Guaranteed-nonzero xor: the byte always changes, so a corruption
  // decision is always observable on the wire.
  pkt.payload[pos] ^= static_cast<std::uint8_t>(1 + (m >> 32) % 255);
  return true;
}

bool FaultPlane::allow_unreachable(std::size_t as_index, util::SimTime at) {
  Bucket& b = buckets_[as_index];
  const std::int64_t t = at.nanos();
  const double rate = cfg_.unreachable_per_second;
  const double burst = std::max(1.0, rate);
  if (b.last_ns != t) {
    // First touch at this instant: refill (a fresh bucket starts
    // full), then freeze the verdict for the whole instant. Admitted
    // emissions below still consume tokens, so an instant can drive
    // the bucket into bounded debt — repaid by elapsed time — but the
    // verdict, and with it every packet's fate, is independent of the
    // order same-instant emissions interleave in.
    if (b.last_ns < 0) {
      b.tokens = burst;
    } else {
      b.tokens = std::min(
          burst, b.tokens + static_cast<double>(t - b.last_ns) * rate * 1e-9);
    }
    b.last_ns = t;
    b.verdict = b.tokens >= 1.0;
  }
  if (b.verdict) b.tokens -= 1.0;
  return b.verdict;
}

}  // namespace odns::netsim
