#pragma once
// Adverse-network fault plane: bounded delivery jitter, reordering,
// packet duplication, payload corruption, scheduled AS outage windows,
// and rate-limited ICMP unreachable emission. Every stochastic choice
// is a stateless_decision over (seed, fault domain, packet identity,
// send instant) — never an RNG stream — so a faulted run makes the
// identical per-packet choices for every shard count, thread mode, and
// event interleaving, and the zero-fault configuration is byte-
// identical to a simulator without the plane. See "Fault plane &
// graceful degradation" in docs/architecture.md.

#include <cstdint>
#include <vector>

#include "netsim/packet.hpp"
#include "util/time.hpp"

namespace odns::netsim {

/// One scheduled dark window: the AS neither sends nor receives while
/// `from <= t < until` (origin-side sends are dropped at the send
/// instant, destination-side arrivals at the would-be delivery
/// instant). Windows model an eyeball AS going dark mid-census and
/// recovering; multiple windows per AS are allowed.
struct OutageWindow {
  Asn asn = 0;
  util::SimTime from;
  util::SimTime until;
};

/// SimConfig-sweepable fault knobs. All rates are per-packet
/// probabilities in [0, 1]; zero everywhere (the default) disables the
/// plane entirely — inject() takes the exact pre-fault-plane path.
struct FaultConfig {
  /// Probability a delivered packet is jittered; extra delay is drawn
  /// uniformly from (0, jitter_max].
  double jitter_rate = 0.0;
  util::Duration jitter_max = util::Duration::millis(10);
  /// Probability a delivered packet is additionally delayed past its
  /// same-instant cohort: 1..reorder_cohorts_max extra hop latencies,
  /// so it overtakes nothing but is overtaken — observable reordering
  /// without violating the conservative-window contract (skew only
  /// ever adds delay).
  double reorder_rate = 0.0;
  std::uint32_t reorder_cohorts_max = 4;
  /// Probability a delivered packet arrives twice (the copy lands one
  /// hop latency after the original, sharing its corruption fate).
  double dup_rate = 0.0;
  /// Probability one payload byte of a delivered UDP packet is
  /// flipped (feeding the dnswire fuzz-hardened decode path).
  double corrupt_rate = 0.0;
  /// Scheduled dark windows, checked per packet against origin and
  /// destination AS.
  std::vector<OutageWindow> outages;
  /// Dark-AS border routers answer undeliverable traffic with ICMP
  /// host-unreachable, rate-limited per AS by a deterministic token
  /// bucket at this refill rate (burst = max(1, rate)). 0 = dark ASes
  /// drop silently (no unreachable emission at all).
  double unreachable_per_second = 0.0;

  [[nodiscard]] bool any() const {
    return jitter_rate > 0.0 || reorder_rate > 0.0 || dup_rate > 0.0 ||
           corrupt_rate > 0.0 || !outages.empty();
  }
};

/// Skew verdict for one delivered packet: `extra` is always >= 0, so
/// the base delivery instant (already one full hop latency ahead of
/// any cross-shard boundary) stays conservative-window safe.
struct FaultSkew {
  util::Duration extra = util::Duration::nanos(0);
  bool jittered = false;
  bool reordered = false;
};

class FaultPlane {
 public:
  /// Binds the plane to a simulator's seed and hop latency. Call
  /// before any packet moves (Simulator's constructor does) or between
  /// runs; reconfiguring mid-run would change in-flight decisions.
  void configure(const FaultConfig& cfg, std::uint64_t seed,
                 util::Duration hop_latency);

  /// True when any fault knob is live — the inject() fast-path gate
  /// that keeps the zero-fault configuration byte-identical to an
  /// engine without the plane.
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] const FaultConfig& config() const { return cfg_; }

  /// Whether `asn` is inside a scheduled dark window at `at`.
  [[nodiscard]] bool in_outage(Asn asn, util::SimTime at) const;

  /// Jitter + reorder delay for one delivered packet, keyed on the
  /// packet identity and its send instant.
  [[nodiscard]] FaultSkew delivery_skew(const Packet& pkt,
                                        util::SimTime sent_at) const;

  /// Whether the packet is delivered twice.
  [[nodiscard]] bool duplicate(const Packet& pkt, util::SimTime sent_at) const;

  /// Flips one payload byte in place when the corruption decision
  /// fires (UDP with a non-empty payload only); returns whether it did.
  [[nodiscard]] bool corrupt_payload(Packet& pkt, util::SimTime sent_at) const;

  // --- ICMP unreachable rate limiting --------------------------------
  // Deterministic per-AS token bucket in the RRL style: the admission
  // verdict is fixed when the bucket first refills at an instant, and
  // every admitted emission consumes one token (debt within the
  // instant is bounded by the instant's attempts) — so same-instant
  // admissions are order-independent and shard-count-invariant. Each
  // bucket is only ever touched by the AS's owning shard; sharded runs
  // presize the table at partition freeze (resize_buckets).
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  void resize_buckets(std::size_t as_count) {
    if (buckets_.size() < as_count) buckets_.resize(as_count);
  }
  /// Admission decision for one host-unreachable emission by AS index.
  [[nodiscard]] bool allow_unreachable(std::size_t as_index, util::SimTime at);

 private:
  FaultConfig cfg_;
  std::uint64_t seed_ = 0;
  std::int64_t hop_nanos_ = 0;
  bool active_ = false;

  struct Bucket {
    std::int64_t last_ns = -1;  // -1 = untouched (starts full)
    double tokens = 0.0;
    bool verdict = false;
  };
  std::vector<Bucket> buckets_;
};

}  // namespace odns::netsim
