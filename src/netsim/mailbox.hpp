#pragma once
// Cross-shard transport for the sharded simulator: one single-producer
// single-consumer mailbox per ordered shard pair (src -> dst). During
// a conservative time window the source shard pushes packet events
// whose destination host lives on another shard; at the window barrier
// the destination shard drains every incoming mailbox in fixed source
// order (shard 0, 1, 2, ...), which — together with each mailbox's
// FIFO order — makes cross-shard admission deterministic regardless of
// thread scheduling. docs/event-engine.md ("Cross-shard merge rule")
// states the resulting total order.
//
// The ring is fixed-capacity (SimConfig::mailbox_capacity). The
// backpressure policy is *spill, never block and never drop*: once the
// ring is full (or has ever been bypassed this window), the producer
// appends to a producer-owned overflow vector that the consumer drains
// after the ring at the barrier. Blocking the producer could deadlock
// the window barrier, and dropping would violate determinism; the
// spill count is surfaced via ShardStats::mailbox_overflows so
// capacity tuning is observable.

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "netsim/packet.hpp"
#include "util/time.hpp"

namespace odns::netsim {

/// One cross-shard event in flight: either a packet delivery or a
/// deferred ICMP generation, tagged with its absolute arrival time.
struct MailboxMsg {
  enum class Kind : std::uint8_t { deliver, icmp };
  Kind kind = Kind::deliver;
  IcmpType icmp_type = IcmpType::ttl_exceeded;
  util::SimTime at;
  HostId dst_host = kInvalidHost;
  util::Ipv4 router;
  Asn origin_as = 0;
  Packet pkt;
};

class SpscMailbox {
 public:
  void reset(std::size_t capacity) {
    // One slot is the ring's full/empty sentinel, so allocate
    // capacity + 1: the configured capacity is exactly the number of
    // messages that fit before the overflow spill engages.
    ring_.assign((capacity == 0 ? 1 : capacity) + 1, MailboxMsg{});
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
    overflow_.clear();
    pushed_ = 0;
    overflowed_ = 0;
  }

  /// Producer side (source shard thread only).
  void push(MailboxMsg&& msg) {
    ++pushed_;
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) % ring_.size();
    // FIFO across ring + spill: once anything spilled this window, all
    // later messages must spill too, or drain order would reorder them.
    if (!overflow_.empty() || next == head_.load(std::memory_order_acquire)) {
      ++overflowed_;
      overflow_.push_back(std::move(msg));
      return;
    }
    ring_[tail] = std::move(msg);
    tail_.store(next, std::memory_order_release);
  }

  /// Consumer side (destination shard, at the window barrier). Applies
  /// `fn` to every pending message in FIFO order and empties the box.
  template <typename Fn>
  void drain(Fn&& fn) {
    std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    while (head != tail) {
      fn(std::move(ring_[head]));
      head = (head + 1) % ring_.size();
    }
    head_.store(head, std::memory_order_release);
    // The overflow vector is producer-written during the window and
    // consumer-read here; the phase barrier between those two accesses
    // is the synchronization point.
    for (auto& msg : overflow_) fn(std::move(msg));
    overflow_.clear();
  }

  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire) &&
           overflow_.empty();
  }
  [[nodiscard]] std::uint64_t pushed() const { return pushed_; }
  [[nodiscard]] std::uint64_t overflowed() const { return overflowed_; }

 private:
  std::vector<MailboxMsg> ring_;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
  std::vector<MailboxMsg> overflow_;
  std::uint64_t pushed_ = 0;
  std::uint64_t overflowed_ = 0;
};

}  // namespace odns::netsim
