#include "netsim/network.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <stdexcept>

namespace odns::netsim {

namespace {
// Router interface addresses are carved from 100.64.0.0/10 (the CGNAT
// shared range), which the topology generator never assigns to hosts.
constexpr util::Ipv4 kRouterPoolBase{100, 64, 0, 1};
constexpr std::uint32_t kRouterPoolLimit =
    (std::uint32_t{100} << 24 | 128u << 16) - 1;  // end of 100.64/10
}  // namespace

Network::Network() : next_router_ip_(kRouterPoolBase) {}

util::Ipv4 Network::allocate_router_ip() {
  if (next_router_ip_.value() >= kRouterPoolLimit) {
    throw std::runtime_error("router IP pool exhausted");
  }
  auto ip = next_router_ip_;
  next_router_ip_ = next_router_ip_.next();
  return ip;
}

AsInfo& Network::add_as(const AsConfig& cfg) {
  assert(cfg.internal_hops >= 1);
  if (asn_to_index_.contains(cfg.asn)) {
    throw std::invalid_argument("duplicate ASN " + std::to_string(cfg.asn));
  }
  asn_to_index_.emplace(cfg.asn, static_cast<std::uint32_t>(ases_.size()));
  asn_order_.push_back(cfg.asn);
  auto& info = ases_.emplace_back();
  info.cfg = cfg;
  info.router_ips.reserve(static_cast<std::size_t>(cfg.internal_hops));
  for (int i = 0; i < cfg.internal_hops; ++i) {
    auto ip = allocate_router_ip();
    info.router_ips.push_back(ip);
    router_ip_owner_.emplace(ip, cfg.asn);
  }
  ++graph_epoch_;
  bump_epoch();
  return info;
}

void Network::link(Asn a, Asn b) {
  auto* ia = find_as_mutable(a);
  auto* ib = find_as_mutable(b);
  if (ia == nullptr || ib == nullptr) {
    throw std::invalid_argument("link between unknown ASNs");
  }
  if (a == b) return;
  if (std::find(ia->neighbors.begin(), ia->neighbors.end(), b) ==
      ia->neighbors.end()) {
    ia->neighbors.push_back(b);
    ib->neighbors.push_back(a);
    ++graph_epoch_;
    bump_epoch();
  }
}

void Network::announce(Asn asn, Prefix4 prefix) {
  auto* info = find_as_mutable(asn);
  if (info == nullptr) throw std::invalid_argument("announce: unknown ASN");
  info->owned.push_back(prefix);
  // Deliberately conservative: cached routes never read announced
  // prefixes today, but "every topology mutation bumps the epoch" is a
  // simpler invariant to rely on than tracking which mutations the
  // route computation happens to consume.
  bump_epoch();
}

HostId Network::add_host(Asn asn, std::vector<util::Ipv4> addrs) {
  auto* info = find_as_mutable(asn);
  if (info == nullptr) throw std::invalid_argument("add_host: unknown ASN");
  const auto id = static_cast<HostId>(hosts_.size());
  auto& h = hosts_.emplace_back();
  h.id = id;
  h.asn = asn;
  h.addrs = std::move(addrs);
  for (auto a : h.addrs) {
    auto [it, inserted] = addr_to_host_.emplace(a, id);
    if (!inserted) {
      throw std::invalid_argument("address already assigned: " + a.to_string());
    }
  }
  info->hosts.push_back(id);
  bump_epoch();
  return id;
}

void Network::add_host_address(HostId id, util::Ipv4 addr) {
  auto [it, inserted] = addr_to_host_.emplace(addr, id);
  if (!inserted) {
    throw std::invalid_argument("address already assigned: " + addr.to_string());
  }
  hosts_[id].addrs.push_back(addr);
  bump_epoch();
}

void Network::join_anycast(util::Ipv4 addr, HostId host) {
  anycast_[addr].push_back(host);
  bump_epoch();
}

const AsInfo* Network::find_as(Asn asn) const {
  auto it = asn_to_index_.find(asn);
  return it == asn_to_index_.end() ? nullptr : &ases_[it->second];
}

AsInfo* Network::find_as_mutable(Asn asn) {
  auto it = asn_to_index_.find(asn);
  return it == asn_to_index_.end() ? nullptr : &ases_[it->second];
}

std::size_t Network::as_index(Asn asn) const {
  auto it = asn_to_index_.find(asn);
  assert(it != asn_to_index_.end());
  return it->second;
}

HostId Network::unicast_owner(util::Ipv4 addr) const {
  auto it = addr_to_host_.find(addr);
  return it == addr_to_host_.end() ? kInvalidHost : it->second;
}

bool Network::is_anycast(util::Ipv4 addr) const {
  return anycast_.contains(addr);
}

HostId Network::resolve_destination(util::Ipv4 addr, Asn from_as) const {
  return resolve_destination(default_cache_, addr, from_as);
}

HostId Network::resolve_destination(RouteCache& cache, util::Ipv4 addr,
                                    Asn from_as) const {
  if (auto it = anycast_.find(addr); it != anycast_.end()) {
    // Nearest-PoP selection: the anycast member whose AS is fewest AS
    // hops from the source, ties broken by member order (deterministic).
    HostId best = kInvalidHost;
    int best_dist = std::numeric_limits<int>::max();
    for (HostId member : it->second) {
      const int d = as_distance(cache, from_as, hosts_[member].asn);
      if (d >= 0 && d < best_dist) {
        best_dist = d;
        best = member;
      }
    }
    return best;
  }
  return unicast_owner(addr);
}

std::optional<Asn> Network::router_owner(util::Ipv4 addr) const {
  auto it = router_ip_owner_.find(addr);
  if (it == router_ip_owner_.end()) return std::nullopt;
  return it->second;
}

bool Network::owns_source(const AsInfo& info, util::Ipv4 src) {
  return std::any_of(info.owned.begin(), info.owned.end(),
                     [src](const Prefix4& p) { return p.contains(src); });
}

bool Network::source_is_legitimate(Asn asn, util::Ipv4 src) const {
  const auto* info = find_as(asn);
  if (info == nullptr) return false;
  return owns_source(*info, src);
}

const RouteCache::BfsEntry& Network::bfs_for(RouteCache& cache,
                                             Asn src) const {
  auto& entry = cache.bfs[src];
  if (entry.graph_epoch == graph_epoch_) return entry;

  constexpr auto kUnreached = std::numeric_limits<std::uint16_t>::max();
  entry.graph_epoch = graph_epoch_;
  entry.dist.assign(ases_.size(), kUnreached);
  entry.parent.assign(ases_.size(), 0xFFFFFFFFu);
  std::deque<std::uint32_t> queue;
  const auto s = static_cast<std::uint32_t>(as_index(src));
  entry.dist[s] = 0;
  queue.push_back(s);
  while (!queue.empty()) {
    const auto u = queue.front();
    queue.pop_front();
    for (Asn nb : ases_[u].neighbors) {
      const auto v = static_cast<std::uint32_t>(as_index(nb));
      if (entry.dist[v] == kUnreached) {
        entry.dist[v] = static_cast<std::uint16_t>(entry.dist[u] + 1);
        entry.parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  return entry;
}

int Network::as_distance(Asn from, Asn to) const {
  return as_distance(default_cache_, from, to);
}

int Network::as_distance(RouteCache& cache, Asn from, Asn to) const {
  if (!asn_to_index_.contains(from) || !asn_to_index_.contains(to)) return -1;
  const auto& bfs = bfs_for(cache, from);
  const auto d = bfs.dist[as_index(to)];
  return d == std::numeric_limits<std::uint16_t>::max() ? -1 : d;
}

std::vector<Asn> Network::as_path(RouteCache& cache, Asn from, Asn to) const {
  const auto& bfs = bfs_for(cache, from);
  const auto t = as_index(to);
  if (bfs.dist[t] == std::numeric_limits<std::uint16_t>::max()) return {};
  std::vector<Asn> rev;
  for (auto cur = static_cast<std::uint32_t>(t); cur != 0xFFFFFFFFu;
       cur = bfs.parent[cur]) {
    rev.push_back(ases_[cur].cfg.asn);
    if (ases_[cur].cfg.asn == from) break;
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

std::optional<Route> Network::route(HostId from, util::Ipv4 dst) const {
  return route_from_as(hosts_[from].asn, dst);
}

std::shared_ptr<const PathSpan> Network::build_span(RouteCache& cache,
                                                    Asn from, Asn to) const {
  auto span = std::make_shared<PathSpan>();
  span->as_path = as_path(cache, from, to);
  if (span->as_path.empty()) return nullptr;
  std::size_t total = 0;
  for (Asn asn : span->as_path) total += ases_[as_index(asn)].router_ips.size();
  span->router_hops.reserve(total);
  for (Asn asn : span->as_path) {
    const auto& info = ases_[as_index(asn)];
    span->router_hops.insert(span->router_hops.end(), info.router_ips.begin(),
                             info.router_ips.end());
  }
  return span;
}

std::shared_ptr<const PathSpan> Network::span_for(RouteCache& cache, Asn from,
                                                  Asn to) const {
  const auto key = static_cast<std::uint64_t>(as_index(from)) << 32 |
                   static_cast<std::uint64_t>(as_index(to));
  auto& entry = cache.spans[key];
  if (entry.epoch != epoch_) {
    entry.epoch = epoch_;
    entry.span = build_span(cache, from, to);
  }
  return entry.span;
}

void Network::compute_route(RouteCache& cache, RouteCache::RouteEntry& entry,
                            Asn from, util::Ipv4 dst) const {
  entry.epoch = epoch_;
  entry.span = nullptr;
  entry.dst_host = resolve_destination(cache, dst, from);
  if (entry.dst_host == kInvalidHost) return;
  const Asn dst_as = hosts_[entry.dst_host].asn;
  entry.span = route_cache_enabled_ ? span_for(cache, from, dst_as)
                                    : build_span(cache, from, dst_as);
}

const RouteCache::RouteEntry& Network::lookup_route(RouteCache& cache,
                                                    Asn from,
                                                    util::Ipv4 dst) const {
  if (!route_cache_enabled_) {
    compute_route(cache, cache.scratch, from, dst);
    return cache.scratch;
  }
  const auto key = static_cast<std::uint64_t>(from) << 32 |
                   static_cast<std::uint64_t>(dst.value());
  auto [it, inserted] = cache.routes.try_emplace(key);
  RouteCache::RouteEntry& entry = it->second;
  if (!inserted && entry.epoch == epoch_) {
    ++cache.stats.hits;
    return entry;
  }
  if (!inserted) ++cache.stats.stale_evictions;
  ++cache.stats.misses;
  compute_route(cache, entry, from, dst);
  return entry;
}

std::optional<RouteView> Network::route_view(Asn from, util::Ipv4 dst) const {
  return route_view(default_cache_, from, dst);
}

std::optional<RouteView> Network::route_view(RouteCache& cache, Asn from,
                                             util::Ipv4 dst) const {
  const RouteCache::RouteEntry& entry = lookup_route(cache, from, dst);
  if (entry.span == nullptr) return std::nullopt;
  return RouteView{&entry.span->router_hops, &entry.span->as_path,
                   entry.dst_host};
}

std::optional<Route> Network::route_from_as(Asn from, util::Ipv4 dst) const {
  const auto view = route_view(from, dst);
  if (!view) return std::nullopt;
  Route r;
  r.router_hops = *view->router_hops;
  r.as_path = *view->as_path;
  r.dst_host = view->dst_host;
  return r;
}

std::vector<std::pair<Prefix4, Asn>> Network::announced_prefixes() const {
  std::vector<std::pair<Prefix4, Asn>> out;
  for (const auto& info : ases_) {
    for (const auto& p : info.owned) out.emplace_back(p, info.cfg.asn);
  }
  return out;
}

}  // namespace odns::netsim
