#include "netsim/network.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <deque>
#include <limits>
#include <stdexcept>

namespace odns::netsim {

namespace {
// Router interface addresses are carved from 100.64.0.0/10 (the CGNAT
// shared range), which the topology generator never assigns to hosts.
constexpr util::Ipv4 kRouterPoolBase{100, 64, 0, 1};
constexpr std::uint32_t kRouterPoolLimit =
    (std::uint32_t{100} << 24 | 128u << 16) - 1;  // end of 100.64/10
constexpr std::uint32_t kNoRouterOwner = 0xFFFFFFFFu;

// Tail merge threshold. Below it, adds are duplicate-checked eagerly
// (binary search of the frozen table + a linear tail scan) and lookups
// scan the tail; above it — a bulk build in progress — both defer to
// the sort in freeze_addr_plane(), which detects duplicates as sorted
// neighbours. Bulk population therefore costs one O(n log n) sort
// total instead of a per-add structure update.
constexpr std::size_t kAddrTailMerge = 1024;

// Fibonacci-multiplicative hash for the open-addressed probe index;
// the top bits index the power-of-2 slot array (shift = 64 - log2 cap).
constexpr std::size_t addr_slot_home(util::Ipv4 addr, std::uint32_t shift) {
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(addr.value()) * 0x9E3779B97F4A7C15ull) >>
      shift);
}
}  // namespace

Network::Network() : next_router_ip_(kRouterPoolBase) {}

util::Ipv4 Network::allocate_router_ip() {
  if (next_router_ip_.value() >= kRouterPoolLimit) {
    throw std::runtime_error("router IP pool exhausted");
  }
  auto ip = next_router_ip_;
  next_router_ip_ = next_router_ip_.next();
  return ip;
}

AsInfo& Network::add_as(const AsConfig& cfg) {
  assert(cfg.internal_hops >= 1);
  if (asn_to_index_.contains(cfg.asn)) {
    throw std::invalid_argument("duplicate ASN " + std::to_string(cfg.asn));
  }
  const auto as_idx = static_cast<std::uint32_t>(ases_.size());
  asn_to_index_.emplace(cfg.asn, as_idx);
  asn_order_.push_back(cfg.asn);
  auto& info = ases_.emplace_back();
  info.cfg = cfg;
  info.router_ips.reserve(static_cast<std::size_t>(cfg.internal_hops));
  for (int i = 0; i < cfg.internal_hops; ++i) {
    auto ip = allocate_router_ip();
    info.router_ips.push_back(ip);
    // Sequential allocation keeps the owner table dense: the slot for
    // `ip` is exactly the next one.
    router_owner_.push_back(as_idx);
  }
  ++graph_epoch_;
  bump_epoch();
  return info;
}

void Network::link(Asn a, Asn b) {
  auto* ia = find_as_mutable(a);
  auto* ib = find_as_mutable(b);
  if (ia == nullptr || ib == nullptr) {
    throw std::invalid_argument("link between unknown ASNs");
  }
  if (a == b) return;
  if (std::find(ia->neighbors.begin(), ia->neighbors.end(), b) ==
      ia->neighbors.end()) {
    ia->neighbors.push_back(b);
    ib->neighbors.push_back(a);
    ++graph_epoch_;
    bump_epoch();
  }
}

void Network::announce(Asn asn, Prefix4 prefix) {
  auto* info = find_as_mutable(asn);
  if (info == nullptr) throw std::invalid_argument("announce: unknown ASN");
  info->owned.push_back(prefix);
  // Deliberately conservative: cached routes never read announced
  // prefixes today, but "every topology mutation bumps the epoch" is a
  // simpler invariant to rely on than tracking which mutations the
  // route computation happens to consume.
  bump_epoch();
}

void Network::index_address(util::Ipv4 addr, HostId id) {
  if (!flat_addr_plane_) {
    auto [it, inserted] = addr_to_host_.emplace(addr, id);
    if (!inserted) {
      throw std::invalid_argument("address already assigned: " + addr.to_string());
    }
    return;
  }
  if (addr_tail_.size() < kAddrTailMerge) {
    // Affordable eager duplicate check; past the threshold (bulk
    // build) it is deferred to the freeze-time sort.
    bool dup = frozen_owner(addr) != kInvalidHost;
    for (const auto& [a, h] : addr_tail_) dup = dup || a == addr;
    if (dup) {
      throw std::invalid_argument("address already assigned: " + addr.to_string());
    }
  }
  addr_tail_.emplace_back(addr, id);
}

HostId Network::add_host(Asn asn, std::span<const util::Ipv4> addrs) {
  auto* info = find_as_mutable(asn);
  if (info == nullptr) throw std::invalid_argument("add_host: unknown ASN");
  const auto id = static_cast<HostId>(hosts_.size());
  auto& h = hosts_.emplace_back();
  h.id = id;
  h.asn = asn;
  h.addr_off = static_cast<std::uint32_t>(addr_pool_.size());
  h.addr_count = static_cast<std::uint32_t>(addrs.size());
  addr_pool_.insert(addr_pool_.end(), addrs.begin(), addrs.end());
  try {
    for (auto a : addrs) index_address(a, id);
  } catch (...) {
    // Keep the strong guarantee the map-based plane offered: a
    // duplicate address leaves no phantom host behind.
    addr_pool_.resize(h.addr_off);
    hosts_.pop_back();
    while (!addr_tail_.empty() && addr_tail_.back().second == id) {
      addr_tail_.pop_back();
    }
    for (auto a : addrs) {
      if (auto it = addr_to_host_.find(a);
          it != addr_to_host_.end() && it->second == id) {
        addr_to_host_.erase(it);
      }
    }
    throw;
  }
  info->hosts.push_back(id);
  bump_epoch();
  return id;
}

void Network::add_host_address(HostId id, util::Ipv4 addr) {
  index_address(addr, id);
  Host& h = hosts_[id];
  if (h.addr_off + h.addr_count == addr_pool_.size()) {
    // Host owns the pool's end — extend its span in place.
    addr_pool_.push_back(addr);
  } else {
    // Relocate the host's span to the end (leaves a small hole; this
    // path only runs for interactive post-construction edits).
    const auto new_off = static_cast<std::uint32_t>(addr_pool_.size());
    for (std::uint32_t i = 0; i < h.addr_count; ++i) {
      addr_pool_.push_back(addr_pool_[h.addr_off + i]);
    }
    addr_pool_.push_back(addr);
    h.addr_off = new_off;
  }
  ++h.addr_count;
  bump_epoch();
}

void Network::join_anycast(util::Ipv4 addr, HostId host) {
  // Insert before the first entry of a greater address: groups stay
  // sorted by address while members keep insertion order (the
  // nearest-PoP tie-break).
  const auto it = std::upper_bound(
      anycast_.begin(), anycast_.end(), addr,
      [](util::Ipv4 a, const auto& e) { return a < e.first; });
  anycast_.emplace(it, addr, host);
  bump_epoch();
}

const AsInfo* Network::find_as(Asn asn) const {
  auto it = asn_to_index_.find(asn);
  return it == asn_to_index_.end() ? nullptr : &ases_[it->second];
}

AsInfo* Network::find_as_mutable(Asn asn) {
  auto it = asn_to_index_.find(asn);
  return it == asn_to_index_.end() ? nullptr : &ases_[it->second];
}

std::size_t Network::as_index(Asn asn) const {
  auto it = asn_to_index_.find(asn);
  assert(it != asn_to_index_.end());
  return it->second;
}

void Network::freeze_addr_plane() const {
  if (addr_tail_.empty()) return;
  addr_index_.insert(addr_index_.end(), addr_tail_.begin(), addr_tail_.end());
  addr_tail_.clear();
  addr_tail_.shrink_to_fit();
  std::sort(addr_index_.begin(), addr_index_.end());
  for (std::size_t i = 1; i < addr_index_.size(); ++i) {
    if (addr_index_[i].first == addr_index_[i - 1].first) {
      // Bulk adds past the tail threshold defer their duplicate check
      // to this sort (same contract, detected at freeze).
      throw std::invalid_argument("address already assigned: " +
                                  addr_index_[i].first.to_string());
    }
  }
  addr_freeze_epoch_ = epoch_;
  rebuild_addr_slots();
}

void Network::rebuild_addr_slots() const {
  // Capacity ≥ 2× entries keeps the load factor at or below 0.5, so a
  // probe chain is 1.5 slots on average — one expected cache miss per
  // point lookup, which is where the flat plane beats both the binary
  // search (log n misses) and the node-based map (pointer chase).
  std::size_t cap = std::bit_ceil(
      std::max<std::size_t>(16, addr_index_.size() * 2));
  addr_slots_.assign(cap, {util::Ipv4{}, kInvalidHost});
  addr_slots_shift_ =
      64u - static_cast<std::uint32_t>(std::countr_zero(cap));
  const std::size_t mask = cap - 1;
  for (const auto& entry : addr_index_) {
    std::size_t slot = addr_slot_home(entry.first, addr_slots_shift_);
    while (addr_slots_[slot].second != kInvalidHost) {
      slot = (slot + 1) & mask;
    }
    addr_slots_[slot] = entry;
  }
}

HostId Network::frozen_owner(util::Ipv4 addr) const {
  if (addr_slots_.empty()) return kInvalidHost;
  const std::size_t mask = addr_slots_.size() - 1;
  std::size_t slot = addr_slot_home(addr, addr_slots_shift_);
  // Emptiness is flagged by the host sentinel alone, never by the
  // address value — 0.0.0.0 is a legal (if odd) probe target.
  while (addr_slots_[slot].second != kInvalidHost) {
    if (addr_slots_[slot].first == addr) return addr_slots_[slot].second;
    slot = (slot + 1) & mask;
  }
  return kInvalidHost;
}

HostId Network::unicast_owner(util::Ipv4 addr) const {
  if (!flat_addr_plane_) {
    auto it = addr_to_host_.find(addr);
    return it == addr_to_host_.end() ? kInvalidHost : it->second;
  }
  if (!addr_tail_.empty()) {
    if (addr_tail_.size() >= kAddrTailMerge) {
      freeze_addr_plane();
    } else {
      for (const auto& [a, h] : addr_tail_) {
        if (a == addr) return h;
      }
    }
  }
  return frozen_owner(addr);
}

bool Network::is_anycast(util::Ipv4 addr) const {
  const auto it = std::lower_bound(
      anycast_.begin(), anycast_.end(), addr,
      [](const auto& e, util::Ipv4 a) { return e.first < a; });
  return it != anycast_.end() && it->first == addr;
}

HostId Network::resolve_destination(util::Ipv4 addr, Asn from_as) const {
  return resolve_destination(default_cache_, addr, from_as);
}

HostId Network::resolve_destination(RouteCache& cache, util::Ipv4 addr,
                                    Asn from_as) const {
  const auto first = std::lower_bound(
      anycast_.begin(), anycast_.end(), addr,
      [](const auto& e, util::Ipv4 a) { return e.first < a; });
  if (first != anycast_.end() && first->first == addr) {
    // Nearest-PoP selection: the anycast member whose AS is fewest AS
    // hops from the source, ties broken by member order (deterministic).
    HostId best = kInvalidHost;
    int best_dist = std::numeric_limits<int>::max();
    for (auto it = first; it != anycast_.end() && it->first == addr; ++it) {
      const int d = as_distance(cache, from_as, hosts_[it->second].asn);
      if (d >= 0 && d < best_dist) {
        best_dist = d;
        best = it->second;
      }
    }
    return best;
  }
  return unicast_owner(addr);
}

std::optional<Asn> Network::router_owner(util::Ipv4 addr) const {
  if (addr.value() < kRouterPoolBase.value()) return std::nullopt;
  const std::uint32_t slot = addr.value() - kRouterPoolBase.value();
  if (slot >= router_owner_.size()) return std::nullopt;
  const std::uint32_t as_idx = router_owner_[slot];
  if (as_idx == kNoRouterOwner) return std::nullopt;
  return ases_[as_idx].cfg.asn;
}

bool Network::owns_source(const AsInfo& info, util::Ipv4 src) {
  return std::any_of(info.owned.begin(), info.owned.end(),
                     [src](const Prefix4& p) { return p.contains(src); });
}

bool Network::source_is_legitimate(Asn asn, util::Ipv4 src) const {
  const auto* info = find_as(asn);
  if (info == nullptr) return false;
  return owns_source(*info, src);
}

const RouteCache::BfsEntry& Network::bfs_for(RouteCache& cache,
                                             Asn src) const {
  auto [bfs_it, bfs_inserted] = cache.bfs.try_emplace(src);
  auto& entry = bfs_it->second;
  if (!bfs_inserted && entry.graph_epoch == graph_epoch_) return entry;
  if (bfs_inserted) {
    // FIFO bound: evict the oldest source AS once over the cap. Only
    // scratch is dropped — route/span entries derived from it stay
    // cached — and a re-missed source recomputes identically.
    cache.bfs_order.push_back(src);
    while (cache.bfs.size() > RouteCache::kMaxBfsEntries) {
      const Asn victim = cache.bfs_order.front();
      cache.bfs_order.pop_front();
      if (victim != src) cache.bfs.erase(victim);
    }
  }

  constexpr auto kUnreached = std::numeric_limits<std::uint16_t>::max();
  entry.graph_epoch = graph_epoch_;
  entry.dist.assign(ases_.size(), kUnreached);
  entry.parent.assign(ases_.size(), 0xFFFFFFFFu);
  std::deque<std::uint32_t> queue;
  const auto s = static_cast<std::uint32_t>(as_index(src));
  entry.dist[s] = 0;
  queue.push_back(s);
  while (!queue.empty()) {
    const auto u = queue.front();
    queue.pop_front();
    for (Asn nb : ases_[u].neighbors) {
      const auto v = static_cast<std::uint32_t>(as_index(nb));
      if (entry.dist[v] == kUnreached) {
        entry.dist[v] = static_cast<std::uint16_t>(entry.dist[u] + 1);
        entry.parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  return entry;
}

int Network::as_distance(Asn from, Asn to) const {
  return as_distance(default_cache_, from, to);
}

int Network::as_distance(RouteCache& cache, Asn from, Asn to) const {
  if (!asn_to_index_.contains(from) || !asn_to_index_.contains(to)) return -1;
  const auto& bfs = bfs_for(cache, from);
  const auto d = bfs.dist[as_index(to)];
  return d == std::numeric_limits<std::uint16_t>::max() ? -1 : d;
}

std::vector<Asn> Network::as_path(RouteCache& cache, Asn from, Asn to) const {
  const auto& bfs = bfs_for(cache, from);
  const auto t = as_index(to);
  if (bfs.dist[t] == std::numeric_limits<std::uint16_t>::max()) return {};
  std::vector<Asn> rev;
  for (auto cur = static_cast<std::uint32_t>(t); cur != 0xFFFFFFFFu;
       cur = bfs.parent[cur]) {
    rev.push_back(ases_[cur].cfg.asn);
    if (ases_[cur].cfg.asn == from) break;
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

std::optional<Route> Network::route(HostId from, util::Ipv4 dst) const {
  return route_from_as(hosts_[from].asn, dst);
}

std::shared_ptr<const PathSpan> Network::build_span(RouteCache& cache,
                                                    Asn from, Asn to) const {
  auto span = std::make_shared<PathSpan>();
  span->as_path = as_path(cache, from, to);
  if (span->as_path.empty()) return nullptr;
  std::size_t total = 0;
  for (Asn asn : span->as_path) total += ases_[as_index(asn)].router_ips.size();
  span->router_hops.reserve(total);
  for (Asn asn : span->as_path) {
    const auto& info = ases_[as_index(asn)];
    span->router_hops.insert(span->router_hops.end(), info.router_ips.begin(),
                             info.router_ips.end());
  }
  return span;
}

std::shared_ptr<const PathSpan> Network::span_for(RouteCache& cache, Asn from,
                                                  Asn to) const {
  const auto key = static_cast<std::uint64_t>(as_index(from)) << 32 |
                   static_cast<std::uint64_t>(as_index(to));
  auto& entry = cache.spans[key];
  if (entry.epoch != epoch_) {
    entry.epoch = epoch_;
    entry.span = build_span(cache, from, to);
  }
  return entry.span;
}

void Network::compute_route(RouteCache& cache, RouteCache::RouteEntry& entry,
                            Asn from, util::Ipv4 dst) const {
  entry.epoch = epoch_;
  entry.span = nullptr;
  entry.dst_host = resolve_destination(cache, dst, from);
  if (entry.dst_host == kInvalidHost) return;
  const Asn dst_as = hosts_[entry.dst_host].asn;
  entry.span = route_cache_enabled_ ? span_for(cache, from, dst_as)
                                    : build_span(cache, from, dst_as);
}

const RouteCache::RouteEntry& Network::lookup_route(RouteCache& cache,
                                                    Asn from,
                                                    util::Ipv4 dst) const {
  if (!route_cache_enabled_) {
    compute_route(cache, cache.scratch, from, dst);
    return cache.scratch;
  }
  const auto key = static_cast<std::uint64_t>(from) << 32 |
                   static_cast<std::uint64_t>(dst.value());
  auto [it, inserted] = cache.routes.try_emplace(key);
  RouteCache::RouteEntry& entry = it->second;
  if (!inserted && entry.epoch == epoch_) {
    ++cache.stats.hits;
    return entry;
  }
  if (!inserted) ++cache.stats.stale_evictions;
  ++cache.stats.misses;
  compute_route(cache, entry, from, dst);
  return entry;
}

std::optional<RouteView> Network::route_view(Asn from, util::Ipv4 dst) const {
  return route_view(default_cache_, from, dst);
}

std::optional<RouteView> Network::route_view(RouteCache& cache, Asn from,
                                             util::Ipv4 dst) const {
  const RouteCache::RouteEntry& entry = lookup_route(cache, from, dst);
  if (entry.span == nullptr) return std::nullopt;
  return RouteView{&entry.span->router_hops, &entry.span->as_path,
                   entry.dst_host};
}

std::optional<Route> Network::route_from_as(Asn from, util::Ipv4 dst) const {
  const auto view = route_view(from, dst);
  if (!view) return std::nullopt;
  Route r;
  r.router_hops = *view->router_hops;
  r.as_path = *view->as_path;
  r.dst_host = view->dst_host;
  return r;
}

const std::vector<std::pair<Prefix4, Asn>>& Network::announced_prefixes()
    const {
  if (announced_epoch_ != epoch_) {
    announced_cache_.clear();
    for (const auto& info : ases_) {
      for (const auto& p : info.owned) {
        announced_cache_.emplace_back(p, info.cfg.asn);
      }
    }
    announced_epoch_ = epoch_;
  }
  return announced_cache_;
}

void Network::set_flat_addr_plane_enabled(bool enabled) {
  if (enabled == flat_addr_plane_) return;
  flat_addr_plane_ = enabled;
  rebuild_addr_plane();
}

void Network::rebuild_addr_plane() {
  addr_index_.clear();
  addr_tail_.clear();
  addr_to_host_.clear();
  if (flat_addr_plane_) {
    addr_index_.reserve(addr_pool_.size());
    for (const Host& h : hosts_) {
      for (std::uint32_t i = 0; i < h.addr_count; ++i) {
        addr_index_.emplace_back(addr_pool_[h.addr_off + i], h.id);
      }
    }
    std::sort(addr_index_.begin(), addr_index_.end());
    addr_freeze_epoch_ = epoch_;
    rebuild_addr_slots();
  } else {
    addr_slots_.clear();
    addr_slots_.shrink_to_fit();
    addr_slots_shift_ = 0;
    addr_to_host_.reserve(addr_pool_.size());
    for (const Host& h : hosts_) {
      for (std::uint32_t i = 0; i < h.addr_count; ++i) {
        addr_to_host_.emplace(addr_pool_[h.addr_off + i], h.id);
      }
    }
  }
}

}  // namespace odns::netsim
