#pragma once
// Static network model: autonomous systems, their adjacency, hosts,
// address ownership, anycast groups, and path computation. The dynamic
// part (packets in flight) lives in Simulator.
//
// Routing is AS-granular: the packet's router-level path is the
// concatenation of each traversed AS's internal router chain, which
// gives hop-accurate TTL semantics (what DNSRoute++ measures) without
// simulating per-router FIBs.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/packet.hpp"
#include "util/ipv4.hpp"

namespace odns::netsim {

using Prefix4 = util::Prefix;

struct AsConfig {
  Asn asn = 0;
  std::string country;  // ISO-3166 alpha-3, e.g. "BRA"
  /// Egress source-address validation (BCP 38). Transparent forwarders
  /// can only operate from ASes where this is false.
  bool source_address_validation = true;
  /// Router hops a packet spends crossing this AS (>= 1).
  int internal_hops = 2;
};

struct AsInfo {
  AsConfig cfg;
  std::vector<Asn> neighbors;
  std::vector<util::Ipv4> router_ips;  // one per internal hop
  std::vector<Prefix4> owned;          // announced prefixes (SAV scope)
  std::vector<HostId> hosts;
};

struct Host {
  HostId id = kInvalidHost;
  Asn asn = 0;
  std::vector<util::Ipv4> addrs;
};

/// Result of a route lookup: the ordered router hops between (but not
/// including) the source host and the destination host.
struct Route {
  std::vector<util::Ipv4> router_hops;
  std::vector<Asn> as_path;  // includes source and destination AS
  HostId dst_host = kInvalidHost;
};

class Network {
 public:
  Network();

  // --- construction ------------------------------------------------
  AsInfo& add_as(const AsConfig& cfg);
  /// Declares a bidirectional inter-AS adjacency.
  void link(Asn a, Asn b);
  /// Registers a prefix as legitimately originated by `asn` (SAV scope
  /// and synthetic-Routeviews source).
  void announce(Asn asn, Prefix4 prefix);
  HostId add_host(Asn asn, std::vector<util::Ipv4> addrs);
  void add_host_address(HostId id, util::Ipv4 addr);
  /// Adds `host` as a member of the anycast group for `addr`. Lookups
  /// resolve to the member closest (AS hops) to the querying AS.
  void join_anycast(util::Ipv4 addr, HostId host);

  // --- lookups -----------------------------------------------------
  [[nodiscard]] const Host& host(HostId id) const { return hosts_[id]; }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] const AsInfo* find_as(Asn asn) const;
  [[nodiscard]] AsInfo* find_as_mutable(Asn asn);
  [[nodiscard]] const std::vector<Asn>& all_asns() const { return asn_order_; }

  /// Exact-match host owning `addr` (unicast), or the nearest anycast
  /// member seen from `from_as`. kInvalidHost if nobody owns it.
  [[nodiscard]] HostId resolve_destination(util::Ipv4 addr, Asn from_as) const;
  [[nodiscard]] HostId unicast_owner(util::Ipv4 addr) const;
  [[nodiscard]] bool is_anycast(util::Ipv4 addr) const;

  /// ASN owning a router IP (for synthetic registry generation and
  /// DNSRoute++ hop attribution). nullopt if not a router address.
  [[nodiscard]] std::optional<Asn> router_owner(util::Ipv4 addr) const;

  /// True if `src` is a legitimate source address for traffic leaving
  /// `asn` (i.e. covered by a prefix it announces).
  [[nodiscard]] bool source_is_legitimate(Asn asn, util::Ipv4 src) const;

  /// AS-level distance (hop count) between two ASes; -1 if unreachable.
  [[nodiscard]] int as_distance(Asn from, Asn to) const;

  /// Computes the router-level route from a host to an IP address.
  /// Returns nullopt when the destination does not resolve or no AS
  /// path exists.
  [[nodiscard]] std::optional<Route> route(HostId from, util::Ipv4 dst) const;
  /// Same, but originating inside an AS (used for ICMP errors emitted
  /// by routers).
  [[nodiscard]] std::optional<Route> route_from_as(Asn from,
                                                   util::Ipv4 dst) const;

  /// All announced prefixes with their origin ASN (synthetic
  /// Routeviews dump source).
  [[nodiscard]] std::vector<std::pair<Prefix4, Asn>> announced_prefixes() const;

 private:
  struct BfsResult {
    std::vector<std::uint16_t> dist;   // indexed by AS index
    std::vector<std::uint32_t> parent; // AS index of predecessor
  };

  [[nodiscard]] std::size_t as_index(Asn asn) const;
  const BfsResult& bfs_from(Asn src) const;
  [[nodiscard]] std::vector<Asn> as_path(Asn from, Asn to) const;
  util::Ipv4 allocate_router_ip();

  std::vector<AsInfo> ases_;
  std::vector<Asn> asn_order_;
  std::unordered_map<Asn, std::uint32_t> asn_to_index_;
  std::vector<Host> hosts_;
  std::unordered_map<util::Ipv4, HostId> addr_to_host_;
  std::unordered_map<util::Ipv4, std::vector<HostId>> anycast_;
  std::unordered_map<util::Ipv4, Asn> router_ip_owner_;
  util::Ipv4 next_router_ip_;
  mutable std::unordered_map<Asn, BfsResult> bfs_cache_;
};

}  // namespace odns::netsim
