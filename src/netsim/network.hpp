#pragma once
// Static network model: autonomous systems, their adjacency, hosts,
// address ownership, anycast groups, and path computation. The dynamic
// part (packets in flight) lives in Simulator.
//
// Routing is AS-granular: the packet's router-level path is the
// concatenation of each traversed AS's internal router chain, which
// gives hop-accurate TTL semantics (what DNSRoute++ measures) without
// simulating per-router FIBs.
//
// Route lookups fill an epoch-tagged RouteCache (route_cache.hpp).
// Every cache-touching method has two shapes: the classic one, which
// uses the Network-owned default cache (single-threaded callers), and
// a `const` overload taking an explicit RouteCache& so a sharded
// simulator can hand every shard a private cache — after construction
// the Network itself is then immutable shared state, safe to read from
// any number of shard threads concurrently.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/packet.hpp"
#include "netsim/route_cache.hpp"
#include "util/ipv4.hpp"

namespace odns::netsim {

using Prefix4 = util::Prefix;

struct AsConfig {
  Asn asn = 0;
  std::string country;  // ISO-3166 alpha-3, e.g. "BRA"
  /// Egress source-address validation (BCP 38). Transparent forwarders
  /// can only operate from ASes where this is false.
  bool source_address_validation = true;
  /// Router hops a packet spends crossing this AS (>= 1).
  int internal_hops = 2;
};

struct AsInfo {
  AsConfig cfg;
  std::vector<Asn> neighbors;
  std::vector<util::Ipv4> router_ips;  // one per internal hop
  std::vector<Prefix4> owned;          // announced prefixes (SAV scope)
  std::vector<HostId> hosts;
};

/// Hosts no longer own their addresses: `addr_off`/`addr_count` is a
/// span into the Network's shared interned address pool
/// (`Network::host_addrs` / `Network::primary_addr`). At million-host
/// scale a per-host heap vector was the single largest world-build
/// allocation class.
struct Host {
  HostId id = kInvalidHost;
  Asn asn = 0;
  std::uint32_t addr_off = 0;
  std::uint32_t addr_count = 0;
};

/// Result of a route lookup: the ordered router hops between (but not
/// including) the source host and the destination host.
struct Route {
  std::vector<util::Ipv4> router_hops;
  std::vector<Asn> as_path;  // includes source and destination AS
  HostId dst_host = kInvalidHost;
};

class Network {
 public:
  Network();

  // --- construction ------------------------------------------------
  AsInfo& add_as(const AsConfig& cfg);
  /// Declares a bidirectional inter-AS adjacency.
  void link(Asn a, Asn b);
  /// Registers a prefix as legitimately originated by `asn` (SAV scope
  /// and synthetic-Routeviews source).
  void announce(Asn asn, Prefix4 prefix);
  HostId add_host(Asn asn, std::span<const util::Ipv4> addrs);
  HostId add_host(Asn asn, const std::vector<util::Ipv4>& addrs) {
    return add_host(asn, std::span<const util::Ipv4>(addrs));
  }
  HostId add_host(Asn asn, std::initializer_list<util::Ipv4> addrs) {
    return add_host(asn, std::span<const util::Ipv4>(addrs.begin(), addrs.size()));
  }
  void add_host_address(HostId id, util::Ipv4 addr);
  /// Sorts the unmerged address tail into the dense lookup table and
  /// verifies address uniqueness (throws on duplicates, same contract
  /// as add_host). Called automatically by the first lookup after a
  /// mutation batch; bulk builders call it once after population so
  /// the merge cost is paid off the packet path.
  void freeze_addr_plane() const;
  /// Adds `host` as a member of the anycast group for `addr`. Lookups
  /// resolve to the member closest (AS hops) to the querying AS.
  void join_anycast(util::Ipv4 addr, HostId host);

  // --- lookups -----------------------------------------------------
  [[nodiscard]] const Host& host(HostId id) const { return hosts_[id]; }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  /// All addresses of `id`, as a view into the shared address pool.
  /// Valid until the next add_host/add_host_address call.
  [[nodiscard]] std::span<const util::Ipv4> host_addrs(HostId id) const {
    const Host& h = hosts_[id];
    return {addr_pool_.data() + h.addr_off, h.addr_count};
  }
  /// First (primary) address of `id`; the host must have one.
  [[nodiscard]] util::Ipv4 primary_addr(HostId id) const {
    return addr_pool_[hosts_[id].addr_off];
  }
  [[nodiscard]] const AsInfo* find_as(Asn asn) const;
  [[nodiscard]] AsInfo* find_as_mutable(Asn asn);
  [[nodiscard]] const std::vector<Asn>& all_asns() const { return asn_order_; }
  [[nodiscard]] std::size_t as_count() const { return ases_.size(); }
  /// Dense index of an ASN in construction order (stable, 0-based).
  [[nodiscard]] std::size_t as_index(Asn asn) const;

  /// Exact-match host owning `addr` (unicast), or the nearest anycast
  /// member seen from `from_as`. kInvalidHost if nobody owns it.
  [[nodiscard]] HostId resolve_destination(util::Ipv4 addr, Asn from_as) const;
  [[nodiscard]] HostId resolve_destination(RouteCache& cache, util::Ipv4 addr,
                                           Asn from_as) const;
  [[nodiscard]] HostId unicast_owner(util::Ipv4 addr) const;
  [[nodiscard]] bool is_anycast(util::Ipv4 addr) const;

  /// ASN owning a router IP (for synthetic registry generation and
  /// DNSRoute++ hop attribution). nullopt if not a router address.
  [[nodiscard]] std::optional<Asn> router_owner(util::Ipv4 addr) const;

  /// True if `src` is a legitimate source address for traffic leaving
  /// `asn` (i.e. covered by a prefix it announces).
  [[nodiscard]] bool source_is_legitimate(Asn asn, util::Ipv4 src) const;
  /// Same check against an already-resolved AsInfo — lets the per-packet
  /// SAV path reuse the `find_as` lookup it has already paid for.
  [[nodiscard]] static bool owns_source(const AsInfo& info, util::Ipv4 src);

  /// AS-level distance (hop count) between two ASes; -1 if unreachable.
  [[nodiscard]] int as_distance(Asn from, Asn to) const;
  [[nodiscard]] int as_distance(RouteCache& cache, Asn from, Asn to) const;

  /// Computes the router-level route from a host to an IP address.
  /// Returns nullopt when the destination does not resolve or no AS
  /// path exists.
  [[nodiscard]] std::optional<Route> route(HostId from, util::Ipv4 dst) const;
  /// Same, but originating inside an AS (used for ICMP errors emitted
  /// by routers).
  [[nodiscard]] std::optional<Route> route_from_as(Asn from,
                                                   util::Ipv4 dst) const;

  /// Zero-copy route lookup for the per-packet hot path. The returned
  /// view borrows the cached hop/AS-path vectors; it stays valid until
  /// the next topology mutation (or, with the cache disabled, the next
  /// route lookup). Routing decisions are byte-identical to `route()`.
  [[nodiscard]] std::optional<RouteView> route_view(Asn from,
                                                    util::Ipv4 dst) const;
  /// Per-shard variant: fills/serves `cache` instead of the built-in
  /// default cache. Thread-safe as long as each cache is driven by one
  /// thread and the topology is not mutated concurrently; with the
  /// cache switch disabled it recomputes into `cache.scratch`.
  [[nodiscard]] std::optional<RouteView> route_view(RouteCache& cache,
                                                    Asn from,
                                                    util::Ipv4 dst) const;
  /// Entry-level variant of route_view for the batch plane's per-shard
  /// route memo: identical lookup/stats semantics, but hands back the
  /// cache entry so the caller can pin its span shared_ptr across
  /// rehashes. With the cache disabled the reference aliases
  /// `cache.scratch` and is clobbered by the next lookup.
  [[nodiscard]] const RouteCache::RouteEntry& route_entry(
      RouteCache& cache, Asn from, util::Ipv4 dst) const {
    return lookup_route(cache, from, dst);
  }
  /// The cache behind the classic API shapes, so single-shard batch
  /// callers memoize against the same stats the tests observe.
  [[nodiscard]] RouteCache& default_cache() const { return default_cache_; }

  /// A/B switch for benchmarking and equivalence tests: with the cache
  /// off, every lookup recomputes the route from scratch (the pre-cache
  /// behaviour). Routing results are identical either way. Applies to
  /// the default cache and to every caller-supplied RouteCache.
  void set_route_cache_enabled(bool enabled) {
    route_cache_enabled_ = enabled;
    if (!enabled) default_cache_.clear();
  }
  [[nodiscard]] bool route_cache_enabled() const {
    return route_cache_enabled_;
  }
  /// Monotonic counter bumped by every topology mutation (`add_as`,
  /// `link`, `announce`, `add_host`, `add_host_address`,
  /// `join_anycast`). Cache entries tagged with an older epoch are
  /// recomputed lazily on their next lookup.
  [[nodiscard]] std::uint64_t topology_epoch() const { return epoch_; }
  [[nodiscard]] const RouteCacheStats& route_cache_stats() const {
    return default_cache_.stats;
  }

  /// All announced prefixes with their origin ASN (synthetic
  /// Routeviews dump source). Cached behind the topology epoch; the
  /// returned reference is valid until the next mutation.
  [[nodiscard]] const std::vector<std::pair<Prefix4, Asn>>& announced_prefixes()
      const;

  /// A/B switch for the addr→host lookup plane. Flat (default): a
  /// sorted dense (addr, host) table frozen into an open-addressed
  /// probe index (O(1)-amortized point lookups, one expected cache
  /// miss), plus a small unsorted tail for post-freeze mutations.
  /// Map: the pre-flat unordered_map baseline, kept for equivalence
  /// differentials and the addr_plane_lookup bench. Switching rebuilds
  /// the active structure from the shared address pool; lookup results
  /// are identical in both modes.
  void set_flat_addr_plane_enabled(bool enabled);
  [[nodiscard]] bool flat_addr_plane_enabled() const {
    return flat_addr_plane_;
  }

 private:
  const RouteCache::BfsEntry& bfs_for(RouteCache& cache, Asn src) const;
  [[nodiscard]] std::vector<Asn> as_path(RouteCache& cache, Asn from,
                                         Asn to) const;
  util::Ipv4 allocate_router_ip();
  void bump_epoch() { ++epoch_; }
  /// Builds the concatenated hop span for an AS pair (uncached).
  [[nodiscard]] std::shared_ptr<const PathSpan> build_span(RouteCache& cache,
                                                           Asn from,
                                                           Asn to) const;
  /// Span for an AS pair, via the epoch-tagged span cache.
  std::shared_ptr<const PathSpan> span_for(RouteCache& cache, Asn from,
                                           Asn to) const;
  /// Fills `entry` with a freshly computed route (stamps the epoch).
  void compute_route(RouteCache& cache, RouteCache::RouteEntry& entry,
                     Asn from, util::Ipv4 dst) const;
  const RouteCache::RouteEntry& lookup_route(RouteCache& cache, Asn from,
                                             util::Ipv4 dst) const;

  /// Appends `addr` to the flat lookup structures (active mode only);
  /// throws on duplicates when the check is affordable (see .cpp).
  void index_address(util::Ipv4 addr, HostId id);
  void rebuild_addr_plane();
  /// Rebuilds the open-addressed probe index over addr_index_ (called
  /// at the end of every freeze); O(1)-amortized frozen-table lookup.
  void rebuild_addr_slots() const;
  /// Probe-index point lookup over the frozen table only (the caller
  /// handles the unsorted tail). kInvalidHost on miss.
  [[nodiscard]] HostId frozen_owner(util::Ipv4 addr) const;

  std::vector<AsInfo> ases_;
  std::vector<Asn> asn_order_;
  std::unordered_map<Asn, std::uint32_t> asn_to_index_;
  std::vector<Host> hosts_;

  // --- flat interned address plane ---------------------------------
  /// Every host address, contiguous per host (Host::addr_off/count).
  std::vector<util::Ipv4> addr_pool_;
  /// Sorted (addr, host) table: the frozen lookup surface. `mutable`
  /// because freezing is lazy (first lookup after a mutation batch).
  mutable std::vector<std::pair<util::Ipv4, HostId>> addr_index_;
  /// Unsorted adds since the last freeze; merged into addr_index_ once
  /// it outgrows kAddrTailMerge (or at the first lookup). Scanned
  /// linearly meanwhile, so post-freeze adds stay cheap and correct.
  mutable std::vector<std::pair<util::Ipv4, HostId>> addr_tail_;
  /// Open-addressed linear-probe mirror of addr_index_, rebuilt at
  /// each freeze: power-of-2 capacity ≥ 2× entries (load ≤ 0.5),
  /// multiplicative hash, empty slots flagged by host == kInvalidHost.
  /// This is what makes frozen lookups O(1)-amortized — the sorted
  /// table stays the canonical surface for dup-checks and tail merges.
  mutable std::vector<std::pair<util::Ipv4, HostId>> addr_slots_;
  /// Right-shift applied to the 64-bit hash to index addr_slots_
  /// (64 - log2(capacity)); 0 means the probe index is empty.
  mutable std::uint32_t addr_slots_shift_ = 0;
  /// topology_epoch() at the last freeze (diagnostic invariant: the
  /// frozen table never goes stale because addresses are only added,
  /// never removed — new ones sit in the tail until merged).
  mutable std::uint64_t addr_freeze_epoch_ = 0;
  /// Anycast membership, flattened: sorted by address, insertion order
  /// preserved within a group (nearest-PoP ties break on it).
  std::vector<std::pair<util::Ipv4, HostId>> anycast_;
  /// AS index owning each router IP, dense over the sequential
  /// 100.64/10 allocation (slot = addr - kRouterPoolBase).
  std::vector<std::uint32_t> router_owner_;

  // --- map-based A/B baseline --------------------------------------
  bool flat_addr_plane_ = true;
  std::unordered_map<util::Ipv4, HostId> addr_to_host_;  // map mode only

  util::Ipv4 next_router_ip_;

  mutable std::vector<std::pair<Prefix4, Asn>> announced_cache_;
  mutable std::uint64_t announced_epoch_ = 0;

  std::uint64_t epoch_ = 1;
  /// Bumped only by graph-shape mutations (add_as / link) — the only
  /// events that invalidate BFS results. Keeping it separate from
  /// epoch_ means add_host/announce storms during world construction
  /// never force BFS recomputation.
  std::uint64_t graph_epoch_ = 1;
  bool route_cache_enabled_ = true;
  /// Cache behind the classic (cache-less) API shapes; shard 0 /
  /// single-threaded callers share it.
  mutable RouteCache default_cache_;
};

}  // namespace odns::netsim
