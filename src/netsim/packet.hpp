#pragma once
// Wire-level packet model. Only the fields the measurement methodology
// actually observes are modeled: IP addressing, TTL, UDP ports, ICMP
// error quoting. Payloads are opaque byte vectors (DNS wire format is
// layered on top by odns::dnswire).

#include <cstdint>
#include <vector>

#include "util/ipv4.hpp"

namespace odns::netsim {

using Asn = std::uint32_t;
using HostId = std::uint32_t;
inline constexpr HostId kInvalidHost = 0xFFFFFFFFu;

enum class Protocol : std::uint8_t { udp, icmp };

/// Borrowed handle onto a route served from Network's route cache: the
/// hop/AS-path vectors are owned by the cache, so the per-packet fast
/// path never copies them. Valid until the next topology mutation (or,
/// with the cache disabled, the next route lookup); consume it before
/// yielding to the event loop.
struct RouteView {
  const std::vector<util::Ipv4>* router_hops = nullptr;
  const std::vector<Asn>* as_path = nullptr;
  HostId dst_host = kInvalidHost;
};

enum class IcmpType : std::uint8_t {
  ttl_exceeded,
  port_unreachable,
  host_unreachable,
};

/// The part of the offending datagram a real ICMP error quotes (IP
/// header + first 8 payload bytes): enough to carry the UDP ports, which
/// is what traceroute-style tools key on.
struct IcmpQuote {
  util::Ipv4 orig_src;
  util::Ipv4 orig_dst;
  std::uint16_t orig_src_port = 0;
  std::uint16_t orig_dst_port = 0;
};

struct Packet {
  util::Ipv4 src;
  util::Ipv4 dst;
  int ttl = 64;
  Protocol proto = Protocol::udp;

  // UDP fields (valid when proto == udp).
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::vector<std::uint8_t> payload;

  // ICMP fields (valid when proto == icmp).
  IcmpType icmp_type = IcmpType::ttl_exceeded;
  IcmpQuote icmp_quote{};
};

/// A UDP datagram as seen by an application: addressing plus payload.
/// `ttl` is exposed because transparent forwarders are TTL-transparent
/// and DNSRoute++ depends on observing it.
struct Datagram {
  util::Ipv4 src;
  util::Ipv4 dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  int ttl = 64;
  const std::vector<std::uint8_t>* payload = nullptr;
};

}  // namespace odns::netsim
