#pragma once
// Route-cache storage, factored out of Network so a sharded simulator
// can give every shard a private instance (no shared `mutable` maps
// across threads). Network stays the single owner of the *logic* —
// cache-taking overloads of `route_view` etc. fill these structures —
// while this class is dumb epoch-tagged storage:
//
//   * route entries:  (source ASN, destination IP) -> span + dst host
//   * span entries:   (source AS, destination AS)  -> router-hop span
//   * BFS entries:    source AS -> distances/parents over the AS graph
//
// Invalidation contract (docs/architecture.md, "Routing fast path"):
// route and span entries are stamped with Network::topology_epoch();
// BFS entries with the graph epoch (bumped only by add_as/link, the
// mutations that change the AS graph shape). A lookup that finds an
// older stamp recomputes the entry in place — there is no
// mutation-time scan, so world construction stays cheap and the scan
// phase runs entirely on warm entries. Under sharding each shard's
// cache converges independently; entries are never shared between
// caches, so no locking is needed anywhere on the per-packet path.

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "netsim/packet.hpp"
#include "util/ipv4.hpp"

namespace odns::netsim {

/// Route-cache observability: `hits` are served without recomputation,
/// `misses` fill a fresh entry, `stale_evictions` count entries that
/// were lazily recomputed because the topology epoch moved past them.
struct RouteCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stale_evictions = 0;
};

/// Precomputed router-hop span for one (source AS, destination AS)
/// pair: the AS path plus the concatenation of every traversed AS's
/// internal router chain. Shared (via shared_ptr) by all route-cache
/// entries whose destinations live in the same AS.
struct PathSpan {
  std::vector<Asn> as_path;
  std::vector<util::Ipv4> router_hops;
};

class RouteCache {
 public:
  struct SpanEntry {
    std::uint64_t epoch = 0;
    std::shared_ptr<const PathSpan> span;  // nullptr: no AS path
  };
  struct RouteEntry {
    std::uint64_t epoch = 0;
    std::shared_ptr<const PathSpan> span;  // nullptr: unroutable
    HostId dst_host = kInvalidHost;
  };
  struct BfsEntry {
    std::uint64_t graph_epoch = 0;
    std::vector<std::uint16_t> dist;    // indexed by AS index
    std::vector<std::uint32_t> parent;  // AS index of predecessor
  };

  /// FIFO bound on live BFS entries. A BfsEntry is O(AS count) —
  /// ~90 KB in a 15k-AS world — and route/span entries cache the
  /// derived results, so the full per-source scratch is only needed on
  /// span misses. Unbounded, "every forwarder AS ever probed" retains
  /// O(ASes²) bytes (~1.3 GB at million-host scale); bounded, the hot
  /// working set (concurrent probe lifetimes per shard) stays resident
  /// and cold sources are recomputed deterministically on re-miss.
  static constexpr std::size_t kMaxBfsEntries = 1024;

  void clear() {
    routes.clear();
    spans.clear();
    bfs.clear();
    bfs_order.clear();
  }

  [[nodiscard]] const RouteCacheStats& cache_stats() const { return stats; }

  // Storage is public to its driver (Network); everything here is an
  // implementation detail of the routing fast path, not API.
  // (source ASN << 32 | destination IP) -> cached route; stale entries
  // (epoch mismatch) are recomputed in place on their next lookup.
  std::unordered_map<std::uint64_t, RouteEntry> routes;
  // (source AS index << 32 | destination AS index) -> hop span.
  std::unordered_map<std::uint64_t, SpanEntry> spans;
  // source ASN -> BFS over the AS adjacency graph. Bounded by
  // kMaxBfsEntries via bfs_order (insertion-order eviction).
  std::unordered_map<Asn, BfsEntry> bfs;
  std::deque<Asn> bfs_order;
  // Scratch entry used when the cache is disabled (uncached baseline).
  RouteEntry scratch;
  RouteCacheStats stats;
};

}  // namespace odns::netsim
