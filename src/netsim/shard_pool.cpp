#include "netsim/shard_pool.hpp"

#include <cassert>

namespace odns::netsim {

namespace {

/// Backoff ladder for the phase barrier. The spin budget covers the
/// fine-lookahead regime (phases every few µs); the yield budget keeps
/// oversubscribed machines live; past both, workers park on the
/// condvar so idle pools cost nothing between runs.
constexpr int kSpinIters = 2048;
constexpr int kYieldIters = 64;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(_M_X64)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

}  // namespace

void ShardPool::ensure_started(std::uint32_t n) {
  assert(n > 0);
  if (!workers_.empty()) {
    assert(workers_.size() == n && "shard count changed under a live pool");
    return;
  }
  workers_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void ShardPool::install_phases(const PhaseFn* window, const PhaseFn* admit) {
  // Only called from the coordinator between phases (never while a
  // phase is in flight), so plain stores are safe: workers read the
  // pointers only after the acquire on generation_.
  phases_[0] = window;
  phases_[1] = admit;
}

void ShardPool::run_phase(std::uint32_t which) {
  assert(!workers_.empty());
  assert(which < 2 && phases_[which] != nullptr);
  done_.store(0, std::memory_order_relaxed);
  phase_index_ = which;
  // Dekker pattern with the parking path: the coordinator writes
  // generation_ then reads sleepers_, a parking worker writes
  // sleepers_ then reads generation_. Both pairs are seq_cst so the
  // total order guarantees at least one side sees the other — either
  // the coordinator sees the sleeper and notifies, or the sleeper sees
  // the new generation and never waits. Weaker orderings would allow
  // StoreLoad reordering on both sides and a lost wakeup (worker parks
  // forever, run_phase spins on done_ forever).
  generation_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard lock(mu_);
    cv_.notify_all();
  }
  const auto n = static_cast<std::uint32_t>(workers_.size());
  int spins = 0;
  while (done_.load(std::memory_order_acquire) != n) {
    if (spins < kSpinIters) {
      cpu_relax();
      ++spins;
    } else {
      std::this_thread::yield();
    }
  }
}

void ShardPool::worker_loop(std::uint32_t index) {
  std::uint64_t seen = 0;
  while (true) {
    int spins = 0;
    while (generation_.load(std::memory_order_acquire) == seen &&
           !stop_.load(std::memory_order_acquire)) {
      if (spins < kSpinIters) {
        cpu_relax();
        ++spins;
      } else if (spins < kSpinIters + kYieldIters) {
        std::this_thread::yield();
        ++spins;
      } else {
        std::unique_lock lock(mu_);
        // seq_cst pair with run_phase — see the comment there.
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        cv_.wait(lock, [&] {
          return generation_.load(std::memory_order_seq_cst) != seen ||
                 stop_.load(std::memory_order_seq_cst);
        });
        sleepers_.fetch_sub(1, std::memory_order_seq_cst);
        spins = 0;
      }
    }
    if (stop_.load(std::memory_order_acquire)) return;
    seen = generation_.load(std::memory_order_relaxed);
    // The acquire above orders these reads after the coordinator's
    // release bump, so phase_index_/phases_ are the current phase's.
    (*phases_[phase_index_])(index);
    done_.fetch_add(1, std::memory_order_release);
  }
}

void ShardPool::shutdown() {
  {
    std::lock_guard lock(mu_);
    stop_.store(true, std::memory_order_release);
    cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  stop_.store(false, std::memory_order_relaxed);
  generation_.store(0, std::memory_order_relaxed);
  done_.store(0, std::memory_order_relaxed);
  sleepers_.store(0, std::memory_order_relaxed);
  phases_[0] = phases_[1] = nullptr;
  phase_index_ = 0;
}

}  // namespace odns::netsim

