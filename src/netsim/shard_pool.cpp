#include "netsim/shard_pool.hpp"

#include <cassert>

namespace odns::netsim {

void ShardPool::ensure_started(std::uint32_t n) {
  assert(n > 0);
  if (!workers_.empty()) {
    assert(workers_.size() == n && "shard count changed under a live pool");
    return;
  }
  workers_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void ShardPool::run_phase(const PhaseFn& fn) {
  std::unique_lock lock(mu_);
  assert(!workers_.empty());
  phase_ = &fn;
  done_ = 0;
  ++generation_;
  cv_work_.notify_all();
  cv_done_.wait(lock, [this] { return done_ == workers_.size(); });
  phase_ = nullptr;
}

void ShardPool::worker_loop(std::uint32_t index) {
  std::uint64_t seen = 0;
  while (true) {
    const PhaseFn* fn = nullptr;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = phase_;
    }
    (*fn)(index);
    {
      std::lock_guard lock(mu_);
      if (++done_ == workers_.size()) cv_done_.notify_one();
    }
  }
}

void ShardPool::shutdown() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
    cv_work_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  stop_ = false;
  generation_ = 0;
  done_ = 0;
}

}  // namespace odns::netsim
