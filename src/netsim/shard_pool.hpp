#pragma once
// Worker-thread pool for the sharded simulator: one long-lived thread
// per shard, driven in lockstep phases by the coordinating thread.
// The window loop installs its (at most two) phase callables once per
// run with install_phases(); run_phase(i) then dispatches phase i to
// every worker and blocks until all have finished — a full barrier on
// both edges, which is exactly the synchronization the conservative
// time-window protocol needs (and what makes the mailbox overflow
// vectors safe to hand across threads without their own locks).
//
// The barrier is spin-then-yield: workers and the coordinator spin on
// atomics through a phase transition (windows can be sub-100µs at
// small lookahead, where a condvar round trip per phase would dominate
// the simulation work), degrade to yields, and only park on a condvar
// after ~1ms of idleness — so threads still sleep between runs and on
// oversubscribed machines. Dispatch allocates nothing: the phase
// callables are preinstalled and signalled by index.
//
// Determinism never depends on the pool — the same phases run
// sequentially when SimConfig::shard_threads is false and produce
// byte-identical results.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace odns::netsim {

class ShardPool {
 public:
  using PhaseFn = std::function<void(std::uint32_t shard)>;

  ShardPool() = default;
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;
  ~ShardPool() { shutdown(); }

  /// Starts `n` workers if not already running (idempotent for equal n).
  void ensure_started(std::uint32_t n);
  /// Installs the window-loop phase callables. The pointees must stay
  /// alive until the next install_phases() or shutdown(); nothing is
  /// copied, so the per-window dispatch is allocation-free.
  void install_phases(const PhaseFn* window, const PhaseFn* admit);
  /// Runs installed phase `which` (0 = window, 1 = admit) as fn(shard)
  /// on every worker; returns when all have finished.
  void run_phase(std::uint32_t which);
  void shutdown();

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(workers_.size());
  }

 private:
  void worker_loop(std::uint32_t index);

  std::vector<std::thread> workers_;
  const PhaseFn* phases_[2] = {nullptr, nullptr};
  /// Phase of the current generation; written before the generation
  /// bump (release) and read after its acquire, like phases_.
  std::uint32_t phase_index_ = 0;
  /// Bumped (release) to start a phase; workers acquire-spin on it.
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint32_t> done_{0};
  std::atomic<bool> stop_{false};
  /// Workers parked on cv_. The generation bump / sleepers check on
  /// the coordinator and the sleepers increment / generation check on
  /// a parking worker are all seq_cst (Dekker pattern), so a
  /// bump-then-notify can never be lost.
  std::atomic<std::uint32_t> sleepers_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace odns::netsim
