#pragma once
// Worker-thread pool for the sharded simulator: one long-lived thread
// per shard, driven in lockstep phases by the coordinating thread.
// run_phase(fn) hands every worker the same callable (invoked with its
// shard index) and blocks until all workers finish — a full barrier on
// both edges, which is exactly the synchronization the conservative
// time-window protocol needs (and what makes the mailbox overflow
// vectors safe to hand across threads without their own locks).
//
// The pool is deliberately condvar-based rather than spinning: windows
// are coarse (one per lookahead interval), simulation work dominates,
// and spinning would starve co-scheduled shards on small machines.
// Determinism never depends on the pool — the same phases run
// sequentially when SimConfig::shard_threads is false and produce
// byte-identical results.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace odns::netsim {

class ShardPool {
 public:
  using PhaseFn = std::function<void(std::uint32_t shard)>;

  ShardPool() = default;
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;
  ~ShardPool() { shutdown(); }

  /// Starts `n` workers if not already running (idempotent for equal n).
  void ensure_started(std::uint32_t n);
  /// Runs fn(shard) on every worker; returns when all have finished.
  void run_phase(const PhaseFn& fn);
  void shutdown();

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(workers_.size());
  }

 private:
  void worker_loop(std::uint32_t index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const PhaseFn* phase_ = nullptr;
  std::uint64_t generation_ = 0;
  std::uint32_t done_ = 0;
  bool stop_ = false;
};

}  // namespace odns::netsim
