#pragma once
// Internal definition of Simulator::Shard — the per-shard execution
// context of the (possibly) sharded simulator. Not installed API:
// included only by the netsim implementation files (sim.cpp /
// sharded.cpp). Everything a shard touches per event lives here, so a
// shard thread never writes state owned by another shard:
//
//   * its typed EventQueue (own clock, own sequence space),
//   * its SimCounters and trace buffer,
//   * its private RouteCache (epoch-tagged; see route_cache.hpp),
//   * its RNG stream (seed ^ f(shard) — reserved for future
//     per-shard stochastic models; the packet-loss decision is a
//     stateless per-packet hash precisely so results do not depend
//     on the shard count),
//   * one SPSC inbox per source shard (cross-shard packet events).

#include <cstdint>
#include <vector>

#include "netsim/event_queue.hpp"
#include "netsim/mailbox.hpp"
#include "netsim/route_cache.hpp"
#include "netsim/sim.hpp"
#include "util/rng.hpp"

namespace odns::netsim {

struct Simulator::Shard final : private PacketSink {
  Shard(Simulator& sim, std::uint32_t idx, std::uint32_t count,
        const SimConfig& cfg)
      : owner(&sim), index(idx),
        rng(cfg.seed ^ (0x9E3779B97F4A7C15ull * (idx + 1))),
        inbox(count) {  // in place: mailboxes hold atomics (immovable)
    events.bind_sink(this);
    for (auto& mb : inbox) mb.reset(cfg.mailbox_capacity);
  }

  // PacketSink: pooled packet events dispatch back into the plane on
  // this shard.
  void deliver_event(Packet&& pkt, HostId host) override {
    owner->deliver(*this, std::move(pkt), host);
  }
  void icmp_event(IcmpType type, Packet&& offender, util::Ipv4 router,
                  Asn origin_as) override {
    owner->send_icmp(*this, type, router, offender, origin_as);
  }
  void deliver_batch_event(std::span<DeliverItem> batch) override {
    owner->deliver_batch(*this, batch);
  }

  /// Last route served on this shard's inject path. Consecutive
  /// injects for the same (origin AS, destination) — response bursts
  /// out of a delivery batch, relay runs — skip the cache probe
  /// entirely; the epoch stamp invalidates it on any topology
  /// mutation. The raw span pointer is safe under that guard: cache
  /// entries are never erased, and an entry's span is only replaced
  /// when its epoch is stale — which implies the topology epoch moved
  /// and the memo no longer matches. A null span with a matching key
  /// memoizes "unroutable".
  struct RouteMemo {
    std::uint64_t epoch = ~std::uint64_t{0};
    Asn from = 0;
    util::Ipv4 dst;
    const PathSpan* span = nullptr;
    HostId dst_host = kInvalidHost;
  };

  Simulator* owner;
  std::uint32_t index;
  EventQueue events;
  SimCounters counters;
  RouteCache route_cache;
  RouteMemo route_memo;
  util::Rng rng;
  std::uint64_t trace_seq = 0;
  std::uint64_t trace_dropped = 0;
  std::vector<TraceRecord> trace;
  ShardStats stats;
  std::vector<SpscMailbox> inbox;  // indexed by source shard
  std::vector<Datagram> batch_dgrams;  // deliver_batch scratch
};

}  // namespace odns::netsim
