// Sharded execution runtime of the Simulator: AS-granular partition,
// the conservative time-window loop, mailbox admission, and the
// (time, shard, seq) trace merge. The protocol (lookahead choice,
// window safety argument, admission order) is documented in
// docs/event-engine.md, "Cross-shard merge rule"; the architecture
// walk-through lives in docs/architecture.md, "Sharded execution".

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <ctime>

#include "netsim/shard_state.hpp"
#include "netsim/sim.hpp"
#include "util/hash.hpp"

namespace odns::netsim {

namespace {

/// CPU seconds consumed by the calling thread: per-shard busy time
/// that is meaningful even when shards are time-sliced onto fewer
/// cores (max over shards = the parallel critical path).
double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

util::Duration Simulator::lookahead() const {
  // The window may never exceed the true minimum cross-shard latency
  // (one router hop): a larger configured value would let a window
  // execute past a pending cross-shard arrival, which the admission
  // clamp would then silently re-date. Clamp rather than trust.
  if (cfg_.lookahead > util::Duration::nanos(0)) {
    return std::min(cfg_.lookahead, cfg_.hop_latency);
  }
  return cfg_.hop_latency;
}

void Simulator::freeze_partition() {
  if (partition_epoch_ == net_.topology_epoch() &&
      host_shard_.size() == net_.host_count()) {
    return;
  }
  const auto n = shard_count();
  // AS-granular partition through a shard-count-independent virtual
  // layer: AS index -> virtual shard (mod kVirtualShards) -> real
  // shard. Virtual shards place onto real shards round-robin, or — when
  // load hints are set — by LPT greedy (heaviest virtual shard first
  // onto the least-loaded real shard, ties by lowest index), which
  // balances expected event load instead of AS counts. Placement is a
  // pure execution decision: the virtual partition, and with it every
  // observable output, is identical for any weighting. Adding
  // ASes/hosts never reassigns existing ones (indices are append-only),
  // so a lazy re-freeze only extends.
  std::array<std::uint32_t, kVirtualShards> virt_to_real;
  std::vector<std::uint64_t> load(n, 0);
  if (partition_load_hints_.empty() || n == 1) {
    for (std::uint32_t v = 0; v < kVirtualShards; ++v) {
      virt_to_real[v] = v % n;
      ++load[v % n];
    }
  } else {
    std::array<std::uint32_t, kVirtualShards> order;
    for (std::uint32_t v = 0; v < kVirtualShards; ++v) order[v] = v;
    const auto weight = [&](std::uint32_t v) {
      return v < partition_load_hints_.size() ? partition_load_hints_[v]
                                              : std::uint64_t{0};
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return weight(a) > weight(b);
                     });
    for (const std::uint32_t v : order) {
      std::uint32_t best = 0;
      for (std::uint32_t s = 1; s < n; ++s) {
        if (load[s] < load[best]) best = s;
      }
      virt_to_real[v] = best;
      // Count zero-weight virtual shards as one unit so they still
      // spread instead of piling onto one real shard.
      load[best] += std::max<std::uint64_t>(weight(v), 1);
    }
  }
  as_shard_.resize(net_.as_count());
  for (std::size_t i = 0; i < as_shard_.size(); ++i) {
    as_shard_[i] = virt_to_real[i % kVirtualShards];
  }
  // Vantage capture members override the virtual layer: member j's AS
  // is pinned to the j-th *lightest* real shard (partition load order,
  // ties by lowest index), and the shard→member capture table is
  // rebuilt to match, so the member that shard s's capture traffic is
  // handed to still executes on shard s itself whenever the member
  // count covers the shard count. Capture members are pure sinks —
  // which member absorbs which shard's stream is unobservable — so the
  // light-shard preference is execution-only; it just keeps the
  // capture load off whatever shard the weighted LPT already loaded
  // up. Each member AS holds only its capture host, so the pin moves
  // no other state.
  if (!vantage_members_.empty()) {
    std::vector<std::uint32_t> light(n);
    for (std::uint32_t s = 0; s < n; ++s) light[s] = s;
    std::stable_sort(light.begin(), light.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return load[a] < load[b];
                     });
    vantage_member_for_shard_.resize(n);
    for (std::uint32_t r = 0; r < n; ++r) {
      vantage_member_for_shard_[light[r]] =
          vantage_members_[r % vantage_members_.size()];
    }
    for (std::size_t j = 0; j < vantage_members_.size(); ++j) {
      const Asn member_as = net_.host(vantage_members_[j]).asn;
      as_shard_[net_.as_index(member_as)] =
          light[j % n];
    }
  }
  host_shard_.resize(net_.host_count());
  for (std::size_t h = 0; h < host_shard_.size(); ++h) {
    host_shard_[h] =
        as_shard_[net_.as_index(net_.host(static_cast<HostId>(h)).asn)];
  }
  if (!single_shard()) {
    // Presize so shard threads never reallocate the dense tables; the
    // partition guarantees disjoint per-shard slot access.
    if (host_state_.size() < net_.host_count()) {
      host_state_.resize(net_.host_count());
    }
    if (loss_burst_.size() < net_.as_count()) {
      loss_burst_.resize(net_.as_count());
    }
    if (faults_.active()) {
      faults_.resize_buckets(net_.as_count());
    }
    // External taps would run concurrently from shard threads; sharded
    // observability goes through the built-in per-shard trace.
    assert(taps_.empty() && "add_tap is single-shard only; use the trace");
  }
  partition_epoch_ = net_.topology_epoch();
}

std::uint32_t Simulator::shard_of(HostId host) {
  if (single_shard()) return 0;
  freeze_partition();
  assert(host < host_shard_.size());
  return host_shard_[host];
}

std::uint32_t Simulator::shard_of_as(Asn asn) const {
  return as_shard_[net_.as_index(asn)];
}

std::uint32_t Simulator::virtual_shard_of(util::Ipv4 addr) const {
  const HostId h = net_.unicast_owner(addr);
  if (h == kInvalidHost) return 0;
  return virtual_shard_of_as(net_.host(h).asn);
}

std::uint32_t Simulator::virtual_shard_of_as(Asn asn) const {
  return static_cast<std::uint32_t>(net_.as_index(asn) % kVirtualShards);
}

const ShardStats& Simulator::shard_stats(std::uint32_t shard) const {
  return shards_[shard]->stats;
}

const SimCounters& Simulator::shard_counters(std::uint32_t shard) const {
  return shards_[shard]->counters;
}

const RouteCacheStats& Simulator::shard_route_cache_stats(
    std::uint32_t shard) const {
  return shards_[shard]->route_cache.stats;
}

const std::vector<TraceRecord>& Simulator::shard_trace(
    std::uint32_t shard) const {
  return shards_[shard]->trace;
}

std::uint64_t Simulator::trace_dropped() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->trace_dropped;
  return total;
}

util::SimTime Simulator::next_event_time() const {
  util::SimTime next = util::SimTime::far_future();
  for (const auto& sh : shards_) {
    if (!sh->events.empty()) next = std::min(next, sh->events.next_at());
  }
  return next;
}

void Simulator::run_shard_window(Shard& sh, util::SimTime wend) {
  const double t0 = thread_cpu_seconds();
  tl_owner_ = this;
  tl_shard_ = &sh;
  sh.events.run_before(wend);
  tl_shard_ = nullptr;
  tl_owner_ = nullptr;
  sh.stats.busy_seconds += thread_cpu_seconds() - t0;
}

void Simulator::admit_mailboxes(Shard& sh) {
  const double t0 = thread_cpu_seconds();
  // Deterministic admission: source shards in ascending order, each
  // mailbox FIFO. Together with fresh local sequence numbers this is
  // the (time, shard, seq) cross-shard total order.
  for (std::uint32_t src = 0; src < shards_.size(); ++src) {
    if (src == sh.index) continue;
    SpscMailbox& mb = sh.inbox[src];
    mb.drain([&](MailboxMsg&& m) {
      ++sh.stats.mailbox_in;
      if (m.kind == MailboxMsg::Kind::deliver) {
        sh.events.schedule_deliver(m.at, std::move(m.pkt), m.dst_host);
      } else {
        sh.events.schedule_icmp(m.at, m.icmp_type, std::move(m.pkt), m.router,
                                m.origin_as);
      }
    });
  }
  std::uint64_t overflows = 0;
  for (const auto& mb : sh.inbox) overflows += mb.overflowed();
  sh.stats.mailbox_overflows = overflows;
  sh.stats.busy_seconds += thread_cpu_seconds() - t0;
}

void Simulator::run_windows(util::SimTime deadline, bool advance_clocks) {
  freeze_partition();
  const util::Duration window = lookahead();
  assert(window > util::Duration::nanos(0));
  const bool explicit_deadline = deadline < util::SimTime::far_future();
  const bool threaded = cfg_.shard_threads;
  if (threaded) pool_.ensure_started(shard_count());

  // The two phase closures are built once per run and preinstalled in
  // the pool; each window only writes `wend` and signals a phase index
  // (no allocation, no locking — see shard_pool.hpp). Workers read
  // `wend` after the barrier's acquire, so the plain write is safe.
  util::SimTime wend = util::SimTime::origin();
  const ShardPool::PhaseFn window_phase = [&](std::uint32_t s) {
    run_shard_window(*shards_[s], wend);
  };
  const ShardPool::PhaseFn admit_phase = [&](std::uint32_t s) {
    admit_mailboxes(*shards_[s]);
  };
  if (threaded) pool_.install_phases(&window_phase, &admit_phase);

  while (true) {
    const util::SimTime next = next_event_time();
    if (next == util::SimTime::far_future() || next > deadline) break;
    // Window [next, wend): every event executed inside it lies at
    // least `window` (= min cross-shard latency) before any cross-
    // shard arrival it can generate, so arrivals always land at or
    // after wend and admission at the barrier is conservative-safe.
    wend = next + window;
    if (explicit_deadline) {
      wend = std::min(wend,
                      util::SimTime::from_nanos(deadline.nanos()) +
                          util::Duration::nanos(1));
    }
    if (threaded) {
      pool_.run_phase(0);
      pool_.run_phase(1);
    } else {
      for (auto& sh : shards_) run_shard_window(*sh, wend);
      for (auto& sh : shards_) admit_mailboxes(*sh);
    }
  }
  if (threaded) pool_.install_phases(nullptr, nullptr);

  if (advance_clocks) {
    // No events at or before the deadline remain anywhere; run() on an
    // effectively empty window just advances each shard's clock so
    // timeout logic keyed on now() stays deterministic (same contract
    // as the single-shard engine).
    for (auto& sh : shards_) sh->events.run(deadline);
  }
  for (auto& sh : shards_) sh->stats.events_executed = sh->events.executed();
}

std::vector<TraceRecord> Simulator::merged_trace() const {
  std::vector<TraceRecord> out;
  std::size_t total = 0;
  for (const auto& sh : shards_) total += sh->trace.size();
  out.reserve(total);
  std::vector<std::size_t> pos(shards_.size(), 0);
  // Each per-shard buffer is already time-ordered (events execute in
  // nondecreasing time); a k-way merge on (time, shard) yields the
  // documented (time, shard, seq) total order.
  while (out.size() < total) {
    std::size_t best = shards_.size();
    std::int64_t best_at = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (pos[s] >= shards_[s]->trace.size()) continue;
      const std::int64_t at = shards_[s]->trace[pos[s]].at;
      if (best == shards_.size() || at < best_at) {
        best = s;
        best_at = at;
      }
    }
    out.push_back(shards_[best]->trace[pos[best]++]);
  }
  return out;
}

std::uint64_t Simulator::canonical_trace_digest() const {
  std::vector<TraceRecord> all = merged_trace();
  std::sort(all.begin(), all.end(), [](const TraceRecord& a,
                                       const TraceRecord& b) {
    const auto key = [](const TraceRecord& r) {
      return std::tuple(r.at, static_cast<std::uint8_t>(r.ev), r.proto, r.ttl,
                        r.src, r.dst, r.src_port, r.dst_port);
    };
    return key(a) < key(b);
  });
  std::uint64_t h = util::kFnv1aBasis;
  for (const auto& r : all) {
    h = util::fnv1a64(h, static_cast<std::uint64_t>(r.at));
    h = util::fnv1a64(h, static_cast<std::uint64_t>(r.ev) << 8 | r.proto);
    h = util::fnv1a64(
        h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.ttl)));
    h = util::fnv1a64(h, std::uint64_t{r.src} << 32 | r.dst);
    h = util::fnv1a64(h, std::uint64_t{r.src_port} << 16 | r.dst_port);
  }
  return h;
}

}  // namespace odns::netsim
