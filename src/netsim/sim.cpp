#include "netsim/sim.hpp"

#include <cassert>
#include <utility>

#include "netsim/shard_state.hpp"
#include "netsim/stateless.hpp"

namespace odns::netsim {

thread_local Simulator::Shard* Simulator::tl_shard_ = nullptr;
thread_local const Simulator* Simulator::tl_owner_ = nullptr;

Simulator::Simulator(SimConfig cfg) : cfg_(cfg) {
  if (cfg_.shards == 0) cfg_.shards = 1;
  faults_.configure(cfg_.faults, cfg_.seed, cfg_.hop_latency);
  shards_.reserve(cfg_.shards);
  for (std::uint32_t i = 0; i < cfg_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(*this, i, cfg_.shards, cfg_));
    shards_.back()->events.set_batch_delivery(cfg_.batch_delivery);
  }
}

Simulator::~Simulator() { pool_.shutdown(); }

util::SimTime Simulator::now() const {
  if (single_shard()) return shards_[0]->events.now();
  if (tl_owner_ == this && tl_shard_ != nullptr) {
    return tl_shard_->events.now();
  }
  // Outside a run the clocks are synchronized after run_until and may
  // diverge after a drain run(); the latest clock is the global "now".
  util::SimTime latest = shards_[0]->events.now();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    latest = std::max(latest, shards_[s]->events.now());
  }
  return latest;
}

Simulator::Shard& Simulator::active_shard() const {
  if (tl_owner_ == this && tl_shard_ != nullptr) return *tl_shard_;
  return *shards_[0];
}

void Simulator::schedule(util::Duration delay, EventQueue::Action action) {
  Shard& sh = active_shard();
  sh.events.schedule_at(sh.events.now() + delay, std::move(action));
}

void Simulator::schedule_timer(util::Duration delay, TimerTarget* target,
                               std::uint64_t a, std::uint64_t b) {
  Shard& sh = active_shard();
  sh.events.schedule_timer(sh.events.now() + delay, target, a, b);
}

void Simulator::schedule_timer_on(HostId affinity, util::Duration delay,
                                  TimerTarget* target, std::uint64_t a,
                                  std::uint64_t b) {
  Shard& sh = *shards_[shard_of(affinity)];
  sh.events.schedule_timer(sh.events.now() + delay, target, a, b);
}

void Simulator::run() {
  if (single_shard()) {
    shards_[0]->events.run();
    return;
  }
  run_windows(util::SimTime::far_future(), /*advance_clocks=*/false);
}

void Simulator::run_until(util::SimTime deadline) {
  if (single_shard()) {
    shards_[0]->events.run(deadline);
    return;
  }
  run_windows(deadline, /*advance_clocks=*/true);
}

void Simulator::set_typed_events_enabled(bool on) {
  if (!on && !single_shard()) {
    // The sharded runtime is typed-only: the legacy closure engine
    // exists as the single-threaded A/B baseline.
    assert(false && "legacy event mode requires shards == 1");
    return;
  }
  shards_[0]->events.set_legacy_mode(!on);
}

bool Simulator::typed_events_enabled() const {
  return !shards_[0]->events.legacy_mode();
}

void Simulator::set_batch_delivery_enabled(bool on) {
  cfg_.batch_delivery = on;
  for (auto& sh : shards_) sh->events.set_batch_delivery(on);
}

void Simulator::set_fault_config(const FaultConfig& faults) {
  cfg_.faults = faults;
  faults_.configure(faults, cfg_.seed, cfg_.hop_latency);
  if (!single_shard() && faults_.active()) {
    // Mirror freeze_partition's presizing so shard threads never
    // resize the bucket table (the partition may already be frozen
    // when the sweep lever flips faults on between runs).
    faults_.resize_buckets(net_.as_count());
  }
}

const SimCounters& Simulator::counters() const {
  if (single_shard()) return shards_[0]->counters;
  agg_counters_ = SimCounters{};
  for (const auto& sh : shards_) {
    agg_counters_.sent += sh->counters.sent;
    agg_counters_.delivered += sh->counters.delivered;
    agg_counters_.dropped_sav += sh->counters.dropped_sav;
    agg_counters_.dropped_loss += sh->counters.dropped_loss;
    agg_counters_.dropped_no_route += sh->counters.dropped_no_route;
    agg_counters_.ttl_expired += sh->counters.ttl_expired;
    agg_counters_.icmp_generated += sh->counters.icmp_generated;
    agg_counters_.redirected += sh->counters.redirected;
    agg_counters_.dropped_outage += sh->counters.dropped_outage;
    agg_counters_.jittered += sh->counters.jittered;
    agg_counters_.reordered += sh->counters.reordered;
    agg_counters_.duplicated += sh->counters.duplicated;
    agg_counters_.corrupted += sh->counters.corrupted;
    agg_counters_.icmp_unreachable_suppressed +=
        sh->counters.icmp_unreachable_suppressed;
  }
  return agg_counters_;
}

void Simulator::set_partition_load_hints(std::vector<std::uint64_t> weights) {
  partition_load_hints_ = std::move(weights);
  partition_epoch_ = 0;  // re-freeze with the new placement on next run
}

void Simulator::set_vantage_capture(util::Ipv4 capture_addr,
                                    std::vector<HostId> members) {
  assert(!members.empty());
  vantage_capture_host_ = net_.unicast_owner(capture_addr);
  assert(vantage_capture_host_ != kInvalidHost &&
         "capture address must have a unicast owner");
  vantage_members_ = std::move(members);
  const auto n = shard_count();
  vantage_member_for_shard_.resize(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    // Provisional round-robin assignment; partition freeze rebuilds
    // this table after pinning members to the lightest shards, keeping
    // the choice shard-local whenever members.size() >= n (and landing
    // on the member's own shard via the mailbox fabric otherwise).
    vantage_member_for_shard_[s] =
        vantage_members_[s % vantage_members_.size()];
  }
  partition_epoch_ = 0;  // re-freeze with the member pins applied
}

void Simulator::clear_vantage_capture() {
  vantage_capture_host_ = kInvalidHost;
  vantage_members_.clear();
  vantage_member_for_shard_.clear();
  partition_epoch_ = 0;
}

std::uint64_t Simulator::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->events.executed();
  return total;
}

Simulator::HostState& Simulator::state(HostId id) {
  // HostIds are dense (allocated by Network::add_host); a sentinel or
  // garbage id would turn the resize below into a giant allocation.
  assert(id != kInvalidHost);
  if (id >= host_state_.size()) host_state_.resize(id + 1);
  return host_state_[id];
}

void Simulator::bind_udp(HostId host, std::uint16_t port, App* app) {
  assert(app != nullptr);
  HostState& st = state(host);
  if (st.extra) {
    if (auto it = st.extra->sockets.find(port);
        it != st.extra->sockets.end()) {
      it->second = app;
      return;
    }
  }
  if (st.app0 == nullptr || st.app0_port == port) {
    st.app0 = app;
    st.app0_port = port;
    return;
  }
  st.ensure_extra().sockets[port] = app;
}

void Simulator::unbind_udp(HostId host, std::uint16_t port) {
  HostState& st = state(host);
  if (st.app0 != nullptr && st.app0_port == port) {
    st.app0 = nullptr;
    st.app0_port = 0;
    return;
  }
  if (st.extra) st.extra->sockets.erase(port);
}

void Simulator::bind_udp_wildcard(HostId host, App* app) {
  state(host).wildcard = app;
}

void Simulator::set_icmp_handler(HostId host, IcmpHandler handler) {
  state(host).ensure_extra().icmp = std::move(handler);
}

void Simulator::add_port_redirect(HostId host, std::uint16_t dst_port,
                                  util::Ipv4 target) {
  HostState& st = state(host);
  if (st.extra) {
    if (auto it = st.extra->redirects.find(dst_port);
        it != st.extra->redirects.end()) {
      it->second = Redirect{target, 0};
      return;
    }
  }
  if (!st.has_redirect || st.redirect_port == dst_port) {
    st.has_redirect = true;
    st.redirect_port = dst_port;
    st.redirect_target = target;
    st.redirect_relays = 0;
    return;
  }
  st.ensure_extra().redirects[dst_port] = Redirect{target, 0};
}

void Simulator::remove_port_redirect(HostId host, std::uint16_t dst_port) {
  HostState& st = state(host);
  if (st.has_redirect && st.redirect_port == dst_port) {
    st.has_redirect = false;
    st.redirect_port = 0;
    st.redirect_relays = 0;
    return;
  }
  if (st.extra) st.extra->redirects.erase(dst_port);
}

std::uint64_t Simulator::redirect_relays(HostId host) const {
  if (host >= host_state_.size()) return 0;
  const HostState& st = host_state_[host];
  std::uint64_t total = st.has_redirect ? st.redirect_relays : 0;
  if (st.extra) {
    for (const auto& [port, rule] : st.extra->redirects) total += rule.relays;
  }
  return total;
}

void Simulator::emit(Shard& sh, TapEvent ev, const Packet& pkt) {
  if (trace_enabled_) {
    if (sh.trace.size() >= trace_limit_) {
      ++sh.trace_dropped;
      for (const auto& tap : taps_) tap(ev, pkt);
      return;
    }
    TraceRecord r;
    r.at = sh.events.now().nanos();
    r.shard = sh.index;
    r.seq = sh.trace_seq++;
    r.ev = ev;
    r.proto = static_cast<std::uint8_t>(pkt.proto);
    r.ttl = pkt.ttl;
    r.src = pkt.src.value();
    r.dst = pkt.dst.value();
    r.src_port = pkt.src_port;
    r.dst_port = pkt.dst_port;
    sh.trace.push_back(r);
  }
  for (const auto& tap : taps_) tap(ev, pkt);
}

bool Simulator::loss_drop(Asn origin_as, const Packet& pkt,
                          util::SimTime at) {
  if (cfg_.loss_rate >= 1.0) return true;
  // Stateless core: the decision depends on (seed, packet identity,
  // time), never on how many draws happened before — so loss patterns
  // are identical for every shard count and event interleaving.
  std::uint64_t h = mix64(cfg_.seed ^ kLossDomain);
  h = mix64(h ^ (std::uint64_t{pkt.src.value()} << 32 | pkt.dst.value()));
  h = mix64(h ^ (std::uint64_t{pkt.src_port} << 48 |
                 std::uint64_t{pkt.dst_port} << 32 |
                 static_cast<std::uint32_t>(pkt.ttl)));
  h = mix64(h ^ static_cast<std::uint64_t>(at.nanos()) ^
            (std::uint64_t{static_cast<std::uint8_t>(pkt.proto)} << 56));
  // Byte-identical packets at the same instant (only synthetic bursts
  // produce these) draw consecutive counter values instead of sharing
  // one fate. Occurrences are counted per content hash within the
  // nanosecond, so the set of fates drawn is independent of how
  // same-instant packets interleave (and of the shard count). The
  // slot is per origin AS, written only by its owning shard; sharded
  // runs presize the table at partition freeze.
  const std::size_t idx = net_.as_index(origin_as);
  if (idx >= loss_burst_.size()) {
    assert(single_shard());
    loss_burst_.resize(net_.as_count());
  }
  LossBurst& burst = loss_burst_[idx];
  if (burst.at != at.nanos()) {
    burst.at = at.nanos();
    burst.seen.clear();  // capacity retained
  }
  bool found = false;
  for (auto& [hash, count] : burst.seen) {
    if (hash == h) {
      h = mix64(h ^ ++count);
      found = true;
      break;
    }
  }
  if (!found) burst.seen.emplace_back(h, 0);
  const auto threshold =
      static_cast<std::uint64_t>(cfg_.loss_rate * 9007199254740992.0);  // 2^53
  return (h >> 11) < threshold;
}

void Simulator::send_udp(HostId from, SendOptions opts) {
  Shard& sh = *shards_[shard_of(from)];
  // From inside a handler, sends must originate on the shard that owns
  // the sending host (apps always do — they run there).
  assert(tl_owner_ != this || tl_shard_ == nullptr || tl_shard_ == &sh);
  assert(net_.host(from).addr_count > 0);
  Packet pkt;
  pkt.src = opts.spoof_src.value_or(net_.primary_addr(from));
  pkt.dst = opts.dst;
  pkt.ttl = opts.ttl.value_or(cfg_.default_ttl);
  pkt.proto = Protocol::udp;
  pkt.src_port = opts.src_port;
  pkt.dst_port = opts.dst_port;
  pkt.payload = std::move(opts.payload);
  inject(sh, std::move(pkt), net_.host(from).asn, /*from_router=*/false);
}

void Simulator::send_icmp(Shard& sh, IcmpType type, util::Ipv4 from,
                          const Packet& offender, Asn origin_as) {
  assert(single_shard() || shard_of_as(origin_as) == sh.index);
  // RFC 1122: never generate ICMP errors about ICMP errors.
  if (offender.proto == Protocol::icmp) return;
  if (type == IcmpType::host_unreachable && faults_.active()) {
    // Dark-AS border routers rate-limit their unreachable chatter: a
    // deterministic per-AS token bucket whose admission verdict is
    // frozen per instant, so same-instant emissions are order-
    // independent (the RRL discipline). The bucket is touched only on
    // the AS-owning shard — the assert above already guarantees that.
    const std::size_t idx = net_.as_index(origin_as);
    if (idx >= faults_.bucket_count()) {
      assert(single_shard());
      faults_.resize_buckets(net_.as_count());
    }
    if (!faults_.allow_unreachable(idx, sh.events.now())) {
      ++sh.counters.icmp_unreachable_suppressed;
      return;
    }
  }
  Packet icmp;
  icmp.src = from;
  icmp.dst = offender.src;
  icmp.ttl = cfg_.default_ttl;
  icmp.proto = Protocol::icmp;
  icmp.icmp_type = type;
  icmp.icmp_quote = IcmpQuote{offender.src, offender.dst, offender.src_port,
                              offender.dst_port};
  ++sh.counters.icmp_generated;
  inject(sh, std::move(icmp), origin_as, /*from_router=*/true);
}

void Simulator::schedule_deliver_on(Shard& sh, std::uint32_t dst_shard,
                                    util::SimTime at, Packet&& pkt,
                                    HostId host) {
  if (dst_shard == sh.index) {
    sh.events.schedule_deliver(at, std::move(pkt), host);
    return;
  }
  if (tl_owner_ == this && tl_shard_ == &sh) {
    // Inside a window on a shard thread: cross-shard events travel
    // through the SPSC mailbox and are admitted at the barrier.
    MailboxMsg m;
    m.kind = MailboxMsg::Kind::deliver;
    m.at = at;
    m.dst_host = host;
    m.pkt = std::move(pkt);
    shards_[dst_shard]->inbox[sh.index].push(std::move(m));
    return;
  }
  // Outside the event loop (setup / main thread between runs) no shard
  // thread is running; scheduling directly keeps call order = seq.
  shards_[dst_shard]->events.schedule_deliver(at, std::move(pkt), host);
}

void Simulator::schedule_icmp_on(Shard& sh, std::uint32_t dst_shard,
                                 util::SimTime at, IcmpType type,
                                 Packet&& offender, util::Ipv4 router,
                                 Asn origin_as) {
  if (dst_shard == sh.index) {
    sh.events.schedule_icmp(at, type, std::move(offender), router, origin_as);
    return;
  }
  if (tl_owner_ == this && tl_shard_ == &sh) {
    MailboxMsg m;
    m.kind = MailboxMsg::Kind::icmp;
    m.icmp_type = type;
    m.at = at;
    m.router = router;
    m.origin_as = origin_as;
    m.pkt = std::move(offender);
    shards_[dst_shard]->inbox[sh.index].push(std::move(m));
    return;
  }
  shards_[dst_shard]->events.schedule_icmp(at, type, std::move(offender),
                                           router, origin_as);
}

void Simulator::inject(Shard& sh, Packet pkt, Asn origin_as,
                       bool from_router) {
  ++sh.counters.sent;
  emit(sh, TapEvent::sent, pkt);

  // BCP 38 egress filtering: customer traffic leaving an AS that
  // validates source addresses must carry a source the AS announces.
  // Infrastructure (router-originated ICMP) is exempt.
  if (!from_router) {
    const auto* info = net_.find_as(origin_as);
    if (info != nullptr && info->cfg.source_address_validation &&
        !Network::owns_source(*info, pkt.src)) {
      ++sh.counters.dropped_sav;
      emit(sh, TapEvent::dropped_sav, pkt);
      return;
    }
  }

  const util::SimTime at_now = sh.events.now();
  // Origin-side outage: a dark AS can neither receive nor send (its
  // hosts went dark too), so traffic originated inside a scheduled
  // window is dropped at the send instant — silently, like a powered-
  // off CPE. Recovery is implicit: sends after the window pass again.
  // Router-originated ICMP is exempt, like the SAV check above: the
  // border router is exactly the component still powered during a
  // dark window — it's what emits the rate-limited host-unreachables.
  if (!from_router && faults_.active() && faults_.in_outage(origin_as, at_now)) {
    ++sh.counters.dropped_outage;
    emit(sh, TapEvent::dropped_outage, pkt);
    return;
  }
  if (cfg_.loss_rate > 0.0 && loss_drop(origin_as, pkt, at_now)) {
    ++sh.counters.dropped_loss;
    emit(sh, TapEvent::dropped_loss, pkt);
    return;
  }

  // Cached zero-copy lookup, fronted by a per-shard one-entry route
  // memo: batch cohorts inject response and relay bursts with the same
  // (origin AS, destination) back-to-back, so the common case skips
  // even the cache probe. A memo hit counts as a cache hit — the entry
  // it pins was served from cached state and would have hit — so
  // observable stats match the classic path exactly. Single-shard runs
  // memoize against the Network's default cache (the classic
  // observable-stats path); sharded runs use this shard's private one.
  std::optional<RouteView> route;
  if (net_.route_cache_enabled()) {
    RouteCache& cache = single_shard() ? net_.default_cache() : sh.route_cache;
    Shard::RouteMemo& memo = sh.route_memo;
    const std::uint64_t epoch = net_.topology_epoch();
    if (memo.epoch == epoch && memo.from == origin_as && memo.dst == pkt.dst) {
      ++cache.stats.hits;
    } else {
      const RouteCache::RouteEntry& entry =
          net_.route_entry(cache, origin_as, pkt.dst);
      memo.epoch = epoch;  // == entry.epoch: lookup stamps the entry
      memo.from = origin_as;
      memo.dst = pkt.dst;
      memo.span = entry.span.get();
      memo.dst_host = entry.dst_host;
    }
    if (memo.span != nullptr) {
      route = RouteView{&memo.span->router_hops, &memo.span->as_path,
                        memo.dst_host};
    }
  } else {
    route = single_shard()
                ? net_.route_view(origin_as, pkt.dst)
                : net_.route_view(sh.route_cache, origin_as, pkt.dst);
  }
  if (!route) {
    ++sh.counters.dropped_no_route;
    emit(sh, TapEvent::dropped_no_route, pkt);
    return;
  }

  const int hops = static_cast<int>(route->router_hops->size());
  if (pkt.ttl <= hops) {
    // TTL reaches zero at router index pkt.ttl (1-based) along the path.
    const int expiring = pkt.ttl;
    const util::Ipv4 router =
        (*route->router_hops)[static_cast<std::size_t>(expiring - 1)];
    const auto router_as = net_.router_owner(router);
    ++sh.counters.ttl_expired;
    emit(sh, TapEvent::ttl_expired, pkt);
    const Asn icmp_origin = router_as.value_or(origin_as);
    schedule_icmp_on(sh, single_shard() ? 0 : shard_of_as(icmp_origin),
                     at_now + cfg_.hop_latency * expiring,
                     IcmpType::ttl_exceeded, std::move(pkt), router,
                     icmp_origin);
    return;
  }

  HostId dst_host = route->dst_host;
  util::SimTime deliver_at = at_now + cfg_.hop_latency * (hops + 1);
  bool dup = false;
  if (faults_.active()) {
    // Every fault decision is made here, on the emitting shard, keyed
    // on the packet content and send instant, and checked against the
    // *routed* destination (before the vantage override below) — so
    // fault fates, counters, and trace records are invariant across
    // shard counts and vantage counts alike.
    const Asn dst_as = net_.host(dst_host).asn;
    if (faults_.in_outage(dst_as, deliver_at)) {
      // Destination went dark before the packet would arrive. The dark
      // AS's border router (still powered — the access link is what
      // failed) reports host-unreachable, rate-limited per AS at
      // emission time on the AS-owning shard (send_icmp's gate).
      ++sh.counters.dropped_outage;
      emit(sh, TapEvent::dropped_outage, pkt);
      if (cfg_.faults.unreachable_per_second > 0.0 &&
          pkt.proto != Protocol::icmp) {
        const util::Ipv4 dark_router = pkt.dst;
        schedule_icmp_on(sh, single_shard() ? 0 : shard_of_as(dst_as),
                         deliver_at, IcmpType::host_unreachable,
                         std::move(pkt), dark_router, dst_as);
      }
      return;
    }
    const FaultSkew skew = faults_.delivery_skew(pkt, at_now);
    if (skew.jittered) {
      ++sh.counters.jittered;
      emit(sh, TapEvent::jittered, pkt);
    }
    if (skew.reordered) {
      ++sh.counters.reordered;
      emit(sh, TapEvent::reordered, pkt);
    }
    // Skew only ever *adds* delay to a base already one full hop
    // latency past any cross-shard boundary, so the conservative
    // window barrier stays safe under maximum jitter.
    deliver_at = deliver_at + skew.extra;
    if (faults_.corrupt_payload(pkt, at_now)) {
      ++sh.counters.corrupted;
      emit(sh, TapEvent::corrupted, pkt);
    }
    if (faults_.duplicate(pkt, at_now)) {
      dup = true;
      ++sh.counters.duplicated;
      emit(sh, TapEvent::duplicated, pkt);
    }
  }
  // Multi-vantage capture: traffic for the capture address is handed
  // to the vantage member pinned to the *emitting* shard, after the
  // route (hop count, delivery time, TTL) has been computed against
  // the capture address's owning host — so the packet's observable
  // trace is byte-identical to the single-vantage run, but delivery
  // never crosses the shard fabric.
  if (dst_host == vantage_capture_host_) {
    dst_host = vantage_member_for_shard_[sh.index];
  }
  pkt.ttl -= hops;
  const std::uint32_t dst_shard = single_shard() ? 0 : host_shard_[dst_host];
  if (dup) {
    // The copy lands one hop latency after the (possibly corrupted)
    // original — duplication happens on the wire, so both carry the
    // same bytes.
    Packet copy = pkt;
    schedule_deliver_on(sh, dst_shard, deliver_at + cfg_.hop_latency,
                        std::move(copy), dst_host);
  }
  schedule_deliver_on(sh, dst_shard, deliver_at, std::move(pkt), dst_host);
}

void Simulator::deliver(Shard& sh, Packet pkt, HostId host) {
  assert(single_shard() || host_shard_[host] == sh.index);
  ++sh.counters.delivered;
  emit(sh, TapEvent::delivered, pkt);
  HostState* st = find_state(host);
  const Host& h = net_.host(host);

  if (pkt.proto == Protocol::icmp) {
    if (st != nullptr && st->extra && st->extra->icmp) st->extra->icmp(pkt);
    return;
  }

  // Transparent forwarding: an IP-level relay installed on the device.
  // The source address is preserved (this is the spoofing behaviour the
  // paper measures) and the TTL continues to decrement, which is what
  // makes DNSRoute++ able to see through the device.
  if (st != nullptr) {
    util::Ipv4* relay_target = nullptr;
    std::uint64_t* relay_count = nullptr;
    if (st->has_redirect && st->redirect_port == pkt.dst_port) {
      relay_target = &st->redirect_target;
      relay_count = &st->redirect_relays;
    } else if (st->extra) {
      if (auto rule = st->extra->redirects.find(pkt.dst_port);
          rule != st->extra->redirects.end()) {
        relay_target = &rule->second.target;
        relay_count = &rule->second.relays;
      }
    }
    if (relay_target != nullptr) {
      if (pkt.ttl - 1 <= 0) {
        // The device's IP stack answers (from the address the probe
        // was sent to); forwarding stops. This is the behaviour
        // DNSRoute++ keys on to locate the forwarder on the path.
        send_icmp(sh, IcmpType::ttl_exceeded, pkt.dst, pkt, h.asn);
        return;
      }
      ++*relay_count;
      ++sh.counters.redirected;
      emit(sh, TapEvent::redirected, pkt);
      Packet relayed = std::move(pkt);
      relayed.ttl -= 1;
      relayed.dst = *relay_target;
      // The relay is host-originated traffic: if this AS enforced SAV
      // the spoofed relay would be dropped, so deployed transparent
      // forwarders only exist behind SAV-free networks.
      inject(sh, std::move(relayed), h.asn, /*from_router=*/false);
      return;
    }
  }

  App* app = nullptr;
  if (st != nullptr) {
    app = st->find_socket(pkt.dst_port);
    if (app == nullptr) app = st->wildcard;
  }
  if (app == nullptr) {
    send_icmp(sh, IcmpType::port_unreachable, pkt.dst, pkt, h.asn);
    return;
  }

  Datagram dgram;
  dgram.src = pkt.src;
  dgram.dst = pkt.dst;
  dgram.src_port = pkt.src_port;
  dgram.dst_port = pkt.dst_port;
  dgram.ttl = pkt.ttl;
  dgram.payload = &pkt.payload;
  app->on_datagram(dgram);
}

App* Simulator::batchable_app(const Packet& pkt, HostId host) {
  if (pkt.proto != Protocol::udp) return nullptr;
  HostState* st = find_state(host);
  if (st == nullptr) return nullptr;
  if (st->has_redirect_on(pkt.dst_port)) return nullptr;
  if (App* app = st->find_socket(pkt.dst_port)) return app;
  return st->wildcard;  // nullptr falls back to scalar (port unreachable)
}

void Simulator::deliver_batch(Shard& sh, std::span<DeliverItem> items) {
  std::size_t i = 0;
  while (i < items.size()) {
    DeliverItem& first = items[i];
    assert(single_shard() || host_shard_[first.host] == sh.index);
    App* app = batchable_app(first.pkt, first.host);
    if (app == nullptr) {
      // ICMP, transparent-forwarder relays, and unbound ports keep the
      // scalar path — they re-inject or answer synchronously, which the
      // run grouping must not reorder around.
      deliver(sh, std::move(first.pkt), first.host);
      ++i;
      continue;
    }
    // Maximal run for one (host, port) binding. The binding cannot
    // change under the run: apps must not rebind their own socket or
    // install a redirect for their own port from inside a batch
    // (App::on_batch contract), so resolving it once is exact.
    std::size_t j = i;
    sh.batch_dgrams.clear();
    while (j < items.size()) {
      DeliverItem& item = items[j];
      if (item.host != first.host || item.pkt.proto != Protocol::udp ||
          item.pkt.dst_port != first.pkt.dst_port) {
        break;
      }
      ++sh.counters.delivered;
      emit(sh, TapEvent::delivered, item.pkt);
      Datagram dgram;
      dgram.src = item.pkt.src;
      dgram.dst = item.pkt.dst;
      dgram.src_port = item.pkt.src_port;
      dgram.dst_port = item.pkt.dst_port;
      dgram.ttl = item.pkt.ttl;
      dgram.payload = &item.pkt.payload;
      sh.batch_dgrams.push_back(dgram);
      ++j;
    }
    app->on_batch(std::span<const Datagram>(sh.batch_dgrams));
    i = j;
  }
}

}  // namespace odns::netsim
