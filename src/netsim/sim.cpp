#include "netsim/sim.hpp"

#include <cassert>
#include <utility>

namespace odns::netsim {

Simulator::Simulator(SimConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  events_.bind_sink(this);
}

void Simulator::deliver_event(Packet&& pkt, HostId host) {
  deliver(std::move(pkt), host);
}

void Simulator::icmp_event(IcmpType type, Packet&& offender, util::Ipv4 router,
                           Asn origin_as) {
  send_icmp(type, router, offender, origin_as);
}

void Simulator::run() { events_.run(); }

void Simulator::run_until(util::SimTime deadline) { events_.run(deadline); }

Simulator::HostState& Simulator::state(HostId id) {
  // HostIds are dense (allocated by Network::add_host); a sentinel or
  // garbage id would turn the resize below into a giant allocation.
  assert(id != kInvalidHost);
  if (id >= host_state_.size()) host_state_.resize(id + 1);
  return host_state_[id];
}

void Simulator::bind_udp(HostId host, std::uint16_t port, App* app) {
  assert(app != nullptr);
  state(host).sockets[port] = app;
}

void Simulator::unbind_udp(HostId host, std::uint16_t port) {
  state(host).sockets.erase(port);
}

void Simulator::bind_udp_wildcard(HostId host, App* app) {
  state(host).wildcard = app;
}

void Simulator::set_icmp_handler(HostId host, IcmpHandler handler) {
  state(host).icmp = std::move(handler);
}

void Simulator::add_port_redirect(HostId host, std::uint16_t dst_port,
                                  util::Ipv4 target) {
  state(host).redirects[dst_port] = Redirect{target, 0};
}

void Simulator::remove_port_redirect(HostId host, std::uint16_t dst_port) {
  state(host).redirects.erase(dst_port);
}

std::uint64_t Simulator::redirect_relays(HostId host) const {
  if (host >= host_state_.size()) return 0;
  std::uint64_t total = 0;
  for (const auto& [port, rule] : host_state_[host].redirects) {
    total += rule.relays;
  }
  return total;
}

void Simulator::emit(TapEvent ev, const Packet& pkt) {
  for (const auto& tap : taps_) tap(ev, pkt);
}

void Simulator::send_udp(HostId from, SendOptions opts) {
  const Host& h = net_.host(from);
  assert(!h.addrs.empty());
  Packet pkt;
  pkt.src = opts.spoof_src.value_or(h.addrs.front());
  pkt.dst = opts.dst;
  pkt.ttl = opts.ttl.value_or(cfg_.default_ttl);
  pkt.proto = Protocol::udp;
  pkt.src_port = opts.src_port;
  pkt.dst_port = opts.dst_port;
  pkt.payload = std::move(opts.payload);
  inject(std::move(pkt), h.asn, /*from_router=*/false);
}

void Simulator::send_icmp(IcmpType type, util::Ipv4 from,
                          const Packet& offender, Asn origin_as) {
  // RFC 1122: never generate ICMP errors about ICMP errors.
  if (offender.proto == Protocol::icmp) return;
  Packet icmp;
  icmp.src = from;
  icmp.dst = offender.src;
  icmp.ttl = cfg_.default_ttl;
  icmp.proto = Protocol::icmp;
  icmp.icmp_type = type;
  icmp.icmp_quote = IcmpQuote{offender.src, offender.dst, offender.src_port,
                              offender.dst_port};
  ++counters_.icmp_generated;
  inject(std::move(icmp), origin_as, /*from_router=*/true);
}

void Simulator::inject(Packet pkt, Asn origin_as, bool from_router) {
  ++counters_.sent;
  emit(TapEvent::sent, pkt);

  // BCP 38 egress filtering: customer traffic leaving an AS that
  // validates source addresses must carry a source the AS announces.
  // Infrastructure (router-originated ICMP) is exempt.
  if (!from_router) {
    const auto* info = net_.find_as(origin_as);
    if (info != nullptr && info->cfg.source_address_validation &&
        !Network::owns_source(*info, pkt.src)) {
      ++counters_.dropped_sav;
      emit(TapEvent::dropped_sav, pkt);
      return;
    }
  }

  if (cfg_.loss_rate > 0.0 && rng_.chance(cfg_.loss_rate)) {
    ++counters_.dropped_loss;
    emit(TapEvent::dropped_loss, pkt);
    return;
  }

  // Cached zero-copy lookup: the view borrows the cache's hop vector,
  // which stays valid for the rest of this (synchronous) function.
  const auto route = net_.route_view(origin_as, pkt.dst);
  if (!route) {
    ++counters_.dropped_no_route;
    emit(TapEvent::dropped_no_route, pkt);
    return;
  }

  const int hops = static_cast<int>(route->router_hops->size());
  if (pkt.ttl <= hops) {
    // TTL reaches zero at router index pkt.ttl (1-based) along the path.
    const int expiring = pkt.ttl;
    const util::Ipv4 router =
        (*route->router_hops)[static_cast<std::size_t>(expiring - 1)];
    const auto router_as = net_.router_owner(router);
    ++counters_.ttl_expired;
    emit(TapEvent::ttl_expired, pkt);
    const Asn icmp_origin = router_as.value_or(origin_as);
    events_.schedule_icmp(now() + cfg_.hop_latency * expiring,
                          IcmpType::ttl_exceeded, std::move(pkt), router,
                          icmp_origin);
    return;
  }

  pkt.ttl -= hops;
  events_.schedule_deliver(now() + cfg_.hop_latency * (hops + 1),
                           std::move(pkt), route->dst_host);
}

void Simulator::deliver(Packet pkt, HostId host) {
  ++counters_.delivered;
  emit(TapEvent::delivered, pkt);
  HostState* st = find_state(host);
  const Host& h = net_.host(host);

  if (pkt.proto == Protocol::icmp) {
    if (st != nullptr && st->icmp) st->icmp(pkt);
    return;
  }

  // Transparent forwarding: an IP-level relay installed on the device.
  // The source address is preserved (this is the spoofing behaviour the
  // paper measures) and the TTL continues to decrement, which is what
  // makes DNSRoute++ able to see through the device.
  if (st != nullptr) {
    auto rule = st->redirects.find(pkt.dst_port);
    if (rule != st->redirects.end()) {
      if (pkt.ttl - 1 <= 0) {
        // The device's IP stack answers (from the address the probe
        // was sent to); forwarding stops. This is the behaviour
        // DNSRoute++ keys on to locate the forwarder on the path.
        send_icmp(IcmpType::ttl_exceeded, pkt.dst, pkt, h.asn);
        return;
      }
      ++rule->second.relays;
      ++counters_.redirected;
      emit(TapEvent::redirected, pkt);
      Packet relayed = std::move(pkt);
      relayed.ttl -= 1;
      relayed.dst = rule->second.target;
      // The relay is host-originated traffic: if this AS enforced SAV
      // the spoofed relay would be dropped, so deployed transparent
      // forwarders only exist behind SAV-free networks.
      inject(std::move(relayed), h.asn, /*from_router=*/false);
      return;
    }
  }

  App* app = nullptr;
  if (st != nullptr) {
    auto sock = st->sockets.find(pkt.dst_port);
    if (sock != st->sockets.end()) {
      app = sock->second;
    } else if (st->wildcard != nullptr) {
      app = st->wildcard;
    }
  }
  if (app == nullptr) {
    send_icmp(IcmpType::port_unreachable, pkt.dst, pkt, h.asn);
    return;
  }

  Datagram dgram;
  dgram.src = pkt.src;
  dgram.dst = pkt.dst;
  dgram.src_port = pkt.src_port;
  dgram.dst_port = pkt.dst_port;
  dgram.ttl = pkt.ttl;
  dgram.payload = &pkt.payload;
  app->on_datagram(dgram);
}

}  // namespace odns::netsim
