#pragma once
// Dynamic packet plane on top of Network: UDP sockets, transparent
// port redirects (the mechanism behind transparent forwarders), ICMP
// generation, per-AS source-address validation, loss, and latency.
//
// Hop traversal is computed analytically from the route (one event per
// packet leg, not per router), which keeps Internet-scale scans cheap
// while preserving exact TTL and ICMP semantics.
//
// The static half (AS graph, routing) lives in network.hpp; the event
// core in event_queue.hpp (scheduler contract: docs/event-engine.md).
// docs/architecture.md walks through how a packet traverses all three.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netsim/event_queue.hpp"
#include "netsim/network.hpp"
#include "netsim/packet.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace odns::netsim {

/// A UDP application bound to a host/port. Implementations receive
/// datagrams and reply through the Simulator reference they were
/// constructed with.
class App {
 public:
  virtual ~App() = default;
  virtual void on_datagram(const Datagram& dgram) = 0;
};

using IcmpHandler = std::function<void(const Packet&)>;

enum class TapEvent : std::uint8_t {
  sent,
  delivered,
  dropped_sav,
  dropped_loss,
  dropped_no_route,
  ttl_expired,
  redirected,
};

using Tap = std::function<void(TapEvent, const Packet&)>;

struct SimConfig {
  util::Duration hop_latency = util::Duration::micros(500);
  double loss_rate = 0.0;
  int default_ttl = 64;
  std::uint64_t seed = 1;
};

struct SimCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_sav = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t ttl_expired = 0;
  std::uint64_t icmp_generated = 0;
  std::uint64_t redirected = 0;
};

struct SendOptions {
  util::Ipv4 dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::vector<std::uint8_t> payload;
  /// When set, the datagram leaves with this (possibly spoofed) source
  /// address; subject to the origin AS's SAV policy.
  std::optional<util::Ipv4> spoof_src;
  std::optional<int> ttl;
};

class Simulator : private PacketSink {
 public:
  explicit Simulator(SimConfig cfg = {});

  Network& net() { return net_; }
  const Network& net() const { return net_; }

  [[nodiscard]] util::SimTime now() const { return events_.now(); }
  /// Legacy closure shim (see docs/event-engine.md for the migration
  /// guide); hot-path timers should prefer schedule_timer below.
  void schedule(util::Duration delay, EventQueue::Action action) {
    events_.schedule_at(now() + delay, std::move(action));
  }
  /// Typed, allocation-free timer: fires target->on_timer(a, b) after
  /// `delay`. The argument words are the target's to interpret.
  void schedule_timer(util::Duration delay, TimerTarget* target,
                      std::uint64_t a, std::uint64_t b = 0) {
    events_.schedule_timer(now() + delay, target, a, b);
  }
  /// Runs until no events remain (or deadline passes).
  void run();
  void run_until(util::SimTime deadline);
  void run_for(util::Duration d) { run_until(now() + d); }

  /// A/B switch for bench_netsim and the determinism suite: disabling
  /// typed events routes every scheduled event through the legacy
  /// closure engine (per-event std::function allocation), reproducing
  /// the pre-pool cost model. Event order and all observable behaviour
  /// are identical in both modes. Only valid while no events are
  /// pending.
  void set_typed_events_enabled(bool on) { events_.set_legacy_mode(!on); }
  [[nodiscard]] bool typed_events_enabled() const {
    return !events_.legacy_mode();
  }

  // --- socket API ----------------------------------------------------
  void bind_udp(HostId host, std::uint16_t port, App* app);
  void unbind_udp(HostId host, std::uint16_t port);
  /// Receives every datagram not claimed by a port-specific binding;
  /// used by the scanner, which owns thousands of ephemeral ports.
  void bind_udp_wildcard(HostId host, App* app);
  void set_icmp_handler(HostId host, IcmpHandler handler);

  /// Installs a transparent forwarding rule: UDP datagrams arriving at
  /// this host for `dst_port` are relayed to `target` with the source
  /// address preserved (IP-level relay: TTL decremented, not reset).
  void add_port_redirect(HostId host, std::uint16_t dst_port,
                         util::Ipv4 target);
  void remove_port_redirect(HostId host, std::uint16_t dst_port);
  [[nodiscard]] std::uint64_t redirect_relays(HostId host) const;

  /// Sends a UDP datagram from `from`. The source defaults to the
  /// host's first address.
  void send_udp(HostId from, SendOptions opts);

  void add_tap(Tap tap) { taps_.push_back(std::move(tap)); }
  [[nodiscard]] const SimCounters& counters() const { return counters_; }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_.executed();
  }

 private:
  struct Redirect {
    util::Ipv4 target;
    std::uint64_t relays = 0;
  };
  struct HostState {
    std::unordered_map<std::uint16_t, App*> sockets;
    App* wildcard = nullptr;
    IcmpHandler icmp;
    std::unordered_map<std::uint16_t, Redirect> redirects;
  };

  /// Grows the dense host-state table on demand and returns the slot.
  HostState& state(HostId id);
  /// O(1) indexed lookup; nullptr for hosts that never had state set.
  [[nodiscard]] HostState* find_state(HostId id) {
    return id < host_state_.size() ? &host_state_[id] : nullptr;
  }
  void emit(TapEvent ev, const Packet& pkt);
  /// Injects a packet into the network from `origin_as`. `from_router`
  /// marks infrastructure-originated traffic (ICMP), which is exempt
  /// from SAV.
  void inject(Packet pkt, Asn origin_as, bool from_router);
  void deliver(Packet pkt, HostId host);
  // PacketSink: pooled packet events dispatch back into the plane.
  void deliver_event(Packet&& pkt, HostId host) override;
  void icmp_event(IcmpType type, Packet&& offender, util::Ipv4 router,
                  Asn origin_as) override;
  void send_icmp(IcmpType type, util::Ipv4 from, const Packet& offender,
                 Asn origin_as);

  SimConfig cfg_;
  Network net_;
  EventQueue events_;
  util::Rng rng_;
  // Dense per-host state indexed by HostId (host ids are allocated
  // contiguously by Network::add_host), so deliver() and the redirect
  // path index in O(1) instead of hashing per packet.
  std::vector<HostState> host_state_;
  std::vector<Tap> taps_;
  SimCounters counters_;
};

}  // namespace odns::netsim
