#pragma once
// Dynamic packet plane on top of Network: UDP sockets, transparent
// port redirects (the mechanism behind transparent forwarders), ICMP
// generation, per-AS source-address validation, loss, and latency.
//
// Hop traversal is computed analytically from the route (one event per
// packet leg, not per router), which keeps Internet-scale scans cheap
// while preserving exact TTL and ICMP semantics.
//
// The simulator executes on 1..N *shards*: each shard owns a typed
// EventQueue, a private route cache, counters, a trace buffer, and an
// RNG stream, and hosts are partitioned AS-granularly across shards.
// With SimConfig::shards == 1 (the default) everything runs exactly as
// the classic single-threaded engine. With more shards, each shard
// runs on its own worker thread under a conservative time-window
// barrier; cross-shard packets travel through fixed-capacity SPSC
// mailboxes and are admitted in the documented (time, shard, seq)
// total order, so an N-shard run is deterministic and its observable
// outputs match the single-shard run. See "Sharded execution" in
// docs/architecture.md and "Cross-shard merge rule" in
// docs/event-engine.md.
//
// The static half (AS graph, routing) lives in network.hpp; the event
// core in event_queue.hpp (scheduler contract: docs/event-engine.md).
// docs/architecture.md walks through how a packet traverses all three.

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netsim/event_queue.hpp"
#include "netsim/fault_plane.hpp"
#include "netsim/network.hpp"
#include "netsim/packet.hpp"
#include "netsim/shard_pool.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace odns::netsim {

/// A UDP application bound to a host/port. Implementations receive
/// datagrams and reply through the Simulator reference they were
/// constructed with.
class App {
 public:
  virtual ~App() = default;
  virtual void on_datagram(const Datagram& dgram) = 0;
  /// Batch entry point: a run of same-instant datagrams for this app on
  /// one (host, port) binding, in delivery order. The default is the
  /// scalar loop, so apps opt in only when they can amortize per-
  /// message work (arena reuse, shared classification). Payload
  /// pointers are valid only for the duration of the call. An app must
  /// not rebind its own socket or install a redirect for its own port
  /// from inside a batch (docs/architecture.md, "Batch packet plane").
  virtual void on_batch(std::span<const Datagram> batch) {
    for (const auto& dgram : batch) on_datagram(dgram);
  }
};

using IcmpHandler = std::function<void(const Packet&)>;

enum class TapEvent : std::uint8_t {
  sent,
  delivered,
  dropped_sav,
  dropped_loss,
  dropped_no_route,
  ttl_expired,
  redirected,
  // Fault-plane events (append-only so recorded traces stay stable).
  dropped_outage,
  jittered,
  reordered,
  duplicated,
  corrupted,
};

using Tap = std::function<void(TapEvent, const Packet&)>;

struct SimConfig {
  util::Duration hop_latency = util::Duration::micros(500);
  double loss_rate = 0.0;
  int default_ttl = 64;
  std::uint64_t seed = 1;

  // --- sharded execution ("Sharded execution", docs/architecture.md) --
  /// Number of event-engine shards. 1 = classic single-threaded run.
  std::uint32_t shards = 1;
  /// With shards > 1: run shards on worker threads (true) or
  /// round-robin on the calling thread (false). Results are
  /// byte-identical either way — the sequential mode exists for
  /// debugging and for environments without spare cores.
  bool shard_threads = true;
  /// SPSC ring slots per directed shard pair; overflow spills to an
  /// unbounded side vector (counted, never dropped or blocking).
  std::uint32_t mailbox_capacity = 4096;
  /// Conservative window length. Zero = auto: hop_latency, the minimum
  /// cross-shard link latency (every cross-shard event is at least one
  /// router hop away, since shards split the world AS-granularly).
  /// Values above hop_latency are clamped down to it — a longer window
  /// would violate the conservative-admission invariant.
  util::Duration lookahead = util::Duration::nanos(0);

  // --- batch packet plane ("Batch packet plane", docs/architecture.md)
  /// Process same-timestamp delivery cohorts as packet batches: one
  /// route-memo lookup per (source-AS, destination) run, one dispatch
  /// per (host, port) run. Event order and every observable output are
  /// byte-identical with batching off (tests/batch_plane_test.cpp);
  /// this switch is the equivalence tests' and benches' A/B lever.
  bool batch_delivery = true;

  // --- fault plane ("Fault plane & graceful degradation",
  // docs/architecture.md) --------------------------------------------
  /// Adverse-network fault knobs (jitter, reordering, duplication,
  /// corruption, AS outage windows, rate-limited ICMP unreachable).
  /// All decisions are stateless per-packet hashes under the same
  /// `seed`, so faulted runs stay byte-identical across shard counts;
  /// the all-zero default keeps inject() on the exact classic path.
  FaultConfig faults;
};

struct SimCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_sav = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t ttl_expired = 0;
  std::uint64_t icmp_generated = 0;
  std::uint64_t redirected = 0;
  // Fault-plane counters (all zero when SimConfig::faults is inert).
  std::uint64_t dropped_outage = 0;
  std::uint64_t jittered = 0;
  std::uint64_t reordered = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t icmp_unreachable_suppressed = 0;

  friend bool operator==(const SimCounters&, const SimCounters&) = default;
};

/// One built-in packet-trace record. `(at, shard, seq)` is the
/// documented cross-shard total order; the remaining fields identify
/// the packet decision the tap observed.
struct TraceRecord {
  std::int64_t at = 0;
  std::uint32_t shard = 0;
  std::uint64_t seq = 0;  // per-shard emission sequence
  TapEvent ev = TapEvent::sent;
  std::uint8_t proto = 0;
  std::int32_t ttl = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Per-shard execution statistics (sharded runs).
struct ShardStats {
  std::uint64_t events_executed = 0;
  /// Cross-shard messages this shard admitted at window barriers.
  std::uint64_t mailbox_in = 0;
  /// Messages that spilled past a mailbox ring's fixed capacity.
  std::uint64_t mailbox_overflows = 0;
  /// CPU seconds this shard spent executing windows + admissions —
  /// max over shards approximates the parallel critical path.
  double busy_seconds = 0.0;
};

struct SendOptions {
  util::Ipv4 dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::vector<std::uint8_t> payload;
  /// When set, the datagram leaves with this (possibly spoofed) source
  /// address; subject to the origin AS's SAV policy.
  std::optional<util::Ipv4> spoof_src;
  std::optional<int> ttl;
};

class Simulator {
 public:
  explicit Simulator(SimConfig cfg = {});
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Network& net() { return net_; }
  const Network& net() const { return net_; }

  /// Current simulated time: the executing shard's clock from inside a
  /// handler; the (synchronized) global clock from outside a run.
  [[nodiscard]] util::SimTime now() const;
  /// Legacy closure shim (see docs/event-engine.md for the migration
  /// guide); hot-path timers should prefer schedule_timer below.
  /// Shard affinity: the executing shard from inside a handler, shard
  /// 0 from outside.
  void schedule(util::Duration delay, EventQueue::Action action);
  /// Typed, allocation-free timer: fires target->on_timer(a, b) after
  /// `delay`. The argument words are the target's to interpret. Shard
  /// affinity as for schedule().
  void schedule_timer(util::Duration delay, TimerTarget* target,
                      std::uint64_t a, std::uint64_t b = 0);
  /// Shard-affine timer: schedules on the shard owning `affinity`, so
  /// the target fires on the thread that owns its host state. Required
  /// for timers armed from outside the event loop (scanner pacing)
  /// when shards > 1; equivalent to schedule_timer when shards == 1.
  void schedule_timer_on(HostId affinity, util::Duration delay,
                         TimerTarget* target, std::uint64_t a,
                         std::uint64_t b = 0);
  /// Runs until no events remain (or deadline passes).
  void run();
  void run_until(util::SimTime deadline);
  void run_for(util::Duration d) { run_until(now() + d); }

  /// A/B switch for bench_netsim and the determinism suite: disabling
  /// typed events routes every scheduled event through the legacy
  /// closure engine (per-event std::function allocation), reproducing
  /// the pre-pool cost model. Event order and all observable behaviour
  /// are identical in both modes. Only valid while no events are
  /// pending, and only on a single-shard simulator (the sharded
  /// runtime is typed-only).
  void set_typed_events_enabled(bool on);
  [[nodiscard]] bool typed_events_enabled() const;

  /// A/B switch for the batch packet plane (SimConfig::batch_delivery):
  /// toggles batch extraction on every shard's event queue. Safe at any
  /// time — both modes run the identical event order.
  void set_batch_delivery_enabled(bool on);
  [[nodiscard]] bool batch_delivery_enabled() const {
    return cfg_.batch_delivery;
  }

  /// Swaps the fault-plane configuration (SimConfig::faults) between
  /// runs: the sweep lever for chaos differentials, and the only way
  /// to schedule outage windows for ASes discovered after world
  /// construction. Call with no events pending — mid-run swaps would
  /// change in-flight decisions.
  void set_fault_config(const FaultConfig& faults);
  [[nodiscard]] const FaultPlane& fault_plane() const { return faults_; }

  // --- sharding ------------------------------------------------------
  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// Shard owning a host (AS-granular partition; freezes the partition
  /// on first use, lazily refreshed when the topology epoch moves).
  [[nodiscard]] std::uint32_t shard_of(HostId host);
  /// Shard-count-independent partition group of an address's owner AS
  /// (see kVirtualShards): target lists interleaved by virtual shard
  /// keep every real shard busy for any real shard count without
  /// changing the probe order between shard counts.
  [[nodiscard]] std::uint32_t virtual_shard_of(util::Ipv4 addr) const;
  /// Same partition group, keyed by the owning AS directly — lets bulk
  /// world builders group hosts they are creating without paying (or
  /// forcing an early freeze of) the addr→host lookup per address.
  [[nodiscard]] std::uint32_t virtual_shard_of_as(Asn asn) const;
  [[nodiscard]] const ShardStats& shard_stats(std::uint32_t shard) const;
  [[nodiscard]] const SimCounters& shard_counters(std::uint32_t shard) const;
  [[nodiscard]] const RouteCacheStats& shard_route_cache_stats(
      std::uint32_t shard) const;

  /// Hosts/ASes are partitioned into this many *virtual* shards, which
  /// map onto real shards by modulo (or by the weighted assignment
  /// below). The virtual partition is shard-count-independent, so
  /// workload-partitioning decisions keyed on it (scanner target
  /// interleaving) produce identical event content for every real
  /// shard count.
  static constexpr std::uint32_t kVirtualShards = 64;

  /// Weighted virtual-shard partition: `weights[v]` is the expected
  /// event load of virtual shard `v` (e.g. its probe-target count).
  /// The 64 virtual shards are then placed onto real shards by
  /// deterministic LPT greedy (heaviest first onto the least-loaded
  /// real shard; ties by lowest index) instead of round-robin modulo.
  /// This only moves *execution* — the virtual partition, and with it
  /// the probe order and every observable result, is unchanged for any
  /// weighting. Equal (or empty) weights reproduce the classic modulo
  /// placement. Call between runs only; the next run re-freezes the
  /// partition.
  void set_partition_load_hints(std::vector<std::uint64_t> weights);

  // --- multi-vantage capture ----------------------------------------
  /// Registers a vantage capture set ("Multi-vantage census",
  /// docs/architecture.md): packets routed to `capture_addr`'s owning
  /// host are instead delivered to the member pinned to the *emitting*
  /// shard, so responses never cross the shard fabric. Member `j`'s AS
  /// is pinned to real shard `j % shards`; with `members.size() >=
  /// shards` every shard captures locally. Routing (hop count, delivery
  /// time, TTL) is still computed against the capture address's owning
  /// host, so traces stay byte-identical to the single-vantage run.
  /// Call between runs only.
  void set_vantage_capture(util::Ipv4 capture_addr,
                           std::vector<HostId> members);
  void clear_vantage_capture();
  [[nodiscard]] bool vantage_capture_active() const {
    return vantage_capture_host_ != kInvalidHost;
  }
  /// Member host that captures traffic emitted by `shard`.
  [[nodiscard]] HostId vantage_member_for_shard(std::uint32_t shard) const {
    return vantage_member_for_shard_[shard];
  }

  // --- socket API ----------------------------------------------------
  void bind_udp(HostId host, std::uint16_t port, App* app);
  void unbind_udp(HostId host, std::uint16_t port);
  /// Receives every datagram not claimed by a port-specific binding;
  /// used by the scanner, which owns thousands of ephemeral ports.
  void bind_udp_wildcard(HostId host, App* app);
  void set_icmp_handler(HostId host, IcmpHandler handler);

  /// Installs a transparent forwarding rule: UDP datagrams arriving at
  /// this host for `dst_port` are relayed to `target` with the source
  /// address preserved (IP-level relay: TTL decremented, not reset).
  void add_port_redirect(HostId host, std::uint16_t dst_port,
                         util::Ipv4 target);
  void remove_port_redirect(HostId host, std::uint16_t dst_port);
  [[nodiscard]] std::uint64_t redirect_relays(HostId host) const;

  /// Sends a UDP datagram from `from`. The source defaults to the
  /// host's first address. From inside a handler, must be called on
  /// the shard that owns `from` (apps always are).
  void send_udp(HostId from, SendOptions opts);

  /// External taps are invoked synchronously on the emitting shard's
  /// thread; they are supported on single-shard simulators (the
  /// classic observability path). On a multi-shard simulator the call
  /// is rejected (debug assert, release no-op): taps would run
  /// concurrently from every shard thread. Sharded runs use the
  /// built-in trace recorder below instead, which is per-shard and
  /// lock-free.
  void add_tap(Tap tap) {
    if (!single_shard()) {
      assert(false && "add_tap is single-shard only; use the trace recorder");
      return;
    }
    taps_.push_back(std::move(tap));
  }

  // --- built-in packet trace ----------------------------------------
  void set_packet_trace_enabled(bool on) { trace_enabled_ = on; }
  [[nodiscard]] bool packet_trace_enabled() const { return trace_enabled_; }
  /// Bounds each shard's trace buffer: records past the cap are counted
  /// (trace_dropped) instead of stored, so tracing a million-host run
  /// cannot grow memory with run length. 0 restores "unbounded". The
  /// cap truncates observation only — packet decisions are unaffected.
  void set_packet_trace_limit(std::size_t per_shard_cap) {
    trace_limit_ = per_shard_cap == 0 ? SIZE_MAX : per_shard_cap;
  }
  /// Records suppressed by the per-shard cap, summed over shards.
  [[nodiscard]] std::uint64_t trace_dropped() const;
  [[nodiscard]] const std::vector<TraceRecord>& shard_trace(
      std::uint32_t shard) const;
  /// All shards' records merged in the documented (time, shard, seq)
  /// total order. Deterministic for a fixed shard count.
  [[nodiscard]] std::vector<TraceRecord> merged_trace() const;
  /// Content-canonical digest: records sorted by (time, packet
  /// content) with shard/seq excluded, then FNV-hashed. Two runs of
  /// the same workload produce equal digests iff they made the same
  /// packet decisions at the same times — the shard-count-invariant
  /// comparison the determinism suite is built on.
  [[nodiscard]] std::uint64_t canonical_trace_digest() const;

  [[nodiscard]] const SimCounters& counters() const;
  [[nodiscard]] const SimConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t events_executed() const;

 private:
  struct Shard;
  friend struct Shard;

  struct Redirect {
    util::Ipv4 target;
    std::uint64_t relays = 0;
  };
  /// Overflow state for the rare hosts that need more than the inline
  /// slots below: multi-port bindings, multiple redirects, or an ICMP
  /// handler (scanners, vantage members, DNSRoute++ probes). At
  /// Internet-census scale ~all of a million hosts are one-socket or
  /// one-redirect devices, so the common case stays heap-free.
  struct HostExtra {
    std::unordered_map<std::uint16_t, App*> sockets;
    std::unordered_map<std::uint16_t, Redirect> redirects;
    IcmpHandler icmp;
  };
  /// Per-host packet-plane state, compact by design: one inline socket
  /// slot, one inline redirect slot, a wildcard pointer, and a lazily
  /// allocated HostExtra for everything else. 48 bytes per host instead
  /// of two hash maps plus a std::function — the dense host_state_
  /// table stays cache-friendly at 10⁶ hosts.
  struct HostState {
    App* app0 = nullptr;  // inline single-port binding
    App* wildcard = nullptr;
    std::unique_ptr<HostExtra> extra;
    util::Ipv4 redirect_target;
    std::uint64_t redirect_relays = 0;
    std::uint16_t app0_port = 0;
    std::uint16_t redirect_port = 0;
    bool has_redirect = false;

    HostExtra& ensure_extra() {
      if (!extra) extra = std::make_unique<HostExtra>();
      return *extra;
    }
    [[nodiscard]] App* find_socket(std::uint16_t port) const {
      if (app0 != nullptr && app0_port == port) return app0;
      if (extra) {
        auto it = extra->sockets.find(port);
        if (it != extra->sockets.end()) return it->second;
      }
      return nullptr;
    }
    [[nodiscard]] bool has_redirect_on(std::uint16_t port) const {
      if (has_redirect && redirect_port == port) return true;
      return extra && extra->redirects.find(port) != extra->redirects.end();
    }
  };

  /// Grows the dense host-state table on demand and returns the slot.
  /// Sharded runs presize the table at partition freeze, so shard
  /// threads never reallocate it.
  HostState& state(HostId id);
  /// O(1) indexed lookup; nullptr for hosts that never had state set.
  [[nodiscard]] HostState* find_state(HostId id) {
    return id < host_state_.size() ? &host_state_[id] : nullptr;
  }

  [[nodiscard]] bool single_shard() const { return shards_.size() == 1; }
  [[nodiscard]] util::Duration lookahead() const;
  /// (Re)computes host/AS -> shard maps; idempotent per topology epoch.
  void freeze_partition();
  [[nodiscard]] std::uint32_t shard_of_as(Asn asn) const;
  /// Executing-shard context (set during event execution), or shard 0.
  [[nodiscard]] Shard& active_shard() const;
  void run_windows(util::SimTime deadline, bool advance_clocks);
  void run_shard_window(Shard& sh, util::SimTime wend);
  void admit_mailboxes(Shard& sh);
  [[nodiscard]] util::SimTime next_event_time() const;

  void emit(Shard& sh, TapEvent ev, const Packet& pkt);
  /// Per-packet loss decision: a hash of (seed, packet identity, time)
  /// — not an RNG stream draw — so the decision is independent of
  /// event interleaving and of the shard count. Byte-identical packets
  /// injected at the same instant (synthetic bursts; real traffic
  /// varies ports/txids) are disambiguated by a per-origin-AS burst
  /// counter, which is shard-safe because an AS is owned by exactly
  /// one shard.
  [[nodiscard]] bool loss_drop(Asn origin_as, const Packet& pkt,
                               util::SimTime at);
  /// Injects a packet into the network from `origin_as` on shard `sh`
  /// (which must own the origin). `from_router` marks infrastructure-
  /// originated traffic (ICMP), which is exempt from SAV.
  void inject(Shard& sh, Packet pkt, Asn origin_as, bool from_router);
  void deliver(Shard& sh, Packet pkt, HostId host);
  /// Batch delivery (set_batch_delivery_enabled): processes a cohort
  /// run, grouping consecutive same-(host, port) UDP packets into one
  /// App::on_batch call; redirects, ICMP, and unbound ports fall back
  /// to the scalar deliver() in order.
  void deliver_batch(Shard& sh, std::span<DeliverItem> items);
  /// The app a packet would dispatch to if it takes the batchable fast
  /// path (plain UDP, no redirect on its port); nullptr otherwise.
  [[nodiscard]] App* batchable_app(const Packet& pkt, HostId host);
  void send_icmp(Shard& sh, IcmpType type, util::Ipv4 from,
                 const Packet& offender, Asn origin_as);
  /// Routes a packet-plane event to its owning shard: locally when
  /// `sh` owns it, else through the SPSC mailbox toward `dst_shard`.
  void schedule_deliver_on(Shard& sh, std::uint32_t dst_shard,
                           util::SimTime at, Packet&& pkt, HostId host);
  void schedule_icmp_on(Shard& sh, std::uint32_t dst_shard, util::SimTime at,
                        IcmpType type, Packet&& offender, util::Ipv4 router,
                        Asn origin_as);

  static thread_local Shard* tl_shard_;
  static thread_local const Simulator* tl_owner_;

  SimConfig cfg_;
  Network net_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ShardPool pool_;
  // Dense per-host state indexed by HostId (host ids are allocated
  // contiguously by Network::add_host), so deliver() and the redirect
  // path index in O(1) instead of hashing per packet. Each host's
  // state is only ever touched by the shard that owns the host.
  std::vector<HostState> host_state_;
  /// Identical-duplicate disambiguation for loss_drop, indexed by AS
  /// index (each slot written only by the AS's owning shard). Presized
  /// at partition freeze for sharded runs. `seen` counts occurrences
  /// per content hash within the current nanosecond, so the fates
  /// drawn at one instant are a pure function of the packet multiset —
  /// independent of the order same-instant packets interleave in.
  struct LossBurst {
    std::int64_t at = -1;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> seen;
  };
  std::vector<LossBurst> loss_burst_;
  /// Adverse-network decisions (stateless hashes + per-AS unreachable
  /// buckets, each touched only by the AS's owning shard).
  FaultPlane faults_;
  std::vector<Tap> taps_;
  bool trace_enabled_ = false;
  std::size_t trace_limit_ = SIZE_MAX;  // per shard
  // Partition maps, valid while partition_epoch_ == net_.topology_epoch().
  std::vector<std::uint32_t> host_shard_;
  std::vector<std::uint32_t> as_shard_;  // by AS index
  std::uint64_t partition_epoch_ = 0;
  /// Expected load per virtual shard (set_partition_load_hints); empty
  /// = unweighted modulo placement.
  std::vector<std::uint64_t> partition_load_hints_;
  // Vantage capture set (set_vantage_capture). The capture-host
  // sentinel keeps the inject() fast path to one compare when no set
  // is registered.
  HostId vantage_capture_host_ = kInvalidHost;
  std::vector<HostId> vantage_members_;
  std::vector<HostId> vantage_member_for_shard_;  // by real shard
  mutable SimCounters agg_counters_;
};

}  // namespace odns::netsim
