#pragma once
// Stateless per-packet decision hashing — the one mechanism allowed
// for stochastic packet-plane choices (loss, RRL slip). A decision is
// a pure function of (seed, decision domain, packet identity, time):
// it never draws from an RNG stream, so it does not depend on how many
// decisions other packets made before it. That independence is what
// keeps every shard count and event interleaving byte-identical — a
// per-shard RNG stream would reorder draws the moment the partition
// changes. See "Attack scenarios" in docs/architecture.md.

#include <cstdint>

namespace odns::netsim {

/// Domain separators keep unrelated decisions decorrelated even when
/// they hash the same packet at the same instant.
inline constexpr std::uint64_t kLossDomain = 0x6C6F73735F686173ull;     // "loss_has"
inline constexpr std::uint64_t kRrlSlipDomain = 0x72726C5F736C6970ull;  // "rrl_slip"

// Fault-plane domains (netsim::FaultPlane, "Fault plane & graceful
// degradation" in docs/architecture.md). Each adverse-network effect
// draws its occurrence — and, where it needs one, its magnitude — from
// its own domain over the same (seed, packet identity, send instant)
// words the loss decision hashes, so a packet's jitter never correlates
// with its duplication fate, and none of them consult per-shard state.
inline constexpr std::uint64_t kJitterDomain = 0x6A69745F64656C79ull;   // "jit_dely"
inline constexpr std::uint64_t kReorderDomain = 0x72656F7264657221ull;  // "reorder!"
inline constexpr std::uint64_t kDupDomain = 0x6475705F706B7421ull;      // "dup_pkt!"
inline constexpr std::uint64_t kCorruptDomain = 0x636F727275707421ull;  // "corrupt!"
inline constexpr std::uint64_t kOutageDomain = 0x6F75746167655F21ull;   // "outage_!"

/// splitmix64 finalizer — the stateless mixing step behind every
/// per-packet decision.
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Chains up to three identity words into one decision hash. Callers
/// fold packet identity (addresses, ports, txid) and the decision
/// instant into the words; equal inputs always produce equal
/// decisions, on any shard, in any order.
[[nodiscard]] inline std::uint64_t stateless_decision(std::uint64_t seed,
                                                      std::uint64_t domain,
                                                      std::uint64_t w0,
                                                      std::uint64_t w1 = 0,
                                                      std::uint64_t w2 = 0) {
  std::uint64_t h = mix64(seed ^ domain);
  h = mix64(h ^ w0);
  h = mix64(h ^ w1);
  h = mix64(h ^ w2);
  return h;
}

}  // namespace odns::netsim
