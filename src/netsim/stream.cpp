#include "netsim/stream.hpp"

namespace odns::netsim {

std::vector<std::uint8_t> Segment::encode() const {
  std::vector<std::uint8_t> wire;
  wire.reserve(1 + data.size());
  // Magic tag distinguishes stream segments from stray UDP payloads.
  wire.push_back(0xE7);
  wire.push_back(static_cast<std::uint8_t>(kind));
  wire.insert(wire.end(), data.begin(), data.end());
  return wire;
}

std::optional<Segment> Segment::decode(const std::vector<std::uint8_t>& wire) {
  if (wire.size() < 2 || wire[0] != (0xE7)) return std::nullopt;
  Segment seg;
  seg.kind = static_cast<SegmentKind>(wire[1]);
  seg.data.assign(wire.begin() + 2, wire.end());
  return seg;
}

StreamEndpoint::StreamEndpoint(Simulator& sim, HostId host,
                               StreamCallbacks callbacks,
                               util::Duration connect_timeout)
    : sim_(&sim), host_(host), callbacks_(std::move(callbacks)),
      connect_timeout_(connect_timeout) {}

void StreamEndpoint::listen(std::uint16_t port) {
  listen_port_ = port;
  sim_->bind_udp(host_, port, this);
}

ConnectionPtr StreamEndpoint::connect(util::Ipv4 addr, std::uint16_t port) {
  auto conn = std::make_shared<Connection>();
  conn->local_addr = sim_->net().primary_addr(host_);
  conn->peer_addr = addr;
  conn->peer_port = port;
  conn->local_port = next_ephemeral_;
  next_ephemeral_ =
      next_ephemeral_ >= 60000 ? 52000
                               : static_cast<std::uint16_t>(next_ephemeral_ + 1);
  conn->initiator = true;
  conn->state = Connection::State::syn_sent;
  conn->id = next_conn_id_++;
  sim_->bind_udp(host_, conn->local_port, this);
  connections_[key(addr, port, conn->local_port)] = conn;
  transmit(conn, Segment{SegmentKind::syn, {}});
  // A handshake whose SYN-ACK never arrives (or arrived from a peer we
  // do not recognize — the transparent-relay case) must fail loudly.
  // Shard-affine: connect() may be called from outside the event loop,
  // and the timeout must fire on the shard that owns this endpoint.
  sim_->schedule_timer_on(host_, connect_timeout_, this,
                          key(addr, port, conn->local_port), conn->id);
  return conn;
}

void StreamEndpoint::on_timer(std::uint64_t conn_key, std::uint64_t conn_id) {
  // Connect timeout. Every erasure path (close, rst, completed
  // handshake) leaves state != syn_sent, so a stale timer is a no-op;
  // the id check keeps a reused 4-tuple's new connection safe.
  auto it = connections_.find(conn_key);
  if (it == connections_.end()) return;
  const ConnectionPtr conn = it->second;
  if (conn->id != conn_id || conn->state != Connection::State::syn_sent) {
    return;
  }
  conn->state = Connection::State::closed;
  connections_.erase(it);
  ++handshakes_rejected_;
  if (callbacks_.on_error) callbacks_.on_error(conn, "handshake timeout");
}

void StreamEndpoint::send(const ConnectionPtr& conn,
                          std::vector<std::uint8_t> message) {
  if (conn->state != Connection::State::established) return;
  transmit(conn, Segment{SegmentKind::data, std::move(message)});
}

void StreamEndpoint::close(const ConnectionPtr& conn) {
  if (conn->state == Connection::State::closed) return;
  transmit(conn, Segment{SegmentKind::fin, {}});
  conn->state = Connection::State::closed;
  connections_.erase(key(conn->peer_addr, conn->peer_port, conn->local_port));
}

void StreamEndpoint::transmit(const ConnectionPtr& conn, const Segment& seg) {
  SendOptions opts;
  opts.dst = conn->peer_addr;
  opts.src_port = conn->local_port;
  opts.dst_port = conn->peer_port;
  opts.payload = seg.encode();
  sim_->send_udp(host_, std::move(opts));
}

void StreamEndpoint::on_datagram(const Datagram& dgram) {
  auto seg = Segment::decode(*dgram.payload);
  if (!seg) return;

  const auto conn_key = key(dgram.src, dgram.src_port, dgram.dst_port);
  auto it = connections_.find(conn_key);

  if (it == connections_.end()) {
    if (seg->kind == SegmentKind::syn && dgram.dst_port == listen_port_ &&
        listen_port_ != 0) {
      // Passive open.
      auto conn = std::make_shared<Connection>();
      conn->local_addr = dgram.dst;
      conn->peer_addr = dgram.src;
      conn->peer_port = dgram.src_port;
      conn->local_port = dgram.dst_port;
      conn->state = Connection::State::syn_received;
      connections_[conn_key] = conn;
      transmit(conn, Segment{SegmentKind::syn_ack, {}});
      return;
    }
    if (seg->kind == SegmentKind::syn_ack && dgram.dst_port >= 52000) {
      // A SYN-ACK that matches no connection: this is exactly what the
      // owner of a spoofed source sees. Reset it.
      SendOptions rst;
      rst.dst = dgram.src;
      rst.src_port = dgram.dst_port;
      rst.dst_port = dgram.src_port;
      rst.payload = Segment{SegmentKind::rst, {}}.encode();
      sim_->send_udp(host_, std::move(rst));
      return;
    }
    return;  // stray segment
  }

  const ConnectionPtr conn = it->second;
  switch (seg->kind) {
    case SegmentKind::syn_ack: {
      if (conn->state != Connection::State::syn_sent) return;
      // Peer validation — the heart of the DoT-vs-transparent-forwarder
      // result: the handshake reply must come from the address we
      // connected to. Through a transparent relay it does not.
      // (Matching on the 4-tuple key above already enforces this; a
      // SYN-ACK from a different address lands in the no-connection
      // branch and is reset. This branch therefore only sees valid
      // peers.)
      conn->state = Connection::State::established;
      transmit(conn, Segment{SegmentKind::ack, {}});
      if (callbacks_.on_connect) callbacks_.on_connect(conn);
      return;
    }
    case SegmentKind::ack: {
      if (conn->state == Connection::State::syn_received) {
        conn->state = Connection::State::established;
        if (callbacks_.on_accept) callbacks_.on_accept(conn);
      }
      return;
    }
    case SegmentKind::data: {
      if (conn->state != Connection::State::established) return;
      if (callbacks_.on_message) {
        callbacks_.on_message(conn, std::move(seg->data));
      }
      return;
    }
    case SegmentKind::rst: {
      const bool was_handshaking =
          conn->state == Connection::State::syn_sent ||
          conn->state == Connection::State::syn_received;
      conn->state = Connection::State::closed;
      connections_.erase(conn_key);
      if (was_handshaking) ++handshakes_rejected_;
      if (callbacks_.on_error) callbacks_.on_error(conn, "connection reset");
      return;
    }
    case SegmentKind::fin: {
      conn->state = Connection::State::closed;
      connections_.erase(conn_key);
      return;
    }
    case SegmentKind::syn:
      return;  // duplicate SYN on existing connection: ignore
  }
}

}  // namespace odns::netsim
