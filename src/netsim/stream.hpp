#pragma once
// Minimal connection-oriented transport on top of the packet plane: a
// three-way handshake followed by length-prefixed messages, enough to
// model DNS-over-TCP / DoT semantics.
//
// The property under study (§6 of the paper): a client validates that
// the SYN-ACK arrives from the address it connected to. A transparent
// forwarder relays the SYN with the client's source preserved, so the
// server's SYN-ACK reaches the client directly — from the *server's*
// address, not the forwarder's — and the handshake is rejected.
// Connection-based DNS therefore cannot be transparently forwarded.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "netsim/sim.hpp"

namespace odns::netsim {

enum class SegmentKind : std::uint8_t { syn, syn_ack, ack, data, rst, fin };

/// Stream segments ride inside UDP-shaped packets with a tiny header
/// encoded into the payload (the packet plane stays protocol-agnostic).
struct Segment {
  SegmentKind kind = SegmentKind::syn;
  std::vector<std::uint8_t> data;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<Segment> decode(const std::vector<std::uint8_t>& wire);
};

class StreamEndpoint;

/// One connection's state, shared between the endpoint and callbacks.
struct Connection {
  enum class State : std::uint8_t {
    syn_sent,
    syn_received,
    established,
    closed,
  };
  util::Ipv4 local_addr;
  util::Ipv4 peer_addr;      // the address this side believes it talks to
  std::uint16_t local_port = 0;
  std::uint16_t peer_port = 0;
  State state = State::syn_sent;
  bool initiator = false;
  /// Endpoint-unique id; connect timeouts carry it so a 4-tuple key
  /// reused by a later connection cannot be timed out by a stale timer.
  std::uint64_t id = 0;
};
using ConnectionPtr = std::shared_ptr<Connection>;

struct StreamCallbacks {
  /// New inbound connection established (server side).
  std::function<void(const ConnectionPtr&)> on_accept;
  /// Outbound connect completed (client side).
  std::function<void(const ConnectionPtr&)> on_connect;
  /// A full message arrived.
  std::function<void(const ConnectionPtr&, std::vector<std::uint8_t>)>
      on_message;
  /// Connection refused / reset / handshake rejected.
  std::function<void(const ConnectionPtr&, const std::string& reason)>
      on_error;
};

/// A host's connection-oriented endpoint. Register one per host; it
/// claims a listening port and a range of ephemeral ports via the
/// simulator's UDP plumbing.
class StreamEndpoint : public App, public TimerTarget {
 public:
  StreamEndpoint(Simulator& sim, HostId host, StreamCallbacks callbacks,
                 util::Duration connect_timeout = util::Duration::seconds(3));

  /// Listens for handshakes on `port`.
  void listen(std::uint16_t port);

  /// Initiates a connection to addr:port; on_connect / on_error fire
  /// later. Returns the connection handle (state syn_sent).
  ConnectionPtr connect(util::Ipv4 addr, std::uint16_t port);

  /// Sends one length-delimited message on an established connection.
  void send(const ConnectionPtr& conn, std::vector<std::uint8_t> message);

  void close(const ConnectionPtr& conn);

  [[nodiscard]] std::uint64_t handshakes_rejected() const {
    return handshakes_rejected_;
  }

  void on_datagram(const Datagram& dgram) override;
  /// Connect-timeout timer: `conn_key` is the 4-tuple key, `conn_id`
  /// the Connection::id the timer was armed for.
  void on_timer(std::uint64_t conn_key, std::uint64_t conn_id) override;

 private:
  static std::uint64_t key(util::Ipv4 peer, std::uint16_t peer_port,
                           std::uint16_t local_port) {
    return (std::uint64_t{peer.value()} << 32) |
           (std::uint64_t{peer_port} << 16) | local_port;
  }
  void transmit(const ConnectionPtr& conn, const Segment& seg);

  Simulator* sim_;
  HostId host_;
  StreamCallbacks callbacks_;
  util::Duration connect_timeout_;
  std::uint16_t listen_port_ = 0;
  std::uint16_t next_ephemeral_ = 52000;
  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, ConnectionPtr> connections_;
  std::uint64_t handshakes_rejected_ = 0;
};

}  // namespace odns::netsim
