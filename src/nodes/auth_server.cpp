#include "nodes/auth_server.hpp"

#include <algorithm>

namespace odns::nodes {

using dnswire::Message;
using dnswire::Name;
using dnswire::Rcode;
using dnswire::ResourceRecord;
using dnswire::RrType;

std::string Zone::key(const Name& n, RrType t) {
  return n.canonical() + "/" + std::to_string(static_cast<std::uint16_t>(t));
}

void Zone::add_record(ResourceRecord rr) {
  names_[rr.name.canonical()] = true;
  rrsets_[key(rr.name, rr.type)].push_back(std::move(rr));
}

void Zone::add_a(const std::string& name, util::Ipv4 addr, std::uint32_t ttl) {
  auto n = Name::parse(name);
  if (!n) return;
  add_record(ResourceRecord::a(*n, addr, ttl));
}

void Zone::delegate(const Name& child, const Name& ns_host,
                    util::Ipv4 glue_addr, std::uint32_t ttl) {
  Delegation* d = nullptr;
  for (auto& existing : delegations) {
    if (existing.child == child) {
      d = &existing;
      break;
    }
  }
  if (d == nullptr) {
    delegations.emplace_back();
    d = &delegations.back();
    d->child = child;
  }
  d->ns_records.push_back(ResourceRecord::ns(child, ns_host, ttl));
  d->glue.push_back(ResourceRecord::a(ns_host, glue_addr, ttl));
}

const std::vector<ResourceRecord>* Zone::find(const Name& name,
                                              RrType type) const {
  auto it = rrsets_.find(key(name, type));
  return it == rrsets_.end() ? nullptr : &it->second;
}

bool Zone::has_name(const Name& name) const {
  return names_.contains(name.canonical());
}

const Delegation* Zone::find_delegation(const Name& name) const {
  for (const auto& d : delegations) {
    if (name.is_subdomain_of(d.child)) return &d;
  }
  return nullptr;
}

AuthServer::AuthServer(netsim::Simulator& sim, netsim::HostId host)
    : DnsNode(sim, host) {}

Zone& AuthServer::add_zone(const Name& origin) {
  auto& z = zones_.emplace_back();
  z.origin = origin;
  return z;
}

Zone* AuthServer::zone_for_mutable(const Name& name) {
  return const_cast<Zone*>(zone_for(name));
}

void AuthServer::start() { sim().bind_udp(host(), kDnsPort, this); }

const Zone* AuthServer::zone_for(const Name& qname) const {
  // Longest-origin match so that a server hosting both "net" and
  // "odns-study.net" answers authoritatively for the deeper zone.
  const Zone* best = nullptr;
  for (const auto& z : zones_) {
    if (qname.is_subdomain_of(z.origin)) {
      if (best == nullptr ||
          z.origin.label_count() > best->origin.label_count()) {
        best = &z;
      }
    }
  }
  return best;
}

void AuthServer::answer_mirror(const netsim::Datagram& dgram,
                               const Message& query) {
  Message resp = dnswire::make_response(query);
  resp.header.aa = true;
  const auto& cfg = *mirror_;
  // Dynamic record first: mirrors the immediate client — for relayed
  // queries this is the recursive resolver's egress address, which is
  // exactly what lets the scanner see *which* resolver served it.
  resp.answers.push_back(ResourceRecord::a(cfg.name, dgram.src, cfg.ttl));
  if (cfg.include_control) {
    resp.answers.push_back(
        ResourceRecord::a(cfg.name, cfg.control_addr, cfg.ttl));
  }
  ++queries_answered_;
  reply(dgram, resp);
}

bool AuthServer::build_mirror_response(dnswire::WireArena& arena,
                                       const dnswire::MessageView& query,
                                       util::Ipv4 client,
                                       dnswire::MessageView& out) const {
  if (query.header.qr) return false;
  if (!mirror_) return false;
  if (query.questions.size() != 1) return false;
  const auto& q = query.questions.front();
  if (q.type != RrType::a && q.type != RrType::any) return false;
  if (!q.name.equals(mirror_->name)) return false;

  const auto& cfg = *mirror_;
  const std::size_t n = cfg.include_control ? 2 : 1;
  auto answers = arena.alloc_array<dnswire::RecordView>(n);
  // Dynamic record first: mirrors the immediate client — for relayed
  // queries this is the recursive resolver's egress address, which is
  // exactly what lets the scanner see *which* resolver served it. The
  // owner name reuses the question's view; the encoder compresses it
  // to a pointer at the echoed question, exactly as the heap path
  // compresses cfg.name there (the suffix key is case-folded).
  answers[0].name = q.name;
  answers[0].type = RrType::a;
  answers[0].ttl = cfg.ttl;
  answers[0].rdata.tag = dnswire::RdataView::Tag::a;
  answers[0].rdata.a_addr = client;
  if (cfg.include_control) {
    answers[1] = answers[0];
    answers[1].rdata.a_addr = cfg.control_addr;
  }

  out = dnswire::MessageView{};
  out.header.id = query.header.id;
  out.header.qr = true;
  out.header.rd = query.header.rd;
  out.header.aa = true;
  out.questions = query.questions;
  out.answers = answers;
  return true;
}

bool AuthServer::on_message_view(const netsim::Datagram& dgram,
                                 const dnswire::MessageView& msg) {
  if (msg.header.qr) return true;  // not a query; ignore (as on_message)
  // Query logging and rate limiting want heap Names / per-source state;
  // those configurations keep the heap model end to end.
  if (log_queries_ || limiter_) return false;
  dnswire::MessageView resp;
  if (!build_mirror_response(scratch_arena(), msg, dgram.src, resp)) {
    return false;
  }
  ++queries_answered_;
  reply_view(dgram, resp);
  return true;
}

void AuthServer::on_message(const netsim::Datagram& dgram, Message msg) {
  if (msg.header.qr) return;  // not a query; ignore
  if (msg.questions.size() != 1) {
    Message resp = dnswire::make_response(msg, Rcode::formerr);
    reply(dgram, resp);
    return;
  }
  const auto& q = msg.questions.front();

  if (log_queries_) {
    query_log_.push_back(QueryLogEntry{q.name, dgram.src, sim().now()});
  }
  if (limiter_ && !limiter_->allow(dgram.src, sim().now())) {
    ++counters_.rate_limited;
    return;  // silently dropped, like the deployed sensors
  }

  if (mirror_ && q.name == mirror_->name &&
      (q.type == RrType::a || q.type == RrType::any)) {
    answer_mirror(dgram, msg);
    return;
  }

  const Zone* zone = zone_for(q.name);
  if (zone == nullptr) {
    ++counters_.refused;
    Message resp = dnswire::make_response(msg, Rcode::refused);
    reply(dgram, resp);
    return;
  }

  // Delegation below us? Hand out a referral (never authoritative).
  if (const auto* d = zone->find_delegation(q.name)) {
    Message resp = dnswire::make_response(msg);
    resp.header.aa = false;
    resp.authorities = d->ns_records;
    resp.additionals = d->glue;
    ++queries_answered_;
    reply(dgram, resp);
    return;
  }

  Message resp = dnswire::make_response(msg);
  resp.header.aa = true;
  if (const auto* rrs = zone->find(q.name, q.type)) {
    resp.answers = *rrs;
  } else if (q.type == RrType::any && zone->has_name(q.name)) {
    for (auto type : {RrType::a, RrType::ns, RrType::txt, RrType::cname}) {
      if (const auto* set = zone->find(q.name, type)) {
        resp.answers.insert(resp.answers.end(), set->begin(), set->end());
      }
    }
  } else if (const auto* cname = zone->find(q.name, RrType::cname)) {
    resp.answers = *cname;
  } else if (wildcard_a_ && q.name != zone->origin &&
             (q.type == RrType::a || q.type == RrType::any)) {
    // Destination-encoded scan names: synthesize an answer for any
    // subdomain so the query-based method's unique names all resolve.
    resp.answers.push_back(
        ResourceRecord::a(q.name, *wildcard_a_, zone->default_ttl));
  } else if (zone->has_name(q.name)) {
    // NODATA: name exists, type does not.
    resp.authorities.push_back(ResourceRecord::soa(
        zone->origin, zone->origin, 1, zone->negative_ttl));
  } else {
    resp.header.rcode = Rcode::nxdomain;
    resp.authorities.push_back(ResourceRecord::soa(
        zone->origin, zone->origin, 1, zone->negative_ttl));
  }
  ++queries_answered_;
  reply(dgram, resp);
}

}  // namespace odns::nodes
