#pragma once
// Authoritative name server. Supports ordinary static zones with
// delegations (so recursive resolvers can iterate root → TLD → leaf)
// plus the paper's "recursive mirror" mode: the scan zone's A answer
// carries (1) a dynamic A record mirroring the address of the immediate
// client — which is the recursive resolver that contacted us — and
// (2) a static control A record used to detect in-path manipulation.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "nodes/dns_node.hpp"
#include "nodes/ratelimit.hpp"

namespace odns::nodes {

/// A delegation point inside a zone: NS records plus glue addresses.
struct Delegation {
  dnswire::Name child;
  std::vector<dnswire::ResourceRecord> ns_records;
  std::vector<dnswire::ResourceRecord> glue;
};

struct Zone {
  dnswire::Name origin;
  std::uint32_t default_ttl = 3600;
  std::uint32_t negative_ttl = 300;
  std::vector<Delegation> delegations;

  void add_record(dnswire::ResourceRecord rr);
  void add_a(const std::string& name, util::Ipv4 addr,
             std::uint32_t ttl = 3600);
  void delegate(const dnswire::Name& child, const dnswire::Name& ns_host,
                util::Ipv4 glue_addr, std::uint32_t ttl = 86400);

  [[nodiscard]] const std::vector<dnswire::ResourceRecord>* find(
      const dnswire::Name& name, dnswire::RrType type) const;
  [[nodiscard]] bool has_name(const dnswire::Name& name) const;
  [[nodiscard]] const Delegation* find_delegation(
      const dnswire::Name& name) const;

 private:
  static std::string key(const dnswire::Name& n, dnswire::RrType t);
  std::unordered_map<std::string, std::vector<dnswire::ResourceRecord>> rrsets_;
  std::unordered_map<std::string, bool> names_;
};

/// Recursive-mirror configuration (§4.1 / Fig. 7).
struct MirrorConfig {
  dnswire::Name name;          // the static scan name, e.g. scan.odns-study.net
  util::Ipv4 control_addr;     // static control record value
  std::uint32_t ttl = 300;
  /// When false, only the dynamic record is emitted (the Shadowserver-
  /// style single-record contract — the ablation in §4.2).
  bool include_control = true;
};

struct QueryLogEntry {
  dnswire::Name qname;
  util::Ipv4 client;
  util::SimTime time;
};

class AuthServer : public DnsNode {
 public:
  AuthServer(netsim::Simulator& sim, netsim::HostId host);

  Zone& add_zone(const dnswire::Name& origin);
  /// Mutable longest-match zone lookup (the zone `name` would be
  /// answered from), or nullptr. Adding records between runs is safe —
  /// zone data is not topology, so the shard partition is untouched.
  [[nodiscard]] Zone* zone_for_mutable(const dnswire::Name& name);
  void set_mirror(MirrorConfig cfg) { mirror_ = std::move(cfg); }
  /// Enables answering any not-otherwise-matched name under a zone with
  /// this address — the query-based (destination-encoded) method needs
  /// every unique subdomain to resolve.
  void set_wildcard_a(util::Ipv4 addr) { wildcard_a_ = addr; }
  void enable_rate_limit(util::Duration window) {
    limiter_.emplace(window);
  }
  void enable_query_log() { log_queries_ = true; }

  /// Binds to port 53 on the host.
  void start();

  [[nodiscard]] std::uint64_t queries_answered() const {
    return queries_answered_;
  }
  [[nodiscard]] const std::vector<QueryLogEntry>& query_log() const {
    return query_log_;
  }
  [[nodiscard]] const PrefixRateLimiter* limiter() const {
    return limiter_ ? &*limiter_ : nullptr;
  }

  /// Arena-native mirror classification: if `query` takes the
  /// recursive-mirror answer, builds the response view in `arena` and
  /// returns true. Together with decode_into/encode_into this is the
  /// zero-heap serving unit the allocation audit drives
  /// (tests/alloc_audit_test.cpp); answer bytes are identical to the
  /// heap path's, because the answer owner name compresses to a
  /// pointer at the echoed question either way.
  [[nodiscard]] bool build_mirror_response(dnswire::WireArena& arena,
                                           const dnswire::MessageView& query,
                                           util::Ipv4 client,
                                           dnswire::MessageView& out) const;

 protected:
  bool on_message_view(const netsim::Datagram& dgram,
                       const dnswire::MessageView& msg) override;
  void on_message(const netsim::Datagram& dgram, dnswire::Message msg) override;

 private:
  const Zone* zone_for(const dnswire::Name& qname) const;
  void answer_mirror(const netsim::Datagram& dgram,
                     const dnswire::Message& query);

  std::vector<Zone> zones_;
  std::optional<MirrorConfig> mirror_;
  std::optional<util::Ipv4> wildcard_a_;
  std::optional<PrefixRateLimiter> limiter_;
  bool log_queries_ = false;
  std::vector<QueryLogEntry> query_log_;
  std::uint64_t queries_answered_ = 0;
};

}  // namespace odns::nodes
