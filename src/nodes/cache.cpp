#include "nodes/cache.hpp"

#include <algorithm>

namespace odns::nodes {

std::string DnsCache::key(const dnswire::Name& name, dnswire::RrType type) {
  return name.canonical() + "/" +
         std::to_string(static_cast<std::uint16_t>(type));
}

void DnsCache::put(const dnswire::Name& name, dnswire::RrType type,
                   const std::vector<dnswire::ResourceRecord>& records,
                   util::SimTime now) {
  if (records.empty()) return;
  std::uint32_t ttl = max_ttl_;
  for (const auto& rr : records) ttl = std::min(ttl, rr.ttl);
  if (entries_.size() >= max_entries_) {
    // Full: drop an arbitrary entry (the paper's resolvers face cache
    // eviction pressure from query-based scans; modeled coarsely).
    entries_.erase(entries_.begin());
    ++stats_.evictions;
  }
  Entry e;
  e.records = records;
  e.expiry = now + util::Duration::seconds(ttl);
  e.original_ttl = ttl;
  entries_[key(name, type)] = std::move(e);
  ++stats_.inserts;
}

void DnsCache::put_negative(const dnswire::Name& name, dnswire::RrType type,
                            dnswire::Rcode rcode, std::uint32_t ttl,
                            util::SimTime now) {
  Entry e;
  e.negative = true;
  e.rcode = rcode;
  e.expiry = now + util::Duration::seconds(std::min(ttl, max_ttl_));
  e.original_ttl = ttl;
  entries_[key(name, type)] = std::move(e);
  ++stats_.inserts;
}

std::optional<CachedAnswer> DnsCache::get(const dnswire::Name& name,
                                          dnswire::RrType type,
                                          util::SimTime now) {
  auto it = entries_.find(key(name, type));
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second.expiry <= now) {
    entries_.erase(it);
    ++stats_.misses;
    return std::nullopt;
  }
  const auto& e = it->second;
  CachedAnswer out;
  out.negative = e.negative;
  out.rcode = e.rcode;
  const auto remaining =
      static_cast<std::uint32_t>((e.expiry - now).as_seconds());
  out.remaining_ttl = std::max<std::uint32_t>(remaining, 1);
  if (e.negative) {
    ++stats_.negative_hits;
  } else {
    out.records = e.records;
    for (auto& rr : out.records) rr.ttl = out.remaining_ttl;
    ++stats_.hits;
  }
  return out;
}

}  // namespace odns::nodes
