#pragma once
// DNS record cache with TTL decay and RFC 2308 negative caching. Used
// by recursive resolvers and caching forwarders; cache hit/miss counts
// feed the paper's Table 2 (method cost comparison).

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dnswire/message.hpp"
#include "util/time.hpp"

namespace odns::nodes {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t negative_hits = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
};

/// A cached answer: either a record set or a negative (NXDOMAIN /
/// NODATA) entry. Remaining TTL is computed against the clock at
/// lookup, so cached responses are served with decayed TTLs — the
/// observable the paper uses to demonstrate response caching (Fig. 7).
struct CachedAnswer {
  std::vector<dnswire::ResourceRecord> records;  // empty for negative
  bool negative = false;
  dnswire::Rcode rcode = dnswire::Rcode::noerror;
  std::uint32_t remaining_ttl = 0;
};

class DnsCache {
 public:
  explicit DnsCache(std::uint32_t max_ttl = 86400, std::size_t max_entries = 1 << 20)
      : max_ttl_(max_ttl), max_entries_(max_entries) {}

  /// Stores a positive record set under (name, type).
  void put(const dnswire::Name& name, dnswire::RrType type,
           const std::vector<dnswire::ResourceRecord>& records,
           util::SimTime now);

  /// Stores a negative entry (rcode + SOA-derived TTL).
  void put_negative(const dnswire::Name& name, dnswire::RrType type,
                    dnswire::Rcode rcode, std::uint32_t ttl,
                    util::SimTime now);

  /// Looks up (name, type); expired entries are treated as misses and
  /// dropped lazily.
  std::optional<CachedAnswer> get(const dnswire::Name& name,
                                  dnswire::RrType type, util::SimTime now);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    std::vector<dnswire::ResourceRecord> records;
    bool negative = false;
    dnswire::Rcode rcode = dnswire::Rcode::noerror;
    util::SimTime expiry;
    std::uint32_t original_ttl = 0;
  };

  static std::string key(const dnswire::Name& name, dnswire::RrType type);

  std::uint32_t max_ttl_;
  std::size_t max_entries_;
  std::unordered_map<std::string, Entry> entries_;
  CacheStats stats_;
};

}  // namespace odns::nodes
