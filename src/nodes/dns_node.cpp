#include "nodes/dns_node.hpp"

namespace odns::nodes {

void DnsNode::on_datagram(const netsim::Datagram& dgram) {
  ++counters_.datagrams_in;
  auto parsed = dnswire::decode(*dgram.payload);
  if (!parsed) {
    ++counters_.parse_errors;
    return;
  }
  auto msg = std::move(parsed).value();
  if (msg.header.qr) {
    ++counters_.responses_in;
  } else {
    ++counters_.queries_in;
  }
  on_message(dgram, std::move(msg));
}

void DnsNode::send_message(util::Ipv4 dst, std::uint16_t src_port,
                           std::uint16_t dst_port, const dnswire::Message& msg,
                           std::optional<util::Ipv4> src_override) {
  netsim::SendOptions opts;
  opts.dst = dst;
  opts.src_port = src_port;
  opts.dst_port = dst_port;
  opts.payload = dnswire::encode(msg);
  opts.spoof_src = src_override;
  if (msg.header.qr) {
    ++counters_.responses_out;
  } else {
    ++counters_.queries_out;
  }
  sim_->send_udp(host_, std::move(opts));
}

void DnsNode::reply(const netsim::Datagram& dgram, const dnswire::Message& msg,
                    std::optional<util::Ipv4> src_override) {
  // Reply source defaults to the address the query arrived on, which is
  // what distinguishes sensor 1 (same address) from sensor 2 (different
  // address) in the controlled experiment.
  send_message(dgram.src, /*src_port=*/dgram.dst_port,
               /*dst_port=*/dgram.src_port, msg,
               src_override.has_value() ? src_override
                                        : std::optional<util::Ipv4>(dgram.dst));
}

}  // namespace odns::nodes
