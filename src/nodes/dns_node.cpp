#include "nodes/dns_node.hpp"

namespace odns::nodes {

void DnsNode::on_datagram(const netsim::Datagram& dgram) {
  ++counters_.datagrams_in;
  rx_arena_.reset();
  scratch_arena_.reset();
  auto parsed = dnswire::decode_into(
      rx_arena_, std::span<const std::uint8_t>(*dgram.payload));
  if (!parsed) {
    ++counters_.parse_errors;
    return;
  }
  const dnswire::MessageView& view = parsed.value();
  if (view.header.qr) {
    ++counters_.responses_in;
  } else {
    ++counters_.queries_in;
  }
  if (on_message_view(dgram, view)) return;
  on_message(dgram, dnswire::materialize(view));
}

void DnsNode::send_message(util::Ipv4 dst, std::uint16_t src_port,
                           std::uint16_t dst_port, const dnswire::Message& msg,
                           std::optional<util::Ipv4> src_override) {
  // The arena encoder is byte-identical to dnswire::encode(msg)
  // (tests/dnswire_differential_test.cpp); view_of borrows the
  // Message's own label storage, so nothing is copied on the way in.
  tx_arena_.reset();
  send_encoded(dst, src_port, dst_port, dnswire::view_of(tx_arena_, msg),
               src_override);
}

void DnsNode::send_view(util::Ipv4 dst, std::uint16_t src_port,
                        std::uint16_t dst_port, const dnswire::MessageView& msg,
                        std::optional<util::Ipv4> src_override) {
  tx_arena_.reset();
  send_encoded(dst, src_port, dst_port, msg, src_override);
}

void DnsNode::send_encoded(util::Ipv4 dst, std::uint16_t src_port,
                           std::uint16_t dst_port,
                           const dnswire::MessageView& msg,
                           std::optional<util::Ipv4> src_override) {
  netsim::SendOptions opts;
  opts.dst = dst;
  opts.src_port = src_port;
  opts.dst_port = dst_port;
  const auto wire = dnswire::encode_into(tx_arena_, msg);
  opts.payload.assign(wire.begin(), wire.end());
  opts.spoof_src = src_override;
  if (msg.header.qr) {
    ++counters_.responses_out;
  } else {
    ++counters_.queries_out;
  }
  sim_->send_udp(host_, std::move(opts));
}

void DnsNode::reply(const netsim::Datagram& dgram, const dnswire::Message& msg,
                    std::optional<util::Ipv4> src_override) {
  // Reply source defaults to the address the query arrived on, which is
  // what distinguishes sensor 1 (same address) from sensor 2 (different
  // address) in the controlled experiment.
  send_message(dgram.src, /*src_port=*/dgram.dst_port,
               /*dst_port=*/dgram.src_port, msg,
               src_override.has_value() ? src_override
                                        : std::optional<util::Ipv4>(dgram.dst));
}

void DnsNode::reply_view(const netsim::Datagram& dgram,
                         const dnswire::MessageView& msg,
                         std::optional<util::Ipv4> src_override) {
  send_view(dgram.src, /*src_port=*/dgram.dst_port,
            /*dst_port=*/dgram.src_port, msg,
            src_override.has_value() ? src_override
                                     : std::optional<util::Ipv4>(dgram.dst));
}

}  // namespace odns::nodes
