#pragma once
// Shared base for DNS speakers living on simulated hosts: datagram
// parsing, reply plumbing, per-node counters.
//
// The receive path runs on the arena codec (dnswire/arena_codec.hpp):
// each datagram is decoded into `rx_arena_` as a MessageView, offered
// to the subclass through on_message_view() (the zero-allocation fast
// path), and only materialized into a heap Message when the subclass
// declines. Replies encode through `tx_arena_`; both arenas are reset
// per message, so after warm-up neither touches the heap.

#include <cstdint>
#include <optional>

#include "dnswire/arena.hpp"
#include "dnswire/arena_codec.hpp"
#include "dnswire/codec.hpp"
#include "dnswire/message.hpp"
#include "netsim/sim.hpp"

namespace odns::nodes {

inline constexpr std::uint16_t kDnsPort = 53;

struct NodeCounters {
  std::uint64_t datagrams_in = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t queries_in = 0;
  std::uint64_t responses_in = 0;
  std::uint64_t responses_out = 0;
  std::uint64_t queries_out = 0;
  std::uint64_t refused = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t servfail = 0;
};

class DnsNode : public netsim::App {
 public:
  DnsNode(netsim::Simulator& sim, netsim::HostId host)
      : sim_(&sim), host_(host) {}

  [[nodiscard]] netsim::HostId host() const { return host_; }
  [[nodiscard]] util::Ipv4 address() const {
    return sim_->net().primary_addr(host_);
  }
  [[nodiscard]] const NodeCounters& counters() const { return counters_; }

  void on_datagram(const netsim::Datagram& dgram) final;

 protected:
  /// Fast-path dispatch: `msg` views the datagram payload + rx arena
  /// and dies when this call returns. Return true to consume the
  /// message; false falls back to on_message() with a materialized
  /// heap copy. Default: always fall back.
  virtual bool on_message_view(const netsim::Datagram& dgram,
                               const dnswire::MessageView& msg) {
    (void)dgram;
    (void)msg;
    return false;
  }

  /// Heap-model dispatch target; `msg` is the successfully parsed
  /// payload, owned by the callee.
  virtual void on_message(const netsim::Datagram& dgram,
                          dnswire::Message msg) = 0;

  netsim::Simulator& sim() { return *sim_; }

  /// Sends `msg` from this host. `src_override` supports service
  /// (anycast) reply addresses and transparent-spoof behaviour.
  void send_message(util::Ipv4 dst, std::uint16_t src_port,
                    std::uint16_t dst_port, const dnswire::Message& msg,
                    std::optional<util::Ipv4> src_override = std::nullopt);

  /// View-level send: encodes through the tx arena, bytes identical to
  /// send_message() on the materialized view. `msg` must not be built
  /// on the tx arena (it is reset here); use scratch_arena().
  void send_view(util::Ipv4 dst, std::uint16_t src_port,
                 std::uint16_t dst_port, const dnswire::MessageView& msg,
                 std::optional<util::Ipv4> src_override = std::nullopt);

  /// Replies to the datagram's source (swapped ports).
  void reply(const netsim::Datagram& dgram, const dnswire::Message& msg,
             std::optional<util::Ipv4> src_override = std::nullopt);
  void reply_view(const netsim::Datagram& dgram,
                  const dnswire::MessageView& msg,
                  std::optional<util::Ipv4> src_override = std::nullopt);

  /// Scratch arena for building reply views inside on_message_view
  /// (reset at every datagram entry, after the rx view is dead — do
  /// not hold rx-backed views across messages).
  dnswire::WireArena& scratch_arena() { return scratch_arena_; }

  NodeCounters counters_;

 private:
  void send_encoded(util::Ipv4 dst, std::uint16_t src_port,
                    std::uint16_t dst_port, const dnswire::MessageView& msg,
                    std::optional<util::Ipv4> src_override);

  netsim::Simulator* sim_;
  netsim::HostId host_;
  dnswire::WireArena rx_arena_;       // decode_into target, reset per datagram
  dnswire::WireArena tx_arena_;       // encode_into target, reset per send
  dnswire::WireArena scratch_arena_;  // reply-view construction
};

}  // namespace odns::nodes
