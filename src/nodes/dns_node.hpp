#pragma once
// Shared base for DNS speakers living on simulated hosts: datagram
// parsing, reply plumbing, per-node counters.

#include <cstdint>
#include <optional>

#include "dnswire/codec.hpp"
#include "dnswire/message.hpp"
#include "netsim/sim.hpp"

namespace odns::nodes {

inline constexpr std::uint16_t kDnsPort = 53;

struct NodeCounters {
  std::uint64_t datagrams_in = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t queries_in = 0;
  std::uint64_t responses_in = 0;
  std::uint64_t responses_out = 0;
  std::uint64_t queries_out = 0;
  std::uint64_t refused = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t servfail = 0;
};

class DnsNode : public netsim::App {
 public:
  DnsNode(netsim::Simulator& sim, netsim::HostId host)
      : sim_(&sim), host_(host) {}

  [[nodiscard]] netsim::HostId host() const { return host_; }
  [[nodiscard]] util::Ipv4 address() const {
    return sim_->net().host(host_).addrs.front();
  }
  [[nodiscard]] const NodeCounters& counters() const { return counters_; }

  void on_datagram(const netsim::Datagram& dgram) final;

 protected:
  /// Dispatch target; `msg` is the successfully parsed payload.
  virtual void on_message(const netsim::Datagram& dgram,
                          dnswire::Message msg) = 0;

  netsim::Simulator& sim() { return *sim_; }

  /// Sends `msg` from this host. `src_override` supports service
  /// (anycast) reply addresses and transparent-spoof behaviour.
  void send_message(util::Ipv4 dst, std::uint16_t src_port,
                    std::uint16_t dst_port, const dnswire::Message& msg,
                    std::optional<util::Ipv4> src_override = std::nullopt);

  /// Replies to the datagram's source (swapped ports).
  void reply(const netsim::Datagram& dgram, const dnswire::Message& msg,
             std::optional<util::Ipv4> src_override = std::nullopt);

  NodeCounters counters_;

 private:
  netsim::Simulator* sim_;
  netsim::HostId host_;
};

}  // namespace odns::nodes
