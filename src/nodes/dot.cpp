#include "nodes/dot.hpp"

namespace odns::nodes {

DotService::DotService(netsim::Simulator& sim, netsim::HostId host,
                       util::Ipv4 control_addr)
    : endpoint_(
          sim, host,
          netsim::StreamCallbacks{
              /*on_accept=*/nullptr,
              /*on_connect=*/nullptr,
              /*on_message=*/
              [this](const netsim::ConnectionPtr& conn,
                     std::vector<std::uint8_t> message) {
                auto parsed = dnswire::decode(message);
                if (!parsed || parsed.value().header.qr ||
                    parsed.value().questions.size() != 1) {
                  return;
                }
                const auto& query = parsed.value();
                auto resp = dnswire::make_response(query);
                resp.header.aa = true;
                const auto& name = query.questions.front().name;
                resp.answers.push_back(dnswire::ResourceRecord::a(
                    name, conn->peer_addr, 300));
                resp.answers.push_back(
                    dnswire::ResourceRecord::a(name, control_addr_, 300));
                ++queries_served_;
                endpoint_.send(conn, dnswire::encode(resp));
              },
              /*on_error=*/nullptr}),
      control_addr_(control_addr) {
  endpoint_.listen(kDotPort);
}

DotClient::DotClient(netsim::Simulator& sim, netsim::HostId host)
    : sim_(&sim),
      endpoint_(
          sim, host,
          netsim::StreamCallbacks{
              /*on_accept=*/nullptr,
              /*on_connect=*/
              [this](const netsim::ConnectionPtr& conn) {
                auto query = dnswire::make_query(0x0853, pending_name_,
                                                 dnswire::RrType::a);
                endpoint_.send(conn, dnswire::encode(query));
              },
              /*on_message=*/
              [this](const netsim::ConnectionPtr& conn,
                     std::vector<std::uint8_t> message) {
                auto parsed = dnswire::decode(message);
                if (parsed && parsed.value().header.qr) {
                  ++answers_;
                  last_answer_ = std::move(parsed).value();
                }
                endpoint_.close(conn);
              },
              /*on_error=*/
              [this](const netsim::ConnectionPtr&, const std::string&) {
                ++failures_;
              }}) {}

void DotClient::query(util::Ipv4 server, const dnswire::Name& name) {
  pending_name_ = name;
  endpoint_.connect(server, kDotPort);
}

}  // namespace odns::nodes
