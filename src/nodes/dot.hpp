#pragma once
// DNS-over-TLS-style service and client on the stream transport (§6
// extension). The crypto is out of scope — what matters for the
// paper's argument is the *connection*: a transparent forwarder cannot
// relay connection-oriented DNS because the handshake reply reaches the
// client from the real server's address and is rejected.

#include <optional>
#include <vector>

#include "dnswire/codec.hpp"
#include "netsim/stream.hpp"

namespace odns::nodes {

inline constexpr std::uint16_t kDotPort = 853;

/// Minimal DoT server: answers A queries with a mirror-style response
/// (dynamic client A + static control A), like the measurement zone.
class DotService {
 public:
  DotService(netsim::Simulator& sim, netsim::HostId host,
             util::Ipv4 control_addr);

  [[nodiscard]] std::uint64_t queries_served() const {
    return queries_served_;
  }

 private:
  netsim::StreamEndpoint endpoint_;
  util::Ipv4 control_addr_;
  std::uint64_t queries_served_ = 0;
};

/// Minimal DoT client: connects, sends one query, records the answer.
class DotClient {
 public:
  DotClient(netsim::Simulator& sim, netsim::HostId host);

  /// Starts a query toward a DoT server. Outcome is visible via the
  /// accessors after the simulator runs.
  void query(util::Ipv4 server, const dnswire::Name& name);

  [[nodiscard]] std::uint64_t answers() const { return answers_; }
  [[nodiscard]] std::uint64_t failures() const { return failures_; }
  [[nodiscard]] const std::optional<dnswire::Message>& last_answer() const {
    return last_answer_;
  }

 private:
  netsim::Simulator* sim_;
  netsim::StreamEndpoint endpoint_;
  dnswire::Name pending_name_;
  std::uint64_t answers_ = 0;
  std::uint64_t failures_ = 0;
  std::optional<dnswire::Message> last_answer_;
};

}  // namespace odns::nodes
