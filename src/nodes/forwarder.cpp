#include "nodes/forwarder.hpp"

namespace odns::nodes {

using dnswire::ARecord;
using dnswire::Message;
using dnswire::Rcode;

RecursiveForwarder::RecursiveForwarder(netsim::Simulator& sim,
                                       netsim::HostId host,
                                       ForwarderConfig cfg)
    : DnsNode(sim, host), cfg_(cfg) {}

void RecursiveForwarder::start() {
  sim().bind_udp(host(), kDnsPort, this);
  sim().bind_udp_wildcard(host(), this);
}

void RecursiveForwarder::on_message(const netsim::Datagram& dgram,
                                    dnswire::Message msg) {
  if (dgram.dst_port == kDnsPort && !msg.header.qr) {
    handle_query(dgram, msg);
  } else if (dgram.dst_port != kDnsPort && msg.header.qr) {
    handle_response(dgram, msg);
  }
}

void RecursiveForwarder::handle_query(const netsim::Datagram& dgram,
                                      const Message& msg) {
  ++fstats_.client_queries;
  if (msg.questions.size() != 1) {
    reply(dgram, dnswire::make_response(msg, Rcode::formerr));
    return;
  }
  const auto& q = msg.questions.front();

  if (cfg_.cache_responses) {
    if (auto hit = cache_.get(q.name, q.type, sim().now());
        hit && !hit->negative) {
      ++fstats_.cache_answers;
      Message resp = dnswire::make_response(msg);
      resp.header.ra = true;
      resp.answers = hit->records;
      reply(dgram, resp);
      return;
    }
  }

  Pending p;
  p.client = dgram.src;
  p.client_port = dgram.src_port;
  p.client_txid = msg.header.id;
  p.arrival_dst = dgram.dst;
  p.question = q;
  p.deadline = sim().now() + cfg_.upstream_timeout;

  // Source substitution happens implicitly: the upstream query leaves
  // with this host's own address — the defining difference from a
  // transparent forwarder.
  const std::uint16_t port = next_port_;
  next_port_ = next_port_ >= 65535 ? 32768 : static_cast<std::uint16_t>(next_port_ + 1);
  const std::uint16_t txid = next_txid_++;
  pending_[key(port, txid)] = p;
  ++fstats_.forwarded;

  Message upstream = dnswire::make_query(txid, q.name, q.type);
  send_message(cfg_.upstream, port, kDnsPort, upstream);
}

void RecursiveForwarder::handle_response(const netsim::Datagram& dgram,
                                         const Message& msg) {
  auto it = pending_.find(key(dgram.dst_port, msg.header.id));
  if (it == pending_.end()) return;
  Pending p = it->second;
  pending_.erase(it);
  ++fstats_.upstream_responses;
  if (sim().now() > p.deadline) {
    ++fstats_.expired;
    return;
  }
  if (cfg_.cache_responses && msg.header.rcode == Rcode::noerror &&
      !msg.answers.empty()) {
    cache_.put(p.question.name, p.question.type, msg.answers, sim().now());
  }
  deliver_response(p, msg);
}

void RecursiveForwarder::deliver_response(const Pending& p,
                                          dnswire::Message resp) {
  resp.header.id = p.client_txid;
  if (cfg_.rewrite_answers) {
    for (auto& rr : resp.answers) {
      if (std::get_if<ARecord>(&rr.rdata) != nullptr) {
        rr.rdata = ARecord{cfg_.rewrite_target};
      }
    }
  }
  if (cfg_.strip_second_record && resp.answers.size() > 1) {
    resp.answers.resize(1);
  }
  send_message(p.client, kDnsPort, p.client_port, resp, p.arrival_dst);
}

}  // namespace odns::nodes
