#pragma once
// The two forwarder species the paper distinguishes.
//
// RecursiveForwarder: an application-level relay. It replaces the
// client's source address with its own, so responses flow back through
// it — it can cache and (mis)behave like a middlebox.
//
// TransparentForwarder: an IP-level relay that preserves the client's
// source address. The response bypasses it entirely. It is implemented
// as a netsim port-redirect rule; this class is the bookkeeping wrapper
// that installs the rule and exposes relay statistics.

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "nodes/cache.hpp"
#include "nodes/dns_node.hpp"

namespace odns::nodes {

struct ForwarderConfig {
  util::Ipv4 upstream;  // resolver (or next forwarder) to relay to
  bool cache_responses = true;
  util::Duration upstream_timeout = util::Duration::seconds(5);
  /// Middlebox misbehaviour knobs used to validate the classifier's
  /// control-record check:
  bool rewrite_answers = false;        // DNS redirection (ads/censorship)
  util::Ipv4 rewrite_target{};         // address injected when rewriting
  bool strip_second_record = false;    // drops the control record
};

struct ForwarderStats {
  std::uint64_t client_queries = 0;
  std::uint64_t cache_answers = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t upstream_responses = 0;
  std::uint64_t expired = 0;
};

class RecursiveForwarder : public DnsNode {
 public:
  RecursiveForwarder(netsim::Simulator& sim, netsim::HostId host,
                     ForwarderConfig cfg);

  void start();

  [[nodiscard]] const ForwarderStats& stats() const { return fstats_; }
  [[nodiscard]] const DnsCache& cache() const { return cache_; }

 protected:
  void on_message(const netsim::Datagram& dgram, dnswire::Message msg) override;

 private:
  struct Pending {
    util::Ipv4 client;
    std::uint16_t client_port = 0;
    std::uint16_t client_txid = 0;
    util::Ipv4 arrival_dst;
    dnswire::Question question;
    util::SimTime deadline;
  };

  void handle_query(const netsim::Datagram& dgram, const dnswire::Message& msg);
  void handle_response(const netsim::Datagram& dgram,
                       const dnswire::Message& msg);
  void deliver_response(const Pending& p, dnswire::Message resp);

  static std::uint32_t key(std::uint16_t port, std::uint16_t txid) {
    return (std::uint32_t{port} << 16) | txid;
  }

  ForwarderConfig cfg_;
  DnsCache cache_;
  ForwarderStats fstats_;
  std::unordered_map<std::uint32_t, Pending> pending_;
  std::uint16_t next_port_ = 32768;
  std::uint16_t next_txid_ = 1;
};

/// Bookkeeping wrapper around the netsim transparent-redirect rule.
class TransparentForwarder {
 public:
  TransparentForwarder(netsim::Simulator& sim, netsim::HostId host,
                       util::Ipv4 resolver)
      : sim_(&sim), host_(host), resolver_(resolver) {}

  /// Installs the port-53 redirect on the device.
  void install() { sim_->add_port_redirect(host_, kDnsPort, resolver_); }
  void uninstall() { sim_->remove_port_redirect(host_, kDnsPort); }

  [[nodiscard]] netsim::HostId host() const { return host_; }
  [[nodiscard]] util::Ipv4 address() const {
    return sim_->net().primary_addr(host_);
  }
  [[nodiscard]] util::Ipv4 resolver() const { return resolver_; }
  [[nodiscard]] std::uint64_t relayed() const {
    return sim_->redirect_relays(host_);
  }

 private:
  netsim::Simulator* sim_;
  netsim::HostId host_;
  util::Ipv4 resolver_;
};

}  // namespace odns::nodes
