#include "nodes/forwarder_bank.hpp"

#include <algorithm>
#include <cassert>

#include "dnswire/codec.hpp"
#include "nodes/dns_node.hpp"

namespace odns::nodes {

using dnswire::ARecord;
using dnswire::Message;
using dnswire::Rcode;

namespace {
constexpr std::uint8_t kRewrite = 1;
constexpr std::uint8_t kStrip = 2;
constexpr std::uint16_t kPortBase = 32768;
constexpr std::uint32_t kPortSpan = 32768;
}  // namespace

ForwarderBank::ForwarderBank(netsim::Simulator& sim,
                             util::Duration upstream_timeout)
    : sim_(&sim), upstream_timeout_(upstream_timeout) {}

void ForwarderBank::add_member(netsim::HostId host, const MemberConfig& mc) {
  assert(!sealed_);
  addr_.push_back(mc.addr);
  upstream_.push_back(mc.upstream);
  rewrite_target_.push_back(mc.rewrite_target);
  host_.push_back(host);
  seq_.push_back(0);
  flags_.push_back(static_cast<std::uint8_t>(
      (mc.rewrite_answers ? kRewrite : 0) |
      (mc.strip_second_record ? kStrip : 0)));
  sim_->bind_udp(host, kDnsPort, this);
  sim_->bind_udp_wildcard(host, this);
}

void ForwarderBank::seal() {
  by_addr_.resize(addr_.size());
  for (std::uint32_t i = 0; i < by_addr_.size(); ++i) by_addr_[i] = i;
  std::sort(by_addr_.begin(), by_addr_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return addr_[a].value() < addr_[b].value();
            });
  sealed_ = true;
}

std::size_t ForwarderBank::member_of(util::Ipv4 addr) const {
  auto it = std::lower_bound(by_addr_.begin(), by_addr_.end(), addr.value(),
                             [this](std::uint32_t i, std::uint32_t value) {
                               return addr_[i].value() < value;
                             });
  if (it == by_addr_.end() || addr_[*it].value() != addr.value()) {
    return addr_.size();
  }
  return *it;
}

void ForwarderBank::on_datagram(const netsim::Datagram& dgram) {
  assert(sealed_);
  const auto parsed =
      dnswire::decode(std::span<const std::uint8_t>(*dgram.payload));
  if (!parsed) return;
  const Message& msg = parsed.value();
  if (dgram.dst_port == kDnsPort && !msg.header.qr) {
    const std::size_t member = member_of(dgram.dst);
    if (member == addr_.size()) return;  // not a member address
    handle_query(dgram, member, msg);
  } else if (dgram.dst_port != kDnsPort && msg.header.qr) {
    handle_response(dgram, msg);
  }
}

void ForwarderBank::handle_query(const netsim::Datagram& dgram,
                                 std::size_t member, const Message& msg) {
  ++stats_.client_queries;
  if (msg.questions.size() != 1) return;  // banks don't answer formerr
  const auto& q = msg.questions.front();

  // Index-derived upstream tuple: member m's queries always use ports
  // kPortBase + (m*256+seq) % 32768 and txids 1 + (m*256+seq) / 32768,
  // so the wire bytes depend only on the member's own query sequence.
  const std::uint32_t g = tuple_of(static_cast<std::uint32_t>(member),
                                   seq_[member]);
  seq_[member] = static_cast<std::uint8_t>(seq_[member] + 1);
  const auto port = static_cast<std::uint16_t>(kPortBase + g % kPortSpan);
  const auto txid = static_cast<std::uint16_t>(1 + (g / kPortSpan) % 65535);

  if (pending_.size() >= sweep_at_) sweep_expired();
  Pending& p = pending_[g];
  p.client = dgram.src;
  p.client_port = dgram.src_port;
  p.client_txid = msg.header.id;
  p.member = static_cast<std::uint32_t>(member);
  p.deadline = sim_->now() + upstream_timeout_;
  peak_pending_ = std::max(peak_pending_, pending_.size());
  ++stats_.forwarded;

  netsim::SendOptions opts;
  opts.dst = upstream_[member];
  opts.src_port = port;
  opts.dst_port = kDnsPort;
  opts.payload = dnswire::encode(dnswire::make_query(txid, q.name, q.type));
  sim_->send_udp(host_[member], std::move(opts));
}

void ForwarderBank::handle_response(const netsim::Datagram& dgram,
                                    const Message& msg) {
  // Invert the tuple derivation to recover the pending key directly.
  if (dgram.dst_port < kPortBase || msg.header.id == 0) return;
  const std::uint32_t g =
      static_cast<std::uint32_t>(msg.header.id - 1) * kPortSpan +
      (dgram.dst_port - kPortBase);
  auto it = pending_.find(g);
  if (it == pending_.end()) return;
  const Pending p = it->second;
  pending_.erase(it);
  ++stats_.upstream_responses;
  if (sim_->now() > p.deadline) {
    ++stats_.expired;
    return;
  }

  Message resp = msg;
  resp.header.id = p.client_txid;
  const std::uint8_t flags = flags_[p.member];
  if ((flags & kRewrite) != 0) {
    for (auto& rr : resp.answers) {
      if (std::get_if<ARecord>(&rr.rdata) != nullptr) {
        rr.rdata = ARecord{rewrite_target_[p.member]};
      }
    }
  }
  if ((flags & kStrip) != 0 && resp.answers.size() > 1) {
    resp.answers.resize(1);
  }
  netsim::SendOptions opts;
  opts.dst = p.client;
  opts.src_port = kDnsPort;
  opts.dst_port = p.client_port;
  opts.payload = dnswire::encode(resp);
  sim_->send_udp(host_[p.member], std::move(opts));
}

void ForwarderBank::sweep_expired() {
  const util::SimTime now = sim_->now();
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now > it->second.deadline) {
      ++stats_.expired;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  sweep_at_ = std::max<std::size_t>(64, pending_.size() * 2);
}

}  // namespace odns::nodes
