#pragma once
// Bulk recursive-forwarder plane for million-host worlds: one
// ForwarderBank serves every recursive forwarder of a virtual shard as
// dense index-addressed rows instead of one heap-allocated
// RecursiveForwarder node (~300 B + cache + arenas each) per host.
//
// Behavioural contract: a bank member is a cacheless recursive
// forwarder — it relays the client's question upstream from its own
// address, matches the upstream response by (port, txid), restores the
// client txid, applies the member's middlebox knobs (rewrite / strip),
// and answers the client from the address the query arrived on. The
// census classifies members exactly like RecursiveForwarder nodes
// (caching never matters for a census: each member is probed once).
//
// Shard safety: the topology builder creates one bank per virtual
// shard, so a bank's members always land on one execution shard
// together — no cross-shard state. Upstream (port, txid) tuples are
// derived from the member index alone, so the packet bytes are
// independent of cross-member event interleaving and byte-identical
// for every shard count.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dnswire/message.hpp"
#include "netsim/sim.hpp"
#include "nodes/forwarder.hpp"

namespace odns::nodes {

class ForwarderBank final : public netsim::App {
 public:
  struct MemberConfig {
    util::Ipv4 addr;
    util::Ipv4 upstream;
    util::Ipv4 rewrite_target{};
    bool rewrite_answers = false;
    bool strip_second_record = false;
  };

  ForwarderBank(netsim::Simulator& sim,
                util::Duration upstream_timeout = util::Duration::seconds(5));

  /// Registers a member host (already in the network, announcing
  /// `mc.addr`) and binds this bank as its port-53 + wildcard app.
  void add_member(netsim::HostId host, const MemberConfig& mc);
  /// Builds the address lookup index. Call once after the last
  /// add_member and before the first packet.
  void seal();

  void on_datagram(const netsim::Datagram& dgram) override;

  [[nodiscard]] std::size_t member_count() const { return addr_.size(); }
  [[nodiscard]] const ForwarderStats& stats() const { return stats_; }
  /// Current in-flight upstream queries (bounded by the probe window,
  /// not the member count: entries die on response or expiry sweep).
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] std::size_t peak_pending() const { return peak_pending_; }

 private:
  // One upstream tuple per member query, derived from the member index
  // and its 8-bit in-flight sequence — never from shared mutable state.
  [[nodiscard]] static std::uint32_t tuple_of(std::uint32_t member,
                                              std::uint8_t seq) {
    return member * 256u + seq;
  }

  struct Pending {
    util::Ipv4 client;
    util::SimTime deadline;
    std::uint32_t member = 0;
    std::uint16_t client_port = 0;
    std::uint16_t client_txid = 0;
  };

  [[nodiscard]] std::size_t member_of(util::Ipv4 addr) const;
  void handle_query(const netsim::Datagram& dgram, std::size_t member,
                    const dnswire::Message& msg);
  void handle_response(const netsim::Datagram& dgram,
                       const dnswire::Message& msg);
  void sweep_expired();

  netsim::Simulator* sim_;
  util::Duration upstream_timeout_;

  // Member rows (SoA: the hot lookup path touches only addr_).
  std::vector<util::Ipv4> addr_;
  std::vector<util::Ipv4> upstream_;
  std::vector<util::Ipv4> rewrite_target_;
  std::vector<netsim::HostId> host_;
  std::vector<std::uint8_t> seq_;
  std::vector<std::uint8_t> flags_;  // bit 0: rewrite, bit 1: strip
  /// Member indices ordered by address (lookup index; built by seal()).
  std::vector<std::uint32_t> by_addr_;
  bool sealed_ = false;

  std::unordered_map<std::uint32_t, Pending> pending_;
  std::size_t sweep_at_ = 64;
  std::size_t peak_pending_ = 0;
  ForwarderStats stats_;
};

}  // namespace odns::nodes
