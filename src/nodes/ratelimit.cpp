#include "nodes/ratelimit.hpp"

#include <algorithm>

namespace odns::nodes {

bool PrefixRateLimiter::allow(util::Ipv4 src, util::SimTime now) {
  const auto prefix = util::Prefix::covering24(src);
  auto it = last_grant_.find(prefix);
  if (it == last_grant_.end()) {
    last_grant_.emplace(prefix, now);
    ++granted_;
    return true;
  }
  if (now - it->second >= window_) {
    it->second = now;
    ++granted_;
    return true;
  }
  ++denied_;
  return false;
}

RrlAction ResponseRateLimiter::check(util::Ipv4 client, util::SimTime now,
                                     std::uint64_t flow) {
  if (cfg_.rate == 0) {
    ++stats_.passed;
    return RrlAction::pass;
  }
  const std::int64_t rate = cfg_.rate;
  const std::int64_t cap =
      static_cast<std::int64_t>(cfg_.burst == 0 ? cfg_.rate : cfg_.burst) *
      kToken;

  const auto prefix = util::Prefix::covering24(client);
  auto [it, fresh] = buckets_.try_emplace(prefix);
  Bucket& b = it->second;
  if (fresh) {
    b.tokens = cap;
    b.at = now.nanos();
    b.gate_open = true;
  } else if (b.at != now.nanos()) {
    // Refill from the last decision instant; clamp the elapsed time so
    // the multiply cannot overflow (past cap/rate seconds the bucket is
    // full anyway).
    const std::int64_t elapsed = now.nanos() - b.at;
    if (elapsed >= cap / rate) {
      b.tokens = cap;
    } else {
      b.tokens = std::min(cap, b.tokens + elapsed * rate);
    }
    b.at = now.nanos();
    // The gate verdict for this instant: decided once from the tokens
    // at instant start, shared by every same-instant arrival — the
    // instant-commutativity the sharded merge order requires.
    b.gate_open = b.tokens >= kToken;
  }

  if (b.gate_open) {
    // Consumption may overdraw within the instant (bounded debt): the
    // next instant's refill works it off before the gate reopens.
    b.tokens = std::max(b.tokens - kToken, -cap);
    ++stats_.passed;
    return RrlAction::pass;
  }

  if (cfg_.slip > 0) {
    const std::uint64_t h = netsim::stateless_decision(
        seed_, netsim::kRrlSlipDomain, client.value(), flow,
        static_cast<std::uint64_t>(now.nanos()));
    if (h % cfg_.slip == 0) {
      ++stats_.slipped;
      return RrlAction::slip;
    }
  }
  ++stats_.dropped;
  return RrlAction::drop;
}

}  // namespace odns::nodes
