#include "nodes/ratelimit.hpp"

namespace odns::nodes {

bool PrefixRateLimiter::allow(util::Ipv4 src, util::SimTime now) {
  const auto prefix = util::Prefix::covering24(src);
  auto it = last_grant_.find(prefix);
  if (it == last_grant_.end()) {
    last_grant_.emplace(prefix, now);
    ++granted_;
    return true;
  }
  if (now - it->second >= window_) {
    it->second = now;
    ++granted_;
    return true;
  }
  ++denied_;
  return false;
}

}  // namespace odns::nodes
