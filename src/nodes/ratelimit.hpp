#pragma once
// Per-/24-prefix rate limiter, the anti-amplification guard the paper's
// honeypot sensors deploy: one answer per source /24 per window, which
// also blunts DoS carpet-bombing (whole-prefix victim spraying).

#include <cstdint>
#include <unordered_map>

#include "util/ipv4.hpp"
#include "util/time.hpp"

namespace odns::nodes {

class PrefixRateLimiter {
 public:
  explicit PrefixRateLimiter(util::Duration window = util::Duration::minutes(5))
      : window_(window) {}

  /// True if a request from `src` may be served at `now`; records the
  /// grant. Denied requests do not reset the window.
  bool allow(util::Ipv4 src, util::SimTime now);

  [[nodiscard]] std::uint64_t granted() const { return granted_; }
  [[nodiscard]] std::uint64_t denied() const { return denied_; }
  [[nodiscard]] util::Duration window() const { return window_; }

 private:
  util::Duration window_;
  std::unordered_map<util::Prefix, util::SimTime> last_grant_;
  std::uint64_t granted_ = 0;
  std::uint64_t denied_ = 0;
};

}  // namespace odns::nodes
