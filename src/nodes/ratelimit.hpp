#pragma once
// Per-/24-prefix rate limiters, the anti-amplification guards of this
// codebase. PrefixRateLimiter is the honeypot sensors' coarse one-
// answer-per-window grant. ResponseRateLimiter is resolver-side RRL in
// the knot style: a token bucket per client /24 plus "slip" — a
// fraction of limited responses goes out as a minimal truncated (TC=1)
// reply so legitimate clients behind the limited prefix can fall back
// to TCP while reflected amplification stays clamped.

#include <cstdint>
#include <unordered_map>

#include "netsim/stateless.hpp"
#include "util/ipv4.hpp"
#include "util/time.hpp"

namespace odns::nodes {

class PrefixRateLimiter {
 public:
  explicit PrefixRateLimiter(util::Duration window = util::Duration::minutes(5))
      : window_(window) {}

  /// True if a request from `src` may be served at `now`; records the
  /// grant. Denied requests do not reset the window.
  bool allow(util::Ipv4 src, util::SimTime now);

  [[nodiscard]] std::uint64_t granted() const { return granted_; }
  [[nodiscard]] std::uint64_t denied() const { return denied_; }
  [[nodiscard]] util::Duration window() const { return window_; }

 private:
  util::Duration window_;
  std::unordered_map<util::Prefix, util::SimTime> last_grant_;
  std::uint64_t granted_ = 0;
  std::uint64_t denied_ = 0;
};

/// Resolver-side response rate limiting (knot-style token bucket).
struct RrlConfig {
  /// Responses per second admitted per client /24. 0 disables RRL.
  std::uint32_t rate = 0;
  /// Bucket capacity in responses (burst allowance). 0 = `rate`.
  std::uint32_t burst = 0;
  /// Of the limited responses, roughly 1/slip go out as a minimal
  /// truncated (TC=1) reply instead of being dropped; 1 truncates all
  /// limited responses, 0 drops them all. Which responses slip is a
  /// stateless per-packet hash (netsim::stateless_decision), never an
  /// every-Nth counter — a counter's value would depend on the order
  /// same-instant packets interleave in, which differs across shard
  /// counts.
  std::uint32_t slip = 2;
};

enum class RrlAction : std::uint8_t { pass, slip, drop };

struct RrlStats {
  std::uint64_t passed = 0;
  std::uint64_t slipped = 0;
  std::uint64_t dropped = 0;

  RrlStats& operator+=(const RrlStats& o) {
    passed += o.passed;
    slipped += o.slipped;
    dropped += o.dropped;
    return *this;
  }
};

/// Token-bucket RRL with shard-count-invariant decisions. Tokens are
/// integer nanotokens refilled by elapsed simulated time, so the state
/// a packet observes is a function of *prior instants* only. Within
/// one instant the bucket is deliberately instant-commutative: the
/// pass/limit gate is decided once per nanosecond from the tokens at
/// that instant's start and applies to every same-instant arrival
/// (consumption may overdraw into bounded debt). Same-instant arrival
/// *order* at a host is not invariant across shard counts — only
/// decisions that commute at one instant are safe to make from
/// stateful handlers (the loss path's burst counter solves the same
/// problem; see "Attack scenarios" in docs/architecture.md).
class ResponseRateLimiter {
 public:
  ResponseRateLimiter(RrlConfig cfg, std::uint64_t seed)
      : cfg_(cfg), seed_(seed) {}

  /// Decision for one response to `client` at `now`. `flow` is the
  /// response's flow identity (client port, txid) — slip entropy.
  RrlAction check(util::Ipv4 client, util::SimTime now, std::uint64_t flow);

  [[nodiscard]] const RrlConfig& config() const { return cfg_; }
  [[nodiscard]] const RrlStats& stats() const { return stats_; }

 private:
  /// One simulated second of nanotokens == one response's worth.
  static constexpr std::int64_t kToken = 1'000'000'000;

  struct Bucket {
    std::int64_t tokens = 0;
    std::int64_t at = -1;     // instant the gate below was decided for
    bool gate_open = true;    // pass/limit verdict for this instant
  };

  RrlConfig cfg_;
  std::uint64_t seed_;
  std::unordered_map<util::Prefix, Bucket> buckets_;
  RrlStats stats_;
};

}  // namespace odns::nodes
