#include "nodes/resolver.hpp"

#include <algorithm>

namespace odns::nodes {

using dnswire::ARecord;
using dnswire::CnameRecord;
using dnswire::Message;
using dnswire::Name;
using dnswire::NsRecord;
using dnswire::Rcode;
using dnswire::ResourceRecord;
using dnswire::RrType;
using dnswire::SoaRecord;

namespace {

std::string question_key(const dnswire::Question& q) {
  return q.name.canonical() + "/" +
         std::to_string(static_cast<std::uint16_t>(q.type));
}

/// Negative TTL from the SOA in the authority section (RFC 2308).
std::uint32_t negative_ttl_of(const Message& msg) {
  for (const auto& rr : msg.authorities) {
    if (const auto* soa = std::get_if<SoaRecord>(&rr.rdata)) {
      return std::min(rr.ttl, soa->minimum);
    }
  }
  return 300;
}

}  // namespace

RecursiveResolver::RecursiveResolver(netsim::Simulator& sim,
                                     netsim::HostId host, ResolverConfig cfg,
                                     std::uint64_t seed)
    : DnsNode(sim, host), cfg_(std::move(cfg)), cache_(cfg_.max_ttl),
      rng_(seed), seed_(seed) {
  if (cfg_.rrl.rate > 0) rrl_.emplace(cfg_.rrl, seed_);
}

void RecursiveResolver::set_rrl(RrlConfig rrl) {
  cfg_.rrl = rrl;
  if (rrl.rate > 0) {
    rrl_.emplace(rrl, seed_);
  } else {
    rrl_.reset();
  }
}

void RecursiveResolver::send_client_response(
    util::Ipv4 addr, std::uint16_t port, const Message& resp,
    std::optional<util::Ipv4> src_override) {
  if (rrl_) {
    const std::uint64_t flow = (std::uint64_t{port} << 16) | resp.header.id;
    switch (rrl_->check(addr, sim().now(), flow)) {
      case RrlAction::pass:
        ++stats_.rrl_passed;
        break;
      case RrlAction::slip: {
        ++stats_.rrl_slipped;
        ++counters_.rate_limited;
        Message tc;
        tc.header = resp.header;
        tc.header.tc = true;
        tc.questions = resp.questions;
        send_message(addr, kDnsPort, port, tc, src_override);
        return;
      }
      case RrlAction::drop:
        ++stats_.rrl_dropped;
        ++counters_.rate_limited;
        return;
    }
  }
  send_message(addr, kDnsPort, port, resp, src_override);
}

void RecursiveResolver::start() {
  sim().bind_udp(host(), kDnsPort, this);
  sim().bind_udp_wildcard(host(), this);
}

void RecursiveResolver::on_message(const netsim::Datagram& dgram,
                                   dnswire::Message msg) {
  if (dgram.dst_port == kDnsPort && !msg.header.qr) {
    handle_client_query(dgram, msg);
  } else if (dgram.dst_port != kDnsPort && msg.header.qr) {
    handle_upstream_response(dgram, msg);
  }
  // Anything else (responses to port 53, queries to ephemeral ports) is
  // reflection noise; dropped.
}

void RecursiveResolver::handle_client_query(const netsim::Datagram& dgram,
                                            const Message& msg) {
  ++stats_.client_queries;
  if (msg.questions.size() != 1) {
    send_client_response(dgram.src, dgram.src_port,
                         dnswire::make_response(msg, Rcode::formerr),
                         dgram.dst);
    return;
  }
  const auto& q = msg.questions.front();

  if (!cfg_.open) {
    const bool allowed =
        std::any_of(cfg_.allowed.begin(), cfg_.allowed.end(),
                    [&](const util::Prefix& p) { return p.contains(dgram.src); });
    if (!allowed) {
      ++stats_.refused_acl;
      ++counters_.refused;
      Message resp = dnswire::make_response(msg, Rcode::refused);
      resp.header.ra = false;
      send_client_response(dgram.src, dgram.src_port, resp,
                           cfg_.service_addr.value_or(dgram.dst));
      return;
    }
  }

  // Cache first: the response-based scan method deliberately reuses one
  // static name so that resolver caches absorb the load (§2, Table 2).
  if (auto hit = cache_.get(q.name, q.type, sim().now())) {
    ++stats_.answered_from_cache;
    Message resp = dnswire::make_response(msg, hit->negative
                                                   ? hit->rcode
                                                   : Rcode::noerror);
    resp.header.ra = true;
    resp.answers = hit->records;
    send_client_response(dgram.src, dgram.src_port, resp,
                         cfg_.service_addr.value_or(dgram.dst));
    return;
  }

  Client client{dgram.src, dgram.src_port, msg.header.id, dgram.dst,
                msg.header.rd};
  const auto key = question_key(q);
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    it->second->clients.push_back(client);
    return;
  }
  auto task = std::make_shared<Task>();
  task->original = q;
  task->current_name = q.name;
  task->clients.push_back(client);
  inflight_.emplace(key, task);
  ++stats_.full_resolutions;
  begin_iteration(task);
}

std::vector<util::Ipv4> RecursiveResolver::best_servers_for(const Name& name) {
  // Walk from the query name toward the root, looking for a cached
  // delegation whose glue we also have.
  Name zone = name;
  while (true) {
    if (auto ns_set = cache_.get(zone, RrType::ns, sim().now());
        ns_set && !ns_set->negative) {
      std::vector<util::Ipv4> addrs;
      for (const auto& rr : ns_set->records) {
        if (const auto* ns = std::get_if<NsRecord>(&rr.rdata)) {
          if (auto glue = cache_.get(ns->host, RrType::a, sim().now());
              glue && !glue->negative) {
            for (const auto& g : glue->records) {
              if (const auto* a = std::get_if<ARecord>(&g.rdata)) {
                addrs.push_back(a->addr);
              }
            }
          }
        }
      }
      if (!addrs.empty()) return addrs;
    }
    if (zone.is_root()) break;
    zone = zone.parent();
  }
  return cfg_.root_hints;
}

void RecursiveResolver::begin_iteration(const TaskPtr& task) {
  task->servers = best_servers_for(task->current_name);
  task->server_idx = 0;
  task->retries_left = cfg_.max_retries;
  if (task->servers.empty()) {
    finish_servfail(task);
    return;
  }
  query_current_server(task);
}

void RecursiveResolver::query_current_server(const TaskPtr& task) {
  if (task->done) return;
  const util::Ipv4 server = task->servers[task->server_idx];
  const auto txid = static_cast<std::uint16_t>(rng_.uniform(1, 0xFFFF));
  const std::uint16_t port = next_port_;
  next_port_ = next_port_ >= 65535 ? 49152 : static_cast<std::uint16_t>(next_port_ + 1);

  const auto generation = next_generation_++;
  task->generation = generation;

  // 0x20: flip the case of each letter randomly; the authoritative
  // server must echo the exact spelling back.
  dnswire::Name cased = task->current_name;
  if (cfg_.case_randomization) {
    std::vector<std::string> labels = cased.labels();
    for (auto& label : labels) {
      for (auto& ch : label) {
        if (ch >= 'a' && ch <= 'z' && rng_.chance(0.5)) {
          ch = static_cast<char>(ch - 'a' + 'A');
        } else if (ch >= 'A' && ch <= 'Z' && rng_.chance(0.5)) {
          ch = static_cast<char>(ch - 'A' + 'a');
        }
      }
    }
    if (auto rebuilt = dnswire::Name::from_labels(std::move(labels))) {
      cased = *rebuilt;
    }
  }
  // Key collision (the port pool wrapped within one timeout window):
  // the displaced query can no longer match a response or its typed
  // timeout — its timer would find this entry and bail on the
  // generation check — so treat it as lost right now to keep its task
  // making progress.
  if (auto displaced_it = pending_upstream_.find(pending_key(port, txid));
      displaced_it != pending_upstream_.end()) {
    const TaskPtr displaced = displaced_it->second.task;
    const auto displaced_gen = displaced->generation;
    pending_upstream_.erase(displaced_it);
    if (!displaced->done && displaced != task) {
      on_upstream_timeout(displaced, displaced_gen);
    }
  }
  pending_upstream_[pending_key(port, txid)] = PendingUpstream{task, cased};

  Message q = dnswire::make_query(txid, cased, task->original.type,
                                  /*recursion_desired=*/false);
  ++stats_.upstream_queries;
  send_message(server, port, kDnsPort, q);

  sim().schedule_timer(cfg_.upstream_timeout, this, generation,
                       pending_key(port, txid));
}

void RecursiveResolver::on_timer(std::uint64_t generation, std::uint64_t key) {
  auto it = pending_upstream_.find(static_cast<std::uint32_t>(key));
  if (it == pending_upstream_.end()) return;  // answered already
  const TaskPtr task = it->second.task;
  if (task->done || task->generation != generation) return;
  pending_upstream_.erase(it);
  on_upstream_timeout(task, generation);
}

void RecursiveResolver::on_upstream_timeout(const TaskPtr& task,
                                            std::uint64_t /*generation*/) {
  ++stats_.upstream_timeouts;
  if (task->retries_left > 0) {
    --task->retries_left;
    query_current_server(task);
    return;
  }
  advance_server(task);
}

void RecursiveResolver::advance_server(const TaskPtr& task) {
  ++task->server_idx;
  task->retries_left = cfg_.max_retries;
  if (task->server_idx >= task->servers.size()) {
    finish_servfail(task);
    return;
  }
  query_current_server(task);
}

void RecursiveResolver::handle_upstream_response(const netsim::Datagram& dgram,
                                                 const Message& msg) {
  auto it = pending_upstream_.find(pending_key(dgram.dst_port, msg.header.id));
  if (it == pending_upstream_.end()) return;  // late or off-path response
  // 0x20 validation: the echoed question must match the exact case we
  // sent. An off-path forger guessing (port, txid) still fails here
  // with probability 2^-letters.
  if (cfg_.case_randomization) {
    if (msg.questions.size() != 1 ||
        msg.questions.front().name.to_string() !=
            it->second.cased_name.to_string()) {
      ++stats_.rejected_0x20;
      return;  // keep the transaction pending; the real answer may come
    }
  }
  TaskPtr task = it->second.task;
  pending_upstream_.erase(it);
  if (task->done) return;
  task->generation = next_generation_++;  // cancel the timeout

  if (msg.header.rcode == Rcode::nxdomain) {
    cache_.put_negative(task->current_name, task->original.type,
                        Rcode::nxdomain, negative_ttl_of(msg), sim().now());
    finish_negative(task, Rcode::nxdomain);
    return;
  }
  if (msg.header.rcode != Rcode::noerror) {
    advance_server(task);
    return;
  }

  // Collect answers matching the current name.
  std::vector<ResourceRecord> direct;
  const ResourceRecord* cname = nullptr;
  for (const auto& rr : msg.answers) {
    if (rr.name != task->current_name) continue;
    if (rr.type == task->original.type) {
      direct.push_back(rr);
    } else if (rr.type == RrType::cname) {
      cname = &rr;
    }
  }

  if (!direct.empty()) {
    cache_.put(task->current_name, task->original.type, direct, sim().now());
    finish_positive(task, std::move(direct));
    return;
  }

  if (cname != nullptr) {
    if (++task->cname_depth > cfg_.max_cname_depth) {
      finish_servfail(task);
      return;
    }
    cache_.put(task->current_name, RrType::cname, {*cname}, sim().now());
    task->cname_chain.push_back(*cname);
    task->current_name = std::get<CnameRecord>(cname->rdata).target;
    begin_iteration(task);
    return;
  }

  // Referral? Cache the delegation and descend.
  std::vector<ResourceRecord> ns_records;
  for (const auto& rr : msg.authorities) {
    if (rr.type == RrType::ns) ns_records.push_back(rr);
  }
  if (!ns_records.empty()) {
    if (++task->referrals > cfg_.max_referrals) {
      finish_servfail(task);
      return;
    }
    cache_.put(ns_records.front().name, RrType::ns, ns_records, sim().now());
    std::vector<util::Ipv4> next_servers;
    for (const auto& rr : msg.additionals) {
      if (const auto* a = std::get_if<ARecord>(&rr.rdata)) {
        cache_.put(rr.name, RrType::a, {rr}, sim().now());
        next_servers.push_back(a->addr);
      }
    }
    if (next_servers.empty()) {
      // Glueless delegation: unsupported fallback — try remaining
      // servers, else fail. (Our topologies always provide glue.)
      advance_server(task);
      return;
    }
    task->servers = std::move(next_servers);
    task->server_idx = 0;
    task->retries_left = cfg_.max_retries;
    query_current_server(task);
    return;
  }

  // NODATA.
  cache_.put_negative(task->current_name, task->original.type, Rcode::noerror,
                      negative_ttl_of(msg), sim().now());
  finish_negative(task, Rcode::noerror);
}

void RecursiveResolver::finish_positive(const TaskPtr& task,
                                        std::vector<ResourceRecord> answers) {
  std::vector<ResourceRecord> full = task->cname_chain;
  full.insert(full.end(), answers.begin(), answers.end());
  respond_all(task, Rcode::noerror, full);
}

void RecursiveResolver::finish_negative(const TaskPtr& task, Rcode rcode) {
  respond_all(task, rcode, task->cname_chain);
}

void RecursiveResolver::finish_servfail(const TaskPtr& task) {
  ++stats_.servfails;
  ++counters_.servfail;
  respond_all(task, Rcode::servfail, {});
}

void RecursiveResolver::respond_all(
    const TaskPtr& task, Rcode rcode,
    const std::vector<ResourceRecord>& answers) {
  task->done = true;
  inflight_.erase(question_key(task->original));
  for (const auto& client : task->clients) {
    Message resp;
    resp.header.id = client.txid;
    resp.header.qr = true;
    resp.header.rd = client.recursion_desired;
    resp.header.ra = true;
    resp.header.rcode = rcode;
    resp.questions.push_back(task->original);
    resp.answers = answers;
    const util::Ipv4 reply_src = cfg_.service_addr.value_or(client.arrival_dst);
    send_client_response(client.addr, client.port, resp, reply_src);
  }
}

}  // namespace odns::nodes
