#pragma once
// Iterative (recursive-resolving) DNS server: walks referrals from the
// root hints, caches positive/negative answers and delegation data,
// coalesces duplicate in-flight questions, retries and times out.
//
// Open vs. restricted operation is an ACL: restricted resolvers REFUSE
// sources outside their allow list — which is why transparent
// forwarders must relay to *open* resolvers to act as ODNS components.

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "nodes/cache.hpp"
#include "nodes/dns_node.hpp"
#include "nodes/ratelimit.hpp"
#include "util/rng.hpp"

namespace odns::nodes {

struct ResolverConfig {
  bool open = true;
  std::vector<util::Prefix> allowed;   // consulted when !open
  std::vector<util::Ipv4> root_hints;
  /// Reply-to-client source address; anycast services answer from the
  /// shared service address rather than the PoP unicast address.
  std::optional<util::Ipv4> service_addr;
  util::Duration upstream_timeout = util::Duration::seconds(3);
  int max_retries = 2;
  int max_cname_depth = 8;
  int max_referrals = 16;
  std::uint32_t max_ttl = 86400;
  /// DNS 0x20 hardening: randomize the ASCII case of upstream query
  /// names and require responses to echo it exactly, raising the bar
  /// for off-path response forgery (dns-0x20 draft; deployed by large
  /// public resolvers).
  bool case_randomization = true;
  /// Response rate limiting toward clients (rate == 0 disables). Gates
  /// every client-facing response — reflective amplification through
  /// this resolver is clamped to rate + slipped TC replies per victim
  /// /24 per second.
  RrlConfig rrl;
};

struct ResolverStats {
  std::uint64_t client_queries = 0;
  std::uint64_t refused_acl = 0;
  std::uint64_t answered_from_cache = 0;
  std::uint64_t full_resolutions = 0;
  std::uint64_t upstream_queries = 0;
  std::uint64_t upstream_timeouts = 0;
  std::uint64_t servfails = 0;
  std::uint64_t rejected_0x20 = 0;  // responses with mangled name case
  std::uint64_t rrl_passed = 0;
  std::uint64_t rrl_slipped = 0;   // limited, answered with a TC=1 stub
  std::uint64_t rrl_dropped = 0;
};

class RecursiveResolver : public DnsNode, public netsim::TimerTarget {
 public:
  RecursiveResolver(netsim::Simulator& sim, netsim::HostId host,
                    ResolverConfig cfg, std::uint64_t seed = 7);

  /// Binds port 53 (service) and the wildcard (upstream responses).
  void start();

  /// Upstream-query timeout: `generation` identifies the query, `key`
  /// is its pending_key(port, txid). A no-op when the response already
  /// consumed the pending entry or a newer query superseded it.
  void on_timer(std::uint64_t generation, std::uint64_t key) override;

  [[nodiscard]] const ResolverStats& stats() const { return stats_; }
  [[nodiscard]] const DnsCache& cache() const { return cache_; }
  DnsCache& cache_mutable() { return cache_; }
  [[nodiscard]] const ResolverConfig& config() const { return cfg_; }

  /// (Re)arms response rate limiting — the defense-sweep toggle. A
  /// fresh limiter (empty buckets) is installed; call between runs.
  void set_rrl(RrlConfig rrl);
  [[nodiscard]] const ResponseRateLimiter* rrl() const {
    return rrl_ ? &*rrl_ : nullptr;
  }

 protected:
  void on_message(const netsim::Datagram& dgram, dnswire::Message msg) override;

 private:
  struct Client {
    util::Ipv4 addr;
    std::uint16_t port = 0;
    std::uint16_t txid = 0;
    util::Ipv4 arrival_dst;  // address the query arrived on
    bool recursion_desired = true;
  };

  struct Task {
    dnswire::Question original;
    dnswire::Name current_name;  // changes while chasing CNAMEs
    std::vector<dnswire::ResourceRecord> cname_chain;
    std::vector<Client> clients;
    std::vector<util::Ipv4> servers;
    std::size_t server_idx = 0;
    int retries_left = 0;
    int cname_depth = 0;
    int referrals = 0;
    std::uint64_t generation = 0;  // invalidates stale timeout events
    bool done = false;
  };
  using TaskPtr = std::shared_ptr<Task>;

  void handle_client_query(const netsim::Datagram& dgram,
                           const dnswire::Message& msg);
  void handle_upstream_response(const netsim::Datagram& dgram,
                                const dnswire::Message& msg);

  void begin_iteration(const TaskPtr& task);
  void query_current_server(const TaskPtr& task);
  void on_upstream_timeout(const TaskPtr& task, std::uint64_t generation);
  void advance_server(const TaskPtr& task);

  void finish_positive(const TaskPtr& task,
                       std::vector<dnswire::ResourceRecord> answers);
  void finish_negative(const TaskPtr& task, dnswire::Rcode rcode);
  void finish_servfail(const TaskPtr& task);
  void respond_all(const TaskPtr& task, dnswire::Rcode rcode,
                   const std::vector<dnswire::ResourceRecord>& answers);

  /// RRL gate in front of every client-facing send: pass emits `resp`
  /// unchanged, slip emits a minimal TC=1 echo of the question, drop
  /// emits nothing. With RRL disabled this is exactly send_message.
  void send_client_response(util::Ipv4 addr, std::uint16_t port,
                            const dnswire::Message& resp,
                            std::optional<util::Ipv4> src_override);

  /// Best cached name-server addresses for `name`: walks up the label
  /// tree looking for cached NS + glue; falls back to root hints.
  std::vector<util::Ipv4> best_servers_for(const dnswire::Name& name);

  static std::uint32_t pending_key(std::uint16_t port, std::uint16_t txid) {
    return (std::uint32_t{port} << 16) | txid;
  }

  struct PendingUpstream {
    TaskPtr task;
    dnswire::Name cased_name;  // exact case sent (0x20 validation)
  };

  ResolverConfig cfg_;
  DnsCache cache_;
  util::Rng rng_;
  std::uint64_t seed_;  // also seeds the RRL slip hash
  std::optional<ResponseRateLimiter> rrl_;
  ResolverStats stats_;
  std::unordered_map<std::string, TaskPtr> inflight_;  // by question key
  std::unordered_map<std::uint32_t, PendingUpstream> pending_upstream_;
  std::uint16_t next_port_ = 49152;
  std::uint64_t next_generation_ = 1;
};

}  // namespace odns::nodes
