#include "nodes/stub.hpp"

namespace odns::nodes {

std::uint16_t StubClient::query(util::Ipv4 server, const dnswire::Name& name,
                                dnswire::RrType type) {
  const std::uint16_t txid = next_txid_++;
  const std::uint16_t port = next_port_;
  next_port_ = next_port_ >= 30000 ? 20000 : static_cast<std::uint16_t>(next_port_ + 1);
  send_message(server, port, kDnsPort, dnswire::make_query(txid, name, type));
  return txid;
}

void StubClient::on_message(const netsim::Datagram& dgram,
                            dnswire::Message msg) {
  if (!msg.header.qr) return;
  responses_.push_back(StubResponse{dgram.src, dgram.src_port, dgram.dst_port,
                                    std::move(msg), sim().now()});
}

}  // namespace odns::nodes
