#pragma once
// Minimal stub client: issues queries toward any DNS speaker and
// records whatever comes back (from any source — by design, since
// transparent forwarders produce responses from third parties).

#include <cstdint>
#include <vector>

#include "nodes/dns_node.hpp"

namespace odns::nodes {

struct StubResponse {
  util::Ipv4 from;
  std::uint16_t from_port = 0;
  std::uint16_t to_port = 0;
  dnswire::Message message;
  util::SimTime time;
};

class StubClient : public DnsNode {
 public:
  StubClient(netsim::Simulator& sim, netsim::HostId host)
      : DnsNode(sim, host) {}

  /// Binds the wildcard so responses to any ephemeral port arrive here.
  void start() { sim().bind_udp_wildcard(host(), this); }

  /// Fires a query; returns the transaction id used.
  std::uint16_t query(util::Ipv4 server, const dnswire::Name& name,
                      dnswire::RrType type = dnswire::RrType::a);

  [[nodiscard]] const std::vector<StubResponse>& responses() const {
    return responses_;
  }
  void clear() { responses_.clear(); }

 protected:
  void on_message(const netsim::Datagram& dgram, dnswire::Message msg) override;

 private:
  std::vector<StubResponse> responses_;
  std::uint16_t next_txid_ = 100;
  std::uint16_t next_port_ = 20000;
};

}  // namespace odns::nodes
