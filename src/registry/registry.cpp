#include "registry/registry.hpp"

#include <algorithm>

namespace odns::registry {

void FingerprintStore::add(util::Ipv4 addr, DeviceObservation obs) {
  std::uint32_t profile = 0;
  for (; profile < profiles_.size(); ++profile) {
    if (profiles_[profile] == obs) break;
  }
  if (profile == profiles_.size()) profiles_.push_back(std::move(obs));
  tail_.emplace_back(addr, profile);
}

void FingerprintStore::seal() const {
  if (tail_.empty()) return;
  index_.insert(index_.end(), tail_.begin(), tail_.end());
  tail_.clear();
  // Stable sort keeps insertion order within an address run, so
  // keeping the *last* entry of each run preserves the overwrite
  // semantics of the map this replaced.
  std::stable_sort(index_.begin(), index_.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  auto out = index_.begin();
  for (auto it = index_.begin(); it != index_.end();) {
    auto run_end = it + 1;
    while (run_end != index_.end() && run_end->first == it->first) ++run_end;
    *out++ = *(run_end - 1);
    it = run_end;
  }
  index_.erase(out, index_.end());
}

const DeviceObservation* FingerprintStore::find(util::Ipv4 addr) const {
  seal();
  auto it = std::lower_bound(
      index_.begin(), index_.end(), addr,
      [](const auto& e, util::Ipv4 a) { return e.first < a; });
  if (it == index_.end() || it->first != addr) return nullptr;
  return &profiles_[it->second];
}

void RouteviewsTable::add(util::Prefix prefix, netsim::Asn origin) {
  auto& bucket = by_len_[static_cast<std::size_t>(prefix.length())];
  if (bucket.emplace(prefix.base().value(), origin).second) {
    ++count_;
  }
}

std::optional<netsim::Asn> RouteviewsTable::origin_of(util::Ipv4 addr) const {
  for (int len = 32; len >= 0; --len) {
    const auto& bucket = by_len_[static_cast<std::size_t>(len)];
    if (bucket.empty()) continue;
    const std::uint32_t masked =
        len == 0 ? 0u : addr.value() & (~0u << (32 - len));
    if (auto it = bucket.find(masked); it != bucket.end()) {
      return it->second;
    }
  }
  return std::nullopt;
}

RegistrySnapshot RegistrySnapshot::derive(const topo::Deployment& world,
                                          const SnapshotConfig& cfg) {
  RegistrySnapshot snap;
  util::Rng rng{cfg.seed};
  const auto& net = world.sim().net();

  // --- Routeviews: announced prefixes, minus a sliver of unmapped
  // space; router interfaces appear as /32s (traceroute hops must be
  // attributable to ASes).
  for (const auto& [prefix, asn] : net.announced_prefixes()) {
    if (rng.chance(cfg.routeviews_drop)) continue;
    snap.routeviews.add(prefix, asn);
  }
  for (netsim::Asn asn : net.all_asns()) {
    const auto* info = net.find_as(asn);
    for (auto router_ip : info->router_ips) {
      if (rng.chance(cfg.routeviews_drop)) continue;
      snap.routeviews.add(util::Prefix{router_ip, 32}, asn);
    }
  }

  // --- whois/MaxMind: country registrations.
  for (netsim::Asn asn : net.all_asns()) {
    if (rng.chance(cfg.whois_missing)) continue;
    snap.whois.add(asn, world.country_of_asn(asn));
  }

  // --- PeeringDB: sparse type records. Tier-1/transit networks are
  // diligent registrants; the eyeball long tail mostly is not.
  for (netsim::Asn asn : net.all_asns()) {
    const auto type = world.type_of_asn(asn);
    const double coverage =
        (type == topo::AsType::tier1 || type == topo::AsType::transit)
            ? 0.95
            : cfg.peeringdb_coverage;
    if (rng.chance(coverage)) snap.peeringdb.add(asn, type);
  }

  // --- CAIDA-like relationship database: most, not all, of the true
  // provider→customer edges (DNSRoute++ §5 finds some of the missing).
  for (const auto& [provider, customer] : world.provider_customer_edges()) {
    if (rng.chance(cfg.caida_coverage)) snap.caida.add(provider, customer);
  }

  // --- Manual classification notes: independent second source that
  // mostly covers what PeeringDB misses.
  for (netsim::Asn asn : net.all_asns()) {
    if (snap.peeringdb.type_of(asn).has_value()) continue;
    if (rng.chance(cfg.manual_coverage)) {
      snap.manual.add(asn, world.type_of_asn(asn));
    }
  }

  // --- Shodan/Censys banner store for the fingerprint-visible slice
  // of the population.
  for (const auto& gt : world.ground_truth()) {
    if (!gt.fingerprint_visible) continue;
    DeviceObservation obs;
    switch (gt.vendor) {
      case topo::DeviceVendor::mikrotik:
        // The characteristic RouterOS port set (§6 cites 10 such
        // ports; winbox 8291 and bandwidth-test 2000 are the giveaway).
        obs.open_ports = {53, 80, 2000, 8291, 8728, 8729};
        obs.product = "MikroTik RouterOS";
        break;
      case topo::DeviceVendor::zyxel:
        obs.open_ports = {53, 80, 443, 7547};
        obs.product = "Zyxel VMG series";
        break;
      case topo::DeviceVendor::huawei:
        obs.open_ports = {53, 80, 37443};
        obs.product = "Huawei HG8245";
        break;
      case topo::DeviceVendor::tplink:
        obs.open_ports = {53, 80, 1900};
        obs.product = "TP-Link Archer";
        break;
      case topo::DeviceVendor::dlink:
        obs.open_ports = {53, 80, 8181};
        obs.product = "D-Link DIR series";
        break;
      case topo::DeviceVendor::unknown:
        obs.open_ports = {53};
        obs.product = "";
        break;
    }
    snap.shodan.add(gt.addr, std::move(obs));
  }

  // --- Project AS sets: published by the operators themselves.
  for (const auto& pop : world.pops()) {
    snap.project_asns[pop.asn] = pop.project;
  }

  return snap;
}

}  // namespace odns::registry
