#pragma once
// Dump-shaped views of the synthetic Internet, standing in for the
// external data sources the paper joins against:
//   Routeviews BGP dumps   → prefix-to-origin-ASN (99.9% coverage)
//   whois + MaxMind        → ASN-to-country
//   PeeringDB              → ASN-to-network-type (sparse, like reality)
//   CAIDA AS-Rank          → AS relationship database (incomplete)
// The analysis pipeline only sees these views, never the ground truth,
// so its sanitization/fallback code paths run exactly as they would
// against the real dumps.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netsim/network.hpp"
#include "topo/deployment.hpp"
#include "util/rng.hpp"

namespace odns::registry {

/// Longest-prefix-match table: prefix → origin ASN.
class RouteviewsTable {
 public:
  void add(util::Prefix prefix, netsim::Asn origin);

  /// Longest-prefix match; nullopt for unrouted space (the ~0.1% the
  /// paper could not map).
  [[nodiscard]] std::optional<netsim::Asn> origin_of(util::Ipv4 addr) const;

  [[nodiscard]] std::size_t entries() const { return count_; }

 private:
  // One exact-match map per prefix length; LPM walks /32 down to /0.
  std::array<std::unordered_map<std::uint32_t, netsim::Asn>, 33> by_len_;
  std::size_t count_ = 0;
};

class WhoisDb {
 public:
  void add(netsim::Asn asn, std::string country) {
    countries_[asn] = std::move(country);
  }
  [[nodiscard]] std::optional<std::string> country_of(netsim::Asn asn) const {
    auto it = countries_.find(asn);
    if (it == countries_.end() || it->second.empty()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::size_t entries() const { return countries_.size(); }

 private:
  std::unordered_map<netsim::Asn, std::string> countries_;
};

class PeeringDb {
 public:
  void add(netsim::Asn asn, topo::AsType type) { types_[asn] = type; }
  [[nodiscard]] std::optional<topo::AsType> type_of(netsim::Asn asn) const {
    auto it = types_.find(asn);
    if (it == types_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::size_t entries() const { return types_.size(); }

 private:
  std::unordered_map<netsim::Asn, topo::AsType> types_;
};

/// Provider→customer pairs known to the (synthetic) CAIDA database.
class AsRelationships {
 public:
  void add(netsim::Asn provider, netsim::Asn customer) {
    known_.insert(key(provider, customer));
  }
  [[nodiscard]] bool knows(netsim::Asn provider, netsim::Asn customer) const {
    return known_.contains(key(provider, customer));
  }
  [[nodiscard]] std::size_t entries() const { return known_.size(); }

 private:
  static std::uint64_t key(netsim::Asn p, netsim::Asn c) {
    return (std::uint64_t{p} << 32) | c;
  }
  std::unordered_set<std::uint64_t> known_;
};

/// What a banner-grabbing search engine (Shodan/Censys) knows about a
/// host. Only a minority of the ODNS population is covered (§6: 80k of
/// 600k transparent forwarders).
struct DeviceObservation {
  std::vector<std::uint16_t> open_ports;
  std::string product;  // banner-derived product string

  friend bool operator==(const DeviceObservation&,
                         const DeviceObservation&) = default;
};

/// Banner store with interned observations. Real-world scans see the
/// same handful of vendor port-sets repeated across tens of thousands
/// of devices, so storing one DeviceObservation per address is pure
/// duplication. Instead distinct observations are interned once and
/// addresses map to them through a flat sorted (addr, profile) table —
/// O(bytes) per covered host drops from a map node + vector + string
/// to 8 bytes. Lookups binary-search; inserts append to an unsorted
/// tail that is merged on the first lookup after a batch of adds
/// (same freeze-then-search discipline as the netsim address plane).
class FingerprintStore {
 public:
  void add(util::Ipv4 addr, DeviceObservation obs);
  [[nodiscard]] const DeviceObservation* find(util::Ipv4 addr) const;
  [[nodiscard]] std::size_t entries() const {
    seal();
    return index_.size();
  }
  /// Number of distinct interned observations (diagnostic).
  [[nodiscard]] std::size_t distinct_profiles() const {
    return profiles_.size();
  }

 private:
  void seal() const;  // merge tail_ into index_, last add per addr wins

  std::vector<DeviceObservation> profiles_;  // interned, index-stable
  // (addr, profile index); index_ sorted by addr, tail_ insertion order.
  mutable std::vector<std::pair<util::Ipv4, std::uint32_t>> index_;
  mutable std::vector<std::pair<util::Ipv4, std::uint32_t>> tail_;
};

struct SnapshotConfig {
  std::uint64_t seed = 99;
  double routeviews_drop = 0.001;   // paper: 99.9% of IPs mapped
  double whois_missing = 0.002;
  double peeringdb_coverage = 0.40; // most ASes unclassified, like reality
  double manual_coverage = 0.70;    // manual research fills most gaps
  double caida_coverage = 0.90;     // leaves relationships to discover
};

struct RegistrySnapshot {
  RouteviewsTable routeviews;
  WhoisDb whois;
  PeeringDb peeringdb;
  /// Manual research notes (§6 / Appendix E: 42 of the top-100 ASes
  /// were classified by hand after PeeringDB came up empty).
  PeeringDb manual;
  AsRelationships caida;
  FingerprintStore shodan;
  /// Public-resolver project AS sets (operator-published, not noisy).
  std::unordered_map<netsim::Asn, topo::ResolverProject> project_asns;

  [[nodiscard]] std::optional<topo::ResolverProject> project_of_asn(
      netsim::Asn asn) const {
    auto it = project_asns.find(asn);
    if (it == project_asns.end()) return std::nullopt;
    return it->second;
  }

  /// Convenience: IP → country via Routeviews + whois.
  [[nodiscard]] std::optional<std::string> country_of(util::Ipv4 addr) const {
    auto asn = routeviews.origin_of(addr);
    if (!asn) return std::nullopt;
    return whois.country_of(*asn);
  }

  /// Derives all four views from a built deployment.
  static RegistrySnapshot derive(const topo::Deployment& world,
                                 const SnapshotConfig& cfg = {});
};

}  // namespace odns::registry
