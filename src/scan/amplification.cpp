#include "scan/amplification.hpp"

#include <algorithm>
#include <tuple>

#include "dnswire/codec.hpp"
#include "dnswire/message.hpp"

namespace odns::scan {

void VictimMeter::on_datagram(const netsim::Datagram& dgram) {
  Reflection r;
  r.victim = victim_;
  r.src = dgram.src;
  r.src_port = dgram.src_port;
  r.dst_port = dgram.dst_port;
  r.bytes = dgram.payload->size();
  r.at = sim_->now();
  if (auto parsed = dnswire::decode(*dgram.payload)) {
    r.truncated = parsed.value().header.tc;
  }
  records_.push_back(std::move(r));
}

AmplificationCampaign::AmplificationCampaign(netsim::Simulator& sim,
                                             AmplificationConfig cfg)
    : sim_(&sim), cfg_(std::move(cfg)) {}

void AmplificationCampaign::add_attacker(netsim::HostId host) {
  attackers_.push_back(host);
}

void AmplificationCampaign::add_victim(netsim::HostId host, util::Ipv4 addr) {
  VictimSlot slot;
  slot.host = host;
  slot.meter = std::make_unique<VictimMeter>(*sim_, addr);
  sim_->bind_udp_wildcard(host, slot.meter.get());
  victims_.push_back(std::move(slot));
}

void AmplificationCampaign::start(const std::vector<util::Ipv4>& reflectors) {
  if (attackers_.empty() || victims_.empty() || reflectors.empty()) {
    last_send_at_ = sim_->now();
    return;
  }
  // Every query is the same question, so the wire size (txid is always
  // two octets) is a constant of the campaign.
  const std::uint64_t query_bytes =
      dnswire::encode(dnswire::make_query(0, cfg_.qname, cfg_.qtype)).size();
  const std::uint64_t gap_ns =
      cfg_.probes_per_second == 0
          ? 0
          : 1'000'000'000ull / cfg_.probes_per_second;
  const std::uint32_t port_range =
      static_cast<std::uint32_t>(cfg_.port_limit - cfg_.port_base);

  const util::SimTime t0 = sim_->now();
  injections_.reserve(victims_.size() * reflectors.size());
  std::size_t i = 0;
  for (const auto& slot : victims_) {
    for (const util::Ipv4 reflector : reflectors) {
      Injection inj;
      inj.victim = slot.meter->victim();
      inj.reflector = reflector;
      inj.attacker = attackers_[i % attackers_.size()];
      inj.attacker_as = sim_->net().host(inj.attacker).asn;
      inj.src_port = static_cast<std::uint16_t>(
          cfg_.port_base + static_cast<std::uint32_t>(i) % port_range);
      inj.txid = static_cast<std::uint16_t>(i + 1);
      inj.bytes = query_bytes;
      const auto delay = util::Duration::nanos(
          static_cast<std::int64_t>(gap_ns * i));
      inj.at = t0 + delay;
      injections_.push_back(inj);
      // Injections fire on the shard owning their attacker; start()
      // runs outside the event loop, so the timers must be placed
      // shard-affine (exactly the scanner's pacing pattern).
      sim_->schedule_timer_on(inj.attacker, delay, this, i);
      ++i;
    }
  }
  last_send_at_ = injections_.back().at;
}

void AmplificationCampaign::on_timer(std::uint64_t injection_index,
                                     std::uint64_t) {
  // Sends only — injections_ is immutable after start(), so concurrent
  // attacker shards share nothing mutable here.
  const Injection& inj = injections_[injection_index];
  netsim::SendOptions opts;
  opts.dst = inj.reflector;
  opts.src_port = inj.src_port;
  opts.dst_port = 53;
  opts.spoof_src = inj.victim;
  opts.payload = dnswire::encode(
      dnswire::make_query(inj.txid, cfg_.qname, cfg_.qtype));
  sim_->send_udp(inj.attacker, std::move(opts));
}

void AmplificationCampaign::run_to_completion() {
  sim_->run();
  sim_->run_until(last_send_at_ + cfg_.settle);
  sim_->run();
}

std::vector<Reflection> AmplificationCampaign::merged_reflections() const {
  std::vector<Reflection> all;
  for (const auto& slot : victims_) {
    const auto& recs = slot.meter->records();
    all.insert(all.end(), recs.begin(), recs.end());
  }
  std::sort(all.begin(), all.end(), [](const Reflection& a, const Reflection& b) {
    return std::tuple(a.at.nanos(), a.victim, a.src, a.src_port, a.dst_port,
                      a.bytes, a.truncated) <
           std::tuple(b.at.nanos(), b.victim, b.src, b.src_port, b.dst_port,
                      b.bytes, b.truncated);
  });
  return all;
}

}  // namespace odns::scan
