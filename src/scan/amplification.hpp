#pragma once
// Reflective-amplification campaign model ("Forward to Hell?" follow-up
// threat): attackers inject DNS queries with the *victim's* spoofed
// source address toward transparent forwarders, which relay them to
// open resolvers; the resolvers' (large, e.g. TXT) responses land on
// the victim. The campaign records every injection and, through a
// wildcard meter bound on each victim host, every reflected datagram —
// the raw material for classify's per-victim / per-resolver-AS
// amplification tables.
//
// Determinism contract: the injection schedule is materialized up
// front and paced by shard-affine timers; on_timer only encodes and
// sends (no shared mutable state), so multiple attackers on different
// shards never race. Each victim's meter is touched only by the shard
// owning the victim host; merged_reflections() orders the union by
// (time, content), which is invariant across shard counts.

#include <cstdint>
#include <memory>
#include <vector>

#include "dnswire/name.hpp"
#include "dnswire/types.hpp"
#include "netsim/sim.hpp"
#include "util/time.hpp"

namespace odns::scan {

struct AmplificationConfig {
  /// Query name with a large answer (e.g. amp.scan.<zone> carrying a
  /// fat TXT rrset) and the large-response query type.
  dnswire::Name qname;
  dnswire::RrType qtype = dnswire::RrType::txt;
  std::uint64_t probes_per_second = 20000;
  /// Window run_to_completion() keeps simulating after the last
  /// injection so recursion + reflections settle.
  util::Duration settle = util::Duration::seconds(20);
  std::uint16_t port_base = 20000;
  std::uint16_t port_limit = 60000;
};

/// One spoofed query as injected by an attacker.
struct Injection {
  util::Ipv4 victim;     // spoofed source address
  util::Ipv4 reflector;  // destination (transparent forwarder)
  netsim::HostId attacker = netsim::kInvalidHost;
  netsim::Asn attacker_as = 0;
  std::uint16_t src_port = 0;
  std::uint16_t txid = 0;
  std::uint64_t bytes = 0;  // query wire size
  util::SimTime at;         // scheduled injection instant
};

/// One datagram arriving at a victim (a reflected response). The
/// reflection's dst_port equals the matching injection's src_port —
/// the join key the differential tests rely on.
struct Reflection {
  util::Ipv4 victim;
  util::Ipv4 src;  // resolver service/egress address
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint64_t bytes = 0;
  bool truncated = false;  // TC=1 (RRL slip stub)
  util::SimTime at;
};

/// Wildcard sink on a victim host counting everything that lands there.
class VictimMeter : public netsim::App {
 public:
  VictimMeter(netsim::Simulator& sim, util::Ipv4 victim)
      : sim_(&sim), victim_(victim) {}

  void on_datagram(const netsim::Datagram& dgram) override;

  [[nodiscard]] util::Ipv4 victim() const { return victim_; }
  [[nodiscard]] const std::vector<Reflection>& records() const {
    return records_;
  }

 private:
  netsim::Simulator* sim_;
  util::Ipv4 victim_;
  std::vector<Reflection> records_;
};

class AmplificationCampaign : public netsim::TimerTarget {
 public:
  AmplificationCampaign(netsim::Simulator& sim, AmplificationConfig cfg);

  /// Adds an injection source. The host's AS should have SAV disabled
  /// (spoofed packets are dropped at the origin AS otherwise — which
  /// is exactly what the SAV deployment sweep measures).
  void add_attacker(netsim::HostId host);
  /// Adds a spoof target and binds its meter (wildcard) on `host`.
  void add_victim(netsim::HostId host, util::Ipv4 addr);

  /// Builds and schedules the paced injection plan: one spoofed query
  /// per (victim, reflector) pair, attackers round-robin. Call
  /// run_to_completion() (or drive the simulator manually) afterwards.
  void start(const std::vector<util::Ipv4>& reflectors);
  void run_to_completion();

  void on_timer(std::uint64_t injection_index, std::uint64_t) override;

  [[nodiscard]] const std::vector<Injection>& injections() const {
    return injections_;
  }
  /// Every victim's capture log merged and sorted by (time, content) —
  /// the shard-count-invariant reflection record.
  [[nodiscard]] std::vector<Reflection> merged_reflections() const;
  [[nodiscard]] util::SimTime last_send_at() const { return last_send_at_; }

 private:
  struct VictimSlot {
    netsim::HostId host = netsim::kInvalidHost;
    std::unique_ptr<VictimMeter> meter;
  };

  netsim::Simulator* sim_;
  AmplificationConfig cfg_;
  std::vector<netsim::HostId> attackers_;
  std::vector<VictimSlot> victims_;
  std::vector<Injection> injections_;
  util::SimTime last_send_at_;
};

}  // namespace odns::scan
