#include "scan/campaigns.hpp"

namespace odns::scan {

std::string to_string(CampaignKind k) {
  switch (k) {
    case CampaignKind::shadowserver: return "Shadowserver";
    case CampaignKind::censys: return "Censys";
    case CampaignKind::shodan: return "Shodan";
  }
  return "?";
}

StatelessCampaign::StatelessCampaign(netsim::Simulator& sim,
                                     netsim::HostId host, CampaignConfig cfg)
    : sim_(&sim), host_(host), cfg_(std::move(cfg)),
      next_port_(cfg_.port_base) {
  sim_->bind_udp_wildcard(host_, this);
}

void StatelessCampaign::run(const std::vector<util::Ipv4>& targets) {
  const auto gap = util::Duration::nanos(static_cast<std::int64_t>(
      1e9 / static_cast<double>(cfg_.probes_per_second)));
  util::Duration at = util::Duration::nanos(0);
  for (auto target : targets) {
    // Shard-affine pacing (run() is called from outside the event loop).
    sim_->schedule_timer_on(host_, at, this, target.value());
    at = at + gap;
  }
  sim_->run();
  sim_->run_until(last_send_at_ + cfg_.settle);
  sim_->run();
}

void StatelessCampaign::on_timer(std::uint64_t target_bits, std::uint64_t) {
  send_probe(util::Ipv4{static_cast<std::uint32_t>(target_bits)});
}

void StatelessCampaign::send_probe(util::Ipv4 target) {
  const std::uint16_t port = next_port_;
  next_port_ = next_port_ >= cfg_.port_limit
                   ? cfg_.port_base
                   : static_cast<std::uint16_t>(next_port_ + 1);
  probe_target_by_port_[port] = target;
  netsim::SendOptions opts;
  opts.dst = target;
  opts.src_port = port;
  opts.dst_port = 53;
  opts.payload = dnswire::encode(
      dnswire::make_query(next_txid_++, cfg_.qname, cfg_.qtype));
  last_send_at_ = sim_->now();
  sim_->send_udp(host_, std::move(opts));
}

void StatelessCampaign::on_datagram(const netsim::Datagram& dgram) {
  auto parsed = dnswire::decode(*dgram.payload);
  if (!parsed) return;
  const auto& msg = parsed.value();
  if (!msg.header.qr || msg.header.rcode != dnswire::Rcode::noerror ||
      msg.answers.empty()) {
    return;  // all campaigns require a positive answer
  }
  ++responses_;
  switch (cfg_.kind) {
    case CampaignKind::shadowserver:
      // Pure response-based inventory: whoever answered is recorded.
      discovered_.insert(dgram.src);
      break;
    case CampaignKind::censys:
    case CampaignKind::shodan: {
      // Sanitizing step: the response must come from the address this
      // socket probed; off-target answers are scan artifacts.
      auto it = probe_target_by_port_.find(dgram.dst_port);
      if (it != probe_target_by_port_.end() && it->second == dgram.src) {
        discovered_.insert(dgram.src);
      } else {
        ++dropped_sanitize_;
      }
      break;
    }
  }
}

}  // namespace odns::scan
