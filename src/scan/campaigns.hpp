#pragma once
// Models of the popular scanning campaigns the paper's controlled
// experiment evaluates (§3). All three send single-packet probes and
// analyze responses *statelessly* — they never correlate a response
// with the probe that triggered it. They differ in how they sanitize:
//
//   Shadowserver — reports every distinct response source address.
//                  A transparent forwarder therefore shows up as "the
//                  resolver answered", collapsing thousands of
//                  forwarders into one resolver IP.
//   Censys/Shodan — additionally drop responses whose source does not
//                  match a probed target, so off-path answers vanish
//                  entirely.
//
// The transactional scanner (txscanner.hpp) is this work's contrast.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dnswire/codec.hpp"
#include "netsim/sim.hpp"

namespace odns::scan {

enum class CampaignKind : std::uint8_t { shadowserver, censys, shodan };

std::string to_string(CampaignKind k);

struct CampaignConfig {
  CampaignKind kind = CampaignKind::shadowserver;
  dnswire::Name qname;
  dnswire::RrType qtype = dnswire::RrType::a;
  std::uint64_t probes_per_second = 20000;
  util::Duration settle = util::Duration::seconds(25);
  /// Ephemeral source-port pool [port_base, port_limit]; wraps back to
  /// port_base when exhausted (previously hard-coded 2048/65000).
  std::uint16_t port_base = 2048;
  std::uint16_t port_limit = 65000;
};

class StatelessCampaign : public netsim::App, public netsim::TimerTarget {
 public:
  StatelessCampaign(netsim::Simulator& sim, netsim::HostId host,
                    CampaignConfig cfg);

  /// Probes every target, waits for the settle window.
  void run(const std::vector<util::Ipv4>& targets);

  /// The campaign's published view: addresses it believes are ODNS
  /// speakers.
  [[nodiscard]] const std::unordered_set<util::Ipv4>& discovered() const {
    return discovered_;
  }
  [[nodiscard]] bool has_discovered(util::Ipv4 addr) const {
    return discovered_.contains(addr);
  }
  [[nodiscard]] std::uint64_t responses_seen() const { return responses_; }
  [[nodiscard]] std::uint64_t responses_dropped_sanitize() const {
    return dropped_sanitize_;
  }

  void on_datagram(const netsim::Datagram& dgram) override;
  /// Probe-pacing timer: `target_bits` is the probe target's address.
  void on_timer(std::uint64_t target_bits, std::uint64_t) override;

 private:
  void send_probe(util::Ipv4 target);

  netsim::Simulator* sim_;
  netsim::HostId host_;
  CampaignConfig cfg_;
  /// Ephemeral source port → probed target. Censys/Shodan-style
  /// sanitization compares a response's source with the target probed
  /// from that socket.
  std::unordered_map<std::uint16_t, util::Ipv4> probe_target_by_port_;
  std::unordered_set<util::Ipv4> discovered_;
  std::uint64_t responses_ = 0;
  std::uint64_t dropped_sanitize_ = 0;
  std::uint16_t next_port_;  // starts at cfg_.port_base
  std::uint16_t next_txid_ = 1;
  util::SimTime last_send_at_;
};

}  // namespace odns::scan
