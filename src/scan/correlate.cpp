#include "scan/correlate.hpp"

#include <unordered_map>

#include "dnswire/codec.hpp"

namespace odns::scan {

void record_response(const netsim::Datagram& dgram, util::SimTime at,
                     std::uint32_t vantage, std::vector<RawResponse>& capture,
                     ScannerStats& stats) {
  auto parsed = dnswire::decode(*dgram.payload);
  if (!parsed) {
    // Undecodable captures are counted twice on purpose: parse_errors
    // keeps the classic total, responses_corrupt isolates the wire-
    // damage subset the fault plane injects (the fuzz-hardened decode
    // rejects the flipped bytes instead of misclassifying them).
    ++stats.parse_errors;
    ++stats.responses_corrupt;
    return;
  }
  const auto& msg = parsed.value();
  if (!msg.header.qr) return;  // stray queries aimed at the capture host
  ++stats.responses_received;
  RawResponse rec;
  rec.src = dgram.src;
  rec.src_port = dgram.src_port;
  rec.dst_port = dgram.dst_port;
  rec.txid = msg.header.id;
  rec.at = at;
  rec.rcode = msg.header.rcode;
  rec.answer_addrs = msg.answer_addresses();
  rec.vantage = vantage;
  capture.push_back(std::move(rec));
}

std::vector<RawResponse> merge_captures(
    const std::vector<const std::vector<RawResponse>*>& buffers) {
  std::vector<RawResponse> out;
  std::size_t total = 0;
  for (const auto* buf : buffers) total += buf->size();
  out.reserve(total);
  std::vector<std::size_t> pos(buffers.size(), 0);
  // Each buffer is already time-ordered; a k-way merge picking the
  // earliest head (ties by lowest vantage index) yields the documented
  // (time, vantage, seq) total order.
  while (out.size() < total) {
    std::size_t best = buffers.size();
    std::int64_t best_at = 0;
    for (std::size_t v = 0; v < buffers.size(); ++v) {
      if (pos[v] >= buffers[v]->size()) continue;
      const std::int64_t at = (*buffers[v])[pos[v]].at.nanos();
      if (best == buffers.size() || at < best_at) {
        best = v;
        best_at = at;
      }
    }
    out.push_back((*buffers[best])[pos[best]++]);
  }
  return out;
}

std::vector<Transaction> correlate_capture(
    const std::vector<SentProbe>& probes,
    const std::vector<RawResponse>& capture, util::Duration timeout,
    ScannerStats& stats, util::Duration retry_extension) {
  std::unordered_map<std::uint32_t, std::uint32_t> tuple_to_probe;
  tuple_to_probe.reserve(probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    tuple_to_probe[(std::uint32_t{probes[i].src_port} << 16) |
                   probes[i].txid] = static_cast<std::uint32_t>(i);
  }
  std::vector<Transaction> out(probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    out[i].target = probes[i].target;
    out[i].sent_at = probes[i].sent_at;
  }
  for (const auto& rec : capture) {
    const std::uint32_t key = (std::uint32_t{rec.dst_port} << 16) | rec.txid;
    auto it = tuple_to_probe.find(key);
    if (it == tuple_to_probe.end()) {
      ++stats.responses_unmatched;
      continue;
    }
    auto& txn = out[it->second];
    const auto& probe = probes[it->second];
    const util::Duration age = rec.at - probe.sent_at;
    if (txn.answered) {
      // Straggler on a concluded probe: within the original window
      // it's a genuine duplicate delivery; past it, it's late — e.g.
      // the original's answer limping in after a retry (same tuple)
      // already concluded the transaction.
      if (age > timeout) {
        ++stats.responses_late;
      } else {
        ++stats.responses_duplicate;
      }
      continue;
    }
    // Unanswered probes accept up to the retry-widened window: the
    // last retransmission leaves retry_extension after the original
    // and its answer gets the full timeout. RTT is still measured from
    // the original send (the plan's invariant instant — which attempt
    // elicited the answer is unobservable by design, the tuple is
    // shared).
    if (age > timeout + retry_extension) {
      ++stats.responses_late;
      continue;
    }
    txn.answered = true;
    txn.response_src = rec.src;
    txn.rtt = age;
    txn.rcode = rec.rcode;
    txn.answer_addrs = rec.answer_addrs;
    txn.vantage = rec.vantage;
  }
  return out;
}

}  // namespace odns::scan
