#pragma once
// The merge-correlator: joins probe and capture logs on the unique
// (client port, TXID) tuple after the measurement — the post-processing
// half of §4.1. Shared by the single-vantage TransactionalScanner (its
// capture log is trivially ordered) and the multi-vantage VantageSet,
// which first merges per-vantage capture buffers in the deterministic
// (time, vantage, seq) order — the capture-plane analogue of the
// engine's (time, shard, seq) cross-shard merge rule (see
// "Cross-shard merge rule" in docs/event-engine.md and "Multi-vantage
// census" in docs/architecture.md).

#include <vector>

#include "netsim/packet.hpp"
#include "scan/types.hpp"

namespace odns::scan {

/// Decodes one captured datagram and appends it to `capture` (the
/// dumpcap hook every capture host shares). Non-responses are ignored;
/// undecodable payloads count as parse errors. `vantage` tags the
/// recording capture host.
void record_response(const netsim::Datagram& dgram, util::SimTime at,
                     std::uint32_t vantage, std::vector<RawResponse>& capture,
                     ScannerStats& stats);

/// Merges per-vantage capture buffers into one log ordered by
/// (time, vantage, seq). Each input buffer must be time-ordered (they
/// are: capture hosts record in event-execution order).
[[nodiscard]] std::vector<RawResponse> merge_captures(
    const std::vector<const std::vector<RawResponse>*>& buffers);

/// Joins `capture` with `probes` on (client port, TXID) and returns
/// one transaction per probe. The first in-window response in capture
/// order wins; later in-window matches count as duplicates, and
/// stragglers past the original window count late — even when a retry
/// already concluded the probe. `retry_extension`
/// (ScanConfig::retry_extension()) widens the accept window for
/// *unanswered* probes only, so answers elicited by retransmissions
/// (same tuple, sent up to that much later) still correlate. Updates
/// the unmatched/duplicate/late statistics in `stats`.
[[nodiscard]] std::vector<Transaction> correlate_capture(
    const std::vector<SentProbe>& probes,
    const std::vector<RawResponse>& capture, util::Duration timeout,
    ScannerStats& stats,
    util::Duration retry_extension = util::Duration::nanos(0));

}  // namespace odns::scan
