#include "scan/log_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/strings.hpp"

namespace odns::scan {

namespace {

std::string addr_list(const std::vector<util::Ipv4>& addrs) {
  std::string out;
  for (const auto a : addrs) {
    if (!out.empty()) out += ' ';
    out += a.to_string();
  }
  return out;
}

std::vector<util::Ipv4> parse_addr_list(const std::string& field) {
  std::vector<util::Ipv4> out;
  for (const auto& part : util::split(field, ' ')) {
    if (part.empty()) continue;
    if (auto a = util::Ipv4::parse(part)) out.push_back(*a);
  }
  return out;
}

}  // namespace

void write_probes_csv(std::ostream& os, const std::vector<SentProbe>& probes) {
  os << "target,src_port,txid,sent_at_ns\n";
  for (const auto& p : probes) {
    os << p.target.to_string() << ',' << p.src_port << ',' << p.txid << ','
       << p.sent_at.nanos() << '\n';
  }
}

std::vector<SentProbe> read_probes_csv(std::istream& is) {
  std::vector<SentProbe> out;
  std::string line;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    const auto fields = util::split(line, ',');
    if (fields.size() != 4) continue;
    SentProbe p;
    const auto target = util::Ipv4::parse(fields[0]);
    if (!target) continue;
    p.target = *target;
    p.src_port = static_cast<std::uint16_t>(std::stoul(fields[1]));
    p.txid = static_cast<std::uint16_t>(std::stoul(fields[2]));
    p.sent_at = util::SimTime::from_nanos(std::stoll(fields[3]));
    out.push_back(p);
  }
  return out;
}

void write_capture_csv(std::ostream& os,
                       const std::vector<RawResponse>& capture) {
  os << "src,src_port,dst_port,txid,at_ns,rcode,answers\n";
  for (const auto& r : capture) {
    os << r.src.to_string() << ',' << r.src_port << ',' << r.dst_port << ','
       << r.txid << ',' << r.at.nanos() << ','
       << static_cast<int>(r.rcode) << ',' << addr_list(r.answer_addrs)
       << '\n';
  }
}

std::vector<RawResponse> read_capture_csv(std::istream& is) {
  std::vector<RawResponse> out;
  std::string line;
  std::getline(is, line);
  while (std::getline(is, line)) {
    const auto fields = util::split(line, ',');
    if (fields.size() != 7) continue;
    RawResponse r;
    const auto src = util::Ipv4::parse(fields[0]);
    if (!src) continue;
    r.src = *src;
    r.src_port = static_cast<std::uint16_t>(std::stoul(fields[1]));
    r.dst_port = static_cast<std::uint16_t>(std::stoul(fields[2]));
    r.txid = static_cast<std::uint16_t>(std::stoul(fields[3]));
    r.at = util::SimTime::from_nanos(std::stoll(fields[4]));
    r.rcode = static_cast<dnswire::Rcode>(std::stoi(fields[5]));
    r.answer_addrs = parse_addr_list(fields[6]);
    out.push_back(r);
  }
  return out;
}

void write_transactions_csv(std::ostream& os,
                            const std::vector<Transaction>& txns) {
  os << "target,answered,response_src,rtt_ns,rcode,answers\n";
  for (const auto& t : txns) {
    os << t.target.to_string() << ',' << (t.answered ? 1 : 0) << ','
       << (t.answered ? t.response_src.to_string() : "") << ','
       << t.rtt.count_nanos() << ',' << static_cast<int>(t.rcode) << ','
       << addr_list(t.answer_addrs) << '\n';
  }
}

std::vector<Transaction> read_transactions_csv(std::istream& is) {
  std::vector<Transaction> out;
  std::string line;
  std::getline(is, line);
  while (std::getline(is, line)) {
    const auto fields = util::split(line, ',');
    if (fields.size() != 6) continue;
    Transaction t;
    const auto target = util::Ipv4::parse(fields[0]);
    if (!target) continue;
    t.target = *target;
    t.answered = fields[1] == "1";
    if (t.answered) {
      if (auto src = util::Ipv4::parse(fields[2])) t.response_src = *src;
    }
    t.rtt = util::Duration::nanos(std::stoll(fields[3]));
    t.rcode = static_cast<dnswire::Rcode>(std::stoi(fields[4]));
    t.answer_addrs = parse_addr_list(fields[5]);
    out.push_back(t);
  }
  return out;
}

std::vector<Transaction> correlate_offline(
    const std::vector<SentProbe>& probes,
    const std::vector<RawResponse>& capture, util::Duration timeout) {
  std::unordered_map<std::uint32_t, std::size_t> tuple_to_probe;
  std::vector<Transaction> out(probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    tuple_to_probe[(std::uint32_t{probes[i].src_port} << 16) |
                   probes[i].txid] = i;
    out[i].target = probes[i].target;
    out[i].sent_at = probes[i].sent_at;
  }
  for (const auto& rec : capture) {
    auto it = tuple_to_probe.find((std::uint32_t{rec.dst_port} << 16) |
                                  rec.txid);
    if (it == tuple_to_probe.end()) continue;
    auto& txn = out[it->second];
    if (txn.answered) continue;
    if (rec.at - probes[it->second].sent_at > timeout) continue;
    txn.answered = true;
    txn.response_src = rec.src;
    txn.rtt = rec.at - probes[it->second].sent_at;
    txn.rcode = rec.rcode;
    txn.answer_addrs = rec.answer_addrs;
  }
  return out;
}

}  // namespace odns::scan
