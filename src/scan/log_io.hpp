#pragma once
// Persistence for scan artifacts: the probe log, the raw capture
// (dumpcap-equivalent) and correlated transactions serialize to CSV so
// post-processing can happen offline — mirroring the paper's artifact
// pipeline (dns-scan-server produces captures; dns-measurement-analysis
// consumes them).

#include <iosfwd>
#include <vector>

#include "scan/txscanner.hpp"

namespace odns::scan {

void write_probes_csv(std::ostream& os, const std::vector<SentProbe>& probes);
std::vector<SentProbe> read_probes_csv(std::istream& is);

void write_capture_csv(std::ostream& os,
                       const std::vector<RawResponse>& capture);
std::vector<RawResponse> read_capture_csv(std::istream& is);

void write_transactions_csv(std::ostream& os,
                            const std::vector<Transaction>& txns);
std::vector<Transaction> read_transactions_csv(std::istream& is);

/// Offline correlation over persisted logs — identical join semantics
/// to TransactionalScanner::correlate(), usable without the simulator.
std::vector<Transaction> correlate_offline(
    const std::vector<SentProbe>& probes,
    const std::vector<RawResponse>& capture, util::Duration timeout);

}  // namespace odns::scan
