#include "scan/plan.hpp"

namespace odns::scan {

std::vector<util::Ipv4> interleave_by_virtual_shard(
    const netsim::Simulator& sim, const std::vector<util::Ipv4>& targets) {
  // Group by virtual shard (stable within each group), then emit
  // round-robin across the non-empty groups. Keyed on the virtual
  // partition, the order — and with it every (port, txid) assignment —
  // is independent of the real shard count.
  std::vector<std::vector<util::Ipv4>> groups(
      netsim::Simulator::kVirtualShards);
  for (auto target : targets) {
    groups[sim.virtual_shard_of(target)].push_back(target);
  }
  std::vector<util::Ipv4> ordered;
  ordered.reserve(targets.size());
  for (std::size_t round = 0; ordered.size() < targets.size(); ++round) {
    for (const auto& group : groups) {
      if (round < group.size()) ordered.push_back(group[round]);
    }
  }
  return ordered;
}

VantagePlan VantagePlan::build(const netsim::Simulator& sim,
                               const ScanConfig& cfg,
                               const std::vector<util::Ipv4>& targets) {
  VantagePlan plan;
  plan.gap_ = util::Duration::nanos(static_cast<std::int64_t>(
      1e9 / static_cast<double>(cfg.probes_per_second)));
  const std::vector<util::Ipv4>* paced = &targets;
  std::vector<util::Ipv4> interleaved;
  if (cfg.shard_interleave) {
    interleaved = interleave_by_virtual_shard(sim, targets);
    paced = &interleaved;
  }
  TupleSequencer tuples(cfg.port_base, cfg.port_limit);
  plan.probes_.reserve(paced->size());
  util::Duration at = util::Duration::nanos(0);
  for (auto target : *paced) {
    const auto [port, txid] = tuples.next();
    plan.probes_.push_back(PlannedProbe{target, at, port, txid});
    at = at + plan.gap_;
  }
  plan.span_ = at;
  return plan;
}

}  // namespace odns::scan
