#include "scan/plan.hpp"

namespace odns::scan {

std::vector<util::Ipv4> interleave_by_virtual_shard(
    const netsim::Simulator& sim, const std::vector<util::Ipv4>& targets) {
  // Group by virtual shard (stable within each group), then emit
  // round-robin across the non-empty groups. Keyed on the virtual
  // partition, the order — and with it every (port, txid) assignment —
  // is independent of the real shard count.
  std::vector<std::vector<util::Ipv4>> groups(
      netsim::Simulator::kVirtualShards);
  for (auto target : targets) {
    groups[sim.virtual_shard_of(target)].push_back(target);
  }
  std::vector<util::Ipv4> ordered;
  ordered.reserve(targets.size());
  for (std::size_t round = 0; ordered.size() < targets.size(); ++round) {
    for (const auto& group : groups) {
      if (round < group.size()) ordered.push_back(group[round]);
    }
  }
  return ordered;
}

VantagePlan VantagePlan::build(const netsim::Simulator& sim,
                               const ScanConfig& cfg,
                               const std::vector<util::Ipv4>& targets) {
  VantagePlan plan;
  plan.gap_ = util::Duration::nanos(static_cast<std::int64_t>(
      1e9 / static_cast<double>(cfg.probes_per_second)));
  const std::vector<util::Ipv4>* paced = &targets;
  std::vector<util::Ipv4> interleaved;
  if (cfg.shard_interleave) {
    interleaved = interleave_by_virtual_shard(sim, targets);
    paced = &interleaved;
  }
  TupleSequencer tuples(cfg.port_base, cfg.port_limit);
  const std::size_t n = paced->size();
  plan.originals_ = n;
  plan.probes_.reserve(n * (1 + cfg.max_retries));
  util::Duration at = util::Duration::nanos(0);
  std::uint32_t index = 0;
  for (auto target : *paced) {
    const auto [port, txid] = tuples.next();
    plan.probes_.push_back(PlannedProbe{target, at, port, txid, index, 0});
    at = at + plan.gap_;
    ++index;
  }
  plan.last_at_ = n == 0 ? util::Duration::nanos(0) : at - plan.gap_;
  // Retransmissions: every original is re-sent unconditionally at
  // exponential-backoff offsets with its own tuple. Unconditional — a
  // cancel-on-answer policy would make the plan depend on response
  // timing (and through capture attribution, on the shard count); the
  // correlators dedup by tuple instead. Because fault decisions are
  // stateless per-packet hashes, appending these entries changes no
  // existing packet's fate — the monotone-recovery property the chaos
  // harness asserts.
  for (std::uint32_t k = 1; k <= cfg.max_retries && n > 0; ++k) {
    const util::Duration delta =
        cfg.backoff_base * static_cast<std::int64_t>((1ull << k) - 1);
    for (std::uint32_t i = 0; i < n; ++i) {
      const PlannedProbe& orig = plan.probes_[i];
      plan.probes_.push_back(PlannedProbe{orig.target, orig.at + delta,
                                          orig.src_port, orig.txid, i,
                                          static_cast<std::uint8_t>(k)});
    }
    plan.last_at_ = plan.probes_.back().at;
  }
  plan.span_ = n == 0 ? at : plan.last_at_ + plan.gap_;
  return plan;
}

}  // namespace odns::scan
