#pragma once
// The global probe plan: pacing order (with the optional virtual-shard
// interleave), the (port, TXID) tuple sequence, and absolute send
// offsets — computed up front, before any packet moves. The plan is
// the shard-count- and vantage-count-invariant half of a scan: every
// vantage executes its slice of the same plan, so the probe table,
// every packet's content, and every send instant are identical whether
// one host or a per-shard fleet performs the measurement.

#include <cstdint>
#include <utility>
#include <vector>

#include "netsim/sim.hpp"
#include "scan/types.hpp"

namespace odns::scan {

/// One planned probe. `at` is the offset from scan start.
struct PlannedProbe {
  util::Ipv4 target;
  util::Duration at = util::Duration::nanos(0);
  std::uint16_t src_port = 0;
  std::uint16_t txid = 0;
  /// Probe-table index this entry answers for: its own index for
  /// original sends, the original's index for retransmissions (which
  /// reuse the original's tuple — the dedup key).
  std::uint32_t origin = 0;
  /// 0 = original send; k = k-th retransmission (ScanConfig::
  /// max_retries), offset backoff_base * (2^k - 1) after the original.
  std::uint8_t attempt = 0;
};

/// The paper's unique-tuple allocator: walks the ephemeral port range,
/// moving to a fresh TXID plane when the port space wraps, so every
/// in-flight probe owns a distinct (port, TXID) pair.
class TupleSequencer {
 public:
  TupleSequencer(std::uint16_t port_base, std::uint16_t port_limit)
      : port_base_(port_base), port_limit_(port_limit),
        next_port_(port_base) {}

  std::pair<std::uint16_t, std::uint16_t> next() {
    const std::uint16_t port = next_port_;
    if (next_port_ >= port_limit_) {
      next_port_ = port_base_;
      ++next_txid_;  // port space wrapped: move to a fresh TXID plane
      if (next_txid_ == 0) next_txid_ = 1;
    } else {
      ++next_port_;
    }
    return {port, next_txid_};
  }

 private:
  std::uint16_t port_base_;
  std::uint16_t port_limit_;
  std::uint16_t next_port_;
  std::uint16_t next_txid_ = 1;
};

/// Round-robin interleave of `targets` over the simulator's virtual
/// shards (see ScanConfig::shard_interleave). Grouping is stable and
/// keyed on the shard-count-independent virtual partition, so the
/// result is identical for any real shard count.
[[nodiscard]] std::vector<util::Ipv4> interleave_by_virtual_shard(
    const netsim::Simulator& sim, const std::vector<util::Ipv4>& targets);

class VantagePlan {
 public:
  VantagePlan() = default;

  /// Computes the full plan for `targets` under `cfg`: ordering
  /// (classic or interleaved), tuple assignment in pacing order, paced
  /// send offsets, and — with cfg.max_retries > 0 — the appended
  /// retransmission entries (originals first, so plan index == probe-
  /// table index for every attempt-0 entry).
  [[nodiscard]] static VantagePlan build(const netsim::Simulator& sim,
                                         const ScanConfig& cfg,
                                         const std::vector<util::Ipv4>& targets);

  [[nodiscard]] const std::vector<PlannedProbe>& probes() const {
    return probes_;
  }
  [[nodiscard]] util::Duration pacing_gap() const { return gap_; }
  /// One pacing gap past the last planned send (retries included) —
  /// the classic scanner's pre-run estimate of the send horizon.
  [[nodiscard]] util::Duration span() const { return span_; }
  /// Offset of the last planned send itself (start for an empty plan).
  [[nodiscard]] util::Duration last_at() const { return last_at_; }
  /// Number of attempt-0 entries (the probe-table prefix of probes()).
  [[nodiscard]] std::size_t original_count() const { return originals_; }

 private:
  std::vector<PlannedProbe> probes_;
  util::Duration gap_ = util::Duration::nanos(0);
  util::Duration span_ = util::Duration::nanos(0);
  util::Duration last_at_ = util::Duration::nanos(0);
  std::size_t originals_ = 0;
};

}  // namespace odns::scan
