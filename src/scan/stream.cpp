#include "scan/stream.hpp"

#include <cassert>

namespace odns::scan {

StreamingCorrelator::StreamingCorrelator(const std::vector<SentProbe>& probes,
                                         util::Duration timeout,
                                         ScannerStats& stats,
                                         util::Duration retry_extension)
    : probes_(&probes), timeout_(timeout), extension_(retry_extension),
      stats_(&stats) {
  // Verify the TupleSequencer pattern once (O(n), allocation-free): the
  // plane is the port-space width, txids start at 1 and advance per
  // wrap. Conformant plans get the arithmetic inverse; anything else
  // (hand-built probe tables, repeated start() calls) falls back to
  // the classic hash join.
  const std::size_t n = probes.size();
  if (n > 0) {
    base_port_ = probes[0].src_port;
    std::size_t plane = n;
    for (std::size_t i = 1; i < n; ++i) {
      if (probes[i].src_port == base_port_) {
        plane = i;
        break;
      }
    }
    const bool wrapped = plane < n;
    bool ok = plane > 0 && (!wrapped || n / plane <= 65534);
    for (std::size_t i = 0; ok && i < n; ++i) {
      const auto port =
          static_cast<std::uint16_t>(base_port_ + i % plane);
      // The sequencer advances the txid while emitting the final port
      // of each plane, so a wrapped plan's txid leads by one position.
      const auto txid = static_cast<std::uint16_t>(
          wrapped ? 1 + (i + 1) / plane : 1);
      ok = probes[i].src_port == port && probes[i].txid == txid;
    }
    if (ok) {
      arithmetic_ = true;
      wrapped_ = wrapped;
      plane_ = plane;
    } else {
      fallback_.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        fallback_[(std::uint32_t{probes[i].src_port} << 16) |
                  probes[i].txid] = static_cast<std::uint32_t>(i);
      }
    }
  }
}

std::size_t StreamingCorrelator::probe_index_of(std::uint16_t port,
                                                std::uint16_t txid) const {
  if (arithmetic_) {
    if (txid == 0 || port < base_port_) return kNoProbe;
    const auto off = static_cast<std::size_t>(port - base_port_);
    if (off >= plane_) return kNoProbe;
    std::size_t idx;
    if (!wrapped_) {
      if (txid != 1) return kNoProbe;
      idx = off;
    } else if (off == plane_ - 1) {
      // Last port of a plane carries the already-bumped txid.
      if (txid < 2) return kNoProbe;
      idx = static_cast<std::size_t>(txid - 1) * plane_ - 1;
    } else {
      idx = static_cast<std::size_t>(txid - 1) * plane_ + off;
    }
    if (idx >= probes_->size()) return kNoProbe;
    return idx;
  }
  const std::uint32_t key = (std::uint32_t{port} << 16) | txid;
  auto it = fallback_.find(key);
  return it == fallback_.end() ? kNoProbe : it->second;
}

void StreamingCorrelator::consume(RawResponse&& rec) {
  const std::size_t idx = probe_index_of(rec.dst_port, rec.txid);
  if (idx == kNoProbe) {
    ++stats_->responses_unmatched;
    return;
  }
  const SentProbe& probe = (*probes_)[idx];
  const util::Duration age = rec.at - probe.sent_at;
  if (age > timeout_ + extension_) {
    ++stats_->responses_late;
    return;
  }
  // In-(extended-)window responses can only reference probes not yet
  // finalized: finalization requires sent_at + timeout + extension <=
  // watermark, and every record consumed after that has at >
  // watermark. (The guard keeps adversarial non-plan tuple collisions
  // from corrupting the window.)
  assert(idx >= base_);
  if (idx < base_) {
    ++stats_->responses_late;
    return;
  }
  const std::size_t off = idx - base_;
  if (off >= window_.size()) {
    window_.resize(off + 1);
    peak_pending_ = std::max(peak_pending_, window_.size());
  }
  PendingTxn& slot = window_[off];
  if (slot.answered) {
    // Same straggler rule as correlate_capture: duplicates within the
    // original window, late past it (e.g. the original's answer after
    // a retry already concluded the probe).
    if (age > timeout_) {
      ++stats_->responses_late;
    } else {
      ++stats_->responses_duplicate;
    }
    return;
  }
  slot.answered = true;
  slot.response_src = rec.src;
  slot.responded_at = rec.at;
  slot.rcode = rec.rcode;
  slot.answer_addrs = std::move(rec.answer_addrs);
  slot.vantage = rec.vantage;
}

void StreamingCorrelator::emit_front(const Sink& sink) {
  const SentProbe& probe = (*probes_)[base_];
  Transaction txn;
  txn.target = probe.target;
  txn.sent_at = probe.sent_at;
  if (!window_.empty()) {
    PendingTxn& slot = window_.front();
    if (slot.answered) {
      txn.answered = true;
      txn.response_src = slot.response_src;
      txn.rtt = slot.responded_at - probe.sent_at;
      txn.rcode = slot.rcode;
      txn.answer_addrs = std::move(slot.answer_addrs);
      txn.vantage = slot.vantage;
    }
    window_.pop_front();
  }
  sink(base_, std::move(txn));
  ++base_;
}

void StreamingCorrelator::advance(util::SimTime watermark, const Sink& sink) {
  while (base_ < probes_->size() &&
         (*probes_)[base_].sent_at + timeout_ + extension_ <= watermark) {
    emit_front(sink);
  }
}

void StreamingCorrelator::finish(const Sink& sink) {
  while (base_ < probes_->size()) emit_front(sink);
}

}  // namespace odns::scan
