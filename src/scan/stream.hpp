#pragma once
// Streaming (windowed) correlation: the scale half of §4.1. The
// classic merge-correlator (correlate.hpp) buffers every captured
// datagram for the whole run and joins once at the end — the first
// thing that breaks at 10⁶ targets is exactly that accumulate-
// everything buffer. The StreamingCorrelator consumes the capture log
// in watermark order and finalizes a probe's transaction as soon as
// its timeout window has provably closed, so steady-state memory is
// bounded by the in-flight window (timeout × probe rate), not by the
// run length.
//
// Equivalence contract: fed the same records in the same merged
// (time, vantage, seq) order, the streamed transactions — values,
// probe order, and the unmatched/late/duplicate statistics — are
// byte-identical to correlate_capture() over the full buffer
// (tests/scale_census_test.cpp, the streaming-vs-buffered
// differential).

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "scan/types.hpp"

namespace odns::scan {

class StreamingCorrelator {
 public:
  /// Receives each finalized transaction, in probe-index order — the
  /// same order correlate_capture() returns. The index is the probe's
  /// position in the global probe table.
  using Sink = std::function<void(std::size_t probe_index, Transaction&&)>;

  /// `probes` must outlive the correlator and stay unchanged during
  /// streaming. Correlation statistics (unmatched/late/duplicate)
  /// accumulate into `stats`, mirroring correlate_capture().
  /// `retry_extension` (ScanConfig::retry_extension()) widens the
  /// accept window for unanswered probes exactly as in
  /// correlate_capture — and with it each probe's finalization
  /// watermark, so a last-retry answer is never finalized away.
  StreamingCorrelator(const std::vector<SentProbe>& probes,
                      util::Duration timeout, ScannerStats& stats,
                      util::Duration retry_extension = util::Duration::nanos(0));

  /// Feeds one captured record. Records must arrive in the merged
  /// (time, vantage, seq) order, and only up to the watermark of the
  /// next advance() call.
  void consume(RawResponse&& rec);

  /// Finalizes every probe whose timeout window closed at or before
  /// `watermark`: all records at <= watermark have been consumed, so
  /// any future record for such a probe is provably late. Emits the
  /// finalized transactions to `sink` in probe order.
  void advance(util::SimTime watermark, const Sink& sink);

  /// Flushes all remaining probes (end of capture).
  void finish(const Sink& sink);

  /// Probes finalized so far.
  [[nodiscard]] std::size_t emitted() const { return base_; }
  /// Current in-flight window size (pending transaction slots).
  [[nodiscard]] std::size_t pending() const { return window_.size(); }
  /// High-water mark of the in-flight window — the memory-audit
  /// surface: bounded by timeout × probe rate, not by the run length.
  [[nodiscard]] std::size_t peak_pending() const { return peak_pending_; }
  /// True while tuple lookup runs arithmetically against the
  /// TupleSequencer pattern (no per-probe hash map). False only for
  /// plans that do not follow the sequencer, which fall back to the
  /// classic map.
  [[nodiscard]] bool dense_lookup() const { return arithmetic_; }

 private:
  /// Pending per-probe state, live only while the probe's timeout
  /// window is open.
  struct PendingTxn {
    util::Ipv4 response_src;
    util::SimTime responded_at;
    std::vector<util::Ipv4> answer_addrs;
    dnswire::Rcode rcode = dnswire::Rcode::noerror;
    std::uint32_t vantage = 0;
    bool answered = false;
  };

  static constexpr std::size_t kNoProbe = SIZE_MAX;

  [[nodiscard]] std::size_t probe_index_of(std::uint16_t port,
                                           std::uint16_t txid) const;
  void emit_front(const Sink& sink);

  const std::vector<SentProbe>* probes_;
  util::Duration timeout_;
  /// Retry widening of the accept/finalization window (zero without
  /// retransmissions — the classic behaviour).
  util::Duration extension_;
  ScannerStats* stats_;

  // Arithmetic tuple inverse: probe i carries port base_port_ + (i %
  // plane_), and the TupleSequencer bumps the txid while *emitting*
  // the last port of a plane, so txid is 1 + (i + 1) / plane_ once the
  // port space has wrapped (wrapped_) and constant 1 before. Either
  // way (port, txid) -> index is a multiply-add, verified against the
  // probe table — no million-entry hash map on the default path.
  bool arithmetic_ = false;
  bool wrapped_ = false;
  std::uint16_t base_port_ = 0;
  std::size_t plane_ = 0;
  std::unordered_map<std::uint32_t, std::uint32_t> fallback_;  // non-plan runs

  /// Sliding window of pending transactions for probes
  /// [base_, base_ + window_.size()); probes past the window's end are
  /// sent-but-unmatched and cost nothing until a response arrives.
  std::deque<PendingTxn> window_;
  std::size_t base_ = 0;  // next probe index to finalize
  std::size_t peak_pending_ = 0;
};

}  // namespace odns::scan
