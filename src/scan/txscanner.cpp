#include "scan/txscanner.hpp"

#include "dnswire/codec.hpp"
#include "scan/correlate.hpp"

namespace odns::scan {

TransactionalScanner::TransactionalScanner(netsim::Simulator& sim,
                                           netsim::HostId host, ScanConfig cfg)
    : sim_(&sim), host_(host), cfg_(std::move(cfg)) {
  sim_->bind_udp_wildcard(host_, this);
  sim_->set_icmp_handler(host_, [this](const netsim::Packet&) {
    ++stats_.icmp_errors;
  });
}

void TransactionalScanner::send_planned(const PlannedProbe& probe) {
  if (probe.attempt == 0) {
    ++stats_.probes_sent;
  } else {
    ++stats_.probes_retried;
  }
  last_send_at_ = sim_->now();

  const dnswire::Name qname = cfg_.qname_for_target
                                  ? cfg_.qname_for_target(probe.target)
                                  : cfg_.qname;
  netsim::SendOptions opts;
  opts.dst = probe.target;
  opts.src_port = probe.src_port;
  opts.dst_port = 53;
  opts.payload =
      dnswire::encode(dnswire::make_query(probe.txid, qname, cfg_.qtype));
  sim_->send_udp(host_, std::move(opts));
}

void TransactionalScanner::start(const std::vector<util::Ipv4>& targets) {
  plan_ = VantagePlan::build(*sim_, cfg_, targets);
  const util::SimTime t0 = sim_->now();
  probes_.reserve(probes_.size() + plan_.original_count());
  for (std::size_t i = 0; i < plan_.probes().size(); ++i) {
    const PlannedProbe& p = plan_.probes()[i];
    // The probe table is materialized from the attempt-0 plan prefix:
    // timers fire at exactly their scheduled instants, so the planned
    // send time is the sent_at the classic scanner would have
    // recorded. Retransmission entries share their original's tuple
    // and are represented by it — they schedule sends, never rows.
    if (p.attempt == 0) {
      probes_.push_back(SentProbe{p.target, p.src_port, p.txid, t0 + p.at});
    }
    // Shard-affine pacing: start() runs outside the event loop, so the
    // timers must land on the shard owning the scanner host.
    sim_->schedule_timer_on(host_, p.at, this, i);
  }
  last_send_at_ = t0 + plan_.span();
}

void TransactionalScanner::on_timer(std::uint64_t probe_index, std::uint64_t) {
  send_planned(plan_.probes()[probe_index]);
}

void TransactionalScanner::run_to_completion() {
  // Drain all traffic, then let the timeout window close.
  sim_->run();
  sim_->run_until(last_send_at_ + cfg_.timeout + cfg_.drain_settle);
  sim_->run();
}

void TransactionalScanner::on_datagram(const netsim::Datagram& dgram) {
  record_response(dgram, sim_->now(), /*vantage=*/0, capture_, stats_);
}

std::vector<Transaction> TransactionalScanner::correlate() {
  return correlate_capture(probes_, capture_, cfg_.timeout, stats_,
                           cfg_.retry_extension());
}

}  // namespace odns::scan
