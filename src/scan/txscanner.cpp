#include "scan/txscanner.hpp"

namespace odns::scan {

TransactionalScanner::TransactionalScanner(netsim::Simulator& sim,
                                           netsim::HostId host, ScanConfig cfg)
    : sim_(&sim), host_(host), cfg_(std::move(cfg)),
      next_port_(cfg_.port_base) {
  sim_->bind_udp_wildcard(host_, this);
  sim_->set_icmp_handler(host_, [this](const netsim::Packet&) {
    ++stats_.icmp_errors;
  });
}

std::pair<std::uint16_t, std::uint16_t> TransactionalScanner::next_tuple() {
  const std::uint16_t port = next_port_;
  if (next_port_ >= cfg_.port_limit) {
    next_port_ = cfg_.port_base;
    ++next_txid_;  // port space wrapped: move to a fresh TXID plane
    if (next_txid_ == 0) next_txid_ = 1;
  } else {
    ++next_port_;
  }
  return {port, next_txid_};
}

void TransactionalScanner::send_probe(util::Ipv4 target) {
  const auto [port, txid] = next_tuple();
  const dnswire::Name qname =
      cfg_.qname_for_target ? cfg_.qname_for_target(target) : cfg_.qname;

  SentProbe probe{target, port, txid, sim_->now()};
  tuple_to_probe_[(std::uint32_t{port} << 16) | txid] =
      static_cast<std::uint32_t>(probes_.size());
  probes_.push_back(probe);
  ++stats_.probes_sent;
  last_send_at_ = sim_->now();

  netsim::SendOptions opts;
  opts.dst = target;
  opts.src_port = port;
  opts.dst_port = 53;
  opts.payload = dnswire::encode(dnswire::make_query(txid, qname, cfg_.qtype));
  sim_->send_udp(host_, std::move(opts));
}

std::vector<util::Ipv4> TransactionalScanner::partition_targets(
    const std::vector<util::Ipv4>& targets) const {
  // Group by virtual shard (stable within each group), then emit
  // round-robin across the non-empty groups. Keyed on the virtual
  // partition, the order — and with it every (port, txid) assignment —
  // is independent of the real shard count.
  std::vector<std::vector<util::Ipv4>> groups(
      netsim::Simulator::kVirtualShards);
  for (auto target : targets) {
    groups[sim_->virtual_shard_of(target)].push_back(target);
  }
  std::vector<util::Ipv4> ordered;
  ordered.reserve(targets.size());
  for (std::size_t round = 0; ordered.size() < targets.size(); ++round) {
    for (const auto& group : groups) {
      if (round < group.size()) ordered.push_back(group[round]);
    }
  }
  return ordered;
}

void TransactionalScanner::start(const std::vector<util::Ipv4>& targets) {
  const auto gap = util::Duration::nanos(
      static_cast<std::int64_t>(1e9 / static_cast<double>(
                                          cfg_.probes_per_second)));
  const std::vector<util::Ipv4>* paced = &targets;
  std::vector<util::Ipv4> interleaved;
  if (cfg_.shard_interleave) {
    interleaved = partition_targets(targets);
    paced = &interleaved;
  }
  util::Duration at = util::Duration::nanos(0);
  for (auto target : *paced) {
    // Shard-affine pacing: start() runs outside the event loop, so the
    // timers must land on the shard owning the scanner host.
    sim_->schedule_timer_on(host_, at, this, target.value());
    at = at + gap;
  }
  last_send_at_ = sim_->now() + at;
}

void TransactionalScanner::on_timer(std::uint64_t target_bits, std::uint64_t) {
  send_probe(util::Ipv4{static_cast<std::uint32_t>(target_bits)});
}

void TransactionalScanner::run_to_completion() {
  // Drain all traffic, then let the timeout window close.
  sim_->run();
  sim_->run_until(last_send_at_ + cfg_.timeout + cfg_.drain_settle);
  sim_->run();
}

void TransactionalScanner::on_datagram(const netsim::Datagram& dgram) {
  auto parsed = dnswire::decode(*dgram.payload);
  if (!parsed) {
    ++stats_.parse_errors;
    return;
  }
  const auto& msg = parsed.value();
  if (!msg.header.qr) return;  // stray queries aimed at the scanner
  ++stats_.responses_received;
  RawResponse rec;
  rec.src = dgram.src;
  rec.src_port = dgram.src_port;
  rec.dst_port = dgram.dst_port;
  rec.txid = msg.header.id;
  rec.at = sim_->now();
  rec.rcode = msg.header.rcode;
  rec.answer_addrs = msg.answer_addresses();
  capture_.push_back(std::move(rec));
}

std::vector<Transaction> TransactionalScanner::correlate() {
  std::vector<Transaction> out(probes_.size());
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    out[i].target = probes_[i].target;
    out[i].sent_at = probes_[i].sent_at;
  }
  for (const auto& rec : capture_) {
    const std::uint32_t key = (std::uint32_t{rec.dst_port} << 16) | rec.txid;
    auto it = tuple_to_probe_.find(key);
    if (it == tuple_to_probe_.end()) {
      ++stats_.responses_unmatched;
      continue;
    }
    auto& txn = out[it->second];
    const auto& probe = probes_[it->second];
    if (rec.at - probe.sent_at > cfg_.timeout) {
      ++stats_.responses_late;
      continue;
    }
    if (txn.answered) {
      ++stats_.responses_duplicate;
      continue;
    }
    txn.answered = true;
    txn.response_src = rec.src;
    txn.rtt = rec.at - probe.sent_at;
    txn.rcode = rec.rcode;
    txn.answer_addrs = rec.answer_addrs;
  }
  return out;
}

}  // namespace odns::scan
