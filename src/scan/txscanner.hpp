#pragma once
// The paper's measurement core (§4.1): an asynchronous Internet-wide
// scanner that records the complete DNS transaction — target address,
// client port, transaction ID — and correlates responses to requests
// afterwards. Unique (port, TXID) tuples make the mapping unambiguous
// even when many transparent forwarders relay to the same resolver
// (Fig. 7); IP-based matching cannot do that.
//
// The scanner is the single-vantage assembly of three shared pieces:
// the global probe plan (plan.hpp: ordering, tuples, pacing), the
// capture record hook and the merge-correlator (correlate.hpp). The
// multi-vantage assembly — one capture host per shard executing slices
// of the same plan — lives in vantage.hpp.

#include <cstdint>
#include <vector>

#include "netsim/sim.hpp"
#include "scan/plan.hpp"
#include "scan/types.hpp"

namespace odns::scan {

class TransactionalScanner : public netsim::App, public netsim::TimerTarget {
 public:
  TransactionalScanner(netsim::Simulator& sim, netsim::HostId host,
                       ScanConfig cfg);

  /// Schedules paced probes to every target. Call sim().run() (or
  /// run_to_completion) afterwards.
  void start(const std::vector<util::Ipv4>& targets);

  /// Runs the simulator until every probe is sent and the timeout
  /// window after the last probe has elapsed.
  void run_to_completion();

  /// Post-processing: joins the probe log with the capture log on
  /// (client port, TXID) and returns one transaction per probe. The
  /// first in-window response wins; later ones count as duplicates.
  /// Updates the unmatched/duplicate/late statistics.
  [[nodiscard]] std::vector<Transaction> correlate();

  [[nodiscard]] const std::vector<SentProbe>& probes() const { return probes_; }
  [[nodiscard]] const std::vector<RawResponse>& capture() const {
    return capture_;
  }
  [[nodiscard]] const ScannerStats& stats() const { return stats_; }
  [[nodiscard]] util::SimTime last_send_at() const { return last_send_at_; }

  void on_datagram(const netsim::Datagram& dgram) override;
  /// Probe-pacing timer: `probe_index` is the plan index to send.
  void on_timer(std::uint64_t probe_index, std::uint64_t) override;

 private:
  void send_planned(const PlannedProbe& probe);

  netsim::Simulator* sim_;
  netsim::HostId host_;
  ScanConfig cfg_;
  VantagePlan plan_;
  std::vector<SentProbe> probes_;
  std::vector<RawResponse> capture_;
  ScannerStats stats_;
  util::SimTime last_send_at_;
};

}  // namespace odns::scan
