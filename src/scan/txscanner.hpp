#pragma once
// The paper's measurement core (§4.1): an asynchronous Internet-wide
// scanner that records the complete DNS transaction — target address,
// client port, transaction ID — and correlates responses to requests
// afterwards. Unique (port, TXID) tuples make the mapping unambiguous
// even when many transparent forwarders relay to the same resolver
// (Fig. 7); IP-based matching cannot do that.

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dnswire/codec.hpp"
#include "dnswire/message.hpp"
#include "netsim/sim.hpp"

namespace odns::scan {

struct ScanConfig {
  dnswire::Name qname;                   // static scan name (response-based)
  dnswire::RrType qtype = dnswire::RrType::a;
  /// When set, overrides `qname` per target — the query-based method
  /// encodes the destination into the name (e.g. 20-0-0-1.q.zone).
  std::function<dnswire::Name(util::Ipv4)> qname_for_target;
  util::Duration timeout = util::Duration::seconds(20);  // paper: 20 s
  std::uint64_t probes_per_second = 20000;
  std::uint16_t port_base = 1024;
  std::uint16_t port_limit = 65535;
  /// Extra drain window run_to_completion() appends after the timeout
  /// so straggling in-flight events (late responses, ICMP) settle.
  util::Duration drain_settle = util::Duration::seconds(1);
  /// Reorders the target list round-robin over the simulator's
  /// *virtual* shards (Simulator::kVirtualShards) before pacing, so a
  /// sharded run keeps every shard busy in every pacing window. The
  /// virtual partition is shard-count-independent: the probe schedule
  /// (and therefore every result table) is identical for any shard
  /// count, interleaved or not — this only changes which targets are
  /// adjacent in time. Off by default to preserve the classic order.
  bool shard_interleave = false;
};

struct SentProbe {
  util::Ipv4 target;
  std::uint16_t src_port = 0;
  std::uint16_t txid = 0;
  util::SimTime sent_at;
};

/// One captured datagram — the scanner's dumpcap-equivalent record.
struct RawResponse {
  util::Ipv4 src;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t txid = 0;
  util::SimTime at;
  dnswire::Rcode rcode = dnswire::Rcode::noerror;
  std::vector<util::Ipv4> answer_addrs;
};

/// A correlated transaction: probe joined with its response (if any).
struct Transaction {
  util::Ipv4 target;
  util::SimTime sent_at;
  bool answered = false;
  util::Ipv4 response_src;
  util::Duration rtt;
  dnswire::Rcode rcode = dnswire::Rcode::noerror;
  std::vector<util::Ipv4> answer_addrs;  // A records, in answer order

  /// First A record: the dynamic resolver-mirror record.
  [[nodiscard]] std::optional<util::Ipv4> dynamic_a() const {
    if (answer_addrs.empty()) return std::nullopt;
    return answer_addrs.front();
  }
  /// Second A record: the static control record.
  [[nodiscard]] std::optional<util::Ipv4> control_a() const {
    if (answer_addrs.size() < 2) return std::nullopt;
    return answer_addrs[1];
  }
};

struct ScannerStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t responses_unmatched = 0;  // no (port, txid) probe
  std::uint64_t responses_duplicate = 0;  // probe already answered
  std::uint64_t responses_late = 0;       // after the timeout window
  std::uint64_t parse_errors = 0;
  std::uint64_t icmp_errors = 0;
};

class TransactionalScanner : public netsim::App, public netsim::TimerTarget {
 public:
  TransactionalScanner(netsim::Simulator& sim, netsim::HostId host,
                       ScanConfig cfg);

  /// Schedules paced probes to every target. Call sim().run() (or
  /// run_to_completion) afterwards.
  void start(const std::vector<util::Ipv4>& targets);

  /// Runs the simulator until every probe is sent and the timeout
  /// window after the last probe has elapsed.
  void run_to_completion();

  /// Post-processing: joins the probe log with the capture log on
  /// (client port, TXID) and returns one transaction per probe. The
  /// first in-window response wins; later ones count as duplicates.
  /// Updates the unmatched/duplicate/late statistics.
  [[nodiscard]] std::vector<Transaction> correlate();

  [[nodiscard]] const std::vector<SentProbe>& probes() const { return probes_; }
  [[nodiscard]] const std::vector<RawResponse>& capture() const {
    return capture_;
  }
  [[nodiscard]] const ScannerStats& stats() const { return stats_; }
  [[nodiscard]] util::SimTime last_send_at() const { return last_send_at_; }

  void on_datagram(const netsim::Datagram& dgram) override;
  /// Probe-pacing timer: `target_bits` is the probe target's address.
  void on_timer(std::uint64_t target_bits, std::uint64_t) override;

 private:
  void send_probe(util::Ipv4 target);
  std::pair<std::uint16_t, std::uint16_t> next_tuple();
  /// Round-robin interleave of `targets` over the simulator's virtual
  /// shards (see ScanConfig::shard_interleave).
  [[nodiscard]] std::vector<util::Ipv4> partition_targets(
      const std::vector<util::Ipv4>& targets) const;

  netsim::Simulator* sim_;
  netsim::HostId host_;
  ScanConfig cfg_;
  std::vector<SentProbe> probes_;
  std::vector<RawResponse> capture_;
  std::unordered_map<std::uint32_t, std::uint32_t> tuple_to_probe_;
  ScannerStats stats_;
  std::uint16_t next_port_;
  std::uint16_t next_txid_ = 1;
  util::SimTime last_send_at_;
};

}  // namespace odns::scan
