#pragma once
// Shared value types of the measurement core (§4.1): scan
// configuration, the probe log, the raw capture log, correlated
// transactions, and scanner statistics. Split out of txscanner.hpp so
// the plan builder (plan.hpp), the merge-correlator (correlate.hpp),
// the single-vantage scanner (txscanner.hpp), and the multi-vantage
// set (vantage.hpp) all speak the same records.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "dnswire/message.hpp"
#include "dnswire/name.hpp"
#include "util/ipv4.hpp"
#include "util/time.hpp"

namespace odns::scan {

struct ScanConfig {
  dnswire::Name qname;                   // static scan name (response-based)
  dnswire::RrType qtype = dnswire::RrType::a;
  /// When set, overrides `qname` per target — the query-based method
  /// encodes the destination into the name (e.g. 20-0-0-1.q.zone).
  std::function<dnswire::Name(util::Ipv4)> qname_for_target;
  util::Duration timeout = util::Duration::seconds(20);  // paper: 20 s
  std::uint64_t probes_per_second = 20000;
  std::uint16_t port_base = 1024;
  std::uint16_t port_limit = 65535;
  /// Extra drain window run_to_completion() appends after the timeout
  /// so straggling in-flight events (late responses, ICMP) settle.
  util::Duration drain_settle = util::Duration::seconds(1);
  /// Reorders the target list round-robin over the simulator's
  /// *virtual* shards (Simulator::kVirtualShards) before pacing, so a
  /// sharded run keeps every shard busy in every pacing window. The
  /// virtual partition is shard-count-independent: the probe schedule
  /// (and therefore every result table) is identical for any shard
  /// count, interleaved or not — this only changes which targets are
  /// adjacent in time. Off by default to preserve the classic order.
  bool shard_interleave = false;
  /// Per-probe retransmission (zmap -P style, unconditional): every
  /// probe is re-sent `max_retries` times at exponential-backoff
  /// offsets — backoff_base * (2^k - 1) after the original send — with
  /// the SAME (port, TXID) tuple. Retries never consult response
  /// state: a cancel-on-answer policy would depend on which vantage
  /// saw the answer first, which depends on the shard count, so the
  /// plan stays shard- and vantage-count-invariant and the correlators
  /// dedup by tuple instead (first in-window response wins, later ones
  /// count as duplicates).
  std::uint32_t max_retries = 0;
  util::Duration backoff_base = util::Duration::seconds(1);
  /// How far past the original timeout window an answer can still
  /// legitimately arrive: the last retry leaves backoff_base *
  /// (2^max_retries - 1) after the original, and its response gets the
  /// full timeout. Both correlators widen their match window by this
  /// much for *unanswered* probes (answered probes keep the original
  /// window — stragglers past it count late, see ScannerStats).
  [[nodiscard]] util::Duration retry_extension() const {
    return max_retries == 0
               ? util::Duration::nanos(0)
               : backoff_base *
                     static_cast<std::int64_t>((1ull << max_retries) - 1);
  }
};

struct SentProbe {
  util::Ipv4 target;
  std::uint16_t src_port = 0;
  std::uint16_t txid = 0;
  util::SimTime sent_at;
};

/// One captured datagram — the scanner's dumpcap-equivalent record.
struct RawResponse {
  util::Ipv4 src;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t txid = 0;
  util::SimTime at;
  dnswire::Rcode rcode = dnswire::Rcode::noerror;
  std::vector<util::Ipv4> answer_addrs;
  /// Index of the capture vantage that recorded this datagram (0 for
  /// the single-vantage scanner). An execution detail: which member
  /// captures a response depends on the shard count, so this field is
  /// excluded from every shard-count-invariant comparison.
  std::uint32_t vantage = 0;
};

/// A correlated transaction: probe joined with its response (if any).
struct Transaction {
  util::Ipv4 target;
  util::SimTime sent_at;
  bool answered = false;
  util::Ipv4 response_src;
  util::Duration rtt;
  dnswire::Rcode rcode = dnswire::Rcode::noerror;
  std::vector<util::Ipv4> answer_addrs;  // A records, in answer order
  /// Capture vantage that recorded the winning response (for
  /// unanswered probes: the vantage that sent the probe). Execution
  /// detail — see RawResponse::vantage.
  std::uint32_t vantage = 0;

  /// First A record: the dynamic resolver-mirror record.
  [[nodiscard]] std::optional<util::Ipv4> dynamic_a() const {
    if (answer_addrs.empty()) return std::nullopt;
    return answer_addrs.front();
  }
  /// Second A record: the static control record.
  [[nodiscard]] std::optional<util::Ipv4> control_a() const {
    if (answer_addrs.size() < 2) return std::nullopt;
    return answer_addrs[1];
  }
};

struct ScannerStats {
  std::uint64_t probes_sent = 0;
  /// Retransmissions on top of probes_sent (ScanConfig::max_retries).
  std::uint64_t probes_retried = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t responses_unmatched = 0;  // no (port, txid) probe
  std::uint64_t responses_duplicate = 0;  // probe already answered,
                                          // within the original window
  /// Stragglers: responses past the original timeout window — whether
  /// the probe was never answered, or a retry already concluded it and
  /// the original's answer limped in afterwards.
  std::uint64_t responses_late = 0;
  std::uint64_t parse_errors = 0;
  /// Captured payloads that failed to decode as DNS — the corrupted-
  /// wire subset of parse_errors (every undecodable capture counts in
  /// both; parse_errors remains the classic total).
  std::uint64_t responses_corrupt = 0;
  std::uint64_t icmp_errors = 0;

  /// Field-wise sum — aggregates per-vantage statistics.
  ScannerStats& operator+=(const ScannerStats& o) {
    probes_sent += o.probes_sent;
    probes_retried += o.probes_retried;
    responses_received += o.responses_received;
    responses_unmatched += o.responses_unmatched;
    responses_duplicate += o.responses_duplicate;
    responses_late += o.responses_late;
    parse_errors += o.parse_errors;
    responses_corrupt += o.responses_corrupt;
    icmp_errors += o.icmp_errors;
    return *this;
  }
};

}  // namespace odns::scan
