#include "scan/vantage.hpp"

#include <cassert>
#include <unordered_map>

#include "dnswire/codec.hpp"
#include "scan/correlate.hpp"
#include "scan/stream.hpp"

namespace odns::scan {

/// One capture host of a VantageSet: binds the wildcard socket and the
/// ICMP sink on its member host, paces its slice of the plan from the
/// member's own shard, and records raw responses into a shard-local
/// buffer (only ever touched by the shard that owns the member).
class CaptureVantage final : public netsim::App, public netsim::TimerTarget {
 public:
  CaptureVantage(VantageSet& owner, netsim::HostId host, std::uint32_t index)
      : owner_(&owner), host_(host), index_(index) {
    auto& sim = *owner_->sim_;
    sim.bind_udp_wildcard(host_, this);
    sim.set_icmp_handler(host_, [this](const netsim::Packet&) {
      ++stats_.icmp_errors;
    });
  }

  void on_timer(std::uint64_t probe_index, std::uint64_t) override {
    const PlannedProbe& probe = owner_->plan_.probes()[probe_index];
    auto& sim = *owner_->sim_;
    if (probe.attempt == 0) {
      ++stats_.probes_sent;
    } else {
      ++stats_.probes_retried;
    }
    const ScanConfig& cfg = owner_->cfg_;
    const dnswire::Name qname = cfg.qname_for_target
                                    ? cfg.qname_for_target(probe.target)
                                    : cfg.qname;
    netsim::SendOptions opts;
    opts.dst = probe.target;
    opts.src_port = probe.src_port;
    opts.dst_port = 53;
    // Every vantage sends as the shared capture address (the member
    // ASes are SAV-free), so probe content — and with it routing, loss
    // fates, and responder behaviour — is byte-identical to the
    // single-vantage scan.
    opts.spoof_src = owner_->capture_addr_;
    opts.payload =
        dnswire::encode(dnswire::make_query(probe.txid, qname, cfg.qtype));
    sim.send_udp(host_, std::move(opts));
  }

  void on_datagram(const netsim::Datagram& dgram) override {
    record_response(dgram, owner_->sim_->now(), index_, capture_, stats_);
  }

  [[nodiscard]] netsim::HostId host() const { return host_; }
  [[nodiscard]] const std::vector<RawResponse>& capture() const {
    return capture_;
  }
  /// Streaming flush access: the window merge consumes a time-ordered
  /// prefix and compacts it between simulator windows.
  [[nodiscard]] std::vector<RawResponse>& mutable_capture() {
    return capture_;
  }
  [[nodiscard]] const ScannerStats& stats() const { return stats_; }

 private:
  VantageSet* owner_;
  netsim::HostId host_;
  std::uint32_t index_;
  std::vector<RawResponse> capture_;
  ScannerStats stats_;
};

VantageSet::VantageSet(netsim::Simulator& sim, ScanConfig cfg,
                       util::Ipv4 capture_addr,
                       std::vector<netsim::HostId> member_hosts)
    : sim_(&sim), cfg_(std::move(cfg)), capture_addr_(capture_addr) {
  assert(!member_hosts.empty());
  sim_->set_vantage_capture(capture_addr_, member_hosts);
  members_.reserve(member_hosts.size());
  for (std::size_t j = 0; j < member_hosts.size(); ++j) {
    members_.push_back(std::make_unique<CaptureVantage>(
        *this, member_hosts[j], static_cast<std::uint32_t>(j)));
  }
}

VantageSet::~VantageSet() { sim_->clear_vantage_capture(); }

void VantageSet::start(const std::vector<util::Ipv4>& targets) {
  plan_ = VantagePlan::build(*sim_, cfg_, targets);
  const util::SimTime t0 = sim_->now();
  std::unordered_map<netsim::HostId, std::uint32_t> member_of_host;
  for (std::uint32_t j = 0; j < members_.size(); ++j) {
    member_of_host.emplace(members_[j]->host(), j);
  }
  const auto& net = sim_->net();
  probes_.reserve(probes_.size() + plan_.original_count());
  sender_.reserve(sender_.size() + plan_.original_count());
  for (std::size_t i = 0; i < plan_.probes().size(); ++i) {
    const PlannedProbe& p = plan_.probes()[i];
    // Retransmission entries (attempt > 0) reuse their original's
    // (port, txid) tuple and target, so they add sends but no probe
    // rows: the original row represents the transaction.
    if (p.attempt == 0) {
      probes_.push_back(SentProbe{p.target, p.src_port, p.txid, t0 + p.at});
    }
    // Shard-local pacing: the member pinned to the shard that owns the
    // probed target paces and injects the probe, so the probe leg and
    // its direct response never cross the shard fabric. Targets without
    // a unicast owner (anycast groups) pace from the shard-0 member.
    // Retries share the original's target, hence the same member.
    const netsim::HostId owner_host = net.unicast_owner(p.target);
    const std::uint32_t shard =
        owner_host == netsim::kInvalidHost ? 0 : sim_->shard_of(owner_host);
    const netsim::HostId member_host = sim_->vantage_member_for_shard(shard);
    const std::uint32_t member = member_of_host.at(member_host);
    if (p.attempt == 0) sender_.push_back(member);
    sim_->schedule_timer_on(member_host, p.at, members_[member].get(), i);
  }
  // Timers fire at exactly their planned instants, so the last send
  // lands at the last plan offset (start time for an empty plan) — the
  // value the classic scanner records after its sends complete.
  last_send_at_ = plan_.probes().empty() ? t0 : t0 + plan_.last_at();
}

void VantageSet::run_to_completion() {
  // Same drain protocol as the classic scanner: drain all traffic,
  // close the timeout window after the last planned send, settle.
  sim_->run();
  sim_->run_until(last_send_at_ + cfg_.timeout + cfg_.drain_settle);
  sim_->run();
}

std::vector<RawResponse> VantageSet::merged_capture() const {
  std::vector<const std::vector<RawResponse>*> buffers;
  buffers.reserve(members_.size());
  for (const auto& m : members_) buffers.push_back(&m->capture());
  return merge_captures(buffers);
}

const std::vector<RawResponse>& VantageSet::capture_of(
    std::size_t vantage) const {
  return members_[vantage]->capture();
}

ScannerStats VantageSet::stats() const {
  ScannerStats agg = correlate_stats_;
  for (const auto& m : members_) agg += m->stats();
  return agg;
}

std::vector<Transaction> VantageSet::correlate() {
  const std::vector<RawResponse> merged = merged_capture();
  std::vector<Transaction> out =
      correlate_capture(probes_, merged, cfg_.timeout, correlate_stats_,
                        cfg_.retry_extension());
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!out[i].answered) out[i].vantage = sender_[i];
  }
  return out;
}

void VantageSet::flush_capture(util::SimTime cutoff, StreamingCorrelator& corr,
                               StreamStats& st) {
  const std::size_t k = members_.size();
  // Windowed k-way merge: the concatenation of per-window merges equals
  // the full (time, vantage, seq) merge, because every record in one
  // flush precedes every record of the next (cutoffs are nondecreasing
  // and the buffers are time-ordered).
  std::vector<std::size_t> pos(k, 0);
  while (true) {
    std::size_t best = k;
    std::int64_t best_at = 0;
    for (std::size_t v = 0; v < k; ++v) {
      const auto& buf = members_[v]->capture();
      if (pos[v] >= buf.size()) continue;
      const std::int64_t at = buf[pos[v]].at.nanos();
      if (at > cutoff.nanos()) continue;  // time-ordered: buffer done
      if (best == k || at < best_at) {
        best = v;
        best_at = at;
      }
    }
    if (best == k) break;
    corr.consume(std::move(members_[best]->mutable_capture()[pos[best]]));
    ++pos[best];
  }
  for (std::size_t v = 0; v < k; ++v) {
    auto& buf = members_[v]->mutable_capture();
    st.peak_buffered_records = std::max(st.peak_buffered_records, buf.size());
    buf.erase(buf.begin(),
              buf.begin() + static_cast<std::ptrdiff_t>(pos[v]));
  }
}

VantageSet::StreamStats VantageSet::run_and_correlate_streaming(
    util::Duration flush_interval, const TxnSink& sink) {
  assert(flush_interval > util::Duration::nanos(0));
  StreamingCorrelator corr(probes_, cfg_.timeout, correlate_stats_,
                           cfg_.retry_extension());
  StreamStats st;
  st.dense_lookup = corr.dense_lookup();
  const TxnSink wrapped = [&](std::size_t i, Transaction&& txn) {
    // Same attribution rule as correlate(): unanswered probes belong
    // to the vantage that paced them.
    if (!txn.answered) txn.vantage = sender_[i];
    sink(i, std::move(txn));
  };
  // Same event set and order as run_to_completion(), partitioned into
  // flush windows: all traffic up to the post-timeout horizon, then a
  // final drain for stragglers (which are late by construction).
  const util::SimTime horizon =
      last_send_at_ + cfg_.timeout + cfg_.drain_settle;
  util::SimTime cursor = sim_->now();
  while (cursor < horizon) {
    cursor = std::min(cursor + flush_interval, horizon);
    sim_->run_until(cursor);
    flush_capture(cursor, corr, st);
    corr.advance(cursor, wrapped);
    st.peak_pending_probes =
        std::max(st.peak_pending_probes, corr.pending());
    ++st.flushes;
  }
  sim_->run();
  flush_capture(util::SimTime::far_future(), corr, st);
  corr.finish(wrapped);
  st.peak_pending_probes =
      std::max(st.peak_pending_probes, corr.peak_pending());
  return st;
}

}  // namespace odns::scan
