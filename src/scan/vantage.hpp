#pragma once
// Multi-vantage census measurement: a VantageSet of per-shard capture
// hosts executing slices of one global probe plan (plan.hpp), each
// owning a shard-local probe pacer, SentProbe slice, and RawResponse
// capture buffer, with correlation fed by the deterministic
// (time, vantage, seq) capture merge (correlate.hpp).
//
// The point (the paper's central methodological result): ODNS
// visibility is vantage-dependent, and a single-vantage scanner is
// also the structural scale bottleneck of the sharded simulator —
// every response funnels into one shard. The VantageSet splits both:
// probes for a target are paced and injected on the shard that owns
// the target, and responses are captured by the vantage member pinned
// to the shard that emitted them (Simulator::set_vantage_capture), so
// the capture plane needs no cross-shard traffic at all.
//
// Determinism contract: every probe spoofs the shared capture address
// and follows the plan's global (time, port, txid) schedule, and the
// vantage members' ASes mirror the scanner AS's attachment
// (honeypot::attach_capture_vantages) — so counters, the canonical
// packet trace, transactions, and the downstream classify::Census are
// byte-identical to the classic single-vantage single-threaded run,
// for any shard count and any vantage count. See "Multi-vantage
// census" in docs/architecture.md.

#include <memory>
#include <vector>

#include "netsim/sim.hpp"
#include "scan/plan.hpp"
#include "scan/types.hpp"

namespace odns::scan {

class CaptureVantage;
class StreamingCorrelator;

class VantageSet {
 public:
  /// Registers `member_hosts` as the simulator's capture set for
  /// `capture_addr` (each member's AS must be SAV-free and mirror the
  /// capture host's AS attachment — use
  /// honeypot::attach_capture_vantages) and binds a capture socket +
  /// ICMP sink on every member.
  VantageSet(netsim::Simulator& sim, ScanConfig cfg, util::Ipv4 capture_addr,
             std::vector<netsim::HostId> member_hosts);
  /// Unregisters the capture set.
  ~VantageSet();
  VantageSet(const VantageSet&) = delete;
  VantageSet& operator=(const VantageSet&) = delete;

  /// Builds the global plan and schedules every probe on the vantage
  /// member owning the probed target's shard. Call between runs (all
  /// shard clocks synchronized), then run_to_completion().
  void start(const std::vector<util::Ipv4>& targets);

  /// Runs the simulator until every probe is sent and the timeout
  /// window after the last probe has elapsed (same drain protocol as
  /// TransactionalScanner::run_to_completion).
  void run_to_completion();

  /// Merges the per-vantage capture buffers in (time, vantage, seq)
  /// order and joins them with the global probe table. Unanswered
  /// probes are attributed to the vantage that sent them.
  [[nodiscard]] std::vector<Transaction> correlate();

  /// Receives each finalized transaction during streaming correlation,
  /// in probe order (see StreamingCorrelator::Sink).
  using TxnSink = std::function<void(std::size_t, Transaction&&)>;

  /// Memory-bound evidence of one streaming run: high-water marks of
  /// the correlator window and the per-member capture buffers — both
  /// bounded by the flush interval and the timeout window, never by
  /// the run length (the scale test's audit surface).
  struct StreamStats {
    std::size_t flushes = 0;
    std::size_t peak_pending_probes = 0;
    std::size_t peak_buffered_records = 0;
    bool dense_lookup = false;
  };

  /// Streaming replacement for run_to_completion() + correlate(): runs
  /// the simulator in `flush_interval` windows and, at each window
  /// barrier, drains the members' capture prefixes (records at or
  /// before the watermark) into a StreamingCorrelator, emitting
  /// finalized transactions to `sink` as their timeout windows close.
  /// Executes the identical event order as the buffered protocol —
  /// transactions, statistics, counters, and traces are byte-identical
  /// — while holding only the in-flight window in memory.
  StreamStats run_and_correlate_streaming(util::Duration flush_interval,
                                          const TxnSink& sink);

  /// Global probe table, in plan order (invariant across shard and
  /// vantage counts).
  [[nodiscard]] const std::vector<SentProbe>& probes() const {
    return probes_;
  }
  /// The merged (time, vantage, seq) capture log.
  [[nodiscard]] std::vector<RawResponse> merged_capture() const;
  /// One member's local capture buffer.
  [[nodiscard]] const std::vector<RawResponse>& capture_of(
      std::size_t vantage) const;
  /// Aggregated statistics (field-wise sum over members + correlation).
  [[nodiscard]] ScannerStats stats() const;
  [[nodiscard]] std::size_t vantage_count() const { return members_.size(); }
  [[nodiscard]] const VantagePlan& plan() const { return plan_; }
  [[nodiscard]] util::SimTime last_send_at() const { return last_send_at_; }

 private:
  friend class CaptureVantage;

  /// Merges and consumes every member-capture record at or before
  /// `cutoff` (a time-ordered prefix of each buffer), then compacts
  /// the consumed prefixes.
  void flush_capture(util::SimTime cutoff, StreamingCorrelator& corr,
                     StreamStats& st);

  netsim::Simulator* sim_;
  ScanConfig cfg_;
  util::Ipv4 capture_addr_;
  VantagePlan plan_;
  std::vector<SentProbe> probes_;
  /// Member index that paces probe i (an execution detail: depends on
  /// the shard count through the target's owning shard).
  std::vector<std::uint32_t> sender_;
  std::vector<std::unique_ptr<CaptureVantage>> members_;
  ScannerStats correlate_stats_;
  util::SimTime last_send_at_;
};

}  // namespace odns::scan
