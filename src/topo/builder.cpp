// TopologyBuilder implementation: turns the country profiles in
// data.cpp into a wired world — ASes, prefixes, the DNS hierarchy,
// public-resolver anycast deployments, and the scaled ODNS population
// (recursive resolvers / recursive forwarders / transparent
// forwarders) — plus the ground truth the evaluation compares against.
// There is no builder.hpp: the public surface lives in deployment.hpp.

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "topo/deployment.hpp"

namespace odns::topo {

using netsim::Asn;
using netsim::HostId;
using util::Ipv4;
using util::Prefix;

namespace {

// ---------------------------------------------------------------------
// Address plan (documented in DESIGN.md):
//   20.0.0.0 .. 73.255.255.255   ODNS host population (/24 pool)
//   100.64.0.0/10                router interfaces (netsim-owned)
//   192.0.2.0/24                 scanner network (TEST-NET-1)
//   198.51.100.0/24              measurement zone infra (TEST-NET-2)
//   198.41.0.0/24                root name server
//   192.5.6.0/24                 .net TLD server
//   8.8.8.0/24 etc.              public resolver service + egress blocks
// ---------------------------------------------------------------------

constexpr Ipv4 kScannerAddr{192, 0, 2, 1};
constexpr Ipv4 kAuthAddr{198, 51, 100, 53};
constexpr Ipv4 kControlAddr{198, 51, 100, 200};
constexpr Ipv4 kWildcardAddr{198, 51, 100, 10};
constexpr Ipv4 kRootAddr{198, 41, 0, 4};
constexpr Ipv4 kTldAddr{192, 5, 6, 30};

enum class Region { na, sa, eu, asia, africa, oceania };
constexpr int kRegionCount = 6;

Region region_of(const std::string& code) {
  static const std::unordered_map<std::string, Region> map = {
      {"USA", Region::na},    {"CAN", Region::na},  {"PRI", Region::na},
      {"GTM", Region::na},    {"BLZ", Region::na},  {"TTO", Region::na},
      {"BRA", Region::sa},    {"ARG", Region::sa},  {"COL", Region::sa},
      {"ECU", Region::sa},    {"PRY", Region::sa},  {"URY", Region::sa},
      {"CHL", Region::sa},    {"POL", Region::eu},  {"FRA", Region::eu},
      {"BGR", Region::eu},    {"RUS", Region::eu},  {"ESP", Region::eu},
      {"ITA", Region::eu},    {"HUN", Region::eu},  {"UKR", Region::eu},
      {"LVA", Region::eu},    {"CZE", Region::eu},  {"GBR", Region::eu},
      {"SRB", Region::eu},    {"SVK", Region::eu},  {"HRV", Region::eu},
      {"NLD", Region::eu},    {"DEU", Region::eu},  {"IND", Region::asia},
      {"TUR", Region::asia},  {"IDN", Region::asia},{"BGD", Region::asia},
      {"CHN", Region::asia},  {"THA", Region::asia},{"PHL", Region::asia},
      {"MYS", Region::asia},  {"IRN", Region::asia},{"JPN", Region::asia},
      {"KOR", Region::asia},  {"TWN", Region::asia},{"VNM", Region::asia},
      {"HKG", Region::asia},  {"AFG", Region::asia},{"IRQ", Region::asia},
      {"PSE", Region::asia},  {"ISR", Region::asia},{"PAK", Region::asia},
      {"MUS", Region::africa},{"ZAF", Region::africa},
      {"COD", Region::africa},{"BDI", Region::africa},
      {"EGY", Region::africa},{"AUS", Region::oceania},
      {"NRU", Region::oceania},
  };
  if (auto it = map.find(code); it != map.end()) return it->second;
  // Tail countries rotate deterministically through the regions.
  std::size_t h = 0;
  for (char c : code) h = h * 31 + static_cast<std::size_t>(c);
  return static_cast<Region>(h % kRegionCount);
}

/// Allocates /24 blocks for the ODNS host population.
class PrefixPool {
 public:
  PrefixPool() : next_(Ipv4{20, 0, 0, 0}.value()) {}

  Prefix take24() {
    if (next_ >= Ipv4{74, 0, 0, 0}.value()) {
      throw std::runtime_error("host /24 pool exhausted");
    }
    Prefix p{Ipv4{next_}, 24};
    next_ += 256;
    return p;
  }

 private:
  std::uint32_t next_;
};

class AsnPool {
 public:
  explicit AsnPool(std::unordered_set<Asn> reserved)
      : reserved_(std::move(reserved)) {}

  Asn take16() { return take_from(next16_); }
  Asn take32() { return take_from(next32_); }  // RFC 4893 4-byte ASNs

 private:
  Asn take_from(Asn& counter) {
    while (reserved_.contains(counter)) ++counter;
    return counter++;
  }
  std::unordered_set<Asn> reserved_;
  Asn next16_ = 7000;
  Asn next32_ = 262144;
};

std::uint64_t scaled(std::uint64_t paper_count, double scale) {
  if (paper_count == 0) return 0;
  const auto n = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(paper_count) * scale));
  return std::max<std::uint64_t>(n, 1);
}

}  // namespace

// =====================================================================
// Deployment accessors
// =====================================================================

std::vector<Ipv4> Deployment::scan_targets() const {
  std::vector<Ipv4> out;
  out.reserve(ground_truth_.size());
  for (const auto& gt : ground_truth_) out.push_back(gt.addr);
  return out;
}

nodes::CacheStats Deployment::aggregate_resolver_cache_stats() const {
  nodes::CacheStats total;
  for (const auto& resolver : resolvers_) {
    const auto& s = resolver->cache().stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.negative_hits += s.negative_hits;
    total.inserts += s.inserts;
    total.evictions += s.evictions;
  }
  return total;
}

std::optional<ResolverProject> Deployment::project_of_service_addr(
    Ipv4 addr) const {
  auto it = service_addr_project_.find(addr);
  if (it == service_addr_project_.end()) return std::nullopt;
  return it->second;
}

std::optional<ResolverProject> Deployment::project_of_asn(Asn asn) const {
  auto it = asn_project_.find(asn);
  if (it == asn_project_.end()) return std::nullopt;
  return it->second;
}

std::string Deployment::country_of_asn(Asn asn) const {
  auto it = asn_country_.find(asn);
  return it == asn_country_.end() ? std::string{} : it->second;
}

AsType Deployment::type_of_asn(Asn asn) const {
  auto it = asn_type_.find(asn);
  return it == asn_type_.end() ? AsType::unknown : it->second;
}

// =====================================================================
// Builder
// =====================================================================

namespace {

struct BuildState {
  Deployment* d = nullptr;
  netsim::Simulator* sim = nullptr;
  util::Rng rng{0};
  PrefixPool prefixes;
  std::unique_ptr<AsnPool> asns;
  std::vector<std::vector<Asn>> region_hubs;  // per region
  std::vector<Asn> tier1;
  std::vector<Asn> national_transit;  // all countries' transit ASes
  std::unordered_map<std::uint8_t, std::vector<Asn>> pop_asns_by_project;
};

void register_as(BuildState& st, Asn asn, const std::string& country,
                 AsType type) {
  st.d->asn_country_[asn] = country;
  st.d->asn_type_[asn] = type;
}

/// Creates the tier-1 full mesh and regional hub layer.
void build_core(BuildState& st, const TopologyConfig& cfg) {
  auto& net = st.sim->net();
  for (int i = 0; i < cfg.tier1_count; ++i) {
    const Asn asn = st.asns->take16();
    netsim::AsConfig ac;
    ac.asn = asn;
    ac.country = "USA";  // nominal registration; tier-1s are global
    ac.internal_hops = 2;
    net.add_as(ac);
    register_as(st, asn, "USA", AsType::tier1);
    st.tier1.push_back(asn);
  }
  for (std::size_t i = 0; i < st.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < st.tier1.size(); ++j) {
      net.link(st.tier1[i], st.tier1[j]);
    }
  }
  st.region_hubs.assign(kRegionCount, {});
  for (int r = 0; r < kRegionCount; ++r) {
    for (int h = 0; h < cfg.hubs_per_region; ++h) {
      const Asn asn = st.asns->take16();
      netsim::AsConfig ac;
      ac.asn = asn;
      ac.country = "";  // hub; country attribution not meaningful
      ac.internal_hops = 2;
      net.add_as(ac);
      register_as(st, asn, "", AsType::transit);
      // Each hub multihomes to three tier-1s (deterministic spread).
      for (int t = 0; t < 3; ++t) {
        const Asn upstream =
            st.tier1[(static_cast<std::size_t>(r) * 3 + h + t) %
                     st.tier1.size()];
        net.link(upstream, asn);
        st.d->provider_customer_.emplace_back(upstream, asn);
      }
      st.region_hubs[r].push_back(asn);
    }
  }
}

/// Root, .net TLD, the measurement zone, and the scanner vantage.
void build_infra(BuildState& st, Deployment& d) {
  auto& net = st.sim->net();

  netsim::AsConfig infra;
  infra.asn = st.asns->take16();
  infra.country = "DEU";
  infra.internal_hops = 1;
  net.add_as(infra);
  register_as(st, infra.asn, "DEU", AsType::infrastructure);
  net.link(infra.asn, st.tier1[0]);
  net.link(infra.asn, st.tier1[1]);
  net.announce(infra.asn, Prefix{kRootAddr, 24});
  net.announce(infra.asn, Prefix{kTldAddr, 24});
  net.announce(infra.asn, Prefix{kAuthAddr, 24});

  // Scanner network: SAV disabled so spoof-based experiments (sensor 3,
  // amplification study) can originate here.
  netsim::AsConfig scanner;
  scanner.asn = st.asns->take16();
  scanner.country = "DEU";
  scanner.internal_hops = 1;
  scanner.source_address_validation = false;
  net.add_as(scanner);
  register_as(st, scanner.asn, "DEU", AsType::infrastructure);
  net.link(scanner.asn, st.tier1[0]);
  net.announce(scanner.asn, Prefix{kScannerAddr, 24});

  const HostId root_host = net.add_host(infra.asn, {kRootAddr});
  const HostId tld_host = net.add_host(infra.asn, {kTldAddr});
  const HostId auth_host = net.add_host(infra.asn, {kAuthAddr});
  d.scanner_host_ = net.add_host(scanner.asn, {kScannerAddr});
  d.scanner_addr_ = kScannerAddr;

  d.scan_name_ = *dnswire::Name::parse("scan.odns-study.net");
  d.control_addr_ = kControlAddr;
  d.auth_addr_ = kAuthAddr;
  d.root_addr_ = kRootAddr;

  const auto net_name = *dnswire::Name::parse("net");
  const auto zone_name = *dnswire::Name::parse("odns-study.net");
  const auto tld_ns = *dnswire::Name::parse("a.gtld-servers.net");
  const auto zone_ns = *dnswire::Name::parse("ns1.odns-study.net");

  auto root = std::make_unique<nodes::AuthServer>(*st.sim, root_host);
  auto& root_zone = root->add_zone(dnswire::Name{});  // "."
  root_zone.delegate(net_name, tld_ns, kTldAddr);
  root->start();
  d.auth_servers_.push_back(std::move(root));

  auto tld = std::make_unique<nodes::AuthServer>(*st.sim, tld_host);
  auto& tld_zone = tld->add_zone(net_name);
  tld_zone.delegate(zone_name, zone_ns, kAuthAddr);
  tld->start();
  d.auth_servers_.push_back(std::move(tld));

  auto auth = std::make_unique<nodes::AuthServer>(*st.sim, auth_host);
  auto& zone = auth->add_zone(zone_name);
  zone.add_a("ns1.odns-study.net", kAuthAddr);
  nodes::MirrorConfig mirror;
  mirror.name = d.scan_name_;
  mirror.control_addr = kControlAddr;
  mirror.ttl = 300;
  auth->set_mirror(mirror);
  auth->set_wildcard_a(kWildcardAddr);
  auth->start();
  d.auth_server_ = auth.get();
  d.auth_servers_.push_back(std::move(auth));
}

/// Anycast PoPs for the four public resolver projects.
void build_projects(BuildState& st, Deployment& d) {
  auto& net = st.sim->net();
  for (const auto& bp : project_blueprints()) {
    d.asn_project_[bp.asn] = bp.project;
    for (auto addr : bp.service_addrs) {
      d.service_addr_project_[addr] = bp.project;
    }
    std::uint32_t egress_next = bp.egress_prefix.base().value() + 256;
    for (int p = 0; p < bp.pops; ++p) {
      netsim::AsConfig ac;
      // Per-PoP ASNs so anycast picks the topologically nearest site;
      // all are registered to the project for attribution.
      ac.asn = p == 0 ? bp.asn : st.asns->take32();
      ac.country = "";
      ac.internal_hops = bp.pop_internal_hops;
      net.add_as(ac);
      d.asn_project_[ac.asn] = bp.project;
      register_as(st, ac.asn, "", AsType::content);
      // Attach to hubs spread across regions; peering breadth controls
      // how short paths to this project get (Fig. 6's lever).
      for (int b = 0; b < bp.peering_breadth; ++b) {
        const int region = (p + b) % kRegionCount;
        const auto& hubs = st.region_hubs[static_cast<std::size_t>(region)];
        const Asn hub =
            hubs[static_cast<std::size_t>(p / kRegionCount) % hubs.size()];
        net.link(hub, ac.asn);
        d.provider_customer_.emplace_back(hub, ac.asn);
      }
      net.announce(ac.asn, bp.service_prefix);
      st.pop_asns_by_project[static_cast<std::uint8_t>(bp.project)]
          .push_back(ac.asn);
      const Ipv4 egress{egress_next + 10};
      egress_next += 256;
      net.announce(ac.asn, Prefix{egress, 24});
      const HostId host = net.add_host(ac.asn, {egress});
      for (auto addr : bp.service_addrs) net.join_anycast(addr, host);

      nodes::ResolverConfig rc;
      rc.open = true;
      rc.root_hints = {kRootAddr};
      // service_addr stays unset: replies leave from the address the
      // query arrived on — the anycast service address.
      auto resolver = std::make_unique<nodes::RecursiveResolver>(
          *st.sim, host, rc, st.rng.uniform(1, 1u << 30));
      resolver->start();
      d.resolvers_.push_back(std::move(resolver));
      d.pops_.push_back(PublicResolverPop{bp.project, host, ac.asn, egress});
    }
  }
}

struct CountryContext {
  const CountryProfile* profile = nullptr;
  std::vector<Asn> transit;
  std::vector<Ipv4> national_resolver_addrs;
  std::vector<Asn> eyeball;
  std::unordered_map<Asn, Prefix> eyeball_current_prefix;
};

/// National transit ASes + national ("other") open resolvers.
void build_country_backbone(BuildState& st, Deployment& d,
                            CountryContext& ctx) {
  auto& net = st.sim->net();
  const auto& p = *ctx.profile;
  const auto region = region_of(p.code);
  const auto& hubs = st.region_hubs[static_cast<std::size_t>(region)];

  const int transit_count =
      1 + (p.odns_total > 20000 ? 1 : 0) + (p.odns_total > 100000 ? 1 : 0);
  for (int t = 0; t < transit_count; ++t) {
    // Table 4 publishes the incumbent's ASN for some countries; use it
    // for the first (largest) transit network.
    const Asn asn =
        (t == 0 && p.top_asn != 0) ? p.top_asn : st.asns->take16();
    netsim::AsConfig ac;
    ac.asn = asn;
    ac.country = p.code;
    ac.internal_hops = 2;
    net.add_as(ac);
    register_as(st, asn, p.code, AsType::transit);
    for (std::size_t h = 0; h < 2 && h < hubs.size(); ++h) {
      const Asn hub =
          hubs[(static_cast<std::size_t>(t) + h) % hubs.size()];
      net.link(hub, asn);
      d.provider_customer_.emplace_back(hub, asn);
    }
    ctx.transit.push_back(asn);
    st.national_transit.push_back(asn);
  }

  // National open resolvers: the "other" share of Fig. 5 resolves here.
  for (int r = 0; r < std::max(1, p.national_resolvers); ++r) {
    const Asn asn = ctx.transit[static_cast<std::size_t>(r) %
                                ctx.transit.size()];
    const Prefix block = st.prefixes.take24();
    net.announce(asn, block);
    const Ipv4 addr{block.base().value() + 53};
    const HostId host = net.add_host(asn, {addr});
    nodes::ResolverConfig rc;
    rc.open = true;
    rc.root_hints = {kRootAddr};
    auto resolver = std::make_unique<nodes::RecursiveResolver>(
        *st.sim, host, rc, st.rng.uniform(1, 1u << 30));
    resolver->start();
    d.resolvers_.push_back(std::move(resolver));
    ctx.national_resolver_addrs.push_back(addr);
  }
}

/// Eyeball access networks, Zipf-weighted by rank.
void build_eyeballs(BuildState& st, Deployment& d, CountryContext& ctx,
                    const TopologyConfig& cfg) {
  auto& net = st.sim->net();
  const auto& p = *ctx.profile;
  const double scale = cfg.scale;
  // Sub-linear AS scaling: host counts shrink with `scale` but the AS
  // structure shrinks slower, preserving per-AS population shapes. The
  // multiplier widens the AS layer independently of the host count
  // (Internet-scale worlds want O(10^4) ASes).
  const int as_count = std::max(
      1, static_cast<int>(std::lround(p.as_count * std::pow(scale, 0.4) *
                                      cfg.eyeball_as_multiplier)));
  for (int i = 0; i < as_count; ++i) {
    // 4-byte ASNs dominate recent eyeball deployments in emerging
    // markets (§6: 65 of the top-100 TF ASes are 32-bit).
    const bool wide = st.rng.chance(p.emerging ? 0.70 : 0.20);
    const Asn asn = wide ? st.asns->take32() : st.asns->take16();
    netsim::AsConfig ac;
    ac.asn = asn;
    ac.country = p.code;
    ac.internal_hops = st.rng.uniform_int(1, 3);
    // Transparent forwarders can only spoof from SAV-free networks.
    ac.source_address_validation =
        p.tf_share > 0 ? false : st.rng.chance(0.5);
    net.add_as(ac);
    register_as(st, asn, p.code, AsType::eyeball_isp);
    // Dual-homed where possible: most access networks buy transit from
    // two upstreams, which also smooths per-country path variance.
    const std::size_t homes = std::min<std::size_t>(2, ctx.transit.size());
    for (std::size_t h = 0; h < homes; ++h) {
      const Asn provider = ctx.transit[(static_cast<std::size_t>(i) + h) %
                                       ctx.transit.size()];
      net.link(provider, asn);
      d.provider_customer_.emplace_back(provider, asn);
    }
    ctx.eyeball.push_back(asn);
  }
}

/// Hands out addresses inside an eyeball AS, packing /24s sequentially.
Ipv4 next_addr_in(BuildState& st, CountryContext& ctx, Asn asn, int& used,
                  int per_prefix) {
  auto it = ctx.eyeball_current_prefix.find(asn);
  if (it == ctx.eyeball_current_prefix.end() || used >= per_prefix) {
    const Prefix block = st.prefixes.take24();
    st.sim->net().announce(asn, block);
    it = ctx.eyeball_current_prefix.insert_or_assign(asn, block).first;
    used = 0;
  }
  const Ipv4 addr{it->second.base().value() + 1 +
                  static_cast<std::uint32_t>(used)};
  ++used;
  return addr;
}

ResolverProject pick_project(BuildState& st, const ResolverMix& mix) {
  const double weights[] = {mix.google, mix.cloudflare, mix.quad9,
                            mix.opendns, mix.other};
  return static_cast<ResolverProject>(st.rng.weighted(weights));
}

Ipv4 service_addr_of(BuildState& st, ResolverProject project) {
  for (const auto& bp : project_blueprints()) {
    if (bp.project == project) {
      return bp.service_addrs[st.rng.uniform(0, bp.service_addrs.size() - 1)];
    }
  }
  throw std::logic_error("no blueprint for project");
}

/// Vendor assignment with a per-country MikroTik quota: whole-/24
/// middleboxes skew MikroTik (§6: half the identified MikroTiks fully
/// cover their /24; overall ~23% of fingerprinted TFs are MikroTik).
/// Quota accounting keeps the share stable at any topology scale.
class VendorQuota {
 public:
  DeviceVendor pick(BuildState& st, PrefixStyle style, std::uint64_t units) {
    const double rate = style == PrefixStyle::full ? 0.36 : 0.17;
    target_units_ += rate * static_cast<double>(units);
    if (static_cast<double>(mikrotik_units_) +
            0.5 * static_cast<double>(units) <=
        target_units_) {
      mikrotik_units_ += units;
      return DeviceVendor::mikrotik;
    }
    const double rest[] = {0.25, 0.30, 0.25, 0.20};
    switch (st.rng.weighted(rest)) {
      case 0: return DeviceVendor::zyxel;
      case 1: return DeviceVendor::huawei;
      case 2: return DeviceVendor::tplink;
      default: return DeviceVendor::dlink;
    }
  }

 private:
  double target_units_ = 0.0;
  std::uint64_t mikrotik_units_ = 0;
};

}  // namespace

std::unique_ptr<Deployment> TopologyBuilder::build(const TopologyConfig& cfg) {
  auto d = std::make_unique<Deployment>();
  d->cfg_ = cfg;
  netsim::SimConfig sim_cfg = cfg.sim;
  sim_cfg.seed = cfg.seed ^ 0xD1B54A32D192ED03ull;
  d->sim_ = std::make_unique<netsim::Simulator>(sim_cfg);
  d->sim_->net().set_flat_addr_plane_enabled(cfg.flat_addr_plane);

  BuildState st;
  st.d = d.get();
  st.sim = d->sim_.get();
  st.rng = util::Rng{cfg.seed};

  // Reserve every ASN that appears in embedded data so pool allocation
  // never collides with them.
  std::unordered_set<Asn> reserved;
  for (const auto& bp : project_blueprints()) reserved.insert(bp.asn);
  for (const auto& p : country_profiles()) {
    if (p.top_asn != 0) reserved.insert(p.top_asn);
  }
  st.asns = std::make_unique<AsnPool>(std::move(reserved));

  build_core(st, cfg);
  build_infra(st, *d);
  build_projects(st, *d);

  std::vector<CountryProfile> profiles = country_profiles();
  if (!cfg.include_tail_countries) {
    std::erase_if(profiles,
                  [](const CountryProfile& p) { return p.code[0] == 'X'; });
  } else {
    for (const auto& p : no_tf_country_profiles()) profiles.push_back(p);
  }
  if (cfg.max_countries > 0 && profiles.size() > cfg.max_countries) {
    profiles.resize(cfg.max_countries);
  }
  d->profiles_used_ = profiles;

  // Global /24-population-style quota (Fig. 8 targets are global
  // fractions): tracked across countries because a "full" batch needs
  // 254 forwarders at once, which small countries cannot realize —
  // large countries absorb the accumulated deficit instead.
  double style_target_units[3] = {0.0, 0.0, 0.0};
  std::uint64_t style_placed_units[3] = {0, 0, 0};

  for (const auto& profile : profiles) {
    CountryContext ctx;
    ctx.profile = &profile;
    build_country_backbone(st, *d, ctx);
    build_eyeballs(st, *d, ctx, cfg);

    const std::uint64_t total = scaled(profile.odns_total, cfg.scale);
    std::uint64_t tf_count =
        profile.tf_share > 0.0
            ? std::max<std::uint64_t>(
                  1, static_cast<std::uint64_t>(std::llround(
                         static_cast<double>(profile.odns_total) *
                         profile.tf_share * cfg.scale)))
            : 0;
    const std::uint64_t rr_count = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(total) * profile.rr_share));
    const std::uint64_t rf_count =
        total > tf_count + rr_count ? total - tf_count - rr_count : 0;
    // Recursive forwarders Shadowserver sees but our strict two-record
    // validation rejects (manipulating middleboxes), derived from the
    // published Table-5 gap.
    const std::uint64_t shadow = scaled(profile.shadowserver_odns, cfg.scale);
    const std::uint64_t rf_manip =
        shadow > rr_count + rf_count ? shadow - rr_count - rf_count : 0;

    auto& net = st.sim->net();

    // Zipf weights over the country's eyeball ASes.
    std::vector<double> zipf(ctx.eyeball.size());
    for (std::size_t i = 0; i < zipf.size(); ++i) {
      zipf[i] = 1.0 / std::pow(static_cast<double>(i + 1), 0.85);
    }

    // ---- recursive resolvers (open, unicast) ------------------------
    std::unordered_map<Asn, int> used_rr;
    for (std::uint64_t i = 0; i < rr_count; ++i) {
      const Asn asn = ctx.eyeball[st.rng.weighted(zipf)];
      int& used = used_rr[asn];
      // Separate /24s from forwarders: pack 200 per block.
      static constexpr int kPerPrefix = 200;
      CountryContext& c = ctx;
      const Ipv4 addr = next_addr_in(st, c, asn, used, kPerPrefix);
      const HostId host = net.add_host(asn, {addr});
      nodes::ResolverConfig rc;
      rc.open = true;
      rc.root_hints = {kRootAddr};
      auto resolver = std::make_unique<nodes::RecursiveResolver>(
          *st.sim, host, rc, st.rng.uniform(1, 1u << 30));
      resolver->start();
      d->resolvers_.push_back(std::move(resolver));
      GroundTruth gt;
      gt.addr = addr;
      gt.kind = OdnsKind::recursive_resolver;
      gt.country = profile.code;
      gt.asn = asn;
      gt.host = host;
      d->ground_truth_.push_back(gt);
    }
    ctx.eyeball_current_prefix.clear();

    // ---- recursive forwarders ---------------------------------------
    // Per-AS restricted resolvers are created lazily for the ISP-bound
    // half of the forwarders.
    std::unordered_map<Asn, Ipv4> isp_resolver;
    auto isp_resolver_for = [&](Asn asn) -> Ipv4 {
      if (auto it = isp_resolver.find(asn); it != isp_resolver.end()) {
        return it->second;
      }
      const Prefix block = st.prefixes.take24();
      net.announce(asn, block);
      const Ipv4 addr{block.base().value() + 53};
      const HostId host = net.add_host(asn, {addr});
      nodes::ResolverConfig rc;
      rc.open = false;
      rc.root_hints = {kRootAddr};
      // Restricted ACL modeling shortcut: admit the whole ODNS host
      // pool (20.0.0.0–73.255.255.255) so ISP customers placed in
      // later-allocated blocks stay admitted, while external sources —
      // notably the scanner at 192.0.2.1, including when spoofed by a
      // transparent forwarder — are REFUSED. That is the behaviour the
      // paper relies on: TFs relaying to restricted resolvers never
      // appear as ODNS components.
      rc.allowed = {Prefix{Ipv4{0, 0, 0, 0}, 1}};
      auto resolver = std::make_unique<nodes::RecursiveResolver>(
          *st.sim, host, rc, st.rng.uniform(1, 1u << 30));
      resolver->start();
      d->resolvers_.push_back(std::move(resolver));
      isp_resolver.emplace(asn, addr);
      return addr;
    };

    std::unordered_map<Asn, int> used_rf;
    const std::uint64_t rf_total = rf_count + rf_manip;
    for (std::uint64_t i = 0; i < rf_total; ++i) {
      const Asn asn = ctx.eyeball[st.rng.weighted(zipf)];
      int& used = used_rf[asn];
      const Ipv4 addr = next_addr_in(st, ctx, asn, used, 200);
      const HostId host = net.add_host(asn, {addr});
      nodes::ForwarderConfig fc;
      const bool to_isp = st.rng.chance(0.5);
      ResolverProject project;
      if (to_isp) {
        fc.upstream = isp_resolver_for(asn);
        project = ResolverProject::other;
      } else {
        project = pick_project(st, profile.mix);
        fc.upstream = project == ResolverProject::other
                          ? st.rng.pick(ctx.national_resolver_addrs)
                          : service_addr_of(st, project);
      }
      const bool manipulated = i >= rf_count;
      if (manipulated) {
        if (st.rng.chance(0.5)) {
          fc.rewrite_answers = true;
          fc.rewrite_target = Ipv4{203, 0, 113, 99};
        } else {
          fc.strip_second_record = true;
        }
      }
      if (d->cfg_.bulk_population) {
        // Bulk plane: the forwarder becomes a row in its virtual
        // shard's bank (shard-safe for every shard count, since a
        // virtual shard never splits across execution shards).
        if (d->forwarder_banks_.empty()) {
          d->forwarder_banks_.resize(netsim::Simulator::kVirtualShards);
        }
        auto& bank = d->forwarder_banks_[st.sim->virtual_shard_of_as(asn)];
        if (!bank) bank = std::make_unique<nodes::ForwarderBank>(*st.sim);
        nodes::ForwarderBank::MemberConfig mc;
        mc.addr = addr;
        mc.upstream = fc.upstream;
        mc.rewrite_target = fc.rewrite_target;
        mc.rewrite_answers = fc.rewrite_answers;
        mc.strip_second_record = fc.strip_second_record;
        bank->add_member(host, mc);
      } else {
        auto fwd =
            std::make_unique<nodes::RecursiveForwarder>(*st.sim, host, fc);
        fwd->start();
        d->forwarders_.push_back(std::move(fwd));
      }
      GroundTruth gt;
      gt.addr = addr;
      gt.kind = OdnsKind::recursive_forwarder;
      gt.country = profile.code;
      gt.asn = asn;
      gt.host = host;
      gt.upstream = fc.upstream;
      gt.project = project;
      gt.chained = manipulated;  // reused flag: fails strict validation
      d->ground_truth_.push_back(gt);
    }
    ctx.eyeball_current_prefix.clear();

    // ---- transparent forwarders -------------------------------------
    // Chain targets for indirect consolidation: local recursive
    // forwarders (same AS) relaying to a big-4 project.
    std::unordered_map<Asn, Ipv4> chain_rf;
    auto chain_rf_for = [&](Asn asn) -> Ipv4 {
      if (auto it = chain_rf.find(asn); it != chain_rf.end()) {
        return it->second;
      }
      const Prefix block = st.prefixes.take24();
      net.announce(asn, block);
      const Ipv4 addr{block.base().value() + 10};
      const HostId host = net.add_host(asn, {addr});
      nodes::ForwarderConfig fc;
      fc.upstream = service_addr_of(
          st, st.rng.chance(0.7) ? ResolverProject::google
                                 : ResolverProject::cloudflare);
      auto fwd =
          std::make_unique<nodes::RecursiveForwarder>(*st.sim, host, fc);
      fwd->start();
      d->forwarders_.push_back(std::move(fwd));
      chain_rf.emplace(asn, addr);
      return addr;
    };

    // Deterministic quota sampling for batch attributes: because one
    // middlebox (one /24 batch) shares a single resolver and style, iid
    // draws would give small countries wildly off-target shares. Quota
    // assignment keeps realized shares tracking the Fig. 4/5/8 profile
    // marginals at any scale while per-batch randomness (sizes, AS
    // choice, addresses) stays.
    std::uint64_t placed = 0;
    const double style_rate[3] = {profile.style_sparse,
                                  profile.style_medium, profile.style_full};
    const double project_target[5] = {
        profile.mix.google, profile.mix.cloudflare, profile.mix.quad9,
        profile.mix.opendns, profile.mix.other};
    std::uint64_t project_placed[5] = {0, 0, 0, 0, 0};
    std::uint64_t other_placed = 0;
    std::uint64_t indirect_placed = 0;
    VendorQuota vendors;

    while (placed < tf_count) {
      const Asn asn = ctx.eyeball[st.rng.weighted(zipf)];
      const std::uint64_t remaining = tf_count - placed;
      // Style with the largest deficit against its target share. A
      // style is only eligible if the remaining population can actually
      // realize it (a "full /24" of 100 forwarders would corrupt the
      // Fig. 8 density distribution).
      int style_idx = 0;
      double best_deficit = -1e18;
      for (int s = 0; s < 3; ++s) {
        if (s == 2 && remaining < 254) continue;
        if (s == 1 && remaining < 26) continue;
        const double deficit =
            style_target_units[s] + style_rate[s] -
            static_cast<double>(style_placed_units[s]);
        if (deficit > best_deficit) {
          best_deficit = deficit;
          style_idx = s;
        }
      }
      const auto style = static_cast<PrefixStyle>(style_idx);
      std::uint64_t batch = 0;
      switch (style) {
        case PrefixStyle::sparse:
          batch = st.rng.uniform(1, 25);
          break;
        case PrefixStyle::medium:
          batch = st.rng.uniform(26, 180);
          break;
        case PrefixStyle::full:
          batch = 254;
          break;
      }
      batch = std::min(batch, remaining);
      style_placed_units[static_cast<std::size_t>(style_idx)] += batch;
      for (int s = 0; s < 3; ++s) {
        style_target_units[s] += style_rate[s] * static_cast<double>(batch);
      }
      // Whole-prefix and partial-prefix deployments are one middlebox
      // owning many addresses; sparse deployments are per-customer CPE.
      const Prefix block = st.prefixes.take24();
      net.announce(asn, block);

      // Upstream decisions happen per *device*: each sparse CPE picks
      // its own resolver; a middlebox picks one for its whole block.
      std::uint64_t decided = placed;
      auto pick_project_quota = [&](std::uint64_t units) {
        int project_idx = 4;
        double best = -1e18;
        for (int p = 0; p < 5; ++p) {
          const double deficit =
              project_target[p] * static_cast<double>(decided + units) -
              static_cast<double>(project_placed[p]);
          if (deficit > best) {
            best = deficit;
            project_idx = p;
          }
        }
        project_placed[static_cast<std::size_t>(project_idx)] += units;
        decided += units;
        return static_cast<ResolverProject>(project_idx);
      };
      // Quota with probabilistic rounding on the indirect share within
      // "other": unbiased at every scale and granularity.
      auto pick_chained_quota = [&](std::uint64_t units) {
        const double indirect_deficit =
            profile.other_indirect *
                static_cast<double>(other_placed + units) -
            static_cast<double>(indirect_placed);
        other_placed += units;
        const double p_chain = std::clamp(
            indirect_deficit / static_cast<double>(units), 0.0, 1.0);
        if (st.rng.chance(p_chain)) {
          indirect_placed += units;
          return true;
        }
        return false;
      };
      auto upstream_for = [&](std::uint64_t units, ResolverProject project,
                              bool& chained) {
        chained = false;
        if (project != ResolverProject::other) {
          return service_addr_of(st, project);
        }
        if (pick_chained_quota(units)) {
          chained = true;
          return chain_rf_for(asn);
        }
        return st.rng.pick(ctx.national_resolver_addrs);
      };

      if (style == PrefixStyle::sparse) {
        // Per-customer CPE: each address is its own device with its
        // own upstream choice.
        const std::uint64_t start = st.rng.uniform(0, 253 - batch);
        for (std::uint64_t k = 0; k < batch; ++k) {
          const auto project = pick_project_quota(1);
          bool chained = false;
          const Ipv4 target = upstream_for(1, project, chained);
          const Ipv4 addr{block.base().value() + 1 +
                          static_cast<std::uint32_t>(start + k)};
          const HostId host = net.add_host(asn, {addr});
          d->transparent_.emplace_back(*st.sim, host, target);
          d->transparent_.back().install();
          GroundTruth gt;
          gt.addr = addr;
          gt.kind = OdnsKind::transparent_forwarder;
          gt.country = profile.code;
          gt.asn = asn;
          gt.host = host;
          gt.upstream = target;
          gt.project = project;
          gt.chained = chained;
          gt.vendor = vendors.pick(st, style, 1);
          gt.fingerprint_visible = st.rng.chance(0.13);
          gt.prefix_style = style;
          d->ground_truth_.push_back(gt);
        }
      } else {
        const auto project = pick_project_quota(batch);
        bool chained = false;
        const Ipv4 target = upstream_for(batch, project, chained);
        // One middlebox answering for the block: one vendor for the
        // whole device; banner-scanner visibility is per address
        // (search-engine coverage is an IP-level property).
        const DeviceVendor vendor = vendors.pick(st, style, batch);
        std::vector<Ipv4> addrs;
        addrs.reserve(batch);
        for (std::uint64_t k = 0; k < batch; ++k) {
          addrs.push_back(Ipv4{block.base().value() + 1 +
                               static_cast<std::uint32_t>(k)});
        }
        const HostId host = net.add_host(asn, addrs);
        d->transparent_.emplace_back(*st.sim, host, target);
        d->transparent_.back().install();
        for (auto addr : addrs) {
          GroundTruth gt;
          gt.addr = addr;
          gt.kind = OdnsKind::transparent_forwarder;
          gt.country = profile.code;
          gt.asn = asn;
          gt.host = host;
          gt.upstream = target;
          gt.project = project;
          gt.chained = chained;
          gt.vendor = vendor;
          gt.fingerprint_visible = st.rng.chance(0.13);
          gt.prefix_style = style;
          d->ground_truth_.push_back(gt);
        }
      }
      placed += batch;
    }
  }

  for (auto& bank : d->forwarder_banks_) {
    if (bank) bank->seal();
  }

  // Merge the bulk address tail into the frozen lookup table now, off
  // the packet path (and surface duplicate-address bugs at build time).
  d->sim_->net().freeze_addr_plane();

  // IXP peering post-pass: each resolver project peers directly with a
  // project-specific fraction of national transit networks. Denser
  // edge presence shortens forwarder→resolver paths (Fig. 6 ordering:
  // Cloudflare < Google < OpenDNS).
  for (const auto& bp : project_blueprints()) {
    const auto& pops =
        st.pop_asns_by_project[static_cast<std::uint8_t>(bp.project)];
    if (pops.empty() || bp.national_peering <= 0.0) continue;
    std::size_t next_pop = 0;
    for (const Asn transit : st.national_transit) {
      if (!st.rng.chance(bp.national_peering)) continue;
      d->sim_->net().link(transit, pops[next_pop % pops.size()]);
      ++next_pop;
    }
  }

  return d;
}

}  // namespace odns::topo
