// The embedded dataset: per-country profiles that seed the synthetic
// world. This file is data, not logic — edit it only to track the
// paper's published numbers (sources below).

#include "topo/model.hpp"

// Country profiles seeded from the paper's published numbers:
//  * ODNS totals and Shadowserver totals for the top-20: Table 5.
//  * Transparent-forwarder ordering and AS counts: Figure 4 labels.
//  * tf_share anchors: §4.2 text (BRA/IND > 80%, CHN 2%, IRN ~0.5%),
//    Table 5 deltas, and Figure 4 bar readings.
//  * Resolver mixes: Figure 5 plus Table 4 "other" counts.
//  * other_indirect: Table 4 "Indirect Consolidation" column.
// Where the paper publishes no number (ranks 21-50 totals), values are
// chosen to respect the published ordering and global marginals
// (2.125M ODNS, ~26% transparent, top-10 countries ≈ 90% of TFs).

namespace odns::topo {

std::string to_string(ResolverProject p) {
  switch (p) {
    case ResolverProject::google: return "Google";
    case ResolverProject::cloudflare: return "Cloudflare";
    case ResolverProject::quad9: return "Quad9";
    case ResolverProject::opendns: return "OpenDNS";
    case ResolverProject::other: return "Other";
  }
  return "?";
}

std::string to_string(OdnsKind k) {
  switch (k) {
    case OdnsKind::recursive_resolver: return "Recursive Resolver";
    case OdnsKind::recursive_forwarder: return "Recursive Forwarder";
    case OdnsKind::transparent_forwarder: return "Transparent Forwarder";
  }
  return "?";
}

std::string to_string(AsType t) {
  switch (t) {
    case AsType::tier1: return "Tier-1";
    case AsType::transit: return "NSP/Transit";
    case AsType::eyeball_isp: return "Cable/DSL/ISP";
    case AsType::hosting: return "Hosting";
    case AsType::content: return "Content";
    case AsType::education: return "Education";
    case AsType::enterprise: return "Enterprise";
    case AsType::infrastructure: return "Infrastructure";
    case AsType::unknown: return "Unclassified";
  }
  return "?";
}

std::string to_string(DeviceVendor v) {
  switch (v) {
    case DeviceVendor::mikrotik: return "MikroTik";
    case DeviceVendor::zyxel: return "Zyxel";
    case DeviceVendor::huawei: return "Huawei";
    case DeviceVendor::tplink: return "TP-Link";
    case DeviceVendor::dlink: return "D-Link";
    case DeviceVendor::unknown: return "unknown";
  }
  return "?";
}

namespace {

CountryProfile make(const char* code, const char* name, bool emerging,
                    std::uint64_t odns, std::uint64_t shadow, double tf,
                    double rr, int ases, std::uint32_t top_asn,
                    ResolverMix mix, double indirect, int nationals) {
  CountryProfile p;
  p.code = code;
  p.name = name;
  p.emerging = emerging;
  p.odns_total = odns;
  p.shadowserver_odns = shadow;
  p.tf_share = tf;
  p.rr_share = rr;
  p.as_count = ases;
  p.top_asn = top_asn;
  p.mix = mix;
  p.other_indirect = indirect;
  p.national_resolvers = nationals;
  return p;
}

std::vector<CountryProfile> build_profiles() {
  std::vector<CountryProfile> v;
  // Resolver mixes: {google, cloudflare, quad9, opendns, other}.
  // ---- Top-10 by transparent forwarders (≈90% of all TFs) ----------
  v.push_back(make("BRA", "Brazil", true, 297828, 49616, 0.806, 0.010, 1236,
                   262462, {0.55, 0.35, 0.04, 0.04, 0.02}, 0.48, 5));
  v.push_back(make("IND", "India", true, 102910, 33510, 0.805, 0.008, 298,
                   3356, {0.90, 0.03, 0.004, 0.003, 0.063}, 0.48, 4));
  v.push_back(make("TUR", "Turkey", true, 76168, 19298, 0.747, 0.006, 35,
                   9121, {0.05, 0.02, 0.0, 0.0, 0.93}, 0.003, 1));
  v.push_back(make("POL", "Poland", true, 43431, 29175, 0.575, 0.012, 121,
                   5617, {0.008, 0.002, 0.0, 0.0, 0.99}, 0.014, 4));
  v.push_back(make("ARG", "Argentina", true, 43648, 16974, 0.55, 0.010, 110,
                   0, {0.60, 0.28, 0.02, 0.02, 0.08}, 0.10, 3));
  v.push_back(make("USA", "United States", false, 144568, 137619, 0.152,
                   0.050, 438, 209, {0.20, 0.10, 0.02, 0.02, 0.66}, 0.18, 8));
  v.push_back(make("IDN", "Indonesia", true, 59972, 56319, 0.317, 0.012, 325,
                   4622, {0.58, 0.11, 0.02, 0.02, 0.27}, 0.27, 4));
  v.push_back(make("BGD", "Bangladesh", true, 40917, 22940, 0.415, 0.008, 118,
                   0, {0.55, 0.35, 0.01, 0.01, 0.08}, 0.12, 3));
  v.push_back(make("CHN", "China", true, 632428, 717706, 0.0198, 0.015, 68,
                   4812, {0.08, 0.03, 0.0, 0.01, 0.88}, 0.009, 6));
  v.push_back(make("MUS", "Mauritius", false, 9890, 1100, 0.91, 0.005, 4, 0,
                   {0.70, 0.24, 0.01, 0.01, 0.04}, 0.05, 1));
  // ---- Ranks 11-50 (Fig. 4 order) ----------------------------------
  v.push_back(make("FRA", "France", false, 25320, 25763, 0.229, 0.030, 36,
                   5410, {0.05, 0.03, 0.005, 0.005, 0.91}, 0.008, 6));
  v.push_back(make("BGR", "Bulgaria", false, 18443, 16239, 0.282, 0.020, 46,
                   0, {0.45, 0.30, 0.03, 0.02, 0.20}, 0.10, 3));
  v.push_back(make("RUS", "Russia", true, 93498, 102368, 0.050, 0.020, 255,
                   0, {0.40, 0.25, 0.03, 0.02, 0.30}, 0.12, 6));
  v.push_back(make("ESP", "Spain", false, 12000, 11400, 0.35, 0.020, 70, 0,
                   {0.45, 0.30, 0.04, 0.03, 0.18}, 0.10, 3));
  v.push_back(make("ITA", "Italy", false, 24766, 24483, 0.153, 0.030, 87,
                   3269, {0.30, 0.17, 0.02, 0.03, 0.48}, 0.35, 5));
  v.push_back(make("ZAF", "South Africa", true, 7330, 4700, 0.45, 0.015, 91,
                   0, {0.50, 0.30, 0.04, 0.04, 0.12}, 0.10, 3));
  v.push_back(make("CAN", "Canada", false, 10000, 8900, 0.30, 0.030, 93,
                   21724, {0.14, 0.07, 0.01, 0.01, 0.77}, 0.21, 4));
  v.push_back(make("HUN", "Hungary", false, 7100, 5300, 0.38, 0.020, 16, 0,
                   {0.45, 0.30, 0.04, 0.03, 0.18}, 0.10, 2));
  v.push_back(make("UKR", "Ukraine", false, 20780, 25307, 0.115, 0.020, 104,
                   0, {0.45, 0.30, 0.04, 0.03, 0.18}, 0.10, 4));
  v.push_back(make("AFG", "Afghanistan", false, 3150, 1200, 0.70, 0.008, 9, 0,
                   {0.55, 0.30, 0.02, 0.02, 0.11}, 0.10, 1));
  v.push_back(make("LVA", "Latvia", false, 3600, 2200, 0.55, 0.015, 13, 0,
                   {0.50, 0.30, 0.04, 0.03, 0.13}, 0.10, 2));
  v.push_back(make("PRY", "Paraguay", false, 3000, 1500, 0.60, 0.010, 11, 0,
                   {0.55, 0.30, 0.03, 0.02, 0.10}, 0.10, 2));
  v.push_back(make("PSE", "Palestine", false, 2750, 1300, 0.58, 0.010, 8, 0,
                   {0.55, 0.30, 0.02, 0.02, 0.11}, 0.10, 1));
  v.push_back(make("TTO", "Trinidad and Tobago", false, 1650, 250, 0.91,
                   0.006, 3, 0, {0.60, 0.30, 0.02, 0.02, 0.06}, 0.05, 1));
  v.push_back(make("IRQ", "Iraq", false, 3000, 1800, 0.45, 0.010, 28, 0,
                   {0.55, 0.28, 0.03, 0.02, 0.12}, 0.10, 2));
  v.push_back(make("CZE", "Czechia", false, 4800, 4100, 0.25, 0.025, 69, 0,
                   {0.45, 0.30, 0.05, 0.03, 0.17}, 0.10, 3));
  v.push_back(make("GBR", "United Kingdom", false, 6100, 5600, 0.18, 0.035,
                   90, 0, {0.40, 0.30, 0.05, 0.05, 0.20}, 0.15, 4));
  v.push_back(make("BLZ", "Belize", false, 1075, 120, 0.93, 0.005, 5, 0,
                   {0.60, 0.30, 0.01, 0.01, 0.08}, 0.05, 1));
  v.push_back(make("COD", "DR Congo", false, 1360, 500, 0.70, 0.008, 5, 0,
                   {0.55, 0.30, 0.02, 0.02, 0.11}, 0.08, 1));
  v.push_back(make("BDI", "Burundi", false, 980, 100, 0.92, 0.005, 2, 0,
                   {0.60, 0.30, 0.01, 0.01, 0.08}, 0.05, 1));
  v.push_back(make("SRB", "Serbia", false, 2125, 1500, 0.40, 0.015, 13, 0,
                   {0.50, 0.30, 0.03, 0.03, 0.14}, 0.10, 2));
  v.push_back(make("PHL", "Philippines", true, 2660, 2100, 0.30, 0.012, 26,
                   0, {0.55, 0.28, 0.02, 0.02, 0.13}, 0.10, 2));
  v.push_back(make("COL", "Colombia", true, 2140, 1600, 0.35, 0.012, 29, 0,
                   {0.55, 0.28, 0.02, 0.02, 0.13}, 0.10, 2));
  v.push_back(make("ECU", "Ecuador", false, 1560, 1000, 0.45, 0.010, 15, 0,
                   {0.55, 0.28, 0.02, 0.02, 0.13}, 0.10, 2));
  v.push_back(make("SVK", "Slovakia", false, 2170, 1700, 0.30, 0.020, 30, 0,
                   {0.45, 0.30, 0.05, 0.03, 0.17}, 0.10, 2));
  v.push_back(make("THA", "Thailand", true, 19694, 20474, 0.030, 0.015, 25,
                   0, {0.45, 0.30, 0.04, 0.03, 0.18}, 0.10, 3));
  v.push_back(make("HRV", "Croatia", false, 1100, 650, 0.50, 0.015, 8, 0,
                   {0.50, 0.30, 0.03, 0.03, 0.14}, 0.10, 1));
  v.push_back(make("AUS", "Australia", false, 2000, 1700, 0.25, 0.030, 54, 0,
                   {0.40, 0.32, 0.05, 0.05, 0.18}, 0.12, 3));
  v.push_back(make("URY", "Uruguay", false, 840, 450, 0.55, 0.012, 24, 0,
                   {0.55, 0.28, 0.02, 0.02, 0.13}, 0.10, 1));
  v.push_back(make("HKG", "Hong Kong", false, 2100, 1900, 0.20, 0.030, 27, 0,
                   {0.45, 0.30, 0.05, 0.04, 0.16}, 0.12, 2));
  v.push_back(make("NLD", "Netherlands", false, 3250, 3100, 0.12, 0.040, 38,
                   0, {0.40, 0.32, 0.06, 0.05, 0.17}, 0.12, 3));
  v.push_back(make("ISR", "Israel", false, 1200, 1000, 0.30, 0.025, 11, 0,
                   {0.45, 0.30, 0.05, 0.04, 0.16}, 0.10, 2));
  v.push_back(make("PRI", "Puerto Rico", false, 508, 180, 0.65, 0.010, 11, 0,
                   {0.55, 0.30, 0.02, 0.02, 0.11}, 0.10, 1));
  v.push_back(make("EGY", "Egypt", true, 857, 600, 0.35, 0.012, 8, 0,
                   {0.55, 0.28, 0.02, 0.02, 0.13}, 0.10, 2));
  v.push_back(make("CHL", "Chile", false, 1120, 900, 0.25, 0.015, 17, 0,
                   {0.50, 0.30, 0.03, 0.03, 0.14}, 0.10, 2));
  v.push_back(make("GTM", "Guatemala", false, 520, 280, 0.50, 0.010, 5, 0,
                   {0.55, 0.28, 0.02, 0.02, 0.13}, 0.10, 1));
  v.push_back(make("PAK", "Pakistan", false, 16000, 17200, 0.015, 0.010, 39,
                   0, {0.45, 0.30, 0.03, 0.02, 0.20}, 0.10, 3));
  v.push_back(make("MYS", "Malaysia", true, 1100, 950, 0.20, 0.020, 13, 0,
                   {0.45, 0.30, 0.04, 0.03, 0.18}, 0.10, 2));
  v.push_back(make("IRN", "Iran", true, 36659, 33444, 0.0055, 0.012, 55, 0,
                   {0.40, 0.28, 0.03, 0.02, 0.27}, 0.10, 4));
  v.push_back(make("JPN", "Japan", false, 3600, 3500, 0.05, 0.040, 35, 0,
                   {0.40, 0.30, 0.06, 0.05, 0.19}, 0.12, 3));
  // ---- Table-5 countries outside the Fig. 4 top-50 ------------------
  v.push_back(make("KOR", "South Korea", false, 49143, 73790, 0.003, 0.020,
                   3, 0, {0.45, 0.30, 0.04, 0.03, 0.18}, 0.10, 3));
  v.push_back(make("TWN", "Taiwan", false, 37550, 38525, 0.004, 0.020, 3, 0,
                   {0.45, 0.30, 0.04, 0.03, 0.18}, 0.10, 3));
  v.push_back(make("VNM", "Vietnam", false, 21407, 24266, 0.006, 0.015, 3, 0,
                   {0.45, 0.30, 0.04, 0.03, 0.18}, 0.10, 3));
  v.push_back(make("DEU", "Germany", false, 16243, 17788, 0.007, 0.040, 3, 0,
                   {0.40, 0.30, 0.06, 0.05, 0.19}, 0.12, 3));
  // ---- The fifth >90%-transparent country (outside top-50) ---------
  v.push_back(make("NRU", "Nauru", false, 210, 15, 0.95, 0.005, 1, 0,
                   {0.60, 0.30, 0.01, 0.01, 0.08}, 0.05, 1));
  // ---- Mid-tier countries with ODNS presence but few transparent
  // forwarders (fills the global 2.125M ODNS marginal) --------------
  for (int i = 0; i < 30; ++i) {
    const std::uint64_t odns = 2500 + static_cast<std::uint64_t>(
        (29 - i) * 150);
    CountryProfile p = make(
        ("Y" + std::string(1, static_cast<char>('A' + i / 26)) +
         std::string(1, static_cast<char>('A' + i % 26)))
            .c_str(),
        ("Mid Country " + std::to_string(i + 1)).c_str(), i % 4 == 0, odns,
        static_cast<std::uint64_t>(static_cast<double>(odns) * 0.95),
        0.015 + 0.001 * (i % 10), 0.02, 2 + i % 3, 0,
        {0.48, 0.30, 0.04, 0.03, 0.15}, 0.10, 2);
    v.push_back(std::move(p));
  }
  // ---- Long tail: ~120 small countries with a few TFs each ---------
  for (int i = 0; i < 120; ++i) {
    const std::uint64_t odns = 60 + static_cast<std::uint64_t>(
        (119 - i) * 7);  // 60 .. 893, descending with rank
    const double tf = 0.05 + 0.004 * (i % 40);
    CountryProfile p = make(
        ("X" + std::string(1, static_cast<char>('A' + i / 26)) +
         std::string(1, static_cast<char>('A' + i % 26)))
            .c_str(),
        ("Tail Country " + std::to_string(i + 1)).c_str(), i % 3 == 0, odns,
        static_cast<std::uint64_t>(static_cast<double>(odns) * 0.8), tf,
        0.015, 1 + i % 4, 0, {0.50, 0.30, 0.04, 0.03, 0.13}, 0.10, 1);
    v.push_back(std::move(p));
  }
  return v;
}

std::vector<CountryProfile> build_no_tf_profiles() {
  // ~25% of countries with ODNS presence host zero transparent
  // forwarders (Fig. 3 gray region): ~56 of ~225.
  std::vector<CountryProfile> v;
  for (int i = 0; i < 56; ++i) {
    CountryProfile p = make(
        ("Z" + std::string(1, static_cast<char>('A' + i / 26)) +
         std::string(1, static_cast<char>('A' + i % 26)))
            .c_str(),
        ("No-TF Country " + std::to_string(i + 1)).c_str(), false,
        40 + static_cast<std::uint64_t>(i) * 5,
        40 + static_cast<std::uint64_t>(i) * 5, 0.0, 0.03, 1, 0,
        {0.5, 0.3, 0.05, 0.05, 0.10}, 0.0, 1);
    v.push_back(std::move(p));
  }
  return v;
}

}  // namespace

const std::vector<CountryProfile>& country_profiles() {
  static const std::vector<CountryProfile> profiles = build_profiles();
  return profiles;
}

const std::vector<CountryProfile>& no_tf_country_profiles() {
  static const std::vector<CountryProfile> profiles = build_no_tf_profiles();
  return profiles;
}

const std::vector<ProjectBlueprint>& project_blueprints() {
  static const std::vector<ProjectBlueprint> projects = [] {
    std::vector<ProjectBlueprint> v;
    using util::Ipv4;
    using util::Prefix;
    // PoP counts and peering breadth are the levers that reproduce the
    // Fig. 6 ordering: Cloudflare (densest anycast) < Google < OpenDNS.
    v.push_back(ProjectBlueprint{
        ResolverProject::google, "Google Public DNS", 15169,
        {Ipv4{8, 8, 8, 8}, Ipv4{8, 8, 4, 4}},
        Prefix{Ipv4{8, 8, 0, 0}, 16}, Prefix{Ipv4{74, 125, 0, 0}, 16},
        /*pops=*/24, /*peering_breadth=*/2, /*national_peering=*/0.25,
        /*pop_internal_hops=*/2});
    v.push_back(ProjectBlueprint{
        ResolverProject::cloudflare, "Cloudflare DNS", 13335,
        {Ipv4{1, 1, 1, 1}, Ipv4{1, 0, 0, 1}},
        Prefix{Ipv4{1, 0, 0, 0}, 8}, Prefix{Ipv4{172, 71, 0, 0}, 16},
        /*pops=*/56, /*peering_breadth=*/4, /*national_peering=*/0.65,
        /*pop_internal_hops=*/1});
    v.push_back(ProjectBlueprint{
        ResolverProject::quad9, "Quad9", 19281,
        {Ipv4{9, 9, 9, 9}},
        Prefix{Ipv4{9, 9, 9, 0}, 24}, Prefix{Ipv4{149, 112, 0, 0}, 16},
        /*pops=*/16, /*peering_breadth=*/2, /*national_peering=*/0.15,
        /*pop_internal_hops=*/2});
    v.push_back(ProjectBlueprint{
        ResolverProject::opendns, "OpenDNS", 36692,
        {Ipv4{208, 67, 222, 222}, Ipv4{208, 67, 220, 220}},
        Prefix{Ipv4{208, 67, 216, 0}, 21}, Prefix{Ipv4{146, 112, 0, 0}, 16},
        /*pops=*/7, /*peering_breadth=*/1, /*national_peering=*/0.02,
        /*pop_internal_hops=*/3});
    return v;
  }();
  return projects;
}

}  // namespace odns::topo
