#pragma once
// The built world: a Simulator wired with the full ODNS population
// (recursive resolvers, recursive forwarders, transparent forwarders),
// the public resolver anycast deployments, national resolvers, the DNS
// hierarchy (root / TLD / scan-zone authoritative), and the scanner
// vantage point — plus the ground truth the evaluation compares
// against and attribution tables (service address → project, ASN →
// project / country / type).

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dnswire/name.hpp"
#include "netsim/sim.hpp"
#include "nodes/auth_server.hpp"
#include "nodes/forwarder.hpp"
#include "nodes/forwarder_bank.hpp"
#include "nodes/resolver.hpp"
#include "topo/model.hpp"

namespace odns::topo {

struct PublicResolverPop {
  ResolverProject project = ResolverProject::google;
  netsim::HostId host = netsim::kInvalidHost;
  netsim::Asn asn = 0;
  util::Ipv4 egress;
};

struct TopologyConfig {
  /// Fraction of the paper's April-2021 population to instantiate.
  /// 0.01 keeps every bench under a minute; 0.1 is still practical.
  double scale = 0.01;
  std::uint64_t seed = 42;
  netsim::SimConfig sim;
  bool include_tail_countries = true;
  /// Restrict to the first N profile countries (0 = all); micro
  /// topologies for tests use small N.
  std::size_t max_countries = 0;
  int tier1_count = 8;
  int hubs_per_region = 3;
  /// Bulk population mode for million-host worlds: recursive
  /// forwarders become dense rows of a per-virtual-shard
  /// nodes::ForwarderBank instead of individual RecursiveForwarder
  /// heap nodes. Observable census behaviour is unchanged (banks are
  /// cacheless, but a census probes each forwarder exactly once);
  /// worlds built with the flag ON and OFF are different deployments
  /// and must not be byte-compared against each other.
  bool bulk_population = false;
  /// Multiplies the per-country eyeball AS count (after the sub-linear
  /// scale exponent). Internet-scale worlds use it to push the AS
  /// count to O(10^4) while `scale` controls the host population.
  double eyeball_as_multiplier = 1.0;
  /// A/B toggle for the netsim address-plane lookup structure: ON
  /// (default) uses the flat sorted table, OFF the legacy hash map.
  /// Every observable output is identical either way — the map path
  /// exists so tests can differentially prove that contract.
  bool flat_addr_plane = true;
};

class Deployment {
 public:
  netsim::Simulator& sim() { return *sim_; }
  const netsim::Simulator& sim() const { return *sim_; }

  // --- measurement infrastructure -----------------------------------
  [[nodiscard]] netsim::HostId scanner_host() const { return scanner_host_; }
  [[nodiscard]] util::Ipv4 scanner_addr() const { return scanner_addr_; }
  [[nodiscard]] const dnswire::Name& scan_name() const { return scan_name_; }
  [[nodiscard]] util::Ipv4 control_addr() const { return control_addr_; }
  [[nodiscard]] util::Ipv4 auth_addr() const { return auth_addr_; }
  [[nodiscard]] util::Ipv4 root_addr() const { return root_addr_; }
  nodes::AuthServer& auth() { return *auth_server_; }

  // --- population ----------------------------------------------------
  [[nodiscard]] const std::vector<GroundTruth>& ground_truth() const {
    return ground_truth_;
  }
  [[nodiscard]] const std::vector<PublicResolverPop>& pops() const {
    return pops_;
  }
  /// Addresses a scanner should probe: every ODNS component address.
  [[nodiscard]] std::vector<util::Ipv4> scan_targets() const;

  // --- attribution (ground-truth side; the registry module derives
  // noisy dump-shaped views of the same data) ------------------------
  [[nodiscard]] std::optional<ResolverProject> project_of_service_addr(
      util::Ipv4 addr) const;
  [[nodiscard]] std::optional<ResolverProject> project_of_asn(
      netsim::Asn asn) const;
  [[nodiscard]] std::string country_of_asn(netsim::Asn asn) const;
  [[nodiscard]] AsType type_of_asn(netsim::Asn asn) const;
  [[nodiscard]] const std::vector<CountryProfile>& profiles_used() const {
    return profiles_used_;
  }

  /// Provider→customer edges as constructed (ground truth for the
  /// AS-relationship-inference experiment).
  [[nodiscard]] const std::vector<std::pair<netsim::Asn, netsim::Asn>>&
  provider_customer_edges() const {
    return provider_customer_;
  }

  /// Aggregate cache behaviour across every deployed resolver —
  /// Table 2's "utilization of caches" metric.
  [[nodiscard]] nodes::CacheStats aggregate_resolver_cache_stats() const;

  [[nodiscard]] const TopologyConfig& config() const { return cfg_; }

  // Implementation detail: the fields below are populated by
  // TopologyBuilder's helper pipeline (builder.cpp). Use the accessors
  // above; the trailing-underscore names are not part of the stable
  // API.
 public:
  TopologyConfig cfg_;
  std::unique_ptr<netsim::Simulator> sim_;

  // Node ownership. Order matters: nodes reference the simulator, so
  // they are declared after it (destroyed first).
  std::vector<std::unique_ptr<nodes::AuthServer>> auth_servers_;
  std::vector<std::unique_ptr<nodes::RecursiveResolver>> resolvers_;
  std::vector<std::unique_ptr<nodes::RecursiveForwarder>> forwarders_;
  /// Bulk mode: one bank per virtual shard (index = virtual shard),
  /// each serving that shard's recursive forwarders as dense rows.
  std::vector<std::unique_ptr<nodes::ForwarderBank>> forwarder_banks_;
  std::vector<nodes::TransparentForwarder> transparent_;

  nodes::AuthServer* auth_server_ = nullptr;
  netsim::HostId scanner_host_ = netsim::kInvalidHost;
  util::Ipv4 scanner_addr_;
  dnswire::Name scan_name_;
  util::Ipv4 control_addr_;
  util::Ipv4 auth_addr_;
  util::Ipv4 root_addr_;

  std::vector<GroundTruth> ground_truth_;
  std::vector<PublicResolverPop> pops_;
  std::vector<CountryProfile> profiles_used_;
  std::unordered_map<util::Ipv4, ResolverProject> service_addr_project_;
  std::unordered_map<netsim::Asn, ResolverProject> asn_project_;
  std::unordered_map<netsim::Asn, std::string> asn_country_;
  std::unordered_map<netsim::Asn, AsType> asn_type_;
  std::vector<std::pair<netsim::Asn, netsim::Asn>> provider_customer_;
};

class TopologyBuilder {
 public:
  /// Builds the full world. Deterministic in (cfg.seed, cfg.scale).
  static std::unique_ptr<Deployment> build(const TopologyConfig& cfg);
};

}  // namespace odns::topo
