#pragma once
// Model types for the synthetic Internet: country profiles seeded with
// the paper's published per-country marginals (Tables 4 & 5, Figures
// 4 & 5), AS taxonomy, resolver projects, device vendors, and the
// ground-truth records the evaluation compares against.

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/packet.hpp"
#include "util/ipv4.hpp"

namespace odns::topo {

/// The four large public resolver projects the paper tracks, plus
/// "other" (national/ISP resolvers).
enum class ResolverProject : std::uint8_t {
  google,
  cloudflare,
  quad9,
  opendns,
  other,
};

std::string to_string(ResolverProject p);

enum class OdnsKind : std::uint8_t {
  recursive_resolver,
  recursive_forwarder,
  transparent_forwarder,
};

std::string to_string(OdnsKind k);

enum class AsType : std::uint8_t {
  tier1,
  transit,         // regional / national transit (NSP)
  eyeball_isp,     // cable / DSL / mobile access network
  hosting,
  content,
  education,
  enterprise,
  infrastructure,  // roots, TLDs, measurement infra
  unknown,
};

std::string to_string(AsType t);

enum class DeviceVendor : std::uint8_t {
  mikrotik,
  zyxel,
  huawei,
  tplink,
  dlink,
  unknown,
};

std::string to_string(DeviceVendor v);

/// /24 population style for transparent-forwarder placement (§6,
/// Fig. 8): sparse prefixes look like individual CPE customers, full
/// prefixes like one middlebox answering for the whole block.
enum class PrefixStyle : std::uint8_t { sparse, medium, full };

/// Per-country resolver-project mix for transparent forwarders
/// (Fig. 5). Fractions sum to ~1.
struct ResolverMix {
  double google = 0.5;
  double cloudflare = 0.3;
  double quad9 = 0.05;
  double opendns = 0.05;
  double other = 0.10;
};

/// One country's ODNS deployment profile. Counts are the paper-scale
/// (April 2021) values; the builder multiplies by the scale factor.
struct CountryProfile {
  std::string code;   // ISO-3166 alpha-3
  std::string name;
  bool emerging = false;          // starred in Fig. 4
  std::uint64_t odns_total = 0;   // all ODNS components (Table 5 col. 3)
  std::uint64_t shadowserver_odns = 0;  // Table 5 Shadowserver column
  double tf_share = 0.0;          // fraction of ODNS that is transparent
  double rr_share = 0.02;         // recursive resolver fraction
  int as_count = 1;               // ASes hosting transparent forwarders
  std::uint32_t top_asn = 0;      // Table 4 top ASN, when published
  ResolverMix mix;
  /// Of the "other"-share responses, the fraction whose A_resolver
  /// record points into a big-4 AS (indirect consolidation, Table 4).
  double other_indirect = 0.10;
  /// Size of the national open-resolver pool serving the "other" share
  /// (Turkey famously has one).
  int national_resolvers = 3;
  /// Mix of /24 population styles for this country's TFs
  /// {sparse, medium, full} — weights, not fractions.
  double style_sparse = 0.26;
  double style_medium = 0.38;
  double style_full = 0.36;

  [[nodiscard]] std::uint64_t tf_total() const {
    return static_cast<std::uint64_t>(static_cast<double>(odns_total) *
                                      tf_share);
  }
};

/// The embedded country table (top-50 of Fig. 4 + the Table-5 extras
/// + a generated long tail; see topo/data.cpp).
const std::vector<CountryProfile>& country_profiles();

/// Countries that appear in the ODNS but host zero transparent
/// forwarders (~25% of countries, Fig. 3 gray region).
const std::vector<CountryProfile>& no_tf_country_profiles();

/// A public resolver project's deployment blueprint.
struct ProjectBlueprint {
  ResolverProject project;
  std::string name;
  netsim::Asn asn;
  std::vector<util::Ipv4> service_addrs;  // anycast addresses
  util::Prefix service_prefix;            // announced anycast block
  util::Prefix egress_prefix;             // PoP egress (A_resolver) block
  int pops;              // scaled PoP count: more PoPs → shorter paths
  int peering_breadth;   // how many hub ASes each PoP attaches to
  /// Fraction of national transit ASes the project peers with directly
  /// at IXPs — the dominant lever behind Fig. 6's path-length ordering
  /// (Cloudflare's dense edge presence vs. OpenDNS's sparse one).
  double national_peering = 0.0;
  /// Router hops spent inside a PoP site (edge engineering quality).
  int pop_internal_hops = 1;
};

const std::vector<ProjectBlueprint>& project_blueprints();

/// Ground truth for one deployed ODNS component; the evaluation
/// compares classifier output against these.
struct GroundTruth {
  util::Ipv4 addr;
  OdnsKind kind = OdnsKind::transparent_forwarder;
  std::string country;
  netsim::Asn asn = 0;
  netsim::HostId host = netsim::kInvalidHost;
  /// Forwarders: the relay target (anycast service address or local
  /// resolver); unset for recursive resolvers.
  util::Ipv4 upstream;
  ResolverProject project = ResolverProject::other;
  bool chained = false;  // TF → local RF → public (indirect consolidation)
  DeviceVendor vendor = DeviceVendor::unknown;
  bool fingerprint_visible = false;
  PrefixStyle prefix_style = PrefixStyle::sparse;
};

}  // namespace odns::topo
