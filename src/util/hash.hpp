#pragma once
// Shared non-cryptographic hash primitives. Everything that
// fingerprints simulation output (trace digests, bench A/B hashes)
// goes through this one FNV-1a implementation so the digests two
// tools compute cannot silently drift apart.

#include <cstdint>

namespace odns::util {

inline constexpr std::uint64_t kFnv1aBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/// Folds the 8 bytes of `v` (little-endian order) into FNV-1a state.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::uint64_t h,
                                              std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFFu;
    h *= kFnv1aPrime;
  }
  return h;
}

}  // namespace odns::util
