#include "util/ipv4.hpp"

#include <array>
#include <charconv>

namespace odns::util {

std::optional<Ipv4> Ipv4::parse(std::string_view text) {
  std::array<std::uint32_t, 4> octets{};
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size()) return std::nullopt;
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, octets[i]);
    if (ec != std::errc{} || octets[i] > 255) return std::nullopt;
    pos = static_cast<std::size_t>(ptr - text.data());
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4{static_cast<std::uint8_t>(octets[0]),
              static_cast<std::uint8_t>(octets[1]),
              static_cast<std::uint8_t>(octets[2]),
              static_cast<std::uint8_t>(octets[3])};
}

std::string Ipv4::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int len = 0;
  auto tail = text.substr(slash + 1);
  auto [ptr, ec] = std::from_chars(tail.data(), tail.data() + tail.size(), len);
  if (ec != std::errc{} || ptr != tail.data() + tail.size()) return std::nullopt;
  if (len < 0 || len > 32) return std::nullopt;
  return Prefix{*addr, len};
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(len_);
}

}  // namespace odns::util
