#pragma once
// IPv4 address and prefix value types used throughout the simulator and
// the measurement pipeline. Addresses are stored host-byte-order so that
// arithmetic (prefix math, sequential allocation) stays natural.

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace odns::util {

/// An IPv4 address. Value type, totally ordered, hashable.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t host_order) : bits_(host_order) {}
  /// Builds an address from its four dotted-quad octets.
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses "a.b.c.d". Returns nullopt on malformed input (leading
  /// zeros are accepted; out-of-range octets are not).
  static std::optional<Ipv4> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return bits_; }
  [[nodiscard]] constexpr bool is_unspecified() const { return bits_ == 0; }
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(bits_ >> (8 * (3 - i)));
  }

  /// Next address in numeric order; wraps at 255.255.255.255.
  [[nodiscard]] constexpr Ipv4 next() const { return Ipv4{bits_ + 1}; }

  friend constexpr auto operator<=>(Ipv4, Ipv4) = default;

 private:
  std::uint32_t bits_ = 0;
};

/// A CIDR prefix (address + mask length). The address is canonicalised
/// to the network base on construction.
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(Ipv4 base, int len)
      : len_(len), base_(Ipv4{base.value() & mask_for(len)}) {}

  /// Parses "a.b.c.d/len".
  static std::optional<Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4 base() const { return base_; }
  [[nodiscard]] constexpr int length() const { return len_; }
  [[nodiscard]] constexpr std::uint32_t mask() const { return mask_for(len_); }

  [[nodiscard]] constexpr bool contains(Ipv4 a) const {
    return (a.value() & mask()) == base_.value();
  }
  [[nodiscard]] constexpr bool contains(const Prefix& other) const {
    return other.len_ >= len_ && contains(other.base_);
  }

  /// Number of addresses covered (2^(32-len)); 0 means 2^32.
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - len_);
  }

  /// The covering /24 of an address — the grouping unit the paper uses
  /// for forwarder-density analysis and sensor rate limiting.
  static constexpr Prefix covering24(Ipv4 a) { return Prefix{a, 24}; }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  static constexpr std::uint32_t mask_for(int len) {
    return len == 0 ? 0u : ~0u << (32 - len);
  }
  int len_ = 0;
  Ipv4 base_{};
};

}  // namespace odns::util

template <>
struct std::hash<odns::util::Ipv4> {
  std::size_t operator()(odns::util::Ipv4 a) const noexcept {
    // Fibonacci hashing spreads sequential allocations across buckets.
    return static_cast<std::size_t>(a.value()) * 0x9E3779B97F4A7C15ull;
  }
};

template <>
struct std::hash<odns::util::Prefix> {
  std::size_t operator()(const odns::util::Prefix& p) const noexcept {
    return (static_cast<std::size_t>(p.base().value()) << 6) ^
           static_cast<std::size_t>(p.length());
  }
};
