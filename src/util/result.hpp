#pragma once
// Minimal result type for fallible operations where exceptions would be
// the wrong tool (hot parsing paths). Modeled after std::expected, which
// is not yet available on the toolchain's C++20 mode.

#include <cassert>
#include <utility>
#include <variant>

namespace odns::util {

template <typename T, typename E>
class Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Result(E error) : data_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool ok() const { return data_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(data_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(data_));
  }
  [[nodiscard]] const E& error() const {
    assert(!ok());
    return std::get<1>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<0>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, E> data_;
};

}  // namespace odns::util
