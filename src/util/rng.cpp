#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace odns::util {

std::size_t Rng::weighted(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) return 0;
  double x = uniform_real(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace odns::util
