#pragma once
// Deterministic random source. All stochastic choices in the simulator
// flow through one of these so that a (seed, scale) pair fully
// reproduces a run — the reproduction analogue of the paper's fixed
// April 2021 snapshot.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace odns::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  int uniform_int(int lo, int hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  double uniform_real(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Geometric-ish heavy tail in [lo, hi]; used for per-/24 host counts.
  std::uint64_t heavy_tail(std::uint64_t lo, std::uint64_t hi, double shape) {
    const double u = uniform_real(1e-12, 1.0);
    const double span = static_cast<double>(hi - lo);
    const double x = span * (1.0 - std::pow(u, shape));
    return lo + static_cast<std::uint64_t>(x);
  }

  /// Picks an index according to the given non-negative weights.
  std::size_t weighted(std::span<const double> weights);

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    assert(!items.empty());
    return items[uniform(0, items.size() - 1)];
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Derives an independent child stream; the label decorrelates
  /// subsystems that would otherwise consume from one sequence.
  Rng fork(std::uint64_t label) {
    return Rng{engine_() ^ (label * 0x9E3779B97F4A7C15ull)};
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace odns::util
