#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace odns::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(xs.size())));
  return xs[rank == 0 ? 0 : rank - 1];
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> xs) {
  std::vector<CdfPoint> out;
  if (xs.empty()) return out;
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const bool last_of_value = (i + 1 == xs.size()) || (xs[i + 1] != xs[i]);
    if (last_of_value) {
      out.push_back({xs[i], static_cast<double>(i + 1) / n});
    }
  }
  return out;
}

std::vector<CdfPoint> rank_cdf(std::vector<std::uint64_t> counts_desc) {
  std::sort(counts_desc.begin(), counts_desc.end(), std::greater<>());
  std::uint64_t total = 0;
  for (auto c : counts_desc) total += c;
  std::vector<CdfPoint> out;
  if (total == 0) return out;
  std::uint64_t run = 0;
  for (std::size_t i = 0; i < counts_desc.size(); ++i) {
    run += counts_desc[i];
    out.push_back({static_cast<double>(i + 1),
                   static_cast<double>(run) / static_cast<double>(total)});
  }
  return out;
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

void Histogram::add(std::int64_t bucket, std::uint64_t weight) {
  buckets_[bucket] += weight;
  total_ += weight;
}

double Histogram::cumulative_at(std::int64_t limit) const {
  if (total_ == 0) return 0.0;
  std::uint64_t run = 0;
  for (const auto& [bucket, count] : buckets_) {
    if (bucket > limit) break;
    run += count;
  }
  return static_cast<double>(run) / static_cast<double>(total_);
}

std::string render_cdf_ascii(const std::vector<CdfPoint>& cdf, int width,
                             int height) {
  if (cdf.empty() || width <= 0 || height <= 0) return {};
  const double xmax = cdf.back().x;
  const double xmin = cdf.front().x;
  const double span = xmax > xmin ? xmax - xmin : 1.0;
  std::vector<std::string> rows(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (const auto& pt : cdf) {
    int col = static_cast<int>((pt.x - xmin) / span * (width - 1));
    int row = static_cast<int>((1.0 - pt.cum) * (height - 1));
    col = std::clamp(col, 0, width - 1);
    row = std::clamp(row, 0, height - 1);
    rows[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = '*';
  }
  std::string out;
  for (auto& r : rows) {
    out += "  |";
    out += r;
    out += '\n';
  }
  out += "  +";
  out.append(static_cast<std::size_t>(width), '-');
  out += '\n';
  return out;
}

}  // namespace odns::util
