#pragma once
// Small statistics helpers shared by the analysis pipeline and the
// bench harness: empirical CDFs, percentiles, running means.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace odns::util {

/// Arithmetic mean; 0 for an empty range.
double mean(const std::vector<double>& xs);

/// p in [0,1]; nearest-rank percentile over a copy of the data.
double percentile(std::vector<double> xs, double p);

/// One (x, F(x)) step of an empirical CDF.
struct CdfPoint {
  double x = 0.0;
  double cum = 0.0;  // cumulative fraction in (0, 1]
};

/// Builds the empirical CDF of the sample (sorted, deduplicated steps).
std::vector<CdfPoint> empirical_cdf(std::vector<double> xs);

/// CDF over pre-aggregated (value, count) pairs, e.g. per-country
/// forwarder totals, ordered descending by count (the paper's Fig. 3
/// x-axis is a country rank, not a value).
std::vector<CdfPoint> rank_cdf(std::vector<std::uint64_t> counts_desc);

/// Streaming mean/min/max accumulator.
class Accumulator {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Integer histogram keyed by bucket value.
class Histogram {
 public:
  void add(std::int64_t bucket, std::uint64_t weight = 1);
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& buckets() const {
    return buckets_;
  }
  /// Fraction of mass at buckets <= limit.
  [[nodiscard]] double cumulative_at(std::int64_t limit) const;

 private:
  std::map<std::int64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Renders a sparse ASCII sparkline of a CDF for terminal reports.
std::string render_cdf_ascii(const std::vector<CdfPoint>& cdf, int width,
                             int height);

}  // namespace odns::util
