#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace odns::util {

std::string ascii_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a')
                                  : static_cast<char>(c);
  });
  return out;
}

bool iequals_ascii(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto fold = [](char c) {
      return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
    };
    if (fold(a[i]) != fold(b[i])) return false;
  }
  return true;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    auto pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool iends_with(std::string_view s, std::string_view suffix) {
  if (suffix.size() > s.size()) return false;
  return iequals_ascii(s.substr(s.size() - suffix.size()), suffix);
}

}  // namespace odns::util
