#pragma once
// String helpers shared across modules (ASCII-only on purpose: DNS
// names and country codes are ASCII domains).

#include <string>
#include <string_view>
#include <vector>

namespace odns::util {

/// Lowercases ASCII characters only; DNS comparisons are defined over
/// ASCII case folding (RFC 1035 §2.3.3).
std::string ascii_lower(std::string_view s);

bool iequals_ascii(std::string_view a, std::string_view b);

std::vector<std::string> split(std::string_view s, char sep);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` ends with `suffix` (ASCII case-insensitive).
bool iends_with(std::string_view s, std::string_view suffix);

}  // namespace odns::util
