#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cstdio>
#include <ostream>

namespace odns::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  double parsed = 0.0;
  auto first = s.data();
  auto last = s.data() + s.size();
  if (*first == '+' || *first == '-') ++first;
  auto [ptr, ec] = std::from_chars(first, last, parsed);
  if (ec != std::errc{}) return false;
  // Allow trailing unit-ish suffixes like '%' but nothing longer.
  return last - ptr <= 1;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      const bool right = looks_numeric(row[c]);
      const std::size_t pad = widths[c] - row[c].size();
      if (right) out.append(pad, ' ');
      out += row[c];
      if (!right) out.append(pad, ' ');
      out += ' ';
    }
    out += "|\n";
  };
  std::string out;
  emit_row(headers_, out);
  out += '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c] + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += escape(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::fmt_count(std::uint64_t v) { return std::to_string(v); }

}  // namespace odns::util
