#pragma once
// Console table and CSV writers used by the bench harness to print the
// paper's tables/figures as aligned text and machine-readable rows.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace odns::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Formats the table with column alignment; numeric-looking cells are
  /// right-aligned.
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  static std::string fmt_double(double v, int precision = 1);
  static std::string fmt_percent(double fraction, int precision = 1);
  static std::string fmt_count(std::uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace odns::util
