#pragma once
// Simulated time. A strong typedef over integer nanoseconds keeps event
// ordering exact (no floating-point drift) and comparisons cheap.

#include <cstdint>
#include <string>

namespace odns::util {

class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  static constexpr Duration micros(std::int64_t n) { return Duration{n * 1'000}; }
  static constexpr Duration millis(std::int64_t n) { return Duration{n * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t n) { return Duration{n * 1'000'000'000}; }
  static constexpr Duration minutes(std::int64_t n) { return seconds(n * 60); }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double as_seconds() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr double as_millis() const { return static_cast<double>(ns_) / 1e6; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns_ * k}; }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime origin() { return SimTime{}; }
  static constexpr SimTime from_nanos(std::int64_t n) { return SimTime{n}; }
  /// "Never": later than any schedulable instant (~146 years of
  /// simulated nanoseconds) while still leaving headroom for
  /// `t + Duration` arithmetic below the int64 ceiling. The event
  /// engine's run-to-drain deadline; compare with `<` to test whether
  /// a deadline is explicit or the drain sentinel.
  static constexpr SimTime far_future() {
    return SimTime{std::int64_t{1} << 62};
  }

  [[nodiscard]] constexpr std::int64_t nanos() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime{t.ns_ + d.count_nanos()};
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration::nanos(a.ns_ - b.ns_);
  }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace odns::util
