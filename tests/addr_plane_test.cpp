// Flat interned address plane (docs/architecture.md, "Flat address
// plane"): the sorted-table lookup path must be byte-identical to the
// legacy map baseline — per-lookup on a built world, and end-to-end
// through the full census across shard counts and seeds — and world
// construction must stay under a recorded bytes-per-host heap ceiling.
//
// This binary replaces global operator new/delete with size-tracking
// versions feeding test::allocaudit::live_bytes (alongside the
// counters); no other binary except alloc_audit_test defines
// replacements, so the rest of the suite runs on the stock allocator.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <malloc.h>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "core/census.hpp"
#include "topo/deployment.hpp"
#include "testutil.hpp"

// ---------------------------------------------------------------------
// Size-tracking global allocator (glibc malloc_usable_size gives the
// true block size, so live_bytes matches what the heap actually holds).
// ---------------------------------------------------------------------

namespace {

void* tracked_alloc(std::size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  odns::test::allocaudit::allocations.fetch_add(1, std::memory_order_relaxed);
  odns::test::allocaudit::live_bytes.fetch_add(
      static_cast<std::int64_t>(malloc_usable_size(p)),
      std::memory_order_relaxed);
  return p;
}

void* tracked_aligned_alloc(std::size_t size, std::align_val_t align) {
  const auto a = static_cast<std::size_t>(align);
  void* p = std::aligned_alloc(a, (size + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc{};
  odns::test::allocaudit::allocations.fetch_add(1, std::memory_order_relaxed);
  odns::test::allocaudit::live_bytes.fetch_add(
      static_cast<std::int64_t>(malloc_usable_size(p)),
      std::memory_order_relaxed);
  return p;
}

void tracked_free(void* p) noexcept {
  if (p == nullptr) return;
  odns::test::allocaudit::deallocations.fetch_add(1,
                                                  std::memory_order_relaxed);
  odns::test::allocaudit::live_bytes.fetch_sub(
      static_cast<std::int64_t>(malloc_usable_size(p)),
      std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return tracked_alloc(size); }
void* operator new[](std::size_t size) { return tracked_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return tracked_alloc(size);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return tracked_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return tracked_aligned_alloc(size, align);
}

void operator delete(void* p) noexcept { tracked_free(p); }
void operator delete[](void* p) noexcept { tracked_free(p); }
void operator delete(void* p, std::size_t) noexcept { tracked_free(p); }
void operator delete[](void* p, std::size_t) noexcept { tracked_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  tracked_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  tracked_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { tracked_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { tracked_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  tracked_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  tracked_free(p);
}

namespace odns {
namespace {

using netsim::HostId;
using netsim::kInvalidHost;
using netsim::Network;
using test::allocaudit::AllocationScope;
using util::Ipv4;

topo::TopologyConfig small_world_cfg(std::uint64_t seed) {
  topo::TopologyConfig cfg;
  cfg.scale = 0.0015;
  cfg.max_countries = 6;
  cfg.seed = seed;
  cfg.sim.seed = seed;
  cfg.bulk_population = true;
  return cfg;
}

TEST(AddrPlane, FlatAndMapLookupsAgreeOnBuiltWorld) {
  // Per-lookup differential: on one built world, flip the A/B switch
  // and require identical owners for every interesting address class —
  // host unicast, anycast service addresses (from several source
  // ASes), router interfaces, and space nobody owns.
  const auto world = topo::TopologyBuilder::build(small_world_cfg(11));
  auto& net = world->sim().net();
  ASSERT_TRUE(net.flat_addr_plane_enabled());

  std::vector<Ipv4> probes;
  for (const auto& gt : world->ground_truth()) probes.push_back(gt.addr);
  for (const auto& pop : world->pops()) probes.push_back(pop.egress);
  for (const netsim::Asn asn : net.all_asns()) {
    for (const auto ip : net.find_as(asn)->router_ips) probes.push_back(ip);
  }
  probes.push_back(world->scanner_addr());
  probes.push_back(Ipv4{203, 0, 113, 77});  // unowned: must miss both ways
  probes.push_back(Ipv4{0, 0, 0, 0});

  // A few query-source ASes exercise the nearest-PoP anycast tie-break.
  std::vector<netsim::Asn> sources;
  for (std::size_t i = 0; i < net.all_asns().size(); i += 37) {
    sources.push_back(net.all_asns()[i]);
  }

  struct Row {
    HostId unicast;
    bool anycast;
    std::vector<HostId> resolved;
  };
  auto snapshot = [&] {
    std::vector<Row> rows;
    rows.reserve(probes.size());
    for (const auto addr : probes) {
      Row row;
      row.unicast = net.unicast_owner(addr);
      row.anycast = net.is_anycast(addr);
      for (const auto src : sources) {
        row.resolved.push_back(net.resolve_destination(addr, src));
      }
      rows.push_back(std::move(row));
    }
    return rows;
  };

  const auto flat = snapshot();
  net.set_flat_addr_plane_enabled(false);
  const auto map = snapshot();
  net.set_flat_addr_plane_enabled(true);
  const auto flat_again = snapshot();

  ASSERT_EQ(flat.size(), map.size());
  std::size_t owned = 0;
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i].unicast, map[i].unicast) << probes[i].to_string();
    EXPECT_EQ(flat[i].anycast, map[i].anycast) << probes[i].to_string();
    EXPECT_EQ(flat[i].resolved, map[i].resolved) << probes[i].to_string();
    EXPECT_EQ(flat[i].unicast, flat_again[i].unicast);
    if (flat[i].unicast != kInvalidHost) ++owned;
  }
  EXPECT_GT(owned, 100u) << "differential must cover real addresses";
}

TEST(AddrPlane, PostFreezeTailKeepsLookupsExactAndRejectsDuplicates) {
  // The freeze/tail/merge contract: addresses added after a freeze are
  // visible immediately (linear tail), survive the merge, and
  // duplicate assignments throw in both modes.
  for (const bool flat : {true, false}) {
    Network net;
    net.set_flat_addr_plane_enabled(flat);
    netsim::AsConfig ac;
    ac.asn = 64500;
    net.add_as(ac);
    std::vector<HostId> hosts;
    for (std::uint32_t i = 0; i < 2000; ++i) {
      hosts.push_back(
          net.add_host(64500, {Ipv4{static_cast<std::uint32_t>(
              (10u << 24) | i)}}));
    }
    net.freeze_addr_plane();
    // Post-freeze adds sit in the unsorted tail until the next merge.
    const HostId late = net.add_host(64500, {Ipv4{10, 1, 0, 1}});
    EXPECT_EQ(net.unicast_owner(Ipv4{10, 1, 0, 1}), late);
    EXPECT_EQ(net.unicast_owner(Ipv4{(10u << 24) | 1234u}), hosts[1234]);
    net.freeze_addr_plane();
    EXPECT_EQ(net.unicast_owner(Ipv4{10, 1, 0, 1}), late);
    EXPECT_THROW(net.add_host(64500, {Ipv4{10, 1, 0, 1}}),
                 std::invalid_argument);
    // A multi-address host grown in place keeps its span coherent.
    net.add_host_address(late, Ipv4{10, 1, 0, 2});
    EXPECT_EQ(net.unicast_owner(Ipv4{10, 1, 0, 2}), late);
    EXPECT_EQ(net.host_addrs(late).size(), 2u);
    EXPECT_EQ(net.primary_addr(late), (Ipv4{10, 1, 0, 1}));
  }
}

/// One digest over everything a census run observed (same shape as the
/// scale-census suite's fingerprint).
std::string census_fingerprint(const core::CensusResult& result) {
  std::ostringstream out;
  out << std::hex << classify::census_fingerprint(result.census) << '\n';
  for (const auto& txn : result.transactions) {
    out << txn.target.value() << ',' << txn.sent_at.nanos() << ','
        << txn.answered;
    if (txn.answered) {
      out << ',' << txn.response_src.value() << ',' << txn.rtt.count_nanos()
          << ',' << static_cast<int>(txn.rcode);
      for (const auto a : txn.answer_addrs) out << ',' << a.value();
    }
    out << '\n';
  }
  return out.str();
}

TEST(AddrPlane, CensusByteIdenticalFlatVsMapAcrossShardsAndSeeds) {
  // The end-to-end contract, recorded: a full census produces the same
  // bytes whether deliveries resolve through the flat table or the map
  // baseline — for 1, 2, and 8 shards and across seeds.
  for (const std::uint64_t seed : {11ull, 2021ull}) {
    std::string reference;
    for (const std::uint32_t shards : {1u, 2u, 8u}) {
      for (const bool flat : {true, false}) {
        core::CensusConfig cfg;
        cfg.topology = small_world_cfg(seed);
        cfg.topology.flat_addr_plane = flat;
        cfg.sim_shards = shards;
        cfg.shard_interleaved_targets = true;
        cfg.vantages = shards;
        cfg.scan_timeout = util::Duration::seconds(2);
        const auto fp = census_fingerprint(core::run_census(cfg));
        ASSERT_FALSE(fp.empty());
        if (reference.empty()) {
          reference = fp;
        } else {
          EXPECT_EQ(fp, reference) << "seed=" << seed << " shards=" << shards
                                   << " flat=" << flat;
        }
      }
    }
  }
}

TEST(AddrPlane, WorldConstructionBytesPerHostStaysUnderCeiling) {
  // The memory half of the tentpole, pinned: building a ~100k-host
  // bulk world must stay under a recorded live-heap ceiling per
  // ground-truth host. The ceiling is the measured post-flat-plane
  // value plus headroom — a regression back to per-host heap vectors
  // (~100+ bytes/host of node overhead alone) trips it immediately.
  topo::TopologyConfig cfg;
  cfg.scale = 0.047;
  cfg.seed = 97;
  cfg.sim.seed = 97;
  cfg.bulk_population = true;

  AllocationScope scope;
  const auto world = topo::TopologyBuilder::build(cfg);
  const std::int64_t live = scope.live_bytes_in_scope();

  const std::size_t hosts = world->ground_truth().size();
  ASSERT_GE(hosts, 80000u);
  ASSERT_GT(live, 0);
  const double bytes_per_host =
      static_cast<double>(live) / static_cast<double>(hosts);
  RecordProperty("bytes_per_host", static_cast<int>(bytes_per_host));
  // Recorded ceiling: see docs/benchmarks.md ("Flat address plane").
  EXPECT_LT(bytes_per_host, 600.0)
      << "world construction regressed to " << bytes_per_host
      << " heap bytes per host (live=" << live << ", hosts=" << hosts << ")";
}

}  // namespace
}  // namespace odns
