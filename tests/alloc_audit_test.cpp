// Allocation audit for the arena wire path (docs/architecture.md,
// "Zero-allocation wire path"): after warm-up, the serving hot path —
// decode_into → AuthServer::build_mirror_response → encode_into — must
// perform ZERO heap allocations per message. This binary replaces the
// global operator new/delete with counting versions feeding
// test::allocaudit (declared in testutil.hpp); no other test binary
// defines the replacements, so the rest of the suite runs on the stock
// allocator.
//
// The loop body deliberately avoids gtest assertions (they may touch
// the heap); it accumulates plain counters and asserts after the scope
// closes.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "dnswire/arena.hpp"
#include "dnswire/arena_codec.hpp"
#include "dnswire/codec.hpp"
#include "dnswire/message.hpp"
#include "testutil.hpp"

// ---------------------------------------------------------------------
// Counting global allocator. Replacement definitions live in exactly
// this translation unit; the counters they feed are the inline atomics
// in testutil.hpp.
// ---------------------------------------------------------------------

namespace {

void* counted_alloc(std::size_t size) {
  odns::test::allocaudit::allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  odns::test::allocaudit::allocations.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc{};
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  odns::test::allocaudit::deallocations.fetch_add(1,
                                                  std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}

namespace odns {
namespace {

using test::MiniWorld;
using test::allocaudit::AllocationScope;
using util::Ipv4;

TEST(AllocAudit, CountingAllocatorIsActuallyHooked) {
  // Guards the zero-assertions below against vacuity: if the
  // replacement operators were not linked in, this fails first.
  AllocationScope scope;
  auto* sink = new std::vector<int>(1024, 7);
  EXPECT_GE(scope.allocations_in_scope(), 1u);
  delete sink;
  EXPECT_GE(scope.deallocations_in_scope(), 1u);
}

TEST(AllocAudit, MirrorServingPathIsZeroAllocationAfterWarmup) {
  MiniWorld world;
  const nodes::AuthServer& auth = *world.auth;

  // A representative scan probe, heap-encoded once up front. The hot
  // loop mutates only the TXID bytes and the mirrored client address,
  // like the real probe stream does.
  auto wire = dnswire::encode(
      dnswire::make_query(0x1234, world.scan_name, dnswire::RrType::a));
  ASSERT_FALSE(wire.empty());

  dnswire::WireArena rx;
  dnswire::WireArena scratch;
  dnswire::WireArena tx;

  const Ipv4 client_base{8, 8, 4, 0};
  auto serve_once = [&](std::uint32_t i, std::size_t& bytes_out) {
    wire[0] = static_cast<std::uint8_t>(i >> 8);
    wire[1] = static_cast<std::uint8_t>(i);
    rx.reset();
    scratch.reset();
    tx.reset();
    auto parsed =
        dnswire::decode_into(rx, std::span<const std::uint8_t>(wire));
    if (!parsed.ok()) return false;
    dnswire::MessageView resp;
    if (!auth.build_mirror_response(scratch, parsed.value(),
                                    Ipv4{client_base.value() + (i % 251)},
                                    resp)) {
      return false;
    }
    const auto out = dnswire::encode_into(tx, resp);
    bytes_out += out.size();
    return !out.empty();
  };

  // Warm-up: grows each arena to its steady-state chunk set.
  std::size_t warm_bytes = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(serve_once(i, warm_bytes));
  }
  const std::size_t rx_chunks = rx.chunk_count();
  const std::size_t scratch_chunks = scratch.chunk_count();
  const std::size_t tx_chunks = tx.chunk_count();

  constexpr std::uint32_t kMessages = 10000;
  std::uint32_t served = 0;
  std::size_t bytes = 0;
  AllocationScope scope;
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    if (serve_once(i, bytes)) ++served;
  }
  const std::uint64_t allocs = scope.allocations_in_scope();
  const std::uint64_t frees = scope.deallocations_in_scope();

  EXPECT_EQ(served, kMessages);
  EXPECT_GT(bytes, kMessages * 12u);  // real responses, not empty spans
  EXPECT_EQ(allocs, 0u) << "serving hot path touched the heap";
  EXPECT_EQ(frees, 0u);
  EXPECT_EQ(rx.chunk_count(), rx_chunks);
  EXPECT_EQ(scratch.chunk_count(), scratch_chunks);
  EXPECT_EQ(tx.chunk_count(), tx_chunks);
}

TEST(AllocAudit, ArenaRetainsChunksAcrossReset) {
  dnswire::WireArena arena;
  (void)arena.alloc_array<std::uint8_t>(1000);
  const std::size_t warmed = arena.chunk_count();
  ASSERT_GE(warmed, 1u);

  AllocationScope scope;
  for (int i = 0; i < 1000; ++i) {
    arena.reset();
    (void)arena.alloc_array<std::uint8_t>(1000);
  }
  EXPECT_EQ(scope.allocations_in_scope(), 0u);
  EXPECT_EQ(arena.chunk_count(), warmed);
}

}  // namespace
}  // namespace odns
