// Property / differential suite for the reflective-amplification
// campaign layer (docs/architecture.md, "Attack scenarios").
//
// Property bar: the amplification tables — and the raw injection and
// reflection logs they aggregate — must be byte-identical across shard
// counts (1, 2, 8), worker threads on and off, several seeds, and with
// the RRL and SAV defense toggles in every combination. RRL makes this
// non-trivial: a naive token bucket decides "who gets the last token"
// by same-instant arrival order, which is NOT shard-count-invariant;
// the per-instant gate + stateless slip hash in nodes::ratelimit is
// what the property pins down.
//
// Differential bar:
//  - RRL on never reflects more bytes per victim than RRL off for the
//    same world and seed (pass = same bytes, slip = smaller TC stub,
//    drop = zero).
//  - SAV at an attacker's origin AS drops exactly that attacker's
//    spoofed injections and nothing else: dropped_sav equals the
//    injection count, and the surviving reflection multiset equals the
//    baseline minus the reflections joined to the dropped injections
//    by (victim, dst_port == injection src_port).

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "classify/amplification.hpp"
#include "core/attack.hpp"
#include "core/census.hpp"
#include "honeypot/lab.hpp"
#include "nodes/forwarder.hpp"
#include "nodes/ratelimit.hpp"
#include "scan/amplification.hpp"
#include "testutil.hpp"

namespace odns {
namespace {

using netsim::HostId;
using netsim::SimConfig;
using netsim::SimCounters;
using nodes::TransparentForwarder;
using test::MiniWorld;
using util::Duration;
using util::Ipv4;
using util::Prefix;

std::vector<std::string> txt_filler(std::size_t bytes) {
  static constexpr char kPattern[] = "amplification-test-filler/";
  std::vector<std::string> strings;
  std::string chunk;
  for (std::size_t i = 0; i < bytes; ++i) {
    chunk.push_back(kPattern[i % (sizeof(kPattern) - 1)]);
    if (chunk.size() == 255) {
      strings.push_back(std::move(chunk));
      chunk.clear();
    }
  }
  if (!chunk.empty()) strings.push_back(std::move(chunk));
  return strings;
}

std::string render_injections(const std::vector<scan::Injection>& log) {
  std::ostringstream out;
  for (const auto& i : log) {
    out << i.at.nanos() << ' ' << i.victim.to_string() << ' '
        << i.reflector.to_string() << ' ' << i.attacker_as << ' '
        << i.src_port << ' ' << i.txid << ' ' << i.bytes << '\n';
  }
  return out.str();
}

std::string render_reflections(const std::vector<scan::Reflection>& log) {
  std::ostringstream out;
  for (const auto& r : log) {
    out << r.at.nanos() << ' ' << r.victim.to_string() << ' '
        << r.src.to_string() << ' ' << r.src_port << ' ' << r.dst_port << ' '
        << r.bytes << ' ' << r.truncated << '\n';
  }
  return out.str();
}

std::string render_counters(const SimCounters& c) {
  std::ostringstream out;
  out << c.sent << ' ' << c.delivered << ' ' << c.dropped_sav << ' '
      << c.dropped_loss << ' ' << c.dropped_no_route << ' ' << c.ttl_expired
      << ' ' << c.icmp_generated << ' ' << c.redirected << '\n';
  return out.str();
}

std::string render_rrl(const nodes::RrlStats& s) {
  std::ostringstream out;
  out << s.passed << ' ' << s.slipped << ' ' << s.dropped << '\n';
  return out.str();
}

/// Campaign knobs for the MiniWorld-level runs.
struct AmpOptions {
  int forwarders = 6;
  int attackers = 2;
  int victims = 2;
  std::size_t amp_txt_bytes = 600;
  /// Injection pacing. The RRL variants pace slowly (e.g. 40/s) so
  /// responses reach each victim's bucket at distinct instants: a
  /// full-rate burst coalesces on the resolver and responds in one
  /// instant, where the per-instant gate passes everyone by design
  /// (bounded debt) and only later instants get limited.
  std::uint64_t pps = 20000;
  nodes::RrlConfig rrl;       // rate == 0: RRL off
  bool sav_attacker0 = false; // egress SAV at the first attacker's AS
};

/// Everything one campaign run produced, plus the invariance
/// fingerprint the property tests compare.
struct AmpRun {
  std::vector<scan::Injection> injections;
  std::vector<scan::Reflection> reflections;
  std::vector<netsim::Asn> attacker_ases;
  SimCounters counters;       // attack-phase delta
  nodes::RrlStats rrl;
  classify::AmplificationReport report;

  SimCounters world_counters; // whole-run, for the trace digest pairing
  std::uint64_t trace_digest = 0;
  std::uint64_t events = 0;
};

std::string amp_fingerprint(const AmpRun& run) {
  std::string fp = run.report.fingerprint();
  fp += render_injections(run.injections);
  fp += render_reflections(run.reflections);
  fp += render_counters(run.counters);
  fp += render_rrl(run.rrl);
  fp += render_counters(run.world_counters);
  fp += std::to_string(run.trace_digest) + ' ' +
        std::to_string(run.events) + '\n';
  return fp;
}

/// MiniWorld + a TF row relaying to the open resolver + a fat TXT
/// rrset planted at amp.<scan name> on the auth zone, attacked from
/// dedicated SAV-free vantage ASes spoofing dedicated victim ASes.
AmpRun run_amp(SimConfig cfg, const AmpOptions& opt) {
  MiniWorld world(cfg);
  world.sim.set_packet_trace_enabled(true);

  std::vector<std::unique_ptr<TransparentForwarder>> tfs;
  std::vector<Ipv4> reflectors;
  for (int i = 0; i < opt.forwarders; ++i) {
    const Ipv4 addr{20, 0, 9, static_cast<std::uint8_t>(1 + i)};
    const HostId host = world.add_access_host(addr);
    tfs.push_back(std::make_unique<TransparentForwarder>(
        world.sim, host, test::kResolverAddr));
    tfs.back()->install();
    reflectors.push_back(addr);
  }

  const auto amp_name = *world.scan_name.prepend("amp");
  nodes::Zone* zone = world.auth->zone_for_mutable(amp_name);
  zone->add_record(dnswire::ResourceRecord::txt(
      amp_name, txt_filler(opt.amp_txt_bytes), zone->default_ttl));

  if (opt.rrl.rate > 0) world.resolver->set_rrl(opt.rrl);

  scan::AmplificationConfig ac;
  ac.qname = amp_name;
  ac.probes_per_second = opt.pps;
  scan::AmplificationCampaign campaign(world.sim, ac);

  AmpRun run;
  for (int i = 0; i < opt.attackers; ++i) {
    const Ipv4 base{198, 18, static_cast<std::uint8_t>(240 + i), 0};
    const Ipv4 addr{base.value() + 7};
    const bool sav = opt.sav_attacker0 && i == 0;
    const HostId host = honeypot::attach_vantage(world.sim.net(),
                                                 Prefix{base, 24}, addr, sav);
    campaign.add_attacker(host);
    run.attacker_ases.push_back(world.sim.net().host(host).asn);
  }
  for (int i = 0; i < opt.victims; ++i) {
    const Ipv4 base{198, 18, static_cast<std::uint8_t>(200 + i), 0};
    const Ipv4 addr{base.value() + 7};
    const HostId host = honeypot::attach_vantage(world.sim.net(),
                                                 Prefix{base, 24}, addr,
                                                 /*sav=*/true);
    campaign.add_victim(host, addr);
  }

  const SimCounters before = world.sim.counters();
  campaign.start(reflectors);
  campaign.run_to_completion();

  run.injections = campaign.injections();
  run.reflections = campaign.merged_reflections();
  run.counters = world.sim.counters();
  run.counters.sent -= before.sent;
  run.counters.delivered -= before.delivered;
  run.counters.dropped_sav -= before.dropped_sav;
  run.counters.dropped_loss -= before.dropped_loss;
  run.counters.dropped_no_route -= before.dropped_no_route;
  run.counters.ttl_expired -= before.ttl_expired;
  run.counters.icmp_generated -= before.icmp_generated;
  run.counters.redirected -= before.redirected;
  if (const auto* rrl = world.resolver->rrl()) run.rrl = rrl->stats();
  // No registry at MiniWorld scale: the per-AS table lands in the
  // unmapped (0) bucket; AS attribution is exercised at core level.
  run.report = classify::amplification_report(run.injections,
                                              run.reflections,
                                              registry::RegistrySnapshot{});
  run.world_counters = world.sim.counters();
  run.trace_digest = world.sim.canonical_trace_digest();
  run.events = world.sim.events_executed();
  return run;
}

SimConfig sharded_cfg(std::uint32_t shards, bool threads,
                      std::uint64_t seed = 2021) {
  SimConfig cfg;
  cfg.seed = seed;
  cfg.shards = shards;
  cfg.shard_threads = threads;
  return cfg;
}

TEST(AmplificationDeterminism, CampaignInvariantAcrossShardCounts) {
  for (const std::uint64_t seed : {1ull, 2021ull}) {
    for (const bool rrl_on : {false, true}) {
      AmpOptions opt;
      if (rrl_on) {
        opt.rrl = {/*rate=*/2, /*burst=*/2, /*slip=*/2};
        opt.pps = 40;  // distinct-instant arrivals: slip/drop verdicts
                       // land in the fingerprint too
      }
      const auto reference =
          amp_fingerprint(run_amp(sharded_cfg(1, false, seed), opt));
      ASSERT_FALSE(reference.empty());
      for (const std::uint32_t shards : {2u, 8u}) {
        for (const bool threads : {false, true}) {
          EXPECT_EQ(amp_fingerprint(
                        run_amp(sharded_cfg(shards, threads, seed), opt)),
                    reference)
              << "shards=" << shards << " threads=" << threads
              << " seed=" << seed << " rrl=" << rrl_on;
        }
      }
    }
  }
}

TEST(AmplificationDeterminism, DefensetogglesStayInvariantUnderSharding) {
  // RRL and SAV together: the hardest combination, since RRL state
  // only sees the injections SAV lets through.
  AmpOptions opt;
  opt.rrl = {/*rate=*/2, /*burst=*/2, /*slip=*/2};
  opt.pps = 40;
  opt.sav_attacker0 = true;
  const auto reference =
      amp_fingerprint(run_amp(sharded_cfg(1, false, 7), opt));
  for (const std::uint32_t shards : {2u, 8u}) {
    EXPECT_EQ(amp_fingerprint(run_amp(sharded_cfg(shards, true, 7), opt)),
              reference)
        << "shards=" << shards;
  }
}

TEST(AmplificationCampaign, ReflectsLargeResponsesOntoVictims) {
  const auto run = run_amp(sharded_cfg(1, false), AmpOptions{});
  // One injection per (victim, reflector) pair; every one answered.
  ASSERT_EQ(run.injections.size(), 12u);
  EXPECT_EQ(run.reflections.size(), 12u);
  // The join contract: reflections come back to the injection's port.
  std::set<std::pair<Ipv4, std::uint16_t>> sent;
  for (const auto& i : run.injections) sent.insert({i.victim, i.src_port});
  for (const auto& r : run.reflections) {
    EXPECT_TRUE(sent.contains({r.victim, r.dst_port}))
        << r.victim.to_string() << ':' << r.dst_port;
    // TF relay: the response source is the resolver, not the probed TF.
    EXPECT_EQ(r.src, test::kResolverAddr);
  }
  // A ~600-byte TXT rrset over a ~40-byte query: real amplification.
  ASSERT_EQ(run.report.victims.size(), 2u);
  for (const auto& v : run.report.victims) {
    EXPECT_EQ(v.queries, 6u);
    EXPECT_EQ(v.responses, 6u);
    EXPECT_GT(v.factor(), 5.0);
  }
  EXPECT_GT(run.report.overall_factor(), 5.0);
}

TEST(AmplificationDifferential, RrlNeverReflectsMoreBytesPerVictim) {
  for (const std::uint64_t seed : {3ull, 2021ull}) {
    AmpOptions off;
    off.pps = 40;
    const auto base = run_amp(sharded_cfg(1, false, seed), off);

    AmpOptions on = off;
    on.rrl = {/*rate=*/2, /*burst=*/2, /*slip=*/2};
    const auto limited = run_amp(sharded_cfg(1, false, seed), on);

    // Same campaign plan in both runs.
    ASSERT_EQ(render_injections(limited.injections),
              render_injections(base.injections));

    ASSERT_EQ(limited.report.victims.size(), base.report.victims.size());
    for (std::size_t i = 0; i < base.report.victims.size(); ++i) {
      const auto& was = base.report.victims[i];
      const auto& now = limited.report.victims[i];
      ASSERT_EQ(now.victim, was.victim);
      EXPECT_LE(now.bytes_reflected, was.bytes_reflected) << "seed=" << seed;
      EXPECT_LE(now.factor(), was.factor());
    }
    // 6 responses per victim against burst 2: the limiter engaged, and
    // with slip=2 both verdicts occur.
    EXPECT_LT(limited.report.total_bytes_reflected,
              base.report.total_bytes_reflected);
    EXPECT_GT(limited.rrl.passed, 0u);
    EXPECT_GT(limited.rrl.slipped, 0u);
    EXPECT_GT(limited.rrl.dropped, 0u);
    EXPECT_EQ(limited.report.total_truncated, limited.rrl.slipped);
    EXPECT_EQ(base.report.total_truncated, 0u);
    // Slip stubs are strictly smaller than the full response.
    for (const auto& r : limited.reflections) {
      if (r.truncated) {
        EXPECT_LT(r.bytes, 600u);
      }
    }
  }
}

/// Timing-free reflection identity: the fields that survive a world
/// re-run with a different defense toggle.
std::multiset<std::string> reflection_multiset(
    const std::vector<scan::Reflection>& log) {
  std::multiset<std::string> out;
  for (const auto& r : log) {
    out.insert(r.victim.to_string() + ' ' + r.src.to_string() + ' ' +
               std::to_string(r.dst_port) + ' ' + std::to_string(r.bytes) +
               ' ' + std::to_string(r.truncated));
  }
  return out;
}

TEST(AmplificationDifferential, SavDropsExactlyTheSpoofedInjections) {
  AmpOptions open;
  const auto base = run_amp(sharded_cfg(1, false, 5), open);
  ASSERT_EQ(base.counters.dropped_sav, 0u);

  AmpOptions sav = open;
  sav.sav_attacker0 = true;
  const auto defended = run_amp(sharded_cfg(1, false, 5), sav);

  // Identical plan; SAV acts on the wire, not on the schedule.
  ASSERT_EQ(render_injections(defended.injections),
            render_injections(base.injections));

  // Exactly attacker 0's injections die at the origin AS.
  const netsim::Asn atk0 = base.attacker_ases.at(0);
  std::uint64_t spoofed_from_atk0 = 0;
  std::set<std::pair<Ipv4, std::uint16_t>> dropped_ports;
  for (const auto& i : base.injections) {
    if (i.attacker_as == atk0) {
      ++spoofed_from_atk0;
      dropped_ports.insert({i.victim, i.src_port});
    }
  }
  ASSERT_GT(spoofed_from_atk0, 0u);
  EXPECT_EQ(defended.counters.dropped_sav, spoofed_from_atk0);

  // The surviving reflections are the baseline minus the ones joined
  // (victim, dst_port == src_port) to the dropped injections — nothing
  // else disappears, nothing new shows up.
  std::multiset<std::string> expected;
  for (const auto& r : base.reflections) {
    if (!dropped_ports.contains({r.victim, r.dst_port})) {
      expected.insert(r.victim.to_string() + ' ' + r.src.to_string() + ' ' +
                      std::to_string(r.dst_port) + ' ' +
                      std::to_string(r.bytes) + ' ' +
                      std::to_string(r.truncated));
    }
  }
  EXPECT_EQ(reflection_multiset(defended.reflections), expected);

  // Spent attacker bytes still count: SAV drives the factor down, it
  // does not shrink the denominator.
  EXPECT_EQ(defended.report.total_bytes_sent, base.report.total_bytes_sent);
  EXPECT_LT(defended.report.overall_factor(), base.report.overall_factor());
}

// ---------------------------------------------------------------------
// Core-level: census → attack scenario → defense sweeps, shard- and
// vantage-invariant end to end.

struct CoreAmpFingerprint {
  /// Tables + reflection log + counters + RRL verdicts: invariant
  /// across shard counts AND vantage counts.
  std::string stable;
  /// stable + injection log (attacker vantage ASNs depend on how many
  /// capture vantages were attached first, so this part is only
  /// invariant at a fixed vantage count).
  std::string full;
};

CoreAmpFingerprint core_attack(std::uint32_t shards, std::uint32_t vantages,
                               std::uint64_t seed, bool rrl_on,
                               std::uint32_t sav_k) {
  core::CensusConfig cfg;
  cfg.topology.scale = 0.003;
  cfg.topology.max_countries = 3;
  cfg.topology.seed = seed;
  cfg.topology.sim.seed = seed;
  cfg.sim_shards = shards;
  cfg.vantages = vantages;
  auto census = core::run_census(cfg);

  core::AttackScenarioConfig ac;
  ac.settle = Duration::seconds(10);
  if (rrl_on) ac.rrl = {/*rate=*/2, /*burst=*/2, /*slip=*/2};
  ac.sav_first_attackers = sav_k;
  const auto result = core::run_attack_scenario(census, ac);

  CoreAmpFingerprint fp;
  fp.stable = result.report.fingerprint();
  fp.stable += render_reflections(result.reflections);
  fp.stable += render_counters(result.counters);
  fp.stable += render_rrl(result.rrl);
  fp.full = fp.stable + render_injections(result.injections);
  return fp;
}

TEST(AttackScenario, TablesInvariantAcrossShardsAndVantages) {
  const auto reference = core_attack(1, 0, 11, false, 0);
  ASSERT_FALSE(reference.stable.empty());
  for (const std::uint32_t shards : {2u, 8u}) {
    EXPECT_EQ(core_attack(shards, 0, 11, false, 0).full, reference.full)
        << "shards=" << shards;
  }
  // Multi-vantage census first, then the same attack: the tables (and
  // even the reflection log) must not notice the capture fleet.
  EXPECT_EQ(core_attack(8, 2, 11, false, 0).stable, reference.stable);
}

TEST(AttackScenario, DefenseTogglesInvariantAcrossShards) {
  const auto rrl_ref = core_attack(1, 0, 11, true, 0);
  EXPECT_EQ(core_attack(8, 0, 11, true, 0).full, rrl_ref.full);
  const auto sav_ref = core_attack(1, 0, 11, false, 1);
  EXPECT_EQ(core_attack(8, 0, 11, false, 1).full, sav_ref.full);
  // The toggles actually changed the outcome (the property above is
  // not comparing empty-vs-empty).
  EXPECT_NE(rrl_ref.stable, sav_ref.stable);
}

core::CensusConfig sweep_census_cfg() {
  core::CensusConfig cfg;
  cfg.topology.scale = 0.003;
  cfg.topology.max_countries = 3;
  cfg.topology.seed = 11;
  cfg.topology.sim.seed = 11;
  return cfg;
}

TEST(AttackScenario, RrlDeploymentSweepAnswersTheWhatIf) {
  // The end-to-end what-if: how much attack volume does deploying RRL
  // at the top-N resolver ASes remove?
  core::AttackScenarioConfig ac;
  ac.settle = Duration::seconds(10);
  ac.rrl = {/*rate=*/1, /*burst=*/1, /*slip=*/2};
  const auto rows =
      core::sweep_rrl_deployment(sweep_census_cfg(), ac, {1, 64});
  ASSERT_EQ(rows.size(), 3u);

  // Undefended baseline: the campaign really amplifies.
  EXPECT_EQ(rows[0].label, "baseline");
  ASSERT_GT(rows[0].responses, 0u);
  EXPECT_GT(rows[0].factor, 1.0);
  EXPECT_EQ(rows[0].removed_vs_baseline, 0.0);

  // Wider deployment never reflects more; full deployment (top-64
  // covers every mapped resolver AS in a world this small) removes a
  // strictly positive share of the baseline volume.
  EXPECT_LE(rows[1].bytes_reflected, rows[0].bytes_reflected);
  EXPECT_LE(rows[2].bytes_reflected, rows[1].bytes_reflected);
  EXPECT_GT(rows[2].removed_vs_baseline, 0.0);
  EXPECT_GT(rows[2].truncated, 0u);  // the slip stubs are visible
  // Attacker spend is constant: the defense moves the numerator only.
  EXPECT_EQ(rows[1].bytes_sent, rows[0].bytes_sent);
  EXPECT_EQ(rows[2].bytes_sent, rows[0].bytes_sent);
}

TEST(AttackScenario, SavDeploymentSweepStarvesTheCampaign) {
  core::AttackScenarioConfig ac;
  ac.settle = Duration::seconds(10);
  const auto rows = core::sweep_sav_deployment(sweep_census_cfg(), ac);
  ASSERT_EQ(rows.size(), 3u);  // k = 0, 1, 2 attacker ASes

  ASSERT_GT(rows[0].bytes_reflected, 0u);
  EXPECT_LE(rows[1].bytes_reflected, rows[0].bytes_reflected);
  EXPECT_GT(rows[1].bytes_reflected, 0u);  // the other attacker still lands
  // SAV at every attacker AS: the campaign is fully starved, while the
  // spent bytes (the denominator) stay on the books.
  EXPECT_EQ(rows[2].bytes_reflected, 0u);
  EXPECT_EQ(rows[2].factor, 0.0);
  EXPECT_EQ(rows[2].bytes_sent, rows[0].bytes_sent);
  EXPECT_DOUBLE_EQ(rows[2].removed_vs_baseline, 1.0);
}

}  // namespace
}  // namespace odns
