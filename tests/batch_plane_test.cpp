// Equivalence suite for the batch packet plane (docs/architecture.md,
// "Batch packet plane"): with SimConfig::batch_delivery on, delivery
// cohorts are extracted as runs, routed through the per-shard route
// memo, and dispatched via App::on_batch — and every observable output
// must stay byte-identical to the scalar path. The properties pin:
//
//   * SimCounters, canonical trace digest, correlated transactions,
//     and events-executed for the MiniWorld scan workload, across
//     shard counts (1, 2, 8) × worker threads on/off × seeds × loss;
//   * the full classify::Census over a generated topology;
//   * the amplification campaign fingerprint (injections, reflections,
//     RRL verdicts) with the rate limiter on and off.
//
// Batching reorders nothing: runs preserve (time, shard, seq) order,
// and same-instant emission interleaving (which the canonical digest
// is already insensitive to, by design) is the only internal freedom.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "classify/analysis.hpp"
#include "core/census.hpp"
#include "honeypot/lab.hpp"
#include "nodes/forwarder.hpp"
#include "nodes/ratelimit.hpp"
#include "scan/amplification.hpp"
#include "scan/txscanner.hpp"
#include "testutil.hpp"

namespace odns {
namespace {

using netsim::HostId;
using netsim::SimConfig;
using netsim::SimCounters;
using nodes::TransparentForwarder;
using test::MiniWorld;
using util::Duration;
using util::Ipv4;
using util::Prefix;

struct RunFingerprint {
  SimCounters counters;
  std::uint64_t trace_digest = 0;
  std::string transactions;
  std::uint64_t events = 0;

  friend bool operator==(const RunFingerprint&, const RunFingerprint&) =
      default;
};

std::string render_transactions(const std::vector<scan::Transaction>& txns) {
  std::ostringstream out;
  for (const auto& t : txns) {
    out << t.target.to_string() << ' ' << t.answered << ' '
        << t.response_src.to_string() << ' ' << t.rtt.count_nanos() << ' '
        << static_cast<int>(t.rcode);
    for (const auto& a : t.answer_addrs) out << ' ' << a.to_string();
    out << '\n';
  }
  return out.str();
}

/// The sharded suite's scan workload: a row of transparent forwarders
/// relaying to the open resolver, the resolver, and one unresponsive
/// address — so batching sees relays, ICMP, resolver fan-out, and
/// mirror responses, not just the happy path.
RunFingerprint run_mini_scan(SimConfig cfg, int forwarders) {
  MiniWorld world(cfg);
  world.sim.set_packet_trace_enabled(true);

  std::vector<std::unique_ptr<TransparentForwarder>> tfs;
  std::vector<Ipv4> targets;
  for (int i = 0; i < forwarders; ++i) {
    const Ipv4 addr{20, 0, 9, static_cast<std::uint8_t>(1 + i)};
    const HostId host = world.add_access_host(addr);
    tfs.push_back(std::make_unique<TransparentForwarder>(
        world.sim, host, test::kResolverAddr));
    tfs.back()->install();
    targets.push_back(addr);
  }
  targets.push_back(test::kResolverAddr);
  targets.push_back(Ipv4{20, 0, 9, 200});  // unresponsive: ICMP path

  scan::ScanConfig sc;
  sc.qname = world.scan_name;
  sc.timeout = Duration::seconds(4);
  scan::TransactionalScanner scanner(world.sim, world.scanner_host, sc);
  scanner.start(targets);
  scanner.run_to_completion();

  RunFingerprint fp;
  fp.counters = world.sim.counters();
  fp.trace_digest = world.sim.canonical_trace_digest();
  fp.transactions = render_transactions(scanner.correlate());
  fp.events = world.sim.events_executed();
  return fp;
}

SimConfig make_cfg(std::uint32_t shards, bool threads, std::uint64_t seed,
                   double loss, bool batch) {
  SimConfig cfg;
  cfg.seed = seed;
  cfg.shards = shards;
  cfg.shard_threads = threads;
  cfg.loss_rate = loss;
  cfg.batch_delivery = batch;
  return cfg;
}

TEST(BatchPlane, ScanEqualsScalarAcrossShardsThreadsSeedsAndLoss) {
  for (const std::uint64_t seed : {1ull, 2021ull}) {
    for (const double loss : {0.0, 0.08}) {
      const RunFingerprint scalar =
          run_mini_scan(make_cfg(1, false, seed, loss, false), 6);
      ASSERT_FALSE(scalar.transactions.empty());
      for (const std::uint32_t shards : {1u, 2u, 8u}) {
        for (const bool threads : {false, true}) {
          if (shards == 1 && threads) continue;
          const RunFingerprint batched =
              run_mini_scan(make_cfg(shards, threads, seed, loss, true), 6);
          EXPECT_EQ(batched, scalar)
              << "shards=" << shards << " threads=" << threads
              << " seed=" << seed << " loss=" << loss;
        }
      }
    }
  }
}

/// Two scan waves against the same world; the second wave runs with
/// batching toggled off when `toggle_off_second` is set. Returns both
/// waves' transactions plus the end-of-run counters and trace digest.
/// (The waves legitimately differ from each other — wave two is served
/// from the resolver cache — so the property compares whole runs, not
/// wave one against wave two.)
std::string run_two_waves(bool toggle_off_second) {
  SimConfig cfg = make_cfg(1, false, 2021, 0.0, true);
  MiniWorld world(cfg);
  world.sim.set_packet_trace_enabled(true);
  EXPECT_TRUE(world.sim.batch_delivery_enabled());

  std::vector<std::unique_ptr<TransparentForwarder>> tfs;
  const Ipv4 addr{20, 0, 9, 1};
  const HostId host = world.add_access_host(addr);
  tfs.push_back(std::make_unique<TransparentForwarder>(world.sim, host,
                                                       test::kResolverAddr));
  tfs.back()->install();

  scan::ScanConfig sc;
  sc.qname = world.scan_name;
  sc.timeout = Duration::seconds(4);

  std::ostringstream out;
  scan::TransactionalScanner first(world.sim, world.scanner_host, sc);
  first.start({addr});
  first.run_to_completion();
  out << render_transactions(first.correlate());

  if (toggle_off_second) world.sim.set_batch_delivery_enabled(false);
  EXPECT_EQ(world.sim.batch_delivery_enabled(), !toggle_off_second);
  scan::TransactionalScanner second(world.sim, world.scanner_host, sc);
  second.start({addr});
  second.run_to_completion();
  out << render_transactions(second.correlate());

  const SimCounters& c = world.sim.counters();
  out << c.sent << ' ' << c.delivered << ' ' << c.icmp_generated << '\n';
  out << world.sim.canonical_trace_digest() << ' '
      << world.sim.events_executed() << '\n';
  return out.str();
}

TEST(BatchPlane, ToggleIsSafeBetweenRuns) {
  // The switch is a pure execution-strategy lever: flipping it mid-run,
  // between scan waves, must leave every observable unchanged versus a
  // run that kept batching on throughout.
  EXPECT_EQ(run_two_waves(/*toggle_off_second=*/true),
            run_two_waves(/*toggle_off_second=*/false));
}

std::string census_fingerprint_text(const classify::Census& census) {
  std::ostringstream out;
  out << census.rr << '/' << census.rf << '/' << census.tf << '/'
      << census.invalid << '/' << census.unresponsive << '/'
      << census.unmapped_country << '\n';
  for (const auto& [code, report] : census.by_country) {
    out << code << ':' << report.rr << ',' << report.rf << ',' << report.tf
        << ',' << report.invalid << ',' << report.unresponsive << ','
        << report.ases_with_tf << ',' << report.other_indirect << ','
        << report.other_mapped;
    for (const auto count : report.tf_by_project) out << ',' << count;
    out << '\n';
  }
  return out.str();
}

std::string census_with_batching(bool batch, std::uint32_t shards,
                                 double loss) {
  core::CensusConfig cfg;
  cfg.topology.scale = 0.003;
  cfg.topology.max_countries = 3;
  cfg.topology.sim.loss_rate = loss;
  cfg.topology.sim.batch_delivery = batch;
  cfg.sim_shards = shards;
  cfg.shard_interleaved_targets = true;
  const auto result = core::run_census(cfg);
  std::string fp = census_fingerprint_text(result.census);
  fp += render_transactions(result.transactions);
  return fp;
}

TEST(BatchPlane, CensusPipelineEqualsScalar) {
  for (const double loss : {0.0, 0.05}) {
    const std::string reference = census_with_batching(false, 1, loss);
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(census_with_batching(true, 1, loss), reference) << loss;
    EXPECT_EQ(census_with_batching(true, 8, loss), reference) << loss;
  }
}

std::vector<std::string> txt_filler(std::size_t bytes) {
  static constexpr char kPattern[] = "batch-plane-test-filler/";
  std::vector<std::string> strings;
  std::string chunk;
  for (std::size_t i = 0; i < bytes; ++i) {
    chunk.push_back(kPattern[i % (sizeof(kPattern) - 1)]);
    if (chunk.size() == 255) {
      strings.push_back(std::move(chunk));
      chunk.clear();
    }
  }
  if (!chunk.empty()) strings.push_back(std::move(chunk));
  return strings;
}

/// Amplification campaign fingerprint: injection/reflection logs plus
/// RRL verdicts — the outputs most sensitive to delivery-order bugs,
/// since same-instant response bursts are exactly what batching packs.
std::string run_amp_fingerprint(SimConfig cfg, bool rrl_on) {
  MiniWorld world(cfg);
  world.sim.set_packet_trace_enabled(true);

  std::vector<std::unique_ptr<TransparentForwarder>> tfs;
  std::vector<Ipv4> reflectors;
  for (int i = 0; i < 6; ++i) {
    const Ipv4 addr{20, 0, 9, static_cast<std::uint8_t>(1 + i)};
    const HostId host = world.add_access_host(addr);
    tfs.push_back(std::make_unique<TransparentForwarder>(
        world.sim, host, test::kResolverAddr));
    tfs.back()->install();
    reflectors.push_back(addr);
  }

  const auto amp_name = *world.scan_name.prepend("amp");
  nodes::Zone* zone = world.auth->zone_for_mutable(amp_name);
  zone->add_record(dnswire::ResourceRecord::txt(amp_name, txt_filler(600),
                                                zone->default_ttl));
  if (rrl_on) {
    world.resolver->set_rrl({/*rate=*/2, /*burst=*/2, /*slip=*/2});
  }

  scan::AmplificationConfig ac;
  ac.qname = amp_name;
  ac.probes_per_second = rrl_on ? 40 : 20000;
  scan::AmplificationCampaign campaign(world.sim, ac);
  for (int i = 0; i < 2; ++i) {
    const Ipv4 base{198, 18, static_cast<std::uint8_t>(240 + i), 0};
    const HostId host = honeypot::attach_vantage(
        world.sim.net(), Prefix{base, 24}, Ipv4{base.value() + 7},
        /*sav=*/false);
    campaign.add_attacker(host);
  }
  for (int i = 0; i < 2; ++i) {
    const Ipv4 base{198, 18, static_cast<std::uint8_t>(200 + i), 0};
    const Ipv4 addr{base.value() + 7};
    const HostId host = honeypot::attach_vantage(world.sim.net(),
                                                 Prefix{base, 24}, addr,
                                                 /*sav=*/true);
    campaign.add_victim(host, addr);
  }
  campaign.start(reflectors);
  campaign.run_to_completion();

  std::ostringstream out;
  for (const auto& i : campaign.injections()) {
    out << i.at.nanos() << ' ' << i.victim.to_string() << ' '
        << i.reflector.to_string() << ' ' << i.attacker_as << ' '
        << i.src_port << ' ' << i.txid << ' ' << i.bytes << '\n';
  }
  for (const auto& r : campaign.merged_reflections()) {
    out << r.at.nanos() << ' ' << r.victim.to_string() << ' '
        << r.src.to_string() << ' ' << r.src_port << ' ' << r.dst_port << ' '
        << r.bytes << ' ' << r.truncated << '\n';
  }
  if (const auto* rrl = world.resolver->rrl()) {
    out << rrl->stats().passed << ' ' << rrl->stats().slipped << ' '
        << rrl->stats().dropped << '\n';
  }
  const SimCounters& c = world.sim.counters();
  out << c.sent << ' ' << c.delivered << ' ' << c.dropped_sav << ' '
      << c.dropped_loss << ' ' << c.dropped_no_route << ' ' << c.ttl_expired
      << ' ' << c.icmp_generated << ' ' << c.redirected << '\n';
  out << world.sim.canonical_trace_digest() << ' '
      << world.sim.events_executed() << '\n';
  return out.str();
}

TEST(BatchPlane, AmplificationCampaignEqualsScalar) {
  for (const bool rrl_on : {false, true}) {
    const std::string reference =
        run_amp_fingerprint(make_cfg(1, false, 2021, 0.0, false), rrl_on);
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(run_amp_fingerprint(make_cfg(1, false, 2021, 0.0, true), rrl_on),
              reference)
        << "rrl=" << rrl_on;
    EXPECT_EQ(run_amp_fingerprint(make_cfg(8, true, 2021, 0.0, true), rrl_on),
              reference)
        << "rrl=" << rrl_on;
  }
}

}  // namespace
}  // namespace odns
