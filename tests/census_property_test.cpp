// Property suite over the full census pipeline: invariants that must
// hold for every (seed, scale) combination — conservation, rule
// consistency, determinism, and classifier/ground-truth agreement.

#include <gtest/gtest.h>

#include <unordered_map>

#include "core/census.hpp"

namespace odns::core {
namespace {

using classify::Klass;
using topo::OdnsKind;
using util::Ipv4;

struct CensusCase {
  std::uint64_t seed;
  double scale;
};

class CensusProperty : public ::testing::TestWithParam<CensusCase> {
 protected:
  static CensusResult run(const CensusCase& c) {
    CensusConfig cfg;
    cfg.topology.scale = c.scale;
    cfg.topology.seed = c.seed;
    cfg.topology.max_countries = 25;  // keep each case fast
    return run_census(cfg);
  }
};

TEST_P(CensusProperty, ProbeResponseConservation) {
  const auto result = run(GetParam());
  // One transaction per ground-truth component; nothing unmatched.
  EXPECT_EQ(result.transactions.size(), result.world->ground_truth().size());
  EXPECT_EQ(result.scanner->stats().responses_unmatched, 0u);
  // Classified counts partition the transactions.
  const auto& c = result.census;
  EXPECT_EQ(c.rr + c.rf + c.tf + c.invalid + c.unresponsive,
            result.transactions.size());
}

TEST_P(CensusProperty, RuleConsistency) {
  const auto result = run(GetParam());
  for (const auto& item : result.classified) {
    switch (item.klass) {
      case Klass::transparent_forwarder:
        // Defining observable: answer from a third party.
        EXPECT_NE(item.txn.target, item.txn.response_src);
        break;
      case Klass::recursive_resolver:
        EXPECT_EQ(item.txn.target, item.txn.response_src);
        ASSERT_TRUE(item.txn.dynamic_a().has_value());
        EXPECT_EQ(*item.txn.dynamic_a(), item.txn.target);
        break;
      case Klass::recursive_forwarder:
        EXPECT_EQ(item.txn.target, item.txn.response_src);
        ASSERT_TRUE(item.txn.dynamic_a().has_value());
        EXPECT_NE(*item.txn.dynamic_a(), item.txn.target);
        break;
      case Klass::invalid:
      case Klass::unresponsive:
        break;
    }
    // Strict validation: every accepted answer carries the unaltered
    // control record.
    if (item.klass == Klass::transparent_forwarder ||
        item.klass == Klass::recursive_forwarder ||
        item.klass == Klass::recursive_resolver) {
      ASSERT_TRUE(item.txn.control_a().has_value());
      EXPECT_EQ(*item.txn.control_a(), result.world->control_addr());
    }
  }
}

TEST_P(CensusProperty, GroundTruthAgreement) {
  const auto result = run(GetParam());
  std::unordered_map<Ipv4, Klass> by_addr;
  for (const auto& item : result.classified) {
    by_addr[item.txn.target] = item.klass;
  }
  std::uint64_t mismatches = 0;
  for (const auto& gt : result.world->ground_truth()) {
    const auto klass = by_addr.at(gt.addr);
    if (gt.kind == OdnsKind::transparent_forwarder) {
      mismatches += klass != Klass::transparent_forwarder;
    } else if (gt.kind == OdnsKind::recursive_resolver) {
      mismatches += klass != Klass::recursive_resolver;
    } else if (!gt.chained) {  // clean recursive forwarders
      mismatches += klass != Klass::recursive_forwarder;
    } else {  // manipulating forwarders must be rejected
      mismatches += klass != Klass::invalid;
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

TEST_P(CensusProperty, DeterministicGivenSeed) {
  const auto a = run(GetParam());
  const auto b = run(GetParam());
  EXPECT_EQ(a.census.rr, b.census.rr);
  EXPECT_EQ(a.census.rf, b.census.rf);
  EXPECT_EQ(a.census.tf, b.census.tf);
  EXPECT_EQ(a.census.invalid, b.census.invalid);
  ASSERT_EQ(a.transactions.size(), b.transactions.size());
  for (std::size_t i = 0; i < a.transactions.size(); i += 131) {
    EXPECT_EQ(a.transactions[i].target, b.transactions[i].target);
    EXPECT_EQ(a.transactions[i].response_src, b.transactions[i].response_src);
  }
}

TEST_P(CensusProperty, TransparentForwardersRespondViaTheirUpstream) {
  const auto result = run(GetParam());
  std::unordered_map<Ipv4, const topo::GroundTruth*> gt_by_addr;
  for (const auto& gt : result.world->ground_truth()) {
    gt_by_addr[gt.addr] = &gt;
  }
  for (const auto& item : result.classified) {
    if (item.klass != Klass::transparent_forwarder) continue;
    const auto* gt = gt_by_addr.at(item.txn.target);
    if (gt->chained) continue;
    if (auto project = classify::project_of_service_addr(gt->upstream)) {
      // Relay to a big-4 anycast address: the response source is one of
      // that project's service addresses.
      const auto seen = classify::project_of_service_addr(
          item.txn.response_src);
      ASSERT_TRUE(seen.has_value());
      EXPECT_EQ(*seen, *project);
    } else {
      // National resolver: the response comes from exactly that host.
      EXPECT_EQ(item.txn.response_src, gt->upstream);
    }
  }
}

TEST_P(CensusProperty, RelaxedValidationNeverShrinksTheOdns) {
  const auto result = run(GetParam());
  const auto relaxed = reanalyze(result, /*strict=*/false);
  EXPECT_GE(relaxed.odns_total(), result.census.odns_total());
  EXPECT_EQ(relaxed.tf, result.census.tf);
  EXPECT_EQ(relaxed.invalid, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndScales, CensusProperty,
    ::testing::Values(CensusCase{1, 0.002}, CensusCase{2, 0.002},
                      CensusCase{3, 0.004}, CensusCase{77, 0.003},
                      CensusCase{2021, 0.002}, CensusCase{424242, 0.005}),
    [](const ::testing::TestParamInfo<CensusCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_scale" +
             std::to_string(static_cast<int>(info.param.scale * 10000));
    });

}  // namespace
}  // namespace odns::core
