#include <gtest/gtest.h>

#include "classify/analysis.hpp"
#include "classify/classify.hpp"

namespace odns::classify {
namespace {

using scan::Transaction;
using util::Ipv4;

constexpr Ipv4 kControl{198, 51, 100, 200};
constexpr Ipv4 kTarget{20, 0, 0, 1};
constexpr Ipv4 kResolver{8, 8, 8, 8};

ClassifyConfig strict_cfg() {
  ClassifyConfig cfg;
  cfg.control_addr = kControl;
  cfg.strict_two_records = true;
  return cfg;
}

Transaction answered(Ipv4 target, Ipv4 response_src,
                     std::vector<Ipv4> answers) {
  Transaction txn;
  txn.target = target;
  txn.answered = true;
  txn.response_src = response_src;
  txn.answer_addrs = std::move(answers);
  return txn;
}

// ---------------------------------------------------------------------
// §4.1 rules, exhaustively
// ---------------------------------------------------------------------

TEST(ClassifyRules, TransparentForwarderWhenSourcesDiffer) {
  const auto txn = answered(kTarget, kResolver, {kResolver, kControl});
  EXPECT_EQ(classify_one(txn, strict_cfg()), Klass::transparent_forwarder);
}

TEST(ClassifyRules, RecursiveResolverWhenMirrorMatches) {
  const auto txn = answered(kTarget, kTarget, {kTarget, kControl});
  EXPECT_EQ(classify_one(txn, strict_cfg()), Klass::recursive_resolver);
}

TEST(ClassifyRules, RecursiveForwarderWhenMirrorDiffers) {
  const auto txn = answered(kTarget, kTarget, {kResolver, kControl});
  EXPECT_EQ(classify_one(txn, strict_cfg()), Klass::recursive_forwarder);
}

TEST(ClassifyRules, UnansweredIsUnresponsive) {
  Transaction txn;
  txn.target = kTarget;
  EXPECT_EQ(classify_one(txn, strict_cfg()), Klass::unresponsive);
}

TEST(ClassifyRules, RefusedIsUnresponsive) {
  auto txn = answered(kTarget, kTarget, {});
  txn.rcode = dnswire::Rcode::refused;
  EXPECT_EQ(classify_one(txn, strict_cfg()), Klass::unresponsive);
}

TEST(ClassifyRules, StrictRejectsMissingControlRecord) {
  const auto txn = answered(kTarget, kTarget, {kResolver});
  EXPECT_EQ(classify_one(txn, strict_cfg()), Klass::invalid);
}

TEST(ClassifyRules, StrictRejectsAlteredControlRecord) {
  const auto txn =
      answered(kTarget, kTarget, {kResolver, Ipv4{203, 0, 113, 99}});
  EXPECT_EQ(classify_one(txn, strict_cfg()), Klass::invalid);
}

TEST(ClassifyRules, RelaxedAcceptsSingleRecord) {
  ClassifyConfig relaxed = strict_cfg();
  relaxed.strict_two_records = false;
  const auto txn = answered(kTarget, kTarget, {kResolver});
  EXPECT_EQ(classify_one(txn, relaxed), Klass::recursive_forwarder);
}

TEST(ClassifyRules, RelaxedStillRequiresAnyAnswer) {
  ClassifyConfig relaxed = strict_cfg();
  relaxed.strict_two_records = false;
  const auto txn = answered(kTarget, kTarget, {});
  EXPECT_EQ(classify_one(txn, relaxed), Klass::unresponsive);
}

/// Property sweep: the three §4.1 outcomes partition all valid
/// two-record transactions.
struct RuleCase {
  Ipv4 response_src;
  Ipv4 mirror;
  Klass expected;
};

class RulePartition : public ::testing::TestWithParam<RuleCase> {};

TEST_P(RulePartition, MatchesPaperRules) {
  const auto& c = GetParam();
  const auto txn = answered(kTarget, c.response_src, {c.mirror, kControl});
  EXPECT_EQ(classify_one(txn, strict_cfg()), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Partition, RulePartition,
    ::testing::Values(
        // target != response → transparent, regardless of mirror
        RuleCase{kResolver, kResolver, Klass::transparent_forwarder},
        RuleCase{kResolver, kTarget, Klass::transparent_forwarder},
        RuleCase{Ipv4{20, 0, 9, 9}, kControl, Klass::transparent_forwarder},
        // target == response, mirror == response → recursive resolver
        RuleCase{kTarget, kTarget, Klass::recursive_resolver},
        // target == response, mirror != response → recursive forwarder
        RuleCase{kTarget, kResolver, Klass::recursive_forwarder},
        RuleCase{kTarget, Ipv4{9, 9, 9, 9}, Klass::recursive_forwarder}));

// ---------------------------------------------------------------------
// Project attribution
// ---------------------------------------------------------------------

TEST(ProjectAttribution, KnownServiceAddresses) {
  EXPECT_EQ(project_of_service_addr(Ipv4{8, 8, 8, 8}),
            topo::ResolverProject::google);
  EXPECT_EQ(project_of_service_addr(Ipv4{8, 8, 4, 4}),
            topo::ResolverProject::google);
  EXPECT_EQ(project_of_service_addr(Ipv4{1, 1, 1, 1}),
            topo::ResolverProject::cloudflare);
  EXPECT_EQ(project_of_service_addr(Ipv4{9, 9, 9, 9}),
            topo::ResolverProject::quad9);
  EXPECT_EQ(project_of_service_addr(Ipv4{208, 67, 222, 222}),
            topo::ResolverProject::opendns);
  EXPECT_FALSE(project_of_service_addr(Ipv4{195, 175, 39, 69}).has_value());
}

// ---------------------------------------------------------------------
// Census aggregation over a synthetic registry
// ---------------------------------------------------------------------

registry::RegistrySnapshot tiny_registry() {
  registry::RegistrySnapshot snap;
  snap.routeviews.add(util::Prefix{Ipv4{20, 0, 0, 0}, 16}, 64512);
  snap.routeviews.add(util::Prefix{Ipv4{20, 1, 0, 0}, 16}, 64513);
  snap.routeviews.add(util::Prefix{Ipv4{74, 125, 0, 0}, 16}, 15169);
  snap.routeviews.add(util::Prefix{Ipv4{195, 175, 39, 0}, 24}, 9121);
  snap.whois.add(64512, "BRA");
  snap.whois.add(64513, "TUR");
  snap.whois.add(9121, "TUR");
  snap.project_asns[15169] = topo::ResolverProject::google;
  return snap;
}

std::vector<Classified> classify_txns(std::vector<Transaction> txns) {
  return classify_all(txns, strict_cfg());
}

TEST(CensusAnalysis, AggregatesPerCountry) {
  // BRA: one TF via Google; TUR: one TF via a national resolver whose
  // mirror record maps into Google's AS (indirect consolidation).
  const Ipv4 tur_tf{20, 1, 0, 7};
  const Ipv4 tur_resolver{195, 175, 39, 69};
  auto census = analyze(
      classify_txns({
          answered(kTarget, Ipv4{8, 8, 8, 8},
                   {Ipv4{74, 125, 0, 10}, kControl}),       // BRA TF → Google
          answered(tur_tf, tur_resolver,
                   {Ipv4{74, 125, 0, 11}, kControl}),       // TUR TF → other
          answered(Ipv4{20, 0, 0, 2}, Ipv4{20, 0, 0, 2},
                   {Ipv4{20, 0, 0, 2}, kControl}),          // BRA RR
      }),
      tiny_registry());

  EXPECT_EQ(census.tf, 2u);
  EXPECT_EQ(census.rr, 1u);
  EXPECT_EQ(census.odns_total(), 3u);
  ASSERT_TRUE(census.by_country.contains("BRA"));
  ASSERT_TRUE(census.by_country.contains("TUR"));
  const auto& bra = census.by_country.at("BRA");
  EXPECT_EQ(bra.tf, 1u);
  EXPECT_EQ(bra.rr, 1u);
  EXPECT_EQ(bra.tf_by_project[project_index(topo::ResolverProject::google)],
            1u);
  const auto& tur = census.by_country.at("TUR");
  EXPECT_EQ(tur.tf, 1u);
  EXPECT_EQ(tur.tf_by_project[project_index(topo::ResolverProject::other)],
            1u);
  EXPECT_EQ(tur.other_indirect, 1u);  // mirror in Google AS
  ASSERT_TRUE(tur.top_other_asn().has_value());
  EXPECT_EQ(*tur.top_other_asn(), 9121u);
}

TEST(CensusAnalysis, PrefixDensityFractions) {
  std::vector<Transaction> txns;
  // 4 TFs in one /24 (dense-ish) + 1 lone TF in another.
  for (int i = 1; i <= 4; ++i) {
    txns.push_back(answered(Ipv4{20, 0, 0, static_cast<std::uint8_t>(i)},
                            Ipv4{8, 8, 8, 8},
                            {Ipv4{74, 125, 0, 10}, kControl}));
  }
  txns.push_back(answered(Ipv4{20, 0, 7, 1}, Ipv4{8, 8, 8, 8},
                          {Ipv4{74, 125, 0, 10}, kControl}));
  const auto census = analyze(classify_txns(std::move(txns)), tiny_registry());
  EXPECT_EQ(census.tf_per_24.size(), 2u);
  EXPECT_DOUBLE_EQ(census.tf_fraction_with_density_at_most(1), 0.2);
  EXPECT_DOUBLE_EQ(census.tf_fraction_with_density_at_most(4), 1.0);
  EXPECT_DOUBLE_EQ(census.tf_fraction_with_density_at_least(4), 0.8);
}

TEST(CensusAnalysis, UnmappedAddressesCounted) {
  auto census = analyze(
      classify_txns({answered(Ipv4{123, 45, 67, 89}, Ipv4{123, 45, 67, 89},
                              {Ipv4{123, 45, 67, 89}, kControl})}),
      tiny_registry());
  EXPECT_EQ(census.rr, 1u);
  EXPECT_EQ(census.unmapped_country, 1u);
  EXPECT_TRUE(census.by_country.empty());
}

TEST(CensusAnalysis, InvalidExcludedFromCountryComposition) {
  auto census = analyze(
      classify_txns({answered(kTarget, kTarget, {kTarget})}),  // one record
      tiny_registry());
  EXPECT_EQ(census.invalid, 1u);
  EXPECT_EQ(census.odns_total(), 0u);
  EXPECT_TRUE(census.by_country.empty());
}

TEST(CensusAnalysis, ResolverFanOutTracked) {
  std::vector<Transaction> txns;
  for (int i = 1; i <= 3; ++i) {
    txns.push_back(answered(Ipv4{20, 0, 1, static_cast<std::uint8_t>(i)},
                            Ipv4{8, 8, 8, 8},
                            {Ipv4{74, 125, 0, 10}, kControl}));
  }
  const auto census = analyze(classify_txns(std::move(txns)), tiny_registry());
  ASSERT_TRUE(census.tf_responses_by_source.contains(Ipv4{8, 8, 8, 8}));
  EXPECT_EQ(census.tf_responses_by_source.at(Ipv4{8, 8, 8, 8}), 3u);
}

TEST(CensusAnalysis, TopAsesOrderedByTfCount) {
  std::vector<Transaction> txns;
  for (int i = 1; i <= 3; ++i) {
    txns.push_back(answered(Ipv4{20, 0, 0, static_cast<std::uint8_t>(i)},
                            kResolver, {Ipv4{74, 125, 0, 10}, kControl}));
  }
  txns.push_back(answered(Ipv4{20, 1, 0, 1}, kResolver,
                          {Ipv4{74, 125, 0, 10}, kControl}));
  const auto census = analyze(classify_txns(std::move(txns)), tiny_registry());
  const auto top = census.top_tf_ases(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 64512u);
  EXPECT_EQ(top[0].second, 3u);
}

}  // namespace
}  // namespace odns::classify
