#include <gtest/gtest.h>

#include "dnsroute/dnsroute.hpp"
#include "nodes/forwarder.hpp"
#include "testutil.hpp"

namespace odns::dnsroute {
namespace {

using nodes::TransparentForwarder;
using test::MiniWorld;
using util::Ipv4;
using util::Prefix;

class DnsrouteFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    tf_addr = Ipv4{20, 0, 8, 1};
    const auto tf_host = world.add_access_host(tf_addr);
    tf = std::make_unique<TransparentForwarder>(world.sim, tf_host,
                                                test::kResolverAddr);
    tf->install();
  }

  DnsrouteConfig config(int max_ttl = 20) {
    DnsrouteConfig cfg;
    cfg.qname = world.scan_name;
    cfg.max_ttl = max_ttl;
    return cfg;
  }

  registry::RegistrySnapshot registry_view() {
    registry::RegistrySnapshot snap;
    const auto& net = world.sim.net();
    for (const auto& [prefix, asn] : net.announced_prefixes()) {
      snap.routeviews.add(prefix, asn);
    }
    for (const auto asn : net.all_asns()) {
      for (const auto ip : net.find_as(asn)->router_ips) {
        snap.routeviews.add(Prefix{ip, 32}, asn);
      }
    }
    snap.project_asns[test::kResolverAsn] = topo::ResolverProject::google;
    return snap;
  }

  MiniWorld world;
  Ipv4 tf_addr;
  std::unique_ptr<TransparentForwarder> tf;
};

TEST_F(DnsrouteFixture, SeesThroughTheForwarder) {
  DnsroutePlusPlus tracer(world.sim, world.scanner_host, config());
  const auto paths = tracer.run({tf_addr});
  ASSERT_EQ(paths.size(), 1u);
  const auto& path = paths[0];

  // scanner AS (1 hop) + tier1 (2) + access (1) = 4 routers, then the
  // device itself → target_distance 5.
  EXPECT_EQ(path.target_distance, 5);
  EXPECT_TRUE(path.got_answer);
  EXPECT_EQ(path.resolver, test::kResolverAddr);
  // Behind the device: access(1)+tier1(2)+resolver AS(1) = 4 routers,
  // resolver answers at TTL 5+4+1 = 10; hops = 10-5 = 5 (4 routers +
  // resolver itself).
  EXPECT_EQ(path.answer_ttl, 10);
  EXPECT_EQ(path.forwarder_to_resolver_hops(), 5);
  EXPECT_TRUE(path.complete());
}

TEST_F(DnsrouteFixture, HopsBeforeTargetBelongToTransitAses) {
  DnsroutePlusPlus tracer(world.sim, world.scanner_host, config());
  const auto paths = tracer.run({tf_addr});
  const auto& path = paths[0];
  const auto& net = world.sim.net();
  // Hops 1..4 are router addresses; hop 5 is the device.
  for (int t = 1; t < path.target_distance; ++t) {
    const auto& hop = path.hops[static_cast<std::size_t>(t - 1)];
    ASSERT_TRUE(hop.responded) << "ttl " << t;
    EXPECT_TRUE(net.router_owner(hop.addr).has_value());
  }
  EXPECT_EQ(path.hops[4].addr, tf_addr);
}

TEST_F(DnsrouteFixture, OrdinaryResolverYieldsNoBeyondHops) {
  // Against a recursive resolver (not transparent), the DNS answer
  // arrives as soon as the TTL reaches the host; nothing lies beyond.
  DnsroutePlusPlus tracer(world.sim, world.scanner_host, config());
  const auto paths = tracer.run({test::kResolverAddr});
  const auto& path = paths[0];
  EXPECT_TRUE(path.got_answer);
  // scanner(1)+tier1(2)+resolver(1)=4 routers → answer at TTL 5.
  EXPECT_EQ(path.answer_ttl, 5);
  // The resolver host never emits TTL-exceeded for delivered probes;
  // target_distance stays unset → not a transparent-forwarder path.
  EXPECT_EQ(path.target_distance, -1);
  EXPECT_FALSE(path.complete());
}

TEST_F(DnsrouteFixture, PathLengthSamplesAttributeProjects) {
  DnsroutePlusPlus tracer(world.sim, world.scanner_host, config());
  const auto paths = tracer.run({tf_addr});
  const auto samples = path_length_samples(paths, registry_view());
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].project, topo::ResolverProject::google);
  EXPECT_EQ(samples[0].hops, 5);
  EXPECT_EQ(samples[0].forwarder_asn, test::kAccessAsn);
}

TEST_F(DnsrouteFixture, LossMakesPathsIncompleteAndSanitized) {
  netsim::SimConfig cfg;
  cfg.loss_rate = 0.35;
  cfg.seed = 11;
  MiniWorld lossy(cfg);
  const auto tf_host = lossy.add_access_host(Ipv4{20, 0, 8, 1});
  TransparentForwarder lossy_tf(lossy.sim, tf_host, test::kResolverAddr);
  lossy_tf.install();

  DnsrouteConfig rc;
  rc.qname = lossy.scan_name;
  rc.max_ttl = 20;
  DnsroutePlusPlus tracer(lossy.sim, lossy.scanner_host, rc);
  std::vector<Ipv4> targets(40, Ipv4{20, 0, 8, 1});
  // Re-probing the same target 40 times: each run may lose probes.
  // (Targets deduplicate per index; paths are independent records.)
  const auto paths = tracer.run(targets);
  int complete = 0;
  for (const auto& p : paths) {
    if (p.complete()) ++complete;
  }
  // With 35% loss most paths have gaps; sanitization must reject them.
  EXPECT_LT(complete, 40);
}

TEST_F(DnsrouteFixture, InfersProviderCustomerRelationships) {
  DnsroutePlusPlus tracer(world.sim, world.scanner_host, config());
  const auto paths = tracer.run({tf_addr});
  auto snap = registry_view();
  const auto report = infer_relationships(paths, snap);
  EXPECT_EQ(report.paths_considered, 1u);
  EXPECT_EQ(report.paths_with_as_mapping, 1u);
  // Before the forwarder: tier-1 routers; after: the access AS's own
  // routers then tier-1 again → AS_in == AS_out == tier-1.
  EXPECT_EQ(report.as_in_equals_as_out, 1u);
  EXPECT_EQ(report.inferred_provider_customer, 1u);
  // Our registry_view has no CAIDA edges at all → discovery.
  EXPECT_EQ(report.unknown_to_caida, 1u);
}

TEST_F(DnsrouteFixture, KnownCaidaEdgesNotCountedAsDiscoveries) {
  DnsroutePlusPlus tracer(world.sim, world.scanner_host, config());
  const auto paths = tracer.run({tf_addr});
  auto snap = registry_view();
  snap.caida.add(test::kTier1Asn, test::kAccessAsn);
  const auto report = infer_relationships(paths, snap);
  EXPECT_EQ(report.inferred_provider_customer, 1u);
  EXPECT_EQ(report.unknown_to_caida, 0u);
}

}  // namespace
}  // namespace odns::dnsroute
