// Differential proof that the arena codec (dnswire/arena_codec.hpp) is
// observationally identical to the heap codec it shadows, over large
// seeded corpora:
//
//   heap encode → arena decode → arena encode   == heap encode bytes
//   heap encode → arena decode → materialize()  == heap decode fields
//   view_of(heap Message) → arena encode        == heap encode bytes
//
// The corpus is adversarial on purpose: shared suffixes and mixed-case
// owners (compression pointers with case-folded keys), OPT pseudo-
// records, RawRecords of unmodeled types, empty sections, and every
// header flag randomized. 10k+ cases across independent seeds.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dnswire/arena.hpp"
#include "dnswire/arena_codec.hpp"
#include "dnswire/codec.hpp"
#include "dnswire/message.hpp"
#include "util/rng.hpp"

namespace odns {
namespace {

using dnswire::Message;
using dnswire::Name;
using dnswire::OptRecord;
using dnswire::PtrRecord;
using dnswire::RawRecord;
using dnswire::ResourceRecord;
using dnswire::RrClass;
using dnswire::RrType;
using dnswire::WireArena;

/// Mixed-case labels: exercises the case-folded compression keys (the
/// encoder must emit a pointer for "WWW.Example" against "www.example").
std::string random_label(util::Rng& rng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
  const int len = rng.uniform_int(1, 14);
  std::string s;
  for (int j = 0; j < len; ++j) {
    s.push_back(kAlphabet[rng.uniform(0, sizeof(kAlphabet) - 2)]);
  }
  return s;
}

/// Names drawn from a shared pool with fresh/extend/reuse moves, so the
/// corpus is dense in shared suffixes — the shapes that produce
/// compression pointers (including pointer-to-pointer chains through
/// earlier compressed names).
Name random_name(util::Rng& rng, std::vector<Name>& pool) {
  const double move = rng.uniform_real(0.0, 1.0);
  if (!pool.empty() && move < 0.35) {
    return pool[rng.uniform(0, pool.size() - 1)];  // exact reuse
  }
  std::vector<std::string> labels;
  if (!pool.empty() && move < 0.65) {
    // Extend a pooled name with a fresh prefix: shares its suffix.
    const Name& base = pool[rng.uniform(0, pool.size() - 1)];
    labels.push_back(random_label(rng));
    for (const auto& l : base.labels()) labels.push_back(l);
  } else {
    const int n = rng.uniform_int(1, 4);
    for (int i = 0; i < n; ++i) labels.push_back(random_label(rng));
  }
  auto name = Name::from_labels(labels);
  EXPECT_TRUE(name.has_value());
  if (!name) return Name{};
  if (pool.size() < 12) pool.push_back(*name);
  return *name;
}

std::vector<std::string> random_txt_strings(util::Rng& rng) {
  std::vector<std::string> strings;
  const int count = rng.uniform_int(1, 3);
  for (int i = 0; i < count; ++i) {
    std::size_t len = rng.uniform(0, 48);
    if (rng.chance(0.15)) len = 255;
    if (rng.chance(0.15)) len = 0;
    std::string s;
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>(rng.uniform(0, 255)));
    }
    strings.push_back(std::move(s));
  }
  return strings;
}

ResourceRecord random_record(util::Rng& rng, std::vector<Name>& pool) {
  ResourceRecord rr;
  rr.name = random_name(rng, pool);
  rr.ttl = static_cast<std::uint32_t>(rng.uniform(0, 86400));
  switch (rng.uniform_int(0, 7)) {
    case 0:
      rr.type = RrType::a;
      rr.rdata = dnswire::ARecord{
          util::Ipv4{static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff))}};
      break;
    case 1:
      rr.type = RrType::ns;
      rr.rdata = dnswire::NsRecord{random_name(rng, pool)};
      break;
    case 2:
      rr.type = RrType::cname;
      rr.rdata = dnswire::CnameRecord{random_name(rng, pool)};
      break;
    case 3:
      rr.type = RrType::ptr;
      rr.rdata = PtrRecord{random_name(rng, pool)};
      break;
    case 4:
      rr.type = RrType::txt;
      rr.rdata = dnswire::TxtRecord{random_txt_strings(rng)};
      break;
    case 5: {
      rr.type = RrType::soa;
      dnswire::SoaRecord soa;
      soa.mname = random_name(rng, pool);
      soa.rname = random_name(rng, pool);
      soa.serial = static_cast<std::uint32_t>(rng.uniform(0, 1u << 30));
      soa.refresh = static_cast<std::uint32_t>(rng.uniform(0, 7200));
      soa.retry = static_cast<std::uint32_t>(rng.uniform(0, 7200));
      soa.expire = static_cast<std::uint32_t>(rng.uniform(0, 1u << 20));
      soa.minimum = static_cast<std::uint32_t>(rng.uniform(0, 3600));
      rr.rdata = soa;
      break;
    }
    case 6: {
      // Unmodeled type carried as raw rdata bytes.
      rr.type = static_cast<RrType>(rng.uniform_int(200, 250));
      RawRecord raw;
      const std::size_t len = rng.uniform(0, 40);
      for (std::size_t i = 0; i < len; ++i) {
        raw.data.push_back(static_cast<std::uint8_t>(rng.uniform(0, 255)));
      }
      rr.rdata = std::move(raw);
      break;
    }
    default: {
      rr.type = RrType::opt;
      OptRecord opt;
      opt.udp_payload_size =
          static_cast<std::uint16_t>(rng.uniform(512, 4096));
      rr.rdata = opt;
      break;
    }
  }
  return rr;
}

RrType random_qtype(util::Rng& rng) {
  static constexpr RrType kTypes[] = {RrType::a,   RrType::ns, RrType::cname,
                                      RrType::txt, RrType::mx, RrType::any};
  return kTypes[rng.uniform(0, std::size(kTypes) - 1)];
}

Message random_message(util::Rng& rng) {
  std::vector<Name> pool;
  Message msg;
  msg.header.id = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
  msg.header.qr = rng.chance(0.5);
  msg.header.opcode = static_cast<dnswire::Opcode>(rng.uniform(0, 2));
  msg.header.aa = rng.chance(0.5);
  msg.header.tc = rng.chance(0.2);
  msg.header.rd = rng.chance(0.5);
  msg.header.ra = rng.chance(0.5);
  msg.header.rcode = static_cast<dnswire::Rcode>(rng.uniform(0, 5));
  const int questions = rng.uniform_int(0, 2);
  for (int i = 0; i < questions; ++i) {
    msg.questions.push_back({random_name(rng, pool), random_qtype(rng)});
  }
  const int answers = rng.uniform_int(0, 5);
  for (int i = 0; i < answers; ++i) {
    msg.answers.push_back(random_record(rng, pool));
  }
  const int authorities = rng.uniform_int(0, 2);
  for (int i = 0; i < authorities; ++i) {
    msg.authorities.push_back(random_record(rng, pool));
  }
  const int additionals = rng.uniform_int(0, 2);
  for (int i = 0; i < additionals; ++i) {
    msg.additionals.push_back(random_record(rng, pool));
  }
  return msg;
}

void expect_headers_equal(const dnswire::Header& a, const dnswire::Header& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.qr, b.qr);
  EXPECT_EQ(a.opcode, b.opcode);
  EXPECT_EQ(a.aa, b.aa);
  EXPECT_EQ(a.tc, b.tc);
  EXPECT_EQ(a.rd, b.rd);
  EXPECT_EQ(a.ra, b.ra);
  EXPECT_EQ(a.rcode, b.rcode);
}

/// One corpus element, checked through every cross-codec seam.
void check_case(const Message& msg, int iter) {
  const std::vector<std::uint8_t> heap_wire = dnswire::encode(msg);

  // Arena decode accepts what heap decode accepts...
  WireArena rx;
  auto view = dnswire::decode_into(rx, heap_wire);
  auto heap_decoded = dnswire::decode(heap_wire);
  ASSERT_TRUE(heap_decoded.ok()) << "iteration " << iter;
  ASSERT_TRUE(view.ok()) << "iteration " << iter;

  // ...agrees with it field-by-field...
  const Message mat = dnswire::materialize(view.value());
  expect_headers_equal(mat.header, heap_decoded.value().header);
  EXPECT_EQ(mat.questions, heap_decoded.value().questions) << iter;
  EXPECT_EQ(mat.answers, heap_decoded.value().answers) << iter;
  EXPECT_EQ(mat.authorities, heap_decoded.value().authorities) << iter;
  EXPECT_EQ(mat.additionals, heap_decoded.value().additionals) << iter;

  // ...and re-encodes to the identical bytes, both from the decoded
  // view and from a view over the heap model.
  WireArena tx;
  const auto arena_wire = dnswire::encode_into(tx, view.value());
  ASSERT_EQ(arena_wire.size(), heap_wire.size()) << "iteration " << iter;
  EXPECT_TRUE(std::equal(arena_wire.begin(), arena_wire.end(),
                         heap_wire.begin()))
      << "iteration " << iter;

  WireArena bridge;
  const auto bridged = dnswire::view_of(bridge, msg);
  const auto bridged_wire = dnswire::encode_into(bridge, bridged);
  ASSERT_EQ(bridged_wire.size(), heap_wire.size()) << "iteration " << iter;
  EXPECT_TRUE(std::equal(bridged_wire.begin(), bridged_wire.end(),
                         heap_wire.begin()))
      << "iteration " << iter;
}

TEST(DnswireDifferential, TenThousandSeededCasesAgreeByteForByte) {
  static constexpr std::uint64_t kSeeds[] = {0xC0FFEE, 0xDECAF1, 0x5CA1AB1E,
                                             0xB16B00B5, 0xCAFEF00D};
  for (const auto seed : kSeeds) {
    util::Rng rng(seed);
    for (int iter = 0; iter < 2100; ++iter) {
      const Message msg = random_message(rng);
      check_case(msg, iter);
      if (HasFatalFailure()) {
        FAIL() << "seed " << seed << " iteration " << iter;
      }
    }
  }
}

TEST(DnswireDifferential, CompressionPointerShapesAgree) {
  // Deterministic worst-case pointer shapes: the mirror answer (owner
  // equals the echoed question), pointer chains through earlier
  // answers, and the suffix-key quirk where ["a.b"] and ["a","b"] fold
  // to the same key (the arena encoder must reproduce the heap
  // encoder's first-insert-wins choice, not "fix" it).
  const Name q = *Name::parse("scan.ODNS-study.net");
  Message msg;
  msg.header.id = 0x4242;
  msg.header.qr = true;
  msg.header.aa = true;
  msg.questions.push_back({q, RrType::a});
  msg.answers.push_back(
      ResourceRecord::a(*Name::parse("SCAN.odns-study.NET"),
                        util::Ipv4{10, 0, 0, 1}, 300));
  msg.answers.push_back(ResourceRecord::a(
      *Name::parse("deep.scan.odns-study.net"), util::Ipv4{10, 0, 0, 2}, 300));
  msg.answers.push_back(ResourceRecord::cname(
      *Name::parse("odns-study.net"), *Name::parse("net"), 300));
  msg.authorities.push_back(ResourceRecord::soa(
      *Name::parse("odns-study.net"), *Name::parse("ns1.odns-study.net"), 7,
      300));
  const auto dotted = Name::from_labels({"a.b", "scan.odns-study.net"});
  const auto split = Name::from_labels({"a", "b", "scan", "odns-study", "net"});
  if (dotted && split) {
    msg.additionals.push_back(
        ResourceRecord::a(*dotted, util::Ipv4{10, 0, 0, 3}, 60));
    msg.additionals.push_back(
        ResourceRecord::a(*split, util::Ipv4{10, 0, 0, 4}, 60));
  }
  check_case(msg, /*iter=*/-1);
}

TEST(DnswireDifferential, EmptyAndHeaderOnlyMessagesAgree) {
  Message msg;  // header-only, all sections empty
  check_case(msg, /*iter=*/-2);
  msg.header.qr = true;
  msg.header.rcode = dnswire::Rcode::refused;
  check_case(msg, /*iter=*/-3);
}

}  // namespace
}  // namespace odns
