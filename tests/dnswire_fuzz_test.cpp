// Fuzz-style round-trip hardening for the dnswire codec, driven by a
// seeded util::Rng (deterministic, so failures replay): randomized
// TXT/ANY-shaped messages must encode → decode → re-encode to the
// identical wire image, and the decoder must survive every truncated
// prefix and random corruption of those images without crashing
// (returning a DecodeError is fine; UB is not — the TSan/ASan jobs run
// this suite too).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dnswire/arena.hpp"
#include "dnswire/arena_codec.hpp"
#include "dnswire/codec.hpp"
#include "dnswire/message.hpp"
#include "util/rng.hpp"

namespace odns {
namespace {

using dnswire::Message;
using dnswire::Name;
using dnswire::ResourceRecord;
using dnswire::RrType;

/// Verdict parity: on every input — valid, truncated, corrupted, or
/// garbage — the arena decoder must accept exactly what the heap
/// decoder accepts and return the identical DecodeError otherwise.
void expect_same_verdict(std::span<const std::uint8_t> wire) {
  dnswire::WireArena arena;
  auto heap = dnswire::decode(wire);
  auto view = dnswire::decode_into(arena, wire);
  ASSERT_EQ(heap.ok(), view.ok()) << "verdicts diverge on " << wire.size()
                                  << "-byte input";
  if (!heap.ok()) {
    EXPECT_EQ(heap.error(), view.error());
    return;
  }
  // Accepted inputs must also re-encode identically through both.
  dnswire::WireArena tx;
  const auto arena_wire = dnswire::encode_into(tx, view.value());
  const auto heap_wire = dnswire::encode(heap.value());
  ASSERT_EQ(arena_wire.size(), heap_wire.size());
  EXPECT_TRUE(
      std::equal(arena_wire.begin(), arena_wire.end(), heap_wire.begin()));
}

Name random_name(util::Rng& rng) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string text;
  const int labels = rng.uniform_int(1, 4);
  for (int i = 0; i < labels; ++i) {
    if (i > 0) text.push_back('.');
    const int len = rng.uniform_int(1, 12);
    for (int j = 0; j < len; ++j) {
      text.push_back(kAlphabet[rng.uniform(0, sizeof(kAlphabet) - 2)]);
    }
  }
  auto name = Name::parse(text);
  EXPECT_TRUE(name.has_value()) << text;
  return name.value_or(Name{});
}

/// TXT rdata with arbitrary bytes, including empty strings and strings
/// at the 255-octet character-string limit.
std::vector<std::string> random_txt_strings(util::Rng& rng) {
  std::vector<std::string> strings;
  const int count = rng.uniform_int(1, 4);
  for (int i = 0; i < count; ++i) {
    std::size_t len = rng.uniform(0, 64);
    if (rng.chance(0.2)) len = 255;
    std::string s;
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>(rng.uniform(0, 255)));
    }
    strings.push_back(std::move(s));
  }
  return strings;
}

RrType random_qtype(util::Rng& rng) {
  static constexpr RrType kTypes[] = {RrType::a, RrType::ns, RrType::cname,
                                      RrType::txt, RrType::any};
  return kTypes[rng.uniform(0, std::size(kTypes) - 1)];
}

/// An amplification-shaped message: TXT/ANY question, fat mixed answer
/// section, randomized header flags.
Message random_message(util::Rng& rng) {
  Message msg;
  msg.header.id = static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
  msg.header.qr = rng.chance(0.5);
  msg.header.aa = rng.chance(0.5);
  msg.header.tc = rng.chance(0.2);
  msg.header.rd = rng.chance(0.5);
  msg.header.ra = rng.chance(0.5);
  const int questions = rng.uniform_int(0, 2);
  for (int i = 0; i < questions; ++i) {
    msg.questions.push_back({random_name(rng), random_qtype(rng)});
  }
  const int answers = rng.uniform_int(0, 5);
  for (int i = 0; i < answers; ++i) {
    const Name name = random_name(rng);
    const auto ttl = static_cast<std::uint32_t>(rng.uniform(0, 86400));
    switch (rng.uniform_int(0, 3)) {
      case 0:
        msg.answers.push_back(ResourceRecord::txt(
            name, random_txt_strings(rng), ttl));
        break;
      case 1:
        msg.answers.push_back(ResourceRecord::a(
            name, util::Ipv4{static_cast<std::uint32_t>(
                      rng.uniform(0, 0xffffffff))},
            ttl));
        break;
      case 2:
        msg.answers.push_back(ResourceRecord::ns(name, random_name(rng),
                                                 ttl));
        break;
      default:
        msg.answers.push_back(ResourceRecord::cname(name, random_name(rng),
                                                    ttl));
        break;
    }
  }
  if (rng.chance(0.3)) {
    msg.authorities.push_back(ResourceRecord::soa(
        random_name(rng), random_name(rng),
        static_cast<std::uint32_t>(rng.uniform(0, 1u << 30)),
        static_cast<std::uint32_t>(rng.uniform(0, 3600))));
  }
  return msg;
}

TEST(DnswireFuzz, RandomMessagesRoundTripByteExactly) {
  util::Rng rng(0xD15EA5E);
  for (int iter = 0; iter < 200; ++iter) {
    const Message msg = random_message(rng);
    const auto wire = dnswire::encode(msg);
    auto decoded = dnswire::decode(wire);
    ASSERT_TRUE(decoded) << "iteration " << iter;

    // Structural identity on the comparable pieces...
    EXPECT_EQ(decoded.value().header.id, msg.header.id);
    EXPECT_EQ(decoded.value().header.tc, msg.header.tc);
    EXPECT_EQ(decoded.value().questions, msg.questions);
    EXPECT_EQ(decoded.value().answers, msg.answers);
    EXPECT_EQ(decoded.value().authorities, msg.authorities);
    // ...and byte identity through a second encode: decode loses
    // nothing the encoder can see.
    EXPECT_EQ(dnswire::encode(decoded.value()), wire) << "iteration " << iter;
    expect_same_verdict(wire);
  }
}

TEST(DnswireFuzz, EveryTruncatedPrefixDecodesWithoutCrashing) {
  util::Rng rng(0xBADC0DE);
  for (int iter = 0; iter < 50; ++iter) {
    const auto wire = dnswire::encode(random_message(rng));
    for (std::size_t len = 0; len < wire.size(); ++len) {
      // Must return (value or error), never crash or overread — and
      // both decoders must agree on which.
      expect_same_verdict(std::span<const std::uint8_t>(wire.data(), len));
    }
  }
}

TEST(DnswireFuzz, RandomCorruptionDecodesWithoutCrashing) {
  util::Rng rng(0xFACADE);
  for (int iter = 0; iter < 100; ++iter) {
    auto wire = dnswire::encode(random_message(rng));
    if (wire.empty()) continue;
    const int flips = rng.uniform_int(1, 8);
    for (int i = 0; i < flips; ++i) {
      wire[rng.uniform(0, wire.size() - 1)] =
          static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    auto result = dnswire::decode(wire);
    // Whatever still decodes must re-encode without crashing either.
    if (result) (void)dnswire::encode(result.value());
    expect_same_verdict(wire);
  }
}

TEST(DnswireFuzz, PureGarbageBuffersDecodeWithoutCrashing) {
  util::Rng rng(0x5EED);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::uint8_t> junk(rng.uniform(0, 300));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    expect_same_verdict(junk);
  }
}

}  // namespace
}  // namespace odns
