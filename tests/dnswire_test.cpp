#include <gtest/gtest.h>

#include "dnswire/codec.hpp"
#include "util/rng.hpp"

namespace odns::dnswire {
namespace {

using util::Ipv4;

// ---------------------------------------------------------------------
// Name
// ---------------------------------------------------------------------

TEST(NameTest, ParsePresentation) {
  const auto n = Name::parse("www.Example.COM");
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->label_count(), 3u);
  EXPECT_EQ(n->to_string(), "www.Example.COM");
  EXPECT_EQ(n->canonical(), "www.example.com");
}

TEST(NameTest, RootForms) {
  const auto root = Name::parse(".");
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(root->is_root());
  EXPECT_EQ(root->to_string(), ".");
  EXPECT_EQ(root->wire_length(), 1u);
}

TEST(NameTest, TrailingDotAccepted) {
  EXPECT_EQ(Name::parse("example.com.")->label_count(), 2u);
}

TEST(NameTest, RejectsEmptyAndOverlongLabels) {
  EXPECT_FALSE(Name::parse("").has_value());
  EXPECT_FALSE(Name::parse("a..b").has_value());
  EXPECT_FALSE(Name::parse(std::string(64, 'x') + ".com").has_value());
  // 63-char labels are fine.
  EXPECT_TRUE(Name::parse(std::string(63, 'x') + ".com").has_value());
}

TEST(NameTest, RejectsOverlongName) {
  std::string long_name;
  for (int i = 0; i < 50; ++i) long_name += "abcde.";
  long_name += "com";  // 50*6+3 = 303 > 255
  EXPECT_FALSE(Name::parse(long_name).has_value());
}

TEST(NameTest, EqualityIsCaseInsensitive) {
  EXPECT_EQ(*Name::parse("WWW.example.Com"), *Name::parse("www.EXAMPLE.com"));
  EXPECT_NE(*Name::parse("a.example.com"), *Name::parse("b.example.com"));
}

TEST(NameTest, SubdomainRelation) {
  const auto zone = *Name::parse("example.com");
  EXPECT_TRUE(Name::parse("example.com")->is_subdomain_of(zone));
  EXPECT_TRUE(Name::parse("a.b.EXAMPLE.com")->is_subdomain_of(zone));
  EXPECT_FALSE(Name::parse("example.org")->is_subdomain_of(zone));
  EXPECT_FALSE(Name::parse("com")->is_subdomain_of(zone));
  EXPECT_TRUE(Name::parse("anything")->is_subdomain_of(Name{}));  // root
}

TEST(NameTest, PrependAndParent) {
  const auto base = *Name::parse("example.com");
  const auto sub = base.prepend("www");
  ASSERT_TRUE(sub.has_value());
  EXPECT_EQ(sub->to_string(), "www.example.com");
  EXPECT_EQ(sub->parent(), base);
  EXPECT_TRUE(Name{}.parent().is_root());
}

// ---------------------------------------------------------------------
// Codec round-trips
// ---------------------------------------------------------------------

Message sample_query() {
  return make_query(0x1234, *Name::parse("scan.odns-study.net"), RrType::a);
}

TEST(CodecTest, QueryRoundTrip) {
  const auto q = sample_query();
  const auto wire = encode(q);
  auto decoded = decode(wire);
  ASSERT_TRUE(decoded.ok());
  const auto& m = decoded.value();
  EXPECT_EQ(m.header.id, 0x1234);
  EXPECT_FALSE(m.header.qr);
  EXPECT_TRUE(m.header.rd);
  ASSERT_EQ(m.questions.size(), 1u);
  EXPECT_EQ(m.questions[0].name.to_string(), "scan.odns-study.net");
  EXPECT_EQ(m.questions[0].type, RrType::a);
}

TEST(CodecTest, ResponseWithTwoARecordsRoundTrip) {
  auto resp = make_response(sample_query());
  const auto name = *Name::parse("scan.odns-study.net");
  resp.header.aa = true;
  resp.answers.push_back(ResourceRecord::a(name, Ipv4{74, 125, 0, 10}, 300));
  resp.answers.push_back(ResourceRecord::a(name, Ipv4{198, 51, 100, 200}, 300));
  const auto wire = encode(resp);
  auto decoded = decode(wire);
  ASSERT_TRUE(decoded.ok());
  const auto addrs = decoded.value().answer_addresses();
  ASSERT_EQ(addrs.size(), 2u);
  EXPECT_EQ(addrs[0], (Ipv4{74, 125, 0, 10}));
  EXPECT_EQ(addrs[1], (Ipv4{198, 51, 100, 200}));
}

TEST(CodecTest, CompressionShrinksRepeatedNames) {
  auto resp = make_response(sample_query());
  const auto name = *Name::parse("scan.odns-study.net");
  for (int i = 0; i < 4; ++i) {
    resp.answers.push_back(ResourceRecord::a(name, Ipv4{10, 0, 0, 1}, 60));
  }
  const auto wire = encode(resp);
  // Each repeated owner name should cost 2 pointer bytes, not 21.
  const auto uncompressed_estimate = 12 + 25 + 4 * (21 + 14);
  EXPECT_LT(wire.size(), static_cast<std::size_t>(uncompressed_estimate) - 40);
  auto decoded = decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().answers.size(), 4u);
  EXPECT_EQ(decoded.value().answers[3].name, name);
}

TEST(CodecTest, SoaNegativeResponseRoundTrip) {
  auto resp = make_response(sample_query(), Rcode::nxdomain);
  resp.authorities.push_back(ResourceRecord::soa(
      *Name::parse("odns-study.net"), *Name::parse("odns-study.net"), 7, 300));
  const auto wire = encode(resp);
  auto decoded = decode(wire);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().authorities.size(), 1u);
  const auto* soa =
      std::get_if<SoaRecord>(&decoded.value().authorities[0].rdata);
  ASSERT_NE(soa, nullptr);
  EXPECT_EQ(soa->serial, 7u);
  EXPECT_EQ(soa->minimum, 300u);
}

TEST(CodecTest, NsCnameTxtPtrRoundTrip) {
  auto resp = make_response(sample_query());
  const auto zone = *Name::parse("odns-study.net");
  resp.authorities.push_back(
      ResourceRecord::ns(zone, *Name::parse("ns1.odns-study.net"), 86400));
  resp.answers.push_back(ResourceRecord::cname(
      *Name::parse("alias.odns-study.net"), *Name::parse("real.odns-study.net"),
      60));
  resp.answers.push_back(
      ResourceRecord::txt(zone, {"hello", "world"}, 30));
  ResourceRecord ptr;
  ptr.name = *Name::parse("1.2.0.192.in-addr.arpa");
  ptr.type = RrType::ptr;
  ptr.ttl = 60;
  ptr.rdata = PtrRecord{*Name::parse("scanner.odns-study.net")};
  resp.answers.push_back(ptr);
  const auto wire = encode(resp);
  auto decoded = decode(wire);
  ASSERT_TRUE(decoded.ok());
  const auto& m = decoded.value();
  EXPECT_EQ(std::get<NsRecord>(m.authorities[0].rdata).host.to_string(),
            "ns1.odns-study.net");
  EXPECT_EQ(std::get<CnameRecord>(m.answers[0].rdata).target.to_string(),
            "real.odns-study.net");
  EXPECT_EQ(std::get<TxtRecord>(m.answers[1].rdata).strings,
            (std::vector<std::string>{"hello", "world"}));
  EXPECT_EQ(std::get<PtrRecord>(m.answers[2].rdata).target.to_string(),
            "scanner.odns-study.net");
}

TEST(CodecTest, OptRecordCarriesUdpSize) {
  auto q = sample_query();
  ResourceRecord opt;
  opt.name = Name{};
  opt.type = RrType::opt;
  opt.rdata = OptRecord{4096};
  q.additionals.push_back(opt);
  auto decoded = decode(encode(q));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().additionals.size(), 1u);
  EXPECT_EQ(std::get<OptRecord>(decoded.value().additionals[0].rdata)
                .udp_payload_size,
            4096);
}

TEST(CodecTest, FlagsRoundTrip) {
  Message m;
  m.header.id = 9;
  m.header.qr = true;
  m.header.aa = true;
  m.header.tc = true;
  m.header.rd = true;
  m.header.ra = true;
  m.header.rcode = Rcode::refused;
  auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().header.qr);
  EXPECT_TRUE(decoded.value().header.aa);
  EXPECT_TRUE(decoded.value().header.tc);
  EXPECT_TRUE(decoded.value().header.ra);
  EXPECT_EQ(decoded.value().header.rcode, Rcode::refused);
}

// ---------------------------------------------------------------------
// Malformed input hardening
// ---------------------------------------------------------------------

TEST(CodecHardening, TruncatedHeader) {
  const std::vector<std::uint8_t> wire{0x12, 0x34, 0x00};
  EXPECT_FALSE(decode(wire).ok());
}

TEST(CodecHardening, QuestionCountLiesAboutContent) {
  auto wire = encode(sample_query());
  wire[5] = 9;  // qdcount = 9 but only one question present
  EXPECT_FALSE(decode(wire).ok());
}

TEST(CodecHardening, ForwardCompressionPointerRejected) {
  // Header + one question whose name is a pointer to itself.
  std::vector<std::uint8_t> wire(12, 0);
  wire[5] = 1;  // qdcount = 1
  wire.push_back(0xC0);
  wire.push_back(12);  // points at itself
  wire.push_back(0);
  wire.push_back(1);
  wire.push_back(0);
  wire.push_back(1);
  const auto result = decode(wire);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), DecodeError::bad_compression_pointer);
}

TEST(CodecHardening, PointerChainsTerminate) {
  // Two names: the first is real, the second points at the first's
  // pointer target repeatedly — decoder must not loop forever.
  auto base = sample_query();
  base.questions.push_back(base.questions[0]);
  auto wire = encode(base);
  EXPECT_TRUE(decode(wire).ok());
}

TEST(CodecHardening, BadARecordLength) {
  auto resp = make_response(sample_query());
  resp.answers.push_back(ResourceRecord::a(
      *Name::parse("scan.odns-study.net"), Ipv4{1, 2, 3, 4}, 60));
  auto wire = encode(resp);
  // Find the rdlength of the A record (last 6 bytes: len(2) + addr(4))
  wire[wire.size() - 5] = 3;  // claim 3-byte rdata
  EXPECT_FALSE(decode(wire).ok());
}

TEST(CodecHardening, EmptyInput) {
  EXPECT_FALSE(decode({}).ok());
}

/// Property: decoding arbitrary bytes never crashes and either fails or
/// produces a message that re-encodes.
class CodecFuzzProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzzProperty, RandomBytesNeverCrash) {
  util::Rng rng{GetParam()};
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::uint8_t> wire(rng.uniform(0, 128));
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    auto result = decode(wire);
    if (result.ok()) {
      // Whatever parsed must re-encode without crashing.
      const auto re = encode(result.value());
      EXPECT_FALSE(re.empty());
    }
  }
}

/// Property: corrupting any single byte of a valid message never
/// crashes the decoder.
TEST_P(CodecFuzzProperty, SingleByteCorruptionNeverCrashes) {
  util::Rng rng{GetParam() ^ 0xABCD};
  auto resp = make_response(sample_query());
  const auto name = *Name::parse("scan.odns-study.net");
  resp.answers.push_back(ResourceRecord::a(name, Ipv4{8, 8, 8, 8}, 300));
  resp.answers.push_back(ResourceRecord::a(name, Ipv4{9, 9, 9, 9}, 300));
  const auto wire = encode(resp);
  for (int iter = 0; iter < 300; ++iter) {
    auto mutated = wire;
    const auto pos = rng.uniform(0, mutated.size() - 1);
    mutated[pos] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    (void)decode(mutated);  // must not crash; outcome may be either
  }
}

/// Property: encode∘decode is the identity on randomly generated valid
/// messages.
TEST_P(CodecFuzzProperty, RandomMessageRoundTrip) {
  util::Rng rng{GetParam() ^ 0x5555};
  for (int iter = 0; iter < 100; ++iter) {
    Message m;
    m.header.id = static_cast<std::uint16_t>(rng.uniform(0, 0xFFFF));
    m.header.qr = rng.chance(0.5);
    m.header.rd = rng.chance(0.5);
    m.header.ra = rng.chance(0.5);
    m.header.rcode = rng.chance(0.2) ? Rcode::nxdomain : Rcode::noerror;
    const std::vector<std::string> labels{"scan", "probe", "x1", "cdn"};
    auto random_name = [&]() {
      std::string s;
      const int n = rng.uniform_int(1, 4);
      for (int i = 0; i < n; ++i) {
        if (i) s += '.';
        s += rng.pick(labels);
      }
      return *Name::parse(s);
    };
    m.questions.push_back(
        Question{random_name(), RrType::a, RrClass::in});
    const int answers = rng.uniform_int(0, 5);
    for (int i = 0; i < answers; ++i) {
      m.answers.push_back(ResourceRecord::a(
          random_name(),
          Ipv4{static_cast<std::uint32_t>(rng.uniform(0, 0xFFFFFFFF))},
          static_cast<std::uint32_t>(rng.uniform(0, 86400))));
    }
    auto decoded = decode(encode(m));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().header.id, m.header.id);
    ASSERT_EQ(decoded.value().answers.size(), m.answers.size());
    for (std::size_t i = 0; i < m.answers.size(); ++i) {
      EXPECT_EQ(decoded.value().answers[i], m.answers[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzProperty,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace odns::dnswire
