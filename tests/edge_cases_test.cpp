// Failure-injection and edge-case suite: misbehaving peers, loops,
// dead upstreams, malformed traffic — the conditions an Internet-facing
// measurement system actually meets.

#include <gtest/gtest.h>

#include "classify/classify.hpp"
#include "nodes/forwarder.hpp"
#include "scan/txscanner.hpp"
#include "testutil.hpp"

namespace odns {
namespace {

using namespace nodes;
using test::MiniWorld;
using util::Duration;
using util::Ipv4;

class EdgeFixture : public ::testing::Test {
 protected:
  MiniWorld world;

  StubClient& stub() {
    if (!stub_) {
      const auto host = world.add_access_host(Ipv4{20, 0, 99, 1});
      stub_ = std::make_unique<StubClient>(world.sim, host);
      stub_->start();
    }
    return *stub_;
  }

  std::unique_ptr<StubClient> stub_;
};

// ---------------------------------------------------------------------
// Forwarding loops
// ---------------------------------------------------------------------

TEST_F(EdgeFixture, TransparentForwarderLoopIsKilledByTtl) {
  // Two devices redirecting port 53 at each other: the relayed packet
  // ping-pongs, losing one TTL per relay plus per-hop decrements, and
  // dies with an ICMP instead of looping forever.
  const auto a = world.add_access_host(Ipv4{20, 0, 50, 1});
  const auto b = world.add_access_host(Ipv4{20, 0, 50, 2});
  world.sim.add_port_redirect(a, kDnsPort, Ipv4{20, 0, 50, 2});
  world.sim.add_port_redirect(b, kDnsPort, Ipv4{20, 0, 50, 1});

  stub().query(Ipv4{20, 0, 50, 1}, world.scan_name);
  const auto events_before = world.sim.events_executed();
  world.sim.run();
  // Terminates (bounded event count) and no DNS answer materializes.
  EXPECT_LT(world.sim.events_executed() - events_before, 1000u);
  EXPECT_TRUE(stub().responses().empty());
  EXPECT_GE(world.sim.counters().ttl_expired +
                world.sim.counters().icmp_generated,
            1u);
}

TEST_F(EdgeFixture, SelfRedirectIsKilledByTtl) {
  const auto a = world.add_access_host(Ipv4{20, 0, 51, 1});
  world.sim.add_port_redirect(a, kDnsPort, Ipv4{20, 0, 51, 1});
  stub().query(Ipv4{20, 0, 51, 1}, world.scan_name);
  world.sim.run();
  EXPECT_TRUE(stub().responses().empty());
}

// ---------------------------------------------------------------------
// Dead / misbehaving upstreams
// ---------------------------------------------------------------------

TEST_F(EdgeFixture, ForwarderWithDeadUpstreamProducesNoAnswer) {
  const auto fwd_host = world.add_access_host(Ipv4{20, 0, 52, 1});
  ForwarderConfig fc;
  fc.upstream = Ipv4{20, 0, 52, 99};  // nobody home
  RecursiveForwarder fwd(world.sim, fwd_host, fc);
  fwd.start();
  stub().query(Ipv4{20, 0, 52, 1}, world.scan_name);
  world.sim.run();
  EXPECT_TRUE(stub().responses().empty());
  EXPECT_EQ(fwd.stats().forwarded, 1u);
  EXPECT_EQ(fwd.stats().upstream_responses, 0u);
}

TEST_F(EdgeFixture, TransparentForwarderToDeadResolverTimesOutAtScanner) {
  const auto tf_host = world.add_access_host(Ipv4{20, 0, 53, 1});
  world.sim.add_port_redirect(tf_host, kDnsPort, Ipv4{20, 0, 53, 99});
  scan::ScanConfig sc;
  sc.qname = world.scan_name;
  sc.timeout = Duration::seconds(5);
  scan::TransactionalScanner scanner(world.sim, world.scanner_host, sc);
  scanner.start({Ipv4{20, 0, 53, 1}});
  scanner.run_to_completion();
  const auto txns = scanner.correlate();
  EXPECT_FALSE(txns[0].answered);
}

TEST_F(EdgeFixture, ResolverIgnoresSpoofedOffPathResponses) {
  // An attacker blasts forged responses at the resolver's ephemeral
  // ports; without a matching (port, txid) transaction they must be
  // dropped (the classic cache-poisoning precondition).
  const auto attacker = world.add_access_host(Ipv4{20, 0, 54, 1});
  auto resp = dnswire::make_response(
      dnswire::make_query(0xBEEF, world.scan_name, dnswire::RrType::a));
  resp.answers.push_back(dnswire::ResourceRecord::a(
      world.scan_name, Ipv4{6, 6, 6, 6}, 3600));
  for (std::uint16_t port = 49152; port < 49352; ++port) {
    netsim::SendOptions opts;
    opts.dst = test::kResolverAddr;
    opts.src_port = 53;
    opts.dst_port = port;
    opts.payload = dnswire::encode(resp);
    world.sim.send_udp(attacker, std::move(opts));
  }
  world.sim.run();
  // The poison never enters the cache: a later legitimate query
  // resolves to the true records.
  stub().query(test::kResolverAddr, world.scan_name);
  world.sim.run();
  ASSERT_EQ(stub().responses().size(), 1u);
  const auto addrs = stub().responses().front().message.answer_addresses();
  ASSERT_EQ(addrs.size(), 2u);
  EXPECT_NE(addrs[0], (Ipv4{6, 6, 6, 6}));
  EXPECT_EQ(addrs[1], test::kControlAddr);
}

TEST_F(EdgeFixture, MalformedDatagramsAreCountedAndIgnored) {
  const auto sender = world.add_access_host(Ipv4{20, 0, 55, 1});
  netsim::SendOptions opts;
  opts.dst = test::kResolverAddr;
  opts.src_port = 1234;
  opts.dst_port = 53;
  opts.payload = {0xDE, 0xAD};  // truncated header
  world.sim.send_udp(sender, std::move(opts));
  world.sim.run();
  EXPECT_EQ(world.resolver->counters().parse_errors, 1u);
  // The resolver is still healthy afterwards.
  stub().query(test::kResolverAddr, world.scan_name);
  world.sim.run();
  EXPECT_EQ(stub().responses().size(), 1u);
}

TEST_F(EdgeFixture, MultiQuestionQueriesGetFormerr) {
  const auto sender = world.add_access_host(Ipv4{20, 0, 56, 1});
  StubClient client(world.sim, sender);
  client.start();
  auto query = dnswire::make_query(7, world.scan_name, dnswire::RrType::a);
  query.questions.push_back(query.questions.front());
  netsim::SendOptions opts;
  opts.dst = test::kResolverAddr;
  opts.src_port = 20001;
  opts.dst_port = 53;
  opts.payload = dnswire::encode(query);
  world.sim.send_udp(sender, std::move(opts));
  world.sim.run();
  ASSERT_EQ(client.responses().size(), 1u);
  EXPECT_EQ(client.responses().front().message.header.rcode,
            dnswire::Rcode::formerr);
}

// ---------------------------------------------------------------------
// Chains
// ---------------------------------------------------------------------

TEST_F(EdgeFixture, TransparentChainThroughRecursiveForwarder) {
  // TF → RF → public resolver: the scanner's answer arrives from the
  // RF (not the TF, not the resolver) and the mirror record exposes
  // the resolver — the indirect-consolidation signature.
  const auto rf_host = world.add_access_host(Ipv4{20, 0, 57, 2});
  ForwarderConfig fc;
  fc.upstream = test::kResolverAddr;
  RecursiveForwarder rf(world.sim, rf_host, fc);
  rf.start();

  const auto tf_host = world.add_access_host(Ipv4{20, 0, 57, 1});
  world.sim.add_port_redirect(tf_host, kDnsPort, Ipv4{20, 0, 57, 2});

  scan::ScanConfig sc;
  sc.qname = world.scan_name;
  scan::TransactionalScanner scanner(world.sim, world.scanner_host, sc);
  scanner.start({Ipv4{20, 0, 57, 1}});
  scanner.run_to_completion();
  const auto txns = scanner.correlate();
  ASSERT_TRUE(txns[0].answered);
  EXPECT_EQ(txns[0].response_src, (Ipv4{20, 0, 57, 2}));
  ASSERT_TRUE(txns[0].dynamic_a().has_value());
  EXPECT_EQ(*txns[0].dynamic_a(), test::kResolverAddr);

  classify::ClassifyConfig cc;
  cc.control_addr = test::kControlAddr;
  EXPECT_EQ(classify::classify_one(txns[0], cc),
            classify::Klass::transparent_forwarder);
}

TEST_F(EdgeFixture, DoubleTransparentChain) {
  // TF → TF → resolver still answers the client directly, consuming
  // one extra TTL per device.
  const auto tf1 = world.add_access_host(Ipv4{20, 0, 58, 1});
  const auto tf2 = world.add_access_host(Ipv4{20, 0, 58, 2});
  world.sim.add_port_redirect(tf1, kDnsPort, Ipv4{20, 0, 58, 2});
  world.sim.add_port_redirect(tf2, kDnsPort, test::kResolverAddr);
  stub().query(Ipv4{20, 0, 58, 1}, world.scan_name);
  world.sim.run();
  ASSERT_EQ(stub().responses().size(), 1u);
  EXPECT_EQ(stub().responses().front().from, test::kResolverAddr);
  EXPECT_EQ(world.sim.redirect_relays(tf1), 1u);
  EXPECT_EQ(world.sim.redirect_relays(tf2), 1u);
}

// ---------------------------------------------------------------------
// Scanner pacing and wrap-around
// ---------------------------------------------------------------------

TEST_F(EdgeFixture, ProbePacingFollowsConfiguredRate) {
  scan::ScanConfig sc;
  sc.qname = world.scan_name;
  sc.probes_per_second = 1000;  // 1 ms apart
  scan::TransactionalScanner scanner(world.sim, world.scanner_host, sc);
  std::vector<Ipv4> targets(10, test::kResolverAddr);
  scanner.start(targets);
  world.sim.run();
  ASSERT_EQ(scanner.probes().size(), 10u);
  for (std::size_t i = 1; i < scanner.probes().size(); ++i) {
    const auto gap =
        scanner.probes()[i].sent_at - scanner.probes()[i - 1].sent_at;
    EXPECT_EQ(gap.count_nanos(), 1'000'000);
  }
}

TEST_F(EdgeFixture, RapidRequeriesServedFromResolverCache) {
  // 50 clients asking the same name: exactly one authoritative lookup.
  for (int i = 0; i < 50; ++i) {
    stub().query(test::kResolverAddr, world.scan_name);
  }
  world.sim.run();
  EXPECT_EQ(stub().responses().size(), 50u);
  EXPECT_EQ(world.auth->queries_answered(), 1u);
}

}  // namespace
}  // namespace odns
