// Determinism regression suite for the typed event engine
// (docs/event-engine.md): the legacy closure engine and the typed
// pooled engine must execute the exact same (time, seq) total order —
// same seed ⇒ identical traces — including same-timestamp bursts and
// pool slot reuse.

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "netsim/event_queue.hpp"
#include "netsim/sim.hpp"
#include "netsim/stream.hpp"

namespace odns::netsim {
namespace {

using util::Duration;
using util::Ipv4;
using util::Prefix;
using util::SimTime;

// ---------------------------------------------------------------------
// EventQueue-level contract
// ---------------------------------------------------------------------

/// Records every pooled packet event the queue dispatches.
class RecordingSink : public PacketSink {
 public:
  struct Delivery {
    Ipv4 src, dst;
    HostId host;
    std::vector<std::uint8_t> payload;
  };
  struct Icmp {
    IcmpType type;
    Ipv4 router;
    Asn origin_as;
  };
  void deliver_event(Packet&& pkt, HostId host) override {
    deliveries.push_back(
        Delivery{pkt.src, pkt.dst, host, std::move(pkt.payload)});
  }
  void icmp_event(IcmpType type, Packet&&, Ipv4 router, Asn origin) override {
    icmps.push_back(Icmp{type, router, origin});
  }
  std::vector<Delivery> deliveries;
  std::vector<Icmp> icmps;
};

class CountingTimer : public TimerTarget {
 public:
  void on_timer(std::uint64_t a, std::uint64_t b) override {
    fired.emplace_back(a, b);
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fired;
};

TEST(EventEngineTest, FarFutureNamesTheDrainSentinel) {
  EXPECT_EQ(SimTime::far_future().nanos(), std::int64_t{1} << 62);
  EventQueue q;
  bool ran = false;
  q.schedule_at(SimTime::from_nanos(42), [&] { ran = true; });
  q.run();  // default deadline = far_future(): drain, don't advance past
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), SimTime::from_nanos(42));
}

TEST(EventEngineTest, TypedKindsInterleaveWithClosuresBySequence) {
  EventQueue q;
  RecordingSink sink;
  q.bind_sink(&sink);
  CountingTimer timer;
  std::vector<int> order;

  // All four kinds at the same timestamp: execution must follow
  // scheduling order exactly (the seq tie-break).
  const auto at = SimTime::from_nanos(100);
  q.schedule_at(at, [&] { order.push_back(0); });
  q.schedule_timer(at, &timer, 7, 9);
  Packet pkt;
  pkt.src = Ipv4{10, 0, 0, 1};
  pkt.dst = Ipv4{10, 0, 0, 2};
  pkt.payload = {1, 2, 3};
  q.schedule_deliver(at, std::move(pkt), HostId{5});
  Packet off;
  off.src = Ipv4{10, 0, 0, 3};
  q.schedule_icmp(at, IcmpType::ttl_exceeded, std::move(off), Ipv4{9, 9, 9, 9},
                  Asn{42});
  q.schedule_at(at, [&] { order.push_back(1); });

  EXPECT_EQ(q.step_batch(), 5u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  ASSERT_EQ(timer.fired.size(), 1u);
  EXPECT_EQ(timer.fired[0], (std::pair<std::uint64_t, std::uint64_t>{7, 9}));
  ASSERT_EQ(sink.deliveries.size(), 1u);
  EXPECT_EQ(sink.deliveries[0].host, HostId{5});
  EXPECT_EQ(sink.deliveries[0].payload, (std::vector<std::uint8_t>{1, 2, 3}));
  ASSERT_EQ(sink.icmps.size(), 1u);
  EXPECT_EQ(sink.icmps[0].router, (Ipv4{9, 9, 9, 9}));
  EXPECT_EQ(sink.icmps[0].origin_as, Asn{42});
  EXPECT_TRUE(q.empty());
}

TEST(EventEngineTest, BatchAbsorbsSameTimestampReschedules) {
  EventQueue q;
  std::vector<int> order;
  // The first handler schedules two more events "in the past" — they
  // clamp to the batch timestamp and must run after everything already
  // pending there, in scheduling order.
  q.schedule_at(SimTime::from_nanos(50), [&] {
    order.push_back(0);
    q.schedule_at(SimTime::from_nanos(10), [&] { order.push_back(2); });
    q.schedule_at(SimTime::from_nanos(50), [&] { order.push_back(3); });
  });
  q.schedule_at(SimTime::from_nanos(50), [&] { order.push_back(1); });
  EXPECT_EQ(q.step_batch(), 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.now(), SimTime::from_nanos(50));
}

TEST(EventEngineTest, PoolSlotsAreRecycled) {
  EventQueue q;
  RecordingSink sink;
  q.bind_sink(&sink);
  constexpr std::size_t kWave = 64;
  std::size_t high_water = 0;
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (std::size_t i = 0; i < kWave; ++i) {
      Packet pkt;
      pkt.dst = Ipv4{10, 0, 0, static_cast<std::uint8_t>(i)};
      q.schedule_deliver(q.now() + Duration::nanos(static_cast<int>(i)),
                         std::move(pkt), HostId{static_cast<HostId>(i)});
    }
    q.run();
    if (cycle == 0) high_water = q.pool_slots();
  }
  // Freed slots are reused wave after wave: the slab never grows past
  // the first wave's high-water mark, and a drained queue has every
  // slot back on the freelist.
  EXPECT_EQ(q.pool_slots(), high_water);
  EXPECT_LE(high_water, kWave);
  EXPECT_EQ(q.free_slots(), q.pool_slots());
  EXPECT_EQ(sink.deliveries.size(), kWave * 10);
}

TEST(EventEngineTest, LegacyModeExecutesTypedSchedulesIdentically) {
  // The same mixed schedule, run through both engines, must produce
  // the same execution order and the same clock.
  auto record = [](bool typed) {
    EventQueue q;
    RecordingSink sink;
    q.bind_sink(&sink);
    q.set_legacy_mode(!typed);
    CountingTimer timer;
    std::vector<std::uint64_t> order;
    for (std::uint64_t i = 0; i < 16; ++i) {
      const auto at = SimTime::from_nanos(static_cast<std::int64_t>(
          (i * 37) % 5));  // clustered timestamps force tie-breaks
      if (i % 3 == 0) {
        q.schedule_at(at, [&order, i] { order.push_back(i); });
      } else if (i % 3 == 1) {
        q.schedule_timer(at, &timer, i, 0);
      } else {
        Packet pkt;
        pkt.dst = Ipv4{static_cast<std::uint32_t>(i)};
        q.schedule_deliver(at, std::move(pkt), HostId{1});
      }
    }
    q.run();
    for (const auto& [a, b] : timer.fired) order.push_back(a + 1000);
    for (const auto& d : sink.deliveries) order.push_back(d.dst.value() + 2000);
    order.push_back(q.now().nanos());
    order.push_back(q.executed());
    return order;
  };
  EXPECT_EQ(record(/*typed=*/true), record(/*typed=*/false));
}

// ---------------------------------------------------------------------
// Simulator-level determinism: typed engine vs legacy closures
// ---------------------------------------------------------------------

struct TraceRecord {
  TapEvent ev;
  std::uint32_t src, dst;
  int ttl;
  std::uint16_t sport, dport;
  auto operator<=>(const TraceRecord&) const = default;
};

class EchoApp : public App {
 public:
  explicit EchoApp(Simulator& sim, HostId host) : sim_(&sim), host_(host) {}
  void on_datagram(const Datagram& dgram) override {
    SendOptions reply;
    reply.dst = dgram.src;
    reply.src_port = dgram.dst_port;
    reply.dst_port = dgram.src_port;
    reply.payload = *dgram.payload;
    sim_->send_udp(host_, std::move(reply));
  }

 private:
  Simulator* sim_;
  HostId host_;
};

class NullApp : public App {
 public:
  void on_datagram(const Datagram&) override {}
};

struct ScenarioResult {
  std::vector<TraceRecord> trace;
  SimCounters counters;
  std::uint64_t events_executed = 0;
  std::uint64_t handshakes_rejected = 0;
  std::int64_t end_nanos = 0;
};

/// A world exercising every event kind: transparent redirects
/// (re-injection), low-TTL probes (deferred ICMP), same-timestamp
/// bursts, echo replies, stream handshake timers, and loss.
ScenarioResult run_scenario(bool typed_events) {
  SimConfig cfg;
  cfg.seed = 99;
  cfg.loss_rate = 0.02;  // exercises the RNG-coupled drop path
  // Engine A/B only: the legacy closure engine is scalar-only, so both
  // runs compare under scalar delivery. Batch-vs-scalar equivalence
  // (canonical trace digests) is tests/batch_plane_test.cpp's job.
  cfg.batch_delivery = false;
  Simulator sim(cfg);
  sim.set_typed_events_enabled(typed_events);
  auto& net = sim.net();

  auto add_as = [&](Asn asn, int hops, bool sav) {
    AsConfig as;
    as.asn = asn;
    as.internal_hops = hops;
    as.source_address_validation = sav;
    net.add_as(as);
  };
  add_as(1, 1, true);
  add_as(2, 2, true);
  add_as(3, 1, false);  // forwarder AS: SAV-free, as deployed TFs are
  add_as(4, 3, true);
  net.link(1, 2);
  net.link(2, 3);
  net.link(2, 4);
  net.announce(1, Prefix{Ipv4{10, 1, 0, 0}, 16});
  net.announce(3, Prefix{Ipv4{10, 3, 0, 0}, 16});
  net.announce(4, Prefix{Ipv4{10, 4, 0, 0}, 16});

  const HostId scanner = net.add_host(1, {Ipv4{10, 1, 0, 1}});
  const HostId fwd = net.add_host(3, {Ipv4{10, 3, 0, 1}});
  const HostId resolver = net.add_host(4, {Ipv4{10, 4, 0, 1}});
  const HostId server = net.add_host(4, {Ipv4{10, 4, 0, 2}});

  NullApp scanner_app;
  sim.bind_udp_wildcard(scanner, &scanner_app);
  EchoApp resolver_app(sim, resolver);
  sim.bind_udp(resolver, 53, &resolver_app);
  // Transparent forwarder: relays port-53 arrivals to the resolver.
  sim.add_port_redirect(fwd, 53, Ipv4{10, 4, 0, 1});

  ScenarioResult r;
  sim.add_tap([&r](TapEvent ev, const Packet& p) {
    r.trace.push_back(TraceRecord{ev, p.src.value(), p.dst.value(), p.ttl,
                                  p.src_port, p.dst_port});
  });

  // Stream handshakes: one accepted (direct), one timed out (through
  // the forwarder — the §6 property), both driven by typed timers.
  StreamCallbacks client_cbs;
  StreamEndpoint client(sim, scanner, client_cbs);
  StreamCallbacks server_cbs;
  StreamEndpoint dot(sim, server, server_cbs);
  dot.listen(853);
  client.connect(Ipv4{10, 4, 0, 2}, 853);   // direct: completes
  client.connect(Ipv4{10, 3, 0, 1}, 53);    // via TF: must time out

  // Same-timestamp probe bursts, mixed TTLs (some expire mid-path).
  for (int burst = 0; burst < 4; ++burst) {
    for (int i = 0; i < 32; ++i) {
      SendOptions probe;
      probe.dst = (i % 2 == 0) ? Ipv4{10, 3, 0, 1} : Ipv4{10, 4, 0, 1};
      probe.src_port = static_cast<std::uint16_t>(30000 + i);
      probe.dst_port = 53;
      probe.ttl = (i % 5 == 0) ? 2 : 64;  // TTL 2 dies on the path
      probe.payload = {0xAB, static_cast<std::uint8_t>(i)};
      sim.send_udp(scanner, std::move(probe));
    }
    sim.run_for(Duration::millis(5));
  }
  sim.run();
  sim.run_until(sim.now() + Duration::seconds(5));  // fire the timeouts
  sim.run();

  r.counters = sim.counters();
  r.events_executed = sim.events_executed();
  r.handshakes_rejected = client.handshakes_rejected();
  r.end_nanos = sim.now().nanos();
  return r;
}

TEST(EventEngineDeterminismTest, TypedMatchesLegacyByteForByte) {
  const ScenarioResult typed = run_scenario(true);
  const ScenarioResult legacy = run_scenario(false);

  EXPECT_FALSE(typed.trace.empty());
  EXPECT_EQ(typed.trace, legacy.trace);
  EXPECT_EQ(typed.events_executed, legacy.events_executed);
  EXPECT_EQ(typed.end_nanos, legacy.end_nanos);
  EXPECT_EQ(typed.handshakes_rejected, legacy.handshakes_rejected);
  EXPECT_EQ(typed.handshakes_rejected, 1u);

  EXPECT_EQ(typed.counters.sent, legacy.counters.sent);
  EXPECT_EQ(typed.counters.delivered, legacy.counters.delivered);
  EXPECT_EQ(typed.counters.dropped_sav, legacy.counters.dropped_sav);
  EXPECT_EQ(typed.counters.dropped_loss, legacy.counters.dropped_loss);
  EXPECT_EQ(typed.counters.dropped_no_route, legacy.counters.dropped_no_route);
  EXPECT_EQ(typed.counters.ttl_expired, legacy.counters.ttl_expired);
  EXPECT_EQ(typed.counters.icmp_generated, legacy.counters.icmp_generated);
  EXPECT_EQ(typed.counters.redirected, legacy.counters.redirected);
  // The scenario must actually exercise the interesting paths.
  EXPECT_GT(typed.counters.redirected, 0u);
  EXPECT_GT(typed.counters.ttl_expired, 0u);
  EXPECT_GT(typed.counters.icmp_generated, 0u);
}

TEST(EventEngineDeterminismTest, SameSeedSameTraceOnTypedEngine) {
  const ScenarioResult a = run_scenario(true);
  const ScenarioResult b = run_scenario(true);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

}  // namespace
}  // namespace odns::netsim
