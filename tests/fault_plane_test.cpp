// Chaos-differential harness for the adverse-network fault plane
// ("Fault plane & graceful degradation", docs/architecture.md): every
// fault decision is a stateless per-packet hash, so (1) the zero-fault
// configuration is byte-identical to an engine without the plane,
// (2) faulted runs are byte-identical across shard counts, thread
// modes, and seeds, and (3) scanner retransmissions monotonically
// recover census coverage without ever changing an existing packet's
// fate. Plus the unit surface: FaultPlane decisions, the retry-aware
// correlation rules (buffered and streaming), the retry plan shape,
// and the (time, shard, seq) merge contract under maximum jitter.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "classify/analysis.hpp"
#include "core/census.hpp"
#include "honeypot/lab.hpp"
#include "netsim/fault_plane.hpp"
#include "nodes/forwarder.hpp"
#include "scan/correlate.hpp"
#include "scan/plan.hpp"
#include "scan/stream.hpp"
#include "scan/txscanner.hpp"
#include "scan/vantage.hpp"
#include "testutil.hpp"

namespace odns {
namespace {

using netsim::FaultConfig;
using netsim::FaultPlane;
using netsim::HostId;
using netsim::OutageWindow;
using netsim::Packet;
using netsim::Protocol;
using netsim::SimConfig;
using netsim::SimCounters;
using netsim::TraceRecord;
using nodes::TransparentForwarder;
using test::MiniWorld;
using util::Duration;
using util::Ipv4;
using util::SimTime;

// ---------------------------------------------------------------------
// FaultPlane unit surface
// ---------------------------------------------------------------------

Packet make_packet(std::uint8_t last_octet) {
  Packet pkt;
  pkt.src = Ipv4{192, 0, 2, 1};
  pkt.dst = Ipv4{20, 0, 9, last_octet};
  pkt.src_port = 40000;
  pkt.dst_port = 53;
  pkt.ttl = 64;
  pkt.proto = Protocol::udp;
  pkt.payload = {0x12, 0x34, 0x01, 0x00};
  return pkt;
}

TEST(FaultPlaneUnit, DefaultConfigIsInert) {
  EXPECT_FALSE(FaultConfig{}.any());
  FaultPlane plane;
  plane.configure(FaultConfig{}, 1, Duration::micros(500));
  EXPECT_FALSE(plane.active());
  const Packet pkt = make_packet(1);
  const auto skew = plane.delivery_skew(pkt, SimTime::origin());
  EXPECT_EQ(skew.extra.count_nanos(), 0);
  EXPECT_FALSE(skew.jittered);
  EXPECT_FALSE(plane.duplicate(pkt, SimTime::origin()));
}

TEST(FaultPlaneUnit, JitterIsBoundedDeterministicAndSeedKeyed) {
  FaultConfig cfg;
  cfg.jitter_rate = 1.0;
  cfg.jitter_max = Duration::millis(10);
  FaultPlane plane;
  plane.configure(cfg, 42, Duration::micros(500));
  ASSERT_TRUE(plane.active());

  FaultPlane replay;
  replay.configure(cfg, 42, Duration::micros(500));
  FaultPlane other_seed;
  other_seed.configure(cfg, 43, Duration::micros(500));

  bool some_differ = false;
  for (std::uint8_t i = 1; i < 60; ++i) {
    const Packet pkt = make_packet(i);
    const SimTime at = SimTime::from_nanos(i * 1000);
    const auto skew = plane.delivery_skew(pkt, at);
    EXPECT_TRUE(skew.jittered);
    EXPECT_GT(skew.extra.count_nanos(), 0);
    EXPECT_LE(skew.extra.count_nanos(), cfg.jitter_max.count_nanos());
    // Same (packet, instant, seed) -> same decision, always.
    EXPECT_EQ(replay.delivery_skew(pkt, at).extra.count_nanos(),
              skew.extra.count_nanos());
    some_differ |= other_seed.delivery_skew(pkt, at).extra.count_nanos() !=
                   skew.extra.count_nanos();
  }
  EXPECT_TRUE(some_differ) << "jitter magnitudes must depend on the seed";
}

TEST(FaultPlaneUnit, ReorderSkewIsWholeHopLatencies) {
  FaultConfig cfg;
  cfg.reorder_rate = 1.0;
  cfg.reorder_cohorts_max = 4;
  const Duration hop = Duration::micros(500);
  FaultPlane plane;
  plane.configure(cfg, 7, hop);
  for (std::uint8_t i = 1; i < 40; ++i) {
    const auto skew = plane.delivery_skew(make_packet(i), SimTime::origin());
    ASSERT_TRUE(skew.reordered);
    EXPECT_EQ(skew.extra.count_nanos() % hop.count_nanos(), 0);
    EXPECT_GE(skew.extra.count_nanos(), hop.count_nanos());
    EXPECT_LE(skew.extra.count_nanos(), 4 * hop.count_nanos());
  }
}

TEST(FaultPlaneUnit, CorruptionFlipsExactlyOneUdpPayloadByte) {
  FaultConfig cfg;
  cfg.corrupt_rate = 1.0;
  FaultPlane plane;
  plane.configure(cfg, 9, Duration::micros(500));
  Packet pkt = make_packet(3);
  const std::vector<std::uint8_t> before = pkt.payload;
  ASSERT_TRUE(plane.corrupt_payload(pkt, SimTime::origin()));
  ASSERT_EQ(pkt.payload.size(), before.size());
  int flipped = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    flipped += pkt.payload[i] != before[i];
  }
  EXPECT_EQ(flipped, 1);

  // ICMP payloads and empty payloads are never touched.
  Packet icmp = make_packet(3);
  icmp.proto = Protocol::icmp;
  EXPECT_FALSE(plane.corrupt_payload(icmp, SimTime::origin()));
  Packet empty = make_packet(3);
  empty.payload.clear();
  EXPECT_FALSE(plane.corrupt_payload(empty, SimTime::origin()));
}

TEST(FaultPlaneUnit, OutageWindowsAreHalfOpenPerAs) {
  FaultConfig cfg;
  cfg.outages.push_back(OutageWindow{400, SimTime::from_nanos(1000),
                                     SimTime::from_nanos(2000)});
  FaultPlane plane;
  plane.configure(cfg, 1, Duration::micros(500));
  EXPECT_FALSE(plane.in_outage(400, SimTime::from_nanos(999)));
  EXPECT_TRUE(plane.in_outage(400, SimTime::from_nanos(1000)));
  EXPECT_TRUE(plane.in_outage(400, SimTime::from_nanos(1999)));
  EXPECT_FALSE(plane.in_outage(400, SimTime::from_nanos(2000)));
  EXPECT_FALSE(plane.in_outage(300, SimTime::from_nanos(1500)));
}

TEST(FaultPlaneUnit, UnreachableBucketFreezesVerdictPerInstantAndRefills) {
  FaultConfig cfg;
  cfg.outages.push_back(
      OutageWindow{400, SimTime::origin(), SimTime::from_nanos(1)});
  cfg.unreachable_per_second = 2.0;  // burst 2, refill 2/s
  FaultPlane plane;
  plane.configure(cfg, 1, Duration::micros(500));
  plane.resize_buckets(1);

  // Fresh bucket starts full (burst 2): the first instant's verdict is
  // admit, and every same-instant emission shares it (order-independent
  // within the instant, consuming into bounded debt).
  const SimTime t0 = SimTime::from_nanos(5000);
  EXPECT_TRUE(plane.allow_unreachable(0, t0));
  EXPECT_TRUE(plane.allow_unreachable(0, t0));
  EXPECT_TRUE(plane.allow_unreachable(0, t0));

  // Immediately after, the bucket is deep in debt: suppressed.
  EXPECT_FALSE(plane.allow_unreachable(0, t0 + Duration::nanos(1)));

  // Two seconds at 2/s repay the debt (clamped at the burst).
  EXPECT_TRUE(plane.allow_unreachable(0, t0 + Duration::seconds(2)));
}

// ---------------------------------------------------------------------
// Chaos differential: faulted runs invariant across shard counts
// ---------------------------------------------------------------------

struct RunFingerprint {
  SimCounters counters;
  std::uint64_t trace_digest = 0;
  std::string transactions;
  scan::ScannerStats stats;

  friend bool operator==(const RunFingerprint& a, const RunFingerprint& b) {
    return a.counters == b.counters && a.trace_digest == b.trace_digest &&
           a.transactions == b.transactions &&
           a.stats.probes_sent == b.stats.probes_sent &&
           a.stats.probes_retried == b.stats.probes_retried &&
           a.stats.responses_received == b.stats.responses_received &&
           a.stats.responses_unmatched == b.stats.responses_unmatched &&
           a.stats.responses_duplicate == b.stats.responses_duplicate &&
           a.stats.responses_late == b.stats.responses_late &&
           a.stats.parse_errors == b.stats.parse_errors &&
           a.stats.responses_corrupt == b.stats.responses_corrupt &&
           a.stats.icmp_errors == b.stats.icmp_errors;
  }
};

std::string render_transactions(const std::vector<scan::Transaction>& txns) {
  std::ostringstream out;
  for (const auto& t : txns) {
    out << t.target.to_string() << ' ' << t.answered << ' '
        << t.response_src.to_string() << ' ' << t.rtt.count_nanos() << ' '
        << static_cast<int>(t.rcode);
    for (const auto& a : t.answer_addrs) out << ' ' << a.to_string();
    out << '\n';
  }
  return out.str();
}

FaultConfig chaos_faults() {
  FaultConfig f;
  f.jitter_rate = 0.3;
  f.jitter_max = Duration::millis(5);
  f.reorder_rate = 0.15;
  f.dup_rate = 0.1;
  f.corrupt_rate = 0.05;
  return f;
}

/// MiniWorld + a row of transparent forwarders, scanned by the classic
/// scanner under `cfg.faults` (and optional retries).
RunFingerprint run_chaos_scan(SimConfig cfg, int forwarders,
                              std::uint32_t retries = 0) {
  MiniWorld world(cfg);
  world.sim.set_packet_trace_enabled(true);

  std::vector<std::unique_ptr<TransparentForwarder>> tfs;
  std::vector<Ipv4> targets;
  for (int i = 0; i < forwarders; ++i) {
    const Ipv4 addr{20, 0, 9, static_cast<std::uint8_t>(1 + i)};
    const HostId host = world.add_access_host(addr);
    tfs.push_back(std::make_unique<TransparentForwarder>(
        world.sim, host, test::kResolverAddr));
    tfs.back()->install();
    targets.push_back(addr);
  }
  targets.push_back(test::kResolverAddr);
  targets.push_back(Ipv4{20, 0, 9, 200});  // unresponsive

  scan::ScanConfig sc;
  sc.qname = world.scan_name;
  sc.timeout = Duration::seconds(4);
  sc.max_retries = retries;
  sc.backoff_base = Duration::millis(200);
  scan::TransactionalScanner scanner(world.sim, world.scanner_host, sc);
  scanner.start(targets);
  scanner.run_to_completion();

  RunFingerprint fp;
  fp.transactions = render_transactions(scanner.correlate());
  fp.counters = world.sim.counters();
  fp.trace_digest = world.sim.canonical_trace_digest();
  fp.stats = scanner.stats();
  return fp;
}

SimConfig chaos_cfg(std::uint32_t shards, bool threads, std::uint64_t seed) {
  SimConfig cfg;
  cfg.seed = seed;
  cfg.shards = shards;
  cfg.shard_threads = threads;
  cfg.loss_rate = 0.03;
  cfg.faults = chaos_faults();
  return cfg;
}

TEST(ChaosDifferential, FaultedScanInvariantAcrossShardCountsAndThreads) {
  for (const std::uint64_t seed : {1ull, 7ull, 2021ull}) {
    const auto reference = run_chaos_scan(chaos_cfg(1, false, seed), 8);
    // The faults must actually be firing, or this test proves nothing.
    EXPECT_GT(reference.counters.jittered, 0u);
    EXPECT_GT(reference.counters.duplicated, 0u);
    for (const std::uint32_t shards : {2u, 8u}) {
      for (const bool threads : {false, true}) {
        const auto fp = run_chaos_scan(chaos_cfg(shards, threads, seed), 8);
        EXPECT_EQ(fp, reference) << "shards=" << shards
                                 << " threads=" << threads << " seed=" << seed;
      }
    }
  }
}

TEST(ChaosDifferential, RetriedFaultedScanInvariantAcrossShardCounts) {
  // Retransmissions are plan-level and unconditional, so the full
  // faulted + retried run keeps the invariance bar.
  const auto reference = run_chaos_scan(chaos_cfg(1, false, 77), 8, 2);
  EXPECT_GT(reference.stats.probes_retried, 0u);
  for (const std::uint32_t shards : {2u, 8u}) {
    const auto fp = run_chaos_scan(chaos_cfg(shards, true, 77), 8, 2);
    EXPECT_EQ(fp, reference) << "shards=" << shards;
  }
}

TEST(ChaosDifferential, ZeroFaultConfigLeavesClassicRunUntouched) {
  // A SimConfig with a default-constructed FaultConfig must reproduce
  // the classic scan byte for byte, with every fault counter at zero.
  SimConfig plain;
  plain.seed = 5;
  const auto reference = run_chaos_scan(plain, 6);
  SimConfig zeroed;
  zeroed.seed = 5;
  zeroed.faults = FaultConfig{};
  zeroed.faults.jitter_max = Duration::millis(99);  // knobs without rates
  zeroed.faults.reorder_cohorts_max = 7;
  zeroed.faults.unreachable_per_second = 50.0;
  const auto fp = run_chaos_scan(zeroed, 6);
  EXPECT_EQ(fp, reference);
  EXPECT_EQ(fp.counters.jittered, 0u);
  EXPECT_EQ(fp.counters.reordered, 0u);
  EXPECT_EQ(fp.counters.duplicated, 0u);
  EXPECT_EQ(fp.counters.corrupted, 0u);
  EXPECT_EQ(fp.counters.dropped_outage, 0u);
  EXPECT_EQ(fp.counters.icmp_unreachable_suppressed, 0u);
}

// ---------------------------------------------------------------------
// Outages: dark windows, rate-limited unreachable, retry recovery
// ---------------------------------------------------------------------

struct OutageRun {
  RunFingerprint fp;
  std::uint64_t answered = 0;
};

OutageRun run_outage_scan(SimConfig cfg, std::uint32_t retries) {
  MiniWorld world(cfg);
  world.sim.set_packet_trace_enabled(true);
  std::vector<std::unique_ptr<TransparentForwarder>> tfs;
  std::vector<Ipv4> targets;
  for (int i = 0; i < 50; ++i) {
    const Ipv4 addr{20, 0, 9, static_cast<std::uint8_t>(1 + i)};
    const HostId host = world.add_access_host(addr);
    tfs.push_back(std::make_unique<TransparentForwarder>(
        world.sim, host, test::kResolverAddr));
    tfs.back()->install();
    targets.push_back(addr);
  }
  targets.push_back(test::kResolverAddr);

  scan::ScanConfig sc;
  sc.qname = world.scan_name;
  sc.timeout = Duration::seconds(4);
  sc.max_retries = retries;
  sc.backoff_base = Duration::millis(100);
  scan::TransactionalScanner scanner(world.sim, world.scanner_host, sc);
  scanner.start(targets);
  scanner.run_to_completion();

  OutageRun run;
  const auto txns = scanner.correlate();
  for (const auto& t : txns) run.answered += t.answered;
  run.fp.transactions = render_transactions(txns);
  run.fp.counters = world.sim.counters();
  run.fp.trace_digest = world.sim.canonical_trace_digest();
  run.fp.stats = scanner.stats();
  return run;
}

SimConfig outage_baseline_cfg() {
  SimConfig cfg;
  cfg.seed = 11;
  return cfg;
}

SimConfig outage_cfg(std::uint32_t shards, double unreachable_rate) {
  SimConfig cfg;
  cfg.seed = 11;
  cfg.shards = shards;
  cfg.shard_threads = shards > 1;
  // The access network goes dark for the first 4 ms of the scan: probes
  // arriving before the window closes are dropped at the would-be
  // delivery instant, later ones get through.
  cfg.faults.outages.push_back(
      OutageWindow{test::kAccessAsn, SimTime::origin(),
                   SimTime::origin() + Duration::millis(4)});
  cfg.faults.unreachable_per_second = unreachable_rate;
  return cfg;
}

TEST(OutagePlane, DarkWindowDropsThenRecoversAndStaysShardInvariant) {
  const OutageRun baseline = run_outage_scan(outage_baseline_cfg(), 0);
  const OutageRun dark = run_outage_scan(outage_cfg(1, 0.0), 0);
  EXPECT_GT(dark.fp.counters.dropped_outage, 0u);
  EXPECT_GT(dark.answered, 0u) << "targets past the window must recover";
  EXPECT_LT(dark.answered, baseline.answered)
      << "targets inside the window must be lost";
  // Silent mode: no unreachable emission at all.
  EXPECT_EQ(dark.fp.stats.icmp_errors, 0u);
  for (const std::uint32_t shards : {2u, 8u}) {
    const OutageRun fp = run_outage_scan(outage_cfg(shards, 0.0), 0);
    EXPECT_EQ(fp.fp, dark.fp) << "shards=" << shards;
  }
}

TEST(OutagePlane, UnreachableEmissionIsRateLimitedAndShardInvariant) {
  const OutageRun run = run_outage_scan(outage_cfg(1, 1.0), 0);
  EXPECT_GE(run.fp.stats.icmp_errors, 1u)
      << "the dark border router must answer at least the first drop";
  EXPECT_GT(run.fp.counters.icmp_unreachable_suppressed, 0u)
      << "the token bucket must clamp the rest of the burst";
  EXPECT_LT(run.fp.stats.icmp_errors,
            run.fp.counters.dropped_outage)
      << "unreachable emission must stay below one per dropped packet";
  for (const std::uint32_t shards : {2u, 8u}) {
    const OutageRun fp = run_outage_scan(outage_cfg(shards, 1.0), 0);
    EXPECT_EQ(fp.fp, run.fp) << "shards=" << shards;
  }
}

TEST(OutagePlane, RetriesRecoverEveryTargetLostToTheWindow) {
  // Retries land 100 ms and 300 ms after the originals — far past the
  // 4 ms dark window — so the retried census recovers the full
  // baseline population.
  const OutageRun baseline = run_outage_scan(outage_baseline_cfg(), 0);
  const OutageRun dark = run_outage_scan(outage_cfg(1, 0.0), 0);
  const OutageRun retried = run_outage_scan(outage_cfg(1, 0.0), 2);
  EXPECT_GT(retried.fp.stats.probes_retried, 0u);
  EXPECT_GT(retried.answered, dark.answered);
  EXPECT_EQ(retried.answered, baseline.answered);
}

// ---------------------------------------------------------------------
// Merge contract and streaming watermarks under maximum fault skew
// ---------------------------------------------------------------------

TEST(MergeContract, TraceStaysSortedByTimeShardSeqUnderMaxJitter) {
  SimConfig cfg;
  cfg.seed = 3;
  cfg.shards = 4;
  cfg.shard_threads = true;
  cfg.faults.jitter_rate = 1.0;
  cfg.faults.jitter_max = Duration::millis(20);
  cfg.faults.reorder_rate = 1.0;
  cfg.faults.dup_rate = 0.2;

  MiniWorld world(cfg);
  world.sim.set_packet_trace_enabled(true);
  std::vector<std::unique_ptr<TransparentForwarder>> tfs;
  std::vector<Ipv4> targets;
  for (int i = 0; i < 12; ++i) {
    const Ipv4 addr{20, 0, 9, static_cast<std::uint8_t>(1 + i)};
    const HostId host = world.add_access_host(addr);
    tfs.push_back(std::make_unique<TransparentForwarder>(
        world.sim, host, test::kResolverAddr));
    tfs.back()->install();
    targets.push_back(addr);
  }
  scan::ScanConfig sc;
  sc.qname = world.scan_name;
  sc.timeout = Duration::seconds(2);
  scan::TransactionalScanner scanner(world.sim, world.scanner_host, sc);
  scanner.start(targets);
  scanner.run_to_completion();

  const std::vector<TraceRecord> trace = world.sim.merged_trace();
  ASSERT_FALSE(trace.empty());
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const TraceRecord& a = trace[i - 1];
    const TraceRecord& b = trace[i];
    const bool ordered =
        a.at < b.at || (a.at == b.at && a.shard < b.shard) ||
        (a.at == b.at && a.shard == b.shard && a.seq < b.seq);
    ASSERT_TRUE(ordered) << "merge contract violated at record " << i;
  }
}

TEST(MergeContract, StreamingFinalizationStaysMonotoneUnderMaxJitter) {
  // The correlator finalizes probes in index order even when every
  // response is jittered/reordered to the maximum: watermarks only
  // advance, and the sink must observe strictly increasing indices.
  SimConfig cfg;
  cfg.seed = 13;
  cfg.shards = 4;
  cfg.shard_threads = true;
  cfg.faults.jitter_rate = 1.0;
  cfg.faults.jitter_max = Duration::millis(20);
  cfg.faults.reorder_rate = 1.0;
  cfg.faults.dup_rate = 0.3;

  MiniWorld world(cfg);
  std::vector<std::unique_ptr<TransparentForwarder>> tfs;
  std::vector<Ipv4> targets;
  for (int i = 0; i < 12; ++i) {
    const Ipv4 addr{20, 0, 9, static_cast<std::uint8_t>(1 + i)};
    const HostId host = world.add_access_host(addr);
    tfs.push_back(std::make_unique<TransparentForwarder>(
        world.sim, host, test::kResolverAddr));
    tfs.back()->install();
    targets.push_back(addr);
  }
  targets.push_back(test::kResolverAddr);

  scan::ScanConfig sc;
  sc.qname = world.scan_name;
  sc.timeout = Duration::seconds(2);
  sc.max_retries = 1;
  sc.backoff_base = Duration::millis(100);
  scan::VantageSet set(world.sim, sc, test::kScannerAddr,
                       honeypot::attach_capture_vantages(
                           world.sim.net(), test::kScannerAsn, 4));
  set.start(targets);

  std::vector<std::size_t> order;
  set.run_and_correlate_streaming(
      Duration::millis(100),
      [&](std::size_t i, scan::Transaction&&) { order.push_back(i); });
  ASSERT_EQ(order.size(), targets.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    ASSERT_EQ(order[i], i) << "finalization order must follow probe order";
  }
}

// ---------------------------------------------------------------------
// Retry-aware correlation rules (buffered + streaming differential)
// ---------------------------------------------------------------------

scan::RawResponse make_response(const scan::SentProbe& probe, SimTime at) {
  scan::RawResponse rec;
  rec.src = probe.target;
  rec.src_port = 53;
  rec.dst_port = probe.src_port;
  rec.txid = probe.txid;
  rec.at = at;
  return rec;
}

TEST(RetryCorrelation, WindowRulesOnBufferedJoin) {
  // timeout 2 s, retries with backoff 1 s x 2 -> extension 3 s.
  const Duration timeout = Duration::seconds(2);
  const Duration extension = Duration::seconds(3);
  const std::vector<scan::SentProbe> probes = {
      {Ipv4{20, 0, 9, 1}, 1024, 1, SimTime::origin()},
      {Ipv4{20, 0, 9, 2}, 1025, 1, SimTime::origin()},
      {Ipv4{20, 0, 9, 3}, 1026, 1, SimTime::origin()},
  };
  std::vector<scan::RawResponse> capture;
  // Probe 0: answered in-window; a second copy inside the original
  // window is a duplicate; a third past it is late (the post-retry
  // straggler rule).
  capture.push_back(make_response(probes[0], SimTime::from_nanos(500000000)));
  capture.push_back(make_response(probes[0], SimTime::from_nanos(1500000000)));
  capture.push_back(
      make_response(probes[0], SimTime::origin() + Duration::millis(2500)));
  // Probe 1: first response arrives past the original window but inside
  // the retry extension -> a retry's answer, counted as the answer with
  // rtt from the original send.
  capture.push_back(
      make_response(probes[1], SimTime::origin() + Duration::seconds(4)));
  // Probe 2: response past timeout + extension -> late, unanswered.
  capture.push_back(make_response(
      probes[2], SimTime::origin() + Duration::millis(5500)));

  scan::ScannerStats stats;
  const auto txns =
      scan::correlate_capture(probes, capture, timeout, stats, extension);
  ASSERT_EQ(txns.size(), 3u);
  EXPECT_TRUE(txns[0].answered);
  EXPECT_EQ(txns[0].rtt.count_nanos(), 500000000);
  EXPECT_TRUE(txns[1].answered);
  EXPECT_EQ(txns[1].rtt, Duration::seconds(4));
  EXPECT_FALSE(txns[2].answered);
  EXPECT_EQ(stats.responses_duplicate, 1u);
  EXPECT_EQ(stats.responses_late, 2u);
  EXPECT_EQ(stats.responses_unmatched, 0u);

  // With extension 0 the classic rules hold: probe 1's response is
  // plain late.
  scan::ScannerStats classic;
  const auto plain = scan::correlate_capture(probes, capture, timeout,
                                             classic, Duration::nanos(0));
  EXPECT_FALSE(plain[1].answered);
  EXPECT_EQ(classic.responses_late, 3u);
}

TEST(RetryCorrelation, StreamingMatchesBufferedOnRetryWindows) {
  const Duration timeout = Duration::seconds(2);
  const Duration extension = Duration::seconds(3);
  std::vector<scan::SentProbe> probes;
  for (std::uint16_t i = 0; i < 6; ++i) {
    probes.push_back({Ipv4{20, 0, 9, static_cast<std::uint8_t>(1 + i)},
                      static_cast<std::uint16_t>(1024 + i), 1,
                      SimTime::origin() + Duration::millis(50 * i)});
  }
  std::vector<scan::RawResponse> capture;
  capture.push_back(make_response(probes[0], SimTime::from_nanos(800000000)));
  capture.push_back(make_response(probes[0], SimTime::from_nanos(900000000)));
  capture.push_back(
      make_response(probes[1], SimTime::origin() + Duration::seconds(3)));
  capture.push_back(
      make_response(probes[2], SimTime::origin() + Duration::seconds(6)));
  capture.push_back(
      make_response(probes[0], SimTime::origin() + Duration::seconds(4)));
  std::sort(capture.begin(), capture.end(),
            [](const scan::RawResponse& a, const scan::RawResponse& b) {
              return a.at < b.at;
            });

  scan::ScannerStats buffered_stats;
  const auto buffered = scan::correlate_capture(probes, capture, timeout,
                                                buffered_stats, extension);

  scan::ScannerStats streamed_stats;
  scan::StreamingCorrelator corr(probes, timeout, streamed_stats, extension);
  std::vector<scan::Transaction> streamed(probes.size());
  const scan::StreamingCorrelator::Sink sink =
      [&](std::size_t i, scan::Transaction&& txn) {
        streamed[i] = std::move(txn);
      };
  for (auto& rec : capture) {
    // Production order (VantageSet::run_and_correlate_streaming): all
    // records at or before a watermark are consumed before advancing.
    const SimTime watermark = rec.at;
    corr.consume(std::move(rec));
    corr.advance(watermark, sink);
  }
  corr.finish(sink);

  EXPECT_EQ(render_transactions(streamed), render_transactions(buffered));
  EXPECT_EQ(streamed_stats.responses_duplicate,
            buffered_stats.responses_duplicate);
  EXPECT_EQ(streamed_stats.responses_late, buffered_stats.responses_late);
  EXPECT_EQ(streamed_stats.responses_unmatched,
            buffered_stats.responses_unmatched);
}

TEST(RetryPlan, AppendsBackoffEntriesAndKeepsClassicShape) {
  netsim::Simulator sim;
  scan::ScanConfig sc;
  sc.probes_per_second = 20000;  // 50 us gap
  const std::vector<Ipv4> targets = {
      Ipv4{20, 0, 9, 1}, Ipv4{20, 0, 9, 2}, Ipv4{20, 0, 9, 3}};

  const auto classic = scan::VantagePlan::build(sim, sc, targets);
  EXPECT_EQ(classic.probes().size(), 3u);
  EXPECT_EQ(classic.original_count(), 3u);
  EXPECT_EQ(classic.span(), classic.pacing_gap() * 3);
  EXPECT_EQ(classic.last_at(), classic.pacing_gap() * 2);

  sc.max_retries = 2;
  sc.backoff_base = Duration::seconds(1);
  const auto retried = scan::VantagePlan::build(sim, sc, targets);
  ASSERT_EQ(retried.probes().size(), 9u);
  EXPECT_EQ(retried.original_count(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    // Originals are an identical prefix.
    EXPECT_EQ(retried.probes()[i].at, classic.probes()[i].at);
    EXPECT_EQ(retried.probes()[i].attempt, 0);
    EXPECT_EQ(retried.probes()[i].origin, i);
    // Retry k reuses the original tuple at offset backoff * (2^k - 1).
    for (std::uint32_t k = 1; k <= 2; ++k) {
      const auto& r = retried.probes()[k * 3 + i];
      EXPECT_EQ(r.attempt, k);
      EXPECT_EQ(r.origin, i);
      EXPECT_EQ(r.target, retried.probes()[i].target);
      EXPECT_EQ(r.src_port, retried.probes()[i].src_port);
      EXPECT_EQ(r.txid, retried.probes()[i].txid);
      EXPECT_EQ(r.at, retried.probes()[i].at +
                          Duration::seconds(1) *
                              static_cast<std::int64_t>((1u << k) - 1));
    }
  }
  EXPECT_EQ(retried.last_at(),
            classic.pacing_gap() * 2 + Duration::seconds(3));
  EXPECT_EQ(retried.span(), retried.last_at() + retried.pacing_gap());
  EXPECT_EQ(sc.retry_extension(), Duration::seconds(3));
}

// ---------------------------------------------------------------------
// Census-level degradation: coverage, invariance, retry recovery
// ---------------------------------------------------------------------

core::CensusConfig faulted_census_cfg(std::uint64_t seed) {
  core::CensusConfig cfg;
  cfg.topology.scale = 0.0015;
  cfg.topology.max_countries = 10;
  cfg.topology.seed = seed;
  cfg.topology.sim.seed = seed;
  cfg.topology.sim.loss_rate = 0.02;
  cfg.topology.sim.faults = chaos_faults();
  cfg.topology.bulk_population = true;
  cfg.scan_timeout = util::Duration::seconds(2);
  cfg.scan_max_retries = 1;
  cfg.scan_retry_backoff = util::Duration::millis(500);
  return cfg;
}

std::string census_run_fingerprint(const core::CensusResult& result) {
  std::ostringstream out;
  out << std::hex << classify::census_fingerprint(result.census) << '\n';
  for (const auto& txn : result.transactions) {
    out << txn.target.value() << ',' << txn.sent_at.nanos() << ','
        << txn.answered;
    if (txn.answered) {
      out << ',' << txn.response_src.value() << ',' << txn.rtt.count_nanos()
          << ',' << static_cast<int>(txn.rcode);
      for (const auto a : txn.answer_addrs) out << ',' << a.value();
    }
    out << '\n';
  }
  const auto& s = result.degradation.scan;
  out << std::dec << s.probes_sent << '/' << s.probes_retried << '/'
      << s.responses_received << '/' << s.responses_unmatched << '/'
      << s.responses_duplicate << '/' << s.responses_late << '/'
      << s.parse_errors << '/' << s.responses_corrupt << '/' << s.icmp_errors
      << '\n';
  out << result.degradation.targets_probed << ' '
      << result.degradation.targets_answered << ' '
      << result.degradation.ases_probed << ' '
      << result.degradation.ases_degraded << ' '
      << result.degradation.ases_dark << '\n';
  return out.str();
}

TEST(FaultedCensus, InvariantAcrossShardsThreadsSeeds) {
  for (const std::uint64_t seed : {1ull, 7ull}) {
    core::CensusConfig base = faulted_census_cfg(seed);
    base.vantages = 1;
    base.shard_interleaved_targets = true;
    const auto buffered = core::run_census(base);
    const std::string reference = census_run_fingerprint(buffered);
    EXPECT_GT(buffered.degradation.net.jittered, 0u);
    EXPECT_GT(buffered.degradation.scan.probes_retried, 0u);
    EXPECT_LT(buffered.degradation.coverage(), 1.0);

    struct Variant {
      std::uint32_t shards;
      bool threads;
    };
    for (const Variant v : {Variant{2, true}, Variant{8, true}}) {
      core::CensusConfig cfg = faulted_census_cfg(seed);
      cfg.sim_shards = v.shards;
      cfg.topology.sim.shard_threads = v.threads;
      cfg.shard_interleaved_targets = true;
      cfg.vantages = v.shards;
      cfg.streaming_correlation = true;
      cfg.correlate_flush = util::Duration::millis(250);
      const auto streamed = core::run_census(cfg);
      EXPECT_EQ(census_run_fingerprint(streamed), reference)
          << "seed=" << seed << " shards=" << v.shards;
    }
  }
}

TEST(FaultedCensus, RetriesMonotonicallyRecoverPerAsCoverage) {
  auto run_with_retries = [](std::uint32_t retries) {
    core::CensusConfig cfg;
    cfg.topology.scale = 0.0015;
    cfg.topology.max_countries = 10;
    cfg.topology.seed = 4;
    cfg.topology.sim.seed = 4;
    cfg.topology.sim.loss_rate = 0.05;
    cfg.topology.bulk_population = true;
    cfg.scan_timeout = util::Duration::seconds(2);
    cfg.scan_max_retries = retries;
    cfg.scan_retry_backoff = util::Duration::millis(500);
    return core::run_census(cfg);
  };
  const auto base = run_with_retries(0);
  const auto retried = run_with_retries(2);
  ASSERT_GT(base.degradation.targets_probed, 0u);
  EXPECT_GT(retried.degradation.scan.probes_retried, 0u);

  // Per-AS monotonicity: retries only add packets, and stateless fault
  // decisions keep every original packet's fate — no AS may lose an
  // answer to a retry.
  for (const auto& [asn, cov] : base.census.coverage_by_asn) {
    const auto it = retried.census.coverage_by_asn.find(asn);
    ASSERT_NE(it, retried.census.coverage_by_asn.end());
    EXPECT_EQ(it->second.probed, cov.probed);
    EXPECT_GE(it->second.answered, cov.answered) << "asn=" << asn;
  }
  // And the recovery must be real: strictly more answers overall.
  EXPECT_GT(retried.degradation.targets_answered,
            base.degradation.targets_answered);
  EXPECT_GT(retried.degradation.coverage(), base.degradation.coverage());
  EXPECT_LE(retried.degradation.ases_degraded,
            base.degradation.ases_degraded);
}

TEST(FaultedCensus, RetriesAreInertOnALosslessWorld) {
  // Without loss every original probe answers in-window; retry answers
  // dedup as duplicates/late and the census tables stay byte-identical.
  auto run_with_retries = [](std::uint32_t retries) {
    core::CensusConfig cfg;
    cfg.topology.scale = 0.0015;
    cfg.topology.max_countries = 10;
    cfg.topology.seed = 4;
    cfg.topology.sim.seed = 4;
    cfg.scan_timeout = util::Duration::seconds(2);
    cfg.topology.bulk_population = true;
    cfg.scan_max_retries = retries;
    cfg.scan_retry_backoff = util::Duration::millis(500);
    return core::run_census(cfg);
  };
  const auto base = run_with_retries(0);
  const auto retried = run_with_retries(2);
  EXPECT_EQ(classify::census_fingerprint(retried.census),
            classify::census_fingerprint(base.census));
  EXPECT_EQ(retried.degradation.coverage(), base.degradation.coverage());
}

TEST(FaultedCensus, DegradationReportIsCleanOnAFaultFreeRun) {
  core::CensusConfig cfg;
  cfg.topology.scale = 0.0015;
  cfg.topology.max_countries = 5;
  cfg.topology.seed = 2;
  cfg.topology.sim.seed = 2;
  cfg.topology.bulk_population = true;
  cfg.scan_timeout = util::Duration::seconds(2);
  const auto result = core::run_census(cfg);
  const auto& d = result.degradation;
  EXPECT_EQ(d.targets_probed,
            result.census.rr + result.census.rf + result.census.tf +
                result.census.invalid + result.census.unresponsive);
  EXPECT_EQ(d.targets_answered, d.targets_probed - result.census.unresponsive);
  EXPECT_GT(d.ases_probed, 0u);
  EXPECT_EQ(d.net.jittered, 0u);
  EXPECT_EQ(d.net.dropped_outage, 0u);
  EXPECT_EQ(d.scan.probes_retried, 0u);
  EXPECT_EQ(d.scan.responses_corrupt, 0u);
}

}  // namespace
}  // namespace odns
