#include <gtest/gtest.h>

#include <memory>

#include "core/census.hpp"
#include "honeypot/lab.hpp"
#include "scan/campaigns.hpp"
#include "scan/txscanner.hpp"
#include "topo/deployment.hpp"

namespace odns::honeypot {
namespace {

using scan::CampaignKind;
using util::Duration;
using util::Ipv4;
using util::Prefix;

/// The §3 controlled experiment: a real (small) world with public
/// resolvers, the sensor lab attached, and the three campaign models
/// scanning it from separate vantage networks.
///
/// Each TEST builds its own world (per-test SetUp, not SetUpTestSuite),
/// so the cases share no accumulated state and CTest can register and
/// parallelise them individually (gtest_discover_tests).
class ControlledExperiment : public ::testing::Test {
 protected:
  void SetUp() override {
    topo::TopologyConfig cfg;
    cfg.scale = 0.001;
    cfg.max_countries = 3;  // tiny but complete world
    cfg.seed = 31;
    world_ = topo::TopologyBuilder::build(cfg);
    lab_ = std::make_unique<SensorLab>(deploy_sensor_lab(
        *world_, Prefix{Ipv4{203, 0, 113, 0}, 24}, Ipv4{8, 8, 8, 8}));
  }

  /// All four sensor-facing addresses.
  std::vector<Ipv4> sensor_targets() const {
    return {lab_->sensor1_addr, lab_->sensor2_recv_addr,
            lab_->sensor2_send_addr, lab_->sensor3_addr};
  }

  std::unique_ptr<scan::StatelessCampaign> run_campaign(CampaignKind kind,
                                                        Ipv4 vantage_base) {
    return core::run_campaign(*world_, kind, Prefix{vantage_base, 24},
                              sensor_targets());
  }

  std::unique_ptr<topo::Deployment> world_;
  std::unique_ptr<SensorLab> lab_;
};

TEST_F(ControlledExperiment, Table3ShadowserverRow) {
  const auto campaign =
      run_campaign(CampaignKind::shadowserver, Ipv4{198, 18, 1, 0});
  // ✓ sensor 1 (IP1), ✘ IP2, ✓ IP3 (the replying address), ✘ IP4.
  EXPECT_TRUE(campaign->has_discovered(lab_->sensor1_addr));
  EXPECT_FALSE(campaign->has_discovered(lab_->sensor2_recv_addr));
  EXPECT_TRUE(campaign->has_discovered(lab_->sensor2_send_addr));
  EXPECT_FALSE(campaign->has_discovered(lab_->sensor3_addr));
}

TEST_F(ControlledExperiment, Table3CensysRow) {
  const auto campaign =
      run_campaign(CampaignKind::censys, Ipv4{198, 18, 2, 0});
  // ✓ IP1 only: the sanitizing step drops IP3's off-target response.
  EXPECT_TRUE(campaign->has_discovered(lab_->sensor1_addr));
  EXPECT_FALSE(campaign->has_discovered(lab_->sensor2_recv_addr));
  EXPECT_FALSE(campaign->has_discovered(lab_->sensor2_send_addr));
  EXPECT_FALSE(campaign->has_discovered(lab_->sensor3_addr));
}

TEST_F(ControlledExperiment, Table3ShodanRow) {
  const auto campaign =
      run_campaign(CampaignKind::shodan, Ipv4{198, 18, 3, 0});
  EXPECT_TRUE(campaign->has_discovered(lab_->sensor1_addr));
  EXPECT_FALSE(campaign->has_discovered(lab_->sensor2_recv_addr));
  EXPECT_FALSE(campaign->has_discovered(lab_->sensor2_send_addr));
  EXPECT_FALSE(campaign->has_discovered(lab_->sensor3_addr));
}

TEST_F(ControlledExperiment, TransactionalScanFindsAllThreeSensors) {
  // The contrast: this work's scanner identifies every sensor at its
  // probed address.
  const auto host = attach_vantage(*world_, Prefix{Ipv4{198, 18, 4, 0}, 24},
                                   Ipv4{198, 18, 4, 7});
  scan::ScanConfig cfg;
  cfg.qname = world_->scan_name();
  scan::TransactionalScanner scanner(world_->sim(), host, cfg);
  scanner.start({lab_->sensor1_addr, lab_->sensor2_recv_addr,
                 lab_->sensor3_addr});
  scanner.run_to_completion();
  const auto txns = scanner.correlate();
  ASSERT_EQ(txns.size(), 3u);
  EXPECT_TRUE(txns[0].answered);
  EXPECT_EQ(txns[0].response_src, lab_->sensor1_addr);     // resolver-like
  EXPECT_TRUE(txns[1].answered);
  EXPECT_EQ(txns[1].response_src, lab_->sensor2_send_addr);  // interior TF
  EXPECT_TRUE(txns[2].answered);
  EXPECT_NE(txns[2].response_src, lab_->sensor3_addr);       // exterior TF
}

TEST_F(ControlledExperiment, Sensor3NeverSeesTheAnswer) {
  // Drive traffic through the exterior forwarder ourselves (the fixture
  // is per-test now, so no earlier campaign has touched it).
  run_campaign(CampaignKind::shadowserver, Ipv4{198, 18, 1, 0});
  EXPECT_GT(lab_->sensor3->relayed(), 0u);
  // The sensor relays queries but receives no responses back.
  EXPECT_EQ(lab_->sensor3->counters().responses_in, 0u);
}

TEST_F(ControlledExperiment, RateLimiterSuppressesRepeatedProbes) {
  const auto host = attach_vantage(*world_, Prefix{Ipv4{198, 18, 5, 0}, 24},
                                   Ipv4{198, 18, 5, 7});
  scan::ScanConfig cfg;
  cfg.qname = world_->scan_name();
  cfg.timeout = Duration::seconds(5);
  scan::TransactionalScanner scanner(world_->sim(), host, cfg);
  // Two probes to sensor 1 in quick succession from the same /24:
  // only the first is answered.
  scanner.start({lab_->sensor1_addr, lab_->sensor1_addr});
  scanner.run_to_completion();
  const auto txns = scanner.correlate();
  ASSERT_EQ(txns.size(), 2u);
  EXPECT_TRUE(txns[0].answered);
  EXPECT_FALSE(txns[1].answered);
}

}  // namespace
}  // namespace odns::honeypot
