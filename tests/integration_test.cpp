#include <gtest/gtest.h>

#include <unordered_map>

#include "core/census.hpp"
#include "core/report.hpp"
#include "util/stats.hpp"

namespace odns::core {
namespace {

using classify::Klass;
using topo::OdnsKind;
using util::Ipv4;

Klass expected_klass(OdnsKind kind) {
  switch (kind) {
    case OdnsKind::recursive_resolver: return Klass::recursive_resolver;
    case OdnsKind::recursive_forwarder: return Klass::recursive_forwarder;
    case OdnsKind::transparent_forwarder: return Klass::transparent_forwarder;
  }
  return Klass::unresponsive;
}

/// One full census at small scale, shared by all integration tests
/// (building + scanning once keeps the suite fast).
class FullCensus : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CensusConfig cfg;
    cfg.topology.scale = 0.005;
    cfg.topology.seed = 1234;
    result_ = new CensusResult(run_census(cfg));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static CensusResult* result_;
};

CensusResult* FullCensus::result_ = nullptr;

TEST_F(FullCensus, EveryProbeGetsExactlyOneTransaction) {
  EXPECT_EQ(result_->transactions.size(),
            result_->world->ground_truth().size());
  EXPECT_EQ(result_->scanner->stats().responses_unmatched, 0u);
}

TEST_F(FullCensus, ClassificationMatchesGroundTruth) {
  std::unordered_map<Ipv4, Klass> classified;
  for (const auto& item : result_->classified) {
    classified[item.txn.target] = item.klass;
  }
  std::uint64_t correct = 0;
  std::uint64_t manipulated = 0;
  std::uint64_t total = 0;
  for (const auto& gt : result_->world->ground_truth()) {
    ++total;
    const auto it = classified.find(gt.addr);
    ASSERT_NE(it, classified.end()) << gt.addr.to_string();
    if (gt.kind == OdnsKind::recursive_forwarder && gt.chained) {
      // Manipulating forwarders must be rejected by strict validation.
      EXPECT_EQ(it->second, Klass::invalid) << gt.addr.to_string();
      ++manipulated;
      continue;
    }
    EXPECT_EQ(it->second, expected_klass(gt.kind)) << gt.addr.to_string();
    ++correct;
  }
  EXPECT_EQ(correct + manipulated, total);
  EXPECT_GT(manipulated, 0u);  // the CHN/KOR Shadowserver gap exists
}

TEST_F(FullCensus, CompositionSharesTrackThePaper) {
  const auto& census = result_->census;
  const double total = static_cast<double>(census.odns_total());
  EXPECT_GT(total, 8000);
  // Paper Table 1: 2% / 72% / 26%. Scale rounding widens tolerances.
  EXPECT_NEAR(static_cast<double>(census.tf) / total, 0.26, 0.05);
  EXPECT_NEAR(static_cast<double>(census.rf) / total, 0.72, 0.06);
  EXPECT_LT(static_cast<double>(census.rr) / total, 0.05);
}

TEST_F(FullCensus, TransparentForwarderProjectsMatchGroundTruth) {
  // Every TF's response source project agrees with the deployment's
  // intent (direct big-4 relays).
  std::unordered_map<Ipv4, const topo::GroundTruth*> gt_by_addr;
  for (const auto& gt : result_->world->ground_truth()) {
    gt_by_addr[gt.addr] = &gt;
  }
  std::uint64_t checked = 0;
  for (const auto& item : result_->classified) {
    if (item.klass != Klass::transparent_forwarder) continue;
    const auto* gt = gt_by_addr.at(item.txn.target);
    if (gt->chained || gt->project == topo::ResolverProject::other) continue;
    const auto project =
        classify::project_of_service_addr(item.txn.response_src);
    ASSERT_TRUE(project.has_value());
    EXPECT_EQ(*project, gt->project);
    ++checked;
  }
  EXPECT_GT(checked, 500u);
}

TEST_F(FullCensus, IndirectConsolidationDetected) {
  // Chained TFs answer from their own AS but the mirror record exposes
  // the big-4 resolver behind the chain.
  std::uint64_t indirect_total = 0;
  for (const auto& [code, report] : result_->census.by_country) {
    indirect_total += report.other_indirect;
  }
  EXPECT_GT(indirect_total, 0u);
}

TEST_F(FullCensus, RelaxedValidationGrowsRecursiveCountsOnly) {
  const auto relaxed = reanalyze(*result_, /*strict_validation=*/false);
  // §4.2: dropping the control-record requirement adds the manipulated
  // recursive speakers but cannot add transparent forwarders (their
  // responses are valid).
  EXPECT_GT(relaxed.rf + relaxed.rr, result_->census.rf + result_->census.rr);
  EXPECT_EQ(relaxed.tf, result_->census.tf);
  EXPECT_EQ(relaxed.invalid, 0u);
}

TEST_F(FullCensus, CountryAttributionMatchesGroundTruth) {
  // Spot-check: every classified TF lands in its ground-truth country
  // (when the registry mapped it at all).
  std::unordered_map<Ipv4, std::string> expected;
  for (const auto& gt : result_->world->ground_truth()) {
    expected[gt.addr] = gt.country;
  }
  for (const auto& item : result_->classified) {
    if (item.klass != Klass::transparent_forwarder) continue;
    if (auto country = result_->registry.country_of(item.txn.target)) {
      EXPECT_EQ(*country, expected.at(item.txn.target));
    }
  }
}

TEST_F(FullCensus, ShadowserverViewMissesTransparentForwarders) {
  auto campaign = run_campaign(
      *result_->world, scan::CampaignKind::shadowserver,
      util::Prefix{Ipv4{198, 18, 10, 0}, 24}, result_->world->scan_targets());
  // The campaign discovers recursive speakers and resolvers-behind-TFs,
  // but none of the transparent forwarder addresses themselves.
  std::unordered_map<Ipv4, OdnsKind> kind_by_addr;
  for (const auto& gt : result_->world->ground_truth()) {
    kind_by_addr[gt.addr] = gt.kind;
  }
  std::uint64_t tf_found = 0;
  for (const auto& addr : campaign->discovered()) {
    auto it = kind_by_addr.find(addr);
    if (it != kind_by_addr.end() &&
        it->second == OdnsKind::transparent_forwarder) {
      ++tf_found;
    }
  }
  EXPECT_EQ(tf_found, 0u);
  // And it undercounts the ODNS total substantially (paper: ~18-26%).
  EXPECT_LT(campaign->discovered().size(),
            result_->census.odns_total() * 90 / 100);
}

TEST_F(FullCensus, DnsrouteProducesSanePathsAtScale) {
  auto routes = run_dnsroute(*result_, /*max_ttl=*/25);
  ASSERT_GT(routes.samples.size(), 100u);
  std::map<topo::ResolverProject, util::Accumulator> mean_hops;
  for (const auto& s : routes.samples) {
    EXPECT_GT(s.hops, 0);
    EXPECT_LT(s.hops, 25);
    mean_hops[s.project].add(static_cast<double>(s.hops));
  }
  // Fig. 6 ordering: Cloudflare < Google < OpenDNS.
  ASSERT_TRUE(mean_hops.contains(topo::ResolverProject::cloudflare));
  ASSERT_TRUE(mean_hops.contains(topo::ResolverProject::google));
  ASSERT_TRUE(mean_hops.contains(topo::ResolverProject::opendns));
  const double cf = mean_hops[topo::ResolverProject::cloudflare].mean();
  const double google = mean_hops[topo::ResolverProject::google].mean();
  const double odns = mean_hops[topo::ResolverProject::opendns].mean();
  EXPECT_LT(cf, google);
  EXPECT_LT(google, odns);

  // §5: most usable paths show AS_in == AS_out, and some inferred
  // provider-customer edges are unknown to the CAIDA-like registry.
  EXPECT_GT(routes.relationships.as_in_equals_as_out, 0u);
  EXPECT_GT(routes.relationships.unknown_to_caida, 0u);
}

TEST_F(FullCensus, ReportsRenderNonEmpty) {
  EXPECT_GT(report::table1_composition(result_->census).rows(), 3u);
  EXPECT_GT(report::table4_other_share(result_->census).rows(), 5u);
  EXPECT_GT(report::fig3_country_cdf(result_->census).rows(), 10u);
  EXPECT_GT(report::fig4_top_countries(result_->census, 50).rows(), 10u);
  EXPECT_GT(report::fig5_project_shares(result_->census, 50).rows(), 10u);
  EXPECT_GT(report::fig8_prefix_density(result_->census).rows(), 3u);
  const auto devices = classify::device_attribution(
      result_->census, result_->classified, result_->registry);
  EXPECT_GT(report::devices_table(devices).rows(), 4u);
  const auto ases =
      classify::classify_ases(result_->census, result_->registry, 100);
  EXPECT_GT(report::as_classification_table(ases).rows(), 4u);
}

TEST_F(FullCensus, DeviceAttributionFindsMikrotikShare) {
  const auto devices = classify::device_attribution(
      result_->census, result_->classified, result_->registry);
  EXPECT_GT(devices.fingerprinted, 0u);
  // §6: ~23% of fingerprinted TFs are MikroTik.
  EXPECT_NEAR(devices.mikrotik_share_of_fingerprinted(), 0.23, 0.10);
}

TEST_F(FullCensus, TopAsesAreMostlyEyeballs) {
  const auto ases =
      classify::classify_ases(result_->census, result_->registry, 100);
  // §6: 79 of the top-100 are eyeball ISPs; 14 unclassified.
  EXPECT_GT(ases.eyeball_total, 50);
  EXPECT_GT(ases.unclassified, 0);
  EXPECT_GT(ases.wide_asns, 30);  // 32-bit ASNs common among them
  EXPECT_GT(ases.tf_coverage, 0.3);
}

}  // namespace
}  // namespace odns::core
