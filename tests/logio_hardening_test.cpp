// Persistence round-trips, offline correlation equivalence, and the
// 0x20 anti-spoofing behaviour.

#include <gtest/gtest.h>

#include <sstream>

#include "scan/log_io.hpp"
#include "testutil.hpp"

namespace odns::scan {
namespace {

using test::MiniWorld;
using util::Duration;
using util::Ipv4;

class LogIoFixture : public ::testing::Test {
 protected:
  MiniWorld world;

  TransactionalScanner scan_world() {
    ScanConfig sc;
    sc.qname = world.scan_name;
    TransactionalScanner scanner(world.sim, world.scanner_host, sc);
    scanner.start({test::kResolverAddr});
    scanner.run_to_completion();
    return scanner;
  }
};

TEST_F(LogIoFixture, ProbeLogRoundTrip) {
  auto scanner = scan_world();
  std::stringstream ss;
  write_probes_csv(ss, scanner.probes());
  const auto back = read_probes_csv(ss);
  ASSERT_EQ(back.size(), scanner.probes().size());
  EXPECT_EQ(back[0].target, scanner.probes()[0].target);
  EXPECT_EQ(back[0].src_port, scanner.probes()[0].src_port);
  EXPECT_EQ(back[0].txid, scanner.probes()[0].txid);
  EXPECT_EQ(back[0].sent_at, scanner.probes()[0].sent_at);
}

TEST_F(LogIoFixture, CaptureLogRoundTrip) {
  auto scanner = scan_world();
  std::stringstream ss;
  write_capture_csv(ss, scanner.capture());
  const auto back = read_capture_csv(ss);
  ASSERT_EQ(back.size(), scanner.capture().size());
  EXPECT_EQ(back[0].src, scanner.capture()[0].src);
  EXPECT_EQ(back[0].answer_addrs, scanner.capture()[0].answer_addrs);
  EXPECT_EQ(back[0].rcode, scanner.capture()[0].rcode);
}

TEST_F(LogIoFixture, OfflineCorrelationMatchesOnline) {
  auto scanner = scan_world();
  const auto online = scanner.correlate();
  std::stringstream probes_csv;
  std::stringstream capture_csv;
  write_probes_csv(probes_csv, scanner.probes());
  write_capture_csv(capture_csv, scanner.capture());
  const auto offline = correlate_offline(read_probes_csv(probes_csv),
                                         read_capture_csv(capture_csv),
                                         Duration::seconds(20));
  ASSERT_EQ(offline.size(), online.size());
  for (std::size_t i = 0; i < online.size(); ++i) {
    EXPECT_EQ(offline[i].answered, online[i].answered);
    EXPECT_EQ(offline[i].response_src, online[i].response_src);
    EXPECT_EQ(offline[i].answer_addrs, online[i].answer_addrs);
  }
}

TEST_F(LogIoFixture, TransactionsRoundTrip) {
  auto scanner = scan_world();
  const auto txns = scanner.correlate();
  std::stringstream ss;
  write_transactions_csv(ss, txns);
  const auto back = read_transactions_csv(ss);
  ASSERT_EQ(back.size(), txns.size());
  EXPECT_EQ(back[0].answered, txns[0].answered);
  EXPECT_EQ(back[0].response_src, txns[0].response_src);
  EXPECT_EQ(back[0].rtt.count_nanos(), txns[0].rtt.count_nanos());
}

TEST(LogIoHardening, MalformedRowsAreSkipped) {
  std::stringstream ss(
      "target,src_port,txid,sent_at_ns\n"
      "not-an-ip,1,2,3\n"
      "192.0.2.1,1000,42,12345\n"
      "short,row\n");
  const auto probes = read_probes_csv(ss);
  ASSERT_EQ(probes.size(), 1u);
  EXPECT_EQ(probes[0].target, (Ipv4{192, 0, 2, 1}));
}

// ---------------------------------------------------------------------
// DNS 0x20
// ---------------------------------------------------------------------

class Dns0x20Fixture : public ::testing::Test {
 protected:
  MiniWorld world;
};

TEST_F(Dns0x20Fixture, LegitimateResolutionUnaffected) {
  // The MiniWorld resolver has case randomization on by default; the
  // auth hierarchy echoes questions verbatim, so everything resolves.
  const auto host = world.add_access_host(Ipv4{20, 0, 70, 1});
  nodes::StubClient stub(world.sim, host);
  stub.start();
  stub.query(test::kResolverAddr, world.scan_name);
  world.sim.run();
  ASSERT_EQ(stub.responses().size(), 1u);
  EXPECT_EQ(stub.responses().front().message.header.rcode,
            dnswire::Rcode::noerror);
  EXPECT_EQ(world.resolver->stats().rejected_0x20, 0u);
}

TEST_F(Dns0x20Fixture, ForgedResponsesWithWrongCaseRejected) {
  // A blind forger sprays responses guessing ports and TXIDs but spells
  // the name in plain lowercase. With case randomization the resolver
  // must reject any that happen to hit a pending tuple.
  nodes::ResolverConfig rc;
  rc.open = true;
  rc.root_hints = {Ipv4{198, 41, 0, 99}};  // black hole: keeps tasks pending
  rc.upstream_timeout = util::Duration::seconds(30);
  const auto rhost =
      world.sim.net().add_host(test::kResolverAsn, {Ipv4{8, 8, 8, 110}});
  nodes::RecursiveResolver victim(world.sim, rhost, rc, 5);
  victim.start();

  const auto client = world.add_access_host(Ipv4{20, 0, 71, 1});
  nodes::StubClient stub(world.sim, client);
  stub.start();
  stub.query(Ipv4{8, 8, 8, 110}, world.scan_name);
  world.sim.run_until(world.sim.now() + util::Duration::seconds(1));

  // Brute-force the full TXID space against the resolver's first
  // ephemeral port: some forgery necessarily matches the pending
  // (port, txid) tuple, and the 0x20 check must still reject it.
  const auto attacker = world.add_access_host(Ipv4{20, 0, 71, 2});
  auto forged = dnswire::make_response(
      dnswire::make_query(0, world.scan_name, dnswire::RrType::a));
  forged.answers.push_back(dnswire::ResourceRecord::a(
      world.scan_name, Ipv4{6, 6, 6, 6}, 3600));
  for (std::uint32_t txid = 0; txid < 65536; ++txid) {
    forged.header.id = static_cast<std::uint16_t>(txid);
    netsim::SendOptions opts;
    opts.dst = Ipv4{8, 8, 8, 110};
    opts.src_port = 53;
    opts.dst_port = 49152;  // the resolver's first ephemeral port
    opts.payload = dnswire::encode(forged);
    opts.spoof_src = Ipv4{198, 41, 0, 99};
    world.sim.send_udp(attacker, std::move(opts));
  }
  world.sim.run_until(world.sim.now() + util::Duration::seconds(2));

  // Some forgeries matched (port, txid) — all were rejected on case.
  EXPECT_GT(victim.stats().rejected_0x20, 0u);
  // The poisoned record never reached a client.
  EXPECT_TRUE(stub.responses().empty() ||
              stub.responses().front().message.answer_addresses().empty() ||
              stub.responses().front().message.answer_addresses()[0] !=
                  (Ipv4{6, 6, 6, 6}));
}

TEST_F(Dns0x20Fixture, DisabledRandomizationAcceptsPlainCase) {
  nodes::ResolverConfig rc;
  rc.open = true;
  rc.root_hints = {test::kRootAddr};
  rc.case_randomization = false;
  const auto rhost =
      world.sim.net().add_host(test::kResolverAsn, {Ipv4{8, 8, 8, 111}});
  nodes::RecursiveResolver plain(world.sim, rhost, rc, 5);
  plain.start();
  const auto client = world.add_access_host(Ipv4{20, 0, 72, 1});
  nodes::StubClient stub(world.sim, client);
  stub.start();
  stub.query(Ipv4{8, 8, 8, 111}, world.scan_name);
  world.sim.run();
  ASSERT_EQ(stub.responses().size(), 1u);
  EXPECT_EQ(stub.responses().front().message.header.rcode,
            dnswire::Rcode::noerror);
}

}  // namespace
}  // namespace odns::scan
