// Remaining public-API coverage: deployment accessors, campaign
// aggregation, the Shadowserver-gap derivation, and enum formatting.

#include <gtest/gtest.h>

#include "core/census.hpp"
#include "core/report.hpp"

namespace odns {
namespace {

using util::Ipv4;

class SmallWorld : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::CensusConfig cfg;
    cfg.topology.scale = 0.003;
    cfg.topology.seed = 555;
    cfg.topology.max_countries = 12;
    result_ = new core::CensusResult(core::run_census(cfg));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static core::CensusResult* result_;
};

core::CensusResult* SmallWorld::result_ = nullptr;

TEST_F(SmallWorld, ManipulatedForwardersExplainTheShadowserverGap) {
  // Countries where the paper's Table 5 shows Shadowserver counting
  // MORE than the strict method (China, Korea-style) must contain
  // recursive forwarders flagged as manipulating.
  std::uint64_t manipulated_chn = 0;
  for (const auto& gt : result_->world->ground_truth()) {
    if (gt.country == "CHN" &&
        gt.kind == topo::OdnsKind::recursive_forwarder && gt.chained) {
      ++manipulated_chn;
    }
  }
  EXPECT_GT(manipulated_chn, 0u);
}

TEST_F(SmallWorld, ResolverCacheStatsAggregate) {
  const auto stats = result_->world->aggregate_resolver_cache_stats();
  // The scan used one static name: caches absorbed most of the load.
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.inserts, 0u);
}

TEST_F(SmallWorld, CampaignCountryCountsUseRegistryMapping) {
  auto campaign = core::run_campaign(
      *result_->world, scan::CampaignKind::shadowserver,
      util::Prefix{Ipv4{198, 18, 33, 0}, 24}, result_->world->scan_targets());
  const auto counts =
      core::campaign_country_counts(*campaign, result_->registry);
  std::uint64_t total = 0;
  for (const auto& [code, n] : counts) {
    EXPECT_FALSE(code.empty());
    total += n;
  }
  EXPECT_GT(total, 0u);
  EXPECT_LE(total, campaign->discovered().size());
}

TEST_F(SmallWorld, DeploymentAttributionAccessors) {
  const auto& world = *result_->world;
  EXPECT_EQ(world.project_of_service_addr(Ipv4{8, 8, 8, 8}),
            topo::ResolverProject::google);
  EXPECT_FALSE(world.project_of_service_addr(Ipv4{203, 0, 113, 1})
                   .has_value());
  // Every PoP ASN maps to its project.
  for (const auto& pop : world.pops()) {
    EXPECT_EQ(world.project_of_asn(pop.asn), pop.project);
  }
  // Ground-truth countries round-trip through the ASN table.
  const auto& gt = world.ground_truth().front();
  EXPECT_EQ(world.country_of_asn(gt.asn), gt.country);
  EXPECT_EQ(world.type_of_asn(gt.asn), topo::AsType::eyeball_isp);
}

TEST_F(SmallWorld, ScanTargetsAreProbeableAddresses) {
  const auto& net = result_->world->sim().net();
  for (const auto addr : result_->world->scan_targets()) {
    EXPECT_NE(net.unicast_owner(addr), netsim::kInvalidHost);
  }
}

TEST(EnumFormatting, AllNamesRender) {
  EXPECT_EQ(scan::to_string(scan::CampaignKind::shadowserver),
            "Shadowserver");
  EXPECT_EQ(scan::to_string(scan::CampaignKind::censys), "Censys");
  EXPECT_EQ(scan::to_string(scan::CampaignKind::shodan), "Shodan");
  EXPECT_EQ(classify::to_string(classify::Klass::transparent_forwarder),
            "Transparent Forwarder");
  EXPECT_EQ(classify::to_string(classify::Klass::invalid), "Invalid");
  EXPECT_EQ(topo::to_string(topo::ResolverProject::quad9), "Quad9");
  EXPECT_EQ(topo::to_string(topo::OdnsKind::recursive_resolver),
            "Recursive Resolver");
  EXPECT_EQ(topo::to_string(topo::AsType::eyeball_isp), "Cable/DSL/ISP");
  EXPECT_EQ(topo::to_string(topo::DeviceVendor::mikrotik), "MikroTik");
  EXPECT_EQ(dnswire::to_string(dnswire::RrType::a), "A");
  EXPECT_EQ(dnswire::to_string(dnswire::Rcode::nxdomain), "NXDOMAIN");
  EXPECT_EQ(dnswire::to_string(dnswire::DecodeError::pointer_loop),
            "pointer loop");
}

TEST(EnumFormatting, MessageSummaryIsHumanReadable) {
  auto msg = dnswire::make_query(
      7, *dnswire::Name::parse("scan.odns-study.net"), dnswire::RrType::a);
  const auto text = msg.summary();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("scan.odns-study.net"), std::string::npos);
}

}  // namespace
}  // namespace odns
