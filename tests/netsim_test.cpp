#include <gtest/gtest.h>

#include "netsim/event_queue.hpp"
#include "netsim/sim.hpp"

namespace odns::netsim {
namespace {

using util::Duration;
using util::Ipv4;
using util::Prefix;
using util::SimTime;

// ---------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------

TEST(EventQueueTest, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime::from_nanos(30), [&] { order.push_back(3); });
  q.schedule_at(SimTime::from_nanos(10), [&] { order.push_back(1); });
  q.schedule_at(SimTime::from_nanos(20), [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(SimTime::from_nanos(100), [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, PastEventsClampToNow) {
  EventQueue q;
  bool ran = false;
  q.schedule_at(SimTime::from_nanos(100), [&] {
    q.schedule_at(SimTime::from_nanos(50), [&] { ran = true; });
  });
  q.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now().nanos(), 100);
}

TEST(EventQueueTest, RunRespectsDeadline) {
  EventQueue q;
  int count = 0;
  q.schedule_at(SimTime::from_nanos(10), [&] { ++count; });
  q.schedule_at(SimTime::from_nanos(1000), [&] { ++count; });
  q.run(SimTime::from_nanos(100));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(q.now(), SimTime::from_nanos(100));
  q.run();
  EXPECT_EQ(count, 2);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) {
      q.schedule_at(q.now() + Duration::nanos(1), recurse);
    }
  };
  q.schedule_at(SimTime::origin(), recurse);
  q.run();
  EXPECT_EQ(depth, 10);
}

// ---------------------------------------------------------------------
// Network / routing fixture
// ---------------------------------------------------------------------

class NetworkFixture : public ::testing::Test {
 protected:
  // A -- B -- C chain plus D hanging off B.
  void SetUp() override {
    auto add = [&](Asn asn, int hops, bool sav = true) {
      AsConfig cfg;
      cfg.asn = asn;
      cfg.internal_hops = hops;
      cfg.source_address_validation = sav;
      net().add_as(cfg);
    };
    add(1, 1);
    add(2, 2);
    add(3, 1);
    add(4, 3, /*sav=*/false);
    net().link(1, 2);
    net().link(2, 3);
    net().link(2, 4);
    net().announce(1, Prefix{Ipv4{10, 1, 0, 0}, 16});
    net().announce(3, Prefix{Ipv4{10, 3, 0, 0}, 16});
    net().announce(4, Prefix{Ipv4{10, 4, 0, 0}, 16});
    a_ = net().add_host(1, {Ipv4{10, 1, 0, 1}});
    c_ = net().add_host(3, {Ipv4{10, 3, 0, 1}});
    d_ = net().add_host(4, {Ipv4{10, 4, 0, 1}});
  }

  Network& net() { return sim_.net(); }

  Simulator sim_;
  HostId a_ = kInvalidHost;
  HostId c_ = kInvalidHost;
  HostId d_ = kInvalidHost;
};

TEST_F(NetworkFixture, AsDistance) {
  EXPECT_EQ(net().as_distance(1, 1), 0);
  EXPECT_EQ(net().as_distance(1, 2), 1);
  EXPECT_EQ(net().as_distance(1, 3), 2);
  EXPECT_EQ(net().as_distance(1, 4), 2);
  EXPECT_EQ(net().as_distance(1, 999), -1);
}

TEST_F(NetworkFixture, RouteConcatenatesInternalHops) {
  const auto route = net().route(a_, Ipv4{10, 3, 0, 1});
  ASSERT_TRUE(route.has_value());
  // AS1 (1 hop) + AS2 (2 hops) + AS3 (1 hop) = 4 router hops.
  EXPECT_EQ(route->router_hops.size(), 4u);
  EXPECT_EQ(route->as_path, (std::vector<Asn>{1, 2, 3}));
  EXPECT_EQ(route->dst_host, c_);
}

TEST_F(NetworkFixture, RouterHopsBelongToPathAses) {
  const auto route = net().route(a_, Ipv4{10, 3, 0, 1});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(net().router_owner(route->router_hops[0]), Asn{1});
  EXPECT_EQ(net().router_owner(route->router_hops[1]), Asn{2});
  EXPECT_EQ(net().router_owner(route->router_hops[2]), Asn{2});
  EXPECT_EQ(net().router_owner(route->router_hops[3]), Asn{3});
}

TEST_F(NetworkFixture, NoRouteToUnknownAddress) {
  EXPECT_FALSE(net().route(a_, Ipv4{172, 16, 0, 1}).has_value());
}

TEST_F(NetworkFixture, SourceLegitimacyFollowsAnnouncements) {
  EXPECT_TRUE(net().source_is_legitimate(1, Ipv4{10, 1, 2, 3}));
  EXPECT_FALSE(net().source_is_legitimate(1, Ipv4{10, 3, 0, 1}));
}

TEST_F(NetworkFixture, AnycastPicksNearestMember) {
  // Members in AS3 (2 hops from AS1) and AS4 (2 hops) — then add a
  // member in AS2 (1 hop) and expect it to win.
  const Ipv4 anycast{9, 9, 9, 9};
  net().announce(3, Prefix{anycast, 24});
  net().announce(4, Prefix{anycast, 24});
  const auto m3 = net().add_host(3, {Ipv4{10, 3, 0, 9}});
  const auto m4 = net().add_host(4, {Ipv4{10, 4, 0, 9}});
  net().join_anycast(anycast, m3);
  net().join_anycast(anycast, m4);
  EXPECT_EQ(net().resolve_destination(anycast, 1),
            m3);  // tie: first member wins deterministically
  net().announce(2, Prefix{anycast, 24});
  const auto m2 = net().add_host(2, {Ipv4{10, 3, 0, 10}});
  net().join_anycast(anycast, m2);
  EXPECT_EQ(net().resolve_destination(anycast, 1), m2);
}

TEST_F(NetworkFixture, DuplicateAddressThrows) {
  EXPECT_THROW(net().add_host(1, {Ipv4{10, 1, 0, 1}}), std::invalid_argument);
}

TEST_F(NetworkFixture, DuplicateAsnThrows) {
  AsConfig cfg;
  cfg.asn = 1;
  EXPECT_THROW(net().add_as(cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Simulator behaviour
// ---------------------------------------------------------------------

class EchoApp : public App {
 public:
  explicit EchoApp(Simulator& sim, HostId host) : sim_(&sim), host_(host) {}
  void on_datagram(const Datagram& d) override {
    received.push_back(d.src);
    ttls.push_back(d.ttl);
    SendOptions opts;
    opts.dst = d.src;
    opts.src_port = d.dst_port;
    opts.dst_port = d.src_port;
    opts.payload = *d.payload;
    sim_->send_udp(host_, std::move(opts));
  }
  std::vector<Ipv4> received;
  std::vector<int> ttls;

 private:
  Simulator* sim_;
  HostId host_;
};

class SinkApp : public App {
 public:
  void on_datagram(const Datagram& d) override {
    received.push_back(d.src);
    ttls.push_back(d.ttl);
  }
  std::vector<Ipv4> received;
  std::vector<int> ttls;
};

TEST_F(NetworkFixture, DeliversAndEchoes) {
  EchoApp echo(sim_, c_);
  SinkApp sink;
  sim_.bind_udp(c_, 53, &echo);
  sim_.bind_udp_wildcard(a_, &sink);
  SendOptions opts;
  opts.dst = Ipv4{10, 3, 0, 1};
  opts.src_port = 1234;
  opts.dst_port = 53;
  opts.payload = {1, 2, 3};
  sim_.send_udp(a_, std::move(opts));
  sim_.run();
  ASSERT_EQ(echo.received.size(), 1u);
  EXPECT_EQ(echo.received[0], (Ipv4{10, 1, 0, 1}));
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0], (Ipv4{10, 3, 0, 1}));
  EXPECT_EQ(sim_.counters().delivered, 2u);
}

TEST_F(NetworkFixture, TtlDecrementsAcrossRouters) {
  SinkApp sink;
  sim_.bind_udp(c_, 53, &sink);
  SendOptions opts;
  opts.dst = Ipv4{10, 3, 0, 1};
  opts.dst_port = 53;
  opts.ttl = 64;
  sim_.send_udp(a_, std::move(opts));
  sim_.run();
  ASSERT_EQ(sink.ttls.size(), 1u);
  EXPECT_EQ(sink.ttls[0], 60);  // 4 router hops consumed
}

TEST_F(NetworkFixture, TtlExpiryGeneratesIcmpFromExpiringRouter) {
  std::vector<Packet> icmp;
  sim_.set_icmp_handler(a_, [&](const Packet& p) { icmp.push_back(p); });
  SendOptions opts;
  opts.dst = Ipv4{10, 3, 0, 1};
  opts.src_port = 777;
  opts.dst_port = 53;
  opts.ttl = 2;  // expires at the second router (inside AS2)
  sim_.send_udp(a_, std::move(opts));
  sim_.run();
  ASSERT_EQ(icmp.size(), 1u);
  EXPECT_EQ(icmp[0].icmp_type, IcmpType::ttl_exceeded);
  EXPECT_EQ(net().router_owner(icmp[0].src), Asn{2});
  EXPECT_EQ(icmp[0].icmp_quote.orig_src_port, 777);
  EXPECT_EQ(sim_.counters().ttl_expired, 1u);
}

TEST_F(NetworkFixture, UnboundPortTriggersPortUnreachable) {
  std::vector<Packet> icmp;
  sim_.set_icmp_handler(a_, [&](const Packet& p) { icmp.push_back(p); });
  SendOptions opts;
  opts.dst = Ipv4{10, 3, 0, 1};
  opts.dst_port = 9999;
  sim_.send_udp(a_, std::move(opts));
  sim_.run();
  ASSERT_EQ(icmp.size(), 1u);
  EXPECT_EQ(icmp[0].icmp_type, IcmpType::port_unreachable);
  EXPECT_EQ(icmp[0].src, (Ipv4{10, 3, 0, 1}));
}

TEST_F(NetworkFixture, SavDropsSpoofedTraffic) {
  // AS1 validates sources: spoofing from host A must be dropped.
  SinkApp sink;
  sim_.bind_udp(c_, 53, &sink);
  SendOptions opts;
  opts.dst = Ipv4{10, 3, 0, 1};
  opts.dst_port = 53;
  opts.spoof_src = Ipv4{10, 4, 0, 1};
  sim_.send_udp(a_, std::move(opts));
  sim_.run();
  EXPECT_TRUE(sink.received.empty());
  EXPECT_EQ(sim_.counters().dropped_sav, 1u);
}

TEST_F(NetworkFixture, SavFreeNetworkAllowsSpoofing) {
  // AS4 does not validate: host D can spoof host A's address.
  SinkApp sink;
  sim_.bind_udp(c_, 53, &sink);
  SendOptions opts;
  opts.dst = Ipv4{10, 3, 0, 1};
  opts.dst_port = 53;
  opts.spoof_src = Ipv4{10, 1, 0, 1};
  sim_.send_udp(d_, std::move(opts));
  sim_.run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0], (Ipv4{10, 1, 0, 1}));
}

TEST_F(NetworkFixture, RedirectRelaysWithSourcePreserved) {
  // Install a transparent redirect on D (SAV-free AS): DNS to D goes to
  // C; C must see A's address as the source.
  SinkApp sink;
  sim_.bind_udp(c_, 53, &sink);
  sim_.add_port_redirect(d_, 53, Ipv4{10, 3, 0, 1});
  SendOptions opts;
  opts.dst = Ipv4{10, 4, 0, 1};
  opts.src_port = 555;
  opts.dst_port = 53;
  sim_.send_udp(a_, std::move(opts));
  sim_.run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0], (Ipv4{10, 1, 0, 1}));  // spoof preserved
  EXPECT_EQ(sim_.redirect_relays(d_), 1u);
  EXPECT_EQ(sim_.counters().redirected, 1u);
}

TEST_F(NetworkFixture, RedirectDecrementsTtlLikeARouter) {
  SinkApp sink;
  sim_.bind_udp(c_, 53, &sink);
  sim_.add_port_redirect(d_, 53, Ipv4{10, 3, 0, 1});
  SendOptions opts;
  opts.dst = Ipv4{10, 4, 0, 1};
  opts.dst_port = 53;
  opts.ttl = 64;
  sim_.send_udp(a_, std::move(opts));
  sim_.run();
  ASSERT_EQ(sink.ttls.size(), 1u);
  // a→d: AS1(1)+AS2(2)+AS4(3)=6 routers, device itself 1,
  // d→c: AS4(3)+AS2(2)+AS3(1)=6 routers → 64-13=51.
  EXPECT_EQ(sink.ttls[0], 51);
}

TEST_F(NetworkFixture, RedirectAnswersTtlExceededWhenExpiring) {
  // TTL dies exactly on the device: its own stack answers and nothing
  // is forwarded — the DNSRoute++ pivot behaviour.
  std::vector<Packet> icmp;
  sim_.set_icmp_handler(a_, [&](const Packet& p) { icmp.push_back(p); });
  SinkApp sink;
  sim_.bind_udp(c_, 53, &sink);
  sim_.add_port_redirect(d_, 53, Ipv4{10, 3, 0, 1});
  SendOptions opts;
  opts.dst = Ipv4{10, 4, 0, 1};
  opts.dst_port = 53;
  opts.ttl = 7;  // 6 routers + the device
  sim_.send_udp(a_, std::move(opts));
  sim_.run();
  ASSERT_EQ(icmp.size(), 1u);
  EXPECT_EQ(icmp[0].src, (Ipv4{10, 4, 0, 1}));  // the device, not a router
  EXPECT_TRUE(sink.received.empty());
}

TEST_F(NetworkFixture, SavBlocksTransparentRelayInValidatingAs) {
  // The same redirect installed in AS1 (SAV on) leaks nothing: the
  // spoofed relay is dropped at egress. This is why deployed
  // transparent forwarders imply missing SAV.
  SinkApp sink;
  sim_.bind_udp(c_, 53, &sink);
  const auto a2 = net().add_host(1, {Ipv4{10, 1, 0, 2}});
  sim_.add_port_redirect(a2, 53, Ipv4{10, 3, 0, 1});
  SendOptions opts;
  opts.dst = Ipv4{10, 1, 0, 2};
  opts.dst_port = 53;
  sim_.send_udp(d_, std::move(opts));
  sim_.run();
  EXPECT_TRUE(sink.received.empty());
  EXPECT_EQ(sim_.counters().dropped_sav, 1u);
}

TEST(SimulatorLoss, LossRateDropsRoughlyProportionally) {
  SimConfig cfg;
  cfg.loss_rate = 0.3;
  cfg.seed = 9;
  Simulator sim(cfg);
  AsConfig ac;
  ac.asn = 1;
  ac.internal_hops = 1;
  sim.net().add_as(ac);
  ac.asn = 2;
  sim.net().add_as(ac);
  sim.net().link(1, 2);
  sim.net().announce(1, Prefix{Ipv4{10, 1, 0, 0}, 24});
  sim.net().announce(2, Prefix{Ipv4{10, 2, 0, 0}, 24});
  const auto a = sim.net().add_host(1, {Ipv4{10, 1, 0, 1}});
  const auto b = sim.net().add_host(2, {Ipv4{10, 2, 0, 1}});
  SinkApp sink;
  sim.bind_udp(b, 53, &sink);
  for (int i = 0; i < 1000; ++i) {
    SendOptions opts;
    opts.dst = Ipv4{10, 2, 0, 1};
    opts.dst_port = 53;
    sim.send_udp(a, std::move(opts));
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(sink.received.size()), 700.0, 60.0);
  EXPECT_EQ(sim.counters().dropped_loss + sink.received.size(), 1000u);
}

// ---------------------------------------------------------------------
// Route cache: epoch invalidation and cached/uncached equivalence
// ---------------------------------------------------------------------

TEST_F(NetworkFixture, RouteCacheHitsOnRepeatAndInvalidatesOnLink) {
  const auto epoch0 = net().topology_epoch();
  const auto r1 = net().route(a_, Ipv4{10, 3, 0, 1});
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->as_path, (std::vector<Asn>{1, 2, 3}));

  const auto hits_before = net().route_cache_stats().hits;
  const auto r2 = net().route(a_, Ipv4{10, 3, 0, 1});
  EXPECT_GT(net().route_cache_stats().hits, hits_before);
  EXPECT_EQ(r2->router_hops, r1->router_hops);

  // A direct 1--3 link must be observed immediately: no stale cache hit.
  net().link(1, 3);
  EXPECT_GT(net().topology_epoch(), epoch0);
  const auto r3 = net().route(a_, Ipv4{10, 3, 0, 1});
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->as_path, (std::vector<Asn>{1, 3}));
  EXPECT_EQ(r3->router_hops.size(), 2u);  // AS1 (1 hop) + AS3 (1 hop)
  EXPECT_GE(net().route_cache_stats().stale_evictions, 1u);
}

TEST_F(NetworkFixture, RouteCacheInvalidatedByHostAnycastAndAnnounce) {
  // Warm a negative entry: nothing owns the address yet.
  const Ipv4 any{9, 9, 9, 9};
  EXPECT_FALSE(net().route(a_, any).has_value());

  // add_host + join_anycast must flip that negative entry.
  const auto m3 = net().add_host(3, {Ipv4{10, 3, 0, 9}});
  net().join_anycast(any, m3);
  auto r = net().route(a_, any);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->dst_host, m3);

  // A strictly closer member joining later wins the next lookup.
  const auto m2 = net().add_host(2, {Ipv4{10, 2, 0, 9}});
  net().join_anycast(any, m2);
  r = net().route(a_, any);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->dst_host, m2);

  // announce() bumps the epoch too — conservatively, so the epoch
  // invariant stays "any mutation invalidates" rather than tracking
  // which mutations routing consumes.
  const auto epoch_before = net().topology_epoch();
  net().announce(2, Prefix{Ipv4{10, 2, 0, 0}, 16});
  EXPECT_GT(net().topology_epoch(), epoch_before);
  EXPECT_TRUE(net().source_is_legitimate(2, Ipv4{10, 2, 5, 5}));
}

TEST_F(NetworkFixture, RouteViewBorrowsCacheStorage) {
  const auto view = net().route_view(1, Ipv4{10, 3, 0, 1});
  ASSERT_TRUE(view.has_value());
  const auto full = net().route_from_as(1, Ipv4{10, 3, 0, 1});
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*view->router_hops, full->router_hops);
  EXPECT_EQ(*view->as_path, full->as_path);
  EXPECT_EQ(view->dst_host, full->dst_host);
  // A repeat lookup is a cache hit onto the same underlying vectors.
  const auto view2 = net().route_view(1, Ipv4{10, 3, 0, 1});
  EXPECT_EQ(view->router_hops, view2->router_hops);
  EXPECT_EQ(view->as_path, view2->as_path);
}

TEST(RouteCache, CachedMatchesUncachedOnRandomizedTopology) {
  util::Rng rng(20211207);
  Simulator sim;
  Network& net = sim.net();
  constexpr int kAses = 24;
  for (int i = 1; i <= kAses; ++i) {
    AsConfig cfg;
    cfg.asn = static_cast<Asn>(i);
    cfg.internal_hops = rng.uniform_int(1, 4);
    net.add_as(cfg);
  }
  // Random connected core over ASes 1..kAses-2; the last two ASes stay
  // isolated so unreachable destinations are exercised as well.
  for (int i = 2; i <= kAses - 2; ++i) {
    net.link(static_cast<Asn>(i),
             static_cast<Asn>(rng.uniform_int(1, i - 1)));
  }
  for (int e = 0; e < 10; ++e) {
    net.link(static_cast<Asn>(rng.uniform_int(1, kAses - 2)),
             static_cast<Asn>(rng.uniform_int(1, kAses - 2)));
  }
  std::vector<Ipv4> dsts;
  for (int i = 1; i <= kAses; ++i) {
    const Ipv4 addr{10, static_cast<std::uint8_t>(i), 0, 1};
    net.add_host(static_cast<Asn>(i), {addr});
    dsts.push_back(addr);
  }
  const Ipv4 any{9, 9, 9, 9};
  net.join_anycast(any, net.add_host(3, {Ipv4{10, 3, 9, 9}}));
  net.join_anycast(any, net.add_host(7, {Ipv4{10, 7, 9, 9}}));
  net.join_anycast(any, net.add_host(17, {Ipv4{10, 17, 9, 9}}));
  dsts.push_back(any);
  dsts.push_back(Ipv4{172, 16, 0, 1});  // nobody owns this

  const auto snapshot = [&](bool cached) {
    net.set_route_cache_enabled(cached);
    std::vector<std::optional<Route>> out;
    for (int from = 1; from <= kAses; ++from) {
      for (const auto d : dsts) {
        out.push_back(net.route_from_as(static_cast<Asn>(from), d));
      }
    }
    return out;
  };
  const auto expect_identical = [&] {
    const auto cold = snapshot(true);
    const auto warm = snapshot(true);  // second pass: all cache hits
    const auto uncached = snapshot(false);
    net.set_route_cache_enabled(true);
    ASSERT_EQ(cold.size(), uncached.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
      ASSERT_EQ(cold[i].has_value(), uncached[i].has_value()) << i;
      ASSERT_EQ(warm[i].has_value(), uncached[i].has_value()) << i;
      if (!cold[i].has_value()) continue;
      EXPECT_EQ(cold[i]->router_hops, uncached[i]->router_hops) << i;
      EXPECT_EQ(cold[i]->as_path, uncached[i]->as_path) << i;
      EXPECT_EQ(cold[i]->dst_host, uncached[i]->dst_host) << i;
      EXPECT_EQ(warm[i]->router_hops, uncached[i]->router_hops) << i;
      EXPECT_EQ(warm[i]->as_path, uncached[i]->as_path) << i;
      EXPECT_EQ(warm[i]->dst_host, uncached[i]->dst_host) << i;
    }
  };
  expect_identical();
  // Mutate (connect an isolated AS, add an anycast member) and
  // re-verify: no stale entries may survive the epoch bump.
  net.link(1, static_cast<Asn>(kAses));
  expect_identical();
  net.join_anycast(any, net.add_host(kAses, {Ipv4{10, 24, 9, 9}}));
  expect_identical();
}

TEST_F(NetworkFixture, TapObservesEvents) {
  std::vector<TapEvent> events;
  sim_.add_tap([&](TapEvent ev, const Packet&) { events.push_back(ev); });
  SinkApp sink;
  sim_.bind_udp(c_, 53, &sink);
  SendOptions opts;
  opts.dst = Ipv4{10, 3, 0, 1};
  opts.dst_port = 53;
  sim_.send_udp(a_, std::move(opts));
  sim_.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], TapEvent::sent);
  EXPECT_EQ(events[1], TapEvent::delivered);
}

}  // namespace
}  // namespace odns::netsim
